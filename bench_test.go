// Package repro's root benchmark harness: one benchmark per table and
// figure of the paper's evaluation (Section 6), plus ablation benchmarks
// for the design choices called out in DESIGN.md Section 5.
//
// The benchmarks run the reduced suite so that -bench=. completes in
// minutes; cmd/experiments regenerates the tables at full scale. Custom
// metrics are attached with b.ReportMetric:
//
//	peak_entries    max over processors of the stack/active-memory peak
//	gain_pct        percentage decrease vs the workload baseline
//	makespan_ms     simulated factorization time
//	deviations      Algorithm 2 off-top pool selections
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/assembly"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/order"
	"repro/internal/parmf"
	"repro/internal/parsim"
	"repro/internal/sched"
	"repro/internal/sparse"
	"repro/internal/workload"
)

const benchProcs = 32

// analysisFor runs the symbolic phase once per (problem, ordering, split).
func analysisFor(b *testing.B, p workload.Problem, m order.Method, split bool) *core.Analysis {
	b.Helper()
	an, err := core.Analyze(p.Matrix(), core.DefaultConfig(m, benchProcs))
	if err != nil {
		b.Fatalf("analyze %s/%v: %v", p.Name, m, err)
	}
	if split {
		thr := an.LargestMaster() / 3
		if thr < experiments.SplitThreshold {
			thr = experiments.SplitThreshold
		}
		an, err = an.WithSplit(thr, 0)
		if err != nil {
			b.Fatalf("split %s/%v: %v", p.Name, m, err)
		}
	}
	return an
}

func simulate(b *testing.B, an *core.Analysis, st parsim.Strategy) *parsim.Result {
	b.Helper()
	res, err := an.Simulate(st)
	if err != nil {
		b.Fatalf("simulate: %v", err)
	}
	return res
}

// BenchmarkTable1Suite measures matrix generation + symbolic analysis for
// the whole Table 1 suite (the "workload generator" cost of every other
// table).
func BenchmarkTable1Suite(b *testing.B) {
	suite := workload.SmallSuite()
	for b.Loop() {
		for _, p := range suite {
			if _, err := core.Analyze(p.Matrix(), core.DefaultConfig(order.ND, benchProcs)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchGainGrid runs baseline-vs-memory over a problem set and reports the
// mean percentage decrease of the max stack peak (the cell statistic of
// Tables 2/3/5).
func benchGainGrid(b *testing.B, probs []workload.Problem, split, baseSplit bool) {
	type cell struct{ base, mem *core.Analysis }
	var cells []cell
	for _, p := range probs {
		for _, m := range order.Methods {
			cells = append(cells, cell{
				base: analysisFor(b, p, m, baseSplit),
				mem:  analysisFor(b, p, m, split),
			})
		}
	}
	b.ResetTimer()
	var gain float64
	for b.Loop() {
		gain = 0
		for _, c := range cells {
			w := simulate(b, c.base, parsim.Workload())
			mm := simulate(b, c.mem, parsim.MemoryBased())
			gain += metrics.PercentDecrease(w.MaxActivePeak, mm.MaxActivePeak)
		}
		gain /= float64(len(cells))
	}
	b.ReportMetric(gain, "mean_gain_pct")
}

// BenchmarkTable2 regenerates Table 2: dynamic memory strategies vs the
// workload baseline on unmodified trees, 8 problems x 4 orderings.
func BenchmarkTable2(b *testing.B) {
	benchGainGrid(b, workload.SmallSuite(), false, false)
}

// BenchmarkTable3 regenerates Table 3: the same comparison on statically
// split trees (4 unsymmetric problems x 4 orderings).
func BenchmarkTable3(b *testing.B) {
	benchGainGrid(b, workload.Unsymmetric(workload.SmallSuite()), true, true)
}

// BenchmarkTable5 regenerates Table 5: splitting + memory strategies
// combined against the original MUMPS configuration (no split, workload).
func BenchmarkTable5(b *testing.B) {
	benchGainGrid(b, workload.Unsymmetric(workload.SmallSuite()), true, false)
}

// BenchmarkTable4 regenerates Table 4's four columns: absolute max stack
// peaks for ULTRASOUND3/METIS and XENON2/AMF, split and unsplit, under
// both strategies.
func BenchmarkTable4(b *testing.B) {
	suite := workload.SmallSuite()
	cases := []struct {
		name string
		m    order.Method
	}{
		{"ULTRASOUND3", order.ND},
		{"XENON2", order.AMF},
	}
	for _, c := range cases {
		p, err := workload.ByName(suite, c.name)
		if err != nil {
			b.Fatal(err)
		}
		for _, split := range []bool{false, true} {
			for _, st := range []struct {
				name string
				s    parsim.Strategy
			}{{"workload", parsim.Workload()}, {"memory", parsim.MemoryBased()}} {
				b.Run(fmt.Sprintf("%s/%v/split=%v/%s", c.name, c.m, split, st.name), func(b *testing.B) {
					an := analysisFor(b, p, c.m, split)
					var peak int64
					b.ResetTimer()
					for b.Loop() {
						peak = simulate(b, an, st.s).MaxActivePeak
					}
					b.ReportMetric(float64(peak), "peak_entries")
				})
			}
		}
	}
}

// BenchmarkTable6 regenerates Table 6: the factorization-time cost of the
// memory-optimized strategy on three large problems.
func BenchmarkTable6(b *testing.B) {
	suite := workload.SmallSuite()
	for _, name := range []string{"SHIP_003", "PRE2", "ULTRASOUND3"} {
		p, err := workload.ByName(suite, name)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range order.Methods {
			b.Run(fmt.Sprintf("%s/%v", name, m), func(b *testing.B) {
				an := analysisFor(b, p, m, false)
				var loss float64
				b.ResetTimer()
				for b.Loop() {
					w := simulate(b, an, parsim.Workload())
					mm := simulate(b, an, parsim.MemoryBased())
					loss = metrics.PercentIncrease(int64(w.Makespan), int64(mm.Makespan))
				}
				b.ReportMetric(loss, "time_loss_pct")
			})
		}
	}
}

// ---- figure-level benchmarks ------------------------------------------

// BenchmarkFigure1Analysis benches the symbolic pipeline (matrix →
// elimination tree → assembly tree) that Figure 1 illustrates.
func BenchmarkFigure1Analysis(b *testing.B) {
	a := sparse.Grid2D(60, 60)
	cfg := core.DefaultConfig(order.AMD, 1)
	for b.Loop() {
		if _, err := core.Analyze(a, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2Mapping benches the static distribution of a tree over
// processors (subtrees + layer types, Figure 2).
func BenchmarkFigure2Mapping(b *testing.B) {
	a := sparse.Grid3D(14, 14, 14)
	tree, _ := assembly.Analyze(a, assembly.Options{Ordering: order.ND})
	assembly.SortChildrenLiu(tree)
	opts := assembly.DefaultMapOptions(4)
	b.ResetTimer()
	for b.Loop() {
		mp := assembly.Map(tree, opts)
		if err := mp.Validate(tree); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3Blocking benches the 1D row-blocking decision for one
// type-2 front under both strategies (Figure 3's partition shapes).
func BenchmarkFigure3Blocking(b *testing.B) {
	const P = 32
	cands := make([]int, P-1)
	loads := make([]int64, P)
	mems := make([]int64, P)
	for i := range cands {
		cands[i] = i + 1
	}
	for q := 0; q < P; q++ {
		loads[q] = int64(q) * 1e7
		mems[q] = int64((q*37)%P) * 1e5
	}
	metric := func(q int) int64 { return mems[q] }
	b.Run("workload", func(b *testing.B) {
		for b.Loop() {
			sched.SelectSlavesWorkload(cands, loads[0], loads, 4000, 1e9, 1e6)
		}
	})
	b.Run("memory", func(b *testing.B) {
		for b.Loop() {
			sched.SelectSlavesMemory(cands, metric, 5000, 4000, 0)
		}
	})
}

// BenchmarkFigure4SlaveSelection benches Algorithm 1 across candidate
// counts (the memory-levelling selection of Figure 4).
func BenchmarkFigure4SlaveSelection(b *testing.B) {
	for _, P := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("P=%d", P), func(b *testing.B) {
			cands := make([]int, P-1)
			mems := make([]int64, P)
			for i := range cands {
				cands[i] = i + 1
				mems[i+1] = int64((i*131)%P) * 1e5
			}
			metric := func(q int) int64 { return mems[q] }
			b.ResetTimer()
			for b.Loop() {
				sched.SelectSlavesMemory(cands, metric, 4000, 3000, 0)
			}
		})
	}
}

// BenchmarkFigure5Latency benches a full simulation at two message
// latencies; the stale-view hazard of Figure 5 is latency-induced.
func BenchmarkFigure5Latency(b *testing.B) {
	p, err := workload.ByName(workload.SmallSuite(), "ULTRASOUND3")
	if err != nil {
		b.Fatal(err)
	}
	for _, lat := range []des.Time{1_000, 1_000_000} { // 1µs, 1ms
		b.Run(fmt.Sprintf("latency=%dns", lat), func(b *testing.B) {
			cfg := core.DefaultConfig(order.ND, benchProcs)
			cfg.Params.Comm.Latency = lat
			an, err := core.Analyze(p.Matrix(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			var peak int64
			b.ResetTimer()
			for b.Loop() {
				peak = simulate(b, an, parsim.MemoryBased()).MaxActivePeak
			}
			b.ReportMetric(float64(peak), "peak_entries")
		})
	}
}

// BenchmarkFigure7Pool benches the ready-task pool operations (Figure 7).
func BenchmarkFigure7Pool(b *testing.B) {
	for b.Loop() {
		var p sched.Pool
		for i := 0; i < 1024; i++ {
			p.Push(i)
		}
		for !p.Empty() {
			p.PopTop()
		}
	}
}

// BenchmarkFigure8TaskSelection benches Algorithm 2's pool scan (the
// delay-the-large-node decision of Figure 8).
func BenchmarkFigure8TaskSelection(b *testing.B) {
	var p sched.Pool
	for i := 0; i < 256; i++ {
		p.Push(i)
	}
	info := sched.TaskInfo{
		InSubtree: func(n int) bool { return n%7 == 0 },
		MemCost:   func(n int) int64 { return int64(n) * 1e4 },
	}
	b.ResetTimer()
	for b.Loop() {
		sched.SelectMemoryAware(&p, info, 5e5, 1e6)
	}
}

// ---- ablation benchmarks (DESIGN.md Section 5) -------------------------

// ablationCase simulates one problem/ordering under a strategy variant and
// reports peak + gain vs the workload baseline.
func ablationCase(b *testing.B, an *core.Analysis, st parsim.Strategy) {
	b.Helper()
	base := simulate(b, an, parsim.Workload())
	var res *parsim.Result
	for b.Loop() {
		res = simulate(b, an, st)
	}
	b.ReportMetric(float64(res.MaxActivePeak), "peak_entries")
	b.ReportMetric(metrics.PercentDecrease(base.MaxActivePeak, res.MaxActivePeak), "gain_pct")
	b.ReportMetric(float64(res.Alg2Deviations), "deviations")
}

// BenchmarkAblationMetric ablates the slave-selection metric: bare
// instantaneous memory (Section 4) vs + subtree peaks vs + predictions
// (Section 5.1).
func BenchmarkAblationMetric(b *testing.B) {
	p, err := workload.ByName(workload.SmallSuite(), "PRE2")
	if err != nil {
		b.Fatal(err)
	}
	an := analysisFor(b, p, order.AMD, false)
	variants := []struct {
		name string
		st   parsim.Strategy
	}{
		{"instantaneous", parsim.Strategy{MemorySlaveSelection: true}},
		{"plus_subtree", parsim.Strategy{MemorySlaveSelection: true, UseSubtreeInfo: true}},
		{"plus_prediction", parsim.Strategy{MemorySlaveSelection: true, UseSubtreeInfo: true, UsePrediction: true}},
		{"full", parsim.MemoryBased()},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) { ablationCase(b, an, v.st) })
	}
}

// BenchmarkAblationSplitThreshold sweeps the static split threshold (the
// paper: "the choice of the threshold ... should be more matrix-dependent").
func BenchmarkAblationSplitThreshold(b *testing.B) {
	p, err := workload.ByName(workload.SmallSuite(), "PRE2")
	if err != nil {
		b.Fatal(err)
	}
	base := analysisFor(b, p, order.ND, false)
	for _, div := range []int64{0, 2, 4, 8} {
		name := "nosplit"
		if div > 0 {
			name = fmt.Sprintf("largest_over_%d", div)
		}
		b.Run(name, func(b *testing.B) {
			an := base
			if div > 0 {
				var err error
				an, err = base.WithSplit(base.LargestMaster()/div, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			ablationCase(b, an, parsim.MemoryBased())
		})
	}
}

// BenchmarkAblationPoolPolicy ablates Algorithm 2 against the plain stack
// pool, holding slave selection fixed.
func BenchmarkAblationPoolPolicy(b *testing.B) {
	p, err := workload.ByName(workload.SmallSuite(), "XENON2")
	if err != nil {
		b.Fatal(err)
	}
	an := analysisFor(b, p, order.AMF, false)
	with := parsim.MemoryBased()
	without := with
	without.MemoryTaskSelection = false
	b.Run("stack", func(b *testing.B) { ablationCase(b, an, without) })
	b.Run("algorithm2", func(b *testing.B) { ablationCase(b, an, with) })
}

// BenchmarkAblationHybrid compares the pure memory strategy against the
// hybrid (workload-filtered) strategy of the paper's conclusion, on peak
// and makespan.
func BenchmarkAblationHybrid(b *testing.B) {
	p, err := workload.ByName(workload.SmallSuite(), "PRE2")
	if err != nil {
		b.Fatal(err)
	}
	an := analysisFor(b, p, order.AMD, false)
	for _, v := range []struct {
		name string
		st   parsim.Strategy
	}{
		{"workload", parsim.Workload()},
		{"memory", parsim.MemoryBased()},
		{"hybrid", parsim.Hybrid()},
	} {
		b.Run(v.name, func(b *testing.B) {
			var res *parsim.Result
			for b.Loop() {
				res = simulate(b, an, v.st)
			}
			b.ReportMetric(float64(res.MaxActivePeak), "peak_entries")
			b.ReportMetric(float64(res.Makespan)/1e6, "makespan_ms")
		})
	}
}

// BenchmarkAblationSubtreeSplit toggles the memory-based subtree
// splitting (Section 5.1's recommended companion to the subtree
// broadcasts) to measure its effect on the full memory strategy.
func BenchmarkAblationSubtreeSplit(b *testing.B) {
	p, err := workload.ByName(workload.SmallSuite(), "TWOTONE")
	if err != nil {
		b.Fatal(err)
	}
	for _, frac := range []float64{0, 0.03125, 0.0625, 0.25} {
		b.Run(fmt.Sprintf("peakfrac=%g", frac), func(b *testing.B) {
			cfg := core.DefaultConfig(order.AMD, benchProcs)
			cfg.MapOptions = assembly.DefaultMapOptions(benchProcs)
			cfg.MapOptions.SubtreePeakFrac = frac
			an, err := core.Analyze(p.Matrix(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			ablationCase(b, an, parsim.MemoryBased())
		})
	}
}

// BenchmarkAblationSubtreeOrder compares the subtree treatment orders
// (postorder vs peak-descending — the reference-[11] heuristic the paper
// points to for the subtree-order question).
func BenchmarkAblationSubtreeOrder(b *testing.B) {
	p, err := workload.ByName(workload.SmallSuite(), "MSDOOR")
	if err != nil {
		b.Fatal(err)
	}
	an := analysisFor(b, p, order.AMD, false)
	for _, v := range []struct {
		name string
		so   parsim.SubtreeOrder
	}{
		{"postorder", parsim.SubtreePostorder},
		{"peak_descending", parsim.SubtreePeakDescending},
	} {
		b.Run(v.name, func(b *testing.B) {
			st := parsim.MemoryBased()
			st.SubtreeOrder = v.so
			ablationCase(b, an, st)
		})
	}
}

// BenchmarkAblationLatency sweeps message latency to expose the stale-view
// sensitivity (Figure 5) of the memory-based strategy.
func BenchmarkAblationLatency(b *testing.B) {
	p, err := workload.ByName(workload.SmallSuite(), "TWOTONE")
	if err != nil {
		b.Fatal(err)
	}
	for _, lat := range []des.Time{0, 1_000, 100_000, 10_000_000} {
		b.Run(fmt.Sprintf("latency=%dns", lat), func(b *testing.B) {
			cfg := core.DefaultConfig(order.AMD, benchProcs)
			cfg.Params.Comm.Latency = lat
			an, err := core.Analyze(p.Matrix(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			ablationCase(b, an, parsim.MemoryBased())
		})
	}
}

// BenchmarkSequentialFactorization benches the numeric kernel (real
// partial LU + extend-add) that validates the front machinery.
func BenchmarkSequentialFactorization(b *testing.B) {
	a := sparse.Grid2D(40, 40)
	an, err := core.Analyze(a, core.DefaultConfig(order.AMD, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for b.Loop() {
		if _, err := an.Factorize(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNodeParallel measures the within-front (type-2) parallel path:
// the hybrid executor (tree tasks + master/slave row-block tasks) against
// the sequential blocked baseline on the two largest-front problems of the
// suite, at 1, 2 and 8 workers. It reports speedup_x (hardware-dependent:
// ~1x on a single core, >1x at 8 workers on multicore where the big
// root-dominated fronts actually fan out), split_fronts and slave_tasks —
// the perf trajectory BENCH_*.json tracks for this subsystem. Factors are
// bitwise identical to the sequential ones at every worker count.
func BenchmarkNodeParallel(b *testing.B) {
	for _, name := range []string{"BMWCRA_1", "ULTRASOUND3"} {
		p, err := workload.ByName(workload.Suite(), name)
		if err != nil {
			b.Fatal(err)
		}
		a := p.Matrix()
		an, err := core.Analyze(a, core.DefaultConfig(order.ND, 8))
		if err != nil {
			b.Fatal(err)
		}
		// Sequential blocked baseline, amortized for stability.
		t0 := time.Now()
		reps := 0
		for time.Since(t0) < 500*time.Millisecond {
			if _, err := an.Factorize(); err != nil {
				b.Fatal(err)
			}
			reps++
		}
		seqPerOp := time.Since(t0) / time.Duration(reps)

		for _, workers := range []int{1, 2, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(b *testing.B) {
				var splits int
				var slaves int64
				for b.Loop() {
					f, err := an.FactorizeParallel(parmf.DefaultConfig(workers))
					if err != nil {
						b.Fatal(err)
					}
					splits = f.Stats.SplitFronts
					slaves = f.Stats.SlaveTasks
				}
				perOp := b.Elapsed() / time.Duration(b.N)
				b.ReportMetric(float64(seqPerOp)/float64(perOp), "speedup_x")
				b.ReportMetric(float64(splits), "split_fronts")
				b.ReportMetric(float64(slaves), "slave_tasks")
			})
		}
	}
}

// BenchmarkParallelSpeedup measures the real shared-memory parallel
// executor (internal/parmf) against the sequential one on the largest
// symmetric problem at reproduction scale, reporting wall-clock speedup and
// the max per-worker memory peak. The speedup is hardware-dependent: ~1x on
// a single-core machine, >1.5x at 8 workers on multicore (the executor's
// scheduling overhead on one core is ~10%).
func BenchmarkParallelSpeedup(b *testing.B) {
	p, err := workload.ByName(workload.Suite(), "BMWCRA_1")
	if err != nil {
		b.Fatal(err)
	}
	an, err := core.Analyze(p.Matrix(), core.DefaultConfig(order.ND, 8))
	if err != nil {
		b.Fatal(err)
	}
	// Sequential baseline, amortized over enough repetitions to be stable.
	t0 := time.Now()
	reps := 0
	for time.Since(t0) < 500*time.Millisecond {
		if _, err := an.Factorize(); err != nil {
			b.Fatal(err)
		}
		reps++
	}
	seqPerOp := time.Since(t0) / time.Duration(reps)

	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var peak int64
			for b.Loop() {
				f, err := an.FactorizeParallel(parmf.DefaultConfig(workers))
				if err != nil {
					b.Fatal(err)
				}
				peak = f.Stats.PeakStack
			}
			perOp := b.Elapsed() / time.Duration(b.N)
			b.ReportMetric(float64(seqPerOp)/float64(perOp), "speedup_x")
			b.ReportMetric(float64(peak), "peak_entries")
		})
	}
}
