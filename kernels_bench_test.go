// Per-kernel microbenchmarks for the numeric hot path — the update
// micro-kernels (element-wise / PR-3 blocked / register-blocked / fast),
// the run-merged extend-add, the front arena, the root-front
// decomposition (1D row blocks vs the 2D type-3 tile grid) and the
// blocked multi-RHS solve phase — plus a JSON emitter that makes the
// perf trajectory machine-readable:
//
//	go test -run '^$' -benchjson BENCH_kernels.json .
//
// runs every kernel benchmark through testing.Benchmark and writes an
// environment header (go version, GOARCH/GOAMD64, detected CPU vector
// features, GOMAXPROCS) followed by {name, ns_per_op, mb_per_s,
// allocs_per_op} records to the file — the header makes runs comparable
// across machines, since the simd rows depend on what the CPU has. The
// same cases are exposed as ordinary sub-benchmarks of
// BenchmarkUpdateKernel / BenchmarkExtendAdd / BenchmarkArenaReuse for
// interactive -bench runs.
package repro

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/front"
	"repro/internal/ooc"
	"repro/internal/order"
	"repro/internal/parmf"
	"repro/internal/seqmf"
	"repro/internal/sparse"
	"repro/internal/trace"
	"repro/internal/workload"
)

var benchJSON = flag.String("benchjson", "", "write the kernel benchmark results as JSON to this file")

func TestMain(m *testing.M) {
	code := m.Run()
	if code == 0 && *benchJSON != "" {
		if err := writeKernelBenchJSON(*benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			code = 1
		}
	}
	os.Exit(code)
}

// ---- update kernels ----------------------------------------------------

const (
	benchFrontN    = 768
	benchFrontNPiv = 384
)

func benchDiagDominant(n int, rng *rand.Rand) *dense.Matrix {
	m := dense.New(n, n)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		var sum float64
		for j := range row {
			if j != i {
				v := rng.NormFloat64()
				// An assembled front is full of structural zeros; keep some
				// so the zero-skip paths of the kernels stay on-profile.
				if rng.Float64() < 0.3 {
					v = 0
				}
				row[j] = v
				if v < 0 {
					sum -= v
				} else {
					sum += v
				}
			}
		}
		row[i] = sum + 1
	}
	return m
}

func benchSPD(n int, rng *rand.Rand) *dense.Matrix {
	m := benchDiagDominant(n, rng)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			m.Set(j, i, m.At(i, j)) // symmetrize; diagonal dominance => SPD
		}
	}
	return m
}

type kernelBenchCase struct {
	name string
	fn   func(b *testing.B)
}

func updateKernelCases() []kernelBenchCase {
	rng := rand.New(rand.NewSource(21))
	lu := benchDiagDominant(benchFrontN, rng)
	spd := benchSPD(benchFrontN, rng)
	bytes := int64(8 * benchFrontN * benchFrontN)

	luCase := func(name string, run func(f *dense.Matrix) error) kernelBenchCase {
		return kernelBenchCase{name: "UpdateKernel/lu/" + name, fn: func(b *testing.B) {
			work := dense.New(benchFrontN, benchFrontN)
			b.SetBytes(bytes)
			b.ReportAllocs()
			b.ResetTimer()
			for b.Loop() {
				copy(work.A, lu.A)
				if err := run(work); err != nil {
					b.Fatal(err)
				}
			}
		}}
	}
	cholCase := func(name string, run func(f *dense.Matrix) error) kernelBenchCase {
		return kernelBenchCase{name: "UpdateKernel/cholesky/" + name, fn: func(b *testing.B) {
			work := dense.New(benchFrontN, benchFrontN)
			b.SetBytes(bytes)
			b.ReportAllocs()
			b.ResetTimer()
			for b.Loop() {
				copy(work.A, spd.A)
				if err := run(work); err != nil {
					b.Fatal(err)
				}
			}
		}}
	}
	return []kernelBenchCase{
		luCase("element", func(f *dense.Matrix) error {
			return dense.PartialLU(f, benchFrontNPiv, 1e-14)
		}),
		luCase("blocked", func(f *dense.Matrix) error {
			return dense.BlockedPartialLU(f, benchFrontNPiv, 1e-14, dense.DefaultBlockRows)
		}),
		luCase("register", func(f *dense.Matrix) error {
			return dense.KernelDefault.PartialLU(f, benchFrontNPiv, 1e-14, dense.DefaultBlockRows)
		}),
		luCase("fast", func(f *dense.Matrix) error {
			return dense.KernelFast.PartialLU(f, benchFrontNPiv, 1e-14, dense.DefaultBlockRows)
		}),
		luCase("simd", func(f *dense.Matrix) error {
			return dense.KernelSIMD.PartialLU(f, benchFrontNPiv, 1e-14, dense.DefaultBlockRows)
		}),
		cholCase("element", func(f *dense.Matrix) error {
			return dense.PartialCholesky(f, benchFrontNPiv)
		}),
		cholCase("blocked", func(f *dense.Matrix) error {
			return dense.BlockedPartialCholesky(f, benchFrontNPiv, dense.DefaultBlockRows)
		}),
		cholCase("register", func(f *dense.Matrix) error {
			return dense.KernelDefault.PartialCholesky(f, benchFrontNPiv, dense.DefaultBlockRows)
		}),
		cholCase("fast", func(f *dense.Matrix) error {
			return dense.KernelFast.PartialCholesky(f, benchFrontNPiv, dense.DefaultBlockRows)
		}),
		cholCase("simd", func(f *dense.Matrix) error {
			return dense.KernelSIMD.PartialCholesky(f, benchFrontNPiv, dense.DefaultBlockRows)
		}),
	}
}

// BenchmarkUpdateKernel compares the kernel families on one large front
// (order 768, 384 pivots, ~30% structural zeros): element-wise, PR-3
// blocked, register-blocked (the KernelDefault dispatch — bitwise
// identical to element-wise), fast (reordered accumulation) and simd
// (fused FMA chains — AVX2/FMA assembly where the CPU has it, the
// bitwise-identical portable fallback otherwise).
func BenchmarkUpdateKernel(b *testing.B) {
	for _, c := range updateKernelCases() {
		b.Run(c.name[len("UpdateKernel/"):], c.fn)
	}
}

// ---- extend-add --------------------------------------------------------

func extendAddCases() []kernelBenchCase {
	const nf, ncb = 1024, 512
	rng := rand.New(rand.NewSource(22))
	cb := dense.New(ncb, ncb)
	for i := range cb.A {
		cb.A[i] = rng.NormFloat64()
	}
	// contiguous: one long run (a child whose rows are a parent slice);
	// fragmented: runs of ~4 separated by gaps (interleaved structures).
	contig := make([]int, ncb)
	for i := range contig {
		contig[i] = 17 + i
	}
	frag := make([]int, ncb)
	next := 0
	for i := range frag {
		frag[i] = next
		if (i+1)%4 == 0 {
			next += 2
		}
		next++
	}
	// vector: runs of 32 separated by gaps — long enough that the 4-row
	// blocked vector adds dominate, short enough that run decode still
	// shows up. The middle ground between the two extremes above.
	vec := make([]int, ncb)
	next = 0
	for i := range vec {
		vec[i] = next
		if (i+1)%32 == 0 {
			next += 3
		}
		next++
	}
	bytes := int64(8 * ncb * ncb * 2)

	mk := func(name string, map_ []int, lower bool) kernelBenchCase {
		return kernelBenchCase{name: "ExtendAdd/" + name, fn: func(b *testing.B) {
			f := dense.New(nf, nf)
			runs := dense.AppendRuns(nil, map_)
			b.SetBytes(bytes)
			b.ReportAllocs()
			b.ResetTimer()
			for b.Loop() {
				if lower {
					dense.ExtendAddLowerRuns(f, cb, map_, runs)
				} else {
					dense.ExtendAddRuns(f, cb, map_, runs)
				}
			}
		}}
	}
	return []kernelBenchCase{
		mk("full/contiguous", contig, false),
		mk("full/fragmented", frag, false),
		mk("full/vector", vec, false),
		mk("lower/contiguous", contig, true),
		mk("lower/fragmented", frag, true),
		mk("lower/vector", vec, true),
	}
}

// BenchmarkExtendAdd measures the run-merged scatter on three map shapes:
// one long consecutive run (pure vector adds), short fragmented runs of 4
// (the worst case for run detection, served by the inlined scalar path)
// and medium runs of 32 (the 4-row blocked vector-add path).
func BenchmarkExtendAdd(b *testing.B) {
	for _, c := range extendAddCases() {
		b.Run(c.name[len("ExtendAdd/"):], c.fn)
	}
}

// ---- arena -------------------------------------------------------------

func arenaCases() []kernelBenchCase {
	cycle := func(a *front.Arena) {
		// One executor step: assemble a front, stack a CB, retire both a
		// step later — the steady-state shape of the factorize loop.
		fr := a.Matrix(256, 256)
		cb := a.Matrix(128, 128)
		a.Free(fr)
		a.Free(cb)
	}
	return []kernelBenchCase{
		{name: "ArenaReuse/arena", fn: func(b *testing.B) {
			a := front.NewArena()
			cycle(a) // warm the size classes
			b.ReportAllocs()
			b.ResetTimer()
			for b.Loop() {
				cycle(a)
			}
		}},
		{name: "ArenaReuse/alloc", fn: func(b *testing.B) {
			b.ReportAllocs()
			for b.Loop() {
				cycle(nil) // nil arena = plain allocation
			}
		}},
	}
}

// BenchmarkArenaReuse pins the zero-alloc claim: the arena-backed
// front+CB cycle runs at ~0 allocs/op in the steady state, against the
// plain-allocation baseline.
func BenchmarkArenaReuse(b *testing.B) {
	for _, c := range arenaCases() {
		b.Run(c.name[len("ArenaReuse/"):], c.fn)
	}
}

// ---- root front (1D vs 2D type-3) --------------------------------------

// rootFrontAnalysis prepares the root-dominated problem of the suite:
// GUPTA3's root front (order ~2157) carries ~99% of the total elimination
// flops, so the whole-factorization time is effectively the root-front
// time and the 1D-vs-2D decomposition difference is what the benchmark
// measures. Analysis is shared across the cases; the numeric runs are not.
var rootFrontAnalysis = sync.OnceValue(func() *core.Analysis {
	p, err := workload.ByName(workload.Suite(), "GUPTA3")
	if err != nil {
		panic(err)
	}
	a := p.Matrix()
	if !a.HasValues() {
		if err := sparse.FillDominant(a, rand.New(rand.NewSource(7))); err != nil {
			panic(err)
		}
	}
	an, err := core.Analyze(a, core.DefaultConfig(order.ND, 8))
	if err != nil {
		panic(err)
	}
	return an
})

func rootFrontCases() []kernelBenchCase {
	mk := func(name string, workers, grid int) kernelBenchCase {
		return kernelBenchCase{name: "RootFront/gupta3/" + name, fn: func(b *testing.B) {
			an := rootFrontAnalysis()
			var rootNs int64
			n := 0
			b.ResetTimer()
			for b.Loop() {
				cfg := parmf.DefaultConfig(workers)
				cfg.RootGrid = grid
				pf, err := an.FactorizeParallel(cfg)
				if err != nil {
					b.Fatal(err)
				}
				rootNs += pf.Stats.RootFrontNs
				n++
			}
			if n > 0 {
				b.ReportMetric(float64(rootNs)/float64(n)/1e6, "root_ms")
			}
		}}
	}
	return []kernelBenchCase{
		// 1 worker never splits: the sequential baseline for both paths.
		mk("seq/w1", 1, -1),
		mk("1d/w2", 2, -1),
		mk("2d/w2", 2, 0),
		mk("1d/w8", 8, -1),
		mk("2d/w8", 8, 0),
	}
}

// BenchmarkRootFront runs the root-dominated GUPTA3 factorization with the
// root front on the 1D row partition vs the 2D (type-3) tile grid at 1, 2
// and 8 workers. ns/op is the whole factorization (~99% root front here);
// the root_ms metric is the measured root-front wall time. The factors are
// bitwise identical across every case — only the decomposition of the root
// front's work changes.
func BenchmarkRootFront(b *testing.B) {
	for _, c := range rootFrontCases() {
		b.Run(c.name[len("RootFront/"):], c.fn)
	}
}

// ---- solve phase -------------------------------------------------------

type solveBenchState struct {
	an *core.Analysis
	sf *seqmf.Factors // in-core factors
	of *seqmf.Factors // OOC factors (spilled to the store below)
	st *ooc.FileStore
}

// solveBenchSetup factors GUPTA3 exactly once per store type and shares
// the factors across every solve case — the factorizations (~0.4 s each)
// would otherwise dwarf the tens-of-ms solves being measured.
var solveBenchSetup = sync.OnceValue(func() *solveBenchState {
	an := rootFrontAnalysis()
	sf, err := an.Factorize()
	if err != nil {
		panic(err)
	}
	of, st, err := an.FactorizeOOC()
	if err != nil {
		panic(err)
	}
	return &solveBenchState{an: an, sf: sf, of: of, st: st}
})

func solveCases() []kernelBenchCase {
	mk := func(store string, workers, nrhs int) kernelBenchCase {
		name := fmt.Sprintf("Solve/gupta3/%s/w%d/nrhs%d", store, workers, nrhs)
		return kernelBenchCase{name: name, fn: func(b *testing.B) {
			s := solveBenchSetup()
			n := s.an.Permuted.N
			rng := rand.New(rand.NewSource(31))
			rhs := make([]float64, n*nrhs)
			for i := range rhs {
				rhs[i] = rng.NormFloat64()
			}
			f := s.sf
			if store == "ooc" {
				f = s.of
			}
			solve := func() ([]float64, error) { return f.SolveMulti(rhs, nrhs) }
			if workers > 1 {
				ts := parmf.NewTreeSolver(f.Store(), s.an.Tree, s.an.Permuted.Kind, workers, 0)
				solve = func() ([]float64, error) { return ts.SolveMulti(rhs, nrhs) }
			}
			b.ReportAllocs()
			b.ResetTimer()
			for b.Loop() {
				if _, err := solve(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/1e6, "solve_ms")
		}}
	}
	var cases []kernelBenchCase
	for _, store := range []string{"incore", "ooc"} {
		for _, workers := range []int{1, 2, 8} {
			for _, nrhs := range []int{1, 16, 64} {
				cases = append(cases, mk(store, workers, nrhs))
			}
		}
	}
	return cases
}

// BenchmarkSolve measures the blocked multi-RHS solve phase on GUPTA3:
// in-core vs out-of-core factors, sequential (w1) vs tree-parallel (w2,
// w8) walks, for 1, 16 and 64 right-hand sides in one blocked pass. The
// factorizations are shared across cases; only the solve is timed
// (solve_ms = wall ms per whole-block solve). All cases produce bitwise
// identical columns; OOC cases stream the factor file exactly twice per
// solve regardless of nrhs.
func BenchmarkSolve(b *testing.B) {
	for _, c := range solveCases() {
		b.Run(c.name[len("Solve/"):], c.fn)
	}
}

// ---- tracing overhead ---------------------------------------------------

func tracingCases() []kernelBenchCase {
	mkRun := func(name string, traced bool) kernelBenchCase {
		return kernelBenchCase{name: "Tracing/gupta3/" + name, fn: func(b *testing.B) {
			an := rootFrontAnalysis()
			var events int64
			n := 0
			b.ResetTimer()
			for b.Loop() {
				cfg := parmf.DefaultConfig(8)
				if traced {
					cfg.Tracer = trace.New(8)
				}
				if _, err := an.FactorizeParallel(cfg); err != nil {
					b.Fatal(err)
				}
				events += int64(cfg.Tracer.Events())
				n++
			}
			if traced && n > 0 {
				b.ReportMetric(float64(events)/float64(n), "events/op")
			}
		}}
	}
	return []kernelBenchCase{
		mkRun("untraced/w8", false),
		mkRun("traced/w8", true),
		// The per-event cost an executor pays when tracing is disabled:
		// one task's worth of nil-tracer calls (must be 0 allocs/op).
		{name: "Tracing/nilops", fn: func(b *testing.B) {
			var tr *trace.Tracer
			b.ReportAllocs()
			for b.Loop() {
				tr.Instant(0, trace.EvClaim, 1, 0)
				tr.Begin(0, trace.SpanTask, 1)
				tr.Begin(0, trace.SpanAssemble, 1)
				tr.End(0, trace.SpanAssemble, 1)
				tr.Begin(0, trace.SpanFactor, 1)
				tr.End(0, trace.SpanFactor, 1)
				tr.Instant(0, trace.EvPut, 1, 64)
				tr.End(0, trace.SpanTask, 1)
			}
		}},
	}
}

// ---- live scrape cost ---------------------------------------------------

func liveScrapeCases() []kernelBenchCase {
	return []kernelBenchCase{
		// One /metrics scrape (incremental fold + Prometheus rendering)
		// while a traced 8-worker GUPTA3 factorization runs underneath —
		// the cost the observability server pays per scrape, measured
		// against live event traffic, not a quiet tracer.
		{name: "LiveScrape/gupta3/scrape/w8", fn: func(b *testing.B) {
			an := rootFrontAnalysis()
			tr := trace.New(8)
			col := trace.NewCollector(tr)
			var stop atomic.Bool
			done := make(chan struct{})
			go func() {
				defer close(done)
				for !stop.Load() {
					cfg := parmf.DefaultConfig(8)
					cfg.Tracer = tr
					if _, err := an.FactorizeParallel(cfg); err != nil {
						b.Error(err)
						return
					}
				}
			}()
			b.ReportAllocs()
			b.ResetTimer()
			for b.Loop() {
				if err := col.Scrape().WritePrometheus(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			stop.Store(true)
			<-done
		}},
		// The progress-ledger cost an untraced run pays with no listener
		// attached: a front completion's worth of nil-tracer calls. Must
		// stay at 0 allocs/op (pinned by trace.TestNilTracerZeroAllocs).
		{name: "LiveScrape/nolistener", fn: func(b *testing.B) {
			var tr *trace.Tracer
			b.ReportAllocs()
			for b.Loop() {
				tr.SetTotals(100, 1000)
				tr.FrontDone(10)
				_ = tr.Progress()
			}
		}},
	}
}

// BenchmarkLiveScrape measures the observability server's scrape path:
// one incremental Collector fold plus a full Prometheus rendering while
// a traced 8-worker GUPTA3 factorization generates events underneath,
// and the nil-tracer progress ops an untraced, listenerless run pays.
func BenchmarkLiveScrape(b *testing.B) {
	for _, c := range liveScrapeCases() {
		b.Run(c.name[len("LiveScrape/"):], c.fn)
	}
}

// BenchmarkTracing measures the observability overhead on the GUPTA3
// factorization at 8 workers: an untraced run (nil tracer — the baseline
// the executors must not regress) against a fully traced one (all spans
// plus per-mutation memory counters; events/op reports the recorded
// volume). Tracing/nilops isolates the disabled path itself: a task's
// worth of nil-receiver calls, pinned at 0 allocs/op by
// trace.TestNilTracerZeroAllocs.
func BenchmarkTracing(b *testing.B) {
	for _, c := range tracingCases() {
		b.Run(c.name[len("Tracing/"):], c.fn)
	}
}

// ---- JSON emitter ------------------------------------------------------

type benchRecord struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	MBPerS      float64            `json:"mb_per_s"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"` // custom metrics (e.g. root_ms)
}

// benchEnv is the environment header of the JSON output: the build and
// machine facts that make two runs comparable (or not) — the simd rows in
// particular depend on CPUFeatures.
type benchEnv struct {
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	GOAMD64     string `json:"goamd64,omitempty"` // amd64 microarchitecture level the binary was built for
	CPUFeatures string `json:"cpu_features"`      // dense.SIMDFeatures(): avx2+fma, avx2+fma(off) or portable
	GOMAXPROCS  int    `json:"gomaxprocs"`
}

func benchEnvInfo() benchEnv {
	e := benchEnv{
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUFeatures: dense.SIMDFeatures(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "GOAMD64" {
				e.GOAMD64 = s.Value
			}
		}
	}
	if e.GOAMD64 == "" {
		e.GOAMD64 = os.Getenv("GOAMD64")
	}
	return e
}

func writeKernelBenchJSON(path string) error {
	var cases []kernelBenchCase
	cases = append(cases, updateKernelCases()...)
	cases = append(cases, extendAddCases()...)
	cases = append(cases, arenaCases()...)
	cases = append(cases, rootFrontCases()...)
	cases = append(cases, solveCases()...)
	cases = append(cases, tracingCases()...)
	cases = append(cases, liveScrapeCases()...)
	var recs []benchRecord
	for _, c := range cases {
		r := testing.Benchmark(c.fn)
		rec := benchRecord{
			Name:        c.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if r.Bytes > 0 && r.T > 0 {
			rec.MBPerS = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
		}
		if len(r.Extra) > 0 {
			rec.Extra = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				rec.Extra[k] = v
			}
		}
		recs = append(recs, rec)
	}
	doc := struct {
		Env     benchEnv      `json:"env"`
		Results []benchRecord `json:"results"`
	}{benchEnvInfo(), recs}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
