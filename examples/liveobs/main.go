// Liveobs: the in-flight observability plane. An embedded internal/obs
// server watches a traced parallel out-of-core factorization while it
// runs: the example polls its own /progress endpoint over HTTP from a
// second goroutine, printing a progress bar with ETA as fronts complete,
// then dumps an excerpt of the final Prometheus scrape. The same plane
// is what cmd/parfactor and cmd/oocfactor expose behind -listen (see
// README "Observability": curl /metrics, /progress, /runs, /trace.json,
// /timeline.csv or /debug/pprof while a factorization executes).
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/order"
	"repro/internal/parmf"
	"repro/internal/sparse"
	"repro/internal/trace"
)

const workers = 4

func main() {
	log.SetFlags(0)

	// A grid problem big enough that the poller catches it mid-flight.
	a := sparse.Grid3D(26, 26, 26)
	cfg := core.DefaultConfig(order.ND, workers)
	cfg.Tracer = trace.New(workers)
	an, err := core.Analyze(a, cfg)
	if err != nil {
		log.Fatal(err)
	}

	srv, err := obs.NewServer("127.0.0.1:0", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	run, err := srv.Registry().Register("grid3d-26", cfg.Tracer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("observability plane live on %s\n", srv.URL())
	fmt.Printf("factoring n=%d (%d fronts, %d workers)\n\n", a.N, an.Tree.Len(), workers)

	done := make(chan error, 1)
	go func() {
		f, st, err := an.FactorizeParallelOOC(parmf.Config{Workers: workers})
		if err != nil {
			run.Fail(err)
			done <- err
			return
		}
		defer st.Close()
		run.SetSpill(st.Stats)
		run.Complete(f.Stats.ExecStats)
		done <- nil
	}()

	// Watch the run the way an external dashboard would: over HTTP.
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
poll:
	for {
		select {
		case err := <-done:
			if err != nil {
				log.Fatal(err)
			}
			break poll
		case <-tick.C:
			if pr, ok := fetchProgress(srv.URL(), run.ID()); ok && pr.FrontsTotal > 0 {
				fmt.Printf("  [%-30s] %5.1f%%  %4d/%d fronts  eta %5.2fs  resident %d entries\n",
					strings.Repeat("#", int(pr.Ratio*30)), pr.Ratio*100,
					pr.FrontsDone, pr.FrontsTotal, pr.ETASeconds, pr.ResidentEntries)
			}
		}
	}

	pr := run.Progress()
	fmt.Printf("\ndone: %d fronts, %.2fs wall, resident peak %d entries\n",
		pr.FrontsDone, pr.ElapsedSeconds, pr.ResidentPeakEntries)

	// The final scrape now carries the executor's authoritative stats.
	resp, err := http.Get(srv.URL() + "/metrics?run=" + run.ID())
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := trace.LintPrometheus(body); err != nil {
		log.Fatalf("final scrape not exposition-clean: %v", err)
	}
	fmt.Println("\nfinal /metrics excerpt:")
	for _, line := range strings.Split(string(body), "\n") {
		for _, want := range []string{"mf_resident_peak_entries ", "mf_fronts_done_total ",
			"mf_flops_done_total ", "mf_progress_ratio ", "mf_runs_active "} {
			if strings.HasPrefix(line, want) {
				fmt.Println("  " + line)
			}
		}
	}
}

// fetchProgress reads one run's row from the server's /progress JSON.
func fetchProgress(url, id string) (trace.ProgressSnapshot, bool) {
	resp, err := http.Get(url + "/progress")
	if err != nil {
		return trace.ProgressSnapshot{}, false
	}
	defer resp.Body.Close()
	var out struct {
		Runs []struct {
			ID       string                  `json:"id"`
			Progress *trace.ProgressSnapshot `json:"progress"`
		} `json:"runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return trace.ProgressSnapshot{}, false
	}
	for _, r := range out.Runs {
		if r.ID == id && r.Progress != nil {
			return *r.Progress, true
		}
	}
	return trace.ProgressSnapshot{}, false
}
