// Quickstart: analyze, numerically factorize and solve a sparse SPD
// system, then simulate the same factorization on 8 processors under both
// scheduling strategies and compare memory peaks.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/order"
	"repro/internal/parsim"
	"repro/internal/sparse"
)

func main() {
	log.SetFlags(0)
	// A 3D Poisson problem, symmetric positive definite.
	a := sparse.Grid3D(12, 12, 12)
	fmt.Printf("matrix: n=%d, nnz=%d (%v)\n", a.N, a.NNZ(), a.Kind)

	// Symbolic analysis with nested dissection on 8 simulated processors.
	an, err := core.Analyze(a, core.DefaultConfig(order.ND, 8))
	if err != nil {
		log.Fatal(err)
	}
	st := an.Stats()
	fmt.Printf("analysis: %d fronts, max front %d, %.3g flops, %d subtrees\n",
		st.Fronts, st.MaxFront, float64(st.Flops), st.Subtrees)

	// Real numeric factorization + solve.
	f, err := an.Factorize()
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	x0 := make([]float64, a.N)
	for i := range x0 {
		x0[i] = rng.NormFloat64()
	}
	b := a.MulVec(x0)
	x, err := f.SolveOriginal(b)
	if err != nil {
		log.Fatal(err)
	}
	var maxErr float64
	for i := range x {
		if d := x[i] - x0[i]; d > maxErr || -d > maxErr {
			maxErr = d
			if maxErr < 0 {
				maxErr = -maxErr
			}
		}
	}
	fmt.Printf("numeric: factored %d fronts, stack peak %d entries, max |x-x0| = %.2e\n",
		f.Stats.Fronts, f.Stats.PeakStack, maxErr)

	// Multi-RHS solve: several right-hand sides as one blocked pass over
	// the factors (row-major n x nrhs). Column c of the block solves to
	// the exact bits of a single-RHS solve of that column.
	const nrhs = 4
	bs := make([]float64, a.N*nrhs)
	for i := 0; i < a.N; i++ {
		for c := 0; c < nrhs; c++ {
			bs[i*nrhs+c] = b[i] * float64(c+1)
		}
	}
	xs, err := f.SolveOriginalMulti(bs, nrhs)
	if err != nil {
		log.Fatal(err)
	}
	var maxDev float64
	for i := range x {
		// Column 0 of the block is the single-RHS system solved above.
		if d := xs[i*nrhs] - x[i]; d > maxDev || -d > maxDev {
			maxDev = d
			if maxDev < 0 {
				maxDev = -maxDev
			}
		}
	}
	fmt.Printf("multi-rhs: solved %d systems in one pass, max |x_block - x| = %g (bitwise)\n",
		nrhs, maxDev)

	// Parallel simulation: workload-based vs memory-based scheduling.
	for _, s := range []struct {
		name string
		st   parsim.Strategy
	}{
		{"workload-based (MUMPS baseline)", parsim.Workload()},
		{"memory-based   (paper)         ", parsim.MemoryBased()},
	} {
		res, err := an.Simulate(s.st)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("simulate %s: max peak %6d entries, time %.1f ms, %d msgs\n",
			s.name, res.MaxActivePeak, float64(res.Makespan)/1e6, res.Messages)
	}
}
