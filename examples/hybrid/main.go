// Hybrid: the paper's slave-selection strategies, simulated *and* run for
// real. Part 1 compares the three strategies — the MUMPS workload
// baseline, the paper's memory-based strategy, and the hybrid its
// conclusion calls for — in the message-passing simulator across the four
// orderings. Part 2 runs the real hybrid executor (tree parallelism +
// within-front master/slave row-block tasks) on the same problem with the
// same slave-selection heuristics wired to live worker state, and puts
// the simulator's predicted per-processor peak next to the measured one.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/order"
	"repro/internal/parmf"
	"repro/internal/parsim"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	const procs = 8
	p, err := workload.ByName(workload.Suite(), "TWOTONE")
	if err != nil {
		log.Fatal(err)
	}
	a := p.Matrix()
	fmt.Printf("%s: n=%d nnz=%d, %d processors/workers\n\n", p.Name, a.N, a.NNZ(), procs)

	strategies := []struct {
		name string
		st   parsim.Strategy
	}{
		{"workload (MUMPS baseline)", parsim.Workload()},
		{"memory-based (paper)", parsim.MemoryBased()},
		{"hybrid (conclusion)", parsim.Hybrid()},
	}

	t := metrics.New("simulated: peak = max over processors of the stack memory peak (entries)",
		"ordering", "strategy", "peak", "gain %", "makespan (ms)", "time loss %")
	for _, m := range order.Methods {
		an, err := core.Analyze(a, core.DefaultConfig(m, procs))
		if err != nil {
			log.Fatal(err)
		}
		var basePeak, baseTime int64
		for i, s := range strategies {
			res, err := an.Simulate(s.st)
			if err != nil {
				log.Fatal(err)
			}
			if i == 0 {
				basePeak, baseTime = res.MaxActivePeak, int64(res.Makespan)
			}
			t.AddRow(m.String(), s.name, res.MaxActivePeak,
				fmt.Sprintf("%.1f", metrics.PercentDecrease(basePeak, res.MaxActivePeak)),
				fmt.Sprintf("%.2f", float64(res.Makespan)/1e6),
				fmt.Sprintf("%.1f", metrics.PercentIncrease(baseTime, int64(res.Makespan))))
		}
	}
	fmt.Println(t.Render())
	fmt.Println("The hybrid keeps the memory strategy's slave choices inside the")
	fmt.Println("set of processors the workload balancer would consider, trading a")
	fmt.Println("little of the memory gain for a smaller time penalty.")
	fmt.Println()

	// Part 2: the real hybrid executor. The same problem factors for real
	// with tree tasks + within-front row-block tasks; the slave selection
	// heuristics now see live worker trackers instead of simulated views.
	an, err := core.Analyze(a, core.DefaultConfig(order.ND, procs))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("real hybrid executor (METIS ordering, %d workers, front-split %d):\n",
		procs, an.FrontSplitThreshold())

	real := []struct {
		name   string
		sim    parsim.Strategy
		slaves parmf.SlavePolicy
	}{
		{"workload slaves", parsim.Workload(), parmf.SlavesWorkload},
		{"memory slaves (Alg. 1)", parsim.MemoryBased(), parmf.SlavesMemory},
	}
	rt := metrics.New("predicted (simulator) vs measured (executor) max per-worker active peak",
		"slave selection", "predicted peak", "measured peak", "wall (s)", "split fronts", "slave tasks")
	for _, r := range real {
		res, err := an.Simulate(r.sim)
		if err != nil {
			log.Fatal(err)
		}
		cfg := parmf.DefaultConfig(procs)
		cfg.SlavePolicy = r.slaves
		cfg.RootGrid = -1 // part 3 isolates the root decomposition
		t0 := time.Now()
		pf, err := an.FactorizeParallel(cfg)
		if err != nil {
			log.Fatal(err)
		}
		wall := time.Since(t0)
		var measured int64
		for _, pk := range pf.Stats.WorkerPeaks {
			if pk > measured {
				measured = pk
			}
		}
		rt.AddRow(r.name, res.MaxActivePeak, measured,
			fmt.Sprintf("%.3f", wall.Seconds()), pf.Stats.SplitFronts, pf.Stats.SlaveTasks)
	}
	fmt.Println(rt.Render())
	fmt.Println("The simulator charges whole fronts and simulated messages; the")
	fmt.Println("executor charges the master part plus live row-block shares, so")
	fmt.Println("the measured peak tracks the prediction without matching it")
	fmt.Println("exactly. Factors are bitwise identical under every setting.")
	fmt.Println()

	// Part 3: the root front, 1D vs 2D. The tree's parallelism is gone at
	// the root, so its decomposition caps the whole executor: the 1D split
	// leaves the panel's U sweep on the master and runs out of row blocks
	// near the end, while the 2D tile grid turns both into claimable
	// tasks. The simulator's predicted peak (memory strategy) is the
	// reference line; the factors are bitwise identical in every row.
	res, err := an.Simulate(parsim.MemoryBased())
	if err != nil {
		log.Fatal(err)
	}
	gt := metrics.New(fmt.Sprintf("root-front decomposition at %d workers (predicted peak %d entries)",
		procs, res.MaxActivePeak),
		"root partition", "root front (s)", "total wall (s)", "slave tasks", "stolen", "measured peak")
	for _, g := range []struct {
		name string
		grid int
	}{
		{"1D row blocks", -1},
		{"2D auto grid", 0},
		{"2D flat 1-row grid", 1},
	} {
		cfg := parmf.DefaultConfig(procs)
		cfg.RootGrid = g.grid
		t0 := time.Now()
		pf, err := an.FactorizeParallel(cfg)
		if err != nil {
			log.Fatal(err)
		}
		wall := time.Since(t0)
		var measured int64
		for _, pk := range pf.Stats.WorkerPeaks {
			if pk > measured {
				measured = pk
			}
		}
		gt.AddRow(g.name, fmt.Sprintf("%.3f", float64(pf.Stats.RootFrontNs)/1e9),
			fmt.Sprintf("%.3f", wall.Seconds()),
			pf.Stats.SlaveTasks, pf.Stats.SlaveSteals, measured)
	}
	fmt.Println(gt.Render())
	fmt.Println("The 2D rows differ only in which worker each tile *prefers*: the")
	fmt.Println("tile boundaries — and therefore the factors, bit for bit — are a")
	fmt.Println("pure function of the front and the panel width.")
}
