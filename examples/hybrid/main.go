// Hybrid: compares the three slave-selection strategies — the MUMPS
// workload baseline, the paper's memory-based strategy, and the hybrid
// the paper's conclusion calls for ("hybrid strategies well adapted at
// both balancing the workload and the memory") — on one circuit problem
// across all four orderings, reporting both the memory peak and the
// simulated factorization time so the memory/time trade-off is visible.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/order"
	"repro/internal/parsim"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	const procs = 32
	p, err := workload.ByName(workload.Suite(), "TWOTONE")
	if err != nil {
		log.Fatal(err)
	}
	a := p.Matrix()
	fmt.Printf("%s: n=%d nnz=%d, %d simulated processors\n\n", p.Name, a.N, a.NNZ(), procs)

	strategies := []struct {
		name string
		st   parsim.Strategy
	}{
		{"workload (MUMPS baseline)", parsim.Workload()},
		{"memory-based (paper)", parsim.MemoryBased()},
		{"hybrid (conclusion)", parsim.Hybrid()},
	}

	t := metrics.New("peak = max over processors of the stack memory peak (entries)",
		"ordering", "strategy", "peak", "gain %", "makespan (ms)", "time loss %")
	for _, m := range order.Methods {
		an, err := core.Analyze(a, core.DefaultConfig(m, procs))
		if err != nil {
			log.Fatal(err)
		}
		var basePeak, baseTime int64
		for i, s := range strategies {
			res, err := an.Simulate(s.st)
			if err != nil {
				log.Fatal(err)
			}
			if i == 0 {
				basePeak, baseTime = res.MaxActivePeak, int64(res.Makespan)
			}
			t.AddRow(m.String(), s.name, res.MaxActivePeak,
				fmt.Sprintf("%.1f", metrics.PercentDecrease(basePeak, res.MaxActivePeak)),
				fmt.Sprintf("%.2f", float64(res.Makespan)/1e6),
				fmt.Sprintf("%.1f", metrics.PercentIncrease(baseTime, int64(res.Makespan))))
		}
	}
	fmt.Println(t.Render())
	fmt.Println("The hybrid keeps the memory strategy's slave choices inside the")
	fmt.Println("set of processors the workload balancer would consider, trading a")
	fmt.Println("little of the memory gain for a smaller time penalty.")
}
