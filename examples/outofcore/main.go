// Outofcore: quantifies the out-of-core argument of the paper's
// conclusion. Factors are written once and "not reaccessed before the
// solve phase", so they can live on disk; what must stay in memory is
// the stack (contribution blocks + active fronts). This example compares,
// per strategy:
//
//	in-core total peak   max over procs of factors + stack + fronts
//	stack peak           max over procs of stack + fronts (the paper's metric)
//
// The gap is the memory an out-of-core execution saves — and the reason
// the paper says minimizing the stack "is crucial": it is all that
// remains once factors are on disk.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/order"
	"repro/internal/parsim"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	const procs = 32
	p, err := workload.ByName(workload.Suite(), "PRE2")
	if err != nil {
		log.Fatal(err)
	}
	a := p.Matrix()
	fmt.Printf("%s: n=%d nnz=%d, %d simulated processors\n\n", p.Name, a.N, a.NNZ(), procs)

	t := metrics.New("peaks in matrix entries (max over processors)",
		"ordering", "strategy", "in-core total", "stack (OOC resident)", "OOC saving %")
	for _, m := range order.Methods {
		an, err := core.Analyze(a, core.DefaultConfig(m, procs))
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range []struct {
			name string
			st   parsim.Strategy
		}{
			{"workload", parsim.Workload()},
			{"memory-based", parsim.MemoryBased()},
		} {
			res, err := an.Simulate(s.st)
			if err != nil {
				log.Fatal(err)
			}
			t.AddRow(m.String(), s.name, res.MaxTotalPeak, res.MaxActivePeak,
				fmt.Sprintf("%.1f", metrics.PercentDecrease(res.MaxTotalPeak, res.MaxActivePeak)))
		}
	}
	fmt.Println(t.Render())
	fmt.Println("With factors out of core, the resident set shrinks by the saving")
	fmt.Println("column — and the memory-based strategy shrinks precisely the part")
	fmt.Println("that remains resident.")
}
