// Outofcore: makes the paper's concluding argument executable. Factors
// are written once and "not reaccessed before the solve phase", so they
// can live on disk; what must stay in memory is the stack (contribution
// blocks + active fronts). Where the seed version of this example only
// *simulated* that saving, this one runs the real out-of-core executor
// (internal/ooc spills every factor block as it is produced) next to the
// real in-core one and prints the measured resident peaks beside the
// simulator's prediction, for every Table-1 problem:
//
//	sim in-core / sim OOC     the simulator's total vs stack-only peak
//	mea in-core               measured peak of factors+stack+fronts
//	mea OOC                   measured resident peak with factors on disk
//
// The measured OOC column approaching the simulated stack-only column is
// the point: once factors spill, the stack really is what remains — and
// the memory-minimizing schedules shrink precisely that.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/order"
	"repro/internal/parmf"
	"repro/internal/parsim"
	"repro/internal/sparse"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)

	t := metrics.New("sequential resident peaks, matrix entries (ND ordering)",
		"problem", "sim in-core", "sim OOC", "mea in-core", "mea OOC", "mea saving %")
	for _, p := range workload.SmallSuite() {
		a := p.Matrix()
		if !a.HasValues() {
			if err := sparse.FillDominant(a, rand.New(rand.NewSource(7))); err != nil {
				log.Fatal(err)
			}
		}
		an, err := core.Analyze(a, core.DefaultConfig(order.ND, 1))
		if err != nil {
			log.Fatal(err)
		}
		sim, err := an.Simulate(parsim.MemoryBased())
		if err != nil {
			log.Fatal(err)
		}
		inc, err := an.Factorize()
		if err != nil {
			log.Fatal(err)
		}
		ooc, _, err := an.FactorizeOOC()
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(p.Name, sim.MaxTotalPeak, sim.MaxActivePeak,
			inc.Stats.ResidentPeak, ooc.Stats.ResidentPeak,
			fmt.Sprintf("%.1f", metrics.PercentDecrease(inc.Stats.ResidentPeak, ooc.Stats.ResidentPeak)))

		// The two executions are interchangeable: bitwise-identical solves.
		b := make([]float64, a.N)
		for i := range b {
			b[i] = float64(i%13) - 6
		}
		xi, err := inc.SolveOriginal(b)
		if err != nil {
			log.Fatal(err)
		}
		xo, err := ooc.SolveOriginal(b)
		if err != nil {
			log.Fatal(err)
		}
		for i := range xi {
			if xi[i] != xo[i] {
				log.Fatalf("%s: in-core and OOC solves differ at %d", p.Name, i)
			}
		}
		ooc.Close()
	}
	fmt.Println(t.Render())

	// The same holds under the parallel executor: one shared meter across
	// workers and the spill writer measures the whole-process peak.
	const workers = 8
	p, err := workload.ByName(workload.Suite(), "PRE2")
	if err != nil {
		log.Fatal(err)
	}
	a := p.Matrix()
	an, err := core.Analyze(a, core.DefaultConfig(order.ND, workers))
	if err != nil {
		log.Fatal(err)
	}
	inc, err := an.FactorizeParallel(parmf.DefaultConfig(workers))
	if err != nil {
		log.Fatal(err)
	}
	oocF, st, err := an.FactorizeParallelOOC(parmf.DefaultConfig(workers))
	if err != nil {
		log.Fatal(err)
	}
	defer oocF.Close()
	fmt.Printf("\n%s with %d workers: in-core resident peak %d entries, out-of-core %d (%.1f%% saved)\n",
		p.Name, workers, inc.Stats.ResidentPeak, oocF.Stats.ResidentPeak,
		metrics.PercentDecrease(inc.Stats.ResidentPeak, oocF.Stats.ResidentPeak))
	s := st.Stats()
	fmt.Printf("spilled %d factor blocks (%.1f MiB); buffer peak %d entries; stack stayed resident\n",
		s.Blocks, float64(s.BytesWritten)/(1<<20), s.BufferPeak)
	fmt.Println("\nWith factors out of core, the resident set shrinks toward the stack-only")
	fmt.Println("peak the simulator predicts — the part the memory-based strategy minimizes.")
}
