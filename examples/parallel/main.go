// Parallel: factor the same SPD system sequentially and with the real
// shared-memory parallel executor, cross-check the factors entry by entry,
// and compare wall-clock times and per-worker memory peaks — the live
// counterpart of the simulator comparison in examples/quickstart.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/order"
	"repro/internal/parmf"
	"repro/internal/sparse"
)

func main() {
	log.SetFlags(0)
	// A 3D Poisson problem, symmetric positive definite.
	a := sparse.Grid3D(24, 24, 24)
	fmt.Printf("matrix: n=%d, nnz=%d (%v)\n", a.N, a.NNZ(), a.Kind)

	// Symbolic analysis with nested dissection; the 4-processor static
	// mapping also defines the leaf-subtree tasks the executor batches.
	an, err := core.Analyze(a, core.DefaultConfig(order.ND, 4))
	if err != nil {
		log.Fatal(err)
	}
	st := an.Stats()
	fmt.Printf("analysis: %d fronts, max front %d, %d subtrees, sequential peak %d entries\n",
		st.Fronts, st.MaxFront, st.Subtrees, st.SeqPeak)

	t0 := time.Now()
	sf, err := an.Factorize()
	if err != nil {
		log.Fatal(err)
	}
	seqT := time.Since(t0)
	fmt.Printf("sequential: %.3fs, peak %d entries\n", seqT.Seconds(), sf.Stats.PeakStack)

	t0 = time.Now()
	pf, err := an.FactorizeParallel(parmf.DefaultConfig(4))
	if err != nil {
		log.Fatal(err)
	}
	parT := time.Since(t0)
	fmt.Printf("parallel:   %.3fs with %d workers (speedup %.2fx)\n",
		parT.Seconds(), pf.Stats.Workers, seqT.Seconds()/parT.Seconds())
	for w, p := range pf.Stats.WorkerPeaks {
		fmt.Printf("  worker %d: peak %d entries (bound %d)\n", w, p, pf.Stats.PeakBound)
	}
	fmt.Printf("  %d tasks, %d deviations, %d forced activations\n",
		pf.Stats.Tasks, pf.Stats.Deviations, pf.Stats.Forced)

	// Static pivoting makes the two factorizations identical.
	var maxDiff float64
	for ni := 0; ni < an.Tree.Len(); ni++ {
		sn, pn := sf.Front().Node(ni), pf.Front().Node(ni)
		for p, v := range sn.L.A {
			if d := math.Abs(v - pn.L.A[p]); d > maxDiff {
				maxDiff = d
			}
		}
	}
	fmt.Printf("cross-check: max |L_seq - L_par| = %.3g\n", maxDiff)

	// And the parallel factors solve the system.
	rng := rand.New(rand.NewSource(42))
	x0 := make([]float64, a.N)
	for i := range x0 {
		x0[i] = rng.NormFloat64()
	}
	b := a.MulVec(x0)
	x, err := pf.SolveOriginal(b)
	if err != nil {
		log.Fatal(err)
	}
	var errNorm float64
	for i := range x {
		errNorm += (x[i] - x0[i]) * (x[i] - x0[i])
	}
	fmt.Printf("solve: ||x - x0|| = %.3g\n", math.Sqrt(errNorm))

	// The solve phase is tree-parallel too, and deterministic: a blocked
	// multi-RHS solve over the workers matches the sequential factors'
	// solve bit for bit, column by column.
	const nrhs = 3
	bs := make([]float64, a.N*nrhs)
	for i := 0; i < a.N; i++ {
		for c := 0; c < nrhs; c++ {
			bs[i*nrhs+c] = b[i] / float64(c+1)
		}
	}
	xp, err := pf.SolveOriginalMulti(bs, nrhs)
	if err != nil {
		log.Fatal(err)
	}
	xq, err := sf.SolveOriginalMulti(bs, nrhs)
	if err != nil {
		log.Fatal(err)
	}
	for i := range xp {
		if xp[i] != xq[i] {
			log.Fatalf("parallel and sequential multi-RHS solves differ at %d", i)
		}
	}
	fmt.Printf("multi-rhs: %d systems, parallel == sequential bitwise\n", nrhs)
}
