// Orderings: show how the fill-reducing ordering shapes the assembly tree
// and, through it, the memory behaviour of the factorization — the reason
// the paper evaluates every strategy under METIS, PORD, AMD and AMF.
package main

import (
	"fmt"
	"log"

	"repro/internal/assembly"
	"repro/internal/core"
	"repro/internal/order"
	"repro/internal/parsim"
	"repro/internal/sparse"
)

func main() {
	log.SetFlags(0)
	a := sparse.Grid3D(14, 14, 14)
	fmt.Printf("matrix: 3D grid, n=%d, nnz=%d\n\n", a.N, a.NNZ())
	fmt.Printf("%-8s %8s %8s %10s %12s %12s %10s %8s\n",
		"ordering", "fronts", "maxfront", "factor", "flops", "seq peak", "par peak", "depth")
	for _, m := range order.Methods {
		an, err := core.Analyze(a, core.DefaultConfig(m, 8))
		if err != nil {
			log.Fatal(err)
		}
		st := an.Stats()
		res, err := an.Simulate(parsim.MemoryBased())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %8d %8d %10d %12.3g %12d %10d %8d\n",
			m, st.Fronts, st.MaxFront, st.FactorEntries, float64(st.Flops),
			st.SeqPeak, res.MaxActivePeak, treeDepth(an.Tree))
	}
	fmt.Println("\nDeep unbalanced trees (AMD/AMF) stress the stack; wide balanced")
	fmt.Println("trees (METIS/PORD) stress concurrency — the paper's Section 6 grid.")
}

func treeDepth(t *assembly.Tree) int {
	depth := make([]int, t.Len())
	max := 0
	for _, i := range t.Postorder() {
		for _, c := range t.Nodes[i].Children {
			if depth[c]+1 > depth[i] {
				depth[i] = depth[c] + 1
			}
		}
		if depth[i] > max {
			max = depth[i]
		}
	}
	return max + 1
}
