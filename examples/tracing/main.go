// Tracing: record per-processor memory traces during the simulated
// parallel factorization and render them as ASCII sparklines — the
// Figure 4/6/8-style memory-evolution view of the paper.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/order"
	"repro/internal/parsim"
	"repro/internal/sparse"
)

const (
	cols  = 72
	procs = 4
)

func main() {
	log.SetFlags(0)
	a := sparse.Grid3D(12, 12, 12)
	an, err := core.Analyze(a, core.DefaultConfig(order.AMF, procs))
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range []struct {
		name string
		st   parsim.Strategy
	}{
		{"workload-based", parsim.Workload()},
		{"memory-based", parsim.MemoryBased()},
	} {
		res, err := an.SimulateTraced(s.st)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s strategy: max peak %d entries, makespan %.1f ms ===\n",
			s.name, res.MaxActivePeak, float64(res.Makespan)/1e6)
		for p, tr := range res.Traces {
			fmt.Printf("P%d |%s| peak %d\n", p, sparkline(tr, res), peak(tr))
		}
		fmt.Println()
	}
	fmt.Println("Each row is one processor's active memory (CB stack + fronts) over")
	fmt.Println("virtual time; ' .:-=+*#%@' spans 0..global peak. The memory-based")
	fmt.Println("strategy flattens and balances the profiles.")
}

func peak(tr []memory.TracePoint) int64 {
	var m int64
	for _, t := range tr {
		if t.Active > m {
			m = t.Active
		}
	}
	return m
}

func sparkline(tr []memory.TracePoint, res *parsim.Result) string {
	ramp := []byte(" .:-=+*#%@")
	if len(tr) == 0 {
		return strings.Repeat(" ", cols)
	}
	end := res.Makespan
	if end == 0 {
		end = 1
	}
	// Sample the max active memory in each time bucket.
	buckets := make([]int64, cols)
	var cur int64
	bi := 0
	for _, t := range tr {
		idx := int(int64(t.T) * int64(cols) / int64(end))
		if idx >= cols {
			idx = cols - 1
		}
		for bi < idx {
			bi++
			buckets[bi] = cur
		}
		if t.Active > buckets[idx] {
			buckets[idx] = t.Active
		}
		cur = t.Active
	}
	var gmax int64 = 1
	if m := res.MaxActivePeak; m > 0 {
		gmax = m
	}
	out := make([]byte, cols)
	for i, v := range buckets {
		k := int(v * int64(len(ramp)-1) / gmax)
		if k >= len(ramp) {
			k = len(ramp) - 1
		}
		out[i] = ramp[k]
	}
	return string(out)
}
