// Tracing: the paper's Figure 4/6/8 memory-evolution view, twice over —
// the simulator's per-processor prediction next to a *measured* trace of
// the real shared-memory executor factoring the same matrix with the
// same processor count. The real run is recorded by internal/trace
// (attached through core.Config.Tracer): every mutation of each worker's
// stack/active accounting lands in the event stream, so the measured
// sparklines are exact, and the run also exports as Chrome trace_event
// JSON (see cmd/parfactor -trace for the file form).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/order"
	"repro/internal/parmf"
	"repro/internal/parsim"
	"repro/internal/sparse"
	"repro/internal/trace"
)

const (
	cols  = 72
	procs = 4
)

func main() {
	log.SetFlags(0)
	a := sparse.Grid3D(12, 12, 12)
	an, err := core.Analyze(a, core.DefaultConfig(order.AMF, procs))
	if err != nil {
		log.Fatal(err)
	}

	// Predicted: the simulator's memory-based strategy with per-processor
	// traces, in virtual time.
	res, err := an.SimulateTraced(parsim.MemoryBased())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== predicted (simulator, memory-based): max peak %d entries, makespan %.1f ms virtual ===\n",
		res.MaxActivePeak, float64(res.Makespan)/1e6)
	for p, ptr := range res.Traces {
		pts := simPoints(ptr)
		fmt.Printf("P%d |%s| peak %d\n",
			p, trace.Sparkline(pts, cols, int64(res.Makespan), res.MaxActivePeak), seriesPeak(pts))
	}
	fmt.Println()

	// Measured: the real executor, same worker count, every span and
	// memory sample recorded by the tracer. Created here — after the
	// symbolic phase — so the trace clock starts at the factorization.
	tr := trace.New(procs)
	pcfg := parmf.DefaultConfig(procs)
	pcfg.Tracer = tr
	pf, err := an.FactorizeParallel(pcfg)
	if err != nil {
		log.Fatal(err)
	}
	series := tr.MemorySeries()
	end := tr.EndNs()
	// Scale the measured strips to the measured per-worker maximum so the
	// two views use comparable ramps (each normalized to its own peak).
	var measMax int64 = 1
	for _, s := range series {
		if s.Worker >= 0 && s.Peak() > measMax {
			measMax = s.Peak()
		}
	}
	fmt.Printf("=== measured (parmf, %d workers): max worker peak %d entries, %d trace events ===\n",
		pf.Stats.Workers, pf.Stats.PeakStack, tr.Events())
	for _, s := range series {
		if s.Worker < 0 {
			continue
		}
		fmt.Printf("W%d |%s| peak %d\n",
			s.Worker, trace.Sparkline(s.Active, cols, end, measMax), s.Peak())
	}
	fmt.Println()

	// Divergence: simulated vs measured per-processor active peaks, and
	// the exactness guarantee of the recorded resident timeline.
	fmt.Printf("peak divergence: predicted max/proc %d, measured max/worker %d (%+.1f%%)\n",
		res.MaxActivePeak, pf.Stats.PeakStack,
		100*float64(pf.Stats.PeakStack-res.MaxActivePeak)/float64(res.MaxActivePeak))
	var resident int64
	for _, s := range series {
		if s.Worker < 0 && s.Name == "resident" {
			resident = s.Peak()
		}
	}
	fmt.Printf("resident timeline max %d == ExecStats.ResidentPeak %d: %v\n",
		resident, pf.Stats.ResidentPeak, resident == pf.Stats.ResidentPeak)
	fmt.Println()
	fmt.Println("Each row is one processor's active memory (CB stack + fronts) over")
	fmt.Println("time — virtual for the prediction, wall-clock for the measurement;")
	fmt.Println("' .:-=+*#%@' spans 0..that view's peak. The measured strips come")
	fmt.Println("from the tracer's exact per-mutation samples, so the printed peaks")
	fmt.Println("equal the executor's accounting bit for bit.")
}

// simPoints converts a simulator trace to the tracer's point form so one
// renderer draws both views.
func simPoints(ptr []memory.TracePoint) []trace.Point {
	pts := make([]trace.Point, len(ptr))
	for i, t := range ptr {
		pts[i] = trace.Point{T: int64(t.T), V: t.Active}
	}
	return pts
}

func seriesPeak(pts []trace.Point) int64 {
	var m int64
	for _, p := range pts {
		if p.V > m {
			m = p.V
		}
	}
	return m
}
