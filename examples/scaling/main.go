// Scaling: memory scalability study. The paper's motivation is that the
// per-processor stack peak should shrink as processors are added; this
// example sweeps P and compares the workload and memory strategies, also
// reporting the peak-balance ratio (max/avg).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/order"
	"repro/internal/parsim"
	"repro/internal/sparse"
)

func main() {
	log.SetFlags(0)
	a := sparse.Grid3D(16, 16, 16)
	fmt.Printf("matrix: n=%d nnz=%d; ordering METIS\n\n", a.N, a.NNZ())
	fmt.Printf("%4s  %22s  %22s  %8s\n", "P", "workload peak (bal)", "memory peak (bal)", "gain")
	var seq int64
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		an, err := core.Analyze(a, core.DefaultConfig(order.ND, p))
		if err != nil {
			log.Fatal(err)
		}
		w, err := an.Simulate(parsim.Workload())
		if err != nil {
			log.Fatal(err)
		}
		m, err := an.Simulate(parsim.MemoryBased())
		if err != nil {
			log.Fatal(err)
		}
		if p == 1 {
			seq = w.MaxActivePeak
		}
		gain := 100 * float64(w.MaxActivePeak-m.MaxActivePeak) / float64(w.MaxActivePeak)
		fmt.Printf("%4d  %12d (%5.2f)  %12d (%5.2f)  %6.1f%%\n",
			p,
			w.MaxActivePeak, float64(w.MaxActivePeak)/w.AvgActivePeak,
			m.MaxActivePeak, float64(m.MaxActivePeak)/m.AvgActivePeak,
			gain)
	}
	fmt.Printf("\nsequential peak (P=1): %d entries; perfect memory scalability\n", seq)
	fmt.Println("would divide it by P — the balance column shows how far each")
	fmt.Println("strategy is from that ideal.")
}
