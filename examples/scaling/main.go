// Scaling: memory scalability study. The paper's motivation is that the
// per-processor stack peak should shrink as processors are added; this
// example sweeps P and compares the workload and memory strategies in the
// simulator, also reporting the peak-balance ratio (max/avg). Next to the
// simulation it runs the *real* shared-memory executor at each P and
// prints its within-front task statistics — split fronts, slave tile
// tasks and steals, and whether the root front ran on the 2D (type-3)
// grid — so the type-2/3 effects behind the scaling are visible in the
// table, not just the total time.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/order"
	"repro/internal/parmf"
	"repro/internal/parsim"
	"repro/internal/sparse"
)

func main() {
	log.SetFlags(0)
	a := sparse.Grid3D(16, 16, 16)
	fmt.Printf("matrix: n=%d nnz=%d; ordering METIS\n\n", a.N, a.NNZ())
	fmt.Printf("%4s  %22s  %22s  %8s\n", "P", "workload peak (bal)", "memory peak (bal)", "gain")
	var seq int64
	analyses := map[int]*core.Analysis{}
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		an, err := core.Analyze(a, core.DefaultConfig(order.ND, p))
		if err != nil {
			log.Fatal(err)
		}
		analyses[p] = an
		w, err := an.Simulate(parsim.Workload())
		if err != nil {
			log.Fatal(err)
		}
		m, err := an.Simulate(parsim.MemoryBased())
		if err != nil {
			log.Fatal(err)
		}
		if p == 1 {
			seq = w.MaxActivePeak
		}
		gain := 100 * float64(w.MaxActivePeak-m.MaxActivePeak) / float64(w.MaxActivePeak)
		fmt.Printf("%4d  %12d (%5.2f)  %12d (%5.2f)  %6.1f%%\n",
			p,
			w.MaxActivePeak, float64(w.MaxActivePeak)/w.AvgActivePeak,
			m.MaxActivePeak, float64(m.MaxActivePeak)/m.AvgActivePeak,
			gain)
	}
	fmt.Printf("\nsequential peak (P=1): %d entries; perfect memory scalability\n", seq)
	fmt.Println("would divide it by P — the balance column shows how far each")
	fmt.Println("strategy is from that ideal.")
	fmt.Println()

	// The real executor at the same worker counts: the type-2/3 columns
	// show *why* the times move — how many fronts split, how many slave
	// tile tasks the split fronts fanned out, how many a worker stole from
	// the preferred owner, and whether the root ran on the 2D grid.
	fmt.Println("real executor (memory-aware policy, auto root grid):")
	fmt.Printf("%4s  %9s  %12s  %11s  %11s  %9s  %9s\n",
		"W", "wall (s)", "worker peak", "SplitFronts", "SlaveTasks", "steals", "2D root")
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		cfg := parmf.DefaultConfig(p)
		t0 := time.Now()
		pf, err := analyses[p].FactorizeParallel(cfg)
		if err != nil {
			log.Fatal(err)
		}
		wall := time.Since(t0)
		var peak int64
		for _, pk := range pf.Stats.WorkerPeaks {
			if pk > peak {
				peak = pk
			}
		}
		root := "-"
		if pf.Stats.Root2DFronts > 0 {
			root = fmt.Sprintf("%d front", pf.Stats.Root2DFronts)
		}
		fmt.Printf("%4d  %9.3f  %12d  %11d  %11d  %9d  %9s\n",
			p, wall.Seconds(), peak,
			pf.Stats.SplitFronts, pf.Stats.SlaveTasks, pf.Stats.SlaveSteals, root)
	}
	fmt.Println("\nSplitFronts counts fronts factored via master/slave tasks; the")
	fmt.Println("root front switches to the 2D tile grid once more than one worker")
	fmt.Println("is available, so the last tree level no longer serializes.")
}
