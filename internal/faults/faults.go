// Package faults is the deterministic fault-injection layer of the
// execution stack. The real executors (internal/seqmf, internal/parmf,
// parmf.TreeSolver) and the out-of-core store (internal/ooc) consult an
// optional *Injector at named fault points — one Check call per task,
// spill write, spill read, block decode or solve visit — and an armed
// rule turns that call into an injected error, a delay, a short write or
// a panic, on an exact hit schedule.
//
// The package exists so the fault-tolerance machinery (context
// cancellation, the OOC store's retry/degrade path, panic containment in
// the worker pools) is testable deterministically: a schedule is a pure
// function of its rules and the per-point hit counters, so the chaos
// property suite can sweep seeded schedules and assert every run either
// completes bitwise identical to the clean run or returns a descriptive
// error naming the fault point.
//
// Like trace.Tracer, a nil *Injector is valid, ignores every call and
// allocates nothing — an unarmed run pays one nil check per fault point
// (pinned at 0 allocs/op by TestNilInjectorZeroAllocs).
package faults

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Point names one instrumented fault site in the execution stack.
type Point string

// The instrumented fault points.
const (
	// SpillWrite fires in the OOC store's background writer before each
	// block write (key = node). Errors and short writes there exercise
	// the retry/degrade path.
	SpillWrite Point = "spill-write"
	// SpillRead fires before each spill-file block read (prefetcher and
	// direct solve fetches; key = node).
	SpillRead Point = "spill-read"
	// Decode fires before decoding a block read back from the spill file
	// (key = node). Decode errors are not retried — they indicate
	// corruption, not transience.
	Decode Point = "decode"
	// Task fires at the start of each front's numeric processing in the
	// executors (key = assembly-tree node).
	Task Point = "task"
	// Solve fires at each solve-phase front visit (key = node).
	Solve Point = "solve"
)

// Points lists every instrumented fault point.
func Points() []Point { return []Point{SpillWrite, SpillRead, Decode, Task, Solve} }

// Kind is what an armed rule does when it fires.
type Kind uint8

const (
	// KindError makes Check return an *InjectedError.
	KindError Kind = iota
	// KindDelay makes Check sleep the rule's Delay (default 1ms) and
	// return nil — fault-free, but it perturbs scheduling.
	KindDelay
	// KindShortWrite makes CheckWrite truncate the write length (only
	// meaningful at SpillWrite; Check treats it as a no-op).
	KindShortWrite
	// KindPanic makes Check panic with a message naming the point — the
	// executors' containment must convert it into a wrapped error.
	KindPanic
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindDelay:
		return "delay"
	case KindShortWrite:
		return "short-write"
	case KindPanic:
		return "panic"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ErrInjected is the sentinel every injected error matches with
// errors.Is, so tests and retry policies can classify them without
// string matching.
var ErrInjected = errors.New("injected fault")

// InjectedError is the error an armed KindError rule returns: it names
// the fault point, the call key (usually the assembly-tree node) and the
// hit ordinal, and matches ErrInjected.
type InjectedError struct {
	Point Point
	Key   int
	Hit   int64
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("injected fault at %s (key %d, hit %d)", e.Point, e.Key, e.Hit)
}

// Is makes errors.Is(err, ErrInjected) true for injected errors.
func (e *InjectedError) Is(target error) bool { return target == ErrInjected }

// Rule arms one fault point: starting at the Nth hit of the point
// (1-based), the next Count hits fire with the rule's Kind.
type Rule struct {
	Point Point
	Kind  Kind
	// Nth is the first hit (1-based) that fires; 0 means 1.
	Nth int64
	// Count is how many consecutive hits fire from Nth on: 0 means 1,
	// negative means every hit from Nth onward (a persistent fault — the
	// schedule a dying disk produces).
	Count int64
	// Delay is the sleep of a KindDelay rule (0 = 1ms).
	Delay time.Duration
}

// fires reports whether the rule fires on the hit-th hit of its point.
func (r *Rule) fires(hit int64) bool {
	nth := r.Nth
	if nth <= 0 {
		nth = 1
	}
	if hit < nth {
		return false
	}
	if r.Count < 0 {
		return true
	}
	count := r.Count
	if count == 0 {
		count = 1
	}
	return hit < nth+count
}

// Stat is one point's counters: how many times it was checked and how
// many of those checks fired an armed rule.
type Stat struct {
	Point Point
	Hits  int64
	Fired int64
}

// Injector evaluates the armed rules at every fault point. All methods
// are safe for concurrent use and valid on a nil receiver (no-ops).
type Injector struct {
	mu    sync.Mutex
	rules map[Point][]Rule
	hits  map[Point]int64
	fired map[Point]int64
}

// New returns an injector armed with the given rules. No rules is valid
// (every Check passes) but callers wanting zero overhead should keep the
// injector nil instead.
func New(rules ...Rule) *Injector {
	in := &Injector{
		rules: map[Point][]Rule{},
		hits:  map[Point]int64{},
		fired: map[Point]int64{},
	}
	for _, r := range rules {
		in.rules[r.Point] = append(in.rules[r.Point], r)
	}
	return in
}

// hit advances point p's hit counter and returns the first firing rule
// (nil when none) plus the hit ordinal.
func (in *Injector) hit(p Point) (*Rule, int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.hits[p]++
	h := in.hits[p]
	rules := in.rules[p]
	for i := range rules {
		if rules[i].fires(h) {
			in.fired[p]++
			return &rules[i], h
		}
	}
	return nil, h
}

// Check evaluates point p for the given key (usually the assembly-tree
// node index). It returns an *InjectedError for a firing KindError rule,
// sleeps and returns nil for KindDelay, panics for KindPanic (the
// executors' containment converts that into a wrapped error), and
// ignores KindShortWrite (that kind only means something to CheckWrite).
// A nil injector returns nil without any work.
func (in *Injector) Check(p Point, key int) error {
	if in == nil {
		return nil
	}
	r, h := in.hit(p)
	if r == nil {
		return nil
	}
	switch r.Kind {
	case KindError:
		return &InjectedError{Point: p, Key: key, Hit: h}
	case KindDelay:
		d := r.Delay
		if d <= 0 {
			d = time.Millisecond
		}
		time.Sleep(d)
	case KindPanic:
		panic(fmt.Sprintf("faults: injected panic at %s (key %d, hit %d)", p, key, h))
	}
	return nil
}

// CheckWrite is Check for a write of n bytes at point p: a firing
// KindShortWrite rule halves the write length (never below zero, always
// strictly short for n > 0), modeling a partial write the caller must
// detect and retry; the other kinds behave as in Check. It returns the
// length the caller should write and the injected error, if any. A nil
// injector returns (n, nil).
func (in *Injector) CheckWrite(p Point, key, n int) (int, error) {
	if in == nil {
		return n, nil
	}
	r, h := in.hit(p)
	if r == nil {
		return n, nil
	}
	switch r.Kind {
	case KindError:
		return n, &InjectedError{Point: p, Key: key, Hit: h}
	case KindDelay:
		d := r.Delay
		if d <= 0 {
			d = time.Millisecond
		}
		time.Sleep(d)
	case KindShortWrite:
		return n / 2, nil
	case KindPanic:
		panic(fmt.Sprintf("faults: injected panic at %s (key %d, hit %d)", p, key, h))
	}
	return n, nil
}

// Stats returns the per-point hit/fired counters for every point that
// was checked at least once, in Points() order.
func (in *Injector) Stats() []Stat {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var out []Stat
	for _, p := range Points() {
		if in.hits[p] == 0 && in.fired[p] == 0 {
			continue
		}
		out = append(out, Stat{Point: p, Hits: in.hits[p], Fired: in.fired[p]})
	}
	return out
}

// Fired returns the total fired-rule count across points.
func (in *Injector) Fired() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var n int64
	for _, v := range in.fired {
		n += v
	}
	return n
}

// Parse builds an injector from a comma-separated schedule spec, the
// grammar the CLIs' -faults flag and the CI chaos smoke use:
//
//	point:kind[:nth[:count]]
//
// point is one of spill-write, spill-read, decode, task, solve; kind is
// error, delay, short-write or panic; nth is the 1-based hit the rule
// starts firing on (default 1) and count how many consecutive hits fire
// (default 1, -1 = forever). Examples:
//
//	spill-write:error:2:3    // hits 2,3,4 of the spill writer error out
//	spill-write:error:1:-1   // every spill write fails (a dead disk)
//	task:panic:5             // the 5th task check panics once
//	solve:delay:1:-1         // every solve visit sleeps 1ms
//
// An empty spec returns a nil injector (zero overhead).
func Parse(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var rules []Rule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 2 || len(fields) > 4 {
			return nil, fmt.Errorf("faults: rule %q: want point:kind[:nth[:count]]", part)
		}
		r := Rule{Point: Point(fields[0])}
		if !validPoint(r.Point) {
			return nil, fmt.Errorf("faults: rule %q: unknown point %q (want one of %s)",
				part, fields[0], pointNames())
		}
		switch fields[1] {
		case "error":
			r.Kind = KindError
		case "delay":
			r.Kind = KindDelay
		case "short-write":
			r.Kind = KindShortWrite
		case "panic":
			r.Kind = KindPanic
		default:
			return nil, fmt.Errorf("faults: rule %q: unknown kind %q (want error, delay, short-write or panic)", part, fields[1])
		}
		if len(fields) >= 3 {
			n, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("faults: rule %q: nth must be a positive integer", part)
			}
			r.Nth = n
		}
		if len(fields) == 4 {
			n, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("faults: rule %q: count must be a nonzero integer (-1 = forever)", part)
			}
			r.Count = n
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, nil
	}
	return New(rules...), nil
}

func validPoint(p Point) bool {
	for _, q := range Points() {
		if p == q {
			return true
		}
	}
	return false
}

func pointNames() string {
	names := make([]string, 0, len(Points()))
	for _, p := range Points() {
		names = append(names, string(p))
	}
	return strings.Join(names, ", ")
}
