package faults

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestNilInjectorNoOp(t *testing.T) {
	var in *Injector
	if err := in.Check(Task, 3); err != nil {
		t.Fatalf("nil injector Check: %v", err)
	}
	if n, err := in.CheckWrite(SpillWrite, 0, 100); n != 100 || err != nil {
		t.Fatalf("nil injector CheckWrite: n=%d err=%v", n, err)
	}
	if s := in.Stats(); s != nil {
		t.Fatalf("nil injector Stats: %v", s)
	}
	if f := in.Fired(); f != 0 {
		t.Fatalf("nil injector Fired: %d", f)
	}
}

func TestNilInjectorZeroAllocs(t *testing.T) {
	var in *Injector
	allocs := testing.AllocsPerRun(100, func() {
		if err := in.Check(Task, 7); err != nil {
			t.Fatal(err)
		}
		if _, err := in.CheckWrite(SpillWrite, 7, 64); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("nil injector: %v allocs/op, want 0", allocs)
	}
}

func TestErrorSchedule(t *testing.T) {
	// Hits 2,3,4 fire; 1 and 5+ pass.
	in := New(Rule{Point: Task, Kind: KindError, Nth: 2, Count: 3})
	var fired []int
	for hit := 1; hit <= 6; hit++ {
		if err := in.Check(Task, hit*10); err != nil {
			fired = append(fired, hit)
			var ie *InjectedError
			if !errors.As(err, &ie) {
				t.Fatalf("hit %d: error %T is not *InjectedError", hit, err)
			}
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: error does not match ErrInjected", hit)
			}
			if ie.Point != Task || ie.Key != hit*10 || ie.Hit != int64(hit) {
				t.Fatalf("hit %d: got %+v", hit, ie)
			}
			if !strings.Contains(err.Error(), "task") {
				t.Fatalf("hit %d: error %q does not name the point", hit, err)
			}
		}
	}
	if len(fired) != 3 || fired[0] != 2 || fired[2] != 4 {
		t.Fatalf("fired on hits %v, want [2 3 4]", fired)
	}
	// Other points are independent.
	if err := in.Check(Solve, 0); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
}

func TestPersistentSchedule(t *testing.T) {
	in := New(Rule{Point: SpillWrite, Kind: KindError, Nth: 3, Count: -1})
	for hit := 1; hit <= 10; hit++ {
		err := in.Check(SpillWrite, 0)
		if hit < 3 && err != nil {
			t.Fatalf("hit %d fired early: %v", hit, err)
		}
		if hit >= 3 && err == nil {
			t.Fatalf("hit %d: persistent rule did not fire", hit)
		}
	}
	if got := in.Fired(); got != 8 {
		t.Fatalf("Fired() = %d, want 8", got)
	}
}

func TestShortWrite(t *testing.T) {
	in := New(Rule{Point: SpillWrite, Kind: KindShortWrite})
	n, err := in.CheckWrite(SpillWrite, 5, 100)
	if err != nil || n != 50 {
		t.Fatalf("short write: n=%d err=%v, want 50 nil", n, err)
	}
	// Only the first hit fires (Count defaults to 1).
	n, err = in.CheckWrite(SpillWrite, 5, 100)
	if err != nil || n != 100 {
		t.Fatalf("second write: n=%d err=%v, want 100 nil", n, err)
	}
	// Check ignores KindShortWrite but still counts the hit.
	in2 := New(Rule{Point: SpillWrite, Kind: KindShortWrite})
	if err := in2.Check(SpillWrite, 0); err != nil {
		t.Fatalf("Check on short-write rule: %v", err)
	}
}

func TestPanicKind(t *testing.T) {
	in := New(Rule{Point: Task, Kind: KindPanic})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "task") || !strings.Contains(msg, "key 42") {
			t.Fatalf("panic %v does not name point and key", r)
		}
	}()
	in.Check(Task, 42)
}

func TestDelayKind(t *testing.T) {
	in := New(Rule{Point: Solve, Kind: KindDelay, Delay: 5 * time.Millisecond})
	t0 := time.Now()
	if err := in.Check(Solve, 0); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 5*time.Millisecond {
		t.Fatalf("delay rule slept %v, want >= 5ms", d)
	}
}

func TestStats(t *testing.T) {
	in := New(Rule{Point: Task, Kind: KindError, Nth: 2})
	in.Check(Task, 0)
	in.Check(Task, 0)
	in.Check(Solve, 0)
	stats := in.Stats()
	if len(stats) != 2 {
		t.Fatalf("Stats() = %+v, want 2 points", stats)
	}
	// Points() order: solve after task.
	if stats[0].Point != Task || stats[0].Hits != 2 || stats[0].Fired != 1 {
		t.Fatalf("task stat %+v", stats[0])
	}
	if stats[1].Point != Solve || stats[1].Hits != 1 || stats[1].Fired != 0 {
		t.Fatalf("solve stat %+v", stats[1])
	}
}

func TestParse(t *testing.T) {
	in, err := Parse(" spill-write:error:2:3 , task:panic:5 , solve:delay:1:-1 ")
	if err != nil {
		t.Fatal(err)
	}
	if in == nil {
		t.Fatal("nil injector for non-empty spec")
	}
	if len(in.rules[SpillWrite]) != 1 || len(in.rules[Task]) != 1 || len(in.rules[Solve]) != 1 {
		t.Fatalf("rules: %+v", in.rules)
	}
	r := in.rules[SpillWrite][0]
	if r.Kind != KindError || r.Nth != 2 || r.Count != 3 {
		t.Fatalf("spill-write rule %+v", r)
	}
	if in.rules[Solve][0].Count != -1 {
		t.Fatalf("solve rule %+v", in.rules[Solve][0])
	}
}

func TestParseEmpty(t *testing.T) {
	for _, spec := range []string{"", "  ", ","} {
		in, err := Parse(spec)
		if err != nil || in != nil {
			t.Fatalf("Parse(%q) = %v, %v; want nil, nil", spec, in, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"task",             // missing kind
		"task:error:1:1:1", // too many fields
		"bogus:error",      // unknown point
		"task:explode",     // unknown kind
		"task:error:0",     // nth must be >= 1
		"task:error:-2",    // nth must be >= 1
		"task:error:1:0",   // count must be nonzero
		"task:error:x",     // non-numeric nth
		"task:error:1:y",   // non-numeric count
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): no error", spec)
		}
	}
}

func TestConcurrentChecks(t *testing.T) {
	in := New(Rule{Point: Task, Kind: KindError, Nth: 1, Count: -1})
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				if err := in.Check(Task, i); err == nil {
					t.Error("persistent rule did not fire")
					return
				}
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if got := in.Fired(); got != 800 {
		t.Fatalf("Fired() = %d, want 800", got)
	}
	close(done)
}
