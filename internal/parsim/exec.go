package parsim

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/assembly"
	"repro/internal/des"
	"repro/internal/sched"
	"repro/internal/sparse"
)

// allocFront and freeFront wrap the memory tracker, keeping the per-proc
// live-allocation map used by peak snapshots in sync.
func (s *sim) allocFront(q, node int, entries int64) {
	s.procs[q].open[node] += entries
	s.mem.AllocFront(q, entries)
}

func (s *sim) freeFront(q, node int, entries int64) {
	if v := s.procs[q].open[node] - entries; v > 0 {
		s.procs[q].open[node] = v
	} else {
		delete(s.procs[q].open, node)
	}
	s.mem.FreeFront(q, entries)
}

// snapshot describes processor q's live front allocations, largest first
// (stored in PeakNote when Config.Snapshot is on).
func (s *sim) snapshot(q int) string {
	type ent struct {
		node int
		e    int64
	}
	var es []ent
	for n, e := range s.procs[q].open {
		es = append(es, ent{n, e})
	}
	sort.Slice(es, func(a, b int) bool {
		if es[a].e != es[b].e {
			return es[a].e > es[b].e
		}
		return es[a].node < es[b].node
	})
	var b strings.Builder
	for k, e := range es {
		if k >= 8 {
			fmt.Fprintf(&b, " +%d more", len(es)-k)
			break
		}
		nd := &s.tree.Nodes[e.node]
		owner := "slave"
		if s.mp.Proc[e.node] == q {
			owner = "owner"
		}
		fmt.Fprintf(&b, "%s n%d[%v f=%d p=%d]=%d ",
			owner, e.node, s.mp.Types[e.node], nd.NFront(), nd.NPiv(), e.e)
	}
	fmt.Fprintf(&b, "| stack=%d", s.mem.Procs[q].Stack)
	return b.String()
}

func (s *sim) flopDur(fl int64) des.Time {
	return des.Time(float64(fl) / s.cfg.Params.FlopRate * 1e9)
}

func (s *sim) asmDur(ops int64) des.Time {
	return des.Time(float64(ops) / s.cfg.Params.AsmRate * 1e9)
}

// metricFor builds the slave-selection metric of processor q's view,
// honoring the Section 5.1 toggles.
func (s *sim) metricFor(q int) func(r int) int64 {
	v := s.procs[q].view
	st := s.cfg.Strategy
	return func(r int) int64 {
		return v.Metric(r, st.UseSubtreeInfo, st.UsePrediction)
	}
}

// execMaster runs a task from q's pool: a type-1 node, the master part of a
// type-2 node, or the coordination of the type-3 root.
func (s *sim) execMaster(q, node int) {
	ps := &s.procs[q]
	ps.busy = true
	s.nodes[node].started = true
	s.setSubtree(q, s.mp.Subtree[node])

	switch s.mp.Types[node] {
	case assembly.Type2:
		if s.tree.Nodes[node].NCB() > 0 && s.mp.P > 1 {
			s.execType2Master(q, node)
			return
		}
		fallthrough // degenerate type 2 (empty CB): behave as type 1
	case assembly.Type1:
		s.execType1(q, node)
	case assembly.Type3:
		s.execType3Coord(q, node)
	}
}

// execType1 processes a whole front on one processor.
func (s *sim) execType1(q, node int) {
	s.allocFront(q, node, s.frontEnt[node])
	s.memDelta(q, s.frontEnt[node])
	asm := s.asmDur(s.asmOps[node])
	s.consumeChildCBs(q, node, asm)
	s.eng.After(asm+s.flopDur(s.elimFlops[node]), func() {
		s.freeFront(q, node, s.frontEnt[node])
		s.memDelta(q, -s.frontEnt[node])
		s.mem.AddFactors(q, s.factorEnt[node])
		s.routeCB(q, node, s.cbEnt[node])
		s.completeNode(q, node)
		s.procs[q].busy = false
		s.tryStart(q)
	})
}

// execType2Master selects slaves, distributes the CB rows, and runs the
// master segment (assembly + pivot-block elimination).
func (s *sim) execType2Master(q, node int) {
	nd := &s.tree.Nodes[node]
	ncb := nd.NCB()
	nfront := nd.NFront()
	cands := make([]int, 0, s.mp.P-1)
	for r := 0; r < s.mp.P; r++ {
		if r != q {
			cands = append(cands, r)
		}
	}
	s.slaveSelections++
	var allocs []sched.Allocation
	v := s.procs[q].view
	switch {
	case s.cfg.Strategy.HybridSlaveSelection:
		allocs = sched.SelectSlavesHybrid(cands, s.metricFor(q), v.Load[q],
			v.Load, nfront, ncb, s.mem.MaxActivePeak())
	case s.cfg.Strategy.MemorySlaveSelection:
		allocs = sched.SelectSlavesMemory(cands, s.metricFor(q), nfront, ncb,
			s.mem.MaxActivePeak())
	default:
		allocs = sched.SelectSlavesWorkload(cands, v.Load[q], v.Load,
			ncb, s.masterFl[node], s.rowFlops[node])
	}
	// Per-row cost model of the 1D blocking (Figure 3): uniform rows for
	// unsymmetric fronts, triangular rows for symmetric ones (CB row t is
	// t+1 entries long). areaPrefix(t) = slave entries of the first t CB
	// rows; factor and CB-piece prefixes follow the same blocks, and
	// elimination flops are distributed proportionally to the area.
	f64, p64, c64 := int64(nfront), int64(nd.NPiv()), int64(ncb)
	var areaPrefix, factPrefix, cbPrefix func(t int) int64
	if s.tree.Kind == sparse.Symmetric {
		areaPrefix = func(t int) int64 { t64 := int64(t); return t64 * (t64 + 1) / 2 }
		factPrefix = func(t int) int64 { return 0 }
		cbPrefix = areaPrefix
	} else {
		areaPrefix = func(t int) int64 { return int64(t) * f64 }
		factPrefix = func(t int) int64 { return int64(t) * p64 }
		cbPrefix = func(t int) int64 { return int64(t) * (f64 - p64) }
	}
	// The workload baseline balances *work* between the slave subtasks
	// ("the blocking ... is irregular for the symmetric case, in order to
	// balance the work"); Algorithm 1's row counts are memory-driven and
	// stay as selected ("far more irregular", Section 4).
	if !s.usesMemoryViews() && s.tree.Kind == sparse.Symmetric {
		allocs = sched.RebalanceRows(allocs, ncb, areaPrefix)
	}
	st := &s.nodes[node]
	st.slavesLeft = len(allocs)

	// Exact cumulative shares so that freed / pushed quantities sum to the
	// model totals regardless of rounding.
	slaveFlops := c64 * s.rowFlops[node]
	areaTotal := areaPrefix(ncb)
	cum := 0
	var flPrev int64
	assign := msgAssign{}
	for _, al := range allocs {
		lo := cum
		cum += al.Rows
		var flCur int64
		if areaTotal > 0 {
			flCur = slaveFlops * areaPrefix(cum) / areaTotal
		}
		t := msgSlaveTask{
			node: node, rows: al.Rows,
			area:    areaPrefix(cum) - areaPrefix(lo),
			fact:    factPrefix(cum) - factPrefix(lo),
			cbPiece: cbPrefix(cum) - cbPrefix(lo),
			flops:   flCur - flPrev,
		}
		flPrev = flCur
		assign.procs = append(assign.procs, al.Proc)
		assign.mem = append(assign.mem, t.area)
		assign.load = append(assign.load, t.flops)
		// Task data: the slave's rows of the assembled front.
		s.world.Send(q, al.Proc, t.area, t)
	}
	// Publish the selection: update the master's own view immediately and
	// tell everyone else which slaves just gained memory and work, so that
	// concurrent masters do not choose the same processors off stale views.
	for k, r := range assign.procs {
		if s.usesMemoryViews() {
			s.procs[q].view.AddMem(r, assign.mem[k])
		}
		s.procs[q].view.AddLoad(r, assign.load[k])
	}
	s.world.Broadcast(q, 0, assign)

	s.allocFront(q, node, s.masterEnt[node])
	s.memDelta(q, s.masterEnt[node])
	asm := s.asmDur(s.asmOps[node])
	s.consumeChildCBs(q, node, asm)
	s.eng.After(asm+s.flopDur(s.masterFl[node]), func() {
		st.masterDone = true
		s.procs[q].busy = false
		s.maybeCompleteType2(q, node)
		s.tryStart(q)
	})
}

// maybeCompleteType2 finishes a type-2 node on the master once the master
// segment and all slave pieces are done.
func (s *sim) maybeCompleteType2(q, node int) {
	st := &s.nodes[node]
	if !st.masterDone || st.slavesLeft > 0 || st.completed {
		return
	}
	s.freeFront(q, node, s.masterEnt[node])
	s.memDelta(q, -s.masterEnt[node])
	s.mem.AddFactors(q, s.masterEnt[node])
	s.completeNode(q, node)
}

// execSlave runs one slave row block (already allocated at receipt).
func (s *sim) execSlave(q int, t slaveTask) {
	s.procs[q].busy = true
	s.eng.After(s.flopDur(t.flops), func() {
		s.freeFront(q, t.node, t.area)
		s.memDelta(q, -t.area)
		s.mem.AddFactors(q, t.fact)
		s.loadDelta(q, -t.flops)
		// Park the CB piece locally and notify the parent's owner.
		s.routeCB(q, t.node, t.cbPiece)
		// Tell the master this piece is done.
		if t.from == q {
			s.nodes[t.node].slavesLeft--
			s.maybeCompleteType2(q, t.node)
		} else {
			s.world.Send(q, t.from, 0, msgSlaveDone{node: t.node})
		}
		s.procs[q].busy = false
		s.tryStart(q)
	})
}

// execType3Coord runs the root-node coordination: assemble the children
// CBs, then fan the 2D block-cyclic factorization out to every processor.
func (s *sim) execType3Coord(q, node int) {
	asm := s.asmDur(s.asmOps[node])
	s.nodes[node].rootLeft = s.mp.P
	s.consumeChildCBs(q, node, asm)
	s.eng.After(asm, func() {
		s.world.Broadcast(q, s.frontEnt[node]/int64(s.mp.P), msgRootStart{node: node})
		// The coordinator's own share.
		share := s.frontEnt[node] / int64(s.mp.P)
		s.allocFront(q, node, share)
		s.memDelta(q, share)
		s.procs[q].rootQ = append(s.procs[q].rootQ, node)
		s.procs[q].busy = false
		s.tryStart(q)
	})
}

// execRootShare runs one processor's share of the type-3 root.
func (s *sim) execRootShare(q, node int) {
	s.procs[q].busy = true
	share := s.frontEnt[node] / int64(s.mp.P)
	dur := s.flopDur(s.elimFlops[node] / int64(s.mp.P))
	s.eng.After(dur, func() {
		s.freeFront(q, node, share)
		s.memDelta(q, -share)
		s.mem.AddFactors(q, s.factorEnt[node]/int64(s.mp.P))
		coord := s.mp.Proc[node]
		if coord == q {
			s.nodes[node].rootLeft--
			if s.nodes[node].rootLeft == 0 {
				s.completeNode(q, node)
			}
		} else {
			s.world.Send(q, coord, 0, msgRootDone{node: node})
		}
		s.procs[q].busy = false
		s.tryStart(q)
	})
}

// routeCB parks a completed contribution-block piece on the producer's
// stack and notifies the parent's owner. The data stays with the producer
// (as in MUMPS's asynchronous scheme) until the parent front consumes it —
// this is what lets the dynamic slave selection influence where active
// memory accumulates.
func (s *sim) routeCB(q, node int, entries int64) {
	parent := s.tree.Nodes[node].Parent
	if parent < 0 || entries == 0 {
		return
	}
	s.mem.PushCB(q, entries)
	s.memDelta(q, entries)
	powner := s.mp.Proc[parent]
	if powner == q {
		st := &s.nodes[parent]
		st.holders = append(st.holders, holder{proc: q, entries: entries})
		return
	}
	s.nodes[node].remotePieces++
	s.world.Send(q, powner, 0, msgCBHeld{node: node, entries: entries})
}

// consumeChildCBs releases, after the assembly phase, every CB piece parked
// for this node. Remote holders are told to release theirs; the message is
// charged with the piece size, modeling the extend-add data transfer.
func (s *sim) consumeChildCBs(q, node int, after des.Time) {
	st := &s.nodes[node]
	if len(st.holders) == 0 {
		return
	}
	holders := st.holders
	st.holders = nil
	s.eng.After(after, func() {
		for _, h := range holders {
			if h.proc == q {
				s.mem.PopCB(q, h.entries)
				s.memDelta(q, -h.entries)
			} else {
				s.world.Send(q, h.proc, h.entries, msgCBConsume{entries: h.entries})
			}
		}
	})
}

// completeNode marks a node done and notifies the parent's owner.
func (s *sim) completeNode(q, node int) {
	st := &s.nodes[node]
	if st.completed {
		return
	}
	st.completed = true
	s.done++
	if s.mp.Subtree[node] < 0 {
		s.loadDelta(q, -s.ownerFlops(node))
	} else {
		// Subtree work was pre-counted as a lump; decrement per node.
		s.loadDelta(q, -s.elimFlops[node])
	}
	// Leaving a subtree?
	if sub := s.mp.Subtree[node]; sub >= 0 && s.mp.SubRoot[sub] == node {
		s.setSubtree(q, -1)
	}
	parent := s.tree.Nodes[node].Parent
	if parent < 0 {
		return
	}
	powner := s.mp.Proc[parent]
	if powner == q {
		s.nodes[parent].childrenLeft--
		s.nodes[parent].piecesLeft += st.remotePieces
		s.markReady(parent)
	} else {
		s.world.Send(q, powner, 0, msgChildDone{node: node})
	}
}
