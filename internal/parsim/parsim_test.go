package parsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/assembly"
	"repro/internal/order"
	"repro/internal/sparse"
)

func setup(t *testing.T, a *sparse.CSC, m order.Method, p int) (*assembly.Tree, *assembly.Mapping) {
	t.Helper()
	tree, _ := assembly.Analyze(a, assembly.DefaultOptions(m))
	assembly.SortChildrenLiu(tree)
	mp := assembly.Map(tree, assembly.DefaultMapOptions(p))
	if err := mp.Validate(tree); err != nil {
		t.Fatal(err)
	}
	return tree, mp
}

func run(t *testing.T, tree *assembly.Tree, mp *assembly.Mapping, st Strategy) *Result {
	t.Helper()
	res, err := Run(Config{Tree: tree, Map: mp, Strategy: st, Params: DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunCompletesAllStrategies(t *testing.T) {
	tree, mp := setup(t, sparse.Grid2D(20, 20), order.ND, 4)
	for _, st := range []Strategy{Workload(), MemoryBased()} {
		res := run(t, tree, mp, st)
		if res.NodesDone != tree.Len() {
			t.Fatalf("%d of %d nodes", res.NodesDone, tree.Len())
		}
		if res.TotalFactors != assembly.TotalFactorEntries(tree) {
			t.Errorf("factors %d != model %d", res.TotalFactors, assembly.TotalFactorEntries(tree))
		}
		if res.MaxActivePeak <= 0 || res.Makespan <= 0 {
			t.Errorf("degenerate result %+v", res)
		}
	}
}

func TestSingleProcessorMatchesSequentialPeak(t *testing.T) {
	// On one processor with the default stack policy, the simulator must
	// reproduce the sequential Liu peak exactly.
	a := sparse.Grid2D(14, 14)
	tree, _ := assembly.Analyze(a, assembly.DefaultOptions(order.AMD))
	peaks := assembly.SortChildrenLiu(tree)
	want := assembly.TreePeak(peaks, tree)
	mp := assembly.Map(tree, assembly.DefaultMapOptions(1))
	res := run(t, tree, mp, Workload())
	if res.MaxActivePeak != want {
		t.Errorf("1-proc simulated peak %d != sequential model %d", res.MaxActivePeak, want)
	}
}

func TestDeterminism(t *testing.T) {
	tree, mp := setup(t, sparse.Grid3D(7, 7, 7), order.ND, 8)
	for _, st := range []Strategy{Workload(), MemoryBased()} {
		r1 := run(t, tree, mp, st)
		r2 := run(t, tree, mp, st)
		if r1.MaxActivePeak != r2.MaxActivePeak || r1.Makespan != r2.Makespan ||
			r1.Messages != r2.Messages {
			t.Fatalf("non-deterministic: %+v vs %+v", r1, r2)
		}
	}
}

func TestUnsymmetricRun(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := sparse.Grid3DUnsym(7, 7, 7, rng)
	tree, mp := setup(t, a, order.ND, 8)
	for _, st := range []Strategy{Workload(), MemoryBased()} {
		res := run(t, tree, mp, st)
		if res.NodesDone != tree.Len() {
			t.Fatalf("incomplete run")
		}
	}
}

func TestMemoryStrategyReducesPeakSomewhere(t *testing.T) {
	// The paper's central claim (Tables 2/3/5): across matrices and
	// orderings, the memory-based strategies reduce the max stack peak for
	// a good fraction of cases. Require: wins on average over a small
	// matrix/ordering sweep, and never catastrophically worse.
	rng := rand.New(rand.NewSource(7))
	mats := []*sparse.CSC{
		sparse.Grid3D(8, 8, 8),
		sparse.Grid3DUnsym(7, 7, 7, rng),
		sparse.Shell(10, 10, 3),
	}
	wins, losses := 0, 0
	var sumGain float64
	for _, a := range mats {
		for _, m := range order.Methods {
			tree, mp := setup(t, a, m, 8)
			w := run(t, tree, mp, Workload())
			mem := run(t, tree, mp, MemoryBased())
			gain := float64(w.MaxActivePeak-mem.MaxActivePeak) / float64(w.MaxActivePeak)
			sumGain += gain
			if mem.MaxActivePeak < w.MaxActivePeak {
				wins++
			} else if mem.MaxActivePeak > w.MaxActivePeak {
				losses++
			}
		}
	}
	t.Logf("wins=%d losses=%d avg gain=%.1f%%", wins, losses, 100*sumGain/12)
	// At this toy scale the paper's Table 2 shape is: gains for several
	// combinations, near-zero or small losses elsewhere (losses are
	// addressed by node splitting, Table 3 — exercised in the experiment
	// harness at full scale).
	if wins < 2 {
		t.Errorf("memory strategy reduced the peak in only %d of 12 cases", wins)
	}
	if avg := sumGain / 12; avg < -0.05 {
		t.Errorf("memory strategy loses badly on average: %.2f%%", 100*avg)
	}
}

func TestTimePenaltyBounded(t *testing.T) {
	// Table 6: the factorization-time loss of the memory strategy must be
	// bounded (paper sees 0-94%, typically <50%).
	tree, mp := setup(t, sparse.Grid3D(8, 8, 8), order.ND, 8)
	w := run(t, tree, mp, Workload())
	mem := run(t, tree, mp, MemoryBased())
	ratio := float64(mem.Makespan) / float64(w.Makespan)
	t.Logf("makespan ratio memory/workload = %.3f", ratio)
	if ratio > 3 {
		t.Errorf("memory strategy %gx slower", ratio)
	}
}

func TestAblationTogglesRun(t *testing.T) {
	tree, mp := setup(t, sparse.Grid2D(24, 24), order.AMF, 4)
	variants := []Strategy{
		{MemorySlaveSelection: true},
		{MemorySlaveSelection: true, UseSubtreeInfo: true},
		{MemorySlaveSelection: true, UsePrediction: true},
		{MemoryTaskSelection: true},
		MemoryBased(),
	}
	for i, st := range variants {
		res := run(t, tree, mp, st)
		if res.NodesDone != tree.Len() {
			t.Fatalf("variant %d incomplete", i)
		}
	}
}

func TestTraceRecording(t *testing.T) {
	tree, mp := setup(t, sparse.Grid2D(12, 12), order.ND, 2)
	res, err := Run(Config{Tree: tree, Map: mp, Strategy: MemoryBased(),
		Params: DefaultParams(), Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) != 2 {
		t.Fatalf("%d traces", len(res.Traces))
	}
	for p, tr := range res.Traces {
		if len(tr) == 0 {
			t.Errorf("proc %d has empty trace", p)
		}
		last := tr[len(tr)-1]
		if last.Active != 0 {
			t.Errorf("proc %d trace does not end at zero: %+v", p, last)
		}
	}
}

func TestPerProcPeaksConsistent(t *testing.T) {
	tree, mp := setup(t, sparse.Grid2D(16, 16), order.ND, 4)
	res := run(t, tree, mp, MemoryBased())
	var max int64
	for _, p := range res.PerProcPeak {
		if p > max {
			max = p
		}
	}
	if max != res.MaxActivePeak {
		t.Errorf("per-proc max %d != MaxActivePeak %d", max, res.MaxActivePeak)
	}
}

func TestSplitTreeRuns(t *testing.T) {
	a := sparse.Grid3D(8, 8, 8)
	tree, _ := assembly.Analyze(a, assembly.DefaultOptions(order.ND))
	assembly.SortChildrenLiu(tree)
	split, n := assembly.Split(tree, assembly.SplitOptions{MaxMasterEntries: 2000, MinPiv: 8})
	if n == 0 {
		t.Skip("nothing split")
	}
	assembly.SortChildrenLiu(split)
	mp := assembly.Map(split, assembly.DefaultMapOptions(8))
	for _, st := range []Strategy{Workload(), MemoryBased()} {
		res, err := Run(Config{Tree: split, Map: mp, Strategy: st, Params: DefaultParams()})
		if err != nil {
			t.Fatal(err)
		}
		if res.NodesDone != split.Len() {
			t.Fatal("incomplete")
		}
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("nil config accepted")
	}
	tree, mp := setup(t, sparse.Grid2D(6, 6), order.AMD, 2)
	bad := Config{Tree: tree, Map: mp, Params: Params{}}
	if _, err := Run(bad); err == nil {
		t.Error("zero rates accepted")
	}
}

func TestPropertyAllProcCountsComplete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 60 + rng.Intn(120)
		p := 1 + rng.Intn(8)
		a := sparse.RandomSPDPattern(n, 3, rng)
		tree, _ := assembly.Analyze(a, assembly.DefaultOptions(order.AMD))
		assembly.SortChildrenLiu(tree)
		mp := assembly.Map(tree, assembly.DefaultMapOptions(p))
		for _, st := range []Strategy{Workload(), MemoryBased()} {
			res, err := Run(Config{Tree: tree, Map: mp, Strategy: st, Params: DefaultParams()})
			if err != nil || res.NodesDone != tree.Len() {
				return false
			}
			if res.TotalFactors != assembly.TotalFactorEntries(tree) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestStaleMemoryRace(t *testing.T) {
	// Figure 5: with nonzero latency, a master can select a slave based on
	// stale memory information. The run must still complete and the result
	// must differ (in general) from a zero-latency run, demonstrating that
	// latency is modeled.
	tree, mp := setup(t, sparse.Grid3D(7, 7, 7), order.AMF, 8)
	pLat := DefaultParams()
	p0 := DefaultParams()
	p0.Comm.Latency = 0
	p0.Comm.Bandwidth = 0 // infinite
	rLat, err := Run(Config{Tree: tree, Map: mp, Strategy: MemoryBased(), Params: pLat})
	if err != nil {
		t.Fatal(err)
	}
	r0, err := Run(Config{Tree: tree, Map: mp, Strategy: MemoryBased(), Params: p0})
	if err != nil {
		t.Fatal(err)
	}
	if rLat.NodesDone != tree.Len() || r0.NodesDone != tree.Len() {
		t.Fatal("incomplete")
	}
	t.Logf("peak with latency %d, without %d", rLat.MaxActivePeak, r0.MaxActivePeak)
}

func TestSubtreeOrderPeakDescending(t *testing.T) {
	// Both treatment orders must complete with identical totals; the
	// peak-descending order must actually reorder something on a tree
	// with several subtrees per processor (2 procs, many subtrees).
	a := sparse.Grid3D(6, 6, 6)
	tree, _ := assembly.Analyze(a, assembly.Options{Ordering: order.AMD})
	assembly.SortChildrenLiu(tree)
	mp := assembly.Map(tree, assembly.DefaultMapOptions(2))
	run := func(so SubtreeOrder) *Result {
		st := MemoryBased()
		st.SubtreeOrder = so
		res, err := Run(Config{Tree: tree, Map: mp, Strategy: st, Params: DefaultParams()})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	post := run(SubtreePostorder)
	desc := run(SubtreePeakDescending)
	if post.TotalFactors != desc.TotalFactors || post.NodesDone != desc.NodesDone {
		t.Fatalf("subtree order changed the work done: %+v vs %+v", post, desc)
	}
	if post.MaxActivePeak <= 0 || desc.MaxActivePeak <= 0 {
		t.Fatal("missing peaks")
	}
	t.Logf("postorder peak %d, peak-descending peak %d", post.MaxActivePeak, desc.MaxActivePeak)
}
