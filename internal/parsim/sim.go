package parsim

import (
	"fmt"
	"sort"

	"repro/internal/assembly"
	"repro/internal/des"
	"repro/internal/memory"
	"repro/internal/sched"
	"repro/internal/sparse"
	"repro/internal/vmpi"
)

type procState struct {
	rank         int
	pool         sched.Pool
	view         *sched.View
	slaveQ       []slaveTask
	rootQ        []int // pending type-3 share nodes
	busy         bool
	curSubtree   int
	subBase      int64 // active memory at entry of the current subtree
	lastIncoming int64
	lastSubtree  int64
	open         map[int]int64 // live front allocations by node (diagnostics)
}

type sim struct {
	cfg   Config
	tree  *assembly.Tree
	mp    *assembly.Mapping
	eng   *des.Engine
	world *vmpi.World
	mem   *memory.Tracker
	procs []procState
	nodes []nodeState

	// Precomputed per-node costs.
	elimFlops  []int64
	asmOps     []int64
	frontEnt   []int64
	masterEnt  []int64
	cbEnt      []int64
	factorEnt  []int64
	rowFlops   []int64 // type-2: elimination flops of one CB row
	masterFl   []int64 // type-2: master-segment flops
	childCBSum []int64 // sum of children CB entries (popped after assembly)

	booting         bool
	done            int
	slaveSelections int64
	alg2Deviations  int64
}

// Run simulates one factorization and returns the result.
func Run(cfg Config) (*Result, error) {
	if cfg.Tree == nil || cfg.Map == nil {
		return nil, fmt.Errorf("parsim: nil tree or mapping")
	}
	if err := cfg.Map.Validate(cfg.Tree); err != nil {
		return nil, err
	}
	if cfg.Params.FlopRate <= 0 || cfg.Params.AsmRate <= 0 {
		return nil, fmt.Errorf("parsim: non-positive rates")
	}
	s := &sim{
		cfg:  cfg,
		tree: cfg.Tree,
		mp:   cfg.Map,
		eng:  des.New(),
	}
	p := cfg.Map.P
	s.world = vmpi.New(s.eng, p, cfg.Params.Comm)
	s.mem = memory.NewTracker(s.eng, p)
	s.procs = make([]procState, p)
	n := s.tree.Len()
	s.nodes = make([]nodeState, n)
	s.elimFlops = make([]int64, n)
	s.asmOps = make([]int64, n)
	s.frontEnt = make([]int64, n)
	s.masterEnt = make([]int64, n)
	s.cbEnt = make([]int64, n)
	s.factorEnt = make([]int64, n)
	s.rowFlops = make([]int64, n)
	s.masterFl = make([]int64, n)
	s.childCBSum = make([]int64, n)

	for i := 0; i < n; i++ {
		nd := &s.tree.Nodes[i]
		s.elimFlops[i] = assembly.EliminationFlops(nd, s.tree.Kind)
		s.frontEnt[i] = assembly.FrontEntries(nd, s.tree.Kind)
		s.masterEnt[i] = assembly.MasterEntries(nd, s.tree.Kind)
		s.cbEnt[i] = assembly.CBEntries(nd, s.tree.Kind)
		s.factorEnt[i] = assembly.FactorEntries(nd, s.tree.Kind)
		s.asmOps[i] = assembly.AssemblyFlops(s.tree, nd)
		for _, c := range nd.Children {
			s.childCBSum[i] += assembly.CBEntries(&s.tree.Nodes[c], s.tree.Kind)
		}
		s.nodes[i].childrenLeft = len(nd.Children)
		// Type-2 work split: one CB row costs the rank-updates of all
		// pivots; the master segment is the remainder.
		f, piv, ncb := int64(nd.NFront()), int64(nd.NPiv()), int64(nd.NCB())
		var rf int64
		for k := int64(0); k < piv; k++ {
			rf += 2 * (f - k - 1)
		}
		if s.tree.Kind == sparse.Symmetric {
			rf /= 2
		}
		s.rowFlops[i] = rf
		s.masterFl[i] = s.elimFlops[i] - ncb*rf
		if s.masterFl[i] < 0 {
			s.masterFl[i] = 0
		}
	}

	for q := 0; q < p; q++ {
		s.procs[q] = procState{rank: q, view: sched.NewView(p), curSubtree: -1,
			open: map[int]int64{}}
		if cfg.Trace {
			s.mem.Procs[q].EnableTrace()
		}
		q := q
		if cfg.Snapshot {
			s.mem.SetSnapshot(q, func() string { return s.snapshot(q) })
		}
		s.world.Register(q, func(from int, payload any) { s.handle(q, from, payload) })
	}

	// Initial workload views: the cost of each processor's subtrees
	// (paper Section 3).
	for si, pr := range s.mp.SubProc {
		for q := 0; q < p; q++ {
			s.procs[q].view.AddLoad(pr, s.mp.SubFlops[si])
		}
	}

	// Initial pools: leaves pushed so that the first leaf a processor
	// should treat ends on top — depth-first with subtree leaves
	// contiguous. The default treatment order is postorder; with
	// SubtreePeakDescending each processor's subtrees are reordered by
	// decreasing sequential stack peak (treat the memory-heavy subtree
	// while the rest of the memory is still low). The booting flag keeps
	// processors from starting work until every pool is filled.
	s.booting = true
	leaves := s.initialLeafOrder()
	for k := len(leaves) - 1; k >= 0; k-- {
		s.markReady(leaves[k])
	}
	s.booting = false
	for q := 0; q < p; q++ {
		s.tryStart(q)
	}
	s.eng.Run()

	if s.done != n {
		return nil, fmt.Errorf("parsim: deadlock — %d of %d nodes completed", s.done, n)
	}
	res := &Result{
		MaxActivePeak:   s.mem.MaxActivePeak(),
		MaxStackPeak:    s.mem.MaxStackPeak(),
		MaxTotalPeak:    s.mem.MaxTotalPeak(),
		AvgActivePeak:   s.mem.AvgActivePeak(),
		Makespan:        s.eng.Now(),
		TotalFactors:    s.mem.TotalFactors(),
		Messages:        s.world.Messages,
		Bytes:           s.world.Bytes,
		NodesDone:       s.done,
		SlaveSelections: s.slaveSelections,
		Alg2Deviations:  s.alg2Deviations,
	}
	for q := 0; q < p; q++ {
		res.PerProcPeak = append(res.PerProcPeak, s.mem.Procs[q].ActivePeak)
		if s.mem.Procs[q].ActivePeak == res.MaxActivePeak {
			res.PeakProc = q
			res.PeakStack = s.mem.Procs[q].PeakStack
			res.PeakFronts = s.mem.Procs[q].PeakFronts
			res.PeakTime = s.mem.Procs[q].PeakTime
			res.PeakNote = s.mem.Procs[q].PeakNote
		}
		if cfg.Trace {
			res.Traces = append(res.Traces, s.mem.Procs[q].Trace())
		}
	}
	// Invariants: all transient memory released.
	for q := 0; q < p; q++ {
		if a := s.mem.Procs[q].Active(); a != 0 {
			return nil, fmt.Errorf("parsim: proc %d still holds %d entries", q, a)
		}
	}
	return res, nil
}

// initialLeafOrder returns the tree's leaves in global treatment order:
// postorder by default, or with each processor's subtrees reordered by
// decreasing stack peak (SubtreePeakDescending). Only the relative order
// of leaves on the *same* processor matters — pools are per-processor —
// so the reorder permutes whole subtree-leaf groups in place.
func (s *sim) initialLeafOrder() []int {
	var leaves []int
	for _, i := range s.tree.Postorder() {
		if len(s.tree.Nodes[i].Children) == 0 {
			leaves = append(leaves, i)
		}
	}
	if s.cfg.Strategy.SubtreeOrder != SubtreePeakDescending {
		return leaves
	}
	// Only the relative order of leaves on the same processor matters
	// (pools are per-processor), so sort each processor's leaf list by
	// decreasing subtree peak (stable, so leaves within one subtree stay
	// in postorder) and write it back into that processor's slots.
	// Leaves outside any subtree carry peak -1 and end last: they are
	// upper-tree work that depends on subtree results anyway.
	perProc := make(map[int][]int)
	for _, i := range leaves {
		perProc[s.mp.Proc[i]] = append(perProc[s.mp.Proc[i]], i)
	}
	peakOf := func(i int) int64 {
		if st := s.mp.Subtree[i]; st >= 0 {
			return s.mp.SubPeak[st]
		}
		return -1
	}
	for _, list := range perProc {
		sort.SliceStable(list, func(a, b int) bool {
			return peakOf(list[a]) > peakOf(list[b])
		})
	}
	out := make([]int, 0, len(leaves))
	used := make(map[int]int)
	for _, i := range leaves {
		q := s.mp.Proc[i]
		out = append(out, perProc[q][used[q]])
		used[q]++
	}
	return out
}

// markReady is called on the owner when a node has all children completed
// and all CB pieces present.
func (s *sim) markReady(i int) {
	st := &s.nodes[i]
	if st.pushed || st.childrenLeft > 0 || st.piecesLeft != 0 {
		return
	}
	st.pushed = true
	owner := s.mp.Proc[i]
	s.procs[owner].pool.Push(i)
	if s.mp.Subtree[i] < 0 {
		// Subtree work was pre-counted in the initial loads.
		s.loadDelta(owner, s.ownerFlops(i))
	}
	s.updateIncoming(owner)
	s.tryStart(owner)
}

// ownerFlops is the workload the owner itself executes for a node.
func (s *sim) ownerFlops(i int) int64 {
	switch s.mp.Types[i] {
	case assembly.Type2:
		return s.masterFl[i]
	case assembly.Type3:
		return s.elimFlops[i] / int64(s.mp.P)
	default:
		return s.elimFlops[i]
	}
}

// memCostOnOwner is the memory a task allocates on its owner at activation
// (the Algorithm 2 / prediction cost).
func (s *sim) memCostOnOwner(i int) int64 {
	switch s.mp.Types[i] {
	case assembly.Type2:
		return s.masterEnt[i]
	case assembly.Type3:
		return s.frontEnt[i] / int64(s.mp.P)
	default:
		return s.frontEnt[i]
	}
}

func (s *sim) tryStart(q int) {
	ps := &s.procs[q]
	if ps.busy || s.booting {
		return
	}
	// Priority 1: type-3 root shares (global synchronous phase).
	if len(ps.rootQ) > 0 {
		node := ps.rootQ[0]
		ps.rootQ = ps.rootQ[1:]
		s.execRootShare(q, node)
		return
	}
	// Priority 2: slave tasks, activated in receipt order.
	if len(ps.slaveQ) > 0 {
		t := ps.slaveQ[0]
		ps.slaveQ = ps.slaveQ[1:]
		s.execSlave(q, t)
		return
	}
	if ps.pool.Empty() {
		return
	}
	var node int
	if s.cfg.Strategy.MemoryTaskSelection {
		info := sched.TaskInfo{
			InSubtree: func(n int) bool { return s.mp.Subtree[n] >= 0 },
			MemCost:   func(n int) int64 { return s.memCostOnOwner(n) },
		}
		// Current memory "including peak of subtree" (Algorithm 2): while
		// inside a subtree the memory will still rise to the subtree's
		// peak above its entry level, so use whichever is higher.
		cur := s.mem.Procs[q].Active()
		if ps.curSubtree >= 0 {
			if proj := ps.subBase + s.mp.SubPeak[ps.curSubtree]; proj > cur {
				cur = proj
			}
		}
		// The reference is the *global* peak observed since the beginning
		// of the factorization: activating a task that keeps this
		// processor under it cannot raise the solver's peak. (Using the
		// processor's own peak instead makes the test so strict that the
		// pool constantly deviates from depth-first order, which the
		// paper warns "could tend to increase the number of branches of
		// the tree active simultaneously".)
		k := sched.SelectMemoryAware(&ps.pool, info, cur, s.mem.MaxActivePeak())
		if k != 0 {
			s.alg2Deviations++
		}
		node = ps.pool.PopAt(k)
	} else {
		node = ps.pool.PopTop()
	}
	s.updateIncoming(q)
	s.execMaster(q, node)
}

// ---- view broadcasts -------------------------------------------------

func (s *sim) loadDelta(q int, delta int64) {
	if delta == 0 {
		return
	}
	s.procs[q].view.AddLoad(q, delta)
	s.world.Broadcast(q, 0, msgLoadDelta{delta})
}

// usesMemoryViews reports whether remote memory views must be maintained
// (any slave-selection strategy that reads them).
func (s *sim) usesMemoryViews() bool {
	return s.cfg.Strategy.MemorySlaveSelection || s.cfg.Strategy.HybridSlaveSelection
}

func (s *sim) memDelta(q int, delta int64) {
	if delta == 0 {
		return
	}
	s.procs[q].view.AddMem(q, delta)
	if s.usesMemoryViews() {
		s.world.Broadcast(q, 0, msgMemDelta{delta})
	}
}

func (s *sim) updateIncoming(q int) {
	if !s.cfg.Strategy.UsePrediction {
		return
	}
	var max int64
	for _, n := range s.procs[q].pool.Items() {
		if c := s.memCostOnOwner(n); c > max {
			max = c
		}
	}
	if max == s.procs[q].lastIncoming {
		return
	}
	s.procs[q].lastIncoming = max
	s.procs[q].view.SetIncoming(q, max)
	s.world.Broadcast(q, 0, msgIncoming{max})
}

func (s *sim) setSubtree(q int, sub int) {
	ps := &s.procs[q]
	if ps.curSubtree == sub {
		return
	}
	ps.curSubtree = sub
	if sub >= 0 {
		ps.subBase = s.mem.Procs[q].Active()
	}
	if !s.cfg.Strategy.UseSubtreeInfo {
		return
	}
	// Broadcast the projected absolute level (entry memory + subtree
	// peak); see sched.View for why this is not the bare peak.
	var level int64
	if sub >= 0 {
		level = ps.subBase + s.mp.SubPeak[sub]
	}
	if level == ps.lastSubtree {
		return
	}
	ps.lastSubtree = level
	ps.view.SetSubtree(q, level)
	s.world.Broadcast(q, 0, msgSubtree{peak: level})
}

// ---- message handling ------------------------------------------------

func (s *sim) handle(q, from int, payload any) {
	switch m := payload.(type) {
	case msgChildDone:
		st := &s.nodes[m.node]
		parent := s.tree.Nodes[m.node].Parent
		s.nodes[parent].childrenLeft--
		s.nodes[parent].piecesLeft += st.remotePieces
		s.markReady(parent)
	case msgCBHeld:
		parent := s.tree.Nodes[m.node].Parent
		st := &s.nodes[parent]
		st.holders = append(st.holders, holder{proc: from, entries: m.entries})
		st.piecesLeft--
		s.markReady(parent)
	case msgCBConsume:
		s.mem.PopCB(q, m.entries)
		s.memDelta(q, -m.entries)
	case msgAssign:
		// A master announced its slave selection: fold the assigned memory
		// and work into this processor's view of the chosen slaves. The
		// view increments here pair with the decrements the slaves
		// broadcast themselves when they finish (execSlave); memory views
		// are only maintained under the memory strategy (as the
		// decrements are).
		for k, r := range m.procs {
			if s.usesMemoryViews() {
				s.procs[q].view.AddMem(r, m.mem[k])
			}
			s.procs[q].view.AddLoad(r, m.load[k])
		}
	case msgSlaveTask:
		// Activated on receipt: the row block is allocated immediately
		// (the paper: "slave tasks are activated as soon as they are
		// received on the slave side"). The view increment was already
		// published by the master's msgAssign broadcast.
		s.allocFront(q, m.node, m.area)
		s.procs[q].slaveQ = append(s.procs[q].slaveQ, slaveTask{
			node: m.node, rows: m.rows, from: from,
			area: m.area, fact: m.fact, cbPiece: m.cbPiece, flops: m.flops,
		})
		s.tryStart(q)
	case msgSlaveDone:
		st := &s.nodes[m.node]
		st.slavesLeft--
		s.maybeCompleteType2(q, m.node)
	case msgMemDelta:
		s.procs[q].view.AddMem(from, m.delta)
	case msgLoadDelta:
		s.procs[q].view.AddLoad(from, m.delta)
	case msgSubtree:
		s.procs[q].view.SetSubtree(from, m.peak)
	case msgIncoming:
		s.procs[q].view.SetIncoming(from, m.cost)
	case msgRootStart:
		share := s.frontEnt[m.node] / int64(s.mp.P)
		s.allocFront(q, m.node, share)
		s.memDelta(q, share)
		s.procs[q].rootQ = append(s.procs[q].rootQ, m.node)
		s.tryStart(q)
	case msgRootDone:
		st := &s.nodes[m.node]
		st.rootLeft--
		if st.rootLeft == 0 {
			s.completeNode(q, m.node)
		}
	default:
		panic(fmt.Sprintf("parsim: unknown message %T", payload))
	}
}
