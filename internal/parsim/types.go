// Package parsim simulates the distributed-memory multifrontal
// factorization of MUMPS on P virtual processors (discrete-event time),
// implementing the paper's scheduling machinery end to end:
//
//   - per-processor pools of ready tasks managed as stacks (Section 5.2),
//   - type-1 / type-2 / type-3 task state machines with 1D row blocking for
//     type-2 fronts (Section 3),
//   - dynamic slave selection: workload-based (the MUMPS baseline) or
//     memory-based Algorithm 1, optionally with the Section 5.1
//     subtree-peak and incoming-master-prediction broadcasts,
//   - memory-aware task selection (Algorithm 2),
//   - message-based views of remote memory/workload with latency, which
//     reproduces the stale-view hazard of Figure 5.
//
// The simulator moves front *sizes* and flop counts, not numerical values:
// the paper's metrics (per-processor stack peaks, factorization time) are
// functions of scheduling decisions and the cost model only. The numeric
// kernel lives in internal/seqmf and shares the same assembly trees.
package parsim

import (
	"repro/internal/assembly"
	"repro/internal/des"
	"repro/internal/memory"
	"repro/internal/vmpi"
)

// Strategy selects the scheduling policies under test.
type Strategy struct {
	// MemorySlaveSelection uses Algorithm 1 instead of the workload-based
	// slave selection for type-2 fronts.
	MemorySlaveSelection bool
	// UseSubtreeInfo broadcasts the peak of the subtree a processor starts
	// and folds it into the slave-selection metric (Section 5.1).
	UseSubtreeInfo bool
	// UsePrediction broadcasts the cost of the largest ready master task of
	// each processor and folds it into the metric (Section 5.1).
	UsePrediction bool
	// MemoryTaskSelection uses Algorithm 2 for the local pool instead of
	// plain stack popping.
	MemoryTaskSelection bool
	// HybridSlaveSelection applies the workload filter of the MUMPS
	// baseline (only processors less loaded than the master) before the
	// memory-based Algorithm 1 — the hybrid strategy the paper's
	// conclusion calls for. Implies MemorySlaveSelection semantics for
	// the view maintenance.
	HybridSlaveSelection bool
	// SubtreeOrder selects the order in which each processor treats its
	// statically assigned subtrees ("the order in which subtrees are
	// treated is also important", Section 6, citing the author's RenPar
	// work).
	SubtreeOrder SubtreeOrder
}

// SubtreeOrder selects the initial pool ordering of a processor's
// subtrees.
type SubtreeOrder int

const (
	// SubtreePostorder treats subtrees in assembly-tree postorder (the
	// MUMPS default; leaves of one subtree stay contiguous).
	SubtreePostorder SubtreeOrder = iota
	// SubtreePeakDescending treats the subtree with the largest
	// sequential stack peak first, while the rest of the processor's
	// memory is still low — the heuristic of the paper's reference [11].
	SubtreePeakDescending
)

// Workload is the MUMPS baseline strategy (dynamic workload balancing).
func Workload() Strategy { return Strategy{} }

// MemoryBased enables all of the paper's memory mechanisms
// (Algorithm 1 + Section 5.1 improvements + Algorithm 2).
func MemoryBased() Strategy {
	return Strategy{
		MemorySlaveSelection: true,
		UseSubtreeInfo:       true,
		UsePrediction:        true,
		MemoryTaskSelection:  true,
	}
}

// Hybrid is the workload-constrained memory strategy of the paper's
// conclusion: Algorithm 1 (with the Section 5.1 metric and Algorithm 2)
// restricted to processors less loaded than the master.
func Hybrid() Strategy {
	s := MemoryBased()
	s.HybridSlaveSelection = true
	return s
}

// Params sets the machine model.
type Params struct {
	FlopRate float64 // elimination flops per second per processor
	AsmRate  float64 // assembly (extend-add) operations per second
	Comm     vmpi.Config
}

// DefaultParams models one Power4-class processor per rank and an
// interconnect scaled to the suite: the synthetic matrices are ~100x
// smaller than the paper's, so their fronts factorize ~100x faster; the
// latency and bandwidth are scaled by the same factor to preserve the
// IBM SP's compute-to-communication ratio (a 20us/200MB/s network against
// fronts that take hundreds of milliseconds). Without this scaling every
// dynamic decision would be made on views stale by many whole tasks —
// the Figure 5 hazard would dominate everything, which is not the regime
// the paper reports. Use vmpi.DefaultConfig() explicitly to study the
// stale-view regime (BenchmarkAblationLatency does).
func DefaultParams() Params {
	return Params{
		FlopRate: 2e9,
		AsmRate:  5e8,
		Comm: vmpi.Config{
			Latency:   200, // 0.2us
			BytesPerE: 8,
			Bandwidth: 20e9,
		},
	}
}

// Result reports the outcome of a simulated factorization.
type Result struct {
	// MaxActivePeak is the paper's headline metric: the maximum over
	// processors of the peak of stack + active fronts, in entries.
	MaxActivePeak int64
	// MaxStackPeak is the same for the CB stack alone.
	MaxStackPeak int64
	// MaxTotalPeak is the in-core total (factors + stack + fronts): the
	// memory an execution needs when factors stay in core. The gap to
	// MaxActivePeak is the out-of-core headroom the paper's conclusion
	// argues for (factors can go to disk; the stack cannot).
	MaxTotalPeak int64
	// AvgActivePeak indicates memory balance across processors.
	AvgActivePeak float64
	// PerProcPeak lists each processor's active-memory peak.
	PerProcPeak []int64
	// PeakProc is the processor achieving MaxActivePeak; PeakStack and
	// PeakFronts decompose that peak into CB stack vs live fronts, and
	// PeakTime is when it was reached — diagnostic facts the paper uses to
	// explain individual table cells (e.g. "the peak is obtained inside a
	// subtree" or "when a master of a large type 2 node is allocated").
	PeakProc   int
	PeakStack  int64
	PeakFronts int64
	PeakTime   des.Time
	// PeakNote describes the allocations making up the peak (only when
	// Config.Snapshot was set).
	PeakNote string
	// Makespan is the simulated factorization time.
	Makespan des.Time
	// TotalFactors is the factor entries produced (must match the model).
	TotalFactors int64
	// Messages and Bytes count the communication.
	Messages, Bytes int64
	// NodesDone counts completed fronts (must equal the tree size).
	NodesDone int
	// SlaveSelections counts type-2 slave-selection decisions.
	SlaveSelections int64
	// Alg2Deviations counts pool selections where Algorithm 2 picked a task
	// other than the top of the stack.
	Alg2Deviations int64
	// Traces holds per-processor memory traces when tracing was enabled.
	Traces [][]memory.TracePoint
}

// Config bundles everything a simulation run needs.
type Config struct {
	Tree     *assembly.Tree
	Map      *assembly.Mapping
	Strategy Strategy
	Params   Params
	Trace    bool // record per-processor memory traces
	// Snapshot records, for each processor, the composition of its memory
	// peak (which fronts/slave blocks were live) in Result.PeakNote.
	Snapshot bool
}

type slaveTask struct {
	node    int
	rows    int
	from    int // master rank
	area    int64
	fact    int64
	cbPiece int64
	flops   int64
}

// holder records a contribution-block piece parked on a producer's stack
// until the parent front consumes it.
type holder struct {
	proc    int
	entries int64
}

// nodeState tracks the dynamic execution state of one front.
type nodeState struct {
	childrenLeft int      // children not yet completed (tracked at owner)
	piecesLeft   int      // held-notifications announced but not yet arrived
	remotePieces int      // held-notifications this node sends remotely
	holders      []holder // where the children's CB pieces are parked
	pushed       bool
	started      bool
	completed    bool
	slavesLeft   int  // outstanding slave pieces (type 2)
	masterDone   bool // master segment finished (type 2)
	rootLeft     int  // outstanding processor shares (type 3)
}

// Message payloads.
type (
	msgChildDone struct{ node int }
	// msgCBHeld tells the parent's owner that a CB piece for child `node`
	// is parked on the sender's stack.
	msgCBHeld struct {
		node    int
		entries int64
	}
	// msgCBConsume tells a holder to release a parked CB piece (the data
	// transfer into the parent front is charged to this message).
	msgCBConsume struct{ entries int64 }
	msgSlaveTask struct {
		node    int
		rows    int
		area    int64 // front row-block entries to allocate at receipt
		fact    int64 // factor entries this slave produces
		cbPiece int64 // CB piece entries this slave stacks/sends
		flops   int64 // elimination flops of this row block
	}
	msgSlaveDone struct{ node int }
	// msgAssign announces a master's slave selection to every processor:
	// the memory and workload the chosen slaves are about to receive. This
	// is the paper's "mechanism [that] ensures that the choices done by
	// master processors are known as quickly as possible by the others"
	// (Section 4) — without it, concurrent masters see stale views and
	// pile their slave tasks onto the same processors (Figure 5).
	msgAssign struct {
		procs []int
		mem   []int64
		load  []int64
	}
	msgMemDelta  struct{ delta int64 }
	msgLoadDelta struct{ delta int64 }
	msgSubtree   struct{ peak int64 }
	msgIncoming  struct{ cost int64 }
	msgRootStart struct{ node int }
	msgRootDone  struct{ node int }
)
