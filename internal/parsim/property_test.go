package parsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/assembly"
	"repro/internal/des"
	"repro/internal/order"
	"repro/internal/sparse"
)

// fuzzConfig builds a full simulation config from fuzz bytes: a random
// small matrix, a random ordering, a random processor count and strategy
// toggles.
func fuzzConfig(nRaw uint8, edges []uint16, pRaw, stRaw uint8) Config {
	n := 8 + int(nRaw)%48
	b := sparse.NewBuilder(n, sparse.Symmetric)
	for j := 0; j < n; j++ {
		b.Add(j, j, float64(n))
		if j+1 < n {
			b.Add(j+1, j, -1)
		}
	}
	for _, e := range edges {
		i, j := int(e)%n, int(e>>7)%n
		if i > j {
			b.Add(i, j, -1)
		}
	}
	a := b.Build()
	m := order.Methods[int(stRaw>>4)%len(order.Methods)]
	tree, _ := assembly.Analyze(a, assembly.Options{Ordering: m})
	assembly.SortChildrenLiu(tree)
	p := 1 + int(pRaw)%9
	mp := assembly.Map(tree, assembly.DefaultMapOptions(p))
	return Config{
		Tree: tree,
		Map:  mp,
		Strategy: Strategy{
			MemorySlaveSelection: stRaw&1 != 0,
			UseSubtreeInfo:       stRaw&2 != 0,
			UsePrediction:        stRaw&4 != 0,
			MemoryTaskSelection:  stRaw&8 != 0,
			HybridSlaveSelection: stRaw&16 != 0,
		},
		Params: DefaultParams(),
	}
}

// TestPropertySimulationConservation: on fuzzed matrices, orderings,
// processor counts and strategy combinations, the simulation terminates
// with every node done, produces exactly the model's factor entries, and
// ends with zero transient memory (Run itself checks the drain and
// returns an error otherwise).
func TestPropertySimulationConservation(t *testing.T) {
	prop := func(nRaw uint8, edges []uint16, pRaw, stRaw uint8) bool {
		cfg := fuzzConfig(nRaw, edges, pRaw, stRaw)
		res, err := Run(cfg)
		if err != nil {
			t.Logf("run: %v", err)
			return false
		}
		if res.NodesDone != cfg.Tree.Len() {
			return false
		}
		if res.TotalFactors != assembly.TotalFactorEntries(cfg.Tree) {
			t.Logf("factors %d, model %d",
				res.TotalFactors, assembly.TotalFactorEntries(cfg.Tree))
			return false
		}
		if res.MaxActivePeak <= 0 || res.Makespan <= 0 {
			return false
		}
		// The max peak is the max of the per-proc peaks.
		var m int64
		for _, v := range res.PerProcPeak {
			if v > m {
				m = v
			}
		}
		return m == res.MaxActivePeak
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(51))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDeterminism: identical configurations give identical
// results (the DES is deterministic; MUMPS itself is not, as the paper
// notes — determinism is what makes our tables reproducible).
func TestPropertyDeterminism(t *testing.T) {
	prop := func(nRaw uint8, edges []uint16, pRaw, stRaw uint8) bool {
		cfg := fuzzConfig(nRaw, edges, pRaw, stRaw)
		r1, err1 := Run(cfg)
		r2, err2 := Run(cfg)
		if err1 != nil || err2 != nil {
			return false
		}
		return r1.MaxActivePeak == r2.MaxActivePeak &&
			r1.Makespan == r2.Makespan &&
			r1.Messages == r2.Messages &&
			r1.Bytes == r2.Bytes &&
			r1.SlaveSelections == r2.SlaveSelections &&
			r1.Alg2Deviations == r2.Alg2Deviations
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(52))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySingleProcMatchesSequentialPeak: on one processor with no
// type-2/3 parallelism, the simulated peak equals the analytic
// sequential peak of the (Liu-ordered) tree.
func TestPropertySingleProcMatchesSequentialPeak(t *testing.T) {
	prop := func(nRaw uint8, edges []uint16) bool {
		cfg := fuzzConfig(nRaw, edges, 0, 0) // pRaw=0 -> P=1
		peaks := assembly.SequentialPeaks(cfg.Tree)
		want := assembly.TreePeak(peaks, cfg.Tree)
		res, err := Run(cfg)
		if err != nil {
			return false
		}
		return res.MaxActivePeak == want
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(53))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLatencyNeverLosesWork: even under extreme latency or tiny
// bandwidth the simulation completes all nodes (messages are delayed,
// never dropped).
func TestPropertyLatencyNeverLosesWork(t *testing.T) {
	prop := func(nRaw uint8, edges []uint16, latRaw uint16) bool {
		cfg := fuzzConfig(nRaw, edges, 3, 0xF)
		cfg.Params.Comm.Latency = des.Time(latRaw) * 1_000_000 // up to ~65ms
		cfg.Params.Comm.Bandwidth = 1e6                        // 1 MB/s
		res, err := Run(cfg)
		if err != nil {
			t.Logf("run: %v", err)
			return false
		}
		return res.NodesDone == cfg.Tree.Len()
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(54))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
