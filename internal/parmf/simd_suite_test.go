package parmf_test

import (
	"math/rand"
	"testing"

	"repro/internal/assembly"
	"repro/internal/dense"
	"repro/internal/ooc"
	"repro/internal/order"
	"repro/internal/parmf"
	"repro/internal/seqmf"
	"repro/internal/workload"
)

// TestPropertySIMDSuite validates the SIMD kernel family the way the fast
// family is validated, over every small-suite problem: (a) residual within
// 10x of the default factorization, (b) deterministic — the parallel SIMD
// factors are bitwise identical to the sequential SIMD ones at every
// worker count with both within-front paths enabled (type-2 row split and
// the type-3 2D root grid; the fused FMA chains compute the same bits
// whatever the partition), and (c) the out-of-core runs — sequential and
// parallel — produce solves bitwise identical to the in-core SIMD solve.
// On amd64 this runs the AVX2/FMA assembly when the CPU has it; the
// portable fallback computing the same bits is pinned separately by
// dense.TestKernelSIMDPortableBitwise.
func TestPropertySIMDSuite(t *testing.T) {
	suite := workload.SmallSuite()
	for _, p := range suite {
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			a := problemMatrix(t, p)
			tree, pa := assembly.Analyze(a, assembly.DefaultOptions(order.ND))
			assembly.SortChildrenLiu(tree)

			rng := rand.New(rand.NewSource(99))
			b := make([]float64, a.N)
			for i := range b {
				b[i] = rng.NormFloat64()
			}

			def, err := seqmf.Factorize(pa, tree, seqmf.DefaultOptions())
			if err != nil {
				t.Fatalf("seqmf default: %v", err)
			}
			xDef, err := def.SolveOriginal(b)
			if err != nil {
				t.Fatal(err)
			}
			rDef := residual(a, xDef, b)

			sopt := seqmf.DefaultOptions()
			sopt.Kernel = dense.KernelSIMD
			simd, err := seqmf.Factorize(pa, tree, sopt)
			if err != nil {
				t.Fatalf("seqmf simd: %v", err)
			}
			if simd.Stats.Kernel != "simd" {
				t.Fatalf("kernel stat %q, want simd", simd.Stats.Kernel)
			}
			xSIMD, err := simd.SolveOriginal(b)
			if err != nil {
				t.Fatal(err)
			}
			if rSIMD := residual(a, xSIMD, b); rSIMD > 10*rDef+1e-13 {
				t.Errorf("simd residual %g vs default %g (over 10x)", rSIMD, rDef)
			}

			// With no subtree roots configured every node is an individual
			// task, so at >1 worker the fronts of at least FrontSplit rows
			// (spanning more than one row block) run the master/slave split
			// path, and qualifying root fronts run the 2D tile grid.
			const frontSplit = 128
			wantSplit, wantRoot2D := false, false
			for i := range tree.Nodes {
				nf := tree.Nodes[i].NFront()
				if nf >= frontSplit && nf > dense.DefaultBlockRows {
					wantSplit = true
					if tree.Nodes[i].Parent < 0 {
						wantRoot2D = true
					}
				}
			}
			for _, workers := range []int{1, 2, 8} {
				cfg := parmf.DefaultConfig(workers)
				cfg.Kernel = dense.KernelSIMD
				cfg.FrontSplit = frontSplit // exercise the split paths through the SIMD kernels
				if workers > 1 {
					cfg.RootGrid = 2 // force a real 2-row type-3 grid on qualifying roots
				}
				pf, err := parmf.Factorize(pa, tree, cfg)
				if err != nil {
					t.Fatalf("parmf simd %d workers: %v", workers, err)
				}
				compareFactors(t, tree, simd.Front(), pf.Front(), 0) // bitwise
				if pf.Stats.Kernel != "simd" {
					t.Errorf("%d workers: kernel stat %q", workers, pf.Stats.Kernel)
				}
				if workers > 1 && wantSplit && pf.Stats.SplitFronts+pf.Stats.Root2DFronts == 0 {
					t.Errorf("%d workers: split path did not run (want SplitFronts+Root2DFronts > 0)", workers)
				}
				if workers > 1 && wantRoot2D && pf.Stats.Root2DFronts == 0 {
					t.Errorf("%d workers: 2D root path did not run (want Root2DFronts > 0)", workers)
				}
				xp, err := pf.SolveOriginal(b)
				if err != nil {
					t.Fatalf("parmf simd solve %d workers: %v", workers, err)
				}
				assertBitsEqual(t, "parallel simd solve", xp, xSIMD)
			}

			// Out-of-core: the factors stream through a spill store and the
			// solve reads them back off disk — the spill format round-trips
			// float bits, so the SIMD solves stay bitwise identical.
			st, err := ooc.NewFileStore(ooc.Options{Dir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			oopt := seqmf.DefaultOptions()
			oopt.Kernel = dense.KernelSIMD
			oopt.Store = st
			of, err := seqmf.Factorize(pa, tree, oopt)
			if err != nil {
				t.Fatalf("seqmf simd ooc: %v", err)
			}
			xo, err := of.SolveOriginal(b)
			if err != nil {
				t.Fatal(err)
			}
			assertBitsEqual(t, "ooc simd solve", xo, xSIMD)

			pst, err := ooc.NewFileStore(ooc.Options{Dir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			defer pst.Close()
			cfg := parmf.DefaultConfig(2)
			cfg.Kernel = dense.KernelSIMD
			cfg.FrontSplit = frontSplit
			cfg.Store = pst
			opf, err := parmf.Factorize(pa, tree, cfg)
			if err != nil {
				t.Fatalf("parmf simd ooc: %v", err)
			}
			if opf.Stats.Kernel != "simd" {
				t.Errorf("ooc parallel kernel stat %q", opf.Stats.Kernel)
			}
			xop, err := opf.SolveOriginal(b)
			if err != nil {
				t.Fatal(err)
			}
			assertBitsEqual(t, "ooc parallel simd solve", xop, xSIMD)
		})
	}
}
