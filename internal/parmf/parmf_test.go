package parmf_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/assembly"
	"repro/internal/dense"
	"repro/internal/front"
	"repro/internal/order"
	"repro/internal/parmf"
	"repro/internal/seqmf"
	"repro/internal/sparse"
	"repro/internal/workload"
)

// problemMatrix generates a suite problem and gives pattern-only analogues
// (GUPTA3's AAᵀ) deterministic diagonally dominant values.
func problemMatrix(t *testing.T, p workload.Problem) *sparse.CSC {
	t.Helper()
	a := p.Matrix()
	if !a.HasValues() {
		if err := sparse.FillDominant(a, rand.New(rand.NewSource(7))); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

// compareFactors asserts the two factorizations hold the same pivots and
// the same L (and U) entries within tol on every front.
func compareFactors(t *testing.T, tree *assembly.Tree, a, b *front.Factors, tol float64) {
	t.Helper()
	for ni := range tree.Nodes {
		na, nb := a.Node(ni), b.Node(ni)
		if na.NPiv != nb.NPiv || len(na.Rows) != len(nb.Rows) {
			t.Fatalf("node %d: shape mismatch (npiv %d vs %d, rows %d vs %d)",
				ni, na.NPiv, nb.NPiv, len(na.Rows), len(nb.Rows))
		}
		for k, g := range na.Rows {
			if nb.Rows[k] != g {
				t.Fatalf("node %d: row %d is %d vs %d", ni, k, g, nb.Rows[k])
			}
		}
		for p, v := range na.L.A {
			if d := math.Abs(v - nb.L.A[p]); d > tol*(1+math.Abs(v)) {
				t.Fatalf("node %d: L entry %d differs: %g vs %g", ni, p, v, nb.L.A[p])
			}
		}
		if na.U != nil {
			for p, v := range na.U.A {
				if d := math.Abs(v - nb.U.A[p]); d > tol*(1+math.Abs(v)) {
					t.Fatalf("node %d: U entry %d differs: %g vs %g", ni, p, v, nb.U.A[p])
				}
			}
		}
	}
}

func residual(a *sparse.CSC, x, b []float64) float64 {
	ax := a.MulVec(x)
	var rn, bn float64
	for i := range b {
		d := ax[i] - b[i]
		rn += d * d
		bn += b[i] * b[i]
	}
	return math.Sqrt(rn / bn)
}

// TestCrossValidateSuite factors every Table-1 problem with the parallel
// executor at 1, 2 and 8 workers and checks the factors against seqmf
// within 1e-10 (static pivoting makes them deterministic), the unsymmetric
// LU path included. The 1-worker run must reproduce seqmf.Stats exactly.
func TestCrossValidateSuite(t *testing.T) {
	suite := workload.Suite()
	if testing.Short() {
		suite = workload.SmallSuite() // same 8 problems, test scale
	}
	for _, p := range suite {
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			a := problemMatrix(t, p)
			tree, pa := assembly.Analyze(a, assembly.DefaultOptions(order.ND))
			assembly.SortChildrenLiu(tree)
			sf, err := seqmf.Factorize(pa, tree, seqmf.DefaultOptions())
			if err != nil {
				t.Fatalf("seqmf: %v", err)
			}
			var pf *parmf.Factors
			for _, workers := range []int{1, 2, 8} {
				var err error
				pf, err = parmf.Factorize(pa, tree, parmf.DefaultConfig(workers))
				if err != nil {
					t.Fatalf("parmf %d workers: %v", workers, err)
				}
				compareFactors(t, tree, sf.Front(), pf.Front(), 1e-10)
				if pf.Stats.FactorEntries != sf.Stats.FactorEntries {
					t.Errorf("%d workers: factor entries %d vs seq %d",
						workers, pf.Stats.FactorEntries, sf.Stats.FactorEntries)
				}
				if workers == 1 {
					if got, want := pf.Stats.Seq(), sf.Stats; got != want {
						t.Errorf("1-worker stats %+v != seq %+v", got, want)
					}
					if pf.Stats.Deviations != 0 || pf.Stats.Forced != 0 {
						t.Errorf("1-worker run deviated: %+v", pf.Stats)
					}
				}
			}

			// The 8-worker factors must solve the system too.
			rng := rand.New(rand.NewSource(99))
			b := make([]float64, a.N)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			x, err := pf.SolveOriginal(b)
			if err != nil {
				t.Fatal(err)
			}
			if r := residual(a, x, b); r > 1e-7 {
				t.Errorf("residual %g", r)
			}
		})
	}
}

// TestDepthFirstPolicy cross-validates the plain LIFO policy as well.
func TestDepthFirstPolicy(t *testing.T) {
	a := sparse.Grid3D(8, 8, 8)
	tree, pa := assembly.Analyze(a, assembly.DefaultOptions(order.ND))
	assembly.SortChildrenLiu(tree)
	sf, err := seqmf.Factorize(pa, tree, seqmf.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := parmf.DefaultConfig(4)
	cfg.Policy = parmf.DepthFirst
	pf, err := parmf.Factorize(pa, tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	compareFactors(t, tree, sf.Front(), pf.Front(), 1e-10)
}

// TestSubtreeShortcut runs with leaf-subtree information (as core wires it
// from the static mapping) and checks correctness is unaffected.
func TestSubtreeShortcut(t *testing.T) {
	a := sparse.Grid3D(7, 7, 7)
	tree, pa := assembly.Analyze(a, assembly.DefaultOptions(order.ND))
	assembly.SortChildrenLiu(tree)
	mp := assembly.Map(tree, assembly.DefaultMapOptions(4))
	sf, err := seqmf.Factorize(pa, tree, seqmf.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := parmf.DefaultConfig(4)
	cfg.InSubtree = func(n int) bool { return mp.Subtree[n] >= 0 }
	pf, err := parmf.Factorize(pa, tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	compareFactors(t, tree, sf.Front(), pf.Front(), 1e-10)
}

// TestSplitTree checks the parallel executor on a statically split tree
// (chain links tile the same pivots; dependencies serialize each chain).
func TestSplitTree(t *testing.T) {
	a := sparse.Grid2D(14, 14)
	tree, pa := assembly.Analyze(a, assembly.DefaultOptions(order.ND))
	nt, count := assembly.Split(tree, assembly.SplitOptions{MaxMasterEntries: 300, MinPiv: 3})
	if count == 0 {
		t.Skip("nothing split at this size")
	}
	assembly.SortChildrenLiu(nt)
	sf, err := seqmf.Factorize(pa, nt, seqmf.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pf, err := parmf.Factorize(pa, nt, parmf.DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	compareFactors(t, nt, sf.Front(), pf.Front(), 1e-10)
}

// TestErrors covers the input-validation paths.
func TestErrors(t *testing.T) {
	a := sparse.Grid2D(4, 4)
	tree, pa := assembly.Analyze(a, assembly.DefaultOptions(order.AMD))
	pat := pa.Clone()
	pat.Val = nil
	if _, err := parmf.Factorize(pat, tree, parmf.DefaultConfig(2)); err == nil {
		t.Error("pattern-only matrix accepted")
	}
	small, _ := assembly.Analyze(sparse.Grid2D(2, 2), assembly.DefaultOptions(order.AMD))
	if _, err := parmf.Factorize(pa, small, parmf.DefaultConfig(2)); err == nil {
		t.Error("mismatched tree accepted")
	}
	f, err := parmf.Factorize(pa, tree, parmf.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve(make([]float64, 3)); err == nil {
		t.Error("short rhs accepted")
	}
	if _, err := f.SolveOriginal(make([]float64, 3)); err == nil {
		t.Error("short rhs accepted by SolveOriginal")
	}
}

// TestSmallPivotPropagates makes sure a numeric failure inside a worker is
// reported (and does not deadlock the pool).
func TestSmallPivotPropagates(t *testing.T) {
	// An indefinite symmetric matrix fails partial Cholesky.
	b := sparse.NewBuilder(2, sparse.Symmetric)
	b.Add(0, 0, -1)
	b.Add(1, 0, 1)
	b.Add(1, 1, -1)
	a := b.Build()
	tree, pa := assembly.Analyze(a, assembly.DefaultOptions(order.Natural))
	if _, err := parmf.Factorize(pa, tree, parmf.DefaultConfig(4)); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
}

// TestFastKernelsSuite validates the opt-in fast kernel family the way it
// is specified: not bitwise against the default mode, but (a) residual
// within 10x of the default factorization on every suite problem, and
// (b) deterministic — the parallel fast factors are bitwise identical to
// the sequential fast ones at every worker count, with the within-front
// split path enabled, because the fast kernels compute the same bits
// whatever the row partition.
func TestFastKernelsSuite(t *testing.T) {
	suite := workload.SmallSuite()
	for _, p := range suite {
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			a := problemMatrix(t, p)
			tree, pa := assembly.Analyze(a, assembly.DefaultOptions(order.ND))
			assembly.SortChildrenLiu(tree)

			rng := rand.New(rand.NewSource(99))
			b := make([]float64, a.N)
			for i := range b {
				b[i] = rng.NormFloat64()
			}

			def, err := seqmf.Factorize(pa, tree, seqmf.DefaultOptions())
			if err != nil {
				t.Fatalf("seqmf default: %v", err)
			}
			xDef, err := def.SolveOriginal(b)
			if err != nil {
				t.Fatal(err)
			}
			rDef := residual(a, xDef, b)

			fopt := seqmf.DefaultOptions()
			fopt.FastKernels = true
			fast, err := seqmf.Factorize(pa, tree, fopt)
			if err != nil {
				t.Fatalf("seqmf fast: %v", err)
			}
			if fast.Stats.Kernel != "fast" || def.Stats.Kernel != "default" {
				t.Fatalf("kernel stats %q / %q", fast.Stats.Kernel, def.Stats.Kernel)
			}
			xFast, err := fast.SolveOriginal(b)
			if err != nil {
				t.Fatal(err)
			}
			if rFast := residual(a, xFast, b); rFast > 10*rDef+1e-13 {
				t.Errorf("fast residual %g vs default %g (over 10x)", rFast, rDef)
			}

			// With no subtree roots configured, every node is an individual
			// task, so at >1 worker exactly the fronts of at least
			// FrontSplit rows (spanning more than one row block) must run
			// through the master/slave split path.
			const frontSplit = 128
			wantSplit := false
			for i := range tree.Nodes {
				if nf := tree.Nodes[i].NFront(); nf >= frontSplit && nf > dense.DefaultBlockRows {
					wantSplit = true
					break
				}
			}
			for _, workers := range []int{1, 2, 8} {
				cfg := parmf.DefaultConfig(workers)
				cfg.FastKernels = true
				cfg.FrontSplit = frontSplit // exercise the split path through the fast kernels
				pf, err := parmf.Factorize(pa, tree, cfg)
				if err != nil {
					t.Fatalf("parmf fast %d workers: %v", workers, err)
				}
				compareFactors(t, tree, fast.Front(), pf.Front(), 0) // bitwise
				if pf.Stats.Kernel != "fast" {
					t.Errorf("%d workers: kernel stat %q", workers, pf.Stats.Kernel)
				}
				if workers > 1 && wantSplit && pf.Stats.SplitFronts == 0 {
					t.Errorf("%d workers: split path did not run (want SplitFronts > 0)", workers)
				}
			}
		})
	}
}
