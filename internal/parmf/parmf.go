// Package parmf is the shared-memory parallel numeric multifrontal
// executor: a pool of worker goroutines walks the assembly tree, assembling
// and partially factoring independent fronts concurrently. It is the
// real-thread counterpart of the message-passing simulator internal/parsim
// — same tree, same memory model (factors area / per-worker CB stack /
// active fronts, all in model entries), but wall-clock time and real
// numerics via the kernels shared with internal/seqmf (internal/front).
//
// Tasks follow the paper's two-layer structure: a leaf subtree of the
// static mapping is one task, processed entirely by one worker in postorder
// (the Geist-Ng layer L0 amortizes scheduling over the cheap bottom of the
// tree), while every node above the subtree layer is an individual task.
// Ready tasks live in one shared pool (sched.Pool, LIFO so the default
// traversal is depth-first), and a worker looking for work applies the
// memory-aware policy of Algorithm 2 (sched.SelectMemoryAware) against its
// *own* CB-stack occupation — it prefers the topmost task that keeps its
// active memory under the sequential peak bound, and otherwise falls back
// off-top. Shared memory affords one luxury the message-passing setting
// lacks: when no pool task fits and other workers are still busy, the
// worker waits for the state to change instead of blowing the bound. An
// over-bound (peak-raising) activation happens — and is counted in
// Stats.Forced — only for subtree work, which Algorithm 2 takes
// unconditionally, or when the whole worker fleet has gone idle.
//
// Because pivoting is static and each front is assembled by exactly one
// worker in deterministic child order, the factors are bitwise identical to
// seqmf's regardless of worker count or interleaving; scheduling only
// changes memory shape and wall-clock time.
//
// Factor blocks are owned by a front.Store: each worker pushes its blocks
// into the store the moment they are extracted (Config.Store; the default
// keeps them in memory). With an out-of-core store (internal/ooc) a
// block's memory is released as soon as the background writer has spilled
// it, so the measured resident peak (Stats.ResidentPeak, tracked by a
// meter shared between the workers and the store) approaches the
// stack-only cost the paper's schedules minimize.
package parmf

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/assembly"
	"repro/internal/dense"
	"repro/internal/faults"
	"repro/internal/front"
	"repro/internal/memory"
	"repro/internal/nodepar"
	"repro/internal/sched"
	"repro/internal/seqmf"
	"repro/internal/sparse"
	"repro/internal/trace"
)

// Policy selects how a worker picks its next task from the shared pool.
type Policy int

const (
	// MemoryAware runs Algorithm 2 per worker: take the topmost ready task
	// that keeps this worker's stack + task peak under the bound, fall
	// back off-top, wait if nothing fits while others are busy.
	MemoryAware Policy = iota
	// DepthFirst always pops the pool top (the MUMPS default policy).
	DepthFirst
)

func (p Policy) String() string {
	switch p {
	case MemoryAware:
		return "memory"
	case DepthFirst:
		return "depthfirst"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// SlavePolicy selects how the master of a split front picks its preferred
// slave workers (the paper's dynamic slave selection, Section 3 vs 4).
type SlavePolicy int

const (
	// SlavesMemory is Algorithm 1: level the workers' instantaneous
	// active memory without raising the observed peak.
	SlavesMemory SlavePolicy = iota
	// SlavesWorkload is the MUMPS baseline: prefer workers less loaded
	// than the master, balancing elimination flops.
	SlavesWorkload
)

func (p SlavePolicy) String() string {
	switch p {
	case SlavesMemory:
		return "memory"
	case SlavesWorkload:
		return "workload"
	}
	return fmt.Sprintf("SlavePolicy(%d)", int(p))
}

// Config drives the parallel factorization.
type Config struct {
	// Workers is the worker-goroutine count (<1 means 1).
	Workers int
	// Policy is the task-selection policy.
	Policy Policy
	// PivotTol is the minimum pivot magnitude for LU (0 = default 1e-12).
	PivotTol float64
	// PeakBound is the per-worker active-memory budget (model entries) the
	// memory-aware policy schedules under. 0 uses the sequential stack
	// peak of the tree with its current child order — the tightest bound a
	// single worker can always meet.
	PeakBound int64
	// SubtreeRoots lists roots of disjoint leaf subtrees (typically the
	// static mapping's Geist-Ng layer); each subtree runs as a single task
	// on one worker. Nodes outside the subtrees are individual tasks.
	SubtreeRoots []int
	// InSubtree optionally marks extra nodes Algorithm 2 should treat as
	// subtree work (taken unconditionally, step 1); SubtreeRoots members
	// are always treated so.
	InSubtree func(node int) bool
	// Store receives each front's factor block the moment it is
	// extracted; nil keeps factors in memory (front.Factors).
	Store front.Store
	// Meter, when non-nil, replaces the internal resident-memory meter —
	// pass one to share accounting with an enclosing measurement.
	Meter *memory.Meter
	// FrontSplit, when positive, factors fronts of at least this order
	// (outside leaf subtrees, at more than one worker) through the
	// within-front master/slave path (internal/nodepar): the paper's
	// type-2 1D row blocking as real shared-memory tasks. <= 0 disables;
	// core.FactorizeParallel derives it from the mapping's type-2
	// classification threshold. Splitting never changes the factors: the
	// row partition is a pure function of the front and BlockRows, and
	// the blocked kernels are bitwise identical to the element-wise ones.
	FrontSplit int
	// BlockRows is the panel width and row-block height of the blocked
	// dense kernels and the within-front 1D partition. 0 uses
	// dense.DefaultBlockRows; a negative value selects the element-wise
	// reference kernels (which also disables FrontSplit — the split path
	// requires the blocked kernels).
	BlockRows int
	// SlavePolicy picks the slave-selection heuristic for split fronts.
	SlavePolicy SlavePolicy
	// RootGrid controls the 2D (type-3) tile decomposition of root
	// fronts: a split root front factors over a pr x pc worker grid with
	// block-cyclic tile ownership instead of the 1D row blocking, lifting
	// the root's serial-master and task-count caps. 0 sizes the grid
	// automatically from the worker count (pr = floor(sqrt(W)), pc =
	// ceil(W/pr)); > 0 forces that many grid rows (library callers may
	// pass more than W, which AutoGrid clamps; the CLIs' -root-grid
	// rejects that instead); negative disables the 2D path (roots use
	// the 1D partition). The
	// factors never depend on it: tile boundaries are a pure function of
	// the front and BlockRows, and the grid only stamps preferred owners.
	RootGrid int
	// gridPR/gridPC is the resolved root grid (0 = 2D path disabled).
	gridPR, gridPC int
	// Tracer, when non-nil, records task/front/solve spans and memory
	// counter samples from this run (see internal/trace). nil disables
	// tracing at zero cost: the workers pay a nil check per event and
	// allocate nothing.
	Tracer *trace.Tracer
	// Kernel selects the dense kernel family for every front, split or
	// not (dense.KernelDefault, KernelFast, KernelSIMD, or KernelAuto,
	// which resolves to SIMD when the vector path is available and fast
	// otherwise). The non-default families trade the bitwise guarantee
	// for speed, validated by residual, and stay deterministic for a
	// fixed BlockRows — they compute the same bits whatever the row
	// partition, tile grid or worker count, they just differ from the
	// element-wise reference.
	Kernel dense.Kernel
	// FastKernels is the deprecated boolean form of Kernel=KernelFast; it
	// is honored only when Kernel is left at the default.
	FastKernels bool
	// Faults, when non-nil, arms deterministic fault injection at the
	// executor's task point (see internal/faults). nil is a zero-cost
	// no-op, like Tracer.
	Faults *faults.Injector
}

// DefaultConfig returns the standard settings for the given worker count.
func DefaultConfig(workers int) Config {
	return Config{Workers: workers, Policy: MemoryAware, PivotTol: 1e-12}
}

// Stats records memory and work, in the units of the assembly cost model.
// The embedded ExecStats matches seqmf.Stats (see Seq) so a one-worker run
// can be compared field-by-field with the sequential executor; PeakStack
// is the max over workers of the (CB stack + active front) peak, and
// ResidentPeak is the whole-process resident peak (all workers' fronts
// and CBs plus store-owned factor blocks, under one shared meter).
type Stats struct {
	memory.ExecStats

	Workers          int
	Tasks            int     // scheduled tasks (subtrees + upper nodes)
	PeakBound        int64   // bound the memory-aware policy scheduled under
	WorkerPeaks      []int64 // per-worker (stack + front) peaks
	WorkerStackPeaks []int64 // per-worker CB-stack-only peaks
	Deviations       int64   // off-top pool selections (Algorithm 2 deviations)
	Waits            int64   // idle episodes where nothing fit the bound
	Forced           int64   // peak-raising activations over the worker's effective bound

	SplitFronts  int   // fronts factored through the within-front master/slave path
	SlaveTasks   int64 // slave tile tasks executed (all panels and phases)
	SlaveSteals  int64 // slave tile tasks run by a worker other than the preferred one
	Root2DFronts int   // root fronts factored through the 2D (type-3) tile path
	RootFrontNs  int64 // max wall-clock ns spent factoring one split root front
}

// Seq returns the seqmf-comparable subset of the stats.
func (s Stats) Seq() seqmf.Stats { return s.ExecStats }

// Factors holds the parallel numeric factorization.
type Factors struct {
	Tree  *assembly.Tree
	Kind  sparse.Type
	N     int
	Stats Stats

	store  front.Store
	fs     *front.Factors   // non-nil when store is the in-memory one
	kern   dense.Kernel     // kernel family the factorization ran with
	tracer *trace.Tracer    // carried into solvers; nil when untraced
	faults *faults.Injector // carried into solvers; nil when unarmed

	solveOnce sync.Once
	solver    *TreeSolver
}

// Front exposes the in-memory per-node factor container (cross-validation
// against seqmf compares node factors through it); nil when the
// factorization ran into an external store.
func (f *Factors) Front() *front.Factors { return f.fs }

// Store returns the factor store the blocks live in.
func (f *Factors) Store() front.Store { return f.store }

// Close releases the factor store (for a file-backed store: the spill
// file). The factors are unusable afterwards.
func (f *Factors) Close() error {
	if f.store == nil {
		return nil
	}
	return f.store.Close()
}

// Solver returns a reusable tree-parallel solver over the factors with
// the given worker count (< 1 uses the factorization's worker count),
// running the kernel family the factorization used. The result of its
// solves does not depend on the worker count (see TreeSolver).
func (f *Factors) Solver(workers int) *TreeSolver {
	if workers < 1 {
		workers = f.Stats.Workers
	}
	ts := NewTreeSolver(f.store, f.Tree, f.Kind, workers, f.kern)
	ts.SetTracer(f.tracer)
	ts.SetFaults(f.faults)
	return ts
}

// treeSolver is the lazily built default solver (factorization worker
// count), shared by the Solve* methods so repeated solves reuse the
// dependency graphs and walk orders.
func (f *Factors) treeSolver() *TreeSolver {
	f.solveOnce.Do(func() { f.solver = f.Solver(0) })
	return f.solver
}

// Solve solves A x = b in the permuted index space. b is not modified.
func (f *Factors) Solve(b []float64) ([]float64, error) {
	if len(b) != f.N {
		return nil, fmt.Errorf("parmf: rhs length %d, want %d", len(b), f.N)
	}
	return f.treeSolver().SolveMulti(b, 1)
}

// SolveMulti solves nrhs systems at once (b is n x nrhs row-major),
// tree-parallel with the factorization's worker count: one forward and
// one backward pass over the factor store however many right-hand sides
// ride along, each column bitwise identical to a single-RHS Solve.
func (f *Factors) SolveMulti(b []float64, nrhs int) ([]float64, error) {
	return f.treeSolver().SolveMulti(b, nrhs)
}

// SolveOriginal solves for a right-hand side in the original ordering.
func (f *Factors) SolveOriginal(b []float64) ([]float64, error) {
	if len(b) != f.N {
		return nil, fmt.Errorf("parmf: rhs length %d, want %d", len(b), f.N)
	}
	return f.treeSolver().SolveOriginalMulti(b, 1)
}

// SolveOriginalMulti is SolveMulti for right-hand sides in the original
// (pre-permutation) ordering.
func (f *Factors) SolveOriginalMulti(b []float64, nrhs int) ([]float64, error) {
	return f.treeSolver().SolveOriginalMulti(b, nrhs)
}

// state is the scheduling state shared by all workers, guarded by mu.
// Contribution blocks (cbs, cbOwner) are written by the worker that factors
// a node and read by the worker that assembles its parent; the completion
// under mu that makes the parent's task ready establishes the
// happens-before edge. The same mutex orders the within-front jobs: a
// slave task is claimed and finished under mu, and a job's phase barrier
// (all tasks finished before the next StartPhase) is what lets its kernels
// read rows other workers wrote.
type state struct {
	mu   sync.Mutex
	cond *sync.Cond

	pool      sched.Pool
	unfin     []int // per upper node: unfinished child tasks
	remaining int   // tasks not yet completed
	inFlight  int   // tasks being processed right now
	err       error

	cbs     []*dense.Matrix
	cbOwner []int

	jobs  []*nodepar.Job // split fronts with claimable row-block tasks
	loads []int64        // per worker: elimination flops claimed and not yet finished

	stats Stats
}

// plan is the immutable task structure: which nodes form which tasks.
type plan struct {
	taskOf    []int   // node -> subtree-task root, or -1 for an individual task
	taskNodes [][]int // subtree root -> member nodes in postorder (nil otherwise)
	peaks     []int64 // sequential subtree peaks (task memory cost for subtrees)
	flops     []int64 // per task root/node: elimination flops (workload accounting)
}

// Factorize factors the permuted matrix pa over its assembly tree with a
// pool of cfg.Workers goroutines. pa must carry numerical values.
func Factorize(pa *sparse.CSC, tree *assembly.Tree, cfg Config) (*Factors, error) {
	return FactorizeCtx(context.Background(), pa, tree, cfg)
}

// FactorizeCtx is Factorize under a context. Cancellation drains the
// pool deterministically: workers check the shared error at every
// task-claim boundary, finish the task they are on, and exit; the
// returned error names how many tasks were left unfinished and wraps the
// cancellation cause. No goroutines leak — the workers, the context
// watcher and a bound store's background goroutines all stop. A
// Background context costs nothing (no watcher is spawned).
func FactorizeCtx(ctx context.Context, pa *sparse.CSC, tree *assembly.Tree, cfg Config) (*Factors, error) {
	sh, err := front.NewShared(pa, tree)
	if err != nil {
		return nil, err // already carries the front: context
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.PivotTol == 0 {
		cfg.PivotTol = 1e-12
	}
	if cfg.BlockRows == 0 {
		cfg.BlockRows = dense.DefaultBlockRows
	}
	if cfg.BlockRows < 0 {
		cfg.BlockRows = 0 // element-wise kernels
	}
	if cfg.Workers == 1 || cfg.BlockRows == 0 {
		// One worker has no slaves to fan out to, and the split path runs
		// on the blocked kernels; either way the factors are the same bits.
		cfg.FrontSplit = 0
	}
	if cfg.RootGrid >= 0 {
		cfg.gridPR, cfg.gridPC = nodepar.AutoGrid(cfg.Workers, cfg.RootGrid)
	}
	peaks := assembly.SequentialPeaks(tree)
	if cfg.PeakBound <= 0 {
		cfg.PeakBound = assembly.TreePeak(peaks, tree)
	}
	if cfg.InSubtree == nil {
		cfg.InSubtree = func(int) bool { return false }
	}

	pl, err := buildPlan(tree, cfg.SubtreeRoots, peaks)
	if err != nil {
		return nil, err
	}

	f := &Factors{
		Tree:   tree,
		Kind:   pa.Kind,
		N:      pa.N,
		faults: cfg.Faults,
	}
	var meter *memory.Meter
	f.store, f.fs, meter = front.ResolveStore(cfg.Store, tree, pa.Kind, cfg.Meter)
	front.BindStoreContext(ctx, f.store)
	st := &state{
		unfin:   make([]int, tree.Len()),
		cbs:     make([]*dense.Matrix, tree.Len()),
		cbOwner: make([]int, tree.Len()),
		loads:   make([]int64, cfg.Workers),
	}
	kern := cfg.Kernel
	if kern == dense.KernelDefault && cfg.FastKernels {
		kern = dense.KernelFast
	}
	kern = kern.Resolve() // auto picks simd or fast here, so stats name the family that ran
	f.kern = kern
	st.cond = sync.NewCond(&st.mu)
	st.stats.Workers = cfg.Workers
	st.stats.PeakBound = cfg.PeakBound
	st.stats.Kernel = kern.String()
	for i := range tree.Nodes {
		st.unfin[i] = len(tree.Nodes[i].Children)
	}
	// Seed the pool with the initially ready tasks — every subtree task
	// (self-contained) and every individual node without children — in
	// reverse postorder of their first node, so the LIFO top is the
	// earliest task in postorder and a single depth-first worker replays
	// the sequential traversal exactly.
	post := tree.Postorder()
	for i := len(post) - 1; i >= 0; i-- {
		ni := post[i]
		if r := pl.taskOf[ni]; r >= 0 {
			// A subtree task's seeding position is its *first* postorder
			// node, so the LIFO pop order matches the sequential schedule.
			if pl.taskNodes[r][0] == ni {
				st.pool.Push(r)
			}
		} else if st.unfin[ni] == 0 {
			st.pool.Push(ni)
		}
	}
	for i := range tree.Nodes {
		if pl.taskOf[i] == i || pl.taskOf[i] < 0 {
			st.remaining++
		}
	}
	st.stats.Tasks = st.remaining

	tracker := memory.NewSafeTracker(cfg.Workers)
	if cfg.Tracer != nil {
		// Observers run under the instruments' own locks, so the recorded
		// counter samples are the exact gauge histories: the trace's
		// "resident" maximum equals Stats.ResidentPeak bit for bit.
		f.tracer = cfg.Tracer
		cfg.Tracer.EnsureWorkers(cfg.Workers)
		meter.Observe(cfg.Tracer.MeterObserver())
		tracker.Observe(cfg.Tracer.TrackerObserver())
		// Arm the progress ledger with the analysis-time denominators so a
		// live /metrics or /progress scrape reports completion and an ETA.
		cfg.Tracer.SetTotals(int64(tree.Len()), assembly.TotalFlops(tree))
	}
	if ctx.Done() != nil {
		// The watcher is the only way a cond.Wait-blocked worker can
		// observe cancellation: it poisons the shared error and wakes
		// everyone. It exits with the pool (stop closes below) so a
		// never-cancelled run leaks nothing.
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-ctx.Done():
				st.mu.Lock()
				if st.err == nil {
					st.err = fmt.Errorf("parmf: cancelled: %w", context.Cause(ctx))
				}
				st.cond.Broadcast()
				st.mu.Unlock()
			case <-stop:
			}
		}()
	}
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			worker{id: id, cfg: cfg, sh: sh, st: st, pl: pl, tracker: tracker,
				out: f.store, meter: meter, asm: front.NewAssembler(sh),
				arena: front.NewArena(), kern: kern, tr: cfg.Tracer}.run()
		}(w)
	}
	wg.Wait()

	if st.err != nil {
		st.stats.CancelledTasks = int64(st.remaining)
		return nil, fmt.Errorf("parmf: pool drained with %d of %d tasks unfinished: %w",
			st.remaining, st.stats.Tasks, st.err)
	}
	if err := f.store.Flush(); err != nil {
		return nil, fmt.Errorf("parmf: flush factor store: %w", err)
	}
	f.Stats = st.stats
	f.Stats.Retries, f.Stats.DegradedBlocks = front.StoreFaultCounters(f.store)
	f.Stats.ResidentPeak = meter.Peak()
	for w := 0; w < cfg.Workers; w++ {
		f.Stats.WorkerPeaks = append(f.Stats.WorkerPeaks, tracker.ActivePeak(w))
		f.Stats.WorkerStackPeaks = append(f.Stats.WorkerStackPeaks, tracker.StackPeak(w))
		f.Stats.FinalStack += tracker.Stack(w)
		if p := tracker.ActivePeak(w); p > f.Stats.PeakStack {
			f.Stats.PeakStack = p
		}
	}
	return f, nil
}

// buildPlan derives the task structure from the subtree roots: each root's
// descendant set becomes one task with its nodes in global postorder.
func buildPlan(tree *assembly.Tree, roots []int, peaks []int64) (*plan, error) {
	pl := &plan{
		taskOf:    make([]int, tree.Len()),
		taskNodes: make([][]int, tree.Len()),
		peaks:     peaks,
	}
	for i := range pl.taskOf {
		pl.taskOf[i] = -1
	}
	for _, r := range roots {
		if r < 0 || r >= tree.Len() {
			return nil, fmt.Errorf("parmf: subtree root %d out of range", r)
		}
		stack := []int{r}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if pl.taskOf[n] >= 0 {
				return nil, fmt.Errorf("parmf: node %d in two subtree tasks (%d and %d)",
					n, pl.taskOf[n], r)
			}
			pl.taskOf[n] = r
			stack = append(stack, tree.Nodes[n].Children...)
		}
	}
	// Member lists in global postorder (a complete subtree is a contiguous
	// postorder segment, so per-task order == global order restriction).
	for _, ni := range tree.Postorder() {
		if r := pl.taskOf[ni]; r >= 0 {
			pl.taskNodes[r] = append(pl.taskNodes[r], ni)
		}
	}
	// Task workloads: a node's elimination flops, summed over the members
	// for a subtree task (inputs to the workload-based slave selection).
	pl.flops = make([]int64, tree.Len())
	for i := range tree.Nodes {
		pl.flops[i] = assembly.EliminationFlops(&tree.Nodes[i], tree.Kind)
	}
	for _, r := range roots {
		var s int64
		for _, ni := range pl.taskNodes[r] {
			s += assembly.EliminationFlops(&tree.Nodes[ni], tree.Kind)
		}
		pl.flops[r] = s
	}
	return pl, nil
}

// taskCost returns the memory Algorithm 2 charges a task with: the whole
// sequential subtree peak for a subtree task, the front size for a node.
func (pl *plan) taskCost(task int, tree *assembly.Tree) int64 {
	if pl.taskOf[task] == task {
		return pl.peaks[task]
	}
	return assembly.FrontEntries(&tree.Nodes[task], tree.Kind)
}

// taskFlops returns the elimination flops a task adds to its worker's
// workload while claimed.
func (pl *plan) taskFlops(task int) int64 { return pl.flops[task] }

type worker struct {
	id      int
	cfg     Config
	sh      *front.Shared
	st      *state
	pl      *plan
	tracker *memory.SafeTracker
	out     front.Store
	meter   *memory.Meter
	asm     *front.Assembler
	arena   *front.Arena // front/CB slab recycler; single-threaded, see front.Arena
	kern    dense.Kernel
	tr      *trace.Tracer // nil when untraced (every method no-ops)
}

// taskResult carries a finished task's bookkeeping back under the lock.
type taskResult struct {
	task            int
	err             error
	fronts          int
	maxFront        int
	factorEntries   int64
	assemblyOps     int64
	consumedForeign bool // popped a CB from another worker's stack
}

func (w worker) run() {
	st := w.st
	var done *taskResult
	for {
		st.mu.Lock()
		if done != nil {
			w.completeLocked(done)
			done = nil
		}
		var task int
		waited := false
		for {
			if st.err != nil || st.remaining == 0 {
				st.mu.Unlock()
				return
			}
			// Row-block tasks of split fronts come first: they are small,
			// they unblock a waiting master, and the paper gives dynamic
			// slave tasks priority over new node activations.
			if job, i := w.claimBlockLocked(); job != nil {
				w.runBlockLocked(job, i)
				continue
			}
			t, ok := w.selectLocked()
			if ok {
				task = t
				break
			}
			// One idle episode counts once, however many broadcasts wake
			// and re-block the worker before work appears.
			if !waited {
				st.stats.Waits++
				waited = true
			}
			st.cond.Wait()
		}
		st.loads[w.id] += w.pl.taskFlops(task)
		st.inFlight++
		st.mu.Unlock()

		w.tr.Instant(w.id, trace.EvClaim, task, 0)
		done = w.processTask(task)
	}
}

// claimBlockLocked looks for a claimable row-block task across the active
// split-front jobs, preferring blocks the slave selection assigned to this
// worker before stealing any pending one.
func (w worker) claimBlockLocked() (*nodepar.Job, int) {
	for _, j := range w.st.jobs {
		if i := j.ClaimPreferred(w.id); i >= 0 {
			return j, i
		}
	}
	for _, j := range w.st.jobs {
		if i := j.Claim(w.id); i >= 0 {
			return j, i
		}
	}
	return nil, -1
}

// runBlockLocked executes one claimed row-block task: it releases the
// scheduling lock, charges the block's share of the front surface to this
// worker's tracker for the duration of the kernel (the paper's per-slave
// memory), runs it, and reacquires the lock to report completion — waking
// everyone when the phase barrier falls. Called and returns with st.mu
// held.
func (w worker) runBlockLocked(job *nodepar.Job, i int) {
	st := w.st
	entries := job.TaskEntries(i)
	flops := job.TaskFlops(i)
	st.stats.SlaveTasks++
	if p := job.Pref(i); p >= 0 && p != w.id {
		st.stats.SlaveSteals++
	}
	st.loads[w.id] += flops
	st.mu.Unlock()

	// No meter delta: the rows are already resident under the front the
	// master allocated; the tracker charge is the per-worker model share.
	// The kernel runs unlocked with panic containment: a panicking tile
	// must still Finish, or the job's phase barrier never falls and the
	// master hangs.
	w.tr.Begin(w.id, trace.SpanTile, job.Node)
	w.tracker.AllocFront(w.id, entries)
	perr := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("parmf: worker %d: panic in row-block task %d of front %d: %v",
					w.id, i, job.Node, p)
			}
		}()
		job.Run(i)
		return nil
	}()
	w.tracker.FreeFront(w.id, entries)
	w.tr.End(w.id, trace.SpanTile, job.Node)

	st.mu.Lock()
	st.loads[w.id] -= flops
	if perr != nil && st.err == nil {
		st.err = perr
	}
	if job.Finish(i) || perr != nil {
		st.cond.Broadcast()
	}
}

// completeLocked folds a finished task back into the shared state and wakes
// waiters when the completion could unblock them: a new ready task, freed
// stack headroom on another worker, the pool draining, an error, or the
// worker fleet going idle (the forced-activation path needs a wake-up).
func (w worker) completeLocked(r *taskResult) {
	st := w.st
	st.inFlight--
	st.loads[w.id] -= w.pl.taskFlops(r.task)
	pushed := false
	if r.err != nil {
		if st.err == nil {
			st.err = r.err
		}
	} else {
		st.remaining--
		st.stats.Fronts += r.fronts
		if r.maxFront > st.stats.MaxFront {
			st.stats.MaxFront = r.maxFront
		}
		st.stats.FactorEntries += r.factorEntries
		st.stats.AssemblyOps += r.assemblyOps
		if p := w.sh.Tree.Nodes[r.task].Parent; p >= 0 {
			st.unfin[p]--
			if st.unfin[p] == 0 {
				st.pool.Push(p)
				pushed = true
			}
		}
	}
	if pushed || r.consumedForeign || st.err != nil || st.remaining == 0 || st.inFlight == 0 {
		st.cond.Broadcast()
	}
}

// selectLocked picks the next task under st.mu, returning (task, true) or
// (0, false) when the worker should wait. The memory-aware policy runs
// Algorithm 2 with this worker's stack as the current occupation; when the
// chosen task would exceed the bound it is only activated if it is subtree
// work (Algorithm 2 takes those unconditionally) or no other work is in
// flight anywhere (otherwise waiting is safe and cheaper).
func (w worker) selectLocked() (int, bool) {
	st := w.st
	if st.pool.Empty() {
		return 0, false
	}
	if w.cfg.Policy == DepthFirst {
		return st.pool.PopTop(), true
	}
	tree := w.sh.Tree
	myStack := w.tracker.Stack(w.id)
	bound := w.cfg.PeakBound
	if p := w.tracker.ActivePeak(w.id); p > bound {
		bound = p
	}
	inSubtree := func(task int) bool {
		return w.pl.taskOf[task] == task || w.cfg.InSubtree(task)
	}
	cost := func(task int) int64 { return w.pl.taskCost(task, tree) }

	// Fast path: Algorithm 2 returns the top task when it is subtree work
	// or fits the bound; skip the pool scan (and its copy) in that case.
	top := st.pool.Peek()
	k := 0
	if !inSubtree(top) && myStack+cost(top) > bound {
		k = sched.SelectMemoryAware(&st.pool, sched.TaskInfo{
			InSubtree: inSubtree,
			MemCost:   cost,
		}, myStack, bound)
	}
	task := top
	if k > 0 {
		task = st.pool.At(k)
	}
	// Gate against the same effective bound the scan used: a task under the
	// raised (observed-peak) bound cannot raise this worker's peak, so it
	// is neither worth waiting out nor a forced over-bound activation.
	over := myStack+cost(task) > bound
	if over && !inSubtree(task) && st.inFlight > 0 {
		return 0, false // headroom will appear when someone finishes
	}
	st.pool.PopAt(k)
	if k > 0 {
		st.stats.Deviations++
	}
	if over {
		st.stats.Forced++
	}
	return task, true
}

// processTask runs a task without holding st.mu: a single node, or a whole
// leaf subtree in postorder. Panics in the numeric work (kernels,
// assembly, injected faults) are contained here — converted into a
// wrapped error carrying the worker id and front index — so one bad
// front fails the run descriptively instead of killing the process. The
// containment covers only unlocked execution: an invariant panic fired
// under st.mu (nodepar phase bookkeeping) cannot be recovered without
// leaving the scheduler lock held.
func (w worker) processTask(task int) (r *taskResult) {
	r = &taskResult{task: task}
	defer func() {
		if p := recover(); p != nil {
			r.err = fmt.Errorf("parmf: worker %d: panic in task %d: %v", w.id, task, p)
		}
	}()
	nodes := []int{task}
	span := trace.SpanTask
	if w.pl.taskOf[task] == task {
		nodes = w.pl.taskNodes[task]
		span = trace.SpanSubtree
	}
	w.tr.Begin(w.id, span, task)
	for _, ni := range nodes {
		if err := w.processNode(ni, r); err != nil {
			r.err = err
			break
		}
	}
	w.tr.End(w.id, span, task)
	return r
}

// processNode assembles, eliminates and extracts node ni. The per-worker
// memory accounting mirrors seqmf exactly (front allocated with children
// CBs still stacked, children popped after extend-add, front freed before
// the CB is stacked), except that a split front charges its master only
// the master part — the slave row blocks are charged to whoever runs
// their tasks, as the paper's type-2 accounting does.
func (w worker) processNode(ni int, r *taskResult) error {
	if err := w.cfg.Faults.Check(faults.Task, ni); err != nil {
		return fmt.Errorf("parmf: worker %d: node %d: %w", w.id, ni, err)
	}
	tree := w.sh.Tree
	nd := &tree.Nodes[ni]
	npiv := nd.NPiv()
	nf := nd.NFront()
	rows := w.asm.Begin(ni)

	split := w.splitFront(ni)
	fe := assembly.FrontEntries(nd, tree.Kind)
	charge := fe
	if split {
		charge = assembly.MasterEntries(nd, tree.Kind)
	}
	w.tracker.AllocFront(w.id, charge)
	w.meter.Add(fe)
	fr := w.arena.Matrix(nf, nf)
	w.tr.Begin(w.id, trace.SpanAssemble, ni)
	err := w.asm.Scatter(ni, fr)
	w.tr.End(w.id, trace.SpanAssemble, ni)
	if err != nil {
		return err
	}

	if len(nd.Children) > 0 {
		w.tr.Begin(w.id, trace.SpanExtendAdd, ni)
		for _, c := range nd.Children {
			n, err := w.asm.ExtendAdd(ni, fr, c, w.st.cbs[c])
			if err != nil {
				w.tr.End(w.id, trace.SpanExtendAdd, ni)
				return err
			}
			r.assemblyOps += n
		}
		w.tr.End(w.id, trace.SpanExtendAdd, ni)
	}
	for _, c := range nd.Children {
		owner := w.st.cbOwner[c]
		if owner != w.id {
			r.consumedForeign = true
		}
		ce := assembly.CBEntries(&tree.Nodes[c], tree.Kind)
		w.tracker.PopCB(owner, ce)
		w.meter.Add(-ce)
		// The consumed CB recycles into *this* worker's arena, whoever
		// produced it: this worker owns it now, and the scheduling mutex
		// ordered the handoff.
		w.arena.Free(w.st.cbs[c])
		w.st.cbs[c] = nil
	}

	w.tr.Begin(w.id, trace.SpanFactor, ni)
	if split {
		err = w.runSplitFront(ni, fr, r)
	} else if kerr := front.EliminateKernel(fr, npiv, tree.Kind, w.cfg.PivotTol, w.cfg.BlockRows, w.kern); kerr != nil {
		err = fmt.Errorf("parmf: node %d (front %d, npiv %d): %w", ni, nf, npiv, kerr)
	}
	w.tr.End(w.id, trace.SpanFactor, ni)
	if err != nil {
		return err
	}

	// The block becomes store-owned (an out-of-core store releases its
	// memory once the background writer has spilled it; Put may briefly
	// block this worker while the write buffer is over budget).
	facE := assembly.FactorEntries(nd, tree.Kind)
	if err := w.out.Put(ni, front.ExtractFactor(fr, rows, npiv, tree.Kind), facE); err != nil {
		return fmt.Errorf("parmf: node %d: %w", ni, err)
	}
	w.tr.Instant(w.id, trace.EvPut, ni, facE*8)
	w.tracker.AddFactors(w.id, facE)
	w.tracker.FreeFront(w.id, charge)
	w.meter.Add(-fe)

	if cb := front.ExtractCB(w.arena, fr, npiv, nd.NCB(), tree.Kind); cb != nil {
		w.st.cbs[ni] = cb
		w.st.cbOwner[ni] = w.id
		w.tracker.PushCB(w.id, assembly.CBEntries(nd, tree.Kind))
		w.meter.Add(assembly.CBEntries(nd, tree.Kind))
	}
	// The front is dead (factor block extracted, CB copied out): recycle.
	// For a split front this is safe — every row-block task finished
	// under the phase barriers before runSplitFront returned.
	w.arena.Free(fr)

	r.fronts++
	if nf > r.maxFront {
		r.maxFront = nf
	}
	r.factorEntries += facE
	// Progress uses per-node elimination flops directly (pl.flops holds
	// subtree sums for subtree roots, which would double-count).
	w.tr.FrontDone(assembly.EliminationFlops(nd, tree.Kind))
	return nil
}

// splitFront reports whether node ni's front runs through the within-front
// master/slave path: an individual (non-subtree) task whose front reaches
// the splitting threshold and spans more than one row block. Subtree nodes
// stay whole — the paper processes leaf subtrees entirely on one processor.
func (w worker) splitFront(ni int) bool {
	if w.cfg.FrontSplit <= 0 || w.pl.taskOf[ni] >= 0 {
		return false
	}
	nf := w.sh.Tree.Nodes[ni].NFront()
	return nf >= w.cfg.FrontSplit && nf > w.cfg.BlockRows
}

// runSplitFront factors an assembled front as a master task plus slave
// tile tasks: for each pivot panel the master eliminates the panel's
// master part, then fans the panel's phase waves out through the shared
// job list — idle workers claim them (preferring the tiles the slave
// selection or the 2D grid assigned to them) and the master joins in
// itself, so progress never depends on anyone else being free. Phases are
// barriers; the factors are bitwise identical to the sequential blocked
// kernel because every tile computes the same bits wherever it runs.
//
// The decomposition is the paper's two split shapes behind one Partition:
// non-root fronts use the 1D row blocking (type 2) with the dynamic slave
// selection, and root fronts — when the root grid is enabled — use the 2D
// block-cyclic tile grid (type 3), whose diagonal-tile master and per-tile
// update tasks remove the root's serial U sweep and task shortage.
func (w worker) runSplitFront(ni int, fr *dense.Matrix, r *taskResult) error {
	st, tree := w.st, w.sh.Tree
	nd := &tree.Nodes[ni]
	npiv, nf := nd.NPiv(), nd.NFront()
	isRoot := nd.Parent < 0

	var part nodepar.Partition
	st.mu.Lock()
	if isRoot && w.cfg.gridPR > 0 {
		part = nodepar.NewTilePartition(tree.Kind, nf, npiv, w.cfg.BlockRows,
			w.cfg.gridPR, w.cfg.gridPC, w.cfg.Workers)
		st.stats.Root2DFronts++
	} else {
		rp := nodepar.NewRowPartition(tree.Kind, nf, npiv, w.cfg.BlockRows)
		w.assignSlavesLocked(nd, rp.Blocks)
		part = rp
	}
	job := nodepar.NewJob(ni, fr, npiv, tree.Kind, w.cfg.PivotTol, part, w.kern)
	st.stats.SplitFronts++
	st.mu.Unlock()

	var rootT0 time.Time
	if isRoot {
		rootT0 = time.Now()
	}

	published := false
	defer func() {
		if published {
			st.mu.Lock()
			for k, j := range st.jobs {
				if j == job {
					st.jobs = append(st.jobs[:k], st.jobs[k+1:]...)
					break
				}
			}
			st.mu.Unlock()
		}
	}()

	for _, p := range job.Panels() {
		w.tr.Begin(w.id, trace.SpanMaster, ni)
		err := job.RunMaster(p)
		w.tr.End(w.id, trace.SpanMaster, ni)
		if err != nil {
			return fmt.Errorf("parmf: node %d (front %d, npiv %d): %w", ni, nf, npiv, err)
		}
		for _, ph := range job.Phases() {
			st.mu.Lock()
			if job.StartPhase(p, ph) == 0 {
				st.mu.Unlock()
				continue
			}
			if !published {
				st.jobs = append(st.jobs, job)
				published = true
			}
			st.cond.Broadcast()
			for st.err == nil && !job.PhaseDone() {
				if i := job.Claim(w.id); i >= 0 {
					w.runBlockLocked(job, i)
					continue
				}
				st.cond.Wait()
			}
			err := st.err
			st.mu.Unlock()
			if err != nil {
				return err
			}
		}
	}
	if isRoot {
		ns := time.Since(rootT0).Nanoseconds()
		st.mu.Lock()
		if ns > st.stats.RootFrontNs {
			st.stats.RootFrontNs = ns
		}
		st.mu.Unlock()
	}
	return nil
}

// assignSlavesLocked runs the configured slave-selection heuristic against
// the workers' live state and stamps the preferred owners onto the row
// blocks. Preferences steer claiming only — any idle worker (and the
// master) may still run any block, so liveness never depends on the
// selection. Called under st.mu.
func (w worker) assignSlavesLocked(nd *assembly.Node, blocks []nodepar.Block) {
	if w.cfg.Workers <= 1 {
		return
	}
	cands := make([]int, 0, w.cfg.Workers-1)
	for q := 0; q < w.cfg.Workers; q++ {
		if q != w.id {
			cands = append(cands, q)
		}
	}
	kind := w.sh.Tree.Kind
	npiv, nf := nd.NPiv(), nd.NFront()
	firstK1 := w.cfg.BlockRows
	if firstK1 > npiv {
		firstK1 = npiv
	}
	slaveRows := nf - firstK1
	if slaveRows <= 0 {
		return
	}
	var allocs []sched.Allocation
	switch w.cfg.SlavePolicy {
	case SlavesWorkload:
		allocs = sched.SelectSlavesWorkload(cands, w.st.loads[w.id], w.st.loads,
			slaveRows, nodepar.MasterFlops(kind, npiv, nf), nodepar.RowFlops(kind, npiv, nf))
	default:
		metric := func(q int) int64 { return w.tracker.Active(q) }
		allocs = sched.SelectSlavesMemory(cands, metric, nf, slaveRows, w.tracker.MaxActivePeak())
	}
	nodepar.AssignPrefs(blocks, firstK1, allocs)
}
