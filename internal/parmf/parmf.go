// Package parmf is the shared-memory parallel numeric multifrontal
// executor: a pool of worker goroutines walks the assembly tree, assembling
// and partially factoring independent fronts concurrently. It is the
// real-thread counterpart of the message-passing simulator internal/parsim
// — same tree, same memory model (factors area / per-worker CB stack /
// active fronts, all in model entries), but wall-clock time and real
// numerics via the kernels shared with internal/seqmf (internal/front).
//
// Tasks follow the paper's two-layer structure: a leaf subtree of the
// static mapping is one task, processed entirely by one worker in postorder
// (the Geist-Ng layer L0 amortizes scheduling over the cheap bottom of the
// tree), while every node above the subtree layer is an individual task.
// Ready tasks live in one shared pool (sched.Pool, LIFO so the default
// traversal is depth-first), and a worker looking for work applies the
// memory-aware policy of Algorithm 2 (sched.SelectMemoryAware) against its
// *own* CB-stack occupation — it prefers the topmost task that keeps its
// active memory under the sequential peak bound, and otherwise falls back
// off-top. Shared memory affords one luxury the message-passing setting
// lacks: when no pool task fits and other workers are still busy, the
// worker waits for the state to change instead of blowing the bound. An
// over-bound (peak-raising) activation happens — and is counted in
// Stats.Forced — only for subtree work, which Algorithm 2 takes
// unconditionally, or when the whole worker fleet has gone idle.
//
// Because pivoting is static and each front is assembled by exactly one
// worker in deterministic child order, the factors are bitwise identical to
// seqmf's regardless of worker count or interleaving; scheduling only
// changes memory shape and wall-clock time.
//
// Factor blocks are owned by a front.Store: each worker pushes its blocks
// into the store the moment they are extracted (Config.Store; the default
// keeps them in memory). With an out-of-core store (internal/ooc) a
// block's memory is released as soon as the background writer has spilled
// it, so the measured resident peak (Stats.ResidentPeak, tracked by a
// meter shared between the workers and the store) approaches the
// stack-only cost the paper's schedules minimize.
package parmf

import (
	"fmt"
	"sync"

	"repro/internal/assembly"
	"repro/internal/dense"
	"repro/internal/front"
	"repro/internal/memory"
	"repro/internal/sched"
	"repro/internal/seqmf"
	"repro/internal/sparse"
)

// Policy selects how a worker picks its next task from the shared pool.
type Policy int

const (
	// MemoryAware runs Algorithm 2 per worker: take the topmost ready task
	// that keeps this worker's stack + task peak under the bound, fall
	// back off-top, wait if nothing fits while others are busy.
	MemoryAware Policy = iota
	// DepthFirst always pops the pool top (the MUMPS default policy).
	DepthFirst
)

func (p Policy) String() string {
	switch p {
	case MemoryAware:
		return "memory"
	case DepthFirst:
		return "depthfirst"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Config drives the parallel factorization.
type Config struct {
	// Workers is the worker-goroutine count (<1 means 1).
	Workers int
	// Policy is the task-selection policy.
	Policy Policy
	// PivotTol is the minimum pivot magnitude for LU (0 = default 1e-12).
	PivotTol float64
	// PeakBound is the per-worker active-memory budget (model entries) the
	// memory-aware policy schedules under. 0 uses the sequential stack
	// peak of the tree with its current child order — the tightest bound a
	// single worker can always meet.
	PeakBound int64
	// SubtreeRoots lists roots of disjoint leaf subtrees (typically the
	// static mapping's Geist-Ng layer); each subtree runs as a single task
	// on one worker. Nodes outside the subtrees are individual tasks.
	SubtreeRoots []int
	// InSubtree optionally marks extra nodes Algorithm 2 should treat as
	// subtree work (taken unconditionally, step 1); SubtreeRoots members
	// are always treated so.
	InSubtree func(node int) bool
	// Store receives each front's factor block the moment it is
	// extracted; nil keeps factors in memory (front.Factors).
	Store front.Store
	// Meter, when non-nil, replaces the internal resident-memory meter —
	// pass one to share accounting with an enclosing measurement.
	Meter *memory.Meter
}

// DefaultConfig returns the standard settings for the given worker count.
func DefaultConfig(workers int) Config {
	return Config{Workers: workers, Policy: MemoryAware, PivotTol: 1e-12}
}

// Stats records memory and work, in the units of the assembly cost model.
// The embedded ExecStats matches seqmf.Stats (see Seq) so a one-worker run
// can be compared field-by-field with the sequential executor; PeakStack
// is the max over workers of the (CB stack + active front) peak, and
// ResidentPeak is the whole-process resident peak (all workers' fronts
// and CBs plus store-owned factor blocks, under one shared meter).
type Stats struct {
	memory.ExecStats

	Workers          int
	Tasks            int     // scheduled tasks (subtrees + upper nodes)
	PeakBound        int64   // bound the memory-aware policy scheduled under
	WorkerPeaks      []int64 // per-worker (stack + front) peaks
	WorkerStackPeaks []int64 // per-worker CB-stack-only peaks
	Deviations       int64   // off-top pool selections (Algorithm 2 deviations)
	Waits            int64   // idle episodes where nothing fit the bound
	Forced           int64   // peak-raising activations over the worker's effective bound
}

// Seq returns the seqmf-comparable subset of the stats.
func (s Stats) Seq() seqmf.Stats { return s.ExecStats }

// Factors holds the parallel numeric factorization.
type Factors struct {
	Tree  *assembly.Tree
	Kind  sparse.Type
	N     int
	Stats Stats

	store front.Store
	fs    *front.Factors // non-nil when store is the in-memory one
}

// Front exposes the in-memory per-node factor container (cross-validation
// against seqmf compares node factors through it); nil when the
// factorization ran into an external store.
func (f *Factors) Front() *front.Factors { return f.fs }

// Store returns the factor store the blocks live in.
func (f *Factors) Store() front.Store { return f.store }

// Close releases the factor store (for a file-backed store: the spill
// file). The factors are unusable afterwards.
func (f *Factors) Close() error {
	if f.store == nil {
		return nil
	}
	return f.store.Close()
}

// Solve solves A x = b in the permuted index space. b is not modified.
func (f *Factors) Solve(b []float64) ([]float64, error) {
	if len(b) != f.N {
		return nil, fmt.Errorf("parmf: rhs length %d, want %d", len(b), f.N)
	}
	return front.SolveStore(f.store, f.Tree, f.Kind, b)
}

// SolveOriginal solves for a right-hand side in the original ordering.
func (f *Factors) SolveOriginal(b []float64) ([]float64, error) {
	if len(b) != f.N {
		return nil, fmt.Errorf("parmf: rhs length %d, want %d", len(b), f.N)
	}
	return front.SolveOriginalStore(f.store, f.Tree, f.Kind, b)
}

// state is the scheduling state shared by all workers, guarded by mu.
// Contribution blocks (cbs, cbOwner) are written by the worker that factors
// a node and read by the worker that assembles its parent; the completion
// under mu that makes the parent's task ready establishes the
// happens-before edge.
type state struct {
	mu   sync.Mutex
	cond *sync.Cond

	pool      sched.Pool
	unfin     []int // per upper node: unfinished child tasks
	remaining int   // tasks not yet completed
	inFlight  int   // tasks being processed right now
	err       error

	cbs     []*dense.Matrix
	cbOwner []int

	stats Stats
}

// plan is the immutable task structure: which nodes form which tasks.
type plan struct {
	taskOf    []int   // node -> subtree-task root, or -1 for an individual task
	taskNodes [][]int // subtree root -> member nodes in postorder (nil otherwise)
	peaks     []int64 // sequential subtree peaks (task memory cost for subtrees)
}

// Factorize factors the permuted matrix pa over its assembly tree with a
// pool of cfg.Workers goroutines. pa must carry numerical values.
func Factorize(pa *sparse.CSC, tree *assembly.Tree, cfg Config) (*Factors, error) {
	sh, err := front.NewShared(pa, tree)
	if err != nil {
		return nil, err // already carries the front: context
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.PivotTol == 0 {
		cfg.PivotTol = 1e-12
	}
	peaks := assembly.SequentialPeaks(tree)
	if cfg.PeakBound <= 0 {
		cfg.PeakBound = assembly.TreePeak(peaks, tree)
	}
	if cfg.InSubtree == nil {
		cfg.InSubtree = func(int) bool { return false }
	}

	pl, err := buildPlan(tree, cfg.SubtreeRoots, peaks)
	if err != nil {
		return nil, err
	}

	f := &Factors{
		Tree: tree,
		Kind: pa.Kind,
		N:    pa.N,
	}
	var meter *memory.Meter
	f.store, f.fs, meter = front.ResolveStore(cfg.Store, tree, pa.Kind, cfg.Meter)
	st := &state{
		unfin:   make([]int, tree.Len()),
		cbs:     make([]*dense.Matrix, tree.Len()),
		cbOwner: make([]int, tree.Len()),
	}
	st.cond = sync.NewCond(&st.mu)
	st.stats.Workers = cfg.Workers
	st.stats.PeakBound = cfg.PeakBound
	for i := range tree.Nodes {
		st.unfin[i] = len(tree.Nodes[i].Children)
	}
	// Seed the pool with the initially ready tasks — every subtree task
	// (self-contained) and every individual node without children — in
	// reverse postorder of their first node, so the LIFO top is the
	// earliest task in postorder and a single depth-first worker replays
	// the sequential traversal exactly.
	post := tree.Postorder()
	for i := len(post) - 1; i >= 0; i-- {
		ni := post[i]
		if r := pl.taskOf[ni]; r >= 0 {
			// A subtree task's seeding position is its *first* postorder
			// node, so the LIFO pop order matches the sequential schedule.
			if pl.taskNodes[r][0] == ni {
				st.pool.Push(r)
			}
		} else if st.unfin[ni] == 0 {
			st.pool.Push(ni)
		}
	}
	for i := range tree.Nodes {
		if pl.taskOf[i] == i || pl.taskOf[i] < 0 {
			st.remaining++
		}
	}
	st.stats.Tasks = st.remaining

	tracker := memory.NewSafeTracker(cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			worker{id: id, cfg: cfg, sh: sh, st: st, pl: pl, tracker: tracker,
				out: f.store, meter: meter, asm: front.NewAssembler(sh)}.run()
		}(w)
	}
	wg.Wait()

	if st.err != nil {
		return nil, st.err
	}
	if err := f.store.Flush(); err != nil {
		return nil, fmt.Errorf("parmf: flush factor store: %w", err)
	}
	f.Stats = st.stats
	f.Stats.ResidentPeak = meter.Peak()
	for w := 0; w < cfg.Workers; w++ {
		f.Stats.WorkerPeaks = append(f.Stats.WorkerPeaks, tracker.ActivePeak(w))
		f.Stats.WorkerStackPeaks = append(f.Stats.WorkerStackPeaks, tracker.StackPeak(w))
		f.Stats.FinalStack += tracker.Stack(w)
		if p := tracker.ActivePeak(w); p > f.Stats.PeakStack {
			f.Stats.PeakStack = p
		}
	}
	return f, nil
}

// buildPlan derives the task structure from the subtree roots: each root's
// descendant set becomes one task with its nodes in global postorder.
func buildPlan(tree *assembly.Tree, roots []int, peaks []int64) (*plan, error) {
	pl := &plan{
		taskOf:    make([]int, tree.Len()),
		taskNodes: make([][]int, tree.Len()),
		peaks:     peaks,
	}
	for i := range pl.taskOf {
		pl.taskOf[i] = -1
	}
	for _, r := range roots {
		if r < 0 || r >= tree.Len() {
			return nil, fmt.Errorf("parmf: subtree root %d out of range", r)
		}
		stack := []int{r}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if pl.taskOf[n] >= 0 {
				return nil, fmt.Errorf("parmf: node %d in two subtree tasks (%d and %d)",
					n, pl.taskOf[n], r)
			}
			pl.taskOf[n] = r
			stack = append(stack, tree.Nodes[n].Children...)
		}
	}
	// Member lists in global postorder (a complete subtree is a contiguous
	// postorder segment, so per-task order == global order restriction).
	for _, ni := range tree.Postorder() {
		if r := pl.taskOf[ni]; r >= 0 {
			pl.taskNodes[r] = append(pl.taskNodes[r], ni)
		}
	}
	return pl, nil
}

// taskCost returns the memory Algorithm 2 charges a task with: the whole
// sequential subtree peak for a subtree task, the front size for a node.
func (pl *plan) taskCost(task int, tree *assembly.Tree) int64 {
	if pl.taskOf[task] == task {
		return pl.peaks[task]
	}
	return assembly.FrontEntries(&tree.Nodes[task], tree.Kind)
}

type worker struct {
	id      int
	cfg     Config
	sh      *front.Shared
	st      *state
	pl      *plan
	tracker *memory.SafeTracker
	out     front.Store
	meter   *memory.Meter
	asm     *front.Assembler
}

// taskResult carries a finished task's bookkeeping back under the lock.
type taskResult struct {
	task            int
	err             error
	fronts          int
	maxFront        int
	factorEntries   int64
	assemblyOps     int64
	consumedForeign bool // popped a CB from another worker's stack
}

func (w worker) run() {
	st := w.st
	var done *taskResult
	for {
		st.mu.Lock()
		if done != nil {
			w.completeLocked(done)
			done = nil
		}
		var task int
		waited := false
		for {
			if st.err != nil || st.remaining == 0 {
				st.mu.Unlock()
				return
			}
			t, ok := w.selectLocked()
			if ok {
				task = t
				break
			}
			// One idle episode counts once, however many broadcasts wake
			// and re-block the worker before work appears.
			if !waited {
				st.stats.Waits++
				waited = true
			}
			st.cond.Wait()
		}
		st.inFlight++
		st.mu.Unlock()

		done = w.processTask(task)
	}
}

// completeLocked folds a finished task back into the shared state and wakes
// waiters when the completion could unblock them: a new ready task, freed
// stack headroom on another worker, the pool draining, an error, or the
// worker fleet going idle (the forced-activation path needs a wake-up).
func (w worker) completeLocked(r *taskResult) {
	st := w.st
	st.inFlight--
	pushed := false
	if r.err != nil {
		if st.err == nil {
			st.err = r.err
		}
	} else {
		st.remaining--
		st.stats.Fronts += r.fronts
		if r.maxFront > st.stats.MaxFront {
			st.stats.MaxFront = r.maxFront
		}
		st.stats.FactorEntries += r.factorEntries
		st.stats.AssemblyOps += r.assemblyOps
		if p := w.sh.Tree.Nodes[r.task].Parent; p >= 0 {
			st.unfin[p]--
			if st.unfin[p] == 0 {
				st.pool.Push(p)
				pushed = true
			}
		}
	}
	if pushed || r.consumedForeign || st.err != nil || st.remaining == 0 || st.inFlight == 0 {
		st.cond.Broadcast()
	}
}

// selectLocked picks the next task under st.mu, returning (task, true) or
// (0, false) when the worker should wait. The memory-aware policy runs
// Algorithm 2 with this worker's stack as the current occupation; when the
// chosen task would exceed the bound it is only activated if it is subtree
// work (Algorithm 2 takes those unconditionally) or no other work is in
// flight anywhere (otherwise waiting is safe and cheaper).
func (w worker) selectLocked() (int, bool) {
	st := w.st
	if st.pool.Empty() {
		return 0, false
	}
	if w.cfg.Policy == DepthFirst {
		return st.pool.PopTop(), true
	}
	tree := w.sh.Tree
	myStack := w.tracker.Stack(w.id)
	bound := w.cfg.PeakBound
	if p := w.tracker.ActivePeak(w.id); p > bound {
		bound = p
	}
	inSubtree := func(task int) bool {
		return w.pl.taskOf[task] == task || w.cfg.InSubtree(task)
	}
	cost := func(task int) int64 { return w.pl.taskCost(task, tree) }

	// Fast path: Algorithm 2 returns the top task when it is subtree work
	// or fits the bound; skip the pool scan (and its copy) in that case.
	top := st.pool.Peek()
	k := 0
	if !inSubtree(top) && myStack+cost(top) > bound {
		k = sched.SelectMemoryAware(&st.pool, sched.TaskInfo{
			InSubtree: inSubtree,
			MemCost:   cost,
		}, myStack, bound)
	}
	task := top
	if k > 0 {
		task = st.pool.At(k)
	}
	// Gate against the same effective bound the scan used: a task under the
	// raised (observed-peak) bound cannot raise this worker's peak, so it
	// is neither worth waiting out nor a forced over-bound activation.
	over := myStack+cost(task) > bound
	if over && !inSubtree(task) && st.inFlight > 0 {
		return 0, false // headroom will appear when someone finishes
	}
	st.pool.PopAt(k)
	if k > 0 {
		st.stats.Deviations++
	}
	if over {
		st.stats.Forced++
	}
	return task, true
}

// processTask runs a task without holding st.mu: a single node, or a whole
// leaf subtree in postorder.
func (w worker) processTask(task int) *taskResult {
	r := &taskResult{task: task}
	nodes := []int{task}
	if w.pl.taskOf[task] == task {
		nodes = w.pl.taskNodes[task]
	}
	for _, ni := range nodes {
		if err := w.processNode(ni, r); err != nil {
			r.err = err
			return r
		}
	}
	return r
}

// processNode assembles, eliminates and extracts node ni. The per-worker
// memory accounting mirrors seqmf exactly (front allocated with children
// CBs still stacked, children popped after extend-add, front freed before
// the CB is stacked).
func (w worker) processNode(ni int, r *taskResult) error {
	tree := w.sh.Tree
	nd := &tree.Nodes[ni]
	npiv := nd.NPiv()
	nf := nd.NFront()
	rows := w.asm.Begin(ni)

	fe := assembly.FrontEntries(nd, tree.Kind)
	w.tracker.AllocFront(w.id, fe)
	w.meter.Add(fe)
	fr := dense.New(nf, nf)
	if err := w.asm.Scatter(ni, fr); err != nil {
		return err
	}

	for _, c := range nd.Children {
		n, err := w.asm.ExtendAdd(ni, fr, c, w.st.cbs[c])
		if err != nil {
			return err
		}
		r.assemblyOps += n
	}
	for _, c := range nd.Children {
		owner := w.st.cbOwner[c]
		if owner != w.id {
			r.consumedForeign = true
		}
		ce := assembly.CBEntries(&tree.Nodes[c], tree.Kind)
		w.tracker.PopCB(owner, ce)
		w.meter.Add(-ce)
		w.st.cbs[c] = nil
	}

	if err := front.Eliminate(fr, npiv, tree.Kind, w.cfg.PivotTol); err != nil {
		return fmt.Errorf("parmf: node %d (front %d, npiv %d): %w", ni, nf, npiv, err)
	}

	// The block becomes store-owned (an out-of-core store releases its
	// memory once the background writer has spilled it; Put may briefly
	// block this worker while the write buffer is over budget).
	facE := assembly.FactorEntries(nd, tree.Kind)
	if err := w.out.Put(ni, front.ExtractFactor(fr, rows, npiv, tree.Kind), facE); err != nil {
		return fmt.Errorf("parmf: node %d: %w", ni, err)
	}
	w.tracker.AddFactors(w.id, facE)
	w.tracker.FreeFront(w.id, fe)
	w.meter.Add(-fe)

	if cb := front.ExtractCB(fr, npiv, nd.NCB(), tree.Kind); cb != nil {
		w.st.cbs[ni] = cb
		w.st.cbOwner[ni] = w.id
		w.tracker.PushCB(w.id, assembly.CBEntries(nd, tree.Kind))
		w.meter.Add(assembly.CBEntries(nd, tree.Kind))
	}

	r.fronts++
	if nf > r.maxFront {
		r.maxFront = nf
	}
	r.factorEntries += facE
	return nil
}
