package parmf_test

import (
	"math/rand"
	"testing"

	"repro/internal/assembly"
	"repro/internal/order"
	"repro/internal/parmf"
	"repro/internal/seqmf"
	"repro/internal/sparse"
)

// randomProblem draws a small random matrix, alternating the SPD and the
// unsymmetric generator so both elimination kernels are exercised.
func randomProblem(seed int64) *sparse.CSC {
	rng := rand.New(rand.NewSource(seed))
	if seed%2 == 0 {
		return sparse.RandomSPDPattern(20+rng.Intn(120), 2+rng.Intn(4), rng)
	}
	d := func() int { return 3 + rng.Intn(5) }
	return sparse.Grid3DUnsym(d(), d(), d(), rng)
}

// TestPropertyPeakBoundAndSeqEquivalence is the paper-level invariant of
// the executor, checked over random matrices:
//
//   - the scheduler's bound defaults to the sequential stack peak predicted
//     by the memory model for the tree's current child order, and whenever
//     no activation was forced over it (Stats.Forced == 0), no worker's
//     measured stack+front peak exceeds it;
//   - a 1-worker run replays the sequential traversal: identical
//     seqmf.Stats, no deviations, no forced activations;
//   - the factors match seqmf at every worker count (static pivoting).
func TestPropertyPeakBoundAndSeqEquivalence(t *testing.T) {
	seeds := int64(24)
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(0); seed < seeds; seed++ {
		a := randomProblem(seed)
		tree, pa := assembly.Analyze(a, assembly.DefaultOptions(order.AMD))
		peaks := assembly.SortChildrenLiu(tree)
		bound := assembly.TreePeak(peaks, tree)
		sf, err := seqmf.Factorize(pa, tree, seqmf.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: seqmf: %v", seed, err)
		}
		for _, workers := range []int{1, 2, 4} {
			pf, err := parmf.Factorize(pa, tree, parmf.DefaultConfig(workers))
			if err != nil {
				t.Fatalf("seed %d, %d workers: %v", seed, workers, err)
			}
			if pf.Stats.PeakBound != bound {
				t.Fatalf("seed %d: scheduler bound %d, model %d", seed, pf.Stats.PeakBound, bound)
			}
			if pf.Stats.Forced == 0 {
				for w, p := range pf.Stats.WorkerPeaks {
					if p > bound {
						t.Errorf("seed %d, %d workers: worker %d peak %d > bound %d",
							seed, workers, w, p, bound)
					}
				}
			}
			for w, p := range pf.Stats.WorkerStackPeaks {
				if p > pf.Stats.WorkerPeaks[w] {
					t.Errorf("seed %d: worker %d stack peak %d > active peak %d",
						seed, w, p, pf.Stats.WorkerPeaks[w])
				}
			}
			if pf.Stats.FactorEntries != assembly.TotalFactorEntries(tree) {
				t.Errorf("seed %d: factor entries %d != model %d",
					seed, pf.Stats.FactorEntries, assembly.TotalFactorEntries(tree))
			}
			if pf.Stats.Fronts != tree.Len() {
				t.Errorf("seed %d: fronts %d != nodes %d", seed, pf.Stats.Fronts, tree.Len())
			}
			compareFactors(t, tree, sf.Front(), pf.Front(), 1e-10)
			if workers == 1 {
				if got, want := pf.Stats.Seq(), sf.Stats; got != want {
					t.Errorf("seed %d: 1-worker stats %+v != seq %+v", seed, got, want)
				}
				if pf.Stats.Deviations != 0 || pf.Stats.Forced != 0 || pf.Stats.PeakStack > bound {
					t.Errorf("seed %d: 1-worker run deviated: %+v", seed, pf.Stats)
				}
			}
		}
	}
}
