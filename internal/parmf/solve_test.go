package parmf_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/assembly"
	"repro/internal/ooc"
	"repro/internal/order"
	"repro/internal/parmf"
	"repro/internal/seqmf"
	"repro/internal/sparse"
	"repro/internal/workload"
)

// rhsBlock builds a deterministic n x nrhs row-major RHS block.
func rhsBlock(n, nrhs int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n*nrhs)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return b
}

// col extracts column c of a row-major n x nrhs block.
func col(b []float64, n, nrhs, c int) []float64 {
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[i*nrhs+c]
	}
	return x
}

// assertBitsEqual fails on the first position where the two vectors
// differ in float bits.
func assertBitsEqual(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: bits differ at %d: %v != %v", what, i, got[i], want[i])
		}
	}
}

// TestTreeSolverBitwiseRandom checks the tree-parallel solve's core
// guarantee over random SPD and unsymmetric trees: at 1, 2 and 8
// workers, for 1 and several right-hand sides, the result is bitwise
// identical to the sequential single-RHS reference solve of every
// column (per-row postorder chains make the parallel update order exact,
// not just race-free).
func TestTreeSolverBitwiseRandom(t *testing.T) {
	seeds := int64(10)
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(0); seed < seeds; seed++ {
		a := randomProblem(seed)
		tree, pa := assembly.Analyze(a, assembly.DefaultOptions(order.AMD))
		assembly.SortChildrenLiu(tree)
		sf, err := seqmf.Factorize(pa, tree, seqmf.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, nrhs := range []int{1, 4} {
			b := rhsBlock(a.N, nrhs, 100+seed)
			// Sequential reference: one single-RHS solve per column.
			want := make([][]float64, nrhs)
			for c := 0; c < nrhs; c++ {
				want[c], err = sf.Solve(col(b, a.N, nrhs, c))
				if err != nil {
					t.Fatalf("seed %d: reference solve: %v", seed, err)
				}
			}
			for _, workers := range []int{1, 2, 8} {
				ts := parmf.NewTreeSolver(sf.Store(), tree, pa.Kind, workers, 0)
				x, err := ts.SolveMulti(b, nrhs)
				if err != nil {
					t.Fatalf("seed %d, %d workers, nrhs %d: %v", seed, workers, nrhs, err)
				}
				for c := 0; c < nrhs; c++ {
					assertBitsEqual(t, "parallel vs sequential column", col(x, a.N, nrhs, c), want[c])
				}
			}
		}
	}
}

// TestPropertySolveMultiSuite is the solve-phase acceptance property on
// every workload problem: the blocked multi-RHS solve equals nrhs
// repeated single-RHS solves bit-for-bit, tree-parallel solves at 1, 2
// and 8 workers equal the sequential one bit-for-bit, the same holds
// out-of-core (where the factors also round-trip disk exactly), and a
// k-RHS OOC solve streams the factor file exactly twice — one forward
// and one backward pass — instead of 2k times.
func TestPropertySolveMultiSuite(t *testing.T) {
	suite := workload.Suite()
	if testing.Short() {
		suite = workload.SmallSuite()
	}
	const nrhs = 3
	for _, p := range suite {
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			a := p.Matrix()
			if !a.HasValues() {
				if err := sparse.FillDominant(a, rand.New(rand.NewSource(7))); err != nil {
					t.Fatal(err)
				}
			}
			tree, pa := assembly.Analyze(a, assembly.DefaultOptions(order.ND))
			assembly.SortChildrenLiu(tree)
			sf, err := seqmf.Factorize(pa, tree, seqmf.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			b := rhsBlock(a.N, nrhs, 99)
			want := make([][]float64, nrhs)
			for c := 0; c < nrhs; c++ {
				want[c], err = sf.Solve(col(b, a.N, nrhs, c))
				if err != nil {
					t.Fatal(err)
				}
			}
			// Blocked multi-RHS == repeated single-RHS, bit for bit.
			xm, err := sf.SolveMulti(b, nrhs)
			if err != nil {
				t.Fatal(err)
			}
			for c := 0; c < nrhs; c++ {
				assertBitsEqual(t, "multi vs single column", col(xm, a.N, nrhs, c), want[c])
			}
			// Tree-parallel at 1/2/8 workers == sequential, bit for bit.
			for _, workers := range []int{1, 2, 8} {
				ts := parmf.NewTreeSolver(sf.Store(), tree, pa.Kind, workers, 0)
				x, err := ts.SolveMulti(b, nrhs)
				if err != nil {
					t.Fatalf("%d workers: %v", workers, err)
				}
				assertBitsEqual(t, "parallel vs sequential block", x, xm)
			}

			// Out-of-core: same bits, and one forward + one backward
			// block stream total for the whole k-RHS block.
			st, err := ooc.NewFileStore(ooc.Options{BufferEntries: 1 << 12})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			opt := seqmf.DefaultOptions()
			opt.Store = st
			of, err := seqmf.Factorize(pa, tree, opt)
			if err != nil {
				t.Fatal(err)
			}
			before := st.Stats()
			xo, err := of.SolveMulti(b, nrhs)
			if err != nil {
				t.Fatal(err)
			}
			after := st.Stats()
			assertBitsEqual(t, "ooc vs in-core block", xo, xm)
			reads := after.BlocksRead - before.BlocksRead
			direct := after.DirectReads - before.DirectReads
			blocks := int64(after.Blocks)
			if reads < 2*blocks {
				t.Fatalf("k-RHS solve read %d blocks, want at least 2 passes over %d", reads, blocks)
			}
			if reads > 2*blocks+direct {
				t.Fatalf("k-RHS solve read %d blocks over %d spilled (+%d direct): re-streaming per RHS?",
					reads, blocks, direct)
			}
			// Tree-parallel against the file store too.
			for _, workers := range []int{2, 8} {
				x, err := parmf.NewTreeSolver(st, tree, pa.Kind, workers, 0).SolveMulti(b, nrhs)
				if err != nil {
					t.Fatalf("ooc %d workers: %v", workers, err)
				}
				assertBitsEqual(t, "ooc parallel block", x, xm)
			}
		})
	}
}

// TestFactorsSolveMulti covers the executor-level multi-RHS entry
// points: parmf.Factors.SolveMulti/SolveOriginalMulti against seqmf's,
// and both against repeated single-RHS SolveOriginal (the ordering
// round-trip included).
func TestFactorsSolveMulti(t *testing.T) {
	a := randomProblem(3)
	tree, pa := assembly.Analyze(a, assembly.DefaultOptions(order.AMD))
	assembly.SortChildrenLiu(tree)
	sf, err := seqmf.Factorize(pa, tree, seqmf.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pf, err := parmf.Factorize(pa, tree, parmf.DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	const nrhs = 5
	b := rhsBlock(a.N, nrhs, 17)
	want := make([][]float64, nrhs)
	for c := 0; c < nrhs; c++ {
		want[c], err = sf.SolveOriginal(col(b, a.N, nrhs, c))
		if err != nil {
			t.Fatal(err)
		}
	}
	xs, err := sf.SolveOriginalMulti(b, nrhs)
	if err != nil {
		t.Fatal(err)
	}
	xp, err := pf.SolveOriginalMulti(b, nrhs)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < nrhs; c++ {
		assertBitsEqual(t, "seqmf multi column", col(xs, a.N, nrhs, c), want[c])
	}
	assertBitsEqual(t, "parmf vs seqmf block", xp, xs)
}

// TestTreeSolverValidation checks every tree-parallel entry point
// rejects malformed RHS blocks with a descriptive error.
func TestTreeSolverValidation(t *testing.T) {
	a := randomProblem(2)
	tree, pa := assembly.Analyze(a, assembly.DefaultOptions(order.AMD))
	assembly.SortChildrenLiu(tree)
	pf, err := parmf.Factorize(pa, tree, parmf.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	good := make([]float64, a.N)
	for _, tc := range []struct {
		name string
		run  func() error
	}{
		{"short rhs", func() error { _, err := pf.Solve(good[:a.N-1]); return err }},
		{"nil rhs", func() error { _, err := pf.SolveMulti(nil, 1); return err }},
		{"zero nrhs", func() error { _, err := pf.SolveMulti(good, 0); return err }},
		{"wrong block len", func() error { _, err := pf.SolveMulti(good, 2); return err }},
		{"original short", func() error { _, err := pf.SolveOriginal(good[:1]); return err }},
		{"original zero nrhs", func() error { _, err := pf.SolveOriginalMulti(good, -3); return err }},
		{"solver nil rhs", func() error { _, err := pf.Solver(2).SolveMulti(nil, 2); return err }},
	} {
		if err := tc.run(); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
}
