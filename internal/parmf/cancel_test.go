package parmf_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/assembly"
	"repro/internal/faults"
	"repro/internal/ooc"
	"repro/internal/order"
	"repro/internal/parmf"
	"repro/internal/seqmf"
	"repro/internal/sparse"
)

// settleGoroutines polls until the process goroutine count drops back to
// the baseline (background goroutines — pool watchers, spill writers,
// prefetchers — need a moment to observe cancellation), failing with a
// full stack dump if it never does. Callers must not use t.Parallel: the
// count is process-global.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after cancelled run: %d, baseline %d\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// slowTasks arms a persistent per-task delay so a mid-run cancellation
// reliably lands while the pool is working.
func slowTasks() *faults.Injector {
	return faults.New(faults.Rule{
		Point: faults.Task,
		Kind:  faults.KindDelay,
		Count: -1,
		Delay: 2 * time.Millisecond,
	})
}

// TestCancelledRunNoGoroutineLeak cancels in-flight parallel runs at
// several worker counts and asserts the pool drains (descriptive error
// wrapping the context cause, no goroutines left behind).
func TestCancelledRunNoGoroutineLeak(t *testing.T) {
	a := sparse.Grid3D(8, 8, 8)
	tree, pa := assembly.Analyze(a, assembly.DefaultOptions(order.ND))
	assembly.SortChildrenLiu(tree)
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			base := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(5 * time.Millisecond)
				cancel()
			}()
			cfg := parmf.DefaultConfig(workers)
			cfg.Faults = slowTasks()
			pf, err := parmf.FactorizeCtx(ctx, pa, tree, cfg)
			cancel()
			if err == nil {
				// The run won the race; nothing to drain, but still no leak.
				t.Log("run completed before cancellation")
				_ = pf
			} else if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled run error = %v, want wrap of context.Canceled", err)
			}
			settleGoroutines(t, base)
		})
	}
}

// TestCancelledOOCRunNoGoroutineLeak is the out-of-core variant: the
// spill writer and the store's context watcher must stop too, and the
// store must stay Closeable after the drain.
func TestCancelledOOCRunNoGoroutineLeak(t *testing.T) {
	a := sparse.Grid3D(8, 8, 8)
	tree, pa := assembly.Analyze(a, assembly.DefaultOptions(order.ND))
	assembly.SortChildrenLiu(tree)
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			base := runtime.NumGoroutine()
			store, err := ooc.NewFileStore(ooc.Options{Dir: t.TempDir(), BufferEntries: 1 << 12})
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(5 * time.Millisecond)
				cancel()
			}()
			if workers == 1 {
				opt := seqmf.DefaultOptions()
				opt.Store = store
				opt.Faults = slowTasks()
				_, err = seqmf.FactorizeCtx(ctx, pa, tree, opt)
			} else {
				cfg := parmf.DefaultConfig(workers)
				cfg.Store = store
				cfg.Faults = slowTasks()
				_, err = parmf.FactorizeCtx(ctx, pa, tree, cfg)
			}
			cancel()
			if err == nil {
				t.Log("run completed before cancellation")
			} else if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled OOC run error = %v, want wrap of context.Canceled", err)
			}
			if err := store.Close(); err != nil {
				t.Fatalf("Close after cancelled run: %v", err)
			}
			settleGoroutines(t, base)
		})
	}
}

// TestCancelledSolveNoGoroutineLeak cancels a tree-parallel solve
// mid-pass: both pass pools and the store's prefetcher must drain.
func TestCancelledSolveNoGoroutineLeak(t *testing.T) {
	a := sparse.Grid3D(8, 8, 8)
	tree, pa := assembly.Analyze(a, assembly.DefaultOptions(order.ND))
	assembly.SortChildrenLiu(tree)
	pf, err := parmf.Factorize(pa, tree, parmf.DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, pa.N)
	for i := range b {
		b[i] = 1
	}
	base := runtime.NumGoroutine()
	ts := pf.Solver(4)
	ts.SetFaults(faults.New(faults.Rule{
		Point: faults.Solve,
		Kind:  faults.KindDelay,
		Count: -1,
		Delay: time.Millisecond,
	}))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(3 * time.Millisecond)
		cancel()
	}()
	_, err = ts.SolveMultiCtx(ctx, b, 1)
	cancel()
	if err == nil {
		t.Log("solve completed before cancellation")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled solve error = %v, want wrap of context.Canceled", err)
	}
	settleGoroutines(t, base)
}
