package parmf

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/assembly"
	"repro/internal/dense"
	"repro/internal/faults"
	"repro/internal/front"
	"repro/internal/sparse"
	"repro/internal/trace"
)

// TreeSolver runs the solve phase tree-parallel over a completed
// factorization: a pool of workers claims fronts as their dependencies
// complete — the forward pass in postorder as children finish, the
// backward pass in reverse with a parent-first dependency — mirroring
// the claim/finish discipline of the factorization's worker pool.
//
// Determinism. A worker-count-independent, bitwise-sequential result
// needs more than "children done" on the forward pass: two fronts in
// *different* subtrees may share contribution rows (any common ancestor
// pivot row), and floating-point subtraction orders on a shared row must
// not depend on scheduling. The forward dependency graph therefore
// chains, for every global row, the fronts that touch it (pivot rows and
// CB rows alike) in postorder: each front waits for the previous toucher
// of every one of its rows. Any topological execution then applies every
// row's updates in exactly sequential order — the parallel solve is
// bitwise identical to front.Solver at 1, 2 or any number of workers.
// The chains subsume the child→parent edges (a child's pivot rows and CB
// rows all reappear in or under the parent's row set only via shared
// rows), and the scheduling mutex's claim/finish handoff provides the
// happens-before for the row data itself.
//
// The backward pass is simpler: a front reads its CB rows (pivot rows of
// ancestors, final once the ancestors completed) and writes only its own
// pivot rows, so parent-first edges alone make it race-free and exact.
//
// A TreeSolver serializes its own solves (scratch and indegree state are
// per-solver); the store additionally admits one solve at a time.
type TreeSolver struct {
	st      front.Store
	tree    *assembly.Tree
	kind    sparse.Type
	kern    dense.Kernel
	workers int
	tr      *trace.Tracer    // nil when untraced
	faults  *faults.Injector // nil when unarmed

	mu   sync.Mutex
	prep bool
	post []int
	rev  []int
	maxF int
	// Forward-pass DAG: per-row postorder chains, deduplicated.
	fwdIndeg []int32
	fwdSuccs [][]int32
	// Backward-pass DAG: parent-first.
	bwdIndeg []int32
	bwdSuccs [][]int32
}

// NewTreeSolver builds a reusable tree-parallel solve context. workers
// < 1 is treated as 1; kern selects the triangular-solve kernel family
// (dense.KernelDefault for the bitwise-reference order).
func NewTreeSolver(st front.Store, tree *assembly.Tree, kind sparse.Type, workers int, kern dense.Kernel) *TreeSolver {
	if workers < 1 {
		workers = 1
	}
	return &TreeSolver{st: st, tree: tree, kind: kind, kern: kern, workers: workers}
}

// SetTracer attaches a tracer recording per-node solve spans
// (trace.SpanSolveFwd / trace.SpanSolveBwd, one per front visit) on the
// solve workers' tracks. nil detaches. Factors.Solver wires the
// factorization's tracer through automatically.
func (s *TreeSolver) SetTracer(tr *trace.Tracer) {
	s.mu.Lock()
	s.tr = tr
	s.mu.Unlock()
}

// SetFaults arms deterministic fault injection at the solve's per-front
// visit point (see internal/faults). nil disarms at zero cost.
// Factors.Solver wires the factorization's injector through
// automatically.
func (s *TreeSolver) SetFaults(in *faults.Injector) {
	s.mu.Lock()
	s.faults = in
	s.mu.Unlock()
}

// prepare builds the walk orders and both dependency graphs once.
// Callers hold s.mu.
func (s *TreeSolver) prepare() {
	if s.prep {
		return
	}
	tree := s.tree
	s.post = tree.Postorder()
	s.rev = make([]int, len(s.post))
	for i, ni := range s.post {
		s.rev[len(s.post)-1-i] = ni
	}
	n := tree.Len()
	s.fwdIndeg = make([]int32, n)
	s.fwdSuccs = make([][]int32, n)
	s.bwdIndeg = make([]int32, n)
	s.bwdSuccs = make([][]int32, n)
	lastIn := make([]int32, tree.N) // row -> last front in postorder touching it
	for i := range lastIn {
		lastIn[i] = -1
	}
	edge := make([]int32, n) // dedup stamp: edge[p] == ni+1 iff p->ni exists
	for i := range edge {
		edge[i] = -1
	}
	for _, ni := range s.post {
		nd := &tree.Nodes[ni]
		if f := nd.NFront(); f > s.maxF {
			s.maxF = f
		}
		chain := func(g int) {
			if p := lastIn[g]; p >= 0 && int(p) != ni && edge[p] != int32(ni) {
				edge[p] = int32(ni)
				s.fwdSuccs[p] = append(s.fwdSuccs[p], int32(ni))
				s.fwdIndeg[ni]++
			}
			lastIn[g] = int32(ni)
		}
		for g := nd.Begin; g < nd.End; g++ {
			chain(g)
		}
		for _, g := range nd.Rows {
			chain(g)
		}
		if nd.Parent >= 0 {
			s.bwdIndeg[ni] = 1
			s.bwdSuccs[nd.Parent] = append(s.bwdSuccs[nd.Parent], int32(ni))
		}
	}
	s.prep = true
}

// Solve solves a single right-hand side in the permuted index space.
func (s *TreeSolver) Solve(b []float64) ([]float64, error) { return s.SolveMulti(b, 1) }

// SolveMulti solves nrhs systems (b is n x nrhs row-major, not
// modified) with one forward and one backward pass over the factor
// store, fronts claimed tree-parallel by the solver's workers. The
// result is bitwise identical to the sequential front.Solver whatever
// the worker count (with dense.KernelDefault, also bitwise identical to
// a single-RHS solve per column).
func (s *TreeSolver) SolveMulti(b []float64, nrhs int) ([]float64, error) {
	return s.SolveMultiCtx(context.Background(), b, nrhs)
}

// SolveMultiCtx is SolveMulti under a context: cancellation drains both
// pass pools at the next front boundary and propagates to a bound
// fault-tolerant store, so its prefetcher stops too. A Background
// context costs nothing.
func (s *TreeSolver) SolveMultiCtx(ctx context.Context, b []float64, nrhs int) ([]float64, error) {
	if s.st == nil {
		return nil, fmt.Errorf("parmf: nil factor store")
	}
	if err := front.CheckRHS(s.tree.N, b, nrhs); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("parmf: solve cancelled: %w", context.Cause(ctx))
	}
	s.prepare()
	s.tr.EnsureWorkers(s.workers)
	if err := s.st.BeginSolve(); err != nil {
		return nil, err
	}
	defer s.st.EndSolve()
	front.BindStoreContext(ctx, s.st)
	x := append([]float64(nil), b...)
	s.st.Prefetch(s.post)
	err := s.runPass(ctx, s.post, nrhs, trace.SpanSolveFwd, s.fwdIndeg, s.fwdSuccs, func(ni int, nf *front.NodeFactor, w []float64) {
		front.ForwardNodePanel(x, nf, s.kind, nrhs, w, s.kern)
	})
	if err != nil {
		return nil, err
	}
	s.st.Prefetch(s.rev)
	err = s.runPass(ctx, s.rev, nrhs, trace.SpanSolveBwd, s.bwdIndeg, s.bwdSuccs, func(ni int, nf *front.NodeFactor, w []float64) {
		front.BackwardNodePanel(x, nf, s.kind, nrhs, w, s.kern)
	})
	if err != nil {
		return nil, err
	}
	return x, nil
}

// SolveOriginal solves a single right-hand side given in the original
// (pre-permutation) ordering.
func (s *TreeSolver) SolveOriginal(b []float64) ([]float64, error) {
	return s.SolveOriginalMulti(b, 1)
}

// SolveOriginalMulti is SolveMulti for right-hand sides in the original
// ordering, returning x in the original ordering.
func (s *TreeSolver) SolveOriginalMulti(b []float64, nrhs int) ([]float64, error) {
	return s.SolveOriginalMultiCtx(context.Background(), b, nrhs)
}

// SolveOriginalMultiCtx is SolveOriginalMulti under a context.
func (s *TreeSolver) SolveOriginalMultiCtx(ctx context.Context, b []float64, nrhs int) ([]float64, error) {
	if err := front.CheckRHS(s.tree.N, b, nrhs); err != nil {
		return nil, err
	}
	perm := s.tree.Perm
	if perm == nil {
		return s.SolveMultiCtx(ctx, b, nrhs)
	}
	px, err := s.SolveMultiCtx(ctx, front.PermuteRHS(perm, b, nrhs), nrhs)
	if err != nil {
		return nil, err
	}
	return front.UnpermuteRHS(perm, px, nrhs), nil
}

// runPass executes one substitution pass: workers claim indegree-zero
// fronts from a shared ready stack (seeded in reverse walk order so the
// top is the walk's next front), run the node's panel outside the lock
// with a per-worker scratch, and finish under the lock, releasing
// successors. The claim/finish mutex handoff is the happens-before edge
// between a row's consecutive touchers.
func (s *TreeSolver) runPass(ctx context.Context, order []int, nrhs int, span string, indeg []int32, succs [][]int32, apply func(ni int, nf *front.NodeFactor, w []float64)) error {
	deg := append([]int32(nil), indeg...)
	ready := make([]int, 0, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		if ni := order[i]; deg[ni] == 0 {
			ready = append(ready, ni)
		}
	}
	var (
		mu        sync.Mutex
		cond      = sync.NewCond(&mu)
		remaining = len(order)
		firstErr  error
		wg        sync.WaitGroup
	)
	if ctx.Done() != nil {
		// Same shape as the factorization pool's watcher: poison the pass
		// error and wake cond.Wait-blocked workers so the pool drains at
		// the next front boundary.
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-ctx.Done():
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("parmf: solve cancelled (%s pass): %w", span, context.Cause(ctx))
				}
				cond.Broadcast()
				mu.Unlock()
			case <-stop:
			}
		}()
	}
	scratch := s.maxF * nrhs
	workers := s.workers
	if workers > remaining && remaining > 0 {
		workers = remaining
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			buf := make([]float64, scratch)
			mu.Lock()
			for {
				for firstErr == nil && remaining > 0 && len(ready) == 0 {
					cond.Wait()
				}
				if firstErr != nil || remaining == 0 {
					mu.Unlock()
					return
				}
				ni := ready[len(ready)-1]
				ready = ready[:len(ready)-1]
				mu.Unlock()

				// The panel runs unlocked with panic containment, mirroring
				// the factorization workers: a panicking front becomes a
				// descriptive error and the pass drains cleanly.
				s.tr.Begin(id, span, ni)
				err := func() (err error) {
					defer func() {
						if p := recover(); p != nil {
							err = fmt.Errorf("parmf: solve worker %d: panic at node %d (%s pass): %v", id, ni, span, p)
						}
					}()
					if err := s.faults.Check(faults.Solve, ni); err != nil {
						return fmt.Errorf("parmf: solve node %d: %w", ni, err)
					}
					nf, err := s.st.Fetch(ni)
					if err != nil {
						return err
					}
					apply(ni, nf, buf)
					s.st.Release(ni)
					return nil
				}()
				s.tr.End(id, span, ni)

				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				remaining--
				for _, succ := range succs[ni] {
					deg[succ]--
					if deg[succ] == 0 {
						ready = append(ready, int(succ))
					}
				}
				cond.Broadcast()
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}
