package front

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/assembly"
	"repro/internal/dense"
	"repro/internal/sparse"
)

// chainFactors builds a k-front chain tree (each node one pivot, CB row
// = next pivot) with well-conditioned Cholesky blocks — many small
// fronts, the shape that made the per-front gather allocations of the
// old scalar solve O(fronts) per pass.
func chainFactors(k int) (*assembly.Tree, *Factors) {
	nodes := make([]assembly.Node, k)
	for i := range nodes {
		nodes[i] = assembly.Node{ID: i, Parent: i + 1, Begin: i, End: i + 1, Rows: []int{i + 1}}
		if i > 0 {
			nodes[i].Children = []int{i - 1}
		}
	}
	nodes[k-1].Parent = -1
	nodes[k-1].Rows = nil
	tree := &assembly.Tree{Nodes: nodes, Roots: []int{k - 1}, N: k, Kind: sparse.Symmetric}
	fs := NewFactors(tree, sparse.Symmetric)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < k; i++ {
		var L *dense.Matrix
		if i == k-1 {
			L = mat([][]float64{{2 + rng.Float64()}})
			fs.SetNode(i, NodeFactor{Rows: []int{i}, NPiv: 1, L: L})
			continue
		}
		L = mat([][]float64{{2 + rng.Float64()}, {rng.NormFloat64()}})
		fs.SetNode(i, NodeFactor{Rows: []int{i, i + 1}, NPiv: 1, L: L})
	}
	return tree, fs
}

// TestSolveMultiMatchesRepeatedSingle pins the tentpole contract at the
// front layer: a blocked nrhs-column solve equals nrhs independent
// single-RHS solves bit for bit (default kernels replay the scalar
// operation order per column).
func TestSolveMultiMatchesRepeatedSingle(t *testing.T) {
	_, fs := chainFactors(40)
	const n, nrhs = 40, 5
	rng := rand.New(rand.NewSource(3))
	b := make([]float64, n*nrhs)
	for i := range b {
		if rng.Intn(5) == 0 {
			continue // exercise the forward zero-skip
		}
		b[i] = rng.NormFloat64()
	}
	x, err := fs.SolveMulti(b, nrhs)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < nrhs; c++ {
		bc := make([]float64, n)
		for i := 0; i < n; i++ {
			bc[i] = b[i*nrhs+c]
		}
		xc, err := fs.Solve(bc)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if math.Float64bits(x[i*nrhs+c]) != math.Float64bits(xc[i]) {
				t.Fatalf("col %d row %d: multi %v != single %v", c, i, x[i*nrhs+c], xc[i])
			}
		}
	}
}

// TestSolverAllocs pins the allocation profile of a warm Solver: the old
// walk allocated two gathers per front per pass plus the reverse-order
// slice every call; the Solver must allocate only the result block
// (O(1) allocations however many fronts).
func TestSolverAllocs(t *testing.T) {
	tree, fs := chainFactors(200)
	s := NewSolver(fs, tree, sparse.Symmetric, dense.KernelDefault)
	b := make([]float64, 200*2)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	if _, err := s.SolveMulti(b, 2); err != nil { // warm the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := s.SolveMulti(b, 2); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("warm solve allocates %.1f objects/op over 200 fronts; want <= 2 (result only, no per-front churn)", allocs)
	}
}

// TestSolveEntryPointValidation audits every solve entry point of the
// package: wrong-length, nil and zero-nrhs right-hand sides must come
// back as descriptive errors from each path, never reach a gather loop.
func TestSolveEntryPointValidation(t *testing.T) {
	tree, fs := chainFactors(4)
	s := NewSolver(fs, tree, sparse.Symmetric, dense.KernelDefault)
	good := make([]float64, 4)
	cases := []struct {
		name string
		run  func() error
	}{
		{"Factors.Solve short", func() error { _, err := fs.Solve(good[:3]); return err }},
		{"Factors.Solve nil", func() error { _, err := fs.Solve(nil); return err }},
		{"Factors.SolveMulti zero nrhs", func() error { _, err := fs.SolveMulti(good, 0); return err }},
		{"Factors.SolveMulti bad len", func() error { _, err := fs.SolveMulti(good, 3); return err }},
		{"Factors.SolveOriginal short", func() error { _, err := fs.SolveOriginal(good[:1]); return err }},
		{"Factors.SolveOriginalMulti nil", func() error { _, err := fs.SolveOriginalMulti(nil, 2); return err }},
		{"Solver.SolveMulti negative nrhs", func() error { _, err := s.SolveMulti(good, -1); return err }},
		{"Solver.SolveOriginalMulti bad len", func() error { _, err := s.SolveOriginalMulti(good[:2], 1); return err }},
		{"SolveStore nil store", func() error { _, err := SolveStore(nil, tree, sparse.Symmetric, good); return err }},
		{"SolveStore short", func() error { _, err := SolveStore(fs, tree, sparse.Symmetric, good[:2]); return err }},
		{"SolveStoreMulti zero nrhs", func() error { _, err := SolveStoreMulti(fs, tree, sparse.Symmetric, good, 0); return err }},
		{"SolveOriginalStore long", func() error {
			_, err := SolveOriginalStore(fs, tree, sparse.Symmetric, make([]float64, 9))
			return err
		}},
		{"SolveOriginalStoreMulti nil store", func() error {
			_, err := SolveOriginalStoreMulti(nil, tree, sparse.Symmetric, good, 1)
			return err
		}},
		{"SolveOriginalStoreMulti nil rhs", func() error {
			_, err := SolveOriginalStoreMulti(fs, tree, sparse.Symmetric, nil, 1)
			return err
		}},
	}
	for _, tc := range cases {
		if err := tc.run(); err == nil {
			t.Errorf("%s: want descriptive error, got nil", tc.name)
		}
	}
}
