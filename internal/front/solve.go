package front

import (
	"fmt"

	"repro/internal/assembly"
	"repro/internal/dense"
	"repro/internal/sparse"
)

// NodeFactor holds the factor pieces of one front.
type NodeFactor struct {
	Rows []int // global front indices: pivot columns then CB rows
	NPiv int
	L    *dense.Matrix // f x npiv lower trapezoid (diag: Cholesky=L(k,k), LU=1 implicit)
	U    *dense.Matrix // npiv x f upper trapezoid (LU only, holds U diag)
}

// Factors is the completed numeric factorization: per-node factor pieces
// plus the postorder the solves walk. Both executors produce one.
type Factors struct {
	Tree *assembly.Tree
	Kind sparse.Type
	N    int

	nodes []NodeFactor
	post  []int
}

// NewFactors allocates an empty factor container for the tree. SetNode may
// then be called concurrently for distinct nodes.
func NewFactors(tree *assembly.Tree, kind sparse.Type) *Factors {
	return &Factors{
		Tree:  tree,
		Kind:  kind,
		N:     tree.N,
		nodes: make([]NodeFactor, tree.Len()),
		post:  tree.Postorder(),
	}
}

// SetNode stores the factor pieces of node ni. Distinct nodes may be set
// from different goroutines without synchronization.
func (f *Factors) SetNode(ni int, nf NodeFactor) { f.nodes[ni] = nf }

// Node returns the factor pieces of node ni.
func (f *Factors) Node(ni int) *NodeFactor { return &f.nodes[ni] }

// Solve solves A x = b for the permuted system (b and the result are in the
// permuted index space; see SolveOriginal for the original ordering).
// b is not modified.
func (f *Factors) Solve(b []float64) ([]float64, error) {
	if len(b) != f.N {
		return nil, fmt.Errorf("front: rhs length %d, want %d", len(b), f.N)
	}
	x := append([]float64(nil), b...)
	// Forward: y = L^{-1} b, walking fronts in postorder.
	for _, ni := range f.post {
		nf := &f.nodes[ni]
		xl := gather(x, nf.Rows)
		for k := 0; k < nf.NPiv; k++ {
			if f.Kind == sparse.Symmetric {
				xl[k] /= nf.L.At(k, k)
			}
			v := xl[k]
			if v == 0 {
				continue
			}
			for i := k + 1; i < len(nf.Rows); i++ {
				xl[i] -= nf.L.At(i, k) * v
			}
		}
		scatter(x, nf.Rows, xl)
	}
	// Backward: x = U^{-1} y (or L^{-T} y), reverse postorder.
	for p := len(f.post) - 1; p >= 0; p-- {
		nf := &f.nodes[f.post[p]]
		xl := gather(x, nf.Rows)
		for k := nf.NPiv - 1; k >= 0; k-- {
			s := xl[k]
			if f.Kind == sparse.Symmetric {
				// Row k of L^T = column k of L.
				for i := k + 1; i < len(nf.Rows); i++ {
					s -= nf.L.At(i, k) * xl[i]
				}
				xl[k] = s / nf.L.At(k, k)
			} else {
				for j := k + 1; j < len(nf.Rows); j++ {
					s -= nf.U.At(k, j) * xl[j]
				}
				xl[k] = s / nf.U.At(k, k)
			}
		}
		scatter(x, nf.Rows, xl)
	}
	return x, nil
}

// SolveOriginal solves for a right-hand side given in the *original*
// (pre-permutation) ordering, returning x in the original ordering.
func (f *Factors) SolveOriginal(b []float64) ([]float64, error) {
	if len(b) != f.N {
		return nil, fmt.Errorf("front: rhs length %d, want %d", len(b), f.N)
	}
	perm := f.Tree.Perm
	if perm == nil {
		return f.Solve(b)
	}
	pb := make([]float64, len(b))
	for newI, oldI := range perm {
		pb[newI] = b[oldI]
	}
	px, err := f.Solve(pb)
	if err != nil {
		return nil, err
	}
	x := make([]float64, len(b))
	for newI, oldI := range perm {
		x[oldI] = px[newI]
	}
	return x, nil
}

func gather(x []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for k, g := range idx {
		out[k] = x[g]
	}
	return out
}

func scatter(x []float64, idx []int, v []float64) {
	for k, g := range idx {
		x[g] = v[k]
	}
}
