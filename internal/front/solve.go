package front

import (
	"fmt"
	"sync"

	"repro/internal/assembly"
	"repro/internal/dense"
	"repro/internal/memory"
	"repro/internal/sparse"
)

// NodeFactor holds the factor pieces of one front.
type NodeFactor struct {
	Rows []int // global front indices: pivot columns then CB rows
	NPiv int
	L    *dense.Matrix // f x npiv lower trapezoid (diag: Cholesky=L(k,k), LU=1 implicit)
	U    *dense.Matrix // npiv x f upper trapezoid (LU only, holds U diag)
}

// Factors is the in-memory factor Store: per-node factor pieces held in
// one slice. Both executors produce one unless an external Store (e.g.
// the out-of-core file store) is supplied.
type Factors struct {
	Tree *assembly.Tree
	Kind sparse.Type
	N    int

	nodes []NodeFactor
	meter *memory.Meter

	solveOnce sync.Once
	solver    *Solver
}

// NewFactors allocates an empty factor container for the tree. Put (or
// SetNode) may then be called concurrently for distinct nodes.
func NewFactors(tree *assembly.Tree, kind sparse.Type) *Factors {
	return &Factors{
		Tree:  tree,
		Kind:  kind,
		N:     tree.N,
		nodes: make([]NodeFactor, tree.Len()),
	}
}

// SetNode stores the factor pieces of node ni without touching the
// resident meter. Distinct nodes may be set from different goroutines
// without synchronization.
func (f *Factors) SetNode(ni int, nf NodeFactor) { f.nodes[ni] = nf }

// Node returns the factor pieces of node ni.
func (f *Factors) Node(ni int) *NodeFactor { return &f.nodes[ni] }

// solve returns the lazily built reusable solver over this container.
func (f *Factors) solve() *Solver {
	f.solveOnce.Do(func() { f.solver = NewSolver(f, f.Tree, f.Kind, dense.KernelDefault) })
	return f.solver
}

// Solve solves A x = b for the permuted system (b and the result are in the
// permuted index space; see SolveOriginal for the original ordering).
// b is not modified.
func (f *Factors) Solve(b []float64) ([]float64, error) {
	return f.solve().SolveMulti(b, 1)
}

// SolveMulti solves nrhs systems at once: b is n x nrhs row-major (row i
// holds the i-th entry of every right-hand side) and the result has the
// same shape. Each column carries the exact bits of a single-RHS Solve.
func (f *Factors) SolveMulti(b []float64, nrhs int) ([]float64, error) {
	return f.solve().SolveMulti(b, nrhs)
}

// SolveOriginal solves for a right-hand side given in the *original*
// (pre-permutation) ordering, returning x in the original ordering.
func (f *Factors) SolveOriginal(b []float64) ([]float64, error) {
	return f.solve().SolveOriginalMulti(b, 1)
}

// SolveOriginalMulti is SolveMulti for right-hand sides given in the
// original (pre-permutation) ordering.
func (f *Factors) SolveOriginalMulti(b []float64, nrhs int) ([]float64, error) {
	return f.solve().SolveOriginalMulti(b, nrhs)
}

// Solver is a reusable solve context over one completed factorization:
// it caches the postorder walks and one scratch panel sized to the
// largest front, so a solve allocates nothing per front — only the
// result block. A Solver serializes its own solves (the scratch is
// shared); create one per goroutine for concurrent solving against an
// in-memory store (a file store allows one solve at a time regardless).
type Solver struct {
	st   Store
	tree *assembly.Tree
	kind sparse.Type
	kern dense.Kernel

	mu      sync.Mutex
	post    []int
	rev     []int
	maxF    int
	scratch []float64
}

// NewSolver builds a solve context for the completed factorization in
// st. kern selects the triangular-solve kernel family (KernelDefault
// replays the reference operation order bit-for-bit).
func NewSolver(st Store, tree *assembly.Tree, kind sparse.Type, kern dense.Kernel) *Solver {
	s := &Solver{st: st, tree: tree, kind: kind, kern: kern}
	s.post = tree.Postorder()
	s.rev = make([]int, len(s.post))
	for i, ni := range s.post {
		s.rev[len(s.post)-1-i] = ni
	}
	for i := range tree.Nodes {
		if f := tree.Nodes[i].NFront(); f > s.maxF {
			s.maxF = f
		}
	}
	return s
}

// panel returns the scratch panel for nrhs columns, growing it at most
// once per distinct width.
func (s *Solver) panel(nrhs int) []float64 {
	need := s.maxF * nrhs
	if cap(s.scratch) < need {
		s.scratch = make([]float64, need)
	}
	return s.scratch[:need]
}

// Solve solves a single right-hand side in the permuted index space.
func (s *Solver) Solve(b []float64) ([]float64, error) { return s.SolveMulti(b, 1) }

// SolveMulti solves nrhs systems in one forward and one backward pass
// over the factor store. b is n x nrhs row-major and is not modified.
func (s *Solver) SolveMulti(b []float64, nrhs int) ([]float64, error) {
	if s.st == nil {
		return nil, fmt.Errorf("front: nil factor store")
	}
	if err := CheckRHS(s.tree.N, b, nrhs); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.st.BeginSolve(); err != nil {
		return nil, err
	}
	defer s.st.EndSolve()
	x := append([]float64(nil), b...)
	w := s.panel(nrhs)
	// Forward: y = L^{-1} b, fronts in postorder.
	s.st.Prefetch(s.post)
	for _, ni := range s.post {
		nf, err := s.st.Fetch(ni)
		if err != nil {
			return nil, err
		}
		ForwardNodePanel(x, nf, s.kind, nrhs, w, s.kern)
		s.st.Release(ni)
	}
	// Backward: x = U^{-1} y (or L^{-T} y), reverse postorder.
	s.st.Prefetch(s.rev)
	for _, ni := range s.rev {
		nf, err := s.st.Fetch(ni)
		if err != nil {
			return nil, err
		}
		BackwardNodePanel(x, nf, s.kind, nrhs, w, s.kern)
		s.st.Release(ni)
	}
	return x, nil
}

// SolveOriginal solves a single right-hand side given in the original
// (pre-permutation) ordering.
func (s *Solver) SolveOriginal(b []float64) ([]float64, error) {
	return s.SolveOriginalMulti(b, 1)
}

// SolveOriginalMulti is SolveMulti for right-hand sides in the original
// ordering, returning x in the original ordering.
func (s *Solver) SolveOriginalMulti(b []float64, nrhs int) ([]float64, error) {
	if err := CheckRHS(s.tree.N, b, nrhs); err != nil {
		return nil, err
	}
	perm := s.tree.Perm
	if perm == nil {
		return s.SolveMulti(b, nrhs)
	}
	px, err := s.SolveMulti(PermuteRHS(perm, b, nrhs), nrhs)
	if err != nil {
		return nil, err
	}
	return UnpermuteRHS(perm, px, nrhs), nil
}

// CheckRHS validates a right-hand-side block against the system order:
// nrhs must be positive and b must hold exactly n*nrhs values (row-major
// n x nrhs). Every solve entry point runs it so a malformed block is a
// descriptive error, never a panic inside a gather loop.
func CheckRHS(n int, b []float64, nrhs int) error {
	if nrhs < 1 {
		return fmt.Errorf("front: nrhs must be >= 1 (got %d)", nrhs)
	}
	if b == nil {
		return fmt.Errorf("front: nil rhs block (want n*nrhs = %d*%d = %d values)", n, nrhs, n*nrhs)
	}
	if len(b) != n*nrhs {
		return fmt.Errorf("front: rhs block length %d, want n*nrhs = %d*%d = %d", len(b), n, nrhs, n*nrhs)
	}
	return nil
}

// PermuteRHS maps a row-major n x nrhs block from the original to the
// permuted index space (perm[newI] = oldI).
func PermuteRHS(perm []int, b []float64, nrhs int) []float64 {
	pb := make([]float64, len(b))
	for newI, oldI := range perm {
		copy(pb[newI*nrhs:(newI+1)*nrhs], b[oldI*nrhs:(oldI+1)*nrhs])
	}
	return pb
}

// UnpermuteRHS maps a solved block back to the original index space.
func UnpermuteRHS(perm []int, px []float64, nrhs int) []float64 {
	x := make([]float64, len(px))
	for newI, oldI := range perm {
		copy(x[oldI*nrhs:(oldI+1)*nrhs], px[newI*nrhs:(newI+1)*nrhs])
	}
	return x
}

// SolveStore solves A x = b in the permuted index space by streaming the
// factor blocks of the completed factorization out of st: the forward
// substitution walks fronts in postorder, the backward substitution in
// reverse postorder, each pass advising the store of its access order so
// a file-backed store can prefetch sequentially. b is not modified.
// Callers solving repeatedly should hold a Solver instead (this rebuilds
// the walk orders and scratch every call).
func SolveStore(st Store, tree *assembly.Tree, kind sparse.Type, b []float64) ([]float64, error) {
	return SolveStoreMulti(st, tree, kind, b, 1)
}

// SolveStoreMulti is SolveStore for an n x nrhs row-major block of
// right-hand sides, solved with one forward and one backward store pass
// total — a file-backed store streams the factors exactly twice however
// many right-hand sides ride along. Each column carries the exact bits
// of a single-RHS SolveStore.
func SolveStoreMulti(st Store, tree *assembly.Tree, kind sparse.Type, b []float64, nrhs int) ([]float64, error) {
	if st == nil {
		return nil, fmt.Errorf("front: nil factor store")
	}
	return NewSolver(st, tree, kind, dense.KernelDefault).SolveMulti(b, nrhs)
}

// SolveOriginalStore is SolveStore for a right-hand side given in the
// *original* (pre-permutation) ordering, returning x in the original
// ordering.
func SolveOriginalStore(st Store, tree *assembly.Tree, kind sparse.Type, b []float64) ([]float64, error) {
	return SolveOriginalStoreMulti(st, tree, kind, b, 1)
}

// SolveOriginalStoreMulti is SolveStoreMulti for right-hand sides in the
// original ordering.
func SolveOriginalStoreMulti(st Store, tree *assembly.Tree, kind sparse.Type, b []float64, nrhs int) ([]float64, error) {
	if st == nil {
		return nil, fmt.Errorf("front: nil factor store")
	}
	return NewSolver(st, tree, kind, dense.KernelDefault).SolveOriginalMulti(b, nrhs)
}

// ForwardNodePanel applies one front's part of the forward substitution
// to the n x nrhs row-major block x: gather the front's rows into the
// scratch panel w (at least len(nf.Rows)*nrhs), run the blocked kernel,
// scatter every row back. With dense.KernelDefault the per-column
// operation order is exactly the historical scalar solve's.
func ForwardNodePanel(x []float64, nf *NodeFactor, kind sparse.Type, nrhs int, w []float64, kern dense.Kernel) {
	f := len(nf.Rows)
	w = w[:f*nrhs]
	gatherPanel(x, nf.Rows, nrhs, w)
	W := dense.Matrix{R: f, C: nrhs, A: w}
	if kind == sparse.Symmetric {
		kern.SolveForwardCholesky(nf.L, nf.NPiv, &W)
	} else {
		kern.SolveForwardLU(nf.L, nf.NPiv, &W)
	}
	scatterPanel(x, nf.Rows, nrhs, w)
}

// BackwardNodePanel applies one front's part of the backward
// substitution. Only the npiv pivot rows are scattered back: the
// trailing CB rows are read-only inputs of the backward pass (they are
// pivot rows of ancestors, already final), so the tree-parallel solve
// can run sibling fronts concurrently without write overlap.
func BackwardNodePanel(x []float64, nf *NodeFactor, kind sparse.Type, nrhs int, w []float64, kern dense.Kernel) {
	f := len(nf.Rows)
	w = w[:f*nrhs]
	gatherPanel(x, nf.Rows, nrhs, w)
	W := dense.Matrix{R: f, C: nrhs, A: w}
	if kind == sparse.Symmetric {
		kern.SolveBackwardCholesky(nf.L, nf.NPiv, &W)
	} else {
		kern.SolveBackwardLU(nf.U, nf.NPiv, &W)
	}
	scatterPanel(x, nf.Rows[:nf.NPiv], nrhs, w)
}

func gatherPanel(x []float64, rows []int, nrhs int, w []float64) {
	if nrhs == 1 {
		for k, g := range rows {
			w[k] = x[g]
		}
		return
	}
	for k, g := range rows {
		copy(w[k*nrhs:(k+1)*nrhs], x[g*nrhs:(g+1)*nrhs])
	}
}

func scatterPanel(x []float64, rows []int, nrhs int, w []float64) {
	if nrhs == 1 {
		for k, g := range rows {
			x[g] = w[k]
		}
		return
	}
	for k, g := range rows {
		copy(x[g*nrhs:(g+1)*nrhs], w[k*nrhs:(k+1)*nrhs])
	}
}
