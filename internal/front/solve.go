package front

import (
	"fmt"

	"repro/internal/assembly"
	"repro/internal/dense"
	"repro/internal/memory"
	"repro/internal/sparse"
)

// NodeFactor holds the factor pieces of one front.
type NodeFactor struct {
	Rows []int // global front indices: pivot columns then CB rows
	NPiv int
	L    *dense.Matrix // f x npiv lower trapezoid (diag: Cholesky=L(k,k), LU=1 implicit)
	U    *dense.Matrix // npiv x f upper trapezoid (LU only, holds U diag)
}

// Factors is the in-memory factor Store: per-node factor pieces held in
// one slice. Both executors produce one unless an external Store (e.g.
// the out-of-core file store) is supplied.
type Factors struct {
	Tree *assembly.Tree
	Kind sparse.Type
	N    int

	nodes []NodeFactor
	meter *memory.Meter
}

// NewFactors allocates an empty factor container for the tree. Put (or
// SetNode) may then be called concurrently for distinct nodes.
func NewFactors(tree *assembly.Tree, kind sparse.Type) *Factors {
	return &Factors{
		Tree:  tree,
		Kind:  kind,
		N:     tree.N,
		nodes: make([]NodeFactor, tree.Len()),
	}
}

// SetNode stores the factor pieces of node ni without touching the
// resident meter. Distinct nodes may be set from different goroutines
// without synchronization.
func (f *Factors) SetNode(ni int, nf NodeFactor) { f.nodes[ni] = nf }

// Node returns the factor pieces of node ni.
func (f *Factors) Node(ni int) *NodeFactor { return &f.nodes[ni] }

// Solve solves A x = b for the permuted system (b and the result are in the
// permuted index space; see SolveOriginal for the original ordering).
// b is not modified.
func (f *Factors) Solve(b []float64) ([]float64, error) {
	if len(b) != f.N {
		return nil, fmt.Errorf("front: rhs length %d, want %d", len(b), f.N)
	}
	return SolveStore(f, f.Tree, f.Kind, b)
}

// SolveOriginal solves for a right-hand side given in the *original*
// (pre-permutation) ordering, returning x in the original ordering.
func (f *Factors) SolveOriginal(b []float64) ([]float64, error) {
	return SolveOriginalStore(f, f.Tree, f.Kind, b)
}

// SolveStore solves A x = b in the permuted index space by streaming the
// factor blocks of the completed factorization out of st: the forward
// substitution walks fronts in postorder, the backward substitution in
// reverse postorder, each pass advising the store of its access order so
// a file-backed store can prefetch sequentially. b is not modified.
func SolveStore(st Store, tree *assembly.Tree, kind sparse.Type, b []float64) ([]float64, error) {
	if st == nil {
		return nil, fmt.Errorf("front: nil factor store")
	}
	if len(b) != tree.N {
		return nil, fmt.Errorf("front: rhs length %d, want %d", len(b), tree.N)
	}
	x := append([]float64(nil), b...)
	post := tree.Postorder()
	// Forward: y = L^{-1} b.
	st.Prefetch(post)
	for _, ni := range post {
		nf, err := st.Fetch(ni)
		if err != nil {
			return nil, err
		}
		forwardNode(x, nf, kind)
		st.Release(ni)
	}
	// Backward: x = U^{-1} y (or L^{-T} y).
	rev := make([]int, len(post))
	for i, ni := range post {
		rev[len(post)-1-i] = ni
	}
	st.Prefetch(rev)
	for _, ni := range rev {
		nf, err := st.Fetch(ni)
		if err != nil {
			return nil, err
		}
		backwardNode(x, nf, kind)
		st.Release(ni)
	}
	return x, nil
}

// SolveOriginalStore is SolveStore for a right-hand side given in the
// *original* (pre-permutation) ordering, returning x in the original
// ordering.
func SolveOriginalStore(st Store, tree *assembly.Tree, kind sparse.Type, b []float64) ([]float64, error) {
	if len(b) != tree.N {
		return nil, fmt.Errorf("front: rhs length %d, want %d", len(b), tree.N)
	}
	perm := tree.Perm
	if perm == nil {
		return SolveStore(st, tree, kind, b)
	}
	pb := make([]float64, len(b))
	for newI, oldI := range perm {
		pb[newI] = b[oldI]
	}
	px, err := SolveStore(st, tree, kind, pb)
	if err != nil {
		return nil, err
	}
	x := make([]float64, len(b))
	for newI, oldI := range perm {
		x[oldI] = px[newI]
	}
	return x, nil
}

// forwardNode applies one front's part of the forward substitution.
func forwardNode(x []float64, nf *NodeFactor, kind sparse.Type) {
	xl := gather(x, nf.Rows)
	for k := 0; k < nf.NPiv; k++ {
		if kind == sparse.Symmetric {
			xl[k] /= nf.L.At(k, k)
		}
		v := xl[k]
		if v == 0 {
			continue
		}
		for i := k + 1; i < len(nf.Rows); i++ {
			xl[i] -= nf.L.At(i, k) * v
		}
	}
	scatter(x, nf.Rows, xl)
}

// backwardNode applies one front's part of the backward substitution.
func backwardNode(x []float64, nf *NodeFactor, kind sparse.Type) {
	xl := gather(x, nf.Rows)
	for k := nf.NPiv - 1; k >= 0; k-- {
		s := xl[k]
		if kind == sparse.Symmetric {
			// Row k of L^T = column k of L.
			for i := k + 1; i < len(nf.Rows); i++ {
				s -= nf.L.At(i, k) * xl[i]
			}
			xl[k] = s / nf.L.At(k, k)
		} else {
			for j := k + 1; j < len(nf.Rows); j++ {
				s -= nf.U.At(k, j) * xl[j]
			}
			xl[k] = s / nf.U.At(k, k)
		}
	}
	scatter(x, nf.Rows, xl)
}

func gather(x []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for k, g := range idx {
		out[k] = x[g]
	}
	return out
}

func scatter(x []float64, idx []int, v []float64) {
	for k, g := range idx {
		x[g] = v[k]
	}
}
