package front

import (
	"math/rand"
	"testing"

	"repro/internal/dense"
	"repro/internal/sparse"
)

// TestArenaZeroesRecycledSlabs is the stale-value guarantee: a matrix
// drawn from the arena is all zeros even when its slab carried another
// front's values a moment ago.
func TestArenaZeroesRecycledSlabs(t *testing.T) {
	a := NewArena()
	m := a.Matrix(7, 7)
	for i := range m.A {
		m.A[i] = float64(i) + 1
	}
	a.Free(m)
	n := a.Matrix(6, 8) // same size class (33..64 entries), different shape
	if n.R != 6 || n.C != 8 || len(n.A) != 48 {
		t.Fatalf("recycled matrix shape %dx%d len %d", n.R, n.C, len(n.A))
	}
	for i, v := range n.A {
		if v != 0 {
			t.Fatalf("stale value %g leaked at %d", v, i)
		}
	}
	if gets, hits := a.Stats(); gets != 2 || hits != 1 {
		t.Fatalf("stats gets=%d hits=%d, want 2/1", gets, hits)
	}
}

// TestArenaSizeClasses checks the class arithmetic both ways: slabs are
// allocated at their exact size (no physical memory beyond the metered
// entries), recycle for same-size requests, and never serve a request
// they cannot hold — a class mixes capacities and Matrix fit-checks.
func TestArenaSizeClasses(t *testing.T) {
	a := NewArena()
	for _, n := range []int{1, 2, 3, 15, 16, 17, 100} {
		m := a.Matrix(n, n)
		if len(m.A) != n*n || cap(m.A) != n*n {
			t.Fatalf("len %d cap %d for %dx%d (want exact)", len(m.A), cap(m.A), n, n)
		}
		a.Free(m)
		again := a.Matrix(n, n) // same size must recycle
		if cap(again.A) != n*n {
			t.Fatalf("same-size request did not recycle: cap %d for %d", cap(again.A), n*n)
		}
	}
	// A slab cannot serve a larger request of the same class: freeing a
	// 3x3 (class 4) and asking for 4x4 (also class 4) must allocate.
	a2 := NewArena()
	a2.Free(a2.Matrix(3, 3))
	big := a2.Matrix(4, 4)
	if len(big.A) != 16 || cap(big.A) < 16 {
		t.Fatalf("undersized slab served: len %d cap %d", len(big.A), cap(big.A))
	}
	// A foreign matrix with an odd capacity recycles for anything it fits.
	odd := &dense.Matrix{R: 1, C: 5, A: make([]float64, 5)}
	for i := range odd.A {
		odd.A[i] = 9
	}
	a2.Free(odd)
	got := a2.Matrix(1, 5)
	if cap(got.A) != 5 {
		t.Fatalf("foreign slab not recycled: cap %d", cap(got.A))
	}
	for _, v := range got.A {
		if v != 0 {
			t.Fatal("foreign slab not zeroed")
		}
	}
}

// TestArenaNilSafe pins the no-guards contract for nil arenas.
func TestArenaNilSafe(t *testing.T) {
	var a *Arena
	m := a.Matrix(3, 3)
	if m == nil || len(m.A) != 9 {
		t.Fatal("nil arena did not allocate")
	}
	a.Free(m)
	if g, h := a.Stats(); g != 0 || h != 0 {
		t.Fatal("nil arena stats not zero")
	}
}

// TestArenaSteadyStateHits factors a chain of equal-sized fronts the way
// an executor does (front + CB per step, CB freed one step later) and
// checks the steady state recycles everything: after warm-up every
// request is a hit.
func TestArenaSteadyStateHits(t *testing.T) {
	a := NewArena()
	var prevCB *dense.Matrix
	for step := 0; step < 50; step++ {
		fr := a.Matrix(40, 40)
		if prevCB != nil {
			a.Free(prevCB)
		}
		prevCB = a.Matrix(20, 20)
		a.Free(fr)
	}
	gets, hits := a.Stats()
	if gets-hits > 3 { // at most the warm-up allocations miss
		t.Fatalf("steady state allocates: gets=%d hits=%d", gets, hits)
	}
}

// TestFactorBlocksNeverArenaManaged pins the store-safety invariant the
// out-of-core path depends on: ExtractFactor copies out of the front into
// fresh slices, so recycling the front (and reusing its slab for the next
// front) cannot corrupt a factor block a Store is still spilling.
func TestFactorBlocksNeverArenaManaged(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := NewArena()
	fr := a.Matrix(10, 10)
	for i := range fr.A {
		fr.A[i] = rng.NormFloat64()
	}
	rows := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	nf := ExtractFactor(fr, rows, 4, sparse.Unsymmetric)
	snapL := append([]float64(nil), nf.L.A...)
	snapU := append([]float64(nil), nf.U.A...)

	// Recycle the front and scribble over the reused slab.
	a.Free(fr)
	next := a.Matrix(10, 10)
	for i := range next.A {
		next.A[i] = 1e9
	}
	for i, v := range nf.L.A {
		if v != snapL[i] {
			t.Fatalf("factor L aliased the recycled front at %d", i)
		}
	}
	for i, v := range nf.U.A {
		if v != snapU[i] {
			t.Fatalf("factor U aliased the recycled front at %d", i)
		}
	}
}
