package front

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/assembly"
	"repro/internal/dense"
	"repro/internal/order"
	"repro/internal/sparse"
)

// walk factors the whole tree with the package primitives (the minimal
// sequential executor) and returns the completed Factors.
func walk(t *testing.T, pa *sparse.CSC, tree *assembly.Tree) *Factors {
	t.Helper()
	sh, err := NewShared(pa, tree)
	if err != nil {
		t.Fatal(err)
	}
	asm := NewAssembler(sh)
	fs := NewFactors(tree, pa.Kind)
	cbs := make([]*dense.Matrix, tree.Len())
	for _, ni := range tree.Postorder() {
		nd := &tree.Nodes[ni]
		rows := asm.Begin(ni)
		fr := dense.New(nd.NFront(), nd.NFront())
		if err := asm.Scatter(ni, fr); err != nil {
			t.Fatal(err)
		}
		for _, c := range nd.Children {
			if _, err := asm.ExtendAdd(ni, fr, c, cbs[c]); err != nil {
				t.Fatal(err)
			}
			cbs[c] = nil
		}
		if err := Eliminate(fr, nd.NPiv(), pa.Kind, 1e-12); err != nil {
			t.Fatal(err)
		}
		fs.SetNode(ni, ExtractFactor(fr, rows, nd.NPiv(), pa.Kind))
		cbs[ni] = ExtractCB(nil, fr, nd.NPiv(), nd.NCB(), pa.Kind)
	}
	return fs
}

func solveCheck(t *testing.T, a *sparse.CSC, m order.Method) {
	t.Helper()
	tree, pa := assembly.Analyze(a, assembly.DefaultOptions(m))
	assembly.SortChildrenLiu(tree)
	fs := walk(t, pa, tree)
	x0 := make([]float64, a.N)
	for i := range x0 {
		x0[i] = float64(i%5) - 2
	}
	b := a.MulVec(x0)
	x, err := fs.SolveOriginal(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-x0[i]) > 1e-7*(1+math.Abs(x0[i])) {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], x0[i])
		}
	}
}

func TestWalkSymmetric(t *testing.T) { solveCheck(t, sparse.Grid2D(9, 9), order.AMD) }

func TestWalkUnsymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	solveCheck(t, sparse.Grid3DUnsym(4, 4, 4, rng), order.ND)
}

func TestNewSharedErrors(t *testing.T) {
	a := sparse.Grid2D(4, 4)
	tree, pa := assembly.Analyze(a, assembly.DefaultOptions(order.AMD))
	pat := pa.Clone()
	pat.Val = nil
	if _, err := NewShared(pat, tree); err == nil {
		t.Error("pattern-only matrix accepted")
	}
	small, _ := assembly.Analyze(sparse.Grid2D(2, 2), assembly.DefaultOptions(order.AMD))
	if _, err := NewShared(pa, small); err == nil {
		t.Error("mismatched tree accepted")
	}
}

// TestExtractFullFront checks that a front with npiv == n reproduces the
// plain dense factorization (L, and U for LU).
func TestExtractFullFront(t *testing.T) {
	n := 5
	f := dense.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := 1.0 / float64(1+i+j)
			if i == j {
				v += float64(n)
			}
			f.Set(i, j, v)
		}
	}
	orig := dense.New(n, n)
	copy(orig.A, f.A)
	if err := Eliminate(f, n, sparse.Unsymmetric, 1e-12); err != nil {
		t.Fatal(err)
	}
	rows := []int{0, 1, 2, 3, 4}
	nf := ExtractFactor(f, rows, n, sparse.Unsymmetric)
	if nf.U == nil {
		t.Fatal("LU extraction lost U")
	}
	// Recompose L*U (unit diagonal L) and compare with the original.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k <= i && k <= j; k++ {
				l := nf.L.At(i, k)
				if k == i {
					l = 1
				}
				s += l * nf.U.At(k, j)
			}
			if math.Abs(s-orig.At(i, j)) > 1e-12 {
				t.Fatalf("LU(%d,%d) = %g, want %g", i, j, s, orig.At(i, j))
			}
		}
	}
	if ExtractCB(nil, f, n, 0, sparse.Unsymmetric) != nil {
		t.Error("empty CB not nil")
	}
}
