package front

import (
	"context"

	"repro/internal/assembly"
	"repro/internal/memory"
	"repro/internal/sparse"
)

// Store owns completed factor blocks. The numeric executors hand every
// front's factor pieces to a Store immediately after partial
// factorization instead of keeping them in slices of their own; the
// solve phases stream the blocks back through it. Two implementations
// exist: *Factors in this package keeps everything in memory (the
// classic in-core execution), and ooc.FileStore spills blocks to disk as
// they are produced so only a bounded buffer stays resident.
//
// Put may be called concurrently for distinct nodes (the parallel
// executor's workers each push their own blocks). One solve pass
// sequence may run at a time, bracketed by BeginSolve/EndSolve; within
// it, Prefetch is single-threaded but Fetch/Release of distinct nodes
// may come from different goroutines (the tree-parallel solve's
// workers).
type Store interface {
	// SetMeter installs the executor's resident-memory meter. The store
	// charges it for every block it currently holds in memory (and
	// discharges blocks it no longer does, e.g. once spilled to disk), so
	// the meter's peak is the true resident peak of fronts + CBs + factor
	// blocks. Must be called before the first Put; a nil meter disables
	// the accounting.
	SetMeter(m *memory.Meter)
	// Put transfers ownership of node ni's factor block to the store.
	// entries is the block's size in model units (assembly.FactorEntries);
	// the caller must not use nf afterwards. Put may block while the
	// store's resident buffer is over budget.
	Put(ni int, nf NodeFactor, entries int64) error
	// Flush blocks until every block Put so far is durably owned by the
	// store (for a file-backed store: written to the spill area). The
	// executors call it once at the end of the factorization.
	Flush() error
	// BeginSolve marks the start of one solve's pass sequence
	// (Prefetch/Fetch/Release walks). It returns an error when another
	// solve is already running against the store — overlapping solves
	// would silently cancel each other's prefetch streams — and must be
	// paired with EndSolve.
	BeginSolve() error
	// EndSolve marks the end of the solve begun by the matching
	// BeginSolve, releasing any prefetch state the passes left behind.
	EndSolve()
	// Prefetch advises the store that subsequent Fetch calls will follow
	// order, letting it stream blocks ahead of the solve walk. Advisory:
	// Fetch stays correct in any order.
	Prefetch(order []int)
	// Fetch returns node ni's factor block for the solve phase. The block
	// is valid until the matching Release.
	Fetch(ni int) (*NodeFactor, error)
	// Release ends the caller's use of the block returned by Fetch.
	Release(ni int)
	// Close releases the store's resources (spill files, goroutines).
	Close() error
}

// ContextSetter is the optional Store extension for stores with
// background goroutines (spillers, prefetchers) that should stop
// promptly on cancellation. The executors bind their context to the
// store through BindStoreContext before the first Put.
type ContextSetter interface {
	SetContext(ctx context.Context)
}

// BindStoreContext binds ctx to st when st supports it and ctx can
// actually be cancelled; otherwise it is a no-op, so uncancellable runs
// pay nothing.
func BindStoreContext(ctx context.Context, st Store) {
	if ctx == nil || ctx.Done() == nil {
		return
	}
	if cs, ok := st.(ContextSetter); ok {
		cs.SetContext(ctx)
	}
}

// FaultStatser is the optional Store extension for fault-tolerant
// stores: it reports spill I/O retries and blocks degraded to in-core
// after persistent write failures. The executors fold these into
// memory.ExecStats after Flush via StoreFaultCounters; stores without
// fault handling (like the in-memory Factors) simply don't implement it.
type FaultStatser interface {
	FaultCounters() (retries, degradedBlocks int64)
}

// StoreFaultCounters returns st's fault counters when it implements
// FaultStatser and zeros otherwise.
func StoreFaultCounters(st Store) (retries, degradedBlocks int64) {
	if fs, ok := st.(FaultStatser); ok {
		return fs.FaultCounters()
	}
	return 0, 0
}

// ResolveStore is the store setup shared by the executors: a nil st
// becomes a fresh in-memory Factors for the tree, a nil m becomes a
// fresh Meter, and the meter is installed on the store before any Put
// can happen. The returned *Factors is the in-memory container when the
// store is (or wraps to) one, nil for external stores — executors expose
// it for cross-validation.
func ResolveStore(st Store, tree *assembly.Tree, kind sparse.Type, m *memory.Meter) (Store, *Factors, *memory.Meter) {
	var fs *Factors
	if st == nil {
		fs = NewFactors(tree, kind)
		st = fs
	} else if f, ok := st.(*Factors); ok {
		fs = f
	}
	if m == nil {
		m = new(memory.Meter)
	}
	st.SetMeter(m)
	return st, fs, m
}

// front.Factors is the in-memory Store: blocks live in the nodes slice
// forever, so Flush/Prefetch/Release/Close are no-ops and the meter is
// charged on Put and never discharged — its peak is the in-core total
// peak (factors + stack + fronts).

// SetMeter installs the resident meter charged on Put.
func (f *Factors) SetMeter(m *memory.Meter) { f.meter = m }

// Put stores node ni's factor block. Distinct nodes may be Put from
// different goroutines without synchronization (the meter serializes
// its own updates).
func (f *Factors) Put(ni int, nf NodeFactor, entries int64) error {
	f.nodes[ni] = nf
	f.meter.Add(entries)
	return nil
}

// Flush is a no-op: in-memory blocks are durable on Put.
func (f *Factors) Flush() error { return nil }

// BeginSolve is a no-op: the in-memory store has no per-solve state, so
// concurrent solves (each with its own Solver) are safe.
func (f *Factors) BeginSolve() error { return nil }

// EndSolve is a no-op.
func (f *Factors) EndSolve() {}

// Prefetch is a no-op: every block is already resident.
func (f *Factors) Prefetch([]int) {}

// Fetch returns node ni's factor block.
func (f *Factors) Fetch(ni int) (*NodeFactor, error) { return &f.nodes[ni], nil }

// Release is a no-op.
func (f *Factors) Release(int) {}

// Close is a no-op.
func (f *Factors) Close() error { return nil }
