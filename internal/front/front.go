// Package front holds the numeric multifrontal kernels shared by the
// sequential (internal/seqmf) and shared-memory parallel (internal/parmf)
// executors: per-front assembly (scatter of original entries, extend-add of
// children contribution blocks), partial factorization dispatch, factor and
// contribution-block extraction, and the triangular solves over a completed
// set of node factors.
//
// The split between Shared (immutable per-factorization symbolic state,
// safe for concurrent readers) and Assembler (per-worker scratch arrays)
// is what lets several workers assemble independent fronts at once.
package front

import (
	"fmt"

	"repro/internal/assembly"
	"repro/internal/dense"
	"repro/internal/sparse"
)

// Shared is the read-only state of one numeric factorization: the permuted
// matrix (and its transpose for unsymmetric upper parts) plus the assembly
// tree. It is built once and may be read by any number of Assemblers
// concurrently.
type Shared struct {
	PA   *sparse.CSC
	PAT  *sparse.CSC // transpose, nil for symmetric matrices
	Tree *assembly.Tree
}

// NewShared validates the inputs and precomputes the transpose needed for
// the unsymmetric row scatter.
func NewShared(pa *sparse.CSC, tree *assembly.Tree) (*Shared, error) {
	if !pa.HasValues() {
		return nil, fmt.Errorf("front: matrix has no values")
	}
	if pa.N != tree.N {
		return nil, fmt.Errorf("front: matrix order %d vs tree %d", pa.N, tree.N)
	}
	sh := &Shared{PA: pa, Tree: tree}
	if pa.Kind == sparse.Unsymmetric {
		sh.PAT = sparse.Transpose(pa)
	}
	return sh, nil
}

// Assembler carries the per-worker scratch needed to assemble fronts: the
// global→local index map and its stamp array, plus the reusable index and
// run buffers of the extend-add — in the steady state an Assembler
// assembles fronts without allocating. Each concurrent worker must own
// its own Assembler; all may share one Shared.
type Assembler struct {
	sh    *Shared
	loc   []int // global -> local front index, valid where stamp == node
	stamp []int
	idx   []int            // extend-add scratch: child row -> parent local
	runs  []dense.IndexRun // extend-add scratch: consecutive-index runs
}

// NewAssembler returns a fresh assembler over sh.
func NewAssembler(sh *Shared) *Assembler {
	a := &Assembler{
		sh:    sh,
		loc:   make([]int, sh.PA.N),
		stamp: make([]int, sh.PA.N),
	}
	for i := range a.stamp {
		a.stamp[i] = -1
	}
	return a
}

// Begin stamps the front structure of node ni and returns its global row
// list (pivot columns then CB rows). The returned slice is freshly
// allocated and owned by the caller (it becomes NodeFactor.Rows).
func (a *Assembler) Begin(ni int) []int {
	nd := &a.sh.Tree.Nodes[ni]
	rows := make([]int, 0, nd.NFront())
	for j := nd.Begin; j < nd.End; j++ {
		rows = append(rows, j)
	}
	rows = append(rows, nd.Rows...)
	for k, g := range rows {
		a.loc[g] = k
		a.stamp[g] = ni
	}
	return rows
}

// Scatter adds the original matrix entries owned by node ni into the front
// f (order NFront). Begin(ni) must have stamped the structure first.
func (a *Assembler) Scatter(ni int, f *dense.Matrix) error {
	nd := &a.sh.Tree.Nodes[ni]
	pa := a.sh.PA
	for j := nd.Begin; j < nd.End; j++ {
		lj := a.loc[j]
		cols := pa.Col(j)
		vals := pa.ColVal(j)
		for p, i := range cols {
			if pa.Kind == sparse.Symmetric {
				if i < j {
					continue
				}
				f.Add(a.loc[i], lj, vals[p])
				continue
			}
			// Unsymmetric: entry (i,j) belongs here iff min(i,j) is ours,
			// i.e. i >= Begin (j is ours already).
			if i >= nd.Begin {
				if a.stamp[i] != ni {
					return fmt.Errorf("front: structure misses row %d in front %d", i, ni)
				}
				f.Add(a.loc[i], lj, vals[p])
			}
		}
		if a.sh.PAT != nil {
			// Row j entries (j, c) with c beyond this node's pivots.
			cols := a.sh.PAT.Col(j)
			vals := a.sh.PAT.ColVal(j)
			for p, c := range cols {
				if c < nd.End {
					continue // handled by a column scatter
				}
				if a.stamp[c] != ni {
					return fmt.Errorf("front: structure misses col %d in front %d", c, ni)
				}
				f.Add(lj, a.loc[c], vals[p])
			}
		}
	}
	return nil
}

// ExtendAdd assembles child c's contribution block cb into the front f of
// node ni and returns the number of extend-add operations (CB entries in
// model units). Begin(ni) must have stamped the structure first.
func (a *Assembler) ExtendAdd(ni int, f *dense.Matrix, c int, cb *dense.Matrix) (int64, error) {
	if cb == nil {
		return 0, fmt.Errorf("front: child %d CB missing at node %d", c, ni)
	}
	child := &a.sh.Tree.Nodes[c]
	if cap(a.idx) < len(child.Rows) {
		a.idx = make([]int, len(child.Rows))
	}
	idx := a.idx[:len(child.Rows)]
	for k, g := range child.Rows {
		if a.stamp[g] != ni {
			return 0, fmt.Errorf("front: child %d row %d not in parent %d front", c, g, ni)
		}
		idx[k] = a.loc[g]
	}
	// Collapse consecutive-index runs once per child; the scatter then
	// moves contiguous spans instead of per-element indexed adds.
	a.runs = dense.AppendRuns(a.runs[:0], idx)
	if a.sh.Tree.Kind == sparse.Symmetric {
		dense.ExtendAddLowerRuns(f, cb, idx, a.runs)
	} else {
		dense.ExtendAddRuns(f, cb, idx, a.runs)
	}
	return assembly.CBEntries(child, a.sh.Tree.Kind), nil
}

// Eliminate runs the partial factorization of the assembled front: partial
// Cholesky for symmetric matrices, partial LU (static pivoting, threshold
// tol) otherwise.
func Eliminate(f *dense.Matrix, npiv int, kind sparse.Type, tol float64) error {
	if kind == sparse.Symmetric {
		return dense.PartialCholesky(f, npiv)
	}
	return dense.PartialLU(f, npiv, tol)
}

// EliminateKernel runs the partial factorization through the selected
// kernel family of the dispatch layer (internal/dense). With
// dense.KernelDefault, blockRows <= 0 falls back to the element-wise
// kernels and every path produces bitwise-identical factors, so callers
// may mix block sizes freely across executors. dense.KernelFast and
// dense.KernelSIMD always run blocked (blockRows <= 0 uses
// dense.DefaultBlockRows) and are validated by residual, not bit
// equality; both are still deterministic for a fixed panel width,
// independent of row partition and worker count. dense.KernelAuto is
// resolved here so the blockRows default tracks the concrete family.
func EliminateKernel(f *dense.Matrix, npiv int, kind sparse.Type, tol float64, blockRows int, kern dense.Kernel) error {
	kern = kern.Resolve()
	if kern != dense.KernelDefault && blockRows <= 0 {
		blockRows = dense.DefaultBlockRows
	}
	if blockRows <= 0 {
		return Eliminate(f, npiv, kind, tol)
	}
	if kind == sparse.Symmetric {
		return kern.PartialCholesky(f, npiv, blockRows)
	}
	return kern.PartialLU(f, npiv, tol, blockRows)
}

// ExtractFactor copies the factor pieces out of the eliminated front: the
// nf x npiv lower trapezoid (diag: Cholesky=L(k,k), LU=1 implicit) and, for
// unsymmetric matrices, the npiv x nf upper trapezoid holding the U diag.
func ExtractFactor(f *dense.Matrix, rows []int, npiv int, kind sparse.Type) NodeFactor {
	nf := len(rows)
	nfac := NodeFactor{Rows: rows, NPiv: npiv}
	nfac.L = dense.New(nf, npiv)
	for i := 0; i < nf; i++ {
		for k := 0; k < npiv && k <= i; k++ {
			nfac.L.Set(i, k, f.At(i, k))
		}
	}
	if kind == sparse.Unsymmetric {
		nfac.U = dense.New(npiv, nf)
		for k := 0; k < npiv; k++ {
			for j := k; j < nf; j++ {
				nfac.U.Set(k, j, f.At(k, j))
			}
		}
	}
	return nfac
}

// ExtractCB copies the contribution block (the trailing Schur complement)
// out of the eliminated front, or returns nil when the node has no CB.
// Symmetric fronts copy the lower triangle only. The block is drawn from
// the arena (nil allocates fresh); it is consumed by the parent's
// extend-add and should be freed into the consuming worker's arena.
func ExtractCB(a *Arena, f *dense.Matrix, npiv, ncb int, kind sparse.Type) *dense.Matrix {
	if ncb == 0 {
		return nil
	}
	cb := a.Matrix(ncb, ncb)
	for i := 0; i < ncb; i++ {
		src := f.Row(npiv + i)[npiv : npiv+ncb]
		if kind == sparse.Symmetric {
			src = src[:i+1]
		}
		copy(cb.Row(i), src)
	}
	return cb
}
