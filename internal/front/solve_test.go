package front

import (
	"math"
	"testing"

	"repro/internal/assembly"
	"repro/internal/dense"
	"repro/internal/sparse"
)

// Direct tests of the forward/backward solve walk on hand-crafted fronts:
// no executor, no assembly — the NodeFactor blocks are written down
// explicitly and the results checked against pencil-and-paper (or dense
// reference) substitution. This pins the solve semantics the executors
// rely on: Cholesky fronts divide by the stored diagonal in both passes,
// LU fronts use the unit-lower L forward and U (with its diagonal)
// backward, and each front touches exactly its Rows slice.

// mat builds a dense matrix from rows.
func mat(rows [][]float64) *dense.Matrix {
	m := dense.New(len(rows), len(rows[0]))
	for i, r := range rows {
		for j, v := range r {
			m.Set(i, j, v)
		}
	}
	return m
}

// oneNodeTree is a single front owning all n pivots.
func oneNodeTree(n int, kind sparse.Type) *assembly.Tree {
	return &assembly.Tree{
		Nodes: []assembly.Node{{ID: 0, Parent: -1, Begin: 0, End: n}},
		Roots: []int{0},
		N:     n,
		Kind:  kind,
	}
}

// TestSolveCraftedCholeskySingleFront: L = [[2,0],[1,1]], so A = L·Lᵀ =
// [[4,2],[2,2]]. For b = (4,2): forward y = L⁻¹b = (2,0), backward
// x = L⁻ᵀy = (1,0) — exactly representable, so the comparison is exact.
func TestSolveCraftedCholeskySingleFront(t *testing.T) {
	tree := oneNodeTree(2, sparse.Symmetric)
	fs := NewFactors(tree, sparse.Symmetric)
	fs.SetNode(0, NodeFactor{
		Rows: []int{0, 1},
		NPiv: 2,
		L:    mat([][]float64{{2, 0}, {1, 1}}),
	})
	x, err := fs.Solve([]float64{4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 1 || x[1] != 0 {
		t.Fatalf("x = %v, want [1 0]", x)
	}
}

// TestSolveCraftedLUSingleFront: unit-lower L (multipliers stored in the
// strict lower part of the L block, diagonal holds U's diagonal as the
// executors extract it) and upper U. A = L·U with
// L = [[1,0],[0.5,1]], U = [[2,4],[0,3]] → A = [[2,4],[1,5]].
// b = (2,4): y = L⁻¹b = (2,3), x = U⁻¹y = (-1,1). Exact.
func TestSolveCraftedLUSingleFront(t *testing.T) {
	tree := oneNodeTree(2, sparse.Unsymmetric)
	fs := NewFactors(tree, sparse.Unsymmetric)
	fs.SetNode(0, NodeFactor{
		Rows: []int{0, 1},
		NPiv: 2,
		L:    mat([][]float64{{2, 0}, {0.5, 3}}),
		U:    mat([][]float64{{2, 4}, {0, 3}}),
	})
	x, err := fs.Solve([]float64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != -1 || x[1] != 1 {
		t.Fatalf("x = %v, want [-1 1]", x)
	}
}

// twoNodeTree: node 0 owns pivot 0 with CB rows {1,2}; node 1 (root)
// owns pivots 1,2. The multifrontal L of a 3x3 matrix split across two
// fronts.
func twoNodeTree(kind sparse.Type) *assembly.Tree {
	return &assembly.Tree{
		Nodes: []assembly.Node{
			{ID: 0, Parent: 1, Begin: 0, End: 1, Rows: []int{1, 2}},
			{ID: 1, Parent: -1, Children: []int{0}, Begin: 1, End: 3},
		},
		Roots: []int{1},
		N:     3,
		Kind:  kind,
	}
}

// denseSolveLower solves L y = b (unit diagonal when unit is true).
func denseSolveLower(L *dense.Matrix, b []float64, unit bool) []float64 {
	y := append([]float64(nil), b...)
	for i := 0; i < L.R; i++ {
		for j := 0; j < i; j++ {
			y[i] -= L.At(i, j) * y[j]
		}
		if !unit {
			y[i] /= L.At(i, i)
		}
	}
	return y
}

// denseSolveUpper solves U x = y.
func denseSolveUpper(U *dense.Matrix, y []float64) []float64 {
	x := append([]float64(nil), y...)
	for i := U.R - 1; i >= 0; i-- {
		for j := i + 1; j < U.C; j++ {
			x[i] -= U.At(i, j) * x[j]
		}
		x[i] /= U.At(i, i)
	}
	return x
}

func transpose(m *dense.Matrix) *dense.Matrix {
	out := dense.New(m.C, m.R)
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// TestSolveCraftedCholeskyTwoFronts scatters a global 3x3 lower factor
// across two fronts (pivot column 0 with its CB rows in the leaf, the
// 2x2 trailing block in the root) and checks the walk against dense
// forward/backward substitution with the assembled L.
func TestSolveCraftedCholeskyTwoFronts(t *testing.T) {
	tree := twoNodeTree(sparse.Symmetric)
	// Global L (lower):
	L := mat([][]float64{
		{2, 0, 0},
		{0.5, 3, 0},
		{-1, 0.25, 1.5},
	})
	fs := NewFactors(tree, sparse.Symmetric)
	fs.SetNode(0, NodeFactor{
		Rows: []int{0, 1, 2},
		NPiv: 1,
		L:    mat([][]float64{{2}, {0.5}, {-1}}),
	})
	fs.SetNode(1, NodeFactor{
		Rows: []int{1, 2},
		NPiv: 2,
		L:    mat([][]float64{{3, 0}, {0.25, 1.5}}),
	})
	b := []float64{3, -1, 4}
	x, err := fs.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	want := denseSolveUpper(transpose(L), denseSolveLower(L, b, false))
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-14*(1+math.Abs(want[i])) {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

// TestSolveCraftedLUTwoFronts is the unsymmetric version: unit-lower
// multipliers and an upper factor with diagonal, split the same way.
func TestSolveCraftedLUTwoFronts(t *testing.T) {
	tree := twoNodeTree(sparse.Unsymmetric)
	L := mat([][]float64{ // unit diagonal implied
		{1, 0, 0},
		{0.5, 1, 0},
		{-0.25, 0.4, 1},
	})
	U := mat([][]float64{
		{2, 1, -1},
		{0, 3, 0.5},
		{0, 0, 1.25},
	})
	fs := NewFactors(tree, sparse.Unsymmetric)
	fs.SetNode(0, NodeFactor{
		Rows: []int{0, 1, 2},
		NPiv: 1,
		// L diagonal holds U(0,0), as ExtractFactor stores it; the
		// unsymmetric walk never reads it.
		L: mat([][]float64{{2}, {0.5}, {-0.25}}),
		U: mat([][]float64{{2, 1, -1}}),
	})
	fs.SetNode(1, NodeFactor{
		Rows: []int{1, 2},
		NPiv: 2,
		L:    mat([][]float64{{3, 0}, {0.4, 1.25}}),
		U:    mat([][]float64{{3, 0.5}, {0, 1.25}}),
	})
	b := []float64{1, 2, -1}
	x, err := fs.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	want := denseSolveUpper(U, denseSolveLower(L, b, true))
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-14*(1+math.Abs(want[i])) {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

// TestSolveOriginalCraftedPermutation checks the permutation plumbing of
// SolveOriginalStore on a crafted front: with Perm = [2,0,1]
// (new -> old), a right-hand side in original order must round-trip
// through the permuted solve and come back in original order.
func TestSolveOriginalCraftedPermutation(t *testing.T) {
	tree := oneNodeTree(3, sparse.Symmetric)
	tree.Perm = []int{2, 0, 1}
	L := mat([][]float64{
		{1.5, 0, 0},
		{0.5, 2, 0},
		{0, -1, 1},
	})
	fs := NewFactors(tree, sparse.Symmetric)
	fs.SetNode(0, NodeFactor{Rows: []int{0, 1, 2}, NPiv: 3, L: L})

	pb := []float64{2, -3, 1} // permuted-space rhs
	px, err := fs.Solve(pb)
	if err != nil {
		t.Fatal(err)
	}
	// Scatter to original order and solve through SolveOriginal.
	b := make([]float64, 3)
	wantX := make([]float64, 3)
	for newI, oldI := range tree.Perm {
		b[oldI] = pb[newI]
		wantX[oldI] = px[newI]
	}
	x, err := fs.SolveOriginal(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if x[i] != wantX[i] {
			t.Fatalf("x = %v, want %v", x, wantX)
		}
	}
}

// TestSolveStoreErrors covers the argument-validation paths of the
// store-backed solves.
func TestSolveStoreErrors(t *testing.T) {
	tree := oneNodeTree(2, sparse.Symmetric)
	fs := NewFactors(tree, sparse.Symmetric)
	fs.SetNode(0, NodeFactor{Rows: []int{0, 1}, NPiv: 2, L: mat([][]float64{{1, 0}, {0, 1}})})
	if _, err := SolveStore(nil, tree, sparse.Symmetric, []float64{1, 2}); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := SolveStore(fs, tree, sparse.Symmetric, []float64{1}); err == nil {
		t.Error("short rhs accepted")
	}
	if _, err := SolveOriginalStore(fs, tree, sparse.Symmetric, []float64{1, 2, 3}); err == nil {
		t.Error("long rhs accepted by SolveOriginalStore")
	}
}
