package front

import (
	"math/bits"

	"repro/internal/dense"
)

// Arena recycles the numeric scratch of a factorization — front matrices
// and contribution blocks — by power-of-two size class, so the steady
// state of the factorize loop allocates nothing: every front the executor
// assembles and every CB it stacks reuses a slab some earlier front of a
// similar size released. The paper's working set is stack-shaped (fronts
// and CBs die in roughly the reverse order they are born), which is
// exactly the access pattern a size-class free list serves with near-100%
// hit rates.
//
// An Arena is single-threaded: each worker owns one. Ownership of a
// matrix may still cross workers — a CB is produced by the worker that
// factors the child and released by the worker that assembles the parent
// — as long as the handoff itself is synchronized (the executor's
// scheduling mutex) and the releasing worker frees into its *own* arena.
//
// Matrices are zeroed on Get, not on Free, so a recycled slab can never
// leak a previous front's values into the next assembly (Scatter and
// extend-add accumulate into zeros). Factor blocks (NodeFactor.L/U and
// the Rows lists) are never arena-managed: they are owned by the
// front.Store — an out-of-core store may still be spilling them long
// after the producing worker moved on — so they stay ordinary
// garbage-collected allocations.
//
// A nil *Arena is valid and falls back to plain allocation, so call sites
// need no guards.
type Arena struct {
	mats [maxSizeClass][]*dense.Matrix

	gets, hits int64
}

// maxSizeClass covers every slab size addressable by an int.
const maxSizeClass = 64

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// sizeClass buckets a slab size: all sizes in (2^(cl-1), 2^cl] share
// class cl. Slabs are allocated at their exact size (never rounded up,
// so the arena adds no physical memory over the metered entry counts);
// a class therefore holds mixed capacities and Matrix fit-checks before
// reusing. The steady state repeats the same front sizes, so the check
// almost always passes on the list tail.
func sizeClass(n int) int { return bits.Len(uint(n - 1)) }

// Matrix returns a zeroed r x c matrix, recycling a freed slab of at
// least that size from the size class when one is available.
func (a *Arena) Matrix(r, c int) *dense.Matrix {
	if a == nil {
		return dense.New(r, c)
	}
	need := r * c
	if need == 0 {
		return &dense.Matrix{R: r, C: c}
	}
	a.gets++
	s := a.mats[sizeClass(need)]
	for k := len(s) - 1; k >= 0; k-- {
		m := s[k]
		if cap(m.A) < need {
			continue
		}
		s[k] = s[len(s)-1]
		s[len(s)-1] = nil
		a.mats[sizeClass(need)] = s[:len(s)-1]
		a.hits++
		m.R, m.C = r, c
		m.A = m.A[:need]
		clear(m.A)
		return m
	}
	return dense.New(r, c)
}

// Free returns m's backing slab (and header) to the arena for reuse. The
// caller must not touch m afterwards. The slab is filed under the class
// of its capacity, where same-size requests look first.
func (a *Arena) Free(m *dense.Matrix) {
	if a == nil || m == nil || cap(m.A) == 0 {
		return
	}
	cl := sizeClass(cap(m.A))
	m.A = m.A[:cap(m.A)]
	m.R, m.C = 0, 0
	a.mats[cl] = append(a.mats[cl], m)
}

// Stats reports the arena's request and recycle-hit counts.
func (a *Arena) Stats() (gets, hits int64) {
	if a == nil {
		return 0, 0
	}
	return a.gets, a.hits
}
