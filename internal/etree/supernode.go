package etree

// Supernode partitioning and relaxed amalgamation. A supernode is a run of
// consecutive (postordered) columns sharing one frontal matrix; relaxed
// amalgamation merges small children into parents, trading a little fill
// for larger, more efficient fronts — it also reshapes the assembly tree,
// which matters to the scheduling experiments.

// Supernodes groups columns 0..n-1 (already postordered, with etree parent
// and factor column counts) into fundamental supernodes: column j+1 joins
// j's supernode iff parent[j] == j+1, j is the only child of j+1 among
// supernode starts, and colcount[j+1] == colcount[j]-1 (identical structure
// below the diagonal).
//
// Returns super: for each supernode s, super[s] is the first column, plus a
// terminating entry n (len = #supernodes + 1), and memb: column -> its
// supernode.
func Supernodes(parent, counts []int) (super []int, memb []int) {
	n := len(parent)
	memb = make([]int, n)
	if n == 0 {
		return []int{0}, memb
	}
	nchild := make([]int, n)
	for _, p := range parent {
		if p >= 0 {
			nchild[p]++
		}
	}
	super = append(super, 0)
	for j := 1; j < n; j++ {
		if parent[j-1] == j && nchild[j] == 1 && counts[j] == counts[j-1]-1 {
			// continue current supernode
		} else {
			super = append(super, j)
		}
	}
	super = append(super, n)
	for s := 0; s+1 < len(super); s++ {
		for j := super[s]; j < super[s+1]; j++ {
			memb[j] = s
		}
	}
	return super, memb
}

// SupernodeTree returns the parent array over supernodes: the supernode of
// the etree-parent of each supernode's last column.
func SupernodeTree(parent, super, memb []int) []int {
	ns := len(super) - 1
	sparent := make([]int, ns)
	for s := 0; s < ns; s++ {
		last := super[s+1] - 1
		p := parent[last]
		if p < 0 {
			sparent[s] = -1
		} else {
			sparent[s] = memb[p]
		}
	}
	return sparent
}

// AmalgamationOptions controls relaxed supernode amalgamation.
type AmalgamationOptions struct {
	// MaxExtraFill is the maximum fraction of extra (logical) entries a
	// merge may add to the parent front, e.g. 0.2 = 20%.
	MaxExtraFill float64
	// SmallThreshold: a child with at most this many pivot columns is
	// always merged into its parent.
	SmallThreshold int
	// MaxFront caps the merged front order (0 = unlimited).
	MaxFront int
}

// DefaultAmalgamation mirrors typical multifrontal settings.
func DefaultAmalgamation() AmalgamationOptions {
	return AmalgamationOptions{MaxExtraFill: 0.15, SmallThreshold: 4, MaxFront: 0}
}

// Amalgamate performs relaxed amalgamation on a supernode partition.
// Inputs: super/memb from Supernodes, counts = factor column counts.
// A child supernode is merged into its parent when the *cumulative*
// overallocation of the merged run — allocated dense-trapezoid entries
// versus the true factor entries of its columns — stays within
// MaxExtraFill, or when the child is small (SmallThreshold pivots, with a
// laxer fill bound). Children are only merged when contiguous with the
// parent in the postorder, which keeps supernodes as column ranges.
// Using the cumulative ratio (rather than a per-merge nesting estimate)
// makes cascading merges self-limiting: every merge pays for all the
// padding accumulated so far.
//
// Returns new super/memb arrays.
func Amalgamate(parent, counts, super, memb []int, opt AmalgamationOptions) (nsuper, nmemb []int) {
	n := len(parent)
	ns := len(super) - 1
	if ns == 0 {
		return append([]int(nil), super...), append([]int(nil), memb...)
	}
	sparent := SupernodeTree(parent, super, memb)
	prefix := make([]int64, n+1) // prefix sums of true column counts
	for c := 0; c < n; c++ {
		prefix[c+1] = prefix[c] + int64(counts[c])
	}
	rep := make([]int, ns) // union-find; rep of a run = its earliest snode
	for i := range rep {
		rep[i] = i
	}
	find := func(x int) int {
		for rep[x] != x {
			rep[x] = rep[rep[x]]
			x = rep[x]
		}
		return x
	}
	width := make([]int, ns)  // pivot columns in run
	forder := make([]int, ns) // (approximate) front order of run
	first := make([]int, ns)  // first column of run
	endCol := make([]int, ns) // one past last column of run
	for s := 0; s < ns; s++ {
		width[s] = super[s+1] - super[s]
		forder[s] = counts[super[s]]
		first[s] = super[s]
		endCol[s] = super[s+1]
	}
	smallBound := 4 * opt.MaxExtraFill
	if opt.MaxExtraFill > 0 && smallBound < 1 {
		smallBound = 1
	}
	for s := ns - 2; s >= 0; s-- {
		p := sparent[s]
		if p < 0 {
			continue
		}
		pr := find(p)
		sr := find(s)
		if sr == pr {
			continue
		}
		// Contiguity: run sr must end exactly where run pr starts.
		if endCol[sr] != first[pr] {
			continue
		}
		childWidth := width[sr]
		mergedWidth := childWidth + width[pr]
		mergedOrder := childWidth + forder[pr]
		if opt.MaxFront > 0 && mergedOrder > opt.MaxFront {
			continue
		}
		// Allocated entries of the merged trapezoid vs true factor entries.
		mw, mo := int64(mergedWidth), int64(mergedOrder)
		alloc := mw*mo - mw*(mw-1)/2
		truth := prefix[first[sr]+mergedWidth] - prefix[first[sr]]
		if truth <= 0 {
			continue
		}
		ratio := float64(alloc-truth) / float64(truth)
		merge := ratio <= opt.MaxExtraFill ||
			(childWidth <= opt.SmallThreshold && ratio <= smallBound)
		if !merge {
			continue
		}
		rep[pr] = sr
		width[sr] = mergedWidth
		forder[sr] = mergedOrder
		endCol[sr] = endCol[pr]
	}
	// Rebuild partition from merged runs.
	nsuper = []int{}
	nmemb = make([]int, n)
	for s := 0; s < ns; s++ {
		if find(s) == s {
			nsuper = append(nsuper, super[s])
		}
	}
	// super entries were appended in increasing column order because rep of
	// each run is its earliest supernode.
	nsuper = append(nsuper, n)
	for s := 0; s+1 < len(nsuper); s++ {
		for j := nsuper[s]; j < nsuper[s+1]; j++ {
			nmemb[j] = s
		}
	}
	return nsuper, nmemb
}
