package etree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/order"
	"repro/internal/sparse"
)

// paperMatrix builds the 6x6 matrix of the paper's Figure 1:
//
//	X X . . X .        (cols 1..6, X on diagonal, F = fill)
//	X X . . X X  ... the figure shows pattern such that the assembly tree is
//	. . X X . X      {1,2} {3,4} -> {5,6}
//	. . X X X X
//	X X X X X X  -- approximating the figure's structure
//	. X X X X X
func paperMatrix() *sparse.CSC {
	b := sparse.NewBuilder(6, sparse.Symmetric)
	for i := 0; i < 6; i++ {
		b.Add(i, i, 1)
	}
	b.Add(1, 0, 1) // (2,1)
	b.Add(4, 0, 1) // (5,1)
	b.Add(4, 1, 1) // (5,2)
	b.Add(3, 2, 1) // (4,3)
	b.Add(5, 2, 1) // (6,3)
	b.Add(5, 3, 1) // (6,4)
	b.Add(5, 4, 1) // (6,5)
	out := b.Build()
	out.Val = nil
	return out
}

func TestFigure1PaperExample(t *testing.T) {
	a := paperMatrix()
	parent := Compute(a)
	// Expected etree: 0->1->4->5, 2->3->5 (0-based). Nodes {0,1},{2,3}
	// chains merging at {4,5}: matches the paper's assembly tree
	// 1,2 / 3,4 -> 5,6.
	want := []int{1, 4, 3, 5, 5, -1}
	for v := range want {
		if parent[v] != want[v] {
			t.Fatalf("parent[%d] = %d, want %d (tree %v)", v, parent[v], want[v], parent)
		}
	}
	counts := ColCounts(a, parent)
	// Column factor counts: col0 has rows {0,1,4} -> 3; col1 {1,4,5}?
	// col1: a(4,1) + fill from child col0 path: rows {1,4} plus none else,
	// but col0 contributes row 4 only (already); count=... verify via dense
	// symbolic elimination below instead.
	dense := denseColCounts(a)
	for j := range counts {
		if counts[j] != dense[j] {
			t.Fatalf("counts[%d] = %d, want %d (dense check)", j, counts[j], dense[j])
		}
	}
	// Supernodes: {0},{1}? fundamental criterion: col1 joins col0 iff
	// parent[0]==1, nchild(1)==1, count1==count0-1.
	super, memb := Supernodes(parent, counts)
	tree := SupernodeTree(parent, super, memb)
	// Assembly-tree shape: last supernode (containing cols 4,5) is the root.
	root := memb[5]
	if tree[root] != -1 {
		t.Errorf("root supernode has parent %d", tree[root])
	}
	// Columns 5,6 of the figure form one front only after amalgamation
	// (column 5 has two children, so it is not a *fundamental* supernode
	// with column 6).
	// Strict options: only zero-fill merges, so the figure's three fronts
	// survive (default relaxed settings would collapse a 6x6 into one).
	asuper, amemb := Amalgamate(parent, counts, super, memb,
		AmalgamationOptions{MaxExtraFill: 0, SmallThreshold: 1})
	if amemb[4] != amemb[5] {
		t.Errorf("columns 5,6 should share the root front after amalgamation (memb %v, super %v)", amemb, asuper)
	}
	if amemb[0] != amemb[1] || amemb[2] != amemb[3] {
		t.Errorf("leaf fronts {1,2} and {3,4} should each be one node (memb %v)", amemb)
	}
	if amemb[1] == amemb[2] {
		t.Errorf("the two leaf fronts must stay distinct (memb %v)", amemb)
	}
}

// denseColCounts computes factor column counts by dense symbolic Cholesky.
func denseColCounts(a *sparse.CSC) []int {
	n := a.N
	m := make([][]bool, n)
	for i := range m {
		m[i] = make([]bool, n)
	}
	full := sparse.ExpandSymmetric(a)
	for j := 0; j < n; j++ {
		for _, i := range full.Col(j) {
			m[i][j] = true
		}
		m[j][j] = true
	}
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			if !m[i][k] {
				continue
			}
			for j := k + 1; j <= i; j++ {
				if m[j][k] {
					m[i][j] = true
				}
			}
		}
	}
	counts := make([]int, n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			if m[i][j] {
				counts[j]++
			}
		}
	}
	return counts
}

func TestColCountsAgainstDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		a := sparse.RandomSPDPattern(n, 2, rng)
		// Postorder first (ColCounts itself does not require it, but match
		// production use).
		parent := Compute(a)
		got := ColCounts(a, parent)
		want := denseColCounts(a)
		for j := range got {
			if got[j] != want[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPostorderProperties(t *testing.T) {
	a := sparse.Grid2D(7, 7)
	perm := order.Compute(a, order.AMD)
	pa := a.Permute(perm)
	parent := Compute(pa)
	post := Postorder(parent)
	if !order.IsPermutation(post, a.N) {
		t.Fatal("postorder not a permutation")
	}
	pos := make([]int, a.N)
	for k, v := range post {
		pos[v] = k
	}
	for v, p := range parent {
		if p >= 0 && pos[p] <= pos[v] {
			t.Fatalf("parent %d before child %d in postorder", p, v)
		}
	}
	// After relabeling by the postorder, the etree must have increasing
	// parents and identical factor size.
	c1 := FactorNNZ(ColCounts(pa, parent))
	pa2 := a.Permute(ApplyPostorder(perm, post))
	parent2 := Compute(pa2)
	if err := Validate(parent2, true); err != nil {
		t.Fatalf("postordered etree invalid: %v", err)
	}
	c2 := FactorNNZ(ColCounts(pa2, parent2))
	if c1 != c2 {
		t.Errorf("postordering changed factor size: %d -> %d", c1, c2)
	}
}

func TestPostorderSubtreesContiguous(t *testing.T) {
	// Property: in a postorder, every subtree occupies a contiguous range.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		a := sparse.RandomSPDPattern(n, 2, rng)
		parent := Compute(a)
		post := Postorder(parent)
		pos := make([]int, n)
		for k, v := range post {
			pos[v] = k
		}
		// descendant count per node
		size := make([]int, n)
		for i := range size {
			size[i] = 1
		}
		for _, v := range post {
			if parent[v] >= 0 {
				size[parent[v]] += size[v]
			}
		}
		for v := 0; v < n; v++ {
			// subtree of v = positions [pos[v]-size[v]+1, pos[v]]
			lo := pos[v] - size[v] + 1
			if lo < 0 {
				return false
			}
			// check parent of any node in range is inside range except v
			for k := lo; k <= pos[v]; k++ {
				u := post[k]
				if u != v {
					p := parent[u]
					if p < 0 || pos[p] > pos[v] || pos[p] < lo {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSupernodesPartition(t *testing.T) {
	a := sparse.Grid2D(8, 8)
	perm := order.Compute(a, order.AMD)
	pa := a.Permute(perm)
	parent := Compute(pa)
	post := Postorder(parent)
	pa = a.Permute(ApplyPostorder(perm, post))
	parent = Compute(pa)
	counts := ColCounts(pa, parent)
	super, memb := Supernodes(parent, counts)
	ns := len(super) - 1
	if super[0] != 0 || super[ns] != pa.N {
		t.Fatalf("bad boundaries %v", super)
	}
	for s := 0; s < ns; s++ {
		if super[s] >= super[s+1] {
			t.Fatalf("empty supernode %d", s)
		}
		for j := super[s]; j < super[s+1]; j++ {
			if memb[j] != s {
				t.Fatalf("memb[%d] = %d, want %d", j, memb[j], s)
			}
		}
		// Columns within a supernode must chain in the etree.
		for j := super[s]; j < super[s+1]-1; j++ {
			if parent[j] != j+1 {
				t.Fatalf("supernode %d broken at column %d", s, j)
			}
		}
	}
	if ns >= pa.N {
		t.Errorf("no amalgamation at all: %d supernodes for n=%d", ns, pa.N)
	}
}

func TestAmalgamateReducesNodes(t *testing.T) {
	a := sparse.Grid3D(5, 5, 5)
	perm := order.Compute(a, order.ND)
	pa := a.Permute(perm)
	parent := Compute(pa)
	post := Postorder(parent)
	pa = a.Permute(ApplyPostorder(perm, post))
	parent = Compute(pa)
	counts := ColCounts(pa, parent)
	super, memb := Supernodes(parent, counts)
	ns0 := len(super) - 1
	nsuper, nmemb := Amalgamate(parent, counts, super, memb, DefaultAmalgamation())
	ns1 := len(nsuper) - 1
	if ns1 > ns0 {
		t.Fatalf("amalgamation increased node count %d -> %d", ns0, ns1)
	}
	if ns1 == ns0 {
		t.Logf("warning: amalgamation made no merges (%d nodes)", ns0)
	}
	// Check partition validity.
	if nsuper[0] != 0 || nsuper[ns1] != pa.N {
		t.Fatalf("bad boundaries")
	}
	for s := 0; s < ns1; s++ {
		for j := nsuper[s]; j < nsuper[s+1]; j++ {
			if nmemb[j] != s {
				t.Fatalf("nmemb[%d] = %d, want %d", j, nmemb[j], s)
			}
		}
	}
	// Supernode tree still a valid forest.
	st := SupernodeTree(parent, nsuper, nmemb)
	for s, p := range st {
		if p == s || p >= ns1 {
			t.Fatalf("bad sparent[%d] = %d", s, p)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := Validate([]int{1, 2, -1}, true); err != nil {
		t.Errorf("valid tree rejected: %v", err)
	}
	if err := Validate([]int{1, 0}, false); err == nil {
		t.Error("cycle accepted")
	}
	if err := Validate([]int{2, -1, 1, -1}, true); err == nil {
		t.Error("non-monotone accepted in strict mode")
	}
	if err := Validate([]int{5}, true); err == nil {
		t.Error("out of range accepted")
	}
}

func TestEtreeOnUnsymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := sparse.CircuitUnsym(60, 80, 1, rng)
	parent := Compute(a)
	if err := Validate(parent, false); err != nil {
		t.Fatal(err)
	}
	if len(parent) != a.N {
		t.Fatalf("len(parent) = %d", len(parent))
	}
}
