// Package etree implements the symbolic analysis underlying the
// multifrontal method: the elimination tree of a (symmetrized) sparse
// matrix, its postordering, the column counts of the Cholesky/LU factor,
// fundamental supernodes and relaxed supernode amalgamation. These are the
// inputs from which internal/assembly builds the assembly tree of the
// paper's Figure 1.
package etree

import (
	"fmt"

	"repro/internal/sparse"
)

// Compute returns the elimination tree parent array of the symmetrized
// pattern of a (parent[j] = -1 for roots), using Liu's algorithm with path
// compression. The matrix is interpreted in its current order.
func Compute(a *sparse.CSC) []int {
	s := a
	if a.Kind != sparse.Symmetric {
		s = sparse.SymmetrizePattern(a)
	}
	n := s.N
	parent := make([]int, n)
	ancestor := make([]int, n)
	for j := 0; j < n; j++ {
		parent[j] = -1
		ancestor[j] = -1
	}
	// Liu's algorithm needs row-wise access to the strict lower triangle.
	rowPtr, rowIdx := lowerRows(s)
	for i := 0; i < n; i++ {
		// For each entry (i,k) with k<i: climb from k to the root of the
		// partially built forest, compressing, and attach to i.
		for p := rowPtr[i]; p < rowPtr[i+1]; p++ {
			k := rowIdx[p]
			for k != -1 && k < i {
				next := ancestor[k]
				ancestor[k] = i
				if next == -1 {
					parent[k] = i
				}
				k = next
			}
		}
	}
	return parent
}

// lowerRows returns CSR-style row lists of the strict lower triangle of a
// symmetric-lower CSC matrix: for row i, the columns k<i with a stored
// entry (i,k).
func lowerRows(s *sparse.CSC) (ptr, idx []int) {
	n := s.N
	ptr = make([]int, n+1)
	for j := 0; j < n; j++ {
		for p := s.ColPtr[j]; p < s.ColPtr[j+1]; p++ {
			if i := s.RowIdx[p]; i > j {
				ptr[i+1]++
			}
		}
	}
	for i := 0; i < n; i++ {
		ptr[i+1] += ptr[i]
	}
	idx = make([]int, ptr[n])
	next := append([]int(nil), ptr[:n]...)
	for j := 0; j < n; j++ {
		for p := s.ColPtr[j]; p < s.ColPtr[j+1]; p++ {
			if i := s.RowIdx[p]; i > j {
				idx[next[i]] = j
				next[i]++
			}
		}
	}
	return ptr, idx
}

// Postorder returns a postordering of the forest given by parent: children
// are visited before parents, and the relative order of siblings follows
// increasing vertex number (deterministic). The returned slice maps
// position -> vertex.
func Postorder(parent []int) []int {
	n := len(parent)
	// Build child lists (reversed so iterative traversal emits ascending).
	head := make([]int, n)
	next := make([]int, n)
	for i := range head {
		head[i] = -1
	}
	var roots []int
	for v := n - 1; v >= 0; v-- {
		p := parent[v]
		if p < 0 {
			roots = append(roots, v)
		} else {
			next[v] = head[p]
			head[p] = v
		}
	}
	// roots collected descending; reverse for ascending deterministic order.
	for i, j := 0, len(roots)-1; i < j; i, j = i+1, j-1 {
		roots[i], roots[j] = roots[j], roots[i]
	}
	post := make([]int, 0, n)
	type frame struct {
		v     int
		child int
	}
	var stack []frame
	for _, r := range roots {
		stack = append(stack, frame{r, head[r]})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.child == -1 {
				post = append(post, f.v)
				stack = stack[:len(stack)-1]
				continue
			}
			c := f.child
			f.child = next[c]
			stack = append(stack, frame{c, head[c]})
		}
	}
	return post
}

// ApplyPostorder relabels a permutation perm (new->old) by a postorder post
// of the permuted matrix's elimination tree, returning the composed
// permutation (new->old).
func ApplyPostorder(perm, post []int) []int {
	out := make([]int, len(post))
	for k, v := range post {
		out[k] = perm[v]
	}
	return out
}

// ColCounts returns, for each column j of the (symbolic) factor of the
// symmetrized pattern of a, the number of nonzeros in column j including
// the diagonal. The matrix must already be in elimination order, with
// parent its elimination tree. Uses row-subtree traversal with marking —
// O(|L|) overall.
func ColCounts(a *sparse.CSC, parent []int) []int {
	s := a
	if a.Kind != sparse.Symmetric {
		s = sparse.SymmetrizePattern(a)
	}
	n := s.N
	counts := make([]int, n)
	mark := make([]int, n)
	for j := range mark {
		mark[j] = -1
		counts[j] = 1 // diagonal
	}
	rowPtr, rowIdx := lowerRows(s)
	for i := 0; i < n; i++ {
		// Row i of the factor: union of paths k→...→i in the etree for each
		// a(i,k), k<i. Each visited column j<i gains a nonzero in row i.
		mark[i] = i
		for p := rowPtr[i]; p < rowPtr[i+1]; p++ {
			for k := rowIdx[p]; k != -1 && k < i && mark[k] != i; k = parent[k] {
				counts[k]++
				mark[k] = i
			}
		}
	}
	return counts
}

// FactorNNZ returns the total number of entries in the symbolic Cholesky
// factor (sum of column counts).
func FactorNNZ(counts []int) int64 {
	var t int64
	for _, c := range counts {
		t += int64(c)
	}
	return t
}

// Validate checks that parent is a forest over n vertices with parent
// pointers strictly increasing (holds after postordering of an elimination
// tree) — pass strict=false to skip the monotonicity check.
func Validate(parent []int, strict bool) error {
	n := len(parent)
	for v, p := range parent {
		if p < -1 || p >= n {
			return fmt.Errorf("etree: parent[%d] = %d out of range", v, p)
		}
		if p == v {
			return fmt.Errorf("etree: self-loop at %d", v)
		}
		if strict && p != -1 && p < v {
			return fmt.Errorf("etree: parent[%d] = %d not increasing", v, p)
		}
	}
	if !strict {
		// Detect cycles by climbing with a step bound.
		for v := range parent {
			x, steps := v, 0
			for x != -1 {
				x = parent[x]
				if steps++; steps > n {
					return fmt.Errorf("etree: cycle reachable from %d", v)
				}
			}
		}
	}
	return nil
}
