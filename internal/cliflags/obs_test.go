package cliflags

import (
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faults"
	"repro/internal/memory"
	"repro/internal/obs"
	"repro/internal/trace"
)

// TestObservabilityFlagsAccepted pins the observability flags onto the
// shared set: both CLIs register through Common.Register, so accepting
// them here is accepting them in cmd/parfactor and cmd/oocfactor alike.
func TestObservabilityFlagsAccepted(t *testing.T) {
	dir := t.TempDir()
	c, err := parse(t, "-matrix", "PRE2",
		"-trace", filepath.Join(dir, "run.trace.json"),
		"-metrics", filepath.Join(dir, "metrics.prom"),
		"-pprof", filepath.Join(dir, "prof"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Trace == "" || c.Metrics == "" || c.Pprof == "" {
		t.Fatalf("flags not captured: %+v", c)
	}
}

func TestObservabilityFlagsOptional(t *testing.T) {
	c, err := parse(t, "-matrix", "PRE2")
	if err != nil {
		t.Fatal(err)
	}
	if c.Trace != "" || c.Metrics != "" || c.Pprof != "" {
		t.Fatalf("unset observability flags should stay empty: %+v", c)
	}
	o, err := c.Observability()
	if err != nil {
		t.Fatal(err)
	}
	if o.Tracer != nil {
		t.Fatal("tracer created without -trace/-metrics")
	}
	if err := o.Finish(memory.ExecStats{}); err != nil {
		t.Fatalf("Finish on disabled observability: %v", err)
	}
}

// TestObservabilityPathValidation pins the rejection cases: outputs that
// collide with each other (including the profile paths -pprof derives
// from its prefix) and paths that are existing directories.
func TestObservabilityPathValidation(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		args []string
	}{
		{"trace=metrics", []string{"-trace", "out.json", "-metrics", "out.json"}},
		{"trace is dir", []string{"-trace", dir}},
		{"metrics is dir", []string{"-metrics", dir}},
		{"pprof prefix is dir", []string{"-pprof", dir}},
		{"pprof collides with trace", []string{"-trace", "p.cpu.pprof", "-pprof", "p"}},
		{"pprof collides with metrics", []string{"-metrics", "p.heap.pprof", "-pprof", "p"}},
	}
	for _, tc := range cases {
		args := append([]string{"-matrix", "PRE2"}, tc.args...)
		if _, err := parse(t, args...); err == nil {
			t.Errorf("%s: args %v accepted", tc.name, tc.args)
		}
	}
	// Distinct paths pass.
	if _, err := parse(t, "-matrix", "PRE2",
		"-trace", "a.json", "-metrics", "b.prom", "-pprof", "c"); err != nil {
		t.Errorf("distinct outputs rejected: %v", err)
	}
}

// TestObservabilityLifecycle runs the full Obs lifecycle with every
// output enabled and checks the files appear with plausible content.
func TestObservabilityLifecycle(t *testing.T) {
	dir := t.TempDir()
	c, err := parse(t, "-matrix", "PRE2", "-workers", "2",
		"-trace", filepath.Join(dir, "run.trace.json"),
		"-metrics", filepath.Join(dir, "metrics.json"),
		"-pprof", filepath.Join(dir, "prof"))
	if err != nil {
		t.Fatal(err)
	}
	o, err := c.Observability()
	if err != nil {
		t.Fatal(err)
	}
	if o.Tracer == nil {
		t.Fatal("no tracer despite -trace")
	}
	o.Tracer.Begin(0, "task", 1)
	o.Tracer.End(0, "task", 1)
	if err := o.Finish(memory.ExecStats{Fronts: 1}); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	for _, f := range []string{"run.trace.json", "metrics.json", "prof.cpu.pprof", "prof.heap.pprof"} {
		fi, err := os.Stat(filepath.Join(dir, f))
		if err != nil {
			t.Errorf("missing output %s: %v", f, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("output %s is empty", f)
		}
	}
}

// TestListenValidation pins the -listen / -listen-linger rejection
// cases next to the path validation above.
func TestListenValidation(t *testing.T) {
	bad := [][]string{
		{"-listen", "no-port"},
		{"-listen", "127.0.0.1:0:0"},
		{"-listen-linger", "5s"},                            // linger without listen
		{"-listen", "127.0.0.1:0", "-listen-linger", "-1s"}, // negative linger
	}
	for _, args := range bad {
		if _, err := parse(t, append([]string{"-matrix", "PRE2"}, args...)...); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
	if _, err := parse(t, "-matrix", "PRE2", "-listen", "127.0.0.1:0", "-listen-linger", "2s"); err != nil {
		t.Errorf("valid -listen rejected: %v", err)
	}
	if _, err := parse(t, "-matrix", "PRE2", "-listen", ":9090"); err != nil {
		t.Errorf("-listen :port rejected: %v", err)
	}
}

// TestListenLifecycle starts the live plane via the flag path, checks
// the server answers while the run is "executing", and that Finish
// completes the registered run and shuts the server down.
func TestListenLifecycle(t *testing.T) {
	c, err := parse(t, "-matrix", "PRE2", "-workers", "2", "-listen", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	o, err := c.Observability()
	if err != nil {
		t.Fatal(err)
	}
	if o.Tracer == nil {
		t.Fatal("-listen alone must create a tracer")
	}
	if o.Server == nil || o.Run == nil {
		t.Fatal("-listen did not start the live plane")
	}
	if o.Run.Name() != "PRE2" {
		t.Fatalf("run name = %q, want PRE2", o.Run.Name())
	}
	url := o.Server.URL()
	if code := httpStatus(t, url+"/healthz"); code != 200 {
		t.Fatalf("/healthz = %d", code)
	}
	if code := httpStatus(t, url+"/metrics"); code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if got := o.Run.Status(); got != obs.StatusRunning {
		t.Fatalf("run status = %s, want running", got)
	}
	if err := o.Finish(memory.ExecStats{Fronts: 3}); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if got := o.Run.Status(); got != obs.StatusDone {
		t.Fatalf("run status after Finish = %s, want done", got)
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("server still answering after Finish")
	}
}

// TestAbortLifecycle pins the failure path the CLIs' fatal handlers
// take: Abort flips the registered run to StatusFailed (not Done), the
// server shuts down, and the metrics output — including the injected
// fault counters — is still written for post-mortem.
func TestAbortLifecycle(t *testing.T) {
	dir := t.TempDir()
	c, err := parse(t, "-matrix", "PRE2", "-listen", "127.0.0.1:0",
		"-metrics", filepath.Join(dir, "metrics.prom"),
		"-faults", "task:error")
	if err != nil {
		t.Fatal(err)
	}
	o, err := c.Observability()
	if err != nil {
		t.Fatal(err)
	}
	in, err := c.Injector()
	if err != nil {
		t.Fatal(err)
	}
	o.SetFaults(in)
	in.Check(faults.Task, 0) // fire the scheduled fault once
	if err := o.Abort(errors.New("injected failure"), memory.ExecStats{CancelledTasks: 4}); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	if got := o.Run.Status(); got != obs.StatusFailed {
		t.Fatalf("run status after Abort = %s, want failed", got)
	}
	body, err := os.ReadFile(filepath.Join(dir, "metrics.prom"))
	if err != nil {
		t.Fatalf("metrics output missing after Abort: %v", err)
	}
	if err := trace.LintPrometheus(body); err != nil {
		t.Fatalf("aborted-run metrics body: %v", err)
	}
	if v, ok := trace.PromValue(body, "mf_cancelled_tasks_total"); !ok || v != 4 {
		t.Fatalf("mf_cancelled_tasks_total = %v, %v; want 4", v, ok)
	}
	if v, ok := trace.PromValue(body, `mf_faults_injected_total{point="task"}`); !ok || v != 1 {
		t.Fatalf("mf_faults_injected_total = %v, %v; want 1", v, ok)
	}
}

func httpStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}
