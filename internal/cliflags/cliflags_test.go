package cliflags

import (
	"flag"
	"strings"
	"testing"

	"repro/internal/dense"
	"repro/internal/order"
	"repro/internal/parmf"
	"repro/internal/seqmf"
)

// Both executors must satisfy the shared CLI solver surface.
var (
	_ Solver = (*seqmf.Factors)(nil)
	_ Solver = (*parmf.Factors)(nil)

	_ FactorSolver = (*seqmf.Factors)(nil)
	_ FactorSolver = (*parmf.Factors)(nil)
)

func parse(t *testing.T, args ...string) (*Common, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var c Common
	c.Register(fs, 4)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return &c, c.Validate()
}

func TestDefaultsValidate(t *testing.T) {
	c, err := parse(t, "-matrix", "PRE2")
	if err != nil {
		t.Fatal(err)
	}
	if c.Workers != 4 || c.BlockRows < 1 || c.FastKernels || c.NRHS != 1 {
		t.Fatalf("unexpected defaults %+v", c)
	}
	m, err := c.Method()
	if err != nil || m != order.ND {
		t.Fatalf("default ordering %v, %v", m, err)
	}
	sp, err := c.SlavePolicy()
	if err != nil || sp != parmf.SlavesMemory {
		t.Fatalf("default slaves %v, %v", sp, err)
	}
}

// TestTimeoutAndFaultsFlags pins the robustness flags both CLIs share:
// negative -timeout and malformed -faults schedules are rejected at
// validation; valid ones produce a deadline-bound context and an armed
// injector.
func TestTimeoutAndFaultsFlags(t *testing.T) {
	if _, err := parse(t, "-matrix", "PRE2", "-timeout", "-1s"); err == nil {
		t.Error("negative -timeout accepted")
	}
	if _, err := parse(t, "-matrix", "PRE2", "-faults", "no-such-point:error"); err == nil {
		t.Error("unknown fault point accepted")
	}
	if _, err := parse(t, "-matrix", "PRE2", "-faults", "task:no-such-kind"); err == nil {
		t.Error("unknown fault kind accepted")
	}

	c, err := parse(t, "-matrix", "PRE2", "-timeout", "30s", "-faults", "spill-write:error:2:3,task:delay")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := c.Context()
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		t.Error("-timeout did not set a context deadline")
	}
	in, err := c.Injector()
	if err != nil || in == nil {
		t.Fatalf("Injector() = %v, %v; want armed injector", in, err)
	}

	// No flags: Background-equivalent context, nil injector (zero cost).
	c, err = parse(t, "-matrix", "PRE2")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel = c.Context()
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Error("deadline set without -timeout")
	}
	if in, err := c.Injector(); err != nil || in != nil {
		t.Fatalf("Injector() without -faults = %v, %v; want nil, nil", in, err)
	}
}

func TestValidationRejects(t *testing.T) {
	cases := [][]string{
		{"-matrix", "PRE2", "-workers", "0"},
		{"-matrix", "PRE2", "-workers", "-2"},
		{"-matrix", "PRE2", "-front-split", "0"},
		{"-matrix", "PRE2", "-front-split", "-64"},
		{"-matrix", "PRE2", "-block-rows", "0"},
		{"-matrix", "PRE2", "-block-rows", "-3"},
		{"-matrix", "PRE2", "-nrhs", "0"},
		{"-matrix", "PRE2", "-nrhs", "-4"},
		{"-matrix", "PRE2", "-ordering", "BOGUS"},
		{"-matrix", "PRE2", "-ordering", ""},
		{"-matrix", "PRE2", "-slaves", "nobody"},
		{"-matrix", "PRE2", "-root-grid", "-2"},
		{"-matrix", "PRE2", "-root-grid", "5"},                  // > default 4 workers
		{"-matrix", "PRE2", "-workers", "2", "-root-grid", "3"}, // > explicit workers
		{}, // neither -matrix nor -mm
	}
	for _, args := range cases {
		if _, err := parse(t, args...); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRootGridAccepts pins the accepted -root-grid range: -1 disables the
// 2D root path, 0 asks for the auto grid, and positive values up to the
// worker count select the grid row count — all flowing into core.Config.
func TestRootGridAccepts(t *testing.T) {
	for _, rg := range []string{"-1", "0", "1", "4"} {
		c, err := parse(t, "-matrix", "PRE2", "-root-grid", rg)
		if err != nil {
			t.Fatalf("-root-grid %s rejected: %v", rg, err)
		}
		cfg, err := c.CoreConfig()
		if err != nil {
			t.Fatal(err)
		}
		if cfg.RootGrid != c.RootGrid {
			t.Fatalf("-root-grid %s: core config got %d", rg, cfg.RootGrid)
		}
	}
}

func TestLoadSuiteProblem(t *testing.T) {
	c, err := parse(t, "-matrix", "GUPTA3", "-small", "-fast-kernels")
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Load()
	if err != nil {
		t.Fatal(err)
	}
	if a.N == 0 || !a.HasValues() {
		t.Fatalf("loaded matrix n=%d values=%v (GUPTA3 must be filled)", a.N, a.HasValues())
	}
	cfg, err := c.CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Kernel != dense.KernelFast || cfg.FrontSplit != 128 {
		t.Fatalf("core config %+v", cfg)
	}
}

// TestKernelFlagGrammar pins the -kernel grammar, the deprecated
// -fast-kernels alias, and their mutual exclusion.
func TestKernelFlagGrammar(t *testing.T) {
	accept := []struct {
		args []string
		want dense.Kernel
	}{
		{[]string{"-matrix", "PRE2"}, dense.KernelDefault},
		{[]string{"-matrix", "PRE2", "-kernel", "default"}, dense.KernelDefault},
		{[]string{"-matrix", "PRE2", "-kernel", "fast"}, dense.KernelFast},
		{[]string{"-matrix", "PRE2", "-kernel", "FAST"}, dense.KernelFast},
		{[]string{"-matrix", "PRE2", "-kernel", "simd"}, dense.KernelSIMD},
		{[]string{"-matrix", "PRE2", "-kernel", "auto"}, dense.KernelAuto},
		{[]string{"-matrix", "PRE2", "-fast-kernels"}, dense.KernelFast},
	}
	for _, c := range accept {
		fl, err := parse(t, c.args...)
		if err != nil {
			t.Fatalf("args %v rejected: %v", c.args, err)
		}
		k, err := fl.KernelFamily()
		if err != nil || k != c.want {
			t.Fatalf("args %v: KernelFamily() = %v, %v; want %v", c.args, k, err, c.want)
		}
		cfg, err := fl.CoreConfig()
		if err != nil || cfg.Kernel != c.want {
			t.Fatalf("args %v: core config kernel %v, %v; want %v", c.args, cfg.Kernel, err, c.want)
		}
	}

	reject := [][]string{
		{"-matrix", "PRE2", "-kernel", "turbo"},
		{"-matrix", "PRE2", "-kernel", "fastest"},
		{"-matrix", "PRE2", "-kernel", "fast", "-fast-kernels"},
		{"-matrix", "PRE2", "-kernel", "simd", "-fast-kernels"},
		{"-matrix", "PRE2", "-kernel", "default", "-fast-kernels"},
	}
	for _, args := range reject {
		if _, err := parse(t, args...); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
	if _, err := parse(t, "-matrix", "PRE2", "-kernel", "fast", "-fast-kernels"); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("conflict error not descriptive: %v", err)
	}
}

func TestLoadUnknown(t *testing.T) {
	c, err := parse(t, "-matrix", "NO_SUCH_PROBLEM")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(); err == nil || !strings.Contains(err.Error(), "NO_SUCH_PROBLEM") {
		t.Fatalf("unknown problem error %v", err)
	}
}
