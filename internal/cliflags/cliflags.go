// Package cliflags holds the flag set, validation and input loading shared
// by the factorization CLIs (cmd/parfactor, cmd/oocfactor): problem
// selection, ordering, worker count, the within-front split knobs and the
// kernel-family switch. Each command registers the common set once and
// adds its own specific flags next to it, so the two tools cannot drift
// apart on the meaning or validation of the shared ones.
package cliflags

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/faults"
	"repro/internal/order"
	"repro/internal/parmf"
	"repro/internal/sparse"
	"repro/internal/workload"
)

// Common is the flag set shared by the factorization CLIs.
type Common struct {
	Matrix      string
	MM          string
	Ordering    string
	Workers     int
	Split       int64
	FrontSplit  int
	BlockRows   int
	RootGrid    int
	Slaves      string
	Kernel      string
	FastKernels bool
	Small       bool
	NRHS        int

	// Observability outputs (see Observability): empty = disabled.
	Trace   string // Chrome trace_event JSON path
	Metrics string // counters snapshot path (.json = JSON, else Prometheus text)
	Pprof   string // runtime profile path prefix (<prefix>.cpu.pprof, <prefix>.heap.pprof)

	// Listen, when non-empty, serves the live observability plane
	// (internal/obs: /metrics, /progress, /runs, pprof, trace dumps) on
	// this host:port while the run executes. ListenLinger keeps the
	// server up that long after the run finishes, so short runs can still
	// be scraped (CI does exactly this).
	Listen       string
	ListenLinger time.Duration

	// Timeout, when positive, bounds the whole run (analysis +
	// factorization + solve) with a context deadline: the executors drain
	// deterministically at the next front boundary and the CLI exits
	// nonzero with a descriptive error. 0 = no deadline.
	Timeout time.Duration
	// Faults is a fault-injection schedule (internal/faults.Parse
	// grammar: "point:kind[:nth[:count]]", comma-separated) armed on the
	// run for chaos testing. Empty = disabled.
	Faults string
}

// Solver is the solve surface the CLIs drive after a factorization:
// right-hand sides in the original (pre-permutation) ordering, single
// vector or a row-major n x nrhs block. Both seqmf.Factors and
// parmf.Factors satisfy it.
type Solver interface {
	SolveOriginal(b []float64) ([]float64, error)
	SolveOriginalMulti(b []float64, nrhs int) ([]float64, error)
}

// FactorSolver is a Solver whose factor store must be released when the
// run is done (e.g. an out-of-core spill file).
type FactorSolver interface {
	Solver
	Close() error
}

// Register declares the common flags on fs (use flag.CommandLine for the
// process flag set). defaultWorkers seeds -workers, which differs between
// the tools (parfactor defaults parallel, oocfactor sequential).
func (c *Common) Register(fs *flag.FlagSet, defaultWorkers int) {
	fs.StringVar(&c.Matrix, "matrix", "", "suite problem name (see experiments -table 1)")
	fs.StringVar(&c.MM, "mm", "", "MatrixMarket file to read instead of a suite problem")
	fs.StringVar(&c.Ordering, "ordering", "METIS", "fill-reducing ordering: METIS|PORD|AMD|AMF|RCM|NATURAL")
	fs.IntVar(&c.Workers, "workers", defaultWorkers, "worker goroutine count")
	fs.Int64Var(&c.Split, "split", 0, "split masters larger than this many entries (0 = off)")
	fs.IntVar(&c.FrontSplit, "front-split", 128, "factor fronts at least this large via within-front master/slave tasks")
	fs.IntVar(&c.BlockRows, "block-rows", dense.DefaultBlockRows, "panel width / tile edge of the blocked kernels and within-front partitions")
	fs.IntVar(&c.RootGrid, "root-grid", 0, "2D (type-3) root-front worker grid rows: 0 = auto (floor(sqrt(workers))), -1 = 1D roots, N > 0 = N grid rows")
	fs.StringVar(&c.Slaves, "slaves", "memory", "slave selection for split fronts: memory (Algorithm 1) or workload")
	fs.StringVar(&c.Kernel, "kernel", "", "dense kernel family: default|fast|simd|auto (auto picks simd when AVX2/FMA is available, fast otherwise)")
	fs.BoolVar(&c.FastKernels, "fast-kernels", false, "deprecated alias of -kernel=fast; cannot be combined with -kernel")
	fs.BoolVar(&c.Small, "small", false, "use the reduced (test-scale) suite")
	fs.IntVar(&c.NRHS, "nrhs", 1, "number of right-hand sides solved as one blocked multi-RHS pass")
	fs.StringVar(&c.Trace, "trace", "", "write Chrome trace_event JSON of the run to this file (chrome://tracing / Perfetto)")
	fs.StringVar(&c.Metrics, "metrics", "", "write the aggregated counters snapshot to this file (.json = JSON, otherwise Prometheus text format)")
	fs.StringVar(&c.Pprof, "pprof", "", "capture runtime profiles to <prefix>.cpu.pprof and <prefix>.heap.pprof")
	fs.StringVar(&c.Listen, "listen", "", "serve live observability HTTP (/metrics, /progress, /runs, /debug/pprof) on this host:port during the run")
	fs.DurationVar(&c.ListenLinger, "listen-linger", 0, "keep the -listen server up this long after the run completes (lets scrapers catch short runs)")
	fs.DurationVar(&c.Timeout, "timeout", 0, "abort the run after this long (0 = no deadline); the executors drain cleanly and the tool exits nonzero")
	fs.StringVar(&c.Faults, "faults", "", "deterministic fault-injection schedule, e.g. 'spill-write:error:2:3,task:delay' (chaos testing; see internal/faults)")
}

// Validate checks the numeric ranges of the common flags.
func (c *Common) Validate() error {
	if c.Workers < 1 {
		return fmt.Errorf("-workers must be >= 1 (got %d)", c.Workers)
	}
	if c.FrontSplit < 1 {
		return fmt.Errorf("-front-split must be >= 1 (got %d)", c.FrontSplit)
	}
	if c.BlockRows < 1 {
		return fmt.Errorf("-block-rows must be >= 1 (got %d)", c.BlockRows)
	}
	if c.NRHS < 1 {
		return fmt.Errorf("-nrhs must be >= 1 (got %d)", c.NRHS)
	}
	if c.RootGrid < -1 {
		return fmt.Errorf("-root-grid must be -1 (disable), 0 (auto) or positive grid rows (got %d)", c.RootGrid)
	}
	if c.RootGrid > c.Workers {
		return fmt.Errorf("-root-grid %d exceeds -workers %d (grid rows cannot outnumber workers)", c.RootGrid, c.Workers)
	}
	if _, err := c.Method(); err != nil {
		return err
	}
	if _, err := c.SlavePolicy(); err != nil {
		return err
	}
	if c.Kernel != "" && c.FastKernels {
		return fmt.Errorf("-kernel and -fast-kernels are mutually exclusive (-fast-kernels is a deprecated alias of -kernel=fast)")
	}
	if _, err := c.KernelFamily(); err != nil {
		return err
	}
	if c.Matrix == "" && c.MM == "" {
		return fmt.Errorf("need -matrix NAME or -mm FILE")
	}
	if err := c.validateOutputs(); err != nil {
		return err
	}
	if c.Listen != "" {
		if _, _, err := net.SplitHostPort(c.Listen); err != nil {
			return fmt.Errorf("-listen %q is not host:port: %v", c.Listen, err)
		}
	}
	if c.ListenLinger < 0 {
		return fmt.Errorf("-listen-linger must be >= 0 (got %v)", c.ListenLinger)
	}
	if c.ListenLinger > 0 && c.Listen == "" {
		return fmt.Errorf("-listen-linger needs -listen")
	}
	if c.Timeout < 0 {
		return fmt.Errorf("-timeout must be >= 0 (got %v)", c.Timeout)
	}
	if _, err := c.Injector(); err != nil {
		return fmt.Errorf("-faults: %v", err)
	}
	return nil
}

// Context returns the run context -timeout asks for: a deadline-bound
// context when the flag is positive, plain Background otherwise. The
// caller must invoke cancel on every path (it is never nil).
func (c *Common) Context() (context.Context, context.CancelFunc) {
	if c.Timeout > 0 {
		return context.WithTimeout(context.Background(), c.Timeout)
	}
	return context.WithCancel(context.Background())
}

// Injector parses -faults into an armed injector (nil when the flag is
// empty — the executors then skip all fault checks at zero cost).
func (c *Common) Injector() (*faults.Injector, error) {
	return faults.Parse(c.Faults)
}

// validateOutputs checks the observability paths: each must be a usable
// file path (not an existing directory) and the outputs must not collide
// with each other (-pprof is a prefix, so it collides when a derived
// profile path equals another output).
func (c *Common) validateOutputs() error {
	outs := map[string]string{}
	add := func(flagName, path string) error {
		if path == "" {
			return nil
		}
		if fi, err := os.Stat(path); err == nil && fi.IsDir() {
			return fmt.Errorf("%s %q is a directory", flagName, path)
		}
		if prev, ok := outs[path]; ok {
			return fmt.Errorf("%s %q collides with %s", flagName, path, prev)
		}
		outs[path] = flagName
		return nil
	}
	if err := add("-trace", c.Trace); err != nil {
		return err
	}
	if err := add("-metrics", c.Metrics); err != nil {
		return err
	}
	if c.Pprof != "" {
		if fi, err := os.Stat(c.Pprof); err == nil && fi.IsDir() {
			return fmt.Errorf("-pprof prefix %q is a directory", c.Pprof)
		}
		for _, p := range []string{c.Pprof + ".cpu.pprof", c.Pprof + ".heap.pprof"} {
			if err := add("-pprof", p); err != nil {
				return err
			}
		}
	}
	return nil
}

// Method parses -ordering.
func (c *Common) Method() (order.Method, error) {
	switch strings.ToUpper(c.Ordering) {
	case "METIS", "ND":
		return order.ND, nil
	case "PORD":
		return order.PORD, nil
	case "AMD":
		return order.AMD, nil
	case "AMF":
		return order.AMF, nil
	case "RCM":
		return order.RCM, nil
	case "NATURAL":
		return order.Natural, nil
	}
	return 0, fmt.Errorf("unknown ordering %q", c.Ordering)
}

// KernelFamily resolves the kernel-family flags: -kernel when given
// (default|fast|simd|auto), else the deprecated -fast-kernels boolean,
// else the default family. The returned Kernel may be dense.KernelAuto —
// the executors resolve it to the concrete family and report that in
// their stats.
func (c *Common) KernelFamily() (dense.Kernel, error) {
	if c.Kernel != "" {
		k, err := dense.ParseKernel(c.Kernel)
		if err != nil {
			return dense.KernelDefault, fmt.Errorf("-kernel: %v", err)
		}
		return k, nil
	}
	if c.FastKernels {
		return dense.KernelFast, nil
	}
	return dense.KernelDefault, nil
}

// SlavePolicy parses -slaves.
func (c *Common) SlavePolicy() (parmf.SlavePolicy, error) {
	switch strings.ToLower(c.Slaves) {
	case "memory":
		return parmf.SlavesMemory, nil
	case "workload":
		return parmf.SlavesWorkload, nil
	}
	return 0, fmt.Errorf("unknown slave policy %q", c.Slaves)
}

// Load reads the selected matrix (-mm file or suite problem) and fills
// pattern-only problems with deterministic diagonally dominant values.
func (c *Common) Load() (*sparse.CSC, error) {
	var a *sparse.CSC
	switch {
	case c.MM != "":
		f, err := os.Open(c.MM)
		if err != nil {
			return nil, err
		}
		a, err = sparse.ReadMatrixMarket(f)
		f.Close()
		if err != nil {
			return nil, err
		}
	case c.Matrix != "":
		suite := workload.Suite()
		if c.Small {
			suite = workload.SmallSuite()
		}
		p, err := workload.ByName(suite, c.Matrix)
		if err != nil {
			return nil, err
		}
		a = p.Matrix()
	default:
		return nil, fmt.Errorf("need -matrix NAME or -mm FILE")
	}
	if !a.HasValues() {
		if err := sparse.FillDominant(a, rand.New(rand.NewSource(7))); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// CoreConfig builds the analysis configuration the common flags describe.
func (c *Common) CoreConfig() (core.Config, error) {
	m, err := c.Method()
	if err != nil {
		return core.Config{}, err
	}
	kern, err := c.KernelFamily()
	if err != nil {
		return core.Config{}, err
	}
	cfg := core.DefaultConfig(m, c.Workers)
	cfg.SplitThreshold = c.Split
	cfg.FrontSplit = c.FrontSplit
	cfg.BlockRows = c.BlockRows
	cfg.RootGrid = c.RootGrid
	cfg.Kernel = kern
	return cfg, nil
}
