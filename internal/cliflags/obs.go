package cliflags

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/memory"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Obs is the observability lifecycle of one CLI run: it owns the tracer
// the executors record into, the live HTTP plane -listen asks for, and
// the profile/trace/metrics files the run ends by writing. Build one
// with Common.Observability after flag parsing, attach Obs.Tracer to
// the core/executor config, and call Finish with the run's stats before
// exiting.
type Obs struct {
	// Tracer records the run; nil when none of -trace, -metrics or
	// -listen was given (the executors then skip all event work).
	Tracer *trace.Tracer
	// Server is the live observability plane (-listen); nil otherwise.
	// Its registry is open: a CLI that runs several factorizations may
	// register more runs next to Run.
	Server *obs.Server
	// Run is this process's registered run on Server (same nil-ness).
	Run *obs.Run

	trace   string
	metrics string
	pprof   string
	linger  time.Duration
	cpuFile *os.File
	faults  *faults.Injector
}

// Observability starts the observability the flags ask for: a CPU
// profile when -pprof is set, a tracer when -trace, -metrics or -listen
// is, and the live HTTP server when -listen is. The zero Obs (all flags
// empty) is valid and Finish on it is a no-op.
func (c *Common) Observability() (*Obs, error) {
	o := &Obs{trace: c.Trace, metrics: c.Metrics, pprof: c.Pprof, linger: c.ListenLinger}
	if c.Trace != "" || c.Metrics != "" || c.Listen != "" {
		o.Tracer = trace.New(c.Workers)
	}
	if c.Listen != "" {
		srv, err := obs.NewServer(c.Listen, nil)
		if err != nil {
			return nil, err
		}
		name := c.Matrix
		if name == "" {
			name = filepath.Base(c.MM)
		}
		run, err := srv.Registry().Register(name, o.Tracer)
		if err != nil {
			srv.Close()
			return nil, err
		}
		o.Server, o.Run = srv, run
		fmt.Fprintf(os.Stderr, "observability: live on %s (metrics, progress, runs, pprof)\n", srv.URL())
	}
	if c.Pprof != "" {
		f, err := os.Create(c.Pprof + ".cpu.pprof")
		if err != nil {
			o.closeServer()
			return nil, fmt.Errorf("create CPU profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			o.closeServer()
			return nil, fmt.Errorf("start CPU profile: %w", err)
		}
		o.cpuFile = f
	}
	return o, nil
}

// SetFaults attaches the run's fault injector (from Common.Injector):
// live /metrics scrapes and the final -metrics snapshot then carry the
// mf_faults_injected_total series. nil is a no-op.
func (o *Obs) SetFaults(in *faults.Injector) {
	o.faults = in
	if o.Run != nil {
		o.Run.SetFaults(in)
	}
}

// Finish completes the registered run with the executor's authoritative
// stats, keeps the live server up for the -listen-linger window, shuts
// it down, then stops the CPU profile, writes the heap profile, and
// renders the trace and metrics outputs. stats is the run's executor
// stats (zero is fine when the run failed before producing any). Finish
// reports the first error but always attempts every output.
func (o *Obs) Finish(stats memory.ExecStats) error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if o.Run != nil && o.Run.Status() == obs.StatusRunning {
		o.Run.Complete(stats)
	}
	if o.Server != nil {
		if o.linger > 0 {
			fmt.Fprintf(os.Stderr, "observability: run done, serving %s for another %v\n", o.Server.URL(), o.linger)
			time.Sleep(o.linger)
		}
		keep(o.Server.Close())
		o.Server = nil
	}
	if o.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(o.cpuFile.Close())
		o.cpuFile = nil
	}
	if o.pprof != "" {
		keep(o.writeHeapProfile(o.pprof + ".heap.pprof"))
	}
	if o.trace != "" && o.Tracer != nil {
		keep(writeTo(o.trace, o.Tracer.WriteChromeTrace))
	}
	if o.metrics != "" && o.Tracer != nil {
		snap := o.Tracer.Snapshot(stats)
		if o.faults != nil {
			for _, fs := range o.faults.Stats() {
				if fs.Fired > 0 {
					snap.Faults = append(snap.Faults, trace.FaultStat{Point: string(fs.Point), Count: fs.Fired})
				}
			}
		}
		if strings.HasSuffix(o.metrics, ".json") {
			keep(writeTo(o.metrics, snap.WriteJSON))
		} else {
			keep(writeTo(o.metrics, snap.WritePrometheus))
		}
	}
	return first
}

// Abort is Finish for a run that died: it marks the registered run
// failed with err (so a lingering /runs scrape reports status "failed"
// and the error text) and then runs the normal shutdown — linger
// window, server close, profiles, trace and metrics outputs, which are
// exactly what post-mortem debugging of the failure wants. stats may be
// partial or zero.
func (o *Obs) Abort(err error, stats memory.ExecStats) error {
	if o.Run != nil && o.Run.Status() == obs.StatusRunning {
		o.Run.Fail(err)
	}
	return o.Finish(stats)
}

// closeServer tears the live plane down on a failed startup path.
func (o *Obs) closeServer() {
	if o.Server != nil {
		o.Server.Close()
		o.Server, o.Run = nil, nil
	}
}

func (o *Obs) writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC() // materialize up-to-date allocation stats
	err = pprof.WriteHeapProfile(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeTo creates path and streams write into it, closing on all paths.
func writeTo(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
