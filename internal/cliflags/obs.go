package cliflags

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/memory"
	"repro/internal/trace"
)

// Obs is the observability lifecycle of one CLI run: it owns the tracer
// the executors record into and the profile/trace/metrics files the run
// ends by writing. Build one with Common.Observability after flag
// parsing, attach Obs.Tracer to the core/executor config, and call
// Finish with the run's stats before exiting.
type Obs struct {
	// Tracer records the run; nil when neither -trace nor -metrics was
	// given (the executors then skip all event work).
	Tracer *trace.Tracer

	trace   string
	metrics string
	pprof   string
	cpuFile *os.File
}

// Observability starts the observability the flags ask for: a CPU
// profile when -pprof is set, and a tracer when -trace or -metrics is.
// The zero Obs (all flags empty) is valid and Finish on it is a no-op.
func (c *Common) Observability() (*Obs, error) {
	o := &Obs{trace: c.Trace, metrics: c.Metrics, pprof: c.Pprof}
	if c.Trace != "" || c.Metrics != "" {
		o.Tracer = trace.New(c.Workers)
	}
	if c.Pprof != "" {
		f, err := os.Create(c.Pprof + ".cpu.pprof")
		if err != nil {
			return nil, fmt.Errorf("create CPU profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("start CPU profile: %w", err)
		}
		o.cpuFile = f
	}
	return o, nil
}

// Finish stops the CPU profile, writes the heap profile, and renders the
// trace and metrics outputs. stats is the run's executor stats (zero is
// fine when the run failed before producing any). Finish reports the
// first error but always attempts every output.
func (o *Obs) Finish(stats memory.ExecStats) error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if o.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(o.cpuFile.Close())
		o.cpuFile = nil
	}
	if o.pprof != "" {
		keep(o.writeHeapProfile(o.pprof + ".heap.pprof"))
	}
	if o.trace != "" && o.Tracer != nil {
		keep(writeTo(o.trace, o.Tracer.WriteChromeTrace))
	}
	if o.metrics != "" && o.Tracer != nil {
		snap := o.Tracer.Snapshot(stats)
		if strings.HasSuffix(o.metrics, ".json") {
			keep(writeTo(o.metrics, snap.WriteJSON))
		} else {
			keep(writeTo(o.metrics, snap.WritePrometheus))
		}
	}
	return first
}

func (o *Obs) writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC() // materialize up-to-date allocation stats
	err = pprof.WriteHeapProfile(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeTo creates path and streams write into it, closing on all paths.
func writeTo(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
