package memory

import (
	"sync"
	"testing"
)

func TestMeterPeak(t *testing.T) {
	var m Meter
	m.Add(10)
	m.Add(20)
	m.Add(-15)
	m.Add(5)
	if got := m.Cur(); got != 20 {
		t.Errorf("cur %d, want 20", got)
	}
	if got := m.Peak(); got != 30 {
		t.Errorf("peak %d, want 30", got)
	}
}

func TestMeterNilIsNoop(t *testing.T) {
	var m *Meter
	m.Add(5)
	if m.Cur() != 0 || m.Peak() != 0 {
		t.Error("nil meter not a no-op")
	}
}

func TestMeterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative meter did not panic")
		}
	}()
	var m Meter
	m.Add(-1)
}

// TestMeterConcurrentExactPeak drives the meter from many goroutines in
// balanced +x/-x pairs; the final value must be 0 and the peak at least
// one pair's amplitude (the exactness argument: peaks are taken under the
// same lock as the update, never reconstructed from racy reads).
func TestMeterConcurrentExactPeak(t *testing.T) {
	var m Meter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(amp int64) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Add(amp)
				m.Add(-amp)
			}
		}(int64(g + 1))
	}
	wg.Wait()
	if m.Cur() != 0 {
		t.Errorf("cur %d after balanced ops", m.Cur())
	}
	if m.Peak() < 8 {
		t.Errorf("peak %d, want >= 8", m.Peak())
	}
}
