package memory

import (
	"sync"
	"testing"
)

func TestSafeTrackerMirrorsTracker(t *testing.T) {
	s := NewSafeTracker(2)
	s.AllocFront(0, 100)
	s.PushCB(0, 40)
	s.FreeFront(0, 100)
	s.AllocFront(1, 30)
	s.PopCB(0, 40) // consumed by worker 1's assembly
	s.AddFactors(1, 25)
	if got := s.ActivePeak(0); got != 140 {
		t.Errorf("worker 0 active peak %d, want 140", got)
	}
	if got := s.StackPeak(0); got != 40 {
		t.Errorf("worker 0 stack peak %d, want 40", got)
	}
	if got := s.Stack(0); got != 0 {
		t.Errorf("worker 0 stack %d, want 0", got)
	}
	if got := s.MaxActivePeak(); got != 140 {
		t.Errorf("max active peak %d, want 140", got)
	}
	procs := s.Snapshot()
	if procs[1].Factors != 25 || procs[1].Fronts != 30 {
		t.Errorf("worker 1 snapshot %+v", procs[1])
	}
}

// TestSafeTrackerConcurrent hammers the tracker from several goroutines,
// including cross-worker pops; meaningful under -race, and the totals must
// balance out.
func TestSafeTrackerConcurrent(t *testing.T) {
	const workers = 4
	const rounds = 1000
	s := NewSafeTracker(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			peer := (id + 1) % workers
			for i := 0; i < rounds; i++ {
				s.AllocFront(id, 10)
				s.PushCB(peer, 5) // give the peer a CB...
				s.PopCB(peer, 5)  // ...and take it back
				s.FreeFront(id, 10)
				s.AddFactors(id, 1)
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if got := s.Stack(w); got != 0 {
			t.Errorf("worker %d stack %d, want 0", w, got)
		}
	}
	procs := s.Snapshot()
	for w := 0; w < workers; w++ {
		if procs[w].Factors != rounds {
			t.Errorf("worker %d factors %d, want %d", w, procs[w].Factors, rounds)
		}
		if procs[w].Fronts != 0 {
			t.Errorf("worker %d fronts %d, want 0", w, procs[w].Fronts)
		}
	}
}
