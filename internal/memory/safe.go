package memory

import "sync"

// SafeTracker is a mutex-guarded variant of Tracker for real shared-memory
// executors (internal/parmf), where the "processors" are worker goroutines
// running in wall-clock time rather than simulated des.Time. A worker may
// pop a contribution block from *another* worker's stack (when it assembles
// a front whose children were factored elsewhere), so every mutation and
// read is serialized. Quantities remain model entries, exactly as in
// Tracker, so parallel measurements stay comparable with the simulator's.
type SafeTracker struct {
	mu  sync.Mutex
	t   *Tracker
	obs func(worker int, stack, active int64)
}

// NewSafeTracker returns a concurrency-safe tracker for p workers.
func NewSafeTracker(p int) *SafeTracker {
	return &SafeTracker{t: NewTracker(nil, p)}
}

// Observe installs fn as the tracker's observer: it is invoked under the
// tracker's lock after every stack or front mutation, with the mutated
// worker's post-mutation stack and active (stack + fronts) values. Every
// mutation is observed, so the per-worker maxima of the observed stream
// equal the worker peaks exactly — the execution tracer builds the
// paper's per-processor memory timelines from it. A nil fn removes the
// observer.
func (s *SafeTracker) Observe(fn func(worker int, stack, active int64)) {
	s.mu.Lock()
	s.obs = fn
	s.mu.Unlock()
}

// observe reports worker p's state to the observer; callers hold s.mu.
func (s *SafeTracker) observe(p int) {
	if s.obs != nil {
		pr := &s.t.Procs[p]
		s.obs(p, pr.Stack, pr.Active())
	}
}

// PushCB stacks a contribution block of the given size on worker p.
func (s *SafeTracker) PushCB(p int, entries int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.t.PushCB(p, entries)
	s.observe(p)
}

// PopCB removes a contribution block from worker p's stack (callable from
// any worker).
func (s *SafeTracker) PopCB(p int, entries int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.t.PopCB(p, entries)
	s.observe(p)
}

// AllocFront allocates an active front on worker p.
func (s *SafeTracker) AllocFront(p int, entries int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.t.AllocFront(p, entries)
	s.observe(p)
}

// FreeFront releases an active front on worker p.
func (s *SafeTracker) FreeFront(p int, entries int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.t.FreeFront(p, entries)
	s.observe(p)
}

// AddFactors accounts factor entries produced on worker p.
func (s *SafeTracker) AddFactors(p int, entries int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.t.AddFactors(p, entries)
}

// Stack returns worker p's current CB-stack size.
func (s *SafeTracker) Stack(p int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.t.Procs[p].Stack
}

// Active returns worker p's current active memory (stack + live fronts
// and row blocks) — the instantaneous metric of the memory-based slave
// selection.
func (s *SafeTracker) Active(p int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.t.Procs[p].Active()
}

// ActivePeak returns worker p's active-memory peak (stack + fronts).
func (s *SafeTracker) ActivePeak(p int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.t.Procs[p].ActivePeak
}

// StackPeak returns worker p's CB-stack-only peak.
func (s *SafeTracker) StackPeak(p int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.t.Procs[p].StackPeak
}

// MaxActivePeak returns the maximum active peak over workers.
func (s *SafeTracker) MaxActivePeak() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.t.MaxActivePeak()
}

// Snapshot returns a copy of the per-worker accounting.
func (s *SafeTracker) Snapshot() []Proc {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Proc, len(s.t.Procs))
	copy(out, s.t.Procs)
	return out
}
