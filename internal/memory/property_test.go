package memory

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/des"
)

// TestPropertyAccountingIdentities: under arbitrary interleavings of
// stack pushes/pops and front allocs/frees (kept legal), the tracker's
// Active equals the running sum, peaks are the running maxima, and the
// peak composition decomposes the peak exactly.
func TestPropertyAccountingIdentities(t *testing.T) {
	type op struct {
		Kind uint8
		Size uint16
	}
	prop := func(ops []op) bool {
		eng := des.New()
		tr := NewTracker(eng, 1)
		var stack, fronts, active, activePeak, stackPeak int64
		for _, o := range ops {
			sz := int64(o.Size%10_000) + 1
			switch o.Kind % 4 {
			case 0:
				tr.PushCB(0, sz)
				stack += sz
			case 1:
				if stack >= sz {
					tr.PopCB(0, sz)
					stack -= sz
				}
			case 2:
				tr.AllocFront(0, sz)
				fronts += sz
			case 3:
				if fronts >= sz {
					tr.FreeFront(0, sz)
					fronts -= sz
				}
			}
			active = stack + fronts
			if active > activePeak {
				activePeak = active
			}
			if stack > stackPeak {
				stackPeak = stack
			}
		}
		p := &tr.Procs[0]
		if p.Active() != active || p.Stack != stack || p.Fronts != fronts {
			return false
		}
		if p.ActivePeak != activePeak || p.StackPeak != stackPeak {
			return false
		}
		if p.PeakStack+p.PeakFronts != p.ActivePeak {
			return false
		}
		// No factors were added, so the in-core total peak must coincide
		// with the active peak.
		if p.TotalPeak != activePeak || tr.MaxTotalPeak() != activePeak {
			return false
		}
		return tr.MaxActivePeak() == activePeak && tr.MaxStackPeak() == stackPeak
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyTraceMatchesPeaks: with tracing on, the maximum of the
// trace samples equals the recorded peaks.
func TestPropertyTraceMatchesPeaks(t *testing.T) {
	prop := func(sizes []uint16) bool {
		eng := des.New()
		tr := NewTracker(eng, 1)
		tr.Procs[0].EnableTrace()
		var live []int64
		for i, s := range sizes {
			sz := int64(s%1000) + 1
			if i%3 == 2 && len(live) > 0 {
				tr.PopCB(0, live[len(live)-1])
				live = live[:len(live)-1]
			} else {
				tr.PushCB(0, sz)
				live = append(live, sz)
			}
			eng.After(1, func() {})
		}
		var maxA, maxS int64
		for _, tp := range tr.Procs[0].Trace() {
			if tp.Active > maxA {
				maxA = tp.Active
			}
			if tp.Stack > maxS {
				maxS = tp.Stack
			}
		}
		return maxA == tr.Procs[0].ActivePeak && maxS == tr.Procs[0].StackPeak
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(32))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestNegativePanicsInjection: popping or freeing more than is held is a
// modeling bug and must panic loudly, not corrupt the accounting.
func TestNegativePanicsInjection(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    func(tr *Tracker)
	}{
		{"pop empty stack", func(tr *Tracker) { tr.PopCB(0, 1) }},
		{"free empty fronts", func(tr *Tracker) { tr.FreeFront(0, 1) }},
		{"over-pop", func(tr *Tracker) { tr.PushCB(0, 5); tr.PopCB(0, 6) }},
		{"over-free", func(tr *Tracker) { tr.AllocFront(0, 5); tr.FreeFront(0, 6) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc.f(NewTracker(des.New(), 1))
		})
	}
}

// TestSnapshotCapturedAtPeak: the snapshot callback runs exactly when the
// active peak is raised, and PeakNote keeps the note from the peak, not
// from later smaller states.
func TestSnapshotCapturedAtPeak(t *testing.T) {
	eng := des.New()
	tr := NewTracker(eng, 1)
	state := "low"
	tr.SetSnapshot(0, func() string { return state })
	tr.AllocFront(0, 100)
	state = "high"
	tr.AllocFront(0, 100) // peak raised here -> snapshot "high"
	state = "after"
	tr.FreeFront(0, 150) // lower: no snapshot
	if tr.Procs[0].PeakNote != "high" {
		t.Fatalf("PeakNote = %q, want %q", tr.Procs[0].PeakNote, "high")
	}
}
