package memory

import (
	"testing"

	"repro/internal/des"
)

func TestPeaks(t *testing.T) {
	tr := NewTracker(nil, 2)
	tr.AllocFront(0, 100)
	tr.PushCB(0, 50)
	if tr.Procs[0].ActivePeak != 150 {
		t.Errorf("active peak %d", tr.Procs[0].ActivePeak)
	}
	if tr.Procs[0].StackPeak != 50 {
		t.Errorf("stack peak %d", tr.Procs[0].StackPeak)
	}
	tr.FreeFront(0, 100)
	tr.PopCB(0, 50)
	if tr.Procs[0].Active() != 0 {
		t.Errorf("not freed: %d", tr.Procs[0].Active())
	}
	if tr.Procs[0].ActivePeak != 150 {
		t.Error("peak lost after free")
	}
	if tr.MaxActivePeak() != 150 {
		t.Errorf("MaxActivePeak %d", tr.MaxActivePeak())
	}
}

func TestNegativePanics(t *testing.T) {
	tr := NewTracker(nil, 1)
	defer func() {
		if recover() == nil {
			t.Error("no panic on negative stack")
		}
	}()
	tr.PopCB(0, 10)
}

func TestFactorsAndAverages(t *testing.T) {
	tr := NewTracker(nil, 2)
	tr.AddFactors(0, 100)
	tr.AddFactors(1, 200)
	if tr.TotalFactors() != 300 {
		t.Errorf("factors %d", tr.TotalFactors())
	}
	tr.PushCB(0, 10)
	tr.PushCB(1, 30)
	if avg := tr.AvgActivePeak(); avg != 20 {
		t.Errorf("avg %v", avg)
	}
	if tr.MaxStackPeak() != 30 {
		t.Errorf("max stack %d", tr.MaxStackPeak())
	}
}

func TestTrace(t *testing.T) {
	eng := des.New()
	tr := NewTracker(eng, 1)
	tr.Procs[0].EnableTrace()
	eng.At(5, func() { tr.PushCB(0, 10) })
	eng.At(9, func() { tr.AllocFront(0, 20) })
	eng.At(12, func() { tr.PopCB(0, 10) })
	eng.Run()
	tp := tr.Procs[0].Trace()
	if len(tp) != 3 {
		t.Fatalf("%d trace points", len(tp))
	}
	if tp[0].T != 5 || tp[0].Stack != 10 || tp[0].Active != 10 {
		t.Errorf("point 0: %+v", tp[0])
	}
	if tp[1].T != 9 || tp[1].Active != 30 {
		t.Errorf("point 1: %+v", tp[1])
	}
	if tp[2].T != 12 || tp[2].Stack != 0 || tp[2].Active != 20 {
		t.Errorf("point 2: %+v", tp[2])
	}
}
