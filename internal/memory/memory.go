// Package memory models the per-processor memory of the multifrontal
// factorization, mirroring the paper's three storage areas (Section 2):
// the factors area (monotonically growing), the stack of contribution
// blocks, and the active frontal matrices. All quantities are in matrix
// entries. Peaks and optional time-series traces are recorded for the
// experiment tables and the Figure 4/6/8-style memory evolution plots.
package memory

import (
	"fmt"

	"repro/internal/des"
)

// TracePoint is one sample of a processor's memory evolution.
type TracePoint struct {
	T      des.Time
	Stack  int64 // contribution blocks
	Active int64 // contribution blocks + live fronts
}

// Proc tracks one processor's memory.
type Proc struct {
	Factors int64 // factor entries stored so far
	Stack   int64 // stacked contribution blocks
	Fronts  int64 // active frontal matrices (incl. slave row blocks)

	StackPeak  int64 // peak of Stack
	ActivePeak int64 // peak of Stack + Fronts (the paper's stack-memory metric)
	TotalPeak  int64 // peak of Factors + Stack + Fronts (in-core execution)

	// Peak composition: the state when ActivePeak was last raised.
	PeakStack  int64    // Stack component at the active peak
	PeakFronts int64    // Fronts component at the active peak
	PeakTime   des.Time // when the active peak was reached
	PeakNote   string   // snapshot (see Tracker.SnapshotFn) at the peak

	trace    []TracePoint
	tracing  bool
	lastTime des.Time
	snap     func() string
}

// Active returns the current active memory (stack + fronts).
func (p *Proc) Active() int64 { return p.Stack + p.Fronts }

// EnableTrace starts recording a memory trace.
func (p *Proc) EnableTrace() { p.tracing = true }

// Trace returns the recorded samples.
func (p *Proc) Trace() []TracePoint { return p.trace }

func (p *Proc) bump(t des.Time) {
	if p.Stack > p.StackPeak {
		p.StackPeak = p.Stack
	}
	if tot := p.Factors + p.Stack + p.Fronts; tot > p.TotalPeak {
		p.TotalPeak = tot
	}
	if a := p.Active(); a > p.ActivePeak {
		p.ActivePeak = a
		p.PeakStack = p.Stack
		p.PeakFronts = p.Fronts
		p.PeakTime = t
		if p.snap != nil {
			p.PeakNote = p.snap()
		}
	}
	if p.tracing {
		p.trace = append(p.trace, TracePoint{T: t, Stack: p.Stack, Active: p.Active()})
		p.lastTime = t
	}
}

// Tracker aggregates P processors.
type Tracker struct {
	Procs []Proc
	eng   *des.Engine
}

// NewTracker returns a tracker for p processors using the engine's clock.
func NewTracker(eng *des.Engine, p int) *Tracker {
	return &Tracker{Procs: make([]Proc, p), eng: eng}
}

// SetSnapshot installs a diagnostic callback invoked whenever processor
// p's active peak is raised; its result is stored in PeakNote. Used by
// the simulator to explain what a peak is made of (which fronts, slave
// blocks, CB pieces) the way the paper explains individual table cells.
func (t *Tracker) SetSnapshot(p int, fn func() string) { t.Procs[p].snap = fn }

func (t *Tracker) now() des.Time {
	if t.eng == nil {
		return 0
	}
	return t.eng.Now()
}

// PushCB stacks a contribution block of the given size on processor p.
func (t *Tracker) PushCB(p int, entries int64) {
	t.Procs[p].Stack += entries
	t.Procs[p].bump(t.now())
}

// PopCB removes a contribution block from processor p's stack.
func (t *Tracker) PopCB(p int, entries int64) {
	t.Procs[p].Stack -= entries
	if t.Procs[p].Stack < 0 {
		panic(fmt.Sprintf("memory: negative stack on proc %d: popped %d entries, %d over what was stacked",
			p, entries, -t.Procs[p].Stack))
	}
	t.Procs[p].bump(t.now())
}

// AllocFront allocates an active front (or slave row block) on p.
func (t *Tracker) AllocFront(p int, entries int64) {
	t.Procs[p].Fronts += entries
	t.Procs[p].bump(t.now())
}

// FreeFront releases an active front on p.
func (t *Tracker) FreeFront(p int, entries int64) {
	t.Procs[p].Fronts -= entries
	if t.Procs[p].Fronts < 0 {
		panic(fmt.Sprintf("memory: negative front area on proc %d: freed %d entries, %d over what was allocated",
			p, entries, -t.Procs[p].Fronts))
	}
	t.Procs[p].bump(t.now())
}

// AddFactors accounts factor entries produced on p.
func (t *Tracker) AddFactors(p int, entries int64) {
	t.Procs[p].Factors += entries
	t.Procs[p].bump(t.now())
}

// MaxTotalPeak returns the maximum over processors of the in-core total
// (factors + stack + fronts). Comparing it with MaxActivePeak quantifies
// the paper's out-of-core argument: with factors on disk ("factors are
// not reaccessed before the solve phase"), the stack is all that remains
// in memory, so minimizing it is what enables larger problems.
func (t *Tracker) MaxTotalPeak() int64 {
	var m int64
	for i := range t.Procs {
		if t.Procs[i].TotalPeak > m {
			m = t.Procs[i].TotalPeak
		}
	}
	return m
}

// MaxActivePeak returns the maximum over processors of the active-memory
// peak — the paper's "maximum stack memory peak" metric (Tables 2-5).
func (t *Tracker) MaxActivePeak() int64 {
	var m int64
	for i := range t.Procs {
		if t.Procs[i].ActivePeak > m {
			m = t.Procs[i].ActivePeak
		}
	}
	return m
}

// MaxStackPeak returns the maximum over processors of the CB-stack-only
// peak.
func (t *Tracker) MaxStackPeak() int64 {
	var m int64
	for i := range t.Procs {
		if t.Procs[i].StackPeak > m {
			m = t.Procs[i].StackPeak
		}
	}
	return m
}

// TotalFactors returns the total factor entries across processors.
func (t *Tracker) TotalFactors() int64 {
	var s int64
	for i := range t.Procs {
		s += t.Procs[i].Factors
	}
	return s
}

// AvgActivePeak returns the mean per-processor active peak — a balance
// indicator (MaxActivePeak / AvgActivePeak ~ 1 means well balanced).
func (t *Tracker) AvgActivePeak() float64 {
	if len(t.Procs) == 0 {
		return 0
	}
	var s int64
	for i := range t.Procs {
		s += t.Procs[i].ActivePeak
	}
	return float64(s) / float64(len(t.Procs))
}
