package memory

import (
	"fmt"
	"sync"
)

// ExecStats is the executor-independent summary of one numeric
// factorization. The sequential executor (internal/seqmf), the
// shared-memory parallel executor (internal/parmf) and the out-of-core
// paths all report this shape, so runs are comparable field-by-field
// across executors. All quantities are in model entries, the units of the
// assembly cost model (triangles for symmetric matrices).
type ExecStats struct {
	FactorEntries int64 // total factor storage produced
	PeakStack     int64 // peak of CB stack + active front (max over workers)
	FinalStack    int64 // stack entries left at the end (root CBs; 0 normally)
	Fronts        int   // number of fronts processed
	MaxFront      int   // largest front order
	AssemblyOps   int64 // extend-add operations

	// ResidentPeak is the peak of everything actually held in memory at
	// once — active fronts + stacked CBs + factor blocks still owned by
	// the factor store. With the in-memory store factors never leave, so
	// this is the in-core total peak (factors+stack+fronts); with a
	// file-backed store blocks are discharged as they are spilled and the
	// peak approaches the stack-only cost the paper argues for.
	ResidentPeak int64

	// Kernel records which update micro-kernel family the factorization
	// ran through (dense.Kernel.String(): "default" is the
	// register-blocked, bitwise-deterministic family, "fast" the
	// reordered-accumulation tiled one).
	Kernel string

	// Fault-tolerance counters, all zero on a clean run (so stat
	// comparisons across executors stay bitwise meaningful). Retries and
	// DegradedBlocks come from the factor store (spill I/O retried after
	// transient errors; blocks retained in-core after persistent write
	// failure). CancelledTasks is how many tree tasks were still
	// unfinished when a cancellation or first error drained the run.
	Retries        int64
	DegradedBlocks int64
	CancelledTasks int64
}

// Meter is a concurrency-safe gauge of resident memory (model entries)
// with an exact peak: every delta is applied and the peak updated under
// one lock, so concurrent contributors — worker goroutines allocating
// fronts, the out-of-core writer discharging spilled blocks — cannot
// miss a combined maximum between their updates.
//
// A nil *Meter is valid and ignores all operations, so call sites need
// no guards.
type Meter struct {
	mu   sync.Mutex
	cur  int64
	peak int64
	obs  func(cur int64)
}

// Observe installs fn as the meter's observer: it is invoked under the
// meter's lock with the post-mutation value of every Add, so the
// sequence of observed values is exactly the gauge's history and its
// maximum equals Peak. The execution tracer uses this to reconstruct
// the resident-memory timeline without the executors emitting a single
// extra sample. A nil fn removes the observer.
func (m *Meter) Observe(fn func(cur int64)) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.obs = fn
	m.mu.Unlock()
}

// Add applies a signed delta to the gauge and updates the peak.
func (m *Meter) Add(d int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.cur += d
	if m.cur < 0 {
		cur, peak := m.cur, m.peak
		m.mu.Unlock()
		panic(fmt.Sprintf("memory: negative resident meter: delta %d drove gauge to %d (peak was %d)", d, cur, peak))
	}
	if m.cur > m.peak {
		m.peak = m.cur
	}
	if m.obs != nil {
		m.obs(m.cur)
	}
	m.mu.Unlock()
}

// Cur returns the current gauge value.
func (m *Meter) Cur() int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cur
}

// Peak returns the maximum value the gauge has reached.
func (m *Meter) Peak() int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peak
}
