package sched

// Pool is the local pool of ready tasks of one processor (paper Figure 7).
// It is managed as a stack: newly ready tasks are pushed on top, and the
// default policy pops the top, which yields a depth-first traversal of the
// assembly tree. Algorithm 2 scans the stack for a memory-safe task
// instead.
type Pool struct {
	items []int // node ids; top is items[len-1]
}

// Push adds a ready task on top of the stack.
func (p *Pool) Push(node int) { p.items = append(p.items, node) }

// Len returns the number of ready tasks.
func (p *Pool) Len() int { return len(p.items) }

// Empty reports whether the pool has no tasks.
func (p *Pool) Empty() bool { return len(p.items) == 0 }

// Peek returns the top task without removing it (-1 if empty).
func (p *Pool) Peek() int {
	if len(p.items) == 0 {
		return -1
	}
	return p.items[len(p.items)-1]
}

// At returns the task at depth k from the top (0 = top) without removing
// it (-1 if out of range).
func (p *Pool) At(k int) int {
	idx := len(p.items) - 1 - k
	if idx < 0 || idx >= len(p.items) {
		return -1
	}
	return p.items[idx]
}

// PopTop removes and returns the top task (the MUMPS default policy).
func (p *Pool) PopTop() int {
	n := len(p.items)
	if n == 0 {
		return -1
	}
	v := p.items[n-1]
	p.items = p.items[:n-1]
	return v
}

// PopAt removes and returns the task at depth k from the top (0 = top),
// preserving the order of the others.
func (p *Pool) PopAt(k int) int {
	n := len(p.items)
	idx := n - 1 - k
	if idx < 0 || idx >= n {
		return -1
	}
	v := p.items[idx]
	p.items = append(p.items[:idx], p.items[idx+1:]...)
	return v
}

// Items returns the tasks from top to bottom (a copy).
func (p *Pool) Items() []int {
	out := make([]int, len(p.items))
	for k := range p.items {
		out[k] = p.items[len(p.items)-1-k]
	}
	return out
}

// TaskInfo provides the per-node facts Algorithm 2 needs.
type TaskInfo struct {
	// InSubtree reports whether the node belongs to a leaf subtree.
	InSubtree func(node int) bool
	// MemCost is the memory this task allocates on this processor when
	// activated (front entries for type 1, master part for type 2).
	MemCost func(node int) int64
}

// SelectMemoryAware is Algorithm 2 of the paper. Given the processor's
// current memory occupation (including the remaining peak of the subtree
// being processed) and the memory peak observed since the beginning of the
// factorization, it returns the pool index (depth from top) of the task to
// activate:
//
//  1. if the top task is inside a subtree, take it (subtrees are
//     expensive; stay depth-first);
//  2. otherwise scan from the top: take the first task that fits under the
//     observed peak, or the first subtree task encountered;
//  3. if nothing qualifies, fall back to the top task.
func SelectMemoryAware(p *Pool, info TaskInfo, currentMem, observedPeak int64) int {
	if p.Empty() {
		return -1
	}
	items := p.Items() // top to bottom
	if info.InSubtree(items[0]) {
		return 0
	}
	for k, node := range items {
		if info.MemCost(node)+currentMem <= observedPeak {
			return k
		}
		if info.InSubtree(node) {
			return k
		}
	}
	return 0
}
