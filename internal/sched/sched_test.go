package sched

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSelectSlavesMemoryLevelsMemory(t *testing.T) {
	// Figure 4 scenario: P1..P3 with increasing memory; the selection must
	// fill the least-loaded first, without exceeding the current peak.
	mem := []int64{0, 100, 400, 900} // proc 0 is the master
	metric := func(q int) int64 { return mem[q] }
	cands := []int{1, 2, 3}
	nfront := 10
	ncb := 50 // surface 500
	allocs := SelectSlavesMemory(cands, metric, nfront, ncb, 0)
	if TotalRows(allocs) != ncb {
		t.Fatalf("rows distributed %d, want %d", TotalRows(allocs), ncb)
	}
	got := map[int]int{}
	for _, a := range allocs {
		got[a.Proc] = a.Rows
	}
	// Level-fill behaviour: proc 1 (least loaded) gets the most rows.
	if got[1] <= got[2] && got[2] > 0 {
		t.Errorf("least-loaded proc should get most rows: %v", got)
	}
	// Proc 3 (900) should be excluded: filling up to its level would need
	// (900-100)+(900-400) = 1300 > surface 500.
	if got[3] != 0 {
		t.Errorf("proc 3 selected despite high memory: %v", got)
	}
}

func TestSelectSlavesMemoryBigSurfaceTakesEveryone(t *testing.T) {
	mem := []int64{0, 10, 20, 30}
	metric := func(q int) int64 { return mem[q] }
	allocs := SelectSlavesMemory([]int{1, 2, 3}, metric, 10, 1000, 0)
	if len(allocs) != 3 {
		t.Fatalf("want all 3 slaves, got %v", allocs)
	}
	if TotalRows(allocs) != 1000 {
		t.Fatalf("rows %d", TotalRows(allocs))
	}
}

func TestSelectSlavesMemoryPeakPreservation(t *testing.T) {
	// After allocation, no selected processor's memory (metric + rows *
	// nfront) should exceed max(level, fair share above level) — i.e. the
	// post-allocation memories of chosen procs should be nearly equal.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 2 + rng.Intn(15)
		mem := make([]int64, p)
		for i := range mem {
			mem[i] = int64(rng.Intn(10000))
		}
		metric := func(q int) int64 { return mem[q] }
		cands := make([]int, 0, p-1)
		for q := 1; q < p; q++ {
			cands = append(cands, q)
		}
		nfront := 5 + rng.Intn(50)
		ncb := 1 + rng.Intn(nfront)
		allocs := SelectSlavesMemory(cands, metric, nfront, ncb, 0)
		if TotalRows(allocs) != ncb {
			return false
		}
		if len(allocs) == 0 {
			return false
		}
		// Post-allocation spread of chosen procs <= nfront * ceil share + max
		// initial gap tolerance: all chosen procs end within one row-block
		// of each other is too strict under integer rounding; check instead
		// that the allocation never gives a higher-memory proc more rows
		// than a lower-memory proc by more than the rounding unit.
		for i := 0; i < len(allocs); i++ {
			for j := i + 1; j < len(allocs); j++ {
				mi, mj := metric(allocs[i].Proc), metric(allocs[j].Proc)
				ri, rj := allocs[i].Rows, allocs[j].Rows
				if mi < mj && rj > ri+1+int((mj-mi))/nfront {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectSlavesMemoryNoCandidates(t *testing.T) {
	if got := SelectSlavesMemory(nil, func(int) int64 { return 0 }, 10, 5, 0); got != nil {
		t.Errorf("expected nil, got %v", got)
	}
	if got := SelectSlavesMemory([]int{1}, func(int) int64 { return 0 }, 10, 0, 0); got != nil {
		t.Errorf("expected nil for 0 rows, got %v", got)
	}
}

func TestSelectSlavesWorkloadPrefersUnderloaded(t *testing.T) {
	loads := []int64{500, 100, 900, 50}
	allocs := SelectSlavesWorkload([]int{1, 2, 3}, loads[0], loads, 20, 1000, 100)
	for _, a := range allocs {
		if a.Proc == 2 {
			t.Errorf("overloaded proc 2 selected: %v", allocs)
		}
	}
	if TotalRows(allocs) != 20 {
		t.Errorf("rows %d, want 20", TotalRows(allocs))
	}
}

func TestSelectSlavesWorkloadFallback(t *testing.T) {
	// All candidates more loaded than the master: still pick one (least).
	loads := []int64{10, 500, 300}
	allocs := SelectSlavesWorkload([]int{1, 2}, loads[0], loads, 8, 100, 10)
	if len(allocs) != 1 || allocs[0].Proc != 2 {
		t.Fatalf("want fallback to proc 2, got %v", allocs)
	}
	if allocs[0].Rows != 8 {
		t.Errorf("rows %d", allocs[0].Rows)
	}
}

func TestSelectSlavesWorkloadBalancesWithMaster(t *testing.T) {
	// Slave work ~ 4x master work: want ~4 slaves.
	loads := []int64{1000, 1, 2, 3, 4, 5, 6}
	allocs := SelectSlavesWorkload([]int{1, 2, 3, 4, 5, 6}, loads[0], loads,
		40, 1000, 100) // total slave flops 4000, master 1000
	if len(allocs) != 4 {
		t.Errorf("want 4 slaves, got %d (%v)", len(allocs), allocs)
	}
}

func TestViewMetric(t *testing.T) {
	v := NewView(3)
	v.AddMem(1, 100)
	v.SetSubtree(1, 150) // projected level above the instantaneous memory
	v.SetIncoming(1, 25)
	if got := v.Metric(1, false, false); got != 100 {
		t.Errorf("bare metric = %d, want 100", got)
	}
	if got := v.Metric(1, true, false); got != 150 {
		t.Errorf("subtree metric = %d, want max(100,150)=150", got)
	}
	if got := v.Metric(1, true, true); got != 175 {
		t.Errorf("full metric = %d, want 150+25=175", got)
	}
	// A projected level below the instantaneous memory must not lower
	// the metric: max, not replacement.
	v.SetSubtree(1, 40)
	if got := v.Metric(1, true, false); got != 100 {
		t.Errorf("metric with low projection = %d, want 100", got)
	}
	v.AddMem(1, -40)
	if got := v.Metric(1, false, false); got != 60 {
		t.Errorf("after decrement = %d, want 60", got)
	}
}

func TestPoolStackSemantics(t *testing.T) {
	var p Pool
	p.Push(1)
	p.Push(2)
	p.Push(3)
	if p.Peek() != 3 {
		t.Fatalf("peek %d", p.Peek())
	}
	if p.PopTop() != 3 || p.PopTop() != 2 || p.PopTop() != 1 {
		t.Fatal("LIFO order broken")
	}
	if p.PopTop() != -1 || p.Peek() != -1 {
		t.Fatal("empty pool sentinel")
	}
}

func TestPoolPopAt(t *testing.T) {
	var p Pool
	for i := 1; i <= 4; i++ {
		p.Push(i)
	}
	if got := p.PopAt(2); got != 2 { // top=4, depth2 = 2
		t.Fatalf("PopAt(2) = %d, want 2", got)
	}
	want := []int{4, 3, 1}
	got := p.Items()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after PopAt: %v, want %v", got, want)
		}
	}
	if p.PopAt(7) != -1 {
		t.Error("out-of-range PopAt should return -1")
	}
}

func TestAlgorithm2SubtreeTopPriority(t *testing.T) {
	var p Pool
	p.Push(10) // bottom: big type-2 node
	p.Push(5)  // top: subtree node
	info := TaskInfo{
		InSubtree: func(n int) bool { return n == 5 },
		MemCost:   func(n int) int64 { return int64(n) * 100 },
	}
	// Even with zero headroom, the subtree top is taken unconditionally.
	if k := SelectMemoryAware(&p, info, 1<<40, 0); k != 0 {
		t.Errorf("subtree top not selected: depth %d", k)
	}
}

func TestAlgorithm2DelaysLargeNode(t *testing.T) {
	// Figure 8 scenario: top of pool is a huge type-2 master; below it a
	// small upper-tree task that fits. Algorithm 2 must skip the big one.
	var p Pool
	p.Push(1) // bottom: small task (cost 100)
	p.Push(9) // top: big task (cost 9000)
	info := TaskInfo{
		InSubtree: func(n int) bool { return false },
		MemCost: func(n int) int64 {
			if n == 9 {
				return 9000
			}
			return 100
		},
	}
	current, peak := int64(500), int64(1000)
	if k := SelectMemoryAware(&p, info, current, peak); k != 1 {
		t.Errorf("big node not delayed: depth %d", k)
	}
	// Default policy would take the top.
	if p.Peek() != 9 {
		t.Error("pool mutated")
	}
}

func TestAlgorithm2PrefersSubtreeWhenNothingFits(t *testing.T) {
	var p Pool
	p.Push(7) // bottom: subtree node, cost 700
	p.Push(8) // middle: upper node, cost 800
	p.Push(9) // top: upper node, cost 900
	info := TaskInfo{
		InSubtree: func(n int) bool { return n == 7 },
		MemCost:   func(n int) int64 { return int64(n) * 100 },
	}
	// Peak leaves no headroom: scan hits the subtree node at depth 2.
	if k := SelectMemoryAware(&p, info, 10000, 0); k != 2 {
		t.Errorf("subtree node not preferred: depth %d", k)
	}
}

func TestAlgorithm2FallbackTop(t *testing.T) {
	var p Pool
	p.Push(8)
	p.Push(9)
	info := TaskInfo{
		InSubtree: func(n int) bool { return false },
		MemCost:   func(n int) int64 { return 1 << 30 },
	}
	if k := SelectMemoryAware(&p, info, 1<<31, 0); k != 0 {
		t.Errorf("fallback should take top, got depth %d", k)
	}
	if k := SelectMemoryAware(&Pool{}, info, 0, 0); k != -1 {
		t.Errorf("empty pool should return -1, got %d", k)
	}
}

func TestAlgorithm2TakesTopWhenItFits(t *testing.T) {
	var p Pool
	p.Push(1)
	p.Push(2)
	info := TaskInfo{
		InSubtree: func(n int) bool { return false },
		MemCost:   func(n int) int64 { return 10 },
	}
	if k := SelectMemoryAware(&p, info, 0, 1000); k != 0 {
		t.Errorf("fitting top not selected: depth %d", k)
	}
}

func TestSelectSlavesMemoryRowsConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 2 + rng.Intn(30)
		mem := make([]int64, p)
		for i := range mem {
			mem[i] = int64(rng.Intn(1 << 20))
		}
		cands := rng.Perm(p)[:1+rng.Intn(p-1)]
		nfront := 1 + rng.Intn(200)
		ncb := rng.Intn(nfront + 1)
		allocs := SelectSlavesMemory(cands, func(q int) int64 { return mem[q] }, nfront, ncb, 0)
		if ncb == 0 {
			return allocs == nil
		}
		seen := map[int]bool{}
		for _, a := range allocs {
			if a.Rows <= 0 || seen[a.Proc] {
				return false
			}
			seen[a.Proc] = true
		}
		return TotalRows(allocs) == ncb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRebalanceRowsTriangular(t *testing.T) {
	// Triangular per-row cost (row t costs t+1): equal-work blocks must
	// have decreasing row counts — Figure 3's irregular symmetric
	// blocking.
	prefix := func(tr int) int64 { n := int64(tr); return n * (n + 1) / 2 }
	in := []Allocation{{Proc: 1, Rows: 30}, {Proc: 2, Rows: 30}, {Proc: 3, Rows: 30}}
	out := RebalanceRows(in, 90, prefix)
	if TotalRows(out) != 90 {
		t.Fatalf("rows not conserved: %v", out)
	}
	if len(out) != 3 || out[0].Proc != 1 || out[2].Proc != 3 {
		t.Fatalf("processors changed: %v", out)
	}
	if !(out[0].Rows > out[1].Rows && out[1].Rows > out[2].Rows) {
		t.Errorf("blocks not decreasing under triangular cost: %v", out)
	}
	// Cost balance: each block within 25%% of the fair share.
	fair := prefix(90) / 3
	lo := 0
	for _, a := range out {
		c := prefix(lo+a.Rows) - prefix(lo)
		lo += a.Rows
		if c < fair*3/4 || c > fair*5/4 {
			t.Errorf("block cost %d far from fair %d (%v)", c, fair, out)
		}
	}
}

func TestRebalanceRowsUniformIsNoopShape(t *testing.T) {
	// Uniform cost: rebalancing yields (nearly) equal row counts.
	prefix := func(tr int) int64 { return int64(tr) * 10 }
	in := []Allocation{{Proc: 5, Rows: 50}, {Proc: 6, Rows: 10}}
	out := RebalanceRows(in, 60, prefix)
	if TotalRows(out) != 60 {
		t.Fatalf("rows not conserved: %v", out)
	}
	if d := out[0].Rows - out[1].Rows; d < -1 || d > 1 {
		t.Errorf("uniform cost should split evenly: %v", out)
	}
	// Degenerate inputs pass through.
	if got := RebalanceRows(in[:1], 60, prefix); got[0].Rows != 50 {
		t.Errorf("single slave modified: %v", got)
	}
	if got := RebalanceRows(in, 1, prefix); TotalRows(got) != 60 {
		t.Errorf("ncb<k case changed totals: %v", got)
	}
}

func TestRebalanceRowsEveryoneKeepsARow(t *testing.T) {
	// Extremely skewed cost: the last rows dwarf everything, yet every
	// slave must keep at least one row.
	prefix := func(tr int) int64 { n := int64(tr); return n * n * n * n }
	in := []Allocation{{Proc: 0, Rows: 4}, {Proc: 1, Rows: 4}, {Proc: 2, Rows: 4}}
	out := RebalanceRows(in, 12, prefix)
	if TotalRows(out) != 12 {
		t.Fatalf("rows not conserved: %v", out)
	}
	for _, a := range out {
		if a.Rows < 1 {
			t.Fatalf("slave starved: %v", out)
		}
	}
}

func TestSelectSlavesHybridFiltersByLoad(t *testing.T) {
	// Proc 3 has the least memory but is more loaded than the master:
	// the hybrid must exclude it and fall back to the remaining
	// candidates, while the pure memory selection would take it.
	mem := []int64{0, 500, 600, 10}
	loads := []int64{1000, 100, 200, 5000}
	metric := func(q int) int64 { return mem[q] }
	cands := []int{1, 2, 3}

	pure := SelectSlavesMemory(cands, metric, 10, 20, 0)
	foundIn := func(allocs []Allocation, proc int) bool {
		for _, a := range allocs {
			if a.Proc == proc {
				return true
			}
		}
		return false
	}
	if !foundIn(pure, 3) {
		t.Fatalf("memory selection should pick low-memory proc 3: %v", pure)
	}
	hyb := SelectSlavesHybrid(cands, metric, loads[0], loads, 10, 20, 0)
	if foundIn(hyb, 3) {
		t.Errorf("hybrid selected overloaded proc 3: %v", hyb)
	}
	if TotalRows(hyb) != 20 {
		t.Errorf("rows not conserved: %v", hyb)
	}
}

func TestSelectSlavesHybridFallback(t *testing.T) {
	// Every candidate more loaded than the master: the workload filter
	// empties, and the hybrid must fall back to memory-only selection
	// over all candidates rather than selecting nobody.
	mem := []int64{0, 50, 10}
	loads := []int64{1, 500, 300}
	metric := func(q int) int64 { return mem[q] }
	hyb := SelectSlavesHybrid([]int{1, 2}, metric, loads[0], loads, 10, 8, 0)
	if TotalRows(hyb) != 8 {
		t.Fatalf("fallback failed: %v", hyb)
	}
}

func TestPoolAt(t *testing.T) {
	var p Pool
	for i := 1; i <= 3; i++ {
		p.Push(i)
	}
	for k, want := range []int{3, 2, 1} {
		if got := p.At(k); got != want {
			t.Errorf("At(%d) = %d, want %d", k, got, want)
		}
	}
	if p.At(3) != -1 || p.At(-1) != -1 {
		t.Error("out-of-range At not -1")
	}
}
