package sched

import "sort"

// Allocation is one slave's share of a type-2 front: Rows contribution-
// block rows of the 1D row blocking (Figure 3).
type Allocation struct {
	Proc int
	Rows int
}

// SelectSlavesWorkload is the MUMPS baseline (Section 3): the master
// chooses processors less loaded than itself and splits the CB rows so
// that each slave's work is comparable to the master's own task workload.
//
//	cands:       candidate processors (excluding the master)
//	masterLoad:  the master's current workload (flops)
//	loads:       workload view indexed by processor
//	ncbRows:     contribution rows to distribute
//	masterFlops: elimination flops of the master part of this front
//	rowFlops:    elimination flops of one CB row
//
// At least one slave is always selected (the least-loaded candidate if
// nobody is below the master's load).
func SelectSlavesWorkload(cands []int, masterLoad int64, loads []int64,
	ncbRows int, masterFlops, rowFlops int64) []Allocation {
	if len(cands) == 0 || ncbRows == 0 {
		return nil
	}
	// Prefer processors less loaded than the master.
	pref := make([]int, 0, len(cands))
	for _, q := range cands {
		if loads[q] < masterLoad {
			pref = append(pref, q)
		}
	}
	if len(pref) == 0 {
		// Granularity fallback: take the single least-loaded candidate.
		best := cands[0]
		for _, q := range cands[1:] {
			if loads[q] < loads[best] || (loads[q] == loads[best] && q < best) {
				best = q
			}
		}
		pref = []int{best}
	}
	sort.Slice(pref, func(a, b int) bool {
		if loads[pref[a]] != loads[pref[b]] {
			return loads[pref[a]] < loads[pref[b]]
		}
		return pref[a] < pref[b]
	})
	// Balance slave work against the master's task: each slave should get
	// about masterFlops worth of rows — subject to the MUMPS granularity
	// constraint that no slave receives more than kmax rows, which forces
	// large fronts onto many processors.
	totalSlaveFlops := rowFlops * int64(ncbRows)
	want := 1
	if masterFlops > 0 {
		want = int(totalSlaveFlops / masterFlops)
	}
	kmax := 32
	if k := (ncbRows + len(cands) - 1) / len(cands); k > kmax {
		kmax = k
	}
	if minSlaves := (ncbRows + kmax - 1) / kmax; want < minSlaves {
		want = minSlaves
	}
	if want < 1 {
		want = 1
	}
	if want > len(pref) {
		want = len(pref)
	}
	if want > ncbRows {
		want = ncbRows
	}
	chosen := pref[:want]
	out := make([]Allocation, 0, want)
	base := ncbRows / want
	extra := ncbRows % want
	for k, q := range chosen {
		r := base
		if k < extra {
			r++
		}
		if r > 0 {
			out = append(out, Allocation{Proc: q, Rows: r})
		}
	}
	return out
}

// SelectSlavesMemory is Algorithm 1 of the paper: the master sorts
// candidates by the memory metric and picks the smallest set that levels
// memory without raising the current peak (Figure 4), filling each chosen
// processor up to the level of the highest chosen one and splitting the
// remainder equitably.
//
//	cands:    candidate processors (excluding the master)
//	metric:   memory metric per processor (Section 4 instantaneous memory,
//	          or the Section 5.1 metric with subtree/prediction terms)
//	nfront:   front order (a row costs nfront entries)
//	ncbRows:  contribution rows to distribute
//	peak:     memory peak observed since the beginning of the
//	          factorization (the dashed line of Figure 4); <=0 disables
//	          peak preservation
//
// The "surface of the frontal matrix" is the slave area ncbRows*nfront.
//
// Peak preservation: the paper's biggest-i rule alone degenerates when
// one candidate looks much cheaper than every other (e.g. everyone else
// is under a large-subtree projection): i collapses to 1 and the entire
// surface lands on a single processor, high above the current peak —
// exactly what the algorithm is stated to avoid. When the fill height of
// the chosen prefix would exceed the observed peak, the set is extended
// by water-filling over more candidates until the height drops back
// under it (or no candidate under the water line remains).
func SelectSlavesMemory(cands []int, metric func(q int) int64,
	nfront, ncbRows int, peak int64) []Allocation {
	if len(cands) == 0 || ncbRows == 0 {
		return nil
	}
	srt := append([]int(nil), cands...)
	sort.Slice(srt, func(a, b int) bool {
		ma, mb := metric(srt[a]), metric(srt[b])
		if ma != mb {
			return ma < mb
		}
		return srt[a] < srt[b]
	})
	surface := int64(ncbRows) * int64(nfront)
	// prefix[i] = sum of the i lowest metrics.
	prefix := make([]int64, len(srt)+1)
	for i, q := range srt {
		prefix[i+1] = prefix[i] + metric(q)
	}
	// Water-fill height after pouring the whole surface on the i lowest.
	height := func(i int) int64 { return (surface + prefix[i]) / int64(i) }
	// The paper's rule: biggest i with sum_{j<=i} (MEM[i]-MEM[j]) <= surface.
	best := 1
	for i := 1; i <= len(srt); i++ {
		if int64(i)*metric(srt[i-1])-prefix[i] <= surface {
			best = i
		} else {
			break // the deficit sum is nondecreasing in i
		}
	}
	// Peak preservation: extend while the fill height exceeds the
	// observed peak and the next candidate would still sit under the new
	// water line (otherwise adding it cannot lower the height).
	for peak > 0 && best < len(srt) && height(best) > peak &&
		metric(srt[best]) < height(best+1) {
		best++
	}
	chosen := srt[:best]
	// Fill target: the level of the highest chosen processor (the paper's
	// level-fill) — but never above the water-fill height, which is what
	// the extended set levels to.
	level := metric(chosen[len(chosen)-1])
	if h := height(best); h < level {
		level = h
	}
	// Level-fill: give each processor (level - MEM[j])/nfront rows.
	rows := make([]int, best)
	given := 0
	for j, q := range chosen {
		r := int((level - metric(q)) / int64(nfront))
		if r < 0 {
			r = 0
		}
		if r > ncbRows-given {
			r = ncbRows - given
		}
		rows[j] = r
		given += r
	}
	// Distribute the remaining rows equitably.
	rem := ncbRows - given
	for j := 0; rem > 0; j = (j + 1) % best {
		rows[j]++
		rem--
	}
	out := make([]Allocation, 0, best)
	for j, q := range chosen {
		if rows[j] > 0 {
			out = append(out, Allocation{Proc: q, Rows: rows[j]})
		}
	}
	return out
}

// SelectSlavesHybrid is the hybrid strategy sketched in the paper's
// conclusion ("hybrid strategies well adapted at both balancing the
// workload and the memory need to be designed"): restrict the candidates
// to processors less loaded than the master — the workload constraint of
// the MUMPS baseline — then run the memory-based Algorithm 1 on that
// subset. If no candidate is under the master's load, the constraint is
// dropped (memory-only fallback), mirroring the baseline's own fallback.
func SelectSlavesHybrid(cands []int, metric func(q int) int64,
	masterLoad int64, loads []int64, nfront, ncbRows int, peak int64) []Allocation {
	if len(cands) == 0 || ncbRows == 0 {
		return nil
	}
	pref := make([]int, 0, len(cands))
	for _, q := range cands {
		if loads[q] < masterLoad {
			pref = append(pref, q)
		}
	}
	if len(pref) == 0 {
		pref = cands
	}
	return SelectSlavesMemory(pref, metric, nfront, ncbRows, peak)
}

// RebalanceRows redistributes the row counts of an allocation so that
// each slave's block has approximately equal total cost under a
// non-uniform per-row cost, keeping blocks contiguous and the processor
// order unchanged. costPrefix(t) must return the total cost of the first
// t rows (nondecreasing, costPrefix(0)=0). This is the paper's Figure 3
// "irregular" symmetric blocking: in a triangular front later rows are
// longer, so equal work means decreasing row counts. Row conservation is
// exact; every slave keeps at least one row.
func RebalanceRows(allocs []Allocation, ncbRows int, costPrefix func(int) int64) []Allocation {
	k := len(allocs)
	if k <= 1 || ncbRows < k {
		return allocs
	}
	total := costPrefix(ncbRows)
	if total <= 0 {
		return allocs
	}
	out := make([]Allocation, k)
	prev := 0
	for j := 0; j < k; j++ {
		var hi int
		if j == k-1 {
			hi = ncbRows
		} else {
			// Smallest boundary whose prefix reaches the fair share,
			// leaving at least one row for each remaining slave.
			target := total * int64(j+1) / int64(k)
			hi = prev + 1
			for hi < ncbRows-(k-1-j) && costPrefix(hi) < target {
				hi++
			}
		}
		out[j] = Allocation{Proc: allocs[j].Proc, Rows: hi - prev}
		prev = hi
	}
	return out
}

// TotalRows sums the rows of an allocation (used by invariants/tests).
func TotalRows(allocs []Allocation) int {
	s := 0
	for _, a := range allocs {
		s += a.Rows
	}
	return s
}
