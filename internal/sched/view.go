// Package sched implements the paper's scheduling strategies as pure,
// independently-testable decision logic:
//
//   - the workload-based slave selection of MUMPS (Section 3, the baseline),
//   - Algorithm 1, the memory-based slave selection (Section 4),
//   - the static-knowledge injection: subtree peaks and incoming-master
//     prediction folded into the selection metric (Section 5.1),
//   - Algorithm 2, the memory-aware task selection from the local pool
//     (Section 5.2).
//
// The parallel simulator (internal/parsim) feeds these functions with the
// message-derived views and applies their decisions.
package sched

// View is one processor's (possibly stale) knowledge of every processor's
// state, maintained from broadcast increments: instantaneous memory,
// the projected memory level of the subtree each processor is currently
// traversing, and the predicted cost of its next incoming master task.
//
// The Section 5.1 metric combines them as
//
//	max(Mem, Subtree) + Incoming
//
// Subtree is an absolute projected level (the processor's memory at
// subtree entry plus the subtree's stack peak), not a delta: the
// instantaneous memory already contains the partially built subtree
// stack, so summing the peak on top — the paper's literal formula —
// would count that part twice and make mid-subtree processors look more
// expensive the further they have progressed.
type View struct {
	Mem      []int64 // instantaneous active memory (entries)
	Subtree  []int64 // projected level base+peak of the current subtree (0 if none)
	Incoming []int64 // cost of the largest incoming (soon-ready) master task
	Load     []int64 // workload: elimination flops queued + running
}

// NewView returns a zeroed view over p processors.
func NewView(p int) *View {
	return &View{
		Mem:      make([]int64, p),
		Subtree:  make([]int64, p),
		Incoming: make([]int64, p),
		Load:     make([]int64, p),
	}
}

// Metric returns the memory metric of processor q. useSubtree folds in
// the projected subtree level (by max), usePrediction adds the predicted
// incoming master cost; both false reduces it to the bare Section-4
// instantaneous metric.
func (v *View) Metric(q int, useSubtree, usePrediction bool) int64 {
	m := v.Mem[q]
	if useSubtree && v.Subtree[q] > m {
		m = v.Subtree[q]
	}
	if usePrediction {
		m += v.Incoming[q]
	}
	return m
}

// AddMem applies a memory increment (positive or negative) for q.
func (v *View) AddMem(q int, delta int64) { v.Mem[q] += delta }

// SetSubtree records the projected memory level (memory at subtree entry
// plus the subtree's stack peak) q is working under (0 clears it).
func (v *View) SetSubtree(q int, level int64) { v.Subtree[q] = level }

// SetIncoming records the predicted next master-task cost on q.
func (v *View) SetIncoming(q int, cost int64) { v.Incoming[q] = cost }

// AddLoad applies a workload increment for q.
func (v *View) AddLoad(q int, delta int64) { v.Load[q] += delta }
