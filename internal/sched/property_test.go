package sched

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// quickCfg bounds the case count so the property suite stays fast.
func quickCfg(seed int64) *quick.Config {
	return &quick.Config{
		MaxCount: 300,
		Rand:     rand.New(rand.NewSource(seed)),
	}
}

// boundedInputs derives a well-formed slave-selection instance from
// arbitrary fuzz values.
func boundedInputs(nprocRaw, ncbRaw uint16, memsRaw []uint32) (cands []int, mems []int64, nfront, ncb int) {
	p := 2 + int(nprocRaw)%63 // 2..64 processors
	ncb = 1 + int(ncbRaw)%5000
	nfront = ncb + 1 + int(ncbRaw)%100
	mems = make([]int64, p)
	for i := range mems {
		if len(memsRaw) > 0 {
			mems[i] = int64(memsRaw[i%len(memsRaw)] % 10_000_000)
		}
	}
	for q := 1; q < p; q++ {
		cands = append(cands, q)
	}
	return cands, mems, nfront, ncb
}

// TestAlgorithm1PropertyConservation: Algorithm 1 distributes exactly the
// CB rows it was given, to distinct candidate processors, never to the
// master, with every allocation strictly positive.
func TestAlgorithm1PropertyConservation(t *testing.T) {
	prop := func(nprocRaw, ncbRaw uint16, memsRaw []uint32) bool {
		cands, mems, nfront, ncb := boundedInputs(nprocRaw, ncbRaw, memsRaw)
		allocs := SelectSlavesMemory(cands, func(q int) int64 { return mems[q] }, nfront, ncb, 0)
		if TotalRows(allocs) != ncb {
			t.Logf("rows %d != ncb %d", TotalRows(allocs), ncb)
			return false
		}
		seen := map[int]bool{0: true} // master is proc 0
		for _, a := range allocs {
			if a.Rows <= 0 || seen[a.Proc] {
				return false
			}
			seen[a.Proc] = true
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(1)); err != nil {
		t.Fatal(err)
	}
}

// TestAlgorithm1PropertyPrefersLowMemory: every chosen processor has a
// metric no larger than every unchosen candidate's metric (Algorithm 1
// sorts by memory and takes a prefix).
func TestAlgorithm1PropertyPrefersLowMemory(t *testing.T) {
	prop := func(nprocRaw, ncbRaw uint16, memsRaw []uint32) bool {
		cands, mems, nfront, ncb := boundedInputs(nprocRaw, ncbRaw, memsRaw)
		metric := func(q int) int64 { return mems[q] }
		allocs := SelectSlavesMemory(cands, metric, nfront, ncb, 0)
		chosen := map[int]bool{}
		var maxChosen int64 = -1
		for _, a := range allocs {
			chosen[a.Proc] = true
			if m := metric(a.Proc); m > maxChosen {
				maxChosen = m
			}
		}
		for _, q := range cands {
			if !chosen[q] && metric(q) < maxChosen {
				t.Logf("unchosen %d (mem %d) below chosen max %d", q, metric(q), maxChosen)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(2)); err != nil {
		t.Fatal(err)
	}
}

// TestAlgorithm1PropertyLevels: after the hypothetical allocation, the
// spread of the chosen processors' levels (metric + rows*nfront) is at
// most nfront + the equitable remainder step — i.e. the algorithm levels
// memory up to row granularity.
func TestAlgorithm1PropertyLevels(t *testing.T) {
	prop := func(nprocRaw, ncbRaw uint16, memsRaw []uint32) bool {
		cands, mems, nfront, ncb := boundedInputs(nprocRaw, ncbRaw, memsRaw)
		metric := func(q int) int64 { return mems[q] }
		allocs := SelectSlavesMemory(cands, metric, nfront, ncb, 0)
		if len(allocs) == 0 {
			return ncb == 0
		}
		// Levels after receiving the assigned rows.
		lo, hi := int64(1<<62), int64(-1<<62)
		for _, a := range allocs {
			lvl := metric(a.Proc) + int64(a.Rows)*int64(nfront)
			if lvl < lo {
				lo = lvl
			}
			if lvl > hi {
				hi = lvl
			}
		}
		// Unfilled chosen processors can be below, but the filled spread is
		// bounded by one row of granularity per equity round plus the
		// level-fill rounding (strictly: 2*nfront is a safe bound).
		return hi-lo <= 2*int64(nfront)+1
	}
	if err := quick.Check(prop, quickCfg(3)); err != nil {
		t.Fatal(err)
	}
}

// TestAlgorithm1PropertySurfaceOrPeakPreserving: either the paper's
// defining inequality holds (the deficit of the chosen set relative to
// its highest member stays within the front surface), or the
// peak-preserving extension kicked in — in which case no processor may
// end above the highest candidate's level by more than the rounding
// granularity.
func TestAlgorithm1PropertySurfaceOrPeakPreserving(t *testing.T) {
	prop := func(nprocRaw, ncbRaw uint16, memsRaw []uint32) bool {
		cands, mems, nfront, ncb := boundedInputs(nprocRaw, ncbRaw, memsRaw)
		metric := func(q int) int64 { return mems[q] }
		allocs := SelectSlavesMemory(cands, metric, nfront, ncb, 0)
		if len(allocs) <= 1 {
			return true
		}
		var hiChosen, hiAll int64
		for _, a := range allocs {
			if m := metric(a.Proc); m > hiChosen {
				hiChosen = m
			}
		}
		for _, q := range cands {
			if m := metric(q); m > hiAll {
				hiAll = m
			}
		}
		var deficit int64
		for _, a := range allocs {
			deficit += hiChosen - metric(a.Proc)
		}
		surface := int64(ncb) * int64(nfront)
		if deficit <= surface {
			return true
		}
		// Extended set: final levels must stay near or below the highest
		// candidate level (peak preservation), within rounding slack.
		for _, a := range allocs {
			lvl := metric(a.Proc) + int64(a.Rows)*int64(nfront)
			if lvl > hiAll+2*int64(nfront)+surface/int64(len(allocs)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(4)); err != nil {
		t.Fatal(err)
	}
}

// TestWorkloadPropertyConservation: the baseline slave selection also
// conserves rows and never assigns to the master.
func TestWorkloadPropertyConservation(t *testing.T) {
	prop := func(nprocRaw, ncbRaw uint16, loadsRaw []uint32) bool {
		cands, loads64, _, ncb := boundedInputs(nprocRaw, ncbRaw, loadsRaw)
		masterLoad := int64(500_000)
		allocs := SelectSlavesWorkload(cands, masterLoad, loads64, ncb, 1_000_000, 2_000)
		if TotalRows(allocs) != ncb {
			return false
		}
		seen := map[int]bool{0: true}
		for _, a := range allocs {
			if a.Rows <= 0 || seen[a.Proc] {
				return false
			}
			seen[a.Proc] = true
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(5)); err != nil {
		t.Fatal(err)
	}
}

// TestPoolPropertyPopAtPreservesOthers: PopAt(k) removes exactly the k-th
// task from the top and keeps the relative order of the remaining tasks.
func TestPoolPropertyPopAtPreservesOthers(t *testing.T) {
	prop := func(itemsRaw []uint16, kRaw uint8) bool {
		var p Pool
		for _, v := range itemsRaw {
			p.Push(int(v))
		}
		if p.Empty() {
			return p.PopAt(0) == -1
		}
		before := p.Items()
		k := int(kRaw) % len(before)
		got := p.PopAt(k)
		if got != before[k] {
			return false
		}
		after := p.Items()
		want := append(append([]int{}, before[:k]...), before[k+1:]...)
		if len(after) != len(want) {
			return false
		}
		for i := range want {
			if after[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(6)); err != nil {
		t.Fatal(err)
	}
}

// TestSelectMemoryAwarePropertySafeOrSubtreeOrTop: Algorithm 2 returns
// either (a) a task that fits under the observed peak, (b) a subtree
// task, or (c) the top of the pool — never anything else; and it never
// skips a *fitting* task for a later non-subtree one.
func TestSelectMemoryAwarePropertySafeOrSubtreeOrTop(t *testing.T) {
	prop := func(itemsRaw []uint16, cur, peak uint32, subMask uint8) bool {
		var p Pool
		for _, v := range itemsRaw {
			p.Push(int(v) % 1000)
		}
		if p.Empty() {
			return SelectMemoryAware(&p, TaskInfo{}, int64(cur), int64(peak)) == -1
		}
		info := TaskInfo{
			InSubtree: func(n int) bool { return n%int(subMask%7+2) == 0 },
			MemCost:   func(n int) int64 { return int64(n) * 100 },
		}
		k := SelectMemoryAware(&p, info, int64(cur), int64(peak))
		items := p.Items()
		if k < 0 || k >= len(items) {
			return false
		}
		picked := items[k]
		fits := func(n int) bool { return info.MemCost(n)+int64(cur) <= int64(peak) }
		if k == 0 {
			return true // top is always legal (rules 1 and fallback)
		}
		// A non-top pick must fit or be a subtree task...
		if !fits(picked) && !info.InSubtree(picked) {
			return false
		}
		// ...and nothing above it may have been a fitting or subtree task
		// (the scan takes the first qualifying one).
		for _, n := range items[:k] {
			if fits(n) || info.InSubtree(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(7)); err != nil {
		t.Fatal(err)
	}
}
