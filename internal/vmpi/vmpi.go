// Package vmpi is a virtual message-passing layer over the discrete-event
// engine: point-to-point messages with a latency + size/bandwidth cost
// model and per-channel FIFO ordering, plus broadcast. It stands in for
// MPI in the parallel factorization simulator; the nonzero latency is what
// reproduces the stale-memory-view hazard of the paper's Figure 5.
package vmpi

import (
	"fmt"

	"repro/internal/des"
)

// Handler receives messages delivered to a rank.
type Handler func(from int, payload any)

// Config sets the communication cost model.
type Config struct {
	Latency   des.Time // per-message latency
	BytesPerE int64    // bytes per matrix entry (8 for float64)
	Bandwidth int64    // bytes per second; 0 = infinite
}

// DefaultConfig models a early-2000s cluster interconnect: ~20us latency,
// ~200 MB/s bandwidth.
func DefaultConfig() Config {
	return Config{Latency: 20_000, BytesPerE: 8, Bandwidth: 200e6}
}

// World is a set of P simulated processes exchanging messages.
type World struct {
	P        int
	eng      *des.Engine
	cfg      Config
	handlers []Handler
	lastDel  [][]des.Time // per src,dst: last delivery time (FIFO channels)

	Messages int64 // total messages sent
	Bytes    int64 // total bytes sent
}

// New creates a world of p processes on the engine.
func New(eng *des.Engine, p int, cfg Config) *World {
	w := &World{P: p, eng: eng, cfg: cfg, handlers: make([]Handler, p)}
	w.lastDel = make([][]des.Time, p)
	for i := range w.lastDel {
		w.lastDel[i] = make([]des.Time, p)
	}
	return w
}

// Register sets the message handler for a rank.
func (w *World) Register(rank int, h Handler) {
	w.handlers[rank] = h
}

// Engine returns the underlying DES engine.
func (w *World) Engine() *des.Engine { return w.eng }

// Send delivers payload from src to dst after the modeled delay.
// sizeEntries is the logical message size in matrix entries (0 for control
// messages). Messages on the same (src,dst) channel are delivered in order.
func (w *World) Send(src, dst int, sizeEntries int64, payload any) {
	if src < 0 || src >= w.P || dst < 0 || dst >= w.P {
		panic(fmt.Sprintf("vmpi: bad ranks %d->%d", src, dst))
	}
	if w.handlers[dst] == nil {
		panic(fmt.Sprintf("vmpi: no handler registered for rank %d", dst))
	}
	bytes := sizeEntries * w.cfg.BytesPerE
	delay := w.cfg.Latency
	if w.cfg.Bandwidth > 0 && bytes > 0 {
		delay += des.Time(bytes * 1e9 / w.cfg.Bandwidth)
	}
	w.Messages++
	w.Bytes += bytes
	if src == dst {
		// Local notification: deliver after a tick, no network cost.
		w.eng.After(0, func() { w.handlers[dst](src, payload) })
		return
	}
	at := w.eng.Now() + delay
	if last := w.lastDel[src][dst]; at <= last {
		at = last + 1
	}
	w.lastDel[src][dst] = at
	w.eng.At(at, func() { w.handlers[dst](src, payload) })
}

// Broadcast sends payload from src to every other rank.
func (w *World) Broadcast(src int, sizeEntries int64, payload any) {
	for dst := 0; dst < w.P; dst++ {
		if dst != src {
			w.Send(src, dst, sizeEntries, payload)
		}
	}
}
