package vmpi

import (
	"testing"

	"repro/internal/des"
)

func newWorld(p int, cfg Config) (*des.Engine, *World) {
	e := des.New()
	w := New(e, p, cfg)
	return e, w
}

func TestSendLatency(t *testing.T) {
	e, w := newWorld(2, Config{Latency: 100, BytesPerE: 8, Bandwidth: 0})
	var at des.Time = -1
	w.Register(1, func(from int, payload any) {
		at = e.Now()
		if from != 0 || payload.(string) != "hi" {
			t.Errorf("bad delivery: %d %v", from, payload)
		}
	})
	w.Register(0, func(int, any) {})
	w.Send(0, 1, 0, "hi")
	e.Run()
	if at != 100 {
		t.Errorf("delivered at %d, want 100", at)
	}
	if w.Messages != 1 {
		t.Errorf("message count %d", w.Messages)
	}
}

func TestBandwidthCost(t *testing.T) {
	// 1000 entries * 8 B at 8e9 B/s = 1000ns, plus 50ns latency.
	e, w := newWorld(2, Config{Latency: 50, BytesPerE: 8, Bandwidth: 8e9})
	var at des.Time
	w.Register(1, func(int, any) { at = e.Now() })
	w.Register(0, func(int, any) {})
	w.Send(0, 1, 1000, nil)
	e.Run()
	if at != 1050 {
		t.Errorf("delivered at %d, want 1050", at)
	}
	if w.Bytes != 8000 {
		t.Errorf("bytes %d", w.Bytes)
	}
}

func TestChannelFIFO(t *testing.T) {
	// A big message followed by a small one on the same channel must not be
	// overtaken.
	e, w := newWorld(2, Config{Latency: 10, BytesPerE: 8, Bandwidth: 8e9})
	var got []int
	w.Register(1, func(_ int, p any) { got = append(got, p.(int)) })
	w.Register(0, func(int, any) {})
	w.Send(0, 1, 100000, 1) // slow
	w.Send(0, 1, 0, 2)      // fast, would arrive earlier without FIFO
	e.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("order %v", got)
	}
}

func TestBroadcast(t *testing.T) {
	e, w := newWorld(4, DefaultConfig())
	got := map[int]bool{}
	for r := 0; r < 4; r++ {
		r := r
		w.Register(r, func(from int, _ any) {
			if from != 2 {
				t.Errorf("from %d", from)
			}
			got[r] = true
		})
	}
	w.Broadcast(2, 0, "x")
	e.Run()
	if got[2] {
		t.Error("broadcast delivered to sender")
	}
	if !got[0] || !got[1] || !got[3] {
		t.Errorf("missing deliveries: %v", got)
	}
}

func TestSelfSend(t *testing.T) {
	e, w := newWorld(1, DefaultConfig())
	n := 0
	w.Register(0, func(int, any) { n++ })
	w.Send(0, 0, 1000, nil)
	e.Run()
	if n != 1 {
		t.Error("self message lost")
	}
	if e.Now() != 0 {
		t.Errorf("self message should cost no time, now=%d", e.Now())
	}
}

func TestBadRankPanics(t *testing.T) {
	_, w := newWorld(2, DefaultConfig())
	w.Register(0, func(int, any) {})
	defer func() {
		if recover() == nil {
			t.Error("no panic on bad rank")
		}
	}()
	w.Send(0, 5, 0, nil)
}
