package vmpi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/des"
)

// TestPropertyChannelFIFOAnySizes: whatever the message sizes (hence
// bandwidth delays), deliveries on one (src,dst) channel preserve send
// order — large early messages never overtaken by small later ones.
func TestPropertyChannelFIFOAnySizes(t *testing.T) {
	prop := func(sizesRaw []uint32) bool {
		eng := des.New()
		w := New(eng, 2, Config{Latency: 100, BytesPerE: 8, Bandwidth: 1e6})
		var got []int
		w.Register(0, func(int, any) {})
		w.Register(1, func(_ int, p any) { got = append(got, p.(int)) })
		for i, s := range sizesRaw {
			w.Send(0, 1, int64(s%100_000), i)
		}
		eng.Run()
		if len(got) != len(sizesRaw) {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyByteAccounting: Messages and Bytes aggregate exactly.
func TestPropertyByteAccounting(t *testing.T) {
	prop := func(sizesRaw []uint16) bool {
		eng := des.New()
		w := New(eng, 3, DefaultConfig())
		for r := 0; r < 3; r++ {
			w.Register(r, func(int, any) {})
		}
		var wantBytes int64
		for i, s := range sizesRaw {
			sz := int64(s % 5000)
			w.Send(i%3, (i+1)%3, sz, struct{}{})
			wantBytes += sz * w.cfg.BytesPerE
		}
		eng.Run()
		return w.Messages == int64(len(sizesRaw)) && w.Bytes == wantBytes
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(22))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestZeroLatencyZeroBandwidth: degenerate cost models (instant network,
// infinite bandwidth) still deliver everything in FIFO order.
func TestZeroLatencyZeroBandwidth(t *testing.T) {
	eng := des.New()
	w := New(eng, 2, Config{Latency: 0, BytesPerE: 8, Bandwidth: 0})
	var got []int
	w.Register(0, func(int, any) {})
	w.Register(1, func(_ int, p any) { got = append(got, p.(int)) })
	for i := 0; i < 50; i++ {
		w.Send(0, 1, 1<<40, i) // huge size: bandwidth 0 must mean "infinite"
	}
	eng.Run()
	if len(got) != 50 {
		t.Fatalf("delivered %d of 50", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken at %d: %d", i, v)
		}
	}
}

// TestSelfSendDelivered: a self-send is delivered (locally, next tick)
// rather than dropped or delivered synchronously mid-call.
func TestSelfSendDelivered(t *testing.T) {
	eng := des.New()
	w := New(eng, 1, DefaultConfig())
	delivered := false
	inSend := true
	w.Register(0, func(_ int, p any) {
		if inSend {
			t.Error("self-send delivered synchronously")
		}
		delivered = true
	})
	w.Send(0, 0, 0, "x")
	inSend = false
	eng.Run()
	if !delivered {
		t.Error("self-send lost")
	}
}

// TestBadRankAndMissingHandlerPanic: failure injection on the rank
// checks.
func TestBadRankAndMissingHandlerPanic(t *testing.T) {
	eng := des.New()
	w := New(eng, 2, DefaultConfig())
	w.Register(0, func(int, any) {})
	for _, f := range []func(){
		func() { w.Send(0, 5, 0, nil) },  // dst out of range
		func() { w.Send(-1, 0, 0, nil) }, // src out of range
		func() { w.Send(0, 1, 0, nil) },  // no handler on 1
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
