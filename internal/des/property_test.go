package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestPropertyEventsFireInTimeOrder: for arbitrary scheduling times, the
// engine delivers events in nondecreasing time order and ends at the
// latest scheduled time.
func TestPropertyEventsFireInTimeOrder(t *testing.T) {
	prop := func(offsets []uint32) bool {
		e := New()
		var fired []Time
		for _, o := range offsets {
			dt := Time(o % 1_000_000)
			e.After(dt, func() { fired = append(fired, e.Now()) })
		}
		end := e.Run()
		if len(fired) != len(offsets) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(a, b int) bool { return fired[a] < fired[b] }) {
			return false
		}
		if len(fired) > 0 && fired[len(fired)-1] != end {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyStableTiesAnyMultiset: events scheduled at identical times
// fire in scheduling order, for arbitrary multisets of times.
func TestPropertyStableTiesAnyMultiset(t *testing.T) {
	prop := func(raw []uint8) bool {
		e := New()
		var order []int
		for i, o := range raw {
			i := i
			e.After(Time(o%4), func() { order = append(order, i) })
		}
		e.Run()
		// Within each time bucket, indices must be increasing; reconstruct
		// per-event times and check.
		last := map[Time]int{}
		for _, i := range order {
			tm := Time(raw[i] % 4)
			if prev, ok := last[tm]; ok && prev > i {
				return false
			}
			last[tm] = i
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCascadedScheduling: events scheduled from within events
// still respect time order (the heap handles re-entrancy).
func TestPropertyCascadedScheduling(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		e := New()
		var fired []Time
		var spawn func(depth int, dt Time)
		spawn = func(depth int, dt Time) {
			e.After(dt, func() {
				fired = append(fired, e.Now())
				if depth > 0 {
					spawn(depth-1, dt/2+1)
				}
			})
		}
		for _, o := range raw {
			spawn(int(o%4), Time(o%1000))
		}
		e.Run()
		return sort.SliceIsSorted(fired, func(a, b int) bool { return fired[a] < fired[b] })
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulingInPastPanics is the engine's failure-injection guard.
func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.After(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}
