package des

import "testing"

func TestEventOrdering(t *testing.T) {
	e := New()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	end := e.Run()
	if end != 30 {
		t.Errorf("final time %d", end)
	}
	for i, v := range []int{1, 2, 3} {
		if got[i] != v {
			t.Fatalf("order %v", got)
		}
	}
}

func TestStableTieBreaking(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("ties not FIFO: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	var trace []Time
	e.At(1, func() {
		trace = append(trace, e.Now())
		e.After(5, func() { trace = append(trace, e.Now()) })
		e.After(2, func() { trace = append(trace, e.Now()) })
	})
	e.Run()
	want := []Time{1, 3, 6}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
	if e.Processed() != 3 {
		t.Errorf("processed %d", e.Processed())
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	e := New()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic for past event")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestStep(t *testing.T) {
	e := New()
	n := 0
	e.At(1, func() { n++ })
	e.At(2, func() { n++ })
	if !e.Step() || n != 1 {
		t.Fatal("first step")
	}
	if !e.Step() || n != 2 {
		t.Fatal("second step")
	}
	if e.Step() {
		t.Fatal("step on empty queue")
	}
	// Negative After clamps to now.
	e.After(-5, func() { n++ })
	e.Run()
	if n != 3 {
		t.Error("clamped event did not run")
	}
}
