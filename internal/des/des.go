// Package des is a deterministic discrete-event simulation engine: a
// virtual clock and an event heap with stable FIFO tie-breaking. It is the
// substitute for the paper's 32-processor IBM SP — the scheduling decisions
// and memory evolution of the parallel factorization are replayed in
// virtual time, reproducibly (MUMPS itself is non-deterministic, as the
// paper notes when comparing Tables 2 and 3).
package des

import "container/heap"

// Time is virtual time in nanoseconds.
type Time int64

// Event is a scheduled callback.
type event struct {
	t   Time
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Engine runs events in virtual-time order. Events scheduled at the same
// time run in scheduling order (stable).
type Engine struct {
	now    Time
	seq    int64
	events eventHeap
	count  int64
}

// New returns an engine at time zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() int64 { return e.count }

// At schedules fn at absolute time t (panics if t is in the past).
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic("des: scheduling event in the past")
	}
	e.seq++
	heap.Push(&e.events, event{t: t, seq: e.seq, fn: fn})
}

// After schedules fn dt after the current time.
func (e *Engine) After(dt Time, fn func()) {
	if dt < 0 {
		dt = 0
	}
	e.At(e.now+dt, fn)
}

// Run executes events until the queue is empty, returning the final time.
func (e *Engine) Run() Time {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.t
		e.count++
		ev.fn()
	}
	return e.now
}

// Step executes a single event; returns false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.t
	e.count++
	ev.fn()
	return true
}
