// Package nodepar implements within-front parallelism for the
// shared-memory executor: a large front is factored as a *master* task
// plus slave tile tasks claimed by idle workers, with the decomposition
// itself behind the Partition abstraction:
//
//   - RowPartition is the paper's type-2 1D row blocking (Figure 3): per
//     pivot panel, the master eliminates the panel's full rows and slaves
//     apply it to whole trailing row blocks.
//   - TilePartition is the type-3 2D decomposition used for the root
//     front: trailing rows *and* columns are cut into a tile grid, the
//     master factors only the diagonal tile, and the panel solves (L and
//     U tiles) plus the rank-k tile updates all become claimable tasks,
//     assigned block-cyclically over a pr x pc worker grid.
//
// Every partition is a pure function of the front shape and its geometry
// parameters — never of the worker count — and every tile kernel computes
// bitwise the same result wherever it runs (see internal/dense's blocked
// and tile kernels), so the factors are identical at any worker count and
// any grid shape for a fixed panel width. Worker counts and grids only
// influence *preferred owners*: AssignPrefs maps the paper's dynamic slave
// selection onto 1D row blocks, the block-cyclic grid stamps 2D tiles, and
// the executor uses both as claim priorities, not correctness constraints.
//
// A Job is the state machine of one split front. Its phase/claim/finish
// methods are designed to be called under the executor's scheduling mutex
// (they do no locking of their own); Run and RunMaster execute the dense
// kernels and must be called outside it. Phases form barriers: the tasks
// of a panel's later phase only start once every task of the earlier phase
// has finished, which is what lets an update kernel read the multipliers
// or scaled columns other workers wrote.
package nodepar

import (
	"repro/internal/dense"
	"repro/internal/sched"
	"repro/internal/sparse"
)

// Block is one row block of the 1D within-front partition: front rows
// [R0,R1) and the worker that should preferably process its tasks (-1 for
// no preference).
type Block struct {
	R0, R1 int
	Pref   int
}

// Phase is one slave phase of a panel round.
type Phase int

const (
	// PhaseUpdate applies the panel to trailing rows (1D) or tiles (2D):
	// the LU trailing sweep, or the symmetric trailing update.
	PhaseUpdate Phase = iota
	// PhaseScale computes a row block's scaled panel columns (Cholesky
	// phase 1); it depends only on the master panel, while the symmetric
	// PhaseUpdate reads every block's PhaseScale output.
	PhaseScale
	// PhaseSolve is the 2D LU panel-solve phase: the trailing row blocks'
	// multipliers (L tiles) and the panel rows' trailing columns (U
	// tiles), all independent given the diagonal tile.
	PhaseSolve
)

// Panel is one pivot panel [K0,K1) of a job.
type Panel struct{ K0, K1 int }

// TileKind selects the kernel a tile task runs.
type TileKind uint8

const (
	// TileLUApply is the 1D LU slave task: multiplier scaling plus the
	// full trailing sweep of a row block (one fused kernel).
	TileLUApply TileKind = iota
	// TileCholScale computes a row block's scaled panel columns.
	TileCholScale
	// TileCholUpdate applies the symmetric trailing update to a row block,
	// restricted to the tile's columns (full-width in 1D).
	TileCholUpdate
	// TileLUSolve is the 2D column-panel (L-tile) solve of a row block.
	TileLUSolve
	// TileLURowPanel is the 2D row-panel (U-tile) solve of a column tile.
	TileLURowPanel
	// TileLUUpdate is the 2D rank-k update of one rows x columns tile.
	TileLUUpdate
)

// Tile is one claimable slave task: kernel Kind applied to front rows
// [R0,R1) x columns [C0,C1) for the current panel, with the preferred
// worker (-1 for none) and the partition's memory/flop accounting.
type Tile struct {
	Kind    TileKind
	R0, R1  int
	C0, C1  int
	Pref    int
	Entries int64 // model entries the task's front share occupies
	Flops   int64 // estimated elimination flops (workload accounting)
}

// Partition is the within-front decomposition abstraction: it fixes the
// pivot panel sequence, the slave phases of a panel, the master kernel,
// and the claimable tile tasks of each phase. Implementations must be
// pure functions of the front shape and their geometry parameters so the
// task arithmetic — and with it the factors — never depends on scheduling.
type Partition interface {
	// Panels returns the pivot panel sequence.
	Panels() []Panel
	// Phases returns the slave phases of one panel, in order.
	Phases() []Phase
	// Master eliminates panel p's master part (called without the
	// scheduling lock, before the panel's phases start).
	Master(f *dense.Matrix, p Panel, tol float64) error
	// AppendTasks appends phase ph's tile tasks for panel p to dst and
	// returns it (no tasks when nothing trails the panel).
	AppendTasks(dst []Tile, p Panel, ph Phase) []Tile
}

// PartitionRows splits the nfront rows into blocks of blockRows rows — a
// pure function of the front shape, so the partition (and with it the task
// arithmetic) is independent of the worker count. blockRows <= 0 uses
// dense.DefaultBlockRows.
func PartitionRows(nfront, blockRows int) []Block {
	if blockRows <= 0 {
		blockRows = dense.DefaultBlockRows
	}
	blocks := make([]Block, 0, (nfront+blockRows-1)/blockRows)
	for r0 := 0; r0 < nfront; r0 += blockRows {
		r1 := r0 + blockRows
		if r1 > nfront {
			r1 = nfront
		}
		blocks = append(blocks, Block{R0: r0, R1: r1, Pref: -1})
	}
	return blocks
}

// RowPartition is the 1D (type-2) decomposition: pivot panels of the block
// height, slave tasks over whole trailing row blocks. It reproduces the
// pre-abstraction executor's task set exactly.
type RowPartition struct {
	Kind   sparse.Type
	NFront int
	NPiv   int
	Blocks []Block
}

// NewRowPartition builds the 1D partition of one front. blockRows <= 0
// uses dense.DefaultBlockRows.
func NewRowPartition(kind sparse.Type, nfront, npiv, blockRows int) *RowPartition {
	return &RowPartition{Kind: kind, NFront: nfront, NPiv: npiv,
		Blocks: PartitionRows(nfront, blockRows)}
}

// Panels returns the pivot panels, sized by the partition's block height.
func (p *RowPartition) Panels() []Panel {
	var ps []Panel
	for _, b := range p.Blocks {
		if b.R0 >= p.NPiv {
			break
		}
		k1 := b.R1
		if k1 > p.NPiv {
			k1 = p.NPiv
		}
		ps = append(ps, Panel{K0: b.R0, K1: k1})
	}
	return ps
}

// Phases returns the slave phases a panel needs, in order.
func (p *RowPartition) Phases() []Phase {
	if p.Kind == sparse.Symmetric {
		return []Phase{PhaseScale, PhaseUpdate}
	}
	return []Phase{PhaseUpdate}
}

// Master eliminates panel pl within its own rows: full rows for LU (the 1D
// master owns the panel's U part), the diagonal block for Cholesky.
func (p *RowPartition) Master(f *dense.Matrix, pl Panel, tol float64) error {
	if p.Kind == sparse.Symmetric {
		return dense.PanelCholesky(f, pl.K0, pl.K1)
	}
	return dense.PanelLU(f, pl.K0, pl.K1, tol)
}

// AppendTasks emits one task per row block with rows beyond the panel.
func (p *RowPartition) AppendTasks(dst []Tile, pl Panel, ph Phase) []Tile {
	kind := TileLUApply
	if p.Kind == sparse.Symmetric {
		if ph == PhaseScale {
			kind = TileCholScale
		} else {
			kind = TileCholUpdate
		}
	}
	for _, b := range p.Blocks {
		if b.R1 <= pl.K1 {
			continue
		}
		r0 := b.R0
		if r0 < pl.K1 {
			r0 = pl.K1
		}
		dst = append(dst, Tile{
			Kind: kind, R0: r0, R1: b.R1, C0: pl.K1, C1: p.NFront, Pref: b.Pref,
			Entries: RowsEntries(p.Kind, p.NFront, r0, b.R1),
			Flops:   rowTaskFlops(p.Kind, p.NFront, pl, r0, b.R1),
		})
	}
	return dst
}

// rowTaskFlops estimates a 1D row task's elimination flops in one panel
// phase — the pre-abstraction Job.TaskFlops formula, kept as the workload
// unit of the live slave selection.
func rowTaskFlops(kind sparse.Type, nfront int, pl Panel, r0, r1 int) int64 {
	rows := int64(r1 - r0)
	kw := int64(pl.K1 - pl.K0)
	if rows <= 0 || kw <= 0 {
		return 0
	}
	fl := rows * kw * (1 + 2*(int64(nfront)-int64(pl.K0+pl.K1)/2))
	if kind == sparse.Symmetric {
		fl /= 2
	}
	if fl < 0 {
		fl = 0
	}
	return fl
}

// AutoGrid resolves the worker grid of a 2D (type-3) root front: rows <= 0
// picks the most square grid with pr = floor(sqrt(workers)); an explicit
// rows is clamped to the worker count. pc covers the remaining workers,
// pc = ceil(workers/pr), so every worker owns at least one grid slot.
func AutoGrid(workers, rows int) (pr, pc int) {
	if workers < 1 {
		workers = 1
	}
	pr = rows
	if pr <= 0 {
		pr = 1
		for (pr+1)*(pr+1) <= workers {
			pr++
		}
	}
	if pr > workers {
		pr = workers
	}
	return pr, (workers + pr - 1) / pr
}

// RowsEntries returns the model entries of front rows [r0,r1): full rows
// for unsymmetric fronts, lower-triangle rows for symmetric ones. This is
// the memory a slave's share of the front surface occupies while its task
// runs, charged to the executing worker's tracker.
func RowsEntries(kind sparse.Type, nfront, r0, r1 int) int64 {
	if r1 <= r0 {
		return 0
	}
	if kind == sparse.Symmetric {
		tri := func(x int64) int64 { return x * (x + 1) / 2 }
		return tri(int64(r1)) - tri(int64(r0))
	}
	return int64(r1-r0) * int64(nfront)
}

// MasterFlops estimates the elimination flops of the master part of a
// front (pivot-block panels): an input to the workload-based slave
// selection, not an exact operation count.
func MasterFlops(kind sparse.Type, npiv, nfront int) int64 {
	var fl int64
	for k := 0; k < npiv; k++ {
		// rows k+1..npiv-1 each take a scale plus a trailing sweep.
		fl += int64(npiv-k-1) * (1 + 2*int64(nfront-k-1))
	}
	if kind == sparse.Symmetric {
		fl /= 2
	}
	return fl
}

// RowFlops estimates the elimination flops one trailing row costs across
// all panels: the per-row workload unit of the slave selection.
func RowFlops(kind sparse.Type, npiv, nfront int) int64 {
	var fl int64
	for k := 0; k < npiv; k++ {
		fl += 1 + 2*int64(nfront-k-1)
	}
	if kind == sparse.Symmetric {
		fl /= 2
	}
	return fl
}

// AssignPrefs stamps preferred owners onto the blocks from a slave
// allocation over the rows beyond the first panel (firstK1): the
// allocation's row shares are walked in order and each block inherits the
// processor owning its first row. Blocks before firstK1 (pure master
// territory) and rows beyond the allocation keep Pref -1.
func AssignPrefs(blocks []Block, firstK1 int, allocs []sched.Allocation) {
	if len(allocs) == 0 {
		return
	}
	ai, left := 0, allocs[0].Rows
	for bi := range blocks {
		b := &blocks[bi]
		if b.R1 <= firstK1 {
			continue
		}
		if ai >= len(allocs) {
			return
		}
		b.Pref = allocs[ai].Proc
		rows := b.R1 - max(b.R0, firstK1)
		left -= rows
		for left <= 0 && ai < len(allocs) {
			ai++
			if ai < len(allocs) {
				left += allocs[ai].Rows
			}
		}
	}
}
