// Package nodepar implements within-front (type-2) parallelism for the
// shared-memory executor: a large front is factored as a *master* task —
// panel-wise elimination of the pivot block with the blocked kernels of
// internal/dense — plus *slave* row-block tasks that apply each panel to
// the 1D row partition of the trailing rows (the paper's Figure-3 row
// blocking, as real shared-memory tasks instead of simulated messages).
//
// The row partition is a pure function of the front shape and the block
// size — never of the worker count — and every row-block kernel computes
// bitwise the same result wherever it runs (see internal/dense's blocked
// kernels), so the factors are identical at any worker count for a fixed
// block size. The scheduling heuristics of the paper only decide which
// worker *should* run each block: AssignPrefs maps the allocations of
// sched.SelectSlavesWorkload / sched.SelectSlavesMemory onto preferred
// owners, and the executor uses them as claim priorities, not as
// correctness constraints.
//
// A Job is the state machine of one split front. Its phase/claim/finish
// methods are designed to be called under the executor's scheduling mutex
// (they do no locking of their own); Run and RunMaster execute the dense
// kernels and must be called outside it. Phases form barriers: Update
// tasks of a panel only start once every Scale task of that panel has
// finished, which is what lets the symmetric trailing update read the
// scaled rows of other blocks.
package nodepar

import (
	"repro/internal/dense"
	"repro/internal/sched"
	"repro/internal/sparse"
)

// Block is one row block of the 1D within-front partition: front rows
// [R0,R1) and the worker that should preferably process its tasks (-1 for
// no preference).
type Block struct {
	R0, R1 int
	Pref   int
}

// Partition splits the nfront rows into blocks of blockRows rows — a pure
// function of the front shape, so the partition (and with it the task
// arithmetic) is independent of the worker count. blockRows <= 0 uses
// dense.DefaultBlockRows.
func Partition(nfront, blockRows int) []Block {
	if blockRows <= 0 {
		blockRows = dense.DefaultBlockRows
	}
	blocks := make([]Block, 0, (nfront+blockRows-1)/blockRows)
	for r0 := 0; r0 < nfront; r0 += blockRows {
		r1 := r0 + blockRows
		if r1 > nfront {
			r1 = nfront
		}
		blocks = append(blocks, Block{R0: r0, R1: r1, Pref: -1})
	}
	return blocks
}

// RowsEntries returns the model entries of front rows [r0,r1): full rows
// for unsymmetric fronts, lower-triangle rows for symmetric ones. This is
// the memory a slave's share of the front surface occupies while its task
// runs, charged to the executing worker's tracker.
func RowsEntries(kind sparse.Type, nfront, r0, r1 int) int64 {
	if r1 <= r0 {
		return 0
	}
	if kind == sparse.Symmetric {
		tri := func(x int64) int64 { return x * (x + 1) / 2 }
		return tri(int64(r1)) - tri(int64(r0))
	}
	return int64(r1-r0) * int64(nfront)
}

// MasterFlops estimates the elimination flops of the master part of a
// front (pivot-block panels): an input to the workload-based slave
// selection, not an exact operation count.
func MasterFlops(kind sparse.Type, npiv, nfront int) int64 {
	var fl int64
	for k := 0; k < npiv; k++ {
		// rows k+1..npiv-1 each take a scale plus a trailing sweep.
		fl += int64(npiv-k-1) * (1 + 2*int64(nfront-k-1))
	}
	if kind == sparse.Symmetric {
		fl /= 2
	}
	return fl
}

// RowFlops estimates the elimination flops one trailing row costs across
// all panels: the per-row workload unit of the slave selection.
func RowFlops(kind sparse.Type, npiv, nfront int) int64 {
	var fl int64
	for k := 0; k < npiv; k++ {
		fl += 1 + 2*int64(nfront-k-1)
	}
	if kind == sparse.Symmetric {
		fl /= 2
	}
	return fl
}

// AssignPrefs stamps preferred owners onto the blocks from a slave
// allocation over the rows beyond the first panel (firstK1): the
// allocation's row shares are walked in order and each block inherits the
// processor owning its first row. Blocks before firstK1 (pure master
// territory) and rows beyond the allocation keep Pref -1.
func AssignPrefs(blocks []Block, firstK1 int, allocs []sched.Allocation) {
	if len(allocs) == 0 {
		return
	}
	ai, left := 0, allocs[0].Rows
	for bi := range blocks {
		b := &blocks[bi]
		if b.R1 <= firstK1 {
			continue
		}
		if ai >= len(allocs) {
			return
		}
		b.Pref = allocs[ai].Proc
		rows := b.R1 - max(b.R0, firstK1)
		left -= rows
		for left <= 0 && ai < len(allocs) {
			ai++
			if ai < len(allocs) {
				left += allocs[ai].Rows
			}
		}
	}
}
