package nodepar

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dense"
	"repro/internal/sched"
	"repro/internal/sparse"
)

func TestPartitionRowsPure(t *testing.T) {
	// The partition depends on the front shape and block size only.
	a := PartitionRows(300, 64)
	b := PartitionRows(300, 64)
	if len(a) != len(b) || len(a) != 5 {
		t.Fatalf("partition not deterministic: %v vs %v", a, b)
	}
	total := 0
	prev := 0
	for i, blk := range a {
		if blk.R0 != prev || blk.R1 <= blk.R0 || blk.Pref != -1 {
			t.Fatalf("block %d malformed: %+v", i, blk)
		}
		if blk != b[i] {
			t.Fatalf("block %d differs across calls", i)
		}
		total += blk.R1 - blk.R0
		prev = blk.R1
	}
	if total != 300 {
		t.Fatalf("blocks cover %d rows, want 300", total)
	}
	if got := PartitionRows(10, 0); len(got) != 1 || got[0].R1 != 10 {
		t.Fatalf("default block size partition wrong: %v", got)
	}
}

func TestRowsEntries(t *testing.T) {
	if e := RowsEntries(sparse.Unsymmetric, 100, 10, 20); e != 1000 {
		t.Errorf("unsym rows entries %d, want 1000", e)
	}
	// Symmetric rows 2..3 of the lower triangle: (3) + (4) = 7.
	if e := RowsEntries(sparse.Symmetric, 100, 2, 4); e != 7 {
		t.Errorf("sym rows entries %d, want 7", e)
	}
	if e := RowsEntries(sparse.Symmetric, 100, 5, 5); e != 0 {
		t.Errorf("empty range entries %d, want 0", e)
	}
}

func TestAssignPrefs(t *testing.T) {
	blocks := PartitionRows(200, 50) // 4 blocks of 50
	// First panel ends at 50; 150 slave rows split 100/50 between workers
	// 2 and 5.
	AssignPrefs(blocks, 50, []sched.Allocation{{Proc: 2, Rows: 100}, {Proc: 5, Rows: 50}})
	if blocks[0].Pref != -1 {
		t.Errorf("master block got pref %d", blocks[0].Pref)
	}
	if blocks[1].Pref != 2 || blocks[2].Pref != 2 {
		t.Errorf("first allocation blocks: %d %d, want 2 2", blocks[1].Pref, blocks[2].Pref)
	}
	if blocks[3].Pref != 5 {
		t.Errorf("second allocation block: %d, want 5", blocks[3].Pref)
	}
	// No allocations: prefs untouched.
	blocks2 := PartitionRows(200, 50)
	AssignPrefs(blocks2, 50, nil)
	for _, b := range blocks2 {
		if b.Pref != -1 {
			t.Fatalf("pref %d without allocation", b.Pref)
		}
	}
}

func TestFlopsHelpers(t *testing.T) {
	if MasterFlops(sparse.Unsymmetric, 0, 100) != 0 {
		t.Error("master flops without pivots")
	}
	if RowFlops(sparse.Unsymmetric, 10, 100) <= 0 {
		t.Error("row flops not positive")
	}
	if MasterFlops(sparse.Symmetric, 20, 100) >= MasterFlops(sparse.Unsymmetric, 20, 100) {
		t.Error("symmetric master flops not below unsymmetric")
	}
}

func TestAutoGrid(t *testing.T) {
	cases := []struct{ w, rows, pr, pc int }{
		{1, 0, 1, 1},
		{2, 0, 1, 2},
		{4, 0, 2, 2},
		{8, 0, 2, 4},
		{9, 0, 3, 3},
		{7, 0, 2, 4},
		{8, 4, 4, 2},
		{8, 16, 8, 1}, // rows clamped to workers
		{3, -1, 1, 3}, // negative rows = auto
	}
	for _, c := range cases {
		pr, pc := AutoGrid(c.w, c.rows)
		if pr != c.pr || pc != c.pc {
			t.Errorf("AutoGrid(%d, %d) = (%d,%d), want (%d,%d)", c.w, c.rows, pr, pc, c.pr, c.pc)
		}
		if pr*pc < c.w {
			t.Errorf("AutoGrid(%d, %d): %d slots < workers", c.w, c.rows, pr*pc)
		}
	}
}

// TestTilePartitionCoverage checks the 2D partition's task arithmetic: per
// panel and phase, the emitted tiles cover each trailing element exactly
// once, tile geometry is independent of the worker grid, and the
// block-cyclic preferred owners stay within the worker range.
func TestTilePartitionCoverage(t *testing.T) {
	for _, kind := range []sparse.Type{sparse.Unsymmetric, sparse.Symmetric} {
		for _, geom := range [][2]int{{97, 97}, {130, 64}, {64, 64}, {33, 20}} {
			nf, npiv := geom[0], geom[1]
			p := NewTilePartition(kind, nf, npiv, 32, 2, 2, 4)
			q := NewTilePartition(kind, nf, npiv, 32, 4, 1, 4) // other grid
			panels := p.Panels()
			if len(panels) == 0 && npiv > 0 {
				t.Fatalf("no panels for npiv %d", npiv)
			}
			for pi, pl := range panels {
				if pi > 0 && pl.K0 != panels[pi-1].K1 {
					t.Fatalf("panel %d not contiguous", pi)
				}
				for _, ph := range p.Phases() {
					tiles := p.AppendTasks(nil, pl, ph)
					other := q.AppendTasks(nil, pl, ph)
					if len(tiles) != len(other) {
						t.Fatalf("grid changed task count: %d vs %d", len(tiles), len(other))
					}
					seen := map[[4]int]bool{}
					for ti, tl := range tiles {
						o := other[ti]
						if tl.R0 != o.R0 || tl.R1 != o.R1 || tl.C0 != o.C0 || tl.C1 != o.C1 {
							t.Fatalf("grid changed tile geometry: %+v vs %+v", tl, o)
						}
						if tl.Pref < 0 || tl.Pref >= 4 {
							t.Fatalf("pref %d out of worker range", tl.Pref)
						}
						if tl.Entries <= 0 || tl.Flops <= 0 {
							t.Fatalf("tile without accounting: %+v", tl)
						}
						key := [4]int{tl.R0, tl.R1, tl.C0, tl.C1}
						if seen[key] {
							t.Fatalf("duplicate tile %v", key)
						}
						seen[key] = true
					}
					// Update phase must cover the whole trailing block once.
					if ph == PhaseUpdate {
						cover := map[[2]int]int{}
						for _, tl := range tiles {
							for i := tl.R0; i < tl.R1; i++ {
								hi := tl.C1
								if kind == sparse.Symmetric && hi > i+1 {
									hi = i + 1
								}
								for j := tl.C0; j < hi; j++ {
									cover[[2]int{i, j}]++
								}
							}
						}
						for i := pl.K1; i < nf; i++ {
							hi := nf
							if kind == sparse.Symmetric {
								hi = i + 1
							}
							for j := pl.K1; j < hi; j++ {
								if cover[[2]int{i, j}] != 1 {
									t.Fatalf("element (%d,%d) covered %d times", i, j, cover[[2]int{i, j}])
								}
							}
						}
						for k, c := range cover {
							if c != 1 {
								t.Fatalf("element %v covered %d times", k, c)
							}
						}
					}
				}
			}
		}
	}
}

// driveJob factors the front through the job state machine with the given
// number of worker goroutines, mimicking the executor's locking protocol.
func driveJob(t *testing.T, f *dense.Matrix, npiv int, kind sparse.Type, part Partition, workers int) {
	t.Helper()
	job := NewJob(0, f, npiv, kind, 1e-14, part, dense.KernelDefault)

	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	done := false

	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			mu.Lock()
			for !done {
				i := job.ClaimPreferred(id)
				if i < 0 {
					i = job.Claim(id)
				}
				if i < 0 {
					cond.Wait()
					continue
				}
				if job.TaskEntries(i) <= 0 {
					t.Error("task with no entries")
				}
				mu.Unlock()
				job.Run(i)
				mu.Lock()
				if job.Finish(i) {
					cond.Broadcast()
				}
			}
			mu.Unlock()
		}(w)
	}

	for _, p := range job.Panels() {
		if err := job.RunMaster(p); err != nil {
			t.Fatal(err)
		}
		for _, ph := range job.Phases() {
			mu.Lock()
			if job.StartPhase(p, ph) == 0 {
				mu.Unlock()
				continue
			}
			cond.Broadcast()
			for !job.PhaseDone() {
				if i := job.Claim(0); i >= 0 {
					mu.Unlock()
					job.Run(i)
					mu.Lock()
					if job.Finish(i) {
						cond.Broadcast()
					}
					continue
				}
				cond.Wait()
			}
			mu.Unlock()
		}
	}
	mu.Lock()
	done = true
	cond.Broadcast()
	mu.Unlock()
	wg.Wait()
}

// partitionsUnderTest builds the 1D partition (prefs spread around) and
// two 2D grids for one front shape.
func partitionsUnderTest(kind sparse.Type, nfront, npiv, blockRows, workers int) map[string]Partition {
	rp := NewRowPartition(kind, nfront, npiv, blockRows)
	for i := range rp.Blocks {
		rp.Blocks[i].Pref = i % workers
	}
	pr, pc := AutoGrid(workers, 0)
	return map[string]Partition{
		"1d":      rp,
		"2d-auto": NewTilePartition(kind, nfront, npiv, blockRows, pr, pc, workers),
		"2d-flat": NewTilePartition(kind, nfront, npiv, blockRows, 1, workers, workers),
	}
}

// TestJobMatchesReferenceKernels drives jobs with concurrent claimants at
// several worker counts, block sizes and partitions — 1D row blocks and
// 2D tile grids — and checks the result is bitwise the element-wise
// kernel's: the determinism the executor builds on, for every partition
// shape. Running it under -race also validates the claim/finish protocol.
func TestJobMatchesReferenceKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 97
	for _, kind := range []sparse.Type{sparse.Unsymmetric, sparse.Symmetric} {
		for _, npiv := range []int{13, 40, n} {
			var a *dense.Matrix
			if kind == sparse.Symmetric {
				a = randSPD(n, rng)
			} else {
				a = randDiagDominant(n, rng)
			}
			ref := cloneM(a)
			var err error
			if kind == sparse.Symmetric {
				err = dense.PartialCholesky(ref, npiv)
			} else {
				err = dense.PartialLU(ref, npiv, 1e-14)
			}
			if err != nil {
				t.Fatal(err)
			}
			for _, blockRows := range []int{16, 32} {
				for _, workers := range []int{1, 2, 4} {
					for name, part := range partitionsUnderTest(kind, n, npiv, blockRows, workers) {
						got := cloneM(a)
						driveJob(t, got, npiv, kind, part, workers)
						for i := 0; i < n; i++ {
							for j := 0; j < n; j++ {
								if kind == sparse.Symmetric && j > i {
									continue
								}
								if math.Float64bits(ref.At(i, j)) != math.Float64bits(got.At(i, j)) {
									t.Fatalf("%v %s npiv=%d block=%d workers=%d: (%d,%d) %g vs %g",
										kind, name, npiv, blockRows, workers, i, j, ref.At(i, j), got.At(i, j))
								}
							}
						}
					}
				}
			}
		}
	}
}

func randDiagDominant(n int, rng *rand.Rand) *dense.Matrix {
	m := dense.New(n, n)
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			if i != j {
				v := rng.NormFloat64()
				if rng.Float64() < 0.4 {
					v = 0
				}
				m.Set(i, j, v)
				sum += math.Abs(v)
			}
		}
		m.Set(i, i, sum+1+rng.Float64())
	}
	return m
}

func randSPD(n int, rng *rand.Rand) *dense.Matrix {
	m := dense.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			v := rng.NormFloat64()
			if rng.Float64() < 0.4 {
				v = 0
			}
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			if j != i {
				s += math.Abs(m.At(i, j))
			}
		}
		m.Set(i, i, s+1)
	}
	return m
}

func cloneM(m *dense.Matrix) *dense.Matrix {
	c := dense.New(m.R, m.C)
	copy(c.A, m.A)
	return c
}
