package nodepar

import (
	"fmt"

	"repro/internal/dense"
	"repro/internal/sparse"
)

// Task states within the current phase.
const (
	taskPending uint8 = iota
	taskClaimed
	taskDone
)

// Job is the within-front factorization of one split front: the master's
// panel sequence plus, per panel, the barriered waves of tile tasks its
// Partition emits — row blocks for the 1D RowPartition, 2D tiles for the
// root front's TilePartition. All methods except Run and RunMaster must be
// called under the executor's scheduling mutex; Run and RunMaster execute
// the dense kernels and must be called without it. A task index returned
// by Claim stays valid for Run/Finish because the phase cannot advance
// while the task is unfinished.
type Job struct {
	Node   int // assembly-tree node, for error context
	NPiv   int
	NFront int
	Kind   sparse.Type
	Part   Partition

	f    *dense.Matrix
	tol  float64
	kern dense.Kernel

	k0, k1  int
	phase   Phase
	tasks   []Tile
	state   []uint8
	pending int

	// Claim indices, rebuilt per phase so claims stay O(1) amortized even
	// when the 2D update phase arms T^2 tile tasks: next is the global
	// cursor (everything below it is claimed or done — a claimed task
	// never returns to pending within a phase), and byPref[w]/heads[w]
	// list the tasks preferring worker w with their pop cursor. prefBuf
	// is the reused backing storage of the byPref lists.
	next    int
	byPref  [][]int32
	heads   []int
	prefBuf []int32
}

// NewJob builds the job for one assembled front over the given partition.
// kern selects the kernel family every task runs through — the same family
// must be used for the whole factorization so the factors are one
// consistent numeric mode.
func NewJob(node int, f *dense.Matrix, npiv int, kind sparse.Type, tol float64, part Partition, kern dense.Kernel) *Job {
	return &Job{
		Node:   node,
		NPiv:   npiv,
		NFront: f.R,
		Kind:   kind,
		Part:   part,
		f:      f,
		tol:    tol,
		kern:   kern,
	}
}

// Panels returns the partition's pivot panel sequence.
func (j *Job) Panels() []Panel { return j.Part.Panels() }

// Phases returns the slave phases a panel needs, in order.
func (j *Job) Phases() []Phase { return j.Part.Phases() }

// RunMaster eliminates panel p's master part (full panel rows for the 1D
// partition, the diagonal tile for the 2D one). Call without the
// scheduling lock, before starting the panel's phases.
func (j *Job) RunMaster(p Panel) error { return j.Part.Master(j.f, p, j.tol) }

// StartPhase arms the tile tasks of phase ph for panel p and returns how
// many there are (0 when nothing trails the panel). Must not be called
// while a previous phase still has unfinished tasks.
func (j *Job) StartPhase(p Panel, ph Phase) int {
	if j.pending != 0 {
		panic(fmt.Sprintf("nodepar: StartPhase(panel [%d,%d), phase %d) on front %d with %d of %d tasks of phase %d unfinished",
			p.K0, p.K1, ph, j.Node, j.pending, len(j.tasks), j.phase))
	}
	j.k0, j.k1, j.phase = p.K0, p.K1, ph
	j.tasks = j.Part.AppendTasks(j.tasks[:0], p, ph)
	if cap(j.state) < len(j.tasks) {
		j.state = make([]uint8, len(j.tasks))
	} else {
		j.state = j.state[:len(j.tasks)]
		for i := range j.state {
			j.state[i] = taskPending
		}
	}
	j.pending = len(j.tasks)
	j.buildClaimIndex()
	return j.pending
}

// buildClaimIndex rebuilds the per-phase claim cursors: one pass counts
// the tasks per preferred worker, a second fills the byPref lists in task
// order (so preferred claiming pops lowest-index first, like the linear
// scan it replaces). Steady state reuses the backing storage.
func (j *Job) buildClaimIndex() {
	j.next = 0
	maxPref := -1
	for i := range j.tasks {
		if p := j.tasks[i].Pref; p > maxPref {
			maxPref = p
		}
	}
	if cap(j.byPref) < maxPref+1 {
		j.byPref = make([][]int32, maxPref+1)
		j.heads = make([]int, maxPref+1)
	}
	j.byPref = j.byPref[:maxPref+1]
	j.heads = j.heads[:maxPref+1]
	if maxPref < 0 {
		return
	}
	counts := j.heads // reuse as the counting pass's scratch
	for w := range counts {
		counts[w] = 0
	}
	n := 0
	for i := range j.tasks {
		if p := j.tasks[i].Pref; p >= 0 {
			counts[p]++
			n++
		}
	}
	if cap(j.prefBuf) < n {
		j.prefBuf = make([]int32, n)
	}
	buf := j.prefBuf[:n]
	off := 0
	for w, c := range counts {
		j.byPref[w] = buf[off : off : off+c]
		off += c
	}
	for i := range j.tasks {
		if p := j.tasks[i].Pref; p >= 0 {
			j.byPref[p] = append(j.byPref[p], int32(i))
		}
	}
	for w := range j.heads {
		j.heads[w] = 0
	}
}

// Claim hands out a pending task of the current phase, preferring tiles
// whose Pref is w, and returns its index (-1 when none is pending).
// Amortized O(1): the preferred list pops through its cursor and the
// fallback advances the global cursor past tasks that can never become
// pending again.
func (j *Job) Claim(w int) int {
	if i := j.ClaimPreferred(w); i >= 0 {
		return i
	}
	for j.next < len(j.tasks) && j.state[j.next] != taskPending {
		j.next++
	}
	if j.next < len(j.tasks) {
		j.state[j.next] = taskClaimed
		return j.next
	}
	return -1
}

// ClaimPreferred is Claim restricted to tiles preferring worker w.
func (j *Job) ClaimPreferred(w int) int {
	if w < 0 || w >= len(j.byPref) {
		return -1
	}
	lst := j.byPref[w]
	for j.heads[w] < len(lst) {
		i := int(lst[j.heads[w]])
		j.heads[w]++
		if j.state[i] == taskPending {
			j.state[i] = taskClaimed
			return i
		}
	}
	return -1
}

// PhaseDone reports whether every task of the current phase has finished.
func (j *Job) PhaseDone() bool { return j.pending == 0 }

// Run executes task i's kernel for the current panel and phase through
// the job's kernel family. Call without the scheduling lock; the task
// must have been Claimed.
func (j *Job) Run(i int) {
	t := j.tasks[i]
	switch t.Kind {
	case TileLUApply:
		j.kern.LUApplyRows(j.f, j.k0, j.k1, t.R0, t.R1)
	case TileCholScale:
		j.kern.CholeskyScaleRows(j.f, j.k0, j.k1, t.R0, t.R1)
	case TileCholUpdate:
		j.kern.CholeskyUpdateTile(j.f, j.k0, j.k1, t.R0, t.R1, t.C0, t.C1)
	case TileLUSolve:
		j.kern.LUSolveRows(j.f, j.k0, j.k1, t.R0, t.R1)
	case TileLURowPanel:
		dense.LUPanelTrailing(j.f, j.k0, j.k1, t.C0, t.C1)
	case TileLUUpdate:
		j.kern.LUUpdateTile(j.f, j.k0, j.k1, t.R0, t.R1, t.C0, t.C1)
	}
}

// Finish marks task i done and reports whether that completed the phase.
func (j *Job) Finish(i int) bool {
	if j.state[i] != taskClaimed {
		panic(fmt.Sprintf("nodepar: Finish(task %d, state %d) on front %d (phase %d, %d pending): task was never claimed",
			i, j.state[i], j.Node, j.phase, j.pending))
	}
	j.state[i] = taskDone
	j.pending--
	return j.pending == 0
}

// TaskEntries returns the model entries task i's front share occupies
// while it runs — the per-slave memory charge.
func (j *Job) TaskEntries(i int) int64 { return j.tasks[i].Entries }

// TaskFlops estimates task i's flops in the current phase (workload
// accounting for the slave selection of later fronts).
func (j *Job) TaskFlops(i int) int64 { return j.tasks[i].Flops }

// Pref returns the preferred worker of task i (-1 for none).
func (j *Job) Pref(i int) int { return j.tasks[i].Pref }
