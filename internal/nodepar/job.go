package nodepar

import (
	"repro/internal/dense"
	"repro/internal/sparse"
)

// Phase is one slave phase of a panel round.
type Phase int

const (
	// PhaseUpdate applies the panel to a row block: the LU scale+trailing
	// sweep, or the symmetric trailing update (Cholesky phase 2).
	PhaseUpdate Phase = iota
	// PhaseScale computes a row block's scaled panel columns (Cholesky
	// phase 1); it depends only on the master panel, while the symmetric
	// PhaseUpdate reads every block's PhaseScale output.
	PhaseScale
)

// Panel is one pivot panel [K0,K1) of a job.
type Panel struct{ K0, K1 int }

// Task states within the current phase.
const (
	taskPending uint8 = iota
	taskClaimed
	taskDone
)

// Job is the within-front factorization of one split front: the master's
// panel sequence plus, per panel, one or two barriered waves of row-block
// slave tasks over the fixed 1D partition. All methods except Run and
// RunMaster must be called under the executor's scheduling mutex; Run and
// RunMaster execute the dense kernels and must be called without it. A
// task index returned by Claim stays valid for Run/Finish because the
// phase cannot advance while the task is unfinished.
type Job struct {
	Node   int // assembly-tree node, for error context
	NPiv   int
	NFront int
	Kind   sparse.Type
	Blocks []Block

	f    *dense.Matrix
	tol  float64
	kern dense.Kernel

	k0, k1  int
	phase   Phase
	state   []uint8
	pending int
}

// NewJob builds the job for one assembled front. blocks must come from
// Partition (optionally with preferences assigned). kern selects the
// row-kernel family every task runs through — the same family must be
// used for the whole factorization so the factors are one consistent
// numeric mode.
func NewJob(node int, f *dense.Matrix, npiv int, kind sparse.Type, tol float64, blocks []Block, kern dense.Kernel) *Job {
	return &Job{
		Node:   node,
		NPiv:   npiv,
		NFront: f.R,
		Kind:   kind,
		Blocks: blocks,
		f:      f,
		tol:    tol,
		kern:   kern,
		state:  make([]uint8, len(blocks)),
	}
}

// Panels returns the pivot panels, sized by the partition's block height.
func (j *Job) Panels() []Panel {
	var ps []Panel
	for _, b := range j.Blocks {
		if b.R0 >= j.NPiv {
			break
		}
		k1 := b.R1
		if k1 > j.NPiv {
			k1 = j.NPiv
		}
		ps = append(ps, Panel{K0: b.R0, K1: k1})
	}
	return ps
}

// Phases returns the slave phases a panel needs, in order.
func (j *Job) Phases() []Phase {
	if j.Kind == sparse.Symmetric {
		return []Phase{PhaseScale, PhaseUpdate}
	}
	return []Phase{PhaseUpdate}
}

// RunMaster eliminates panel p within its own rows (the master task).
// Call without the scheduling lock, before starting the panel's phases.
func (j *Job) RunMaster(p Panel) error {
	if j.Kind == sparse.Symmetric {
		return dense.PanelCholesky(j.f, p.K0, p.K1)
	}
	return dense.PanelLU(j.f, p.K0, p.K1, j.tol)
}

// StartPhase arms the slave tasks of phase ph for panel p and returns how
// many there are (0 when no rows lie beyond the panel). Must not be called
// while a previous phase still has unfinished tasks.
func (j *Job) StartPhase(p Panel, ph Phase) int {
	if j.pending != 0 {
		panic("nodepar: StartPhase with unfinished tasks")
	}
	j.k0, j.k1, j.phase = p.K0, p.K1, ph
	j.pending = 0
	for i, b := range j.Blocks {
		if b.R1 > j.k1 {
			j.state[i] = taskPending
			j.pending++
		} else {
			j.state[i] = taskDone
		}
	}
	return j.pending
}

// Claim hands out a pending task of the current phase, preferring blocks
// whose Pref is w, and returns its index (-1 when none is pending).
func (j *Job) Claim(w int) int {
	free := -1
	for i := range j.Blocks {
		if j.state[i] != taskPending {
			continue
		}
		if j.Blocks[i].Pref == w {
			j.state[i] = taskClaimed
			return i
		}
		if free < 0 {
			free = i
		}
	}
	if free >= 0 {
		j.state[free] = taskClaimed
	}
	return free
}

// ClaimPreferred is Claim restricted to blocks preferring worker w.
func (j *Job) ClaimPreferred(w int) int {
	for i := range j.Blocks {
		if j.state[i] == taskPending && j.Blocks[i].Pref == w {
			j.state[i] = taskClaimed
			return i
		}
	}
	return -1
}

// PhaseDone reports whether every task of the current phase has finished.
func (j *Job) PhaseDone() bool { return j.pending == 0 }

// rows returns task i's effective row range in the current phase.
func (j *Job) rows(i int) (int, int) {
	b := j.Blocks[i]
	r0 := b.R0
	if r0 < j.k1 {
		r0 = j.k1
	}
	return r0, b.R1
}

// Run executes task i's kernel for the current panel and phase through
// the job's kernel family. Call without the scheduling lock; the task
// must have been Claimed.
func (j *Job) Run(i int) {
	r0, r1 := j.rows(i)
	switch {
	case j.Kind != sparse.Symmetric:
		j.kern.LUApplyRows(j.f, j.k0, j.k1, r0, r1)
	case j.phase == PhaseScale:
		j.kern.CholeskyScaleRows(j.f, j.k0, j.k1, r0, r1)
	default:
		j.kern.CholeskyUpdateRows(j.f, j.k0, j.k1, r0, r1)
	}
}

// Finish marks task i done and reports whether that completed the phase.
func (j *Job) Finish(i int) bool {
	if j.state[i] != taskClaimed {
		panic("nodepar: Finish on unclaimed task")
	}
	j.state[i] = taskDone
	j.pending--
	return j.pending == 0
}

// TaskEntries returns the model entries task i's row share occupies while
// it runs — the per-slave memory charge.
func (j *Job) TaskEntries(i int) int64 {
	r0, r1 := j.rows(i)
	return RowsEntries(j.Kind, j.NFront, r0, r1)
}

// TaskFlops estimates task i's flops in the current phase (workload
// accounting for the slave selection of later fronts).
func (j *Job) TaskFlops(i int) int64 {
	r0, r1 := j.rows(i)
	rows := int64(r1 - r0)
	kw := int64(j.k1 - j.k0)
	if rows <= 0 || kw <= 0 {
		return 0
	}
	fl := rows * kw * (1 + 2*(int64(j.NFront)-int64(j.k0+j.k1)/2))
	if j.Kind == sparse.Symmetric {
		fl /= 2
	}
	if fl < 0 {
		fl = 0
	}
	return fl
}

// Pref returns the preferred worker of task i (-1 for none).
func (j *Job) Pref(i int) int { return j.Blocks[i].Pref }
