package nodepar

import (
	"repro/internal/dense"
	"repro/internal/sparse"
)

// TilePartition is the 2D (type-3) decomposition of a root front: trailing
// rows and columns are cut into square tiles of the panel width, and every
// panel step becomes a small DAG — diagonal-tile factor (master), panel
// solves (L tiles per trailing row block; for LU also U tiles per trailing
// column tile), then one rank-k update task per trailing tile. Tile
// boundaries are a pure function of the front shape and the tile size —
// the PR x PC worker grid and Workers only stamp block-cyclic *preferred*
// owners, so the factors are bitwise independent of the grid shape.
//
// Against the 1D RowPartition this lifts the two scalability caps of the
// root front: the master no longer sweeps the panel's whole trailing U
// part serially (it factors only the diagonal tile), and the update phase
// offers T^2 tasks instead of T, so late panels still have enough tasks to
// keep a full worker fleet busy.
type TilePartition struct {
	Kind    sparse.Type
	NFront  int
	NPiv    int
	Tile    int // tile edge = pivot panel width
	PR, PC  int // worker grid shape for block-cyclic ownership
	Workers int
}

// NewTilePartition builds the 2D partition of one front. tile <= 0 uses
// dense.DefaultBlockRows; the grid (pr, pc) comes from AutoGrid.
func NewTilePartition(kind sparse.Type, nfront, npiv, tile, pr, pc, workers int) *TilePartition {
	if tile <= 0 {
		tile = dense.DefaultBlockRows
	}
	if pr < 1 {
		pr = 1
	}
	if pc < 1 {
		pc = 1
	}
	if workers < 1 {
		workers = 1
	}
	return &TilePartition{Kind: kind, NFront: nfront, NPiv: npiv, Tile: tile,
		PR: pr, PC: pc, Workers: workers}
}

// Panels returns the pivot panels: tile-height pivot ranges, the same
// sequence the 1D partition produces for an equal block height — which is
// why 1D and 2D factorizations of the same front are bitwise identical.
func (p *TilePartition) Panels() []Panel {
	var ps []Panel
	for k0 := 0; k0 < p.NPiv; k0 += p.Tile {
		k1 := k0 + p.Tile
		if k1 > p.NPiv {
			k1 = p.NPiv
		}
		ps = append(ps, Panel{K0: k0, K1: k1})
	}
	return ps
}

// Phases returns the slave phases of one panel: solves, then updates.
func (p *TilePartition) Phases() []Phase {
	if p.Kind == sparse.Symmetric {
		return []Phase{PhaseScale, PhaseUpdate}
	}
	return []Phase{PhaseSolve, PhaseUpdate}
}

// Master factors the diagonal tile only; the panel's trailing columns (the
// U tiles) are PhaseSolve tasks, unlike the 1D master which sweeps them
// itself. (The symmetric diagonal kernel never touched trailing columns.)
func (p *TilePartition) Master(f *dense.Matrix, pl Panel, tol float64) error {
	if p.Kind == sparse.Symmetric {
		return dense.PanelCholesky(f, pl.K0, pl.K1)
	}
	return dense.PanelLUTile(f, pl.K0, pl.K1, tol)
}

// owner returns the block-cyclic preferred worker of tile (ti, tj) — tile
// indices in units of the tile size — over the PR x PC grid.
func (p *TilePartition) owner(ti, tj int) int {
	return ((ti%p.PR)*p.PC + tj%p.PC) % p.Workers
}

// bounds appends the tile boundaries of [lo,hi) cut at multiples of the
// tile size measured from front row 0, so a panel ending mid-tile starts
// with a short tile and the grid realigns immediately after.
func (p *TilePartition) bounds(dst [][2]int, lo, hi int) [][2]int {
	for r0 := lo; r0 < hi; {
		r1 := (r0/p.Tile + 1) * p.Tile
		if r1 > hi {
			r1 = hi
		}
		dst = append(dst, [2]int{r0, r1})
		r0 = r1
	}
	return dst
}

// AppendTasks emits phase ph's tile tasks for panel pl.
func (p *TilePartition) AppendTasks(dst []Tile, pl Panel, ph Phase) []Tile {
	k0, k1 := pl.K0, pl.K1
	kw := int64(k1 - k0)
	pi := k0 / p.Tile // panel's own tile index
	var rb [16][2]int
	rows := p.bounds(rb[:0], k1, p.NFront)
	switch ph {
	case PhaseSolve: // LU: L tiles per row block + U tiles per column tile
		for _, r := range rows {
			h := int64(r[1] - r[0])
			dst = append(dst, Tile{
				Kind: TileLUSolve, R0: r[0], R1: r[1], C0: k0, C1: k1,
				Pref:    p.owner(r[0]/p.Tile, pi),
				Entries: h * kw,
				Flops:   h * kw * kw,
			})
		}
		for _, c := range rows { // trailing columns cut like the rows
			w := int64(c[1] - c[0])
			dst = append(dst, Tile{
				Kind: TileLURowPanel, R0: k0, R1: k1, C0: c[0], C1: c[1],
				Pref:    p.owner(pi, c[0]/p.Tile),
				Entries: kw * w,
				Flops:   kw * kw * w,
			})
		}
	case PhaseScale: // symmetric: scaled panel columns per row block
		for _, r := range rows {
			h := int64(r[1] - r[0])
			dst = append(dst, Tile{
				Kind: TileCholScale, R0: r[0], R1: r[1], C0: k0, C1: k1,
				Pref:    p.owner(r[0]/p.Tile, pi),
				Entries: h * kw,
				Flops:   h * kw * kw / 2,
			})
		}
	case PhaseUpdate: // rank-k update per trailing tile
		for _, r := range rows {
			for _, c := range rows {
				if p.Kind == sparse.Symmetric {
					ent := triRectEntries(r[0], r[1], c[0], c[1])
					if ent == 0 {
						continue // entirely above the diagonal
					}
					dst = append(dst, Tile{
						Kind: TileCholUpdate, R0: r[0], R1: r[1], C0: c[0], C1: c[1],
						Pref:    p.owner(r[0]/p.Tile, c[0]/p.Tile),
						Entries: ent,
						Flops:   2 * ent * kw,
					})
					continue
				}
				ent := int64(r[1]-r[0]) * int64(c[1]-c[0])
				dst = append(dst, Tile{
					Kind: TileLUUpdate, R0: r[0], R1: r[1], C0: c[0], C1: c[1],
					Pref:    p.owner(r[0]/p.Tile, c[0]/p.Tile),
					Entries: ent,
					Flops:   2 * ent * kw,
				})
			}
		}
	}
	return dst
}

// triRectEntries counts the lower-triangle elements (i,j), j <= i, of the
// rectangle rows [r0,r1) x columns [c0,c1).
func triRectEntries(r0, r1, c0, c1 int) int64 {
	var n int64
	for i := r0; i < r1; i++ {
		hi := c1
		if hi > i+1 {
			hi = i + 1
		}
		if hi > c0 {
			n += int64(hi - c0)
		}
	}
	return n
}
