package nodepar_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/assembly"
	"repro/internal/dense"
	"repro/internal/front"
	"repro/internal/order"
	"repro/internal/parmf"
	"repro/internal/seqmf"
	"repro/internal/sparse"
	"repro/internal/workload"
)

// TestPropertyHybridSuite is the suite-wide invariant of the within-front
// parallel path, checked on every Table-1 problem:
//
//   - with front splitting forced on (the mapping's type-2 threshold), the
//     hybrid executor's factors are *bitwise identical* at 1, 2 and 8
//     workers for a fixed block size — the row partition is a pure
//     function of the front, and the blocked kernels compute the same
//     bits wherever a row block runs;
//   - they are bitwise identical to the sequential executor through the
//     same blocked kernels, and solve the system to residual tolerance
//     (the "matches seqmf" guarantee, which here is exact because the
//     blocked kernels replicate the element-wise operation order);
//   - the multi-worker runs actually exercised the master/slave path
//     (SplitFronts > 0) and executed slave row-block tasks.
func TestPropertyHybridSuite(t *testing.T) {
	suite := workload.Suite()
	if testing.Short() {
		suite = workload.SmallSuite()
	}
	for _, p := range suite {
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			a := p.Matrix()
			if !a.HasValues() {
				if err := sparse.FillDominant(a, rand.New(rand.NewSource(7))); err != nil {
					t.Fatal(err)
				}
			}
			tree, pa := assembly.Analyze(a, assembly.DefaultOptions(order.ND))
			assembly.SortChildrenLiu(tree)

			maxFront := 0
			for i := range tree.Nodes {
				if f := tree.Nodes[i].NFront(); f > maxFront {
					maxFront = f
				}
			}
			split := assembly.DefaultType2MinFront(maxFront)

			sOpt := seqmf.DefaultOptions()
			sOpt.BlockRows = dense.DefaultBlockRows
			sf, err := seqmf.Factorize(pa, tree, sOpt)
			if err != nil {
				t.Fatalf("seqmf: %v", err)
			}

			var last *parmf.Factors
			for _, workers := range []int{1, 2, 8} {
				cfg := parmf.DefaultConfig(workers)
				cfg.FrontSplit = split
				cfg.RootGrid = -1 // pure type-2: every split front on the 1D partition
				pf, err := parmf.Factorize(pa, tree, cfg)
				if err != nil {
					t.Fatalf("%d workers: %v", workers, err)
				}
				if workers > 1 {
					if pf.Stats.SplitFronts == 0 {
						t.Errorf("%d workers: no front split (threshold %d, max front %d)",
							workers, split, maxFront)
					}
					if pf.Stats.SlaveTasks == 0 {
						t.Errorf("%d workers: no slave row-block tasks ran", workers)
					}
				}
				compareBits(t, tree, sf.Front(), pf.Front())
				if last != nil {
					compareBits(t, tree, last.Front(), pf.Front())
				}
				last = pf
			}

			rng := rand.New(rand.NewSource(3))
			b := make([]float64, a.N)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			x, err := last.SolveOriginal(b)
			if err != nil {
				t.Fatal(err)
			}
			ax := a.MulVec(x)
			var rn, bn float64
			for i := range b {
				d := ax[i] - b[i]
				rn += d * d
				bn += b[i] * b[i]
			}
			if r := math.Sqrt(rn / bn); r > 1e-7 {
				t.Errorf("residual %g", r)
			}
		})
	}
}

// TestPropertyType3Suite is the suite-wide invariant of the 2D (type-3)
// root-front path, checked on every Table-1 problem:
//
//   - with the type-3 tile decomposition enabled, the factors are *bitwise
//     identical* to the sequential executor at 1, 2 and 8 workers and
//     across grid shapes (the auto grid and a forced flat 1xW grid): tile
//     boundaries are a pure function of the front and the panel width, and
//     the grid only stamps preferred owners;
//   - whenever a root front reaches the split threshold, the multi-worker
//     runs actually took the 2D path (Stats.Root2DFronts > 0).
func TestPropertyType3Suite(t *testing.T) {
	suite := workload.Suite()
	if testing.Short() {
		suite = workload.SmallSuite()
	}
	for _, p := range suite {
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			a := p.Matrix()
			if !a.HasValues() {
				if err := sparse.FillDominant(a, rand.New(rand.NewSource(7))); err != nil {
					t.Fatal(err)
				}
			}
			tree, pa := assembly.Analyze(a, assembly.DefaultOptions(order.ND))
			assembly.SortChildrenLiu(tree)

			maxFront := 0
			rootFront := 0
			for i := range tree.Nodes {
				f := tree.Nodes[i].NFront()
				if f > maxFront {
					maxFront = f
				}
				if tree.Nodes[i].Parent < 0 && f > rootFront {
					rootFront = f
				}
			}
			split := assembly.DefaultType2MinFront(maxFront)
			rootSplits := rootFront >= split && rootFront > dense.DefaultBlockRows

			sOpt := seqmf.DefaultOptions()
			sOpt.BlockRows = dense.DefaultBlockRows
			sf, err := seqmf.Factorize(pa, tree, sOpt)
			if err != nil {
				t.Fatalf("seqmf: %v", err)
			}

			for _, workers := range []int{1, 2, 8} {
				grids := []int{0} // auto
				if workers > 1 {
					grids = []int{0, 1} // auto and the flat 1 x W grid
				}
				for _, grid := range grids {
					cfg := parmf.DefaultConfig(workers)
					cfg.FrontSplit = split
					cfg.RootGrid = grid
					pf, err := parmf.Factorize(pa, tree, cfg)
					if err != nil {
						t.Fatalf("%d workers grid %d: %v", workers, grid, err)
					}
					if workers > 1 && rootSplits && pf.Stats.Root2DFronts == 0 {
						t.Errorf("%d workers grid %d: root front %d >= split %d but no 2D root",
							workers, grid, rootFront, split)
					}
					if workers > 1 && pf.Stats.Root2DFronts > 0 && pf.Stats.RootFrontNs == 0 {
						t.Errorf("%d workers grid %d: 2D root ran but RootFrontNs not recorded",
							workers, grid)
					}
					compareBits(t, tree, sf.Front(), pf.Front())
				}
			}
		})
	}
}

// compareBits asserts two factorizations are bitwise identical on every
// node's L (and U) block.
func compareBits(t *testing.T, tree *assembly.Tree, a, b *front.Factors) {
	t.Helper()
	for ni := range tree.Nodes {
		na, nb := a.Node(ni), b.Node(ni)
		for p, v := range na.L.A {
			if math.Float64bits(v) != math.Float64bits(nb.L.A[p]) {
				t.Fatalf("node %d: L entry %d differs bitwise: %g vs %g", ni, p, v, nb.L.A[p])
			}
		}
		if na.U != nil {
			for p, v := range na.U.A {
				if math.Float64bits(v) != math.Float64bits(nb.U.A[p]) {
					t.Fatalf("node %d: U entry %d differs bitwise: %g vs %g", ni, p, v, nb.U.A[p])
				}
			}
		}
	}
}
