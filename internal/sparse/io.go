package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadMatrixMarket parses a MatrixMarket "coordinate" stream (real/pattern,
// general/symmetric) into a CSC matrix. Rectangular inputs are embedded in a
// square matrix of size max(rows, cols). Indices in the file are 1-based.
func ReadMatrixMarket(r io.Reader) (*CSC, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty MatrixMarket stream")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("sparse: bad MatrixMarket header %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: only coordinate format supported, got %q", header[2])
	}
	field, sym := header[3], header[4]
	if field != "real" && field != "pattern" && field != "integer" {
		return nil, fmt.Errorf("sparse: unsupported field %q", field)
	}
	symmetric := false
	switch sym {
	case "general":
	case "symmetric":
		symmetric = true
	default:
		return nil, fmt.Errorf("sparse: unsupported symmetry %q", sym)
	}
	// Skip comments, read size line.
	var m, n, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &m, &n, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad size line %q: %v", line, err)
		}
		break
	}
	if m <= 0 || n <= 0 {
		return nil, fmt.Errorf("sparse: bad dimensions %dx%d", m, n)
	}
	sz := m
	if n > sz {
		sz = n
	}
	kind := Unsymmetric
	if symmetric {
		kind = Symmetric
	}
	b := NewBuilder(sz, kind)
	read := 0
	for read < nnz && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("sparse: bad entry line %q", line)
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad row index %q", fields[0])
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad col index %q", fields[1])
		}
		v := 1.0
		if field != "pattern" {
			if len(fields) < 3 {
				return nil, fmt.Errorf("sparse: missing value in %q", line)
			}
			v, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sparse: bad value %q", fields[2])
			}
		}
		i, j = i-1, j-1
		if i < 0 || i >= sz || j < 0 || j >= sz {
			return nil, fmt.Errorf("sparse: entry (%d,%d) out of range", i+1, j+1)
		}
		if symmetric && i < j {
			i, j = j, i
		}
		b.Add(i, j, v)
		read++
	}
	if read < nnz {
		return nil, fmt.Errorf("sparse: expected %d entries, got %d", nnz, read)
	}
	out := b.Build()
	if field == "pattern" {
		out.Val = nil
	}
	return out, nil
}

// WriteMatrixMarket writes the matrix in MatrixMarket coordinate format.
func WriteMatrixMarket(w io.Writer, a *CSC) error {
	bw := bufio.NewWriter(w)
	sym := "general"
	if a.Kind == Symmetric {
		sym = "symmetric"
	}
	field := "real"
	if a.Val == nil {
		field = "pattern"
	}
	fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate %s %s\n", field, sym)
	fmt.Fprintf(bw, "%d %d %d\n", a.N, a.N, a.NNZ())
	for j := 0; j < a.N; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			if a.Val == nil {
				fmt.Fprintf(bw, "%d %d\n", a.RowIdx[p]+1, j+1)
			} else {
				fmt.Fprintf(bw, "%d %d %.17g\n", a.RowIdx[p]+1, j+1, a.Val[p])
			}
		}
	}
	return bw.Flush()
}

// ReadRutherfordBoeing parses the assembled (RSA/RUA/PSA/PUA) subset of the
// Rutherford-Boeing / Harwell-Boeing format: a 4-5 line header followed by
// column pointers, row indices and optionally values, all 1-based.
func ReadRutherfordBoeing(r io.Reader) (*CSC, error) {
	br := bufio.NewReader(r)
	readLine := func() (string, error) {
		s, err := br.ReadString('\n')
		if err != nil && s == "" {
			return "", err
		}
		return strings.TrimRight(s, "\r\n"), nil
	}
	// Line 1: title/key. Line 2: counts. Line 3: type + dims. Line 4: formats.
	if _, err := readLine(); err != nil {
		return nil, fmt.Errorf("sparse: RB header: %v", err)
	}
	l2, err := readLine()
	if err != nil {
		return nil, fmt.Errorf("sparse: RB counts line: %v", err)
	}
	c2 := strings.Fields(l2)
	if len(c2) < 4 {
		return nil, fmt.Errorf("sparse: RB counts line too short: %q", l2)
	}
	rhscrd := 0
	if len(c2) >= 5 {
		rhscrd, _ = strconv.Atoi(c2[4])
	}
	l3, err := readLine()
	if err != nil {
		return nil, fmt.Errorf("sparse: RB type line: %v", err)
	}
	c3 := strings.Fields(l3)
	if len(c3) < 4 {
		return nil, fmt.Errorf("sparse: RB type line too short: %q", l3)
	}
	mtype := strings.ToLower(c3[0])
	if len(mtype) != 3 {
		return nil, fmt.Errorf("sparse: bad RB matrix type %q", mtype)
	}
	if mtype[2] != 'a' {
		return nil, fmt.Errorf("sparse: only assembled RB matrices supported, got %q", mtype)
	}
	nrow, err := strconv.Atoi(c3[1])
	if err != nil {
		return nil, fmt.Errorf("sparse: bad RB nrow: %v", err)
	}
	ncol, err := strconv.Atoi(c3[2])
	if err != nil {
		return nil, fmt.Errorf("sparse: bad RB ncol: %v", err)
	}
	nnz, err := strconv.Atoi(c3[3])
	if err != nil {
		return nil, fmt.Errorf("sparse: bad RB nnz: %v", err)
	}
	if _, err := readLine(); err != nil { // formats line
		return nil, fmt.Errorf("sparse: RB format line: %v", err)
	}
	if rhscrd > 0 {
		if _, err := readLine(); err != nil {
			return nil, fmt.Errorf("sparse: RB rhs line: %v", err)
		}
	}
	pattern := mtype[0] == 'p'
	symmetric := mtype[1] == 's'

	ints := make([]int, 0, ncol+1+nnz)
	need := ncol + 1 + nnz
	var vals []float64
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() && (len(ints) < need || (!pattern && len(vals) < nnz)) {
		for _, f := range strings.Fields(sc.Text()) {
			if len(ints) < need {
				v, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("sparse: bad RB integer %q", f)
				}
				ints = append(ints, v)
			} else if !pattern {
				// Fortran exponents may use D instead of E.
				f = strings.ReplaceAll(strings.ReplaceAll(f, "D", "E"), "d", "e")
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return nil, fmt.Errorf("sparse: bad RB value %q", f)
				}
				vals = append(vals, v)
			}
		}
	}
	if len(ints) < need {
		return nil, fmt.Errorf("sparse: RB truncated: got %d integers, want %d", len(ints), need)
	}
	sz := nrow
	if ncol > sz {
		sz = ncol
	}
	kind := Unsymmetric
	if symmetric {
		kind = Symmetric
	}
	b := NewBuilder(sz, kind)
	colptr := ints[:ncol+1]
	rows := ints[ncol+1:]
	for j := 0; j < ncol; j++ {
		for p := colptr[j] - 1; p < colptr[j+1]-1; p++ {
			i := rows[p] - 1
			if i < 0 || i >= sz {
				return nil, fmt.Errorf("sparse: RB row index %d out of range", i+1)
			}
			v := 1.0
			if !pattern {
				if p >= len(vals) {
					return nil, fmt.Errorf("sparse: RB missing values")
				}
				v = vals[p]
			}
			r, c := i, j
			if symmetric && r < c {
				r, c = c, r
			}
			b.Add(r, c, v)
		}
	}
	out := b.Build()
	if pattern {
		out.Val = nil
	}
	return out, nil
}
