package sparse

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestRandomSPDPatternShape: the generator produces a valid symmetric
// lower-triangle matrix with a full diagonal.
func TestRandomSPDPatternShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := RandomSPDPattern(50, 4, rng)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Kind != Symmetric {
		t.Fatal("want symmetric")
	}
	for j := 0; j < a.N; j++ {
		if a.At(j, j) == 0 {
			t.Fatalf("missing diagonal at %d", j)
		}
		for _, i := range a.Col(j) {
			if i < j {
				t.Fatalf("upper-triangle entry (%d,%d) in symmetric storage", i, j)
			}
		}
	}
}

// TestRandomRectPatternOnly: RandomRect is pattern-only (Val nil) and fits
// in the square embedding.
func TestRandomRectPatternOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := RandomRect(30, 60, 3, 2, rng)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Val != nil {
		t.Fatal("want pattern-only matrix")
	}
	if a.N != 60 {
		t.Fatalf("square embedding dimension %d, want 60", a.N)
	}
	for j := 0; j < a.N; j++ {
		for _, i := range a.Col(j) {
			if i >= 30 {
				t.Fatalf("row %d beyond the rectangular part", i)
			}
		}
	}
}

// TestHarmonicBalanceCoupling: the couple parameter controls how many
// inter-copy edges exist — couple=1 couples every node, larger values
// proportionally fewer; and the matrix is structurally unsymmetric.
func TestHarmonicBalanceCoupling(t *testing.T) {
	crossEdges := func(couple int) int {
		rng := rand.New(rand.NewSource(9))
		a := HarmonicBalance(6, 6, 3, 0, 0, couple, rng)
		n0 := 36
		count := 0
		for j := 0; j < a.N; j++ {
			for _, i := range a.Col(j) {
				if i/n0 != j/n0 {
					count++
				}
			}
		}
		return count
	}
	full, quarter := crossEdges(1), crossEdges(4)
	if full == 0 || quarter == 0 {
		t.Fatal("no inter-copy coupling at all")
	}
	if quarter*3 > full {
		t.Errorf("couple=4 should give ~1/4 the coupling: full=%d quarter=%d", full, quarter)
	}
	// couple < 1 is clamped to 1.
	if got := crossEdges(0); got != full {
		t.Errorf("couple=0 should behave like couple=1: %d vs %d", got, full)
	}
}

// TestSubmatrixProperty: every entry of the principal submatrix matches
// the original, and nothing outside k x k leaks in.
func TestSubmatrixProperty(t *testing.T) {
	prop := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := RandomSPDPattern(40, 3, rng)
		k := 1 + int(kRaw)%50 // may exceed N; Submatrix clamps
		s := Submatrix(a, k)
		if err := s.Validate(); err != nil {
			return false
		}
		want := k
		if want > a.N {
			want = a.N
		}
		if s.N != want {
			return false
		}
		for j := 0; j < s.N; j++ {
			for _, i := range s.Col(j) {
				if i >= s.N {
					return false
				}
				if a.At(i, j) == 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(10))}); err != nil {
		t.Fatal(err)
	}
}

// TestDiagonalAndColVal: accessors agree with At.
func TestDiagonalAndColVal(t *testing.T) {
	a := Grid2D(4, 4)
	d := a.Diagonal()
	for j := 0; j < a.N; j++ {
		if d[j] != 4 {
			t.Fatalf("diag[%d] = %v, want 4 (5-point Laplacian)", j, d[j])
		}
		rows, vals := a.Col(j), a.ColVal(j)
		if len(rows) != len(vals) {
			t.Fatal("Col/ColVal length mismatch")
		}
		for k, i := range rows {
			if a.At(i, j) != vals[k] {
				t.Fatalf("At(%d,%d) != ColVal", i, j)
			}
		}
	}
	// Pattern-only matrices have no values.
	p := a.Clone()
	p.Val = nil
	if p.ColVal(0) != nil {
		t.Fatal("pattern-only ColVal should be nil")
	}
}

// TestTypeStrings covers the Type formatting used in every table.
func TestTypeStrings(t *testing.T) {
	if Symmetric.String() != "SYM" || Unsymmetric.String() != "UNS" {
		t.Fatal("Type strings")
	}
	if s := Grid2D(2, 2).Kind.String(); !strings.Contains(s, "SYM") {
		t.Errorf("grid kind = %q", s)
	}
}

// TestBuilderNNZCountsPreCompression: Builder.NNZ counts recorded entries
// before duplicate summing.
func TestBuilderNNZCountsPreCompression(t *testing.T) {
	b := NewBuilder(3, Unsymmetric)
	b.Add(0, 0, 1)
	b.Add(0, 0, 2) // duplicate
	b.Add(2, 1, 3)
	if b.NNZ() != 3 {
		t.Fatalf("builder NNZ %d, want 3 (pre-compression)", b.NNZ())
	}
	a := b.Build()
	if a.NNZ() != 2 {
		t.Fatalf("matrix NNZ %d, want 2 (duplicates summed)", a.NNZ())
	}
	if a.At(0, 0) != 3 {
		t.Fatalf("duplicate sum = %v, want 3", a.At(0, 0))
	}
}

// TestValidateCatchesBrokenMatrices: failure injection on every Validate
// branch.
func TestValidateCatchesBrokenMatrices(t *testing.T) {
	mk := func() *CSC { return Grid2D(3, 3) }
	cases := []struct {
		name   string
		break_ func(a *CSC)
	}{
		{"negative n", func(a *CSC) { a.N = -1 }},
		{"colptr length", func(a *CSC) { a.ColPtr = a.ColPtr[:len(a.ColPtr)-1] }},
		{"colptr start", func(a *CSC) { a.ColPtr[0] = 1 }},
		{"colptr end", func(a *CSC) { a.ColPtr[a.N] = len(a.RowIdx) + 5 }},
		{"val length", func(a *CSC) { a.Val = a.Val[:len(a.Val)-1] }},
		{"row out of range", func(a *CSC) { a.RowIdx[0] = a.N + 3 }},
		{"decreasing colptr", func(a *CSC) { a.ColPtr[1] = a.ColPtr[2] + 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := mk()
			tc.break_(a)
			if err := a.Validate(); err == nil {
				t.Error("corruption not detected")
			}
		})
	}
	if err := mk().Validate(); err != nil {
		t.Fatalf("pristine matrix rejected: %v", err)
	}
}

func TestFillDominant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := Submatrix(AAT(RandomRect(40, 80, 3, 2, rng)), 40)
	if a.HasValues() {
		t.Fatal("AAT pattern unexpectedly has values")
	}
	if err := FillDominant(a, rng); err != nil {
		t.Fatal(err)
	}
	if !a.HasValues() {
		t.Fatal("FillDominant left no values")
	}
	// Strict diagonal dominance over the expanded symmetric matrix.
	full := ExpandSymmetric(a)
	for j := 0; j < full.N; j++ {
		var off, diag float64
		for p := full.ColPtr[j]; p < full.ColPtr[j+1]; p++ {
			v := full.Val[p]
			if full.RowIdx[p] == j {
				diag = v
			} else {
				off += math.Abs(v)
			}
		}
		if diag <= off {
			t.Fatalf("column %d not dominant: diag %g, off %g", j, diag, off)
		}
	}
	// Idempotent on valued matrices.
	before := append([]float64(nil), a.Val...)
	if err := FillDominant(a, rng); err != nil {
		t.Fatal(err)
	}
	for p := range before {
		if a.Val[p] != before[p] {
			t.Fatal("FillDominant overwrote existing values")
		}
	}
	// A missing diagonal is an error, not a panic, and leaves the
	// pattern-only state intact.
	bad := &CSC{N: 2, ColPtr: []int{0, 1, 1}, RowIdx: []int{1}, Kind: Unsymmetric}
	if err := FillDominant(bad, rng); err == nil {
		t.Fatal("missing diagonal accepted")
	}
	if bad.HasValues() {
		t.Fatal("failed FillDominant left partial values")
	}
}
