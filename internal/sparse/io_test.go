package sparse

import (
	"bytes"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	a := Grid2D(4, 4)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.N != a.N || b.NNZ() != a.NNZ() || b.Kind != a.Kind {
		t.Fatalf("round trip changed shape: %d/%d/%v vs %d/%d/%v",
			b.N, b.NNZ(), b.Kind, a.N, a.NNZ(), a.Kind)
	}
	for j := 0; j < a.N; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			if b.RowIdx[p] != a.RowIdx[p] || b.Val[p] != a.Val[p] {
				t.Fatalf("round trip changed column %d", j)
			}
		}
	}
}

func TestMatrixMarketPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
% a comment
3 3 4
1 1
2 1
3 2
3 3
`
	a, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.HasValues() {
		t.Error("pattern matrix should have no values")
	}
	if a.NNZ() != 4 {
		t.Errorf("NNZ = %d, want 4", a.NNZ())
	}
	if a.At(1, 0) != 1 {
		t.Error("missing (2,1) entry")
	}
}

func TestMatrixMarketSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
2 2 3
1 1 2.0
2 1 -1.0
2 2 2.0
`
	a, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind != Symmetric {
		t.Fatal("expected symmetric")
	}
	if a.At(0, 1) != -1 {
		t.Errorf("At(0,1) = %v, want -1 (mirrored)", a.At(0, 1))
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"garbage\n1 1 0\n",
		"%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n5 5 1.0\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n", // truncated
	}
	for i, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRutherfordBoeing(t *testing.T) {
	// Minimal assembled real unsymmetric 3x3 with 4 entries:
	// columns: c0={r0,r2}, c1={r1}, c2={r2}
	in := `Title                                                                  key
             3             1             1             1
rua                        3             3             4             0
(4I10)          (4I10)          (4E20.12)
         1         3         4         5
         1         3         2         3
  1.0 2.0
  3.0 4.0
`
	a, err := ReadRutherfordBoeing(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.N != 3 || a.NNZ() != 4 {
		t.Fatalf("shape %d/%d, want 3/4", a.N, a.NNZ())
	}
	if a.At(0, 0) != 1 || a.At(2, 0) != 2 || a.At(1, 1) != 3 || a.At(2, 2) != 4 {
		t.Errorf("values wrong: %v %v %v %v", a.At(0, 0), a.At(2, 0), a.At(1, 1), a.At(2, 2))
	}
}

func TestRutherfordBoeingSymmetricPattern(t *testing.T) {
	in := `T                                                                      k
             2             1             1             0
psa                        2             2             3             0
(4I10)          (4I10)
1 3 4
1 2 2
`
	a, err := ReadRutherfordBoeing(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind != Symmetric || a.HasValues() {
		t.Fatalf("want symmetric pattern, got %v values=%v", a.Kind, a.HasValues())
	}
	if a.At(1, 0) == 0 {
		t.Error("missing (1,0)")
	}
}

func TestRutherfordBoeingErrors(t *testing.T) {
	cases := []string{
		"",
		"t\n1 1 1 1\nxxe 2 2 2 0\nfmt\n1 2\n1\n", // elemental type 'e'
		"t\n1 1 1 1\nrua 2 2 2 0\nfmt\n1 2 3\n1\n", // truncated ints
	}
	for i, in := range cases {
		if _, err := ReadRutherfordBoeing(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
