package sparse

// Pattern operations used by the symbolic analysis. These work on the
// stored pattern; values, when present, are carried along where meaningful.

// Transpose returns Aᵀ. Symmetric matrices are returned unchanged (a clone).
func Transpose(a *CSC) *CSC {
	if a.Kind == Symmetric {
		return a.Clone()
	}
	t := &CSC{N: a.N, ColPtr: make([]int, a.N+1), RowIdx: make([]int, a.NNZ()), Kind: Unsymmetric}
	if a.Val != nil {
		t.Val = make([]float64, a.NNZ())
	}
	for p := 0; p < a.NNZ(); p++ {
		t.ColPtr[a.RowIdx[p]+1]++
	}
	for j := 0; j < a.N; j++ {
		t.ColPtr[j+1] += t.ColPtr[j]
	}
	next := append([]int(nil), t.ColPtr[:a.N]...)
	for j := 0; j < a.N; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			q := next[i]
			next[i]++
			t.RowIdx[q] = j
			if a.Val != nil {
				t.Val[q] = a.Val[p]
			}
		}
	}
	return t
}

// SymmetrizePattern returns the pattern of A+Aᵀ as a Symmetric (lower
// triangle) pattern-only matrix. This is the graph on which orderings and
// the elimination tree are computed for unsymmetric matrices, exactly as
// MUMPS does during analysis.
func SymmetrizePattern(a *CSC) *CSC {
	b := NewBuilder(a.N, Symmetric)
	for j := 0; j < a.N; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			if a.Kind == Symmetric {
				b.Add(i, j, 1)
			} else if i >= j {
				b.Add(i, j, 1)
			} else {
				b.Add(j, i, 1)
			}
		}
	}
	// Ensure a full diagonal so the elimination tree is well defined.
	for j := 0; j < a.N; j++ {
		b.Add(j, j, 1)
	}
	out := b.Build()
	out.Val = nil
	return out
}

// ExpandSymmetric returns the full (both triangles) pattern of a symmetric
// matrix as an Unsymmetric CSC. Values are mirrored. Unsymmetric input is
// cloned unchanged.
func ExpandSymmetric(a *CSC) *CSC {
	if a.Kind != Symmetric {
		return a.Clone()
	}
	b := NewBuilder(a.N, Unsymmetric)
	for j := 0; j < a.N; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			v := 1.0
			if a.Val != nil {
				v = a.Val[p]
			}
			b.Add(i, j, v)
			if i != j {
				b.Add(j, i, v)
			}
		}
	}
	out := b.Build()
	if a.Val == nil {
		out.Val = nil
	}
	return out
}

// AAT returns the pattern of A·Aᵀ as a Symmetric pattern-only matrix
// (lower triangle). Used to build LP-style normal-equation matrices like
// GUPTA3 in Table 1 of the paper.
func AAT(a *CSC) *CSC {
	full := ExpandSymmetric(a)
	// Row-wise representation of A is the column structure of Aᵀ.
	at := Transpose(full)
	b := NewBuilder(a.N, Symmetric)
	mark := make([]int, a.N)
	for i := range mark {
		mark[i] = -1
	}
	for i := 0; i < a.N; i++ {
		// Row i of A = column i of Aᵀ. (A·Aᵀ)(i,k) != 0 iff rows i and k of A
		// share a column j.
		for p := at.ColPtr[i]; p < at.ColPtr[i+1]; p++ {
			j := at.RowIdx[p]
			for q := full.ColPtr[j]; q < full.ColPtr[j+1]; q++ {
				k := full.RowIdx[q]
				if k >= i && mark[k] != i {
					mark[k] = i
					b.Add(k, i, 1)
				}
			}
		}
		if mark[i] != i {
			b.Add(i, i, 1)
		}
	}
	out := b.Build()
	out.Val = nil
	return out
}

// Submatrix returns the leading k x k principal submatrix (entries with
// both indices below k).
func Submatrix(a *CSC, k int) *CSC {
	if k > a.N {
		k = a.N
	}
	b := NewBuilder(k, a.Kind)
	for j := 0; j < k; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			if i := a.RowIdx[p]; i < k {
				v := 1.0
				if a.Val != nil {
					v = a.Val[p]
				}
				b.Add(i, j, v)
			}
		}
	}
	out := b.Build()
	if a.Val == nil {
		out.Val = nil
	}
	return out
}

// StructuralSymmetry returns the fraction of off-diagonal entries (i,j) of
// an unsymmetric matrix whose transpose entry (j,i) is also present.
// Symmetric matrices return 1.
func StructuralSymmetry(a *CSC) float64 {
	if a.Kind == Symmetric {
		return 1
	}
	t := Transpose(a)
	matched, total := 0, 0
	for j := 0; j < a.N; j++ {
		p, pe := a.ColPtr[j], a.ColPtr[j+1]
		q, qe := t.ColPtr[j], t.ColPtr[j+1]
		for p < pe && q < qe {
			ri, rj := a.RowIdx[p], t.RowIdx[q]
			switch {
			case ri == rj:
				if ri != j {
					matched++
					total++
				}
				p++
				q++
			case ri < rj:
				if ri != j {
					total++
				}
				p++
			default:
				q++
			}
		}
		for ; p < pe; p++ {
			if a.RowIdx[p] != j {
				total++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(matched) / float64(total)
}
