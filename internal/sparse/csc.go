// Package sparse provides the sparse-matrix substrate for the multifrontal
// solver: compressed-column (CSC) and coordinate (COO) storage, pattern
// operations used by the symbolic analysis (transpose, symmetrization,
// A+Aᵀ, A·Aᵀ), file readers for the MatrixMarket and Rutherford-Boeing
// formats, and synthetic problem generators.
//
// Conventions: all indices are 0-based. A matrix is Symmetric when only its
// lower triangle (including the diagonal) is stored; operations that need
// the full pattern expand it explicitly.
package sparse

import (
	"errors"
	"fmt"
	"sort"
)

// Type describes the structural kind of a matrix, mirroring the SYM/UNS
// column of Table 1 in the paper.
type Type int

const (
	// Unsymmetric matrices store all entries.
	Unsymmetric Type = iota
	// Symmetric matrices store the lower triangle only.
	Symmetric
)

func (t Type) String() string {
	switch t {
	case Symmetric:
		return "SYM"
	default:
		return "UNS"
	}
}

// CSC is a sparse matrix in compressed sparse column format.
// Column j occupies ColPtr[j]..ColPtr[j+1] in RowIdx/Val.
// Row indices within a column are sorted ascending and unique.
type CSC struct {
	N      int // number of rows and columns (square matrices only)
	ColPtr []int
	RowIdx []int
	Val    []float64 // may be nil for pattern-only matrices
	Kind   Type
}

// NNZ returns the number of stored entries.
func (a *CSC) NNZ() int { return len(a.RowIdx) }

// HasValues reports whether numerical values are stored.
func (a *CSC) HasValues() bool { return a.Val != nil }

// Clone returns a deep copy of the matrix.
func (a *CSC) Clone() *CSC {
	b := &CSC{
		N:      a.N,
		ColPtr: append([]int(nil), a.ColPtr...),
		RowIdx: append([]int(nil), a.RowIdx...),
		Kind:   a.Kind,
	}
	if a.Val != nil {
		b.Val = append([]float64(nil), a.Val...)
	}
	return b
}

// Col returns the row indices of column j (aliased, do not modify).
func (a *CSC) Col(j int) []int {
	return a.RowIdx[a.ColPtr[j]:a.ColPtr[j+1]]
}

// ColVal returns the values of column j (aliased, do not modify);
// nil for pattern-only matrices.
func (a *CSC) ColVal(j int) []float64 {
	if a.Val == nil {
		return nil
	}
	return a.Val[a.ColPtr[j]:a.ColPtr[j+1]]
}

// Validate checks the structural invariants of the matrix and returns a
// descriptive error on the first violation.
func (a *CSC) Validate() error {
	if a.N < 0 {
		return fmt.Errorf("sparse: negative dimension %d", a.N)
	}
	if len(a.ColPtr) != a.N+1 {
		return fmt.Errorf("sparse: ColPtr length %d, want %d", len(a.ColPtr), a.N+1)
	}
	if a.ColPtr[0] != 0 {
		return errors.New("sparse: ColPtr[0] != 0")
	}
	if a.ColPtr[a.N] != len(a.RowIdx) {
		return fmt.Errorf("sparse: ColPtr[N]=%d, len(RowIdx)=%d", a.ColPtr[a.N], len(a.RowIdx))
	}
	if a.Val != nil && len(a.Val) != len(a.RowIdx) {
		return fmt.Errorf("sparse: len(Val)=%d, len(RowIdx)=%d", len(a.Val), len(a.RowIdx))
	}
	for j := 0; j < a.N; j++ {
		if a.ColPtr[j] > a.ColPtr[j+1] {
			return fmt.Errorf("sparse: column %d has negative length", j)
		}
		prev := -1
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			r := a.RowIdx[p]
			if r < 0 || r >= a.N {
				return fmt.Errorf("sparse: row index %d out of range in column %d", r, j)
			}
			if r <= prev {
				return fmt.Errorf("sparse: unsorted or duplicate row index %d in column %d", r, j)
			}
			if a.Kind == Symmetric && r < j {
				return fmt.Errorf("sparse: symmetric matrix has upper entry (%d,%d)", r, j)
			}
			prev = r
		}
	}
	return nil
}

// At returns the value at (i,j), or 0 if the entry is not stored.
// For symmetric matrices (i,j) with i<j is looked up as (j,i).
func (a *CSC) At(i, j int) float64 {
	if a.Kind == Symmetric && i < j {
		i, j = j, i
	}
	lo, hi := a.ColPtr[j], a.ColPtr[j+1]
	k := sort.SearchInts(a.RowIdx[lo:hi], i)
	if k < hi-lo && a.RowIdx[lo+k] == i {
		if a.Val == nil {
			return 1
		}
		return a.Val[lo+k]
	}
	return 0
}

// MulVec computes y = A*x, honoring symmetric storage.
func (a *CSC) MulVec(x []float64) []float64 {
	if len(x) != a.N {
		panic(fmt.Sprintf("sparse: MulVec dimension mismatch %d vs %d", len(x), a.N))
	}
	y := make([]float64, a.N)
	for j := 0; j < a.N; j++ {
		xj := x[j]
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			v := 1.0
			if a.Val != nil {
				v = a.Val[p]
			}
			y[i] += v * xj
			if a.Kind == Symmetric && i != j {
				y[j] += v * x[i]
			}
		}
	}
	return y
}

// Permute returns P*A*Pᵀ where perm[k] = original index of the k-th
// row/column of the permuted matrix (i.e. perm maps new→old).
// For symmetric matrices the result keeps lower-triangular storage.
func (a *CSC) Permute(perm []int) *CSC {
	if len(perm) != a.N {
		panic("sparse: Permute length mismatch")
	}
	inv := make([]int, a.N) // old -> new
	for k, o := range perm {
		inv[o] = k
	}
	b := NewBuilder(a.N, a.Kind)
	for j := 0; j < a.N; j++ {
		nj := inv[j]
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			ni := inv[a.RowIdx[p]]
			v := 1.0
			if a.Val != nil {
				v = a.Val[p]
			}
			r, c := ni, nj
			if a.Kind == Symmetric && r < c {
				r, c = c, r
			}
			b.Add(r, c, v)
		}
	}
	out := b.Build()
	if a.Val == nil {
		out.Val = nil
	}
	return out
}

// Diagonal returns the diagonal entries as a dense vector.
func (a *CSC) Diagonal() []float64 {
	d := make([]float64, a.N)
	for j := 0; j < a.N; j++ {
		d[j] = a.At(j, j)
	}
	return d
}
