package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderSumsDuplicates(t *testing.T) {
	b := NewBuilder(3, Unsymmetric)
	b.Add(0, 0, 1)
	b.Add(0, 0, 2)
	b.Add(2, 1, 5)
	a := b.Build()
	if a.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", a.NNZ())
	}
	if got := a.At(0, 0); got != 3 {
		t.Errorf("At(0,0) = %v, want 3", got)
	}
	if got := a.At(2, 1); got != 5 {
		t.Errorf("At(2,1) = %v, want 5", got)
	}
	if got := a.At(1, 1); got != 0 {
		t.Errorf("At(1,1) = %v, want 0", got)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderPanics(t *testing.T) {
	b := NewBuilder(2, Symmetric)
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { b.Add(0, 1, 1) })  // upper entry
	mustPanic(func() { b.Add(-1, 0, 1) }) // out of range
	mustPanic(func() { b.Add(0, 2, 1) })  // out of range
}

func TestAddSym(t *testing.T) {
	bs := NewBuilder(3, Symmetric)
	bs.AddSym(0, 2, 7) // mirrored to (2,0)
	as := bs.Build()
	if got := as.At(0, 2); got != 7 {
		t.Errorf("sym At(0,2) = %v, want 7", got)
	}
	bu := NewBuilder(3, Unsymmetric)
	bu.AddSym(0, 2, 7)
	au := bu.Build()
	if au.At(0, 2) != 7 || au.At(2, 0) != 7 {
		t.Errorf("unsym AddSym: got %v,%v want 7,7", au.At(0, 2), au.At(2, 0))
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	a := Grid2D(3, 3)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := a.Clone()
	bad.RowIdx[0] = -1
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted negative row index")
	}
	bad2 := a.Clone()
	bad2.ColPtr[1], bad2.ColPtr[2] = bad2.ColPtr[2], bad2.ColPtr[1]
	if err := bad2.Validate(); err == nil {
		t.Error("Validate accepted decreasing ColPtr")
	}
}

func TestSymmetricMulVec(t *testing.T) {
	a := Grid2D(4, 4)
	full := ExpandSymmetric(a)
	x := make([]float64, a.N)
	rng := rand.New(rand.NewSource(1))
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y1 := a.MulVec(x)
	y2 := full.MulVec(x)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-12 {
			t.Fatalf("MulVec mismatch at %d: %v vs %v", i, y1[i], y2[i])
		}
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	a := Grid3D(3, 3, 3)
	n := a.N
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(n)
	p := a.Permute(perm)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Check that P*A*P' at (inv(i),inv(j)) equals A at (i,j).
	inv := make([]int, n)
	for k, o := range perm {
		inv[o] = k
	}
	for trial := 0; trial < 200; trial++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if got, want := p.At(inv[i], inv[j]), a.At(i, j); got != want {
			t.Fatalf("Permute mismatch: P(%d,%d)=%v, A(%d,%d)=%v", inv[i], inv[j], got, i, j, want)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := CircuitUnsym(100, 150, 2, rng)
	tt := Transpose(Transpose(a))
	if tt.NNZ() != a.NNZ() {
		t.Fatalf("NNZ changed: %d vs %d", tt.NNZ(), a.NNZ())
	}
	for j := 0; j < a.N; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			if tt.RowIdx[p] != a.RowIdx[p] || tt.Val[p] != a.Val[p] {
				t.Fatalf("transpose(transpose) differs at col %d", j)
			}
		}
	}
}

func TestTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		a := CircuitUnsym(n, n*2, 1, rng)
		at := Transpose(a)
		for trial := 0; trial < 50; trial++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if a.At(i, j) != at.At(j, i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSymmetrizePattern(t *testing.T) {
	b := NewBuilder(3, Unsymmetric)
	b.Add(0, 1, 1) // only upper entry
	b.Add(2, 0, 1) // only lower entry
	a := b.Build()
	s := SymmetrizePattern(a)
	if s.Kind != Symmetric {
		t.Fatal("not symmetric")
	}
	// Pattern must contain (1,0), (2,0) and full diagonal.
	want := [][2]int{{1, 0}, {2, 0}, {0, 0}, {1, 1}, {2, 2}}
	for _, w := range want {
		if s.At(w[0], w[1]) == 0 {
			t.Errorf("missing entry (%d,%d)", w[0], w[1])
		}
	}
	if s.NNZ() != 5 {
		t.Errorf("NNZ = %d, want 5", s.NNZ())
	}
}

func TestExpandSymmetric(t *testing.T) {
	a := Grid2D(3, 3)
	f := ExpandSymmetric(a)
	if f.Kind != Unsymmetric {
		t.Fatal("expected unsymmetric")
	}
	wantNNZ := 2*a.NNZ() - a.N // diagonal not duplicated
	if f.NNZ() != wantNNZ {
		t.Fatalf("NNZ = %d, want %d", f.NNZ(), wantNNZ)
	}
	for i := 0; i < a.N; i++ {
		for j := 0; j < a.N; j++ {
			if f.At(i, j) != a.At(i, j) {
				t.Fatalf("value mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestAATSmall(t *testing.T) {
	// A = [1 1 0; 0 1 0; 0 0 1] -> A*A' has (0,1) coupling via column 1.
	b := NewBuilder(3, Unsymmetric)
	b.Add(0, 0, 1)
	b.Add(0, 1, 1)
	b.Add(1, 1, 1)
	b.Add(2, 2, 1)
	a := b.Build()
	s := AAT(a)
	if s.At(1, 0) == 0 {
		t.Error("AAT missing (1,0) coupling")
	}
	if s.At(2, 0) != 0 {
		t.Error("AAT has spurious (2,0)")
	}
	for i := 0; i < 3; i++ {
		if s.At(i, i) == 0 {
			t.Errorf("AAT missing diagonal %d", i)
		}
	}
}

func TestStructuralSymmetry(t *testing.T) {
	if got := StructuralSymmetry(Grid2D(3, 3)); got != 1 {
		t.Errorf("symmetric matrix symmetry = %v, want 1", got)
	}
	b := NewBuilder(3, Unsymmetric)
	b.Add(0, 1, 1)
	b.Add(1, 0, 1)
	b.Add(2, 0, 1) // unmatched
	a := b.Build()
	got := StructuralSymmetry(a)
	if math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("symmetry = %v, want 2/3", got)
	}
}

func TestGeneratorSizes(t *testing.T) {
	cases := []struct {
		name string
		a    *CSC
		n    int
	}{
		{"Grid2D", Grid2D(5, 7), 35},
		{"Grid3D", Grid3D(3, 4, 5), 60},
		{"Band", Band(50, 3), 50},
		{"Shell", Shell(4, 5, 3), 60},
	}
	for _, c := range cases {
		if c.a.N != c.n {
			t.Errorf("%s: N = %d, want %d", c.name, c.a.N, c.n)
		}
		if err := c.a.Validate(); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
	rng := rand.New(rand.NewSource(5))
	u := Grid3DUnsym(3, 3, 3, rng)
	if err := u.Validate(); err != nil {
		t.Error(err)
	}
	if u.Kind != Unsymmetric {
		t.Error("Grid3DUnsym should be unsymmetric")
	}
	if s := StructuralSymmetry(u); s != 1 {
		t.Errorf("Grid3DUnsym structural symmetry = %v, want 1", s)
	}
	c := CircuitUnsym(200, 100, 3, rng)
	if s := StructuralSymmetry(c); s >= 1 {
		t.Errorf("CircuitUnsym should be structurally unsymmetric, got %v", s)
	}
}

func TestGrid2DIsLaplacian(t *testing.T) {
	a := Grid2D(3, 3)
	// Interior row sums of the full matrix are 0 for boundary-free rows;
	// here with Dirichlet-style stencil all diagonals are 4.
	for j := 0; j < a.N; j++ {
		if a.At(j, j) != 4 {
			t.Fatalf("diagonal %d = %v, want 4", j, a.At(j, j))
		}
	}
	if a.At(1, 0) != -1 {
		t.Errorf("neighbor coupling = %v, want -1", a.At(1, 0))
	}
}
