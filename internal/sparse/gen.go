package sparse

import (
	"fmt"
	"math/rand"
)

// Synthetic problem generators. These stand in for the Rutherford-Boeing /
// University of Florida / PARASOL matrices of the paper's Table 1 (see
// internal/workload for the named suite): the scheduling phenomena studied
// in the paper depend on the *structural family* of the matrix (grid-like
// FEM problems, normal equations with dense rows, circuit matrices), which
// these generators reproduce at laptop scale.

// Grid2D returns the 5-point Laplacian on an nx x ny grid, symmetric
// positive definite, stored as lower triangle with values.
func Grid2D(nx, ny int) *CSC {
	n := nx * ny
	b := NewBuilder(n, Symmetric)
	id := func(i, j int) int { return i*ny + j }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			v := id(i, j)
			b.Add(v, v, 4)
			if i+1 < nx {
				b.Add(id(i+1, j), v, -1)
			}
			if j+1 < ny {
				b.Add(id(i, j+1), v, -1)
			}
		}
	}
	return b.Build()
}

// Grid3D returns the 7-point Laplacian on an nx x ny x nz grid, symmetric
// positive definite, lower triangle with values.
func Grid3D(nx, ny, nz int) *CSC {
	n := nx * ny * nz
	b := NewBuilder(n, Symmetric)
	id := func(i, j, k int) int { return (i*ny+j)*nz + k }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				v := id(i, j, k)
				b.Add(v, v, 6)
				if i+1 < nx {
					b.Add(id(i+1, j, k), v, -1)
				}
				if j+1 < ny {
					b.Add(id(i, j+1, k), v, -1)
				}
				if k+1 < nz {
					b.Add(id(i, j, k+1), v, -1)
				}
			}
		}
	}
	return b.Build()
}

// Grid3DUnsym returns a structurally symmetric but numerically unsymmetric
// 7-point convection-diffusion operator on a 3D grid (ULTRASOUND3/XENON2
// style). Diagonally dominant so LU without pivoting is stable.
func Grid3DUnsym(nx, ny, nz int, rng *rand.Rand) *CSC {
	n := nx * ny * nz
	b := NewBuilder(n, Unsymmetric)
	id := func(i, j, k int) int { return (i*ny+j)*nz + k }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				v := id(i, j, k)
				b.Add(v, v, 8+rng.Float64())
				add := func(u int) {
					b.Add(u, v, -1+0.5*rng.Float64())
					b.Add(v, u, -1+0.5*rng.Float64())
				}
				if i+1 < nx {
					add(id(i+1, j, k))
				}
				if j+1 < ny {
					add(id(i, j+1, k))
				}
				if k+1 < nz {
					add(id(i, j, k+1))
				}
			}
		}
	}
	return b.Build()
}

// Band returns a symmetric banded matrix with the given half-bandwidth,
// diagonally dominant.
func Band(n, hbw int) *CSC {
	b := NewBuilder(n, Symmetric)
	for j := 0; j < n; j++ {
		b.Add(j, j, float64(2*hbw+2))
		for d := 1; d <= hbw && j+d < n; d++ {
			b.Add(j+d, j, -1)
		}
	}
	return b.Build()
}

// RandomSPDPattern returns a random symmetric matrix with ~deg off-diagonal
// entries per column plus a dominant diagonal; reproducible via rng.
func RandomSPDPattern(n, deg int, rng *rand.Rand) *CSC {
	b := NewBuilder(n, Symmetric)
	for j := 0; j < n; j++ {
		b.Add(j, j, float64(2*deg+4))
		for k := 0; k < deg; k++ {
			i := rng.Intn(n)
			if i == j {
				continue
			}
			if i < j {
				b.Add(j, i, -1)
			} else {
				b.Add(i, j, -1)
			}
		}
	}
	return b.Build()
}

// RandomRect returns an m x n pattern-only rectangular matrix embedded in a
// max(m,n) square CSC (rows beyond m empty) with ~deg entries per column and
// a few dense rows (LP constraint-matrix style, for GUPTA3-like AAᵀ).
func RandomRect(m, n, deg, denseRows int, rng *rand.Rand) *CSC {
	sz := m
	if n > sz {
		sz = n
	}
	b := NewBuilder(sz, Unsymmetric)
	for j := 0; j < n; j++ {
		for k := 0; k < deg; k++ {
			b.Add(rng.Intn(m), j, 1)
		}
	}
	for r := 0; r < denseRows; r++ {
		row := rng.Intn(m)
		for j := 0; j < n; j += 1 + rng.Intn(4) {
			b.Add(row, j, 1)
		}
	}
	out := b.Build()
	out.Val = nil
	return out
}

// CircuitUnsym returns an unsymmetric circuit-simulation-style matrix
// (PRE2/TWOTONE family): a sparse backbone chain plus random long-range
// couplings, some one-directional, and a few high-degree "net" nodes.
func CircuitUnsym(n, couplings, hubs int, rng *rand.Rand) *CSC {
	b := NewBuilder(n, Unsymmetric)
	for j := 0; j < n; j++ {
		b.Add(j, j, 10+rng.Float64())
		if j+1 < n {
			b.Add(j+1, j, -1)
			b.Add(j, j+1, -0.5)
		}
	}
	for c := 0; c < couplings; c++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		b.Add(i, j, 0.1*rng.NormFloat64())
		if rng.Float64() < 0.6 { // structurally unsymmetric part
			b.Add(j, i, 0.1*rng.NormFloat64())
		}
	}
	for h := 0; h < hubs; h++ {
		hub := rng.Intn(n)
		fan := 20 + rng.Intn(60)
		for k := 0; k < fan; k++ {
			j := rng.Intn(n)
			if j != hub {
				b.Add(hub, j, 0.05)
				b.Add(j, hub, 0.05)
			}
		}
	}
	return b.Build()
}

// HarmonicBalance returns an unsymmetric harmonic-balance circuit matrix
// (the PRE2/TWOTONE family): K frequency-domain copies of a structured
// base circuit (an nx x ny grid with a few random chords and hub nets),
// with couplings between adjacent copies on every couple-th node (the
// nonlinear devices; the linear nodes decouple across frequencies).
// Sparse inter-copy coupling keeps separators moderate, so the assembly
// tree has many mid-size fronts below a moderate root — the regime the
// paper's type-2 scheduling acts on — instead of one monster separator.
func HarmonicBalance(nx, ny, K, chords, hubs, couple int, rng *rand.Rand) *CSC {
	n0 := nx * ny
	n := n0 * K
	b := NewBuilder(n, Unsymmetric)
	id := func(k, i, j int) int { return k*n0 + i*ny + j }
	addEdge := func(u, v int) {
		b.Add(u, v, -1+0.3*rng.Float64())
		if rng.Float64() < 0.7 { // structurally unsymmetric part
			b.Add(v, u, -1+0.3*rng.Float64())
		}
	}
	for k := 0; k < K; k++ {
		for i := 0; i < nx; i++ {
			for j := 0; j < ny; j++ {
				v := id(k, i, j)
				b.Add(v, v, 12+rng.Float64())
				if i+1 < nx {
					addEdge(v, id(k, i+1, j))
				}
				if j+1 < ny {
					addEdge(v, id(k, i, j+1))
				}
			}
		}
		// A few long chords within the copy.
		for c := 0; c < chords; c++ {
			u, v := k*n0+rng.Intn(n0), k*n0+rng.Intn(n0)
			if u != v {
				addEdge(u, v)
			}
		}
		// Hub nets (power rails): moderate fan-out.
		for h := 0; h < hubs; h++ {
			hub := k*n0 + rng.Intn(n0)
			fan := 8 + rng.Intn(16)
			for f := 0; f < fan; f++ {
				v := k*n0 + rng.Intn(n0)
				if v != hub {
					addEdge(hub, v)
				}
			}
		}
		// Frequency coupling to the next copy on the device nodes.
		if couple < 1 {
			couple = 1
		}
		if k+1 < K {
			for i := 0; i < n0; i += couple {
				addEdge(k*n0+i, (k+1)*n0+i)
			}
		}
	}
	return b.Build()
}

// Shell returns a layered 2D shell / plate model (MSDOOR-style): an
// nx x ny grid with `layers` stacked copies coupled vertically and wider
// in-plane stencils than a plain Laplacian.
func Shell(nx, ny, layers int) *CSC {
	n := nx * ny * layers
	b := NewBuilder(n, Symmetric)
	id := func(l, i, j int) int { return (l*nx+i)*ny + j }
	for l := 0; l < layers; l++ {
		for i := 0; i < nx; i++ {
			for j := 0; j < ny; j++ {
				v := id(l, i, j)
				b.Add(v, v, 16)
				// 9-point in-plane stencil
				for di := 0; di <= 1; di++ {
					for dj := -1; dj <= 1; dj++ {
						if di == 0 && dj <= 0 {
							continue
						}
						ii, jj := i+di, j+dj
						if ii < 0 || ii >= nx || jj < 0 || jj >= ny {
							continue
						}
						u := id(l, ii, jj)
						if u > v {
							b.Add(u, v, -1)
						} else {
							b.Add(v, u, -1)
						}
					}
				}
				if l+1 < layers {
					b.Add(id(l+1, i, j), v, -2)
				}
			}
		}
	}
	return b.Build()
}

// FillDominant assigns values in place to a pattern-only matrix so that it
// is strictly diagonally dominant (hence SPD for symmetric kinds):
// off-diagonal entries get random values in (-1.5, -0.5] and each diagonal
// entry becomes the absolute row sum plus one. Used to give numeric values
// to symbolic patterns such as AAT (the GUPTA3 analogue) so the numeric
// executors can factor them. Every diagonal entry must be present in the
// pattern or an error is returned (with the values left unset). A matrix
// that already has values is returned unchanged.
func FillDominant(a *CSC, rng *rand.Rand) error {
	if a.HasValues() {
		return nil
	}
	a.Val = make([]float64, len(a.RowIdx))
	dom := make([]float64, a.N)
	diag := make([]int, a.N)
	for i := range diag {
		diag[i] = -1
	}
	for j := 0; j < a.N; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			if i == j {
				diag[j] = p
				continue
			}
			v := -0.5 - rng.Float64()
			a.Val[p] = v
			dom[i] -= v
			if a.Kind == Symmetric {
				// Lower-triangle storage: (i,j) also stands for (j,i).
				dom[j] -= v
			}
		}
	}
	for j := 0; j < a.N; j++ {
		if diag[j] < 0 {
			a.Val = nil
			return fmt.Errorf("sparse: FillDominant needs diagonal entry %d", j)
		}
	}
	for j := 0; j < a.N; j++ {
		a.Val[diag[j]] = dom[j] + 1
	}
	return nil
}
