package sparse

import "sort"

// Builder accumulates entries in coordinate form and compresses them into a
// CSC matrix, summing duplicates. It is the standard way to construct
// matrices in this package.
type Builder struct {
	n    int
	kind Type
	rows []int
	cols []int
	vals []float64
}

// NewBuilder returns a builder for an n x n matrix of the given kind.
// For Symmetric matrices callers must add lower-triangular entries only
// (Add panics otherwise).
func NewBuilder(n int, kind Type) *Builder {
	return &Builder{n: n, kind: kind}
}

// Add records entry (i,j) = v. Duplicate entries are summed at Build time.
func (b *Builder) Add(i, j int, v float64) {
	if i < 0 || i >= b.n || j < 0 || j >= b.n {
		panic("sparse: Builder.Add index out of range")
	}
	if b.kind == Symmetric && i < j {
		panic("sparse: Builder.Add upper entry into symmetric matrix")
	}
	b.rows = append(b.rows, i)
	b.cols = append(b.cols, j)
	b.vals = append(b.vals, v)
}

// AddSym records (i,j) in whichever triangle the matrix stores: for
// symmetric matrices the entry is mirrored to the lower triangle; for
// unsymmetric matrices both (i,j) and (j,i) are added (with the same value)
// unless i==j.
func (b *Builder) AddSym(i, j int, v float64) {
	if b.kind == Symmetric {
		if i < j {
			i, j = j, i
		}
		b.Add(i, j, v)
		return
	}
	b.Add(i, j, v)
	if i != j {
		b.Add(j, i, v)
	}
}

// NNZ returns the number of recorded (pre-compression) entries.
func (b *Builder) NNZ() int { return len(b.rows) }

type cooSorter struct{ b *Builder }

func (s cooSorter) Len() int { return len(s.b.rows) }
func (s cooSorter) Less(i, j int) bool {
	if s.b.cols[i] != s.b.cols[j] {
		return s.b.cols[i] < s.b.cols[j]
	}
	return s.b.rows[i] < s.b.rows[j]
}
func (s cooSorter) Swap(i, j int) {
	s.b.rows[i], s.b.rows[j] = s.b.rows[j], s.b.rows[i]
	s.b.cols[i], s.b.cols[j] = s.b.cols[j], s.b.cols[i]
	s.b.vals[i], s.b.vals[j] = s.b.vals[j], s.b.vals[i]
}

// Build compresses the recorded entries into a CSC matrix, summing
// duplicates. The builder can be reused afterwards (entries are kept).
func (b *Builder) Build() *CSC {
	sort.Sort(cooSorter{b})
	a := &CSC{
		N:      b.n,
		ColPtr: make([]int, b.n+1),
		Kind:   b.kind,
	}
	// Count unique entries.
	uniq := 0
	for k := 0; k < len(b.rows); {
		k2 := k + 1
		for k2 < len(b.rows) && b.rows[k2] == b.rows[k] && b.cols[k2] == b.cols[k] {
			k2++
		}
		uniq++
		k = k2
	}
	a.RowIdx = make([]int, 0, uniq)
	a.Val = make([]float64, 0, uniq)
	for k := 0; k < len(b.rows); {
		v := b.vals[k]
		k2 := k + 1
		for k2 < len(b.rows) && b.rows[k2] == b.rows[k] && b.cols[k2] == b.cols[k] {
			v += b.vals[k2]
			k2++
		}
		a.RowIdx = append(a.RowIdx, b.rows[k])
		a.Val = append(a.Val, v)
		a.ColPtr[b.cols[k]+1]++
		k = k2
	}
	for j := 0; j < b.n; j++ {
		a.ColPtr[j+1] += a.ColPtr[j]
	}
	return a
}
