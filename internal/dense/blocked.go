// Blocked (panel + row-block) variants of the partial factorization
// kernels. They perform the *same floating-point operations in the same
// per-element order* as the element-wise PartialLU/PartialCholesky —
// including the zero-skip short-circuits — so their results are bitwise
// identical to the reference kernels. What changes is the loop structure:
// pivots are processed in panels and the trailing rows in row blocks, so a
// panel of pivot rows is reused across a whole block of trailing rows
// instead of the reference kernels' one full sweep of the trailing matrix
// per pivot. That reuse is what makes them cache-friendly, and the row
// blocks are exactly the unit of work the within-front parallel executor
// (internal/nodepar) hands to slave tasks: because every row block computes
// the same bits regardless of who runs it or how rows are grouped, the
// factors do not depend on the block partition or the worker count.
//
// Kernel split, mirroring the paper's type-2 master/slave structure:
//
//	PanelLU / PanelCholesky        master: eliminate a panel of pivots
//	                               within the panel's own rows
//	LUApplyRows                    slave: apply a panel to a row block
//	                               (scale + full trailing sweep, one phase)
//	CholeskyScaleRows              slave phase 1: scaled panel columns of a
//	                               row block (needs only the master panel)
//	CholeskyUpdateRows             slave phase 2: trailing update of a row
//	                               block (needs phase 1 of *all* blocks)
//
// The symmetric kernel needs two slave phases because the trailing update
// of row i reads the scaled panel columns of every row j <= i, which may
// live in another slave's block; the unsymmetric update only reads the
// master's pivot rows.
package dense

import "math"

// DefaultBlockRows is the default panel width and row-block height of the
// blocked kernels and of the within-front 1D partition built on them.
const DefaultBlockRows = 64

// PanelLU eliminates pivots [k0,k1) of f within rows [k0,k1) only — the
// master part of a panel step. Rows >= k1 are untouched; apply the panel
// to them with LUApplyRows. Requires 0 <= k0 <= k1 <= f.R and that all
// earlier panels have been applied to rows [k0,k1).
func PanelLU(f *Matrix, k0, k1 int, tol float64) error {
	n := f.C
	for k := k0; k < k1; k++ {
		pk := f.At(k, k)
		if math.Abs(pk) <= tol {
			return errSmallPivotAt(k, pk)
		}
		inv := 1 / pk
		rowK := f.Row(k)
		for i := k + 1; i < k1; i++ {
			rowI := f.Row(i)
			l := rowI[k] * inv
			if l == 0 {
				continue
			}
			rowI[k] = l
			for j := k + 1; j < n; j++ {
				rowI[j] -= l * rowK[j]
			}
		}
	}
	return nil
}

// LUApplyRows applies the eliminated panel [k0,k1) to rows [r0,r1) of f
// (r0 >= k1): for each row, the multiplier scaling and the trailing-row
// update of every panel pivot, in pivot order — exactly the operations
// PartialLU performs on that row at steps k0..k1-1. Rows are independent:
// disjoint row ranges may run concurrently once the panel is final.
func LUApplyRows(f *Matrix, k0, k1, r0, r1 int) {
	if r1 <= r0 || k1 <= k0 {
		return
	}
	n := f.C
	// One reciprocal per pivot, as in PartialLU (bitwise the same value).
	// Stack scratch for every panel up to kernStackPanel wide, so the
	// steady state (DefaultBlockRows panels) never allocates.
	var ib [kernStackPanel]float64
	invs := ib[:]
	if kw := k1 - k0; kw > kernStackPanel {
		invs = make([]float64, kw)
	}
	for k := k0; k < k1; k++ {
		invs[k-k0] = 1 / f.At(k, k)
	}
	for i := r0; i < r1; i++ {
		rowI := f.Row(i)
		for k := k0; k < k1; k++ {
			l := rowI[k] * invs[k-k0]
			if l == 0 {
				continue
			}
			rowI[k] = l
			rk := f.Row(k)[k+1 : n]
			ri := rowI[k+1 : n]
			for j, v := range rk {
				ri[j] -= l * v
			}
		}
	}
}

// PanelCholesky factors the diagonal block [k0,k1) of the symmetric front
// f (lower triangle), assuming all earlier panels have been applied.
func PanelCholesky(f *Matrix, k0, k1 int) error {
	for k := k0; k < k1; k++ {
		d := f.At(k, k)
		if d <= 0 {
			return errNonPositiveDiag(k, d)
		}
		d = math.Sqrt(d)
		f.Set(k, k, d)
		inv := 1 / d
		for i := k + 1; i < k1; i++ {
			f.Set(i, k, f.At(i, k)*inv)
		}
		for j := k + 1; j < k1; j++ {
			ljk := f.At(j, k)
			if ljk == 0 {
				continue
			}
			for i := j; i < k1; i++ {
				f.Add(i, j, -f.At(i, k)*ljk)
			}
		}
	}
	return nil
}

// CholeskyScaleRows computes the scaled panel columns [k0,k1) of rows
// [r0,r1) (r0 >= k1): each entry accumulates its within-panel updates
// against the master's L rows, then scales by the panel diagonal — the
// operations PartialCholesky performs on those entries at steps k0..k1-1,
// per element in the same order and with the same L(k,m)==0 skips. Rows
// are independent given the master panel. The panel's nonzero pattern
// (what the reference kernel's skips depend on) is hoisted out of the row
// loop, so the inner loop is branch-free while computing identical bits.
func CholeskyScaleRows(f *Matrix, k0, k1, r0, r1 int) {
	if r1 <= r0 || k1 <= k0 {
		return
	}
	kw := k1 - k0
	if kw <= scaleStackPanel {
		// Identical bits with the hoisted pattern in stack arrays — the
		// steady state (DefaultBlockRows panels) never allocates.
		choleskyScaleRowsRB(f, k0, k1, r0, r1)
		return
	}
	invs := make([]float64, kw)
	type lent struct {
		m int32
		v float64
	}
	nz := make([][]lent, kw)
	buf := make([]lent, 0, kw*(kw-1)/2)
	for k := k0; k < k1; k++ {
		invs[k-k0] = 1 / f.At(k, k)
		rowK := f.Row(k)
		start := len(buf)
		for m := k0; m < k; m++ {
			if v := rowK[m]; v != 0 {
				buf = append(buf, lent{int32(m - k0), v})
			}
		}
		nz[k-k0] = buf[start:len(buf):len(buf)]
	}
	for i := r0; i < r1; i++ {
		ri := f.Row(i)[k0:k1]
		for k := 0; k < kw; k++ {
			s := ri[k]
			for _, e := range nz[k] {
				s -= ri[e.m] * e.v
			}
			ri[k] = s * invs[k]
		}
	}
}

// CholeskyUpdateRows applies the panel's trailing update to rows [r0,r1)
// (r0 >= k1), columns (k1, i] of the lower triangle: A(i,j) -=
// sum_k L(i,k)*L(j,k) over the panel, subtracted pivot by pivot in the
// reference kernel's order (per element: ascending k, skipping k where
// L(j,k) == 0 exactly as PartialCholesky does). It reads the scaled panel
// columns of every row j <= i, so CholeskyScaleRows must have completed
// for all rows up to r1 before this runs.
//
// Two loop nests compute those identical bits; the faster one depends on
// the panel width, so narrow panels take the row-oriented nest and wide
// ones the reference-style pivot-outer nest.
func CholeskyUpdateRows(f *Matrix, k0, k1, r0, r1 int) {
	if r1 <= r0 || k1 <= k0 {
		return
	}
	if k1-k0 < 32 {
		// Row-oriented: row i stays hot while the rows j stream through.
		for i := r0; i < r1; i++ {
			rowI := f.Row(i)
			ri := rowI[k0:k1]
			for j := k1; j <= i; j++ {
				rj := f.Row(j)[k0:k1]
				s := rowI[j]
				for ki, ljk := range rj {
					if ljk == 0 {
						continue
					}
					s -= ri[ki] * ljk
				}
				rowI[j] = s
			}
		}
		return
	}
	// Pivot-outer (the reference nest restricted to rows [r0,r1)): one
	// zero test per (pivot, column) instead of one per entry.
	n := f.C
	for k := k0; k < k1; k++ {
		for j := k1; j < r1; j++ {
			ljk := f.A[j*n+k]
			if ljk == 0 {
				continue
			}
			lo := r0
			if j > lo {
				lo = j
			}
			for i := lo; i < r1; i++ {
				f.A[i*n+j] -= f.A[i*n+k] * ljk
			}
		}
	}
}

// BlockedPartialLU is the sequential blocked equivalent of PartialLU:
// pivots in panels of `block` columns, trailing rows updated in row blocks
// of the same height. The result is bitwise identical to PartialLU.
// block <= 0 uses DefaultBlockRows.
func BlockedPartialLU(f *Matrix, npiv int, tol float64, block int) error {
	if err := checkPartial(f, npiv); err != nil {
		return err
	}
	if block <= 0 {
		block = DefaultBlockRows
	}
	n := f.R
	if n <= block {
		// A single panel covers the whole front: the element-wise kernel
		// computes the same bits without the panel machinery.
		return PartialLU(f, npiv, tol)
	}
	for k0 := 0; k0 < npiv; k0 += block {
		k1 := min(k0+block, npiv)
		if err := PanelLU(f, k0, k1, tol); err != nil {
			return err
		}
		for r0 := k1; r0 < n; r0 += block {
			LUApplyRows(f, k0, k1, r0, min(r0+block, n))
		}
	}
	return nil
}

// BlockedPartialCholesky is the sequential blocked equivalent of
// PartialCholesky, bitwise identical to it. block <= 0 uses
// DefaultBlockRows.
func BlockedPartialCholesky(f *Matrix, npiv int, block int) error {
	if err := checkPartial(f, npiv); err != nil {
		return err
	}
	if block <= 0 {
		block = DefaultBlockRows
	}
	n := f.R
	if n <= block {
		return PartialCholesky(f, npiv)
	}
	for k0 := 0; k0 < npiv; k0 += block {
		k1 := min(k0+block, npiv)
		if err := PanelCholesky(f, k0, k1); err != nil {
			return err
		}
		for r0 := k1; r0 < n; r0 += block {
			CholeskyScaleRows(f, k0, k1, r0, min(r0+block, n))
		}
		for r0 := k1; r0 < n; r0 += block {
			CholeskyUpdateRows(f, k0, k1, r0, min(r0+block, n))
		}
	}
	return nil
}
