package dense

import (
	"math"
	"math/rand"
	"testing"
)

// forcePortable pins the portable primitive path for the duration of the
// test and restores the init-time dispatch afterwards.
func forcePortable(t *testing.T) {
	t.Helper()
	was := simdEnabled
	simdEnabled = false
	t.Cleanup(func() { simdEnabled = was })
}

// forceVector requires and pins the hardware vector path; skips when the
// machine has none.
func forceVector(t *testing.T) {
	t.Helper()
	if !simdHW {
		t.Skip("no AVX2/FMA hardware path on this machine")
	}
	was := simdEnabled
	simdEnabled = true
	t.Cleanup(func() { simdEnabled = was })
}

func randSpan(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
		if rng.Float64() < 0.1 {
			s[i] = 0
		}
	}
	return s
}

// TestSIMDPrimitivesMatchPortable pins the core bitwise contract: the
// assembly primitives compute exactly the math.FMA recipe of their
// portable twins at every span length (covering all main-loop/tail
// combinations of the 16/4/1 unrolling).
func TestSIMDPrimitivesMatchPortable(t *testing.T) {
	if !simdHW {
		t.Skip("no AVX2/FMA hardware path on this machine")
	}
	was := simdEnabled
	simdEnabled = true
	defer func() { simdEnabled = was }()

	rng := rand.New(rand.NewSource(41))
	for n := 0; n <= 70; n++ {
		d := randSpan(rng, n)
		a := randSpan(rng, n)
		b := randSpan(rng, n)
		c := randSpan(rng, n)
		e := randSpan(rng, n)
		la, lb, lc, ld := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()

		check := func(name string, asm func(dst []float64), ref func(dst []float64)) {
			t.Helper()
			dAsm := append([]float64(nil), d...)
			dRef := append([]float64(nil), d...)
			asm(dAsm)
			ref(dRef)
			for j := range dAsm {
				if math.Float64bits(dAsm[j]) != math.Float64bits(dRef[j]) {
					t.Fatalf("%s n=%d: element %d differs: asm %v ref %v", name, n, j, dAsm[j], dRef[j])
				}
			}
		}
		check("fnmaSpan1",
			func(dst []float64) { fnmaSpan1(dst, a, la) },
			func(dst []float64) { fnmaSpan1Go(dst, a, la) })
		check("fnmaSpan2",
			func(dst []float64) { fnmaSpan2(dst, a, b, la, lb) },
			func(dst []float64) { fnmaSpan2Go(dst, a, b, la, lb) })
		check("fnmaSpan4",
			func(dst []float64) { fnmaSpan4(dst, a, b, c, e, la, lb, lc, ld) },
			func(dst []float64) { fnmaSpan4Go(dst, a, b, c, e, la, lb, lc, ld) })
		check("addSpan",
			func(dst []float64) { addSpanFast(dst, a) },
			func(dst []float64) { addSpanGo(dst, a) })

		// scatterRuns4 over a fragmented run decomposition of the span:
		// four row pairs, runs of 3 with gaps, vector main + scalar tail.
		if n >= 2 {
			var srcRuns []IndexRun
			for j := 0; j+1 < n; j += 5 {
				l := 3
				if j+l > n-1 {
					l = n - 1 - j
				}
				srcRuns = append(srcRuns, IndexRun{J0: int32(j), C0: int32(j + 1), Len: int32(l)})
			}
			mk := func() (ds, ss [4][]float64) {
				for r := 0; r < 4; r++ {
					ds[r] = append([]float64(nil), d...)
					ss[r] = randSpan(rand.New(rand.NewSource(int64(100+r))), n)
				}
				return
			}
			dAsm, src := mk()
			dRef, _ := mk()
			scatterRuns4(dAsm[0], dAsm[1], dAsm[2], dAsm[3], src[0], src[1], src[2], src[3], srcRuns)
			scatterRuns4Go(dRef[0], dRef[1], dRef[2], dRef[3], src[0], src[1], src[2], src[3], srcRuns)
			for r := 0; r < 4; r++ {
				for j := range dAsm[r] {
					if math.Float64bits(dAsm[r][j]) != math.Float64bits(dRef[r][j]) {
						t.Fatalf("scatterRuns4 n=%d row %d element %d: asm %v ref %v",
							n, r, j, dAsm[r][j], dRef[r][j])
					}
				}
			}
		}

		if s, ref := dotOne(d, a), dotOneGo(d, a); math.Float64bits(s) != math.Float64bits(ref) {
			t.Fatalf("dotOne n=%d: asm %v ref %v", n, s, ref)
		}
		s0, s1, s2, s3 := dotFour(d, a, b, c, e)
		r0, r1, r2, r3 := dotFourGo(d, a, b, c, e)
		for i, pair := range [][2]float64{{s0, r0}, {s1, r1}, {s2, r2}, {s3, r3}} {
			if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
				t.Fatalf("dotFour n=%d col %d: asm %v ref %v", n, i, pair[0], pair[1])
			}
		}
		// Column grouping must not matter: dotFour == four dotOnes.
		for i, q := range [][]float64{a, b, c, e} {
			one := dotOne(d, q)
			four := []float64{s0, s1, s2, s3}[i]
			if math.Float64bits(one) != math.Float64bits(four) {
				t.Fatalf("dotFour vs dotOne n=%d col %d: %v vs %v", n, i, four, one)
			}
		}
	}
}

// TestSIMDPrimitivesZeroAlloc pins the primitives' alloc-free dispatch.
func TestSIMDPrimitivesZeroAlloc(t *testing.T) {
	d := randSpan(rand.New(rand.NewSource(5)), 64)
	a := randSpan(rand.New(rand.NewSource(6)), 64)
	runs := []IndexRun{{J0: 0, C0: 0, Len: 32}, {J0: 32, C0: 40, Len: 8}}
	allocs := testing.AllocsPerRun(100, func() {
		fnmaSpan1(d, a, 0.5)
		_ = dotOne(d, a)
		addSpanFast(d, a)
		scatterRuns4(d, d, d, d, a, a, a, a, runs[:1])
	})
	if allocs != 0 {
		t.Fatalf("primitives allocate %v per run, want 0", allocs)
	}
}
