// Portable reference implementations of the SIMD span/dot primitives —
// the exact per-element specification the amd64 assembly reproduces.
//
// Every primitive is written in terms of math.FMA, which is correctly
// rounded on every platform (a single rounding per multiply-add, hardware
// FMA where available, exact software emulation otherwise). The vector
// paths in simd_amd64.s compute the same operations lane by lane with
// VFMADD/VFNMADD, so the assembly and these fallbacks produce bitwise
// identical results: forcing the portable path (REPRO_SIMD=off, non-amd64
// builds, or panel tails) never changes a single bit of a KernelSIMD
// factorization.
//
// Determinism contract of the dot primitives: the accumulation order is a
// pure function of the span length — four lane accumulators over k ≡ 0..3
// (mod 4), reduced as (acc0+acc2)+(acc1+acc3), then the scalar tail FMA'd
// onto the reduced sum in ascending k. dotOneGo and dotFourGo follow the
// identical per-column recipe, so grouping columns in fours (a tile-width
// artifact) cannot change any column's value.
package dense

import "math"

// fnmaSpan1Go computes d[j] = fma(-la, a[j], d[j]) over the span.
func fnmaSpan1Go(d, a []float64, la float64) {
	n := len(d)
	a = a[:n:n]
	for j := 0; j < n; j++ {
		d[j] = math.FMA(-la, a[j], d[j])
	}
}

// fnmaSpan2Go chains two fused updates per element, first pivot first:
// d[j] = fma(-lb, b[j], fma(-la, a[j], d[j])).
func fnmaSpan2Go(d, a, b []float64, la, lb float64) {
	n := len(d)
	a = a[:n:n]
	b = b[:n:n]
	for j := 0; j < n; j++ {
		d[j] = math.FMA(-lb, b[j], math.FMA(-la, a[j], d[j]))
	}
}

// fnmaSpan4Go chains four fused updates per element in ascending pivot
// order — the rank-4 step of the SIMD update kernels.
func fnmaSpan4Go(d, a, b, c, e []float64, la, lb, lc, ld float64) {
	n := len(d)
	a = a[:n:n]
	b = b[:n:n]
	c = c[:n:n]
	e = e[:n:n]
	for j := 0; j < n; j++ {
		s := math.FMA(-la, a[j], d[j])
		s = math.FMA(-lb, b[j], s)
		s = math.FMA(-lc, c[j], s)
		d[j] = math.FMA(-ld, e[j], s)
	}
}

// dotOneGo computes the fused dot product of p and q under the four-lane
// accumulation contract described in the package comment.
func dotOneGo(p, q []float64) float64 {
	n := len(p)
	q = q[:n:n]
	var a0, a1, a2, a3 float64
	k := 0
	for ; k+3 < n; k += 4 {
		a0 = math.FMA(p[k], q[k], a0)
		a1 = math.FMA(p[k+1], q[k+1], a1)
		a2 = math.FMA(p[k+2], q[k+2], a2)
		a3 = math.FMA(p[k+3], q[k+3], a3)
	}
	s := (a0 + a2) + (a1 + a3)
	for ; k < n; k++ {
		s = math.FMA(p[k], q[k], s)
	}
	return s
}

// dotFourGo computes four dot products of p against q0..q3, each exactly
// as dotOneGo would — one pass over p shared by four accumulator sets.
func dotFourGo(p, q0, q1, q2, q3 []float64) (s0, s1, s2, s3 float64) {
	n := len(p)
	q0 = q0[:n:n]
	q1 = q1[:n:n]
	q2 = q2[:n:n]
	q3 = q3[:n:n]
	var a00, a01, a02, a03 float64
	var a10, a11, a12, a13 float64
	var a20, a21, a22, a23 float64
	var a30, a31, a32, a33 float64
	k := 0
	for ; k+3 < n; k += 4 {
		pa, pb, pc, pd := p[k], p[k+1], p[k+2], p[k+3]
		a00 = math.FMA(pa, q0[k], a00)
		a01 = math.FMA(pb, q0[k+1], a01)
		a02 = math.FMA(pc, q0[k+2], a02)
		a03 = math.FMA(pd, q0[k+3], a03)
		a10 = math.FMA(pa, q1[k], a10)
		a11 = math.FMA(pb, q1[k+1], a11)
		a12 = math.FMA(pc, q1[k+2], a12)
		a13 = math.FMA(pd, q1[k+3], a13)
		a20 = math.FMA(pa, q2[k], a20)
		a21 = math.FMA(pb, q2[k+1], a21)
		a22 = math.FMA(pc, q2[k+2], a22)
		a23 = math.FMA(pd, q2[k+3], a23)
		a30 = math.FMA(pa, q3[k], a30)
		a31 = math.FMA(pb, q3[k+1], a31)
		a32 = math.FMA(pc, q3[k+2], a32)
		a33 = math.FMA(pd, q3[k+3], a33)
	}
	s0 = (a00 + a02) + (a01 + a03)
	s1 = (a10 + a12) + (a11 + a13)
	s2 = (a20 + a22) + (a21 + a23)
	s3 = (a30 + a32) + (a31 + a33)
	for ; k < n; k++ {
		pa := p[k]
		s0 = math.FMA(pa, q0[k], s0)
		s1 = math.FMA(pa, q1[k], s1)
		s2 = math.FMA(pa, q2[k], s2)
		s3 = math.FMA(pa, q3[k], s3)
	}
	return
}

// scatterRuns4Go applies every run to four row pairs at once — the 4-row
// group of the extend-add scatter: di[C0+t] += si[J0+t] for each run.
// Plain element-wise adds (short runs inline, long ones through
// addSpanGo), so the result is bitwise identical to any vector grouping
// or row interleaving.
func scatterRuns4Go(d0, d1, d2, d3, s0, s1, s2, s3 []float64, runs []IndexRun) {
	for _, r := range runs {
		j0, c0, l := int(r.J0), int(r.C0), int(r.Len)
		if l <= shortRun {
			for t := 0; t < l; t++ {
				d0[c0+t] += s0[j0+t]
				d1[c0+t] += s1[j0+t]
				d2[c0+t] += s2[j0+t]
				d3[c0+t] += s3[j0+t]
			}
			continue
		}
		addSpanGo(d0[c0:c0+l], s0[j0:j0+l])
		addSpanGo(d1[c0:c0+l], s1[j0:j0+l])
		addSpanGo(d2[c0:c0+l], s2[j0:j0+l])
		addSpanGo(d3[c0:c0+l], s3[j0:j0+l])
	}
}

// addSpanGo computes d[j] += s[j] over the span, 4x-unrolled. Plain
// element-wise adds: bitwise identical to any vector grouping.
func addSpanGo(d, s []float64) {
	n := len(s)
	d = d[:n:n]
	s = s[:n:n]
	j := 0
	for ; j+3 < n; j += 4 {
		d[j] += s[j]
		d[j+1] += s[j+1]
		d[j+2] += s[j+2]
		d[j+3] += s[j+3]
	}
	for ; j < n; j++ {
		d[j] += s[j]
	}
}
