// Kernel dispatch for the update micro-kernels — the rank-k panel updates
// that dominate factorization time. Three implementation families sit
// behind one selector (plus an auto policy):
//
//   - KernelDefault: register-blocked micro-kernels that perform the *same
//     floating-point operations in the same per-element order* as the
//     reference kernels (PartialLU / PartialCholesky and the PR-3 blocked
//     row kernels), including the zero-skip short-circuits. Factors are
//     bitwise identical to the element-wise kernels at every panel width,
//     row partition and worker count; only the loop structure changes:
//     column loops are 4x-unrolled over hoisted, capacity-capped row
//     slices (s = s[:n:n] re-slicing eliminates the bounds checks), and
//     trailing updates fuse pivot pairs so each element is loaded once
//     per pair instead of once per pivot.
//
//   - KernelFast: full register tiling with *reordered accumulation* —
//     rank-4 fused updates for LU (one rounded sum of four products per
//     element) and branch-free 2x2 outer-product tiles for the symmetric
//     update, with the zero-skip short-circuits dropped. Results are no
//     longer bitwise comparable to the reference kernels and are
//     validated by residual tolerance instead. They are still
//     deterministic for a fixed panel width: every element's value is a
//     pure function of the front and the panel sequence, independent of
//     the row-block partition and of which worker runs which block, so a
//     parallel fast factorization reproduces the sequential fast one.
//
//   - KernelSIMD: fused multiply-add kernels over the span/dot primitives
//     of simd_prims.go — AVX2/FMA assembly on capable amd64 hardware, a
//     bitwise-identical math.FMA fallback everywhere else (see simd.go).
//     Same determinism contract as KernelFast: residual-validated,
//     reproducible across row partitions, tile grids and worker counts
//     for a fixed panel width.
//
//   - KernelAuto is a policy, not a family: Resolve() picks KernelSIMD
//     when the vector path is available and KernelFast otherwise.
//
// The per-element operation-order discipline of KernelDefault deliberately
// keeps each update in the `x -= l * v` shape of the reference kernels
// (one multiply, one subtract, each rounded separately) so a compiler that
// fuses multiply-add does so identically in both loop structures.
package dense

// Kernel selects the implementation family of the update micro-kernels.
type Kernel int

const (
	// KernelDefault is the register-blocked family: bitwise identical to
	// the reference kernels (see the package comment above).
	KernelDefault Kernel = iota
	// KernelFast reorders accumulation for full register tiling; validated
	// by residual tolerance, deterministic for a fixed panel width.
	KernelFast
	// KernelSIMD runs the fused-multiply-add family (AVX2/FMA assembly or
	// its bitwise-identical math.FMA fallback); same validation and
	// determinism contract as KernelFast.
	KernelSIMD
	// KernelAuto resolves to KernelSIMD when the vector path is available
	// and to KernelFast otherwise; see Kernel.Resolve.
	KernelAuto
)

func (k Kernel) String() string {
	switch k {
	case KernelDefault:
		return "default"
	case KernelFast:
		return "fast"
	case KernelSIMD:
		return "simd"
	case KernelAuto:
		return "auto"
	}
	return "unknown"
}

// kernStackPanel bounds the panel width for which the kernels' per-call
// scratch (reciprocals, nonzero multiplier lists, hoisted row slices)
// lives in stack arrays; wider panels fall back to heap scratch. Default
// panels (DefaultBlockRows) are far below it, so steady-state calls do
// not allocate.
const kernStackPanel = 256

// LUApplyRows applies the eliminated panel [k0,k1) to rows [r0,r1) through
// the selected kernel family. Semantics match the package-level
// LUApplyRows; KernelDefault computes identical bits.
func (kern Kernel) LUApplyRows(f *Matrix, k0, k1, r0, r1 int) {
	if r1 <= r0 || k1 <= k0 {
		return
	}
	switch kern.Resolve() {
	case KernelFast:
		luApplyRowsFast(f, k0, k1, r0, r1)
	case KernelSIMD:
		luApplyRowsSIMD(f, k0, k1, r0, r1)
	default:
		luApplyRowsRB(f, k0, k1, r0, r1)
	}
}

// CholeskyScaleRows computes the scaled panel columns of rows [r0,r1).
// All families share one implementation (the hoisted-pattern loop is
// already branch-free in its inner loop and bitwise identical to the
// reference): panels up to scaleStackPanel wide run the allocation-free
// stack-scratch variant, wider ones the heap-scratch original.
func (kern Kernel) CholeskyScaleRows(f *Matrix, k0, k1, r0, r1 int) {
	if r1 <= r0 || k1 <= k0 {
		return
	}
	if k1-k0 <= scaleStackPanel {
		choleskyScaleRowsRB(f, k0, k1, r0, r1)
		return
	}
	CholeskyScaleRows(f, k0, k1, r0, r1)
}

// CholeskyUpdateRows applies the panel's trailing symmetric update to rows
// [r0,r1) through the selected kernel family. Semantics match the
// package-level CholeskyUpdateRows; KernelDefault computes identical bits.
func (kern Kernel) CholeskyUpdateRows(f *Matrix, k0, k1, r0, r1 int) {
	if r1 <= r0 || k1 <= k0 {
		return
	}
	switch kern.Resolve() {
	case KernelFast:
		choleskyUpdateRowsFast(f, k0, k1, r0, r1)
	case KernelSIMD:
		choleskyUpdateRowsSIMD(f, k0, k1, r0, r1)
	default:
		choleskyUpdateRowsRB(f, k0, k1, r0, r1)
	}
}

// PartialLU is the sequential blocked partial LU through this kernel
// family: pivots in panels of `block` columns (block <= 0 uses
// DefaultBlockRows), each panel applied to all trailing rows at once.
// KernelDefault is bitwise identical to the element-wise PartialLU.
func (kern Kernel) PartialLU(f *Matrix, npiv int, tol float64, block int) error {
	if err := checkPartial(f, npiv); err != nil {
		return err
	}
	kern = kern.Resolve()
	if block <= 0 {
		block = DefaultBlockRows
	}
	if kern == KernelDefault && f.R <= block {
		// A single panel covers the whole front: the element-wise kernel
		// computes the same bits without the panel machinery.
		return PartialLU(f, npiv, tol)
	}
	for k0 := 0; k0 < npiv; k0 += block {
		k1 := min(k0+block, npiv)
		if err := PanelLU(f, k0, k1, tol); err != nil {
			return err
		}
		kern.LUApplyRows(f, k0, k1, k1, f.R)
	}
	return nil
}

// PartialCholesky is the sequential blocked partial Cholesky through this
// kernel family. KernelDefault is bitwise identical to the element-wise
// PartialCholesky.
func (kern Kernel) PartialCholesky(f *Matrix, npiv int, block int) error {
	if err := checkPartial(f, npiv); err != nil {
		return err
	}
	kern = kern.Resolve()
	if block <= 0 {
		block = DefaultBlockRows
	}
	if kern == KernelDefault && f.R <= block {
		return PartialCholesky(f, npiv)
	}
	for k0 := 0; k0 < npiv; k0 += block {
		k1 := min(k0+block, npiv)
		if err := PanelCholesky(f, k0, k1); err != nil {
			return err
		}
		kern.CholeskyScaleRows(f, k0, k1, k1, f.R)
		kern.CholeskyUpdateRows(f, k0, k1, k1, f.R)
	}
	return nil
}

// loadPanel fills invs with the pivot reciprocals and rks with the
// trailing part [k1,n) of every panel row, re-sliced once with a capped
// capacity so the inner loops are bounds-check free. Callers pass
// stack-array-backed slices so the steady state does not allocate.
func loadPanel(f *Matrix, k0, k1 int, invs []float64, rks [][]float64) {
	n := f.C
	for k := k0; k < k1; k++ {
		invs[k-k0] = 1 / f.A[k*n+k]
		rks[k-k0] = f.A[k*n+k1 : k*n+n : k*n+n]
	}
}

// luApplyRowsRB is the register-blocked LUApplyRows: bitwise identical to
// the reference. Per row it first replays the reference's multiplier and
// within-panel updates (collecting the nonzero multipliers it commits),
// then applies the trailing update fused over pivot pairs with the column
// loop 4x-unrolled — per element the pivots still arrive in ascending
// order with the reference's exact zero skips.
func luApplyRowsRB(f *Matrix, k0, k1, r0, r1 int) {
	n := f.C
	kw := k1 - k0
	var ib [kernStackPanel]float64
	var rb [kernStackPanel][]float64
	var lb [kernStackPanel]float64
	var kb [kernStackPanel]int32
	invs, rks, ls, ki := ib[:], rb[:], lb[:], kb[:]
	if kw > kernStackPanel {
		invs, rks = make([]float64, kw), make([][]float64, kw)
		ls, ki = make([]float64, kw), make([]int32, kw)
	}
	loadPanel(f, k0, k1, invs, rks)

	for i := r0; i < r1; i++ {
		rowI := f.A[i*n : i*n+n : i*n+n]
		// Multipliers and within-panel updates, reference order and skips.
		nnz := 0
		for k := k0; k < k1; k++ {
			l := rowI[k] * invs[k-k0]
			if l == 0 {
				continue
			}
			rowI[k] = l
			rowK := f.A[k*n : k*n+n : k*n+n]
			for j := k + 1; j < k1; j++ {
				rowI[j] -= l * rowK[j]
			}
			ls[nnz], ki[nnz] = l, int32(k-k0)
			nnz++
		}
		// Trailing update, pivots fused in ascending pairs.
		ri := rowI[k1:]
		t := 0
		for ; t+1 < nnz; t += 2 {
			rank2Sub(ri, rks[ki[t]], rks[ki[t+1]], ls[t], ls[t+1])
		}
		if t < nnz {
			rank1Sub(ri, rks[ki[t]], ls[t])
		}
	}
}

// rank1Sub computes ri[j] -= l*ra[j] over the whole span, 4x-unrolled,
// keeping the reference's one-multiply-one-subtract shape per element.
func rank1Sub(ri, ra []float64, l float64) {
	n := len(ri)
	ri = ri[:n:n]
	ra = ra[:n:n]
	j := 0
	for ; j+3 < n; j += 4 {
		ri[j] -= l * ra[j]
		ri[j+1] -= l * ra[j+1]
		ri[j+2] -= l * ra[j+2]
		ri[j+3] -= l * ra[j+3]
	}
	for ; j < n; j++ {
		ri[j] -= l * ra[j]
	}
}

// rank2Sub fuses two pivots: per element the first pivot's update lands
// before the second's, exactly as the reference's ascending pivot order.
func rank2Sub(ri, ra, rb []float64, la, lb float64) {
	n := len(ri)
	ri = ri[:n:n]
	ra = ra[:n:n]
	rb = rb[:n:n]
	j := 0
	for ; j+3 < n; j += 4 {
		ri[j] -= la * ra[j]
		ri[j] -= lb * rb[j]
		ri[j+1] -= la * ra[j+1]
		ri[j+1] -= lb * rb[j+1]
		ri[j+2] -= la * ra[j+2]
		ri[j+2] -= lb * rb[j+2]
		ri[j+3] -= la * ra[j+3]
		ri[j+3] -= lb * rb[j+3]
	}
	for ; j < n; j++ {
		ri[j] -= la * ra[j]
		ri[j] -= lb * rb[j]
	}
}

// luApplyRowsFast is the reordered-accumulation LU row kernel: multipliers
// are computed densely (no zero skips) and the trailing update runs as a
// rank-4 fused sweep — one rounded sum of four products subtracted per
// element — so four panel rows stream through the registers per pass.
func luApplyRowsFast(f *Matrix, k0, k1, r0, r1 int) {
	n := f.C
	kw := k1 - k0
	var ib [kernStackPanel]float64
	var rb [kernStackPanel][]float64
	invs, rks := ib[:], rb[:]
	if kw > kernStackPanel {
		invs, rks = make([]float64, kw), make([][]float64, kw)
	}
	loadPanel(f, k0, k1, invs, rks)

	for i := r0; i < r1; i++ {
		rowI := f.A[i*n : i*n+n : i*n+n]
		for k := k0; k < k1; k++ {
			l := rowI[k] * invs[k-k0]
			rowI[k] = l
			rowK := f.A[k*n : k*n+n : k*n+n]
			for j := k + 1; j < k1; j++ {
				rowI[j] -= l * rowK[j]
			}
		}
		ri := rowI[k1:]
		m := len(ri)
		ri = ri[:m:m]
		k := k0
		for ; k+3 < k1; k += 4 {
			la, lc := rowI[k], rowI[k+2]
			lb, ld := rowI[k+1], rowI[k+3]
			ra := rks[k-k0][:m:m]
			rbv := rks[k+1-k0][:m:m]
			rc := rks[k+2-k0][:m:m]
			rd := rks[k+3-k0][:m:m]
			for j := 0; j < m; j++ {
				ri[j] -= la*ra[j] + lb*rbv[j] + lc*rc[j] + ld*rd[j]
			}
		}
		for ; k+1 < k1; k += 2 {
			la, lb := rowI[k], rowI[k+1]
			ra := rks[k-k0][:m:m]
			rbv := rks[k+1-k0][:m:m]
			for j := 0; j < m; j++ {
				ri[j] -= la*ra[j] + lb*rbv[j]
			}
		}
		if k < k1 {
			rank1Sub(ri, rks[k-k0], rowI[k])
		}
	}
}

// choleskyUpdateRowsRB is the register-blocked symmetric trailing update:
// bitwise identical to the reference. It walks the updated columns j
// outermost, hoists column j's nonzero panel entries (the reference's
// skip pattern) once, and streams the rows through 4x1 register tiles —
// four rows accumulate against the same hoisted column, each element
// receiving its pivots in the reference's ascending order.
func choleskyUpdateRowsRB(f *Matrix, k0, k1, r0, r1 int) {
	n := f.C
	kw := k1 - k0
	var lb [kernStackPanel]float64
	var kb [kernStackPanel]int32
	ls, ks := lb[:], kb[:]
	if kw > kernStackPanel {
		ls, ks = make([]float64, kw), make([]int32, kw)
	}
	for j := k1; j < r1; j++ {
		rowJ := f.A[j*n : j*n+n]
		nnz := 0
		for k := k0; k < k1; k++ {
			if v := rowJ[k]; v != 0 {
				ls[nnz], ks[nnz] = v, int32(k)
				nnz++
			}
		}
		if nnz == 0 {
			continue
		}
		lj, kj := ls[:nnz:nnz], ks[:nnz:nnz]
		lo := j
		if lo < r0 {
			lo = r0
		}
		i := lo
		for ; i+3 < r1; i += 4 {
			r0v := f.A[i*n : i*n+n : i*n+n]
			r1v := f.A[(i+1)*n : (i+1)*n+n : (i+1)*n+n]
			r2v := f.A[(i+2)*n : (i+2)*n+n : (i+2)*n+n]
			r3v := f.A[(i+3)*n : (i+3)*n+n : (i+3)*n+n]
			s0, s1, s2, s3 := r0v[j], r1v[j], r2v[j], r3v[j]
			for t, l := range lj {
				k := int(kj[t])
				s0 -= r0v[k] * l
				s1 -= r1v[k] * l
				s2 -= r2v[k] * l
				s3 -= r3v[k] * l
			}
			r0v[j], r1v[j], r2v[j], r3v[j] = s0, s1, s2, s3
		}
		for ; i < r1; i++ {
			rv := f.A[i*n : i*n+n : i*n+n]
			s := rv[j]
			for t, l := range lj {
				s -= rv[int(kj[t])] * l
			}
			rv[j] = s
		}
	}
}

// choleskyUpdateRowsFast is the tiled symmetric trailing update: columns
// in pairs, rows in pairs, so each 2x2 output tile accumulates four dot
// products over the panel with every panel load shared between two
// accumulators. No zero skips; deterministic for a fixed panel width.
func choleskyUpdateRowsFast(f *Matrix, k0, k1, r0, r1 int) {
	n := f.C
	j := k1
	for ; j+1 < r1; j += 2 {
		rja := f.A[j*n+k0 : j*n+k1 : j*n+k1]
		rjb := f.A[(j+1)*n+k0 : (j+1)*n+k1 : (j+1)*n+k1]
		if j >= r0 {
			// Row j itself only receives column j (the diagonal edge).
			rv := f.A[j*n : j*n+n]
			s := rv[j]
			for _, l := range rja {
				s -= l * l
			}
			rv[j] = s
		}
		lo := j + 1
		if lo < r0 {
			lo = r0
		}
		i := lo
		for ; i+1 < r1; i += 2 {
			ria := f.A[i*n : i*n+n : i*n+n]
			rib := f.A[(i+1)*n : (i+1)*n+n : (i+1)*n+n]
			pa := ria[k0:k1:k1]
			pb := rib[k0:k1:k1]
			s00, s01 := ria[j], ria[j+1]
			s10, s11 := rib[j], rib[j+1]
			for t, la := range rja {
				lb := rjb[t]
				va, vb := pa[t], pb[t]
				s00 -= va * la
				s01 -= va * lb
				s10 -= vb * la
				s11 -= vb * lb
			}
			ria[j], ria[j+1] = s00, s01
			rib[j], rib[j+1] = s10, s11
		}
		if i < r1 {
			ria := f.A[i*n : i*n+n : i*n+n]
			pa := ria[k0:k1:k1]
			s00, s01 := ria[j], ria[j+1]
			for t, la := range rja {
				va := pa[t]
				s00 -= va * la
				s01 -= va * rjb[t]
			}
			ria[j], ria[j+1] = s00, s01
		}
	}
	if j < r1 {
		// Odd trailing column: 4x1 tiles against the single hoisted column.
		rja := f.A[j*n+k0 : j*n+k1 : j*n+k1]
		lo := j
		if lo < r0 {
			lo = r0
		}
		for i := lo; i < r1; i++ {
			rv := f.A[i*n : i*n+n : i*n+n]
			pv := rv[k0:k1:k1]
			s := rv[j]
			for t, l := range rja {
				s -= pv[t] * l
			}
			rv[j] = s
		}
	}
}

// scaleStackPanel bounds the panel width of the stack-scratch scale-rows
// variant: its hoisted zero-pattern buffers are fixed arrays of
// scaleStackPanel*(scaleStackPanel-1)/2 entries (~24 KiB), declared — and
// therefore zeroed — per call, which only pays for itself while the
// buffers stay small. DefaultBlockRows panels always fit.
const scaleStackPanel = 64

// choleskyScaleRowsRB is CholeskyScaleRows with the hoisted panel pattern
// in stack arrays instead of per-call heap slices — same operations, same
// per-element order, identical bits, zero allocations. Requires
// k1-k0 <= scaleStackPanel.
func choleskyScaleRowsRB(f *Matrix, k0, k1, r0, r1 int) {
	const maxEnt = scaleStackPanel * (scaleStackPanel - 1) / 2
	n := f.C
	kw := k1 - k0
	var ivb [scaleStackPanel]float64
	var msb [maxEnt]int32
	var vsb [maxEnt]float64
	var stb [scaleStackPanel + 1]int32
	invs := ivb[:kw]
	pos := 0
	for k := k0; k < k1; k++ {
		invs[k-k0] = 1 / f.A[k*n+k]
		rowK := f.A[k*n+k0 : k*n+k : k*n+k]
		stb[k-k0] = int32(pos)
		for m, v := range rowK {
			if v != 0 {
				msb[pos], vsb[pos] = int32(m), v
				pos++
			}
		}
	}
	stb[kw] = int32(pos)
	ms, vs := msb[:pos:pos], vsb[:pos:pos]
	for i := r0; i < r1; i++ {
		ri := f.A[i*n+k0 : i*n+k1 : i*n+k1]
		for k := 0; k < kw; k++ {
			s := ri[k]
			for p := stb[k]; p < stb[k+1]; p++ {
				s -= ri[ms[p]] * vs[p]
			}
			ri[k] = s * invs[k]
		}
	}
}
