package dense

import (
	"math"
	"math/rand"
	"testing"
)

// solveProblem builds one front's trapezoids (f x npiv lower L with
// either unit or stored diagonal, npiv x f upper U) and an f x nrhs
// panel, with a sprinkling of exact zeros so the forward zero-skip path
// is exercised.
func solveProblem(rng *rand.Rand, f, npiv, nrhs int) (L, U, W *Matrix) {
	L = New(f, npiv)
	U = New(npiv, f)
	W = New(f, nrhs)
	for i := 0; i < f; i++ {
		for k := 0; k < npiv && k <= i; k++ {
			L.Set(i, k, rng.NormFloat64())
		}
	}
	for k := 0; k < npiv; k++ {
		L.Set(k, k, 1+rng.Float64()) // safe divisor for the Cholesky paths
		for j := k; j < f; j++ {
			U.Set(k, j, rng.NormFloat64())
		}
		U.Set(k, k, 1+rng.Float64())
	}
	for p := range W.A {
		if rng.Intn(4) == 0 {
			continue // exact zero
		}
		W.A[p] = rng.NormFloat64()
	}
	return L, U, W
}

// Scalar references: the historical per-element solve loops, one column
// at a time, exactly as the pre-blocked solver ran them.

func refForwardLU(L *Matrix, npiv int, x []float64) {
	for k := 0; k < npiv; k++ {
		v := x[k]
		if v == 0 {
			continue
		}
		for i := k + 1; i < len(x); i++ {
			x[i] -= L.At(i, k) * v
		}
	}
}

func refForwardCholesky(L *Matrix, npiv int, x []float64) {
	for k := 0; k < npiv; k++ {
		x[k] /= L.At(k, k)
		v := x[k]
		if v == 0 {
			continue
		}
		for i := k + 1; i < len(x); i++ {
			x[i] -= L.At(i, k) * v
		}
	}
}

func refBackwardLU(U *Matrix, npiv int, x []float64) {
	for k := npiv - 1; k >= 0; k-- {
		s := x[k]
		for j := k + 1; j < len(x); j++ {
			s -= U.At(k, j) * x[j]
		}
		x[k] = s / U.At(k, k)
	}
}

func refBackwardCholesky(L *Matrix, npiv int, x []float64) {
	for k := npiv - 1; k >= 0; k-- {
		s := x[k]
		for i := k + 1; i < len(x); i++ {
			s -= L.At(i, k) * x[i]
		}
		x[k] = s / L.At(k, k)
	}
}

// column extracts column c of the panel.
func column(W *Matrix, c int) []float64 {
	x := make([]float64, W.R)
	for i := 0; i < W.R; i++ {
		x[i] = W.At(i, c)
	}
	return x
}

// TestSolveKernelsDefaultBitwise pins the KernelDefault panel solves to
// the scalar reference: every column of the blocked result must carry
// the exact bits of a per-column scalar run, for any nrhs.
func TestSolveKernelsDefaultBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, sz := range []struct{ f, npiv, nrhs int }{
		{1, 1, 1}, {5, 5, 1}, {7, 3, 1}, {8, 3, 4}, {16, 16, 3},
		{23, 9, 8}, {40, 17, 5}, {12, 1, 7},
	} {
		for trial := 0; trial < 4; trial++ {
			L, U, W0 := solveProblem(rng, sz.f, sz.npiv, sz.nrhs)
			kinds := []struct {
				name string
				run  func(W *Matrix)
				ref  func(x []float64)
			}{
				{"fwdLU", func(W *Matrix) { KernelDefault.SolveForwardLU(L, sz.npiv, W) },
					func(x []float64) { refForwardLU(L, sz.npiv, x) }},
				{"fwdChol", func(W *Matrix) { KernelDefault.SolveForwardCholesky(L, sz.npiv, W) },
					func(x []float64) { refForwardCholesky(L, sz.npiv, x) }},
				{"bwdLU", func(W *Matrix) { KernelDefault.SolveBackwardLU(U, sz.npiv, W) },
					func(x []float64) { refBackwardLU(U, sz.npiv, x) }},
				{"bwdChol", func(W *Matrix) { KernelDefault.SolveBackwardCholesky(L, sz.npiv, W) },
					func(x []float64) { refBackwardCholesky(L, sz.npiv, x) }},
			}
			for _, k := range kinds {
				W := New(sz.f, sz.nrhs)
				copy(W.A, W0.A)
				k.run(W)
				for c := 0; c < sz.nrhs; c++ {
					x := column(W0, c)
					k.ref(x)
					for i := range x {
						if got := W.At(i, c); math.Float64bits(got) != math.Float64bits(x[i]) {
							t.Fatalf("%s f=%d npiv=%d nrhs=%d: row %d col %d: blocked %v != scalar %v",
								k.name, sz.f, sz.npiv, sz.nrhs, i, c, got, x[i])
						}
					}
				}
			}
		}
	}
}

// TestSolveKernelsFast validates the reordered fast family against the
// default by closeness, and checks it is deterministic (two runs, same
// bits).
func TestSolveKernelsFast(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sz := range []struct{ f, npiv, nrhs int }{
		{6, 6, 1}, {9, 4, 3}, {17, 8, 5}, {32, 15, 2},
	} {
		L, U, W0 := solveProblem(rng, sz.f, sz.npiv, sz.nrhs)
		runs := []struct {
			name string
			run  func(kern Kernel, W *Matrix)
		}{
			{"fwdLU", func(kern Kernel, W *Matrix) { kern.SolveForwardLU(L, sz.npiv, W) }},
			{"fwdChol", func(kern Kernel, W *Matrix) { kern.SolveForwardCholesky(L, sz.npiv, W) }},
			{"bwdLU", func(kern Kernel, W *Matrix) { kern.SolveBackwardLU(U, sz.npiv, W) }},
			{"bwdChol", func(kern Kernel, W *Matrix) { kern.SolveBackwardCholesky(L, sz.npiv, W) }},
		}
		for _, r := range runs {
			ref := New(sz.f, sz.nrhs)
			copy(ref.A, W0.A)
			r.run(KernelDefault, ref)
			fast := New(sz.f, sz.nrhs)
			copy(fast.A, W0.A)
			r.run(KernelFast, fast)
			again := New(sz.f, sz.nrhs)
			copy(again.A, W0.A)
			r.run(KernelFast, again)
			for p := range ref.A {
				if d := math.Abs(ref.A[p] - fast.A[p]); d > 1e-8*(1+math.Abs(ref.A[p])) {
					t.Fatalf("%s f=%d npiv=%d: fast deviates at %d: %v vs %v",
						r.name, sz.f, sz.npiv, p, fast.A[p], ref.A[p])
				}
				if math.Float64bits(fast.A[p]) != math.Float64bits(again.A[p]) {
					t.Fatalf("%s: fast kernel not deterministic at %d", r.name, p)
				}
			}
		}
	}
}
