package dense

import (
	"math"
	"math/rand"
	"testing"
)

// tileBounds returns the tile boundaries of [lo,hi) at multiples of b
// measured from 0 — the pure-function geometry the 2D partition uses.
func tileBounds(lo, hi, b int) [][2]int {
	var out [][2]int
	for r0 := lo; r0 < hi; {
		r1 := (r0/b + 1) * b
		if r1 > hi {
			r1 = hi
		}
		out = append(out, [2]int{r0, r1})
		r0 = r1
	}
	return out
}

// tilePartialLU factors f through the full 2D tile path: per panel, the
// diagonal-tile factor, the row-panel (U) solves per column tile, the
// column-panel (L) solves per row block, then the rank-k tile updates.
func tilePartialLU(f *Matrix, npiv int, tol float64, b int, kern Kernel) error {
	n := f.R
	for k0 := 0; k0 < npiv; k0 += b {
		k1 := min(k0+b, npiv)
		if err := PanelLUTile(f, k0, k1, tol); err != nil {
			return err
		}
		for _, ct := range tileBounds(k1, n, b) {
			LUPanelTrailing(f, k0, k1, ct[0], ct[1])
		}
		for _, rt := range tileBounds(k1, n, b) {
			kern.LUSolveRows(f, k0, k1, rt[0], rt[1])
		}
		for _, rt := range tileBounds(k1, n, b) {
			for _, ct := range tileBounds(k1, n, b) {
				kern.LUUpdateTile(f, k0, k1, rt[0], rt[1], ct[0], ct[1])
			}
		}
	}
	return nil
}

// tilePartialCholesky is the symmetric counterpart: diagonal tile, scale
// per row block, then the trailing update per lower-triangle tile.
func tilePartialCholesky(f *Matrix, npiv int, b int, kern Kernel) error {
	n := f.R
	for k0 := 0; k0 < npiv; k0 += b {
		k1 := min(k0+b, npiv)
		if err := PanelCholesky(f, k0, k1); err != nil {
			return err
		}
		for _, rt := range tileBounds(k1, n, b) {
			kern.CholeskyScaleRows(f, k0, k1, rt[0], rt[1])
		}
		for _, rt := range tileBounds(k1, n, b) {
			for _, ct := range tileBounds(k1, n, b) {
				if ct[0] > rt[1] {
					break // entirely above the diagonal
				}
				kern.CholeskyUpdateTile(f, k0, k1, rt[0], rt[1], ct[0], ct[1])
			}
		}
	}
	return nil
}

// TestTileLUBitwise pins the 2D guarantee for the default family: the
// composed tile path computes bitwise the element-wise PartialLU at every
// tile size, npiv (including npiv == n, the root-front case), and shape.
func TestTileLUBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{1, 9, 40, 97} {
		for _, npiv := range []int{0, 1, n / 2, n} {
			a := randomDiagDominant(n, rng)
			sparsify(a, 0.35, false, rng)
			ref := cloneM(a)
			if err := PartialLU(ref, npiv, 1e-14); err != nil {
				t.Fatal(err)
			}
			for _, b := range []int{1, 5, 16, 64, n, 2 * n} {
				if b < 1 {
					continue
				}
				got := cloneM(a)
				if err := tilePartialLU(got, npiv, 1e-14, b, KernelDefault); err != nil {
					t.Fatalf("n=%d npiv=%d b=%d: %v", n, npiv, b, err)
				}
				bitsEqual(t, "tile LU", ref, got)
			}
		}
	}
}

// TestTileCholeskyBitwise is the symmetric pin: the tile path replays
// PartialCholesky bit for bit on the lower triangle.
func TestTileCholeskyBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, n := range []int{1, 8, 33, 90} {
		for _, npiv := range []int{0, 1, n / 2, n} {
			a := randomSPD(n, rng)
			sparsify(a, 0.5, true, rng)
			ref := cloneM(a)
			if err := PartialCholesky(ref, npiv); err != nil {
				t.Fatal(err)
			}
			for _, b := range []int{1, 4, 16, 64, n, 2 * n} {
				got := cloneM(a)
				if err := tilePartialCholesky(got, npiv, b, KernelDefault); err != nil {
					t.Fatalf("n=%d npiv=%d b=%d: %v", n, npiv, b, err)
				}
				for i := 0; i < n; i++ {
					for j := 0; j <= i; j++ {
						if math.Float64bits(ref.At(i, j)) != math.Float64bits(got.At(i, j)) {
							t.Fatalf("n=%d npiv=%d b=%d: (%d,%d) %g vs %g",
								n, npiv, b, i, j, ref.At(i, j), got.At(i, j))
						}
					}
				}
			}
		}
	}
}

// TestTileFastMatchesFast1D pins the fast family's grid independence: the
// tile path through KernelFast computes bitwise the 1D fast kernels for
// the same panel width — the k-grouping is a function of the panel, not of
// the column tiling — so a fast 2D factorization reproduces the fast
// sequential one.
func TestTileFastMatchesFast1D(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	n := 83
	for _, npiv := range []int{37, n} {
		for _, b := range []int{16, 32} {
			lu := randomDiagDominant(n, rng)
			sparsify(lu, 0.3, false, rng)
			ref := cloneM(lu)
			if err := KernelFast.PartialLU(ref, npiv, 1e-14, b); err != nil {
				t.Fatal(err)
			}
			got := cloneM(lu)
			if err := tilePartialLU(got, npiv, 1e-14, b, KernelFast); err != nil {
				t.Fatal(err)
			}
			bitsEqual(t, "tile fast LU", ref, got)

			spd := randomSPD(n, rng)
			sparsify(spd, 0.5, true, rng)
			refC := cloneM(spd)
			if err := KernelFast.PartialCholesky(refC, npiv, b); err != nil {
				t.Fatal(err)
			}
			gotC := cloneM(spd)
			if err := tilePartialCholesky(gotC, npiv, b, KernelFast); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				for j := 0; j <= i; j++ {
					if math.Float64bits(refC.At(i, j)) != math.Float64bits(gotC.At(i, j)) {
						t.Fatalf("npiv=%d b=%d: (%d,%d) %g vs %g",
							npiv, b, i, j, refC.At(i, j), gotC.At(i, j))
					}
				}
			}
		}
	}
}

// TestTileGridIndependence pins that the tile size used for the *trailing*
// decomposition may differ per phase call without changing bits, as long
// as the panel sequence is fixed: update tiles of mixed widths produce the
// same factors. This is the freedom the scheduler relies on when a grid
// shape changes the tile-to-worker assignment but never the arithmetic.
func TestTileGridIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	n, npiv, b := 71, 71, 16
	a := randomDiagDominant(n, rng)
	sparsify(a, 0.3, false, rng)
	ref := cloneM(a)
	if err := tilePartialLU(ref, npiv, 1e-14, b, KernelDefault); err != nil {
		t.Fatal(err)
	}
	// Same panels, but trailing rows/columns cut at irregular boundaries.
	got := cloneM(a)
	for k0 := 0; k0 < npiv; k0 += b {
		k1 := min(k0+b, npiv)
		if err := PanelLUTile(got, k0, k1, 1e-14); err != nil {
			t.Fatal(err)
		}
		for c0 := k1; c0 < n; {
			c1 := min(c0+7, n)
			LUPanelTrailing(got, k0, k1, c0, c1)
			c0 = c1
		}
		for r0 := k1; r0 < n; {
			r1 := min(r0+11, n)
			KernelDefault.LUSolveRows(got, k0, k1, r0, r1)
			r0 = r1
		}
		for r0 := k1; r0 < n; {
			r1 := min(r0+13, n)
			for c0 := k1; c0 < n; {
				c1 := min(c0+9, n)
				KernelDefault.LUUpdateTile(got, k0, k1, r0, r1, c0, c1)
				c0 = c1
			}
			r0 = r1
		}
	}
	bitsEqual(t, "irregular tiles", ref, got)
}
