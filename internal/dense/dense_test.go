package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomDiagDominant(n int, rng *rand.Rand) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		var rowSum float64
		for j := 0; j < n; j++ {
			if i != j {
				v := rng.NormFloat64()
				m.Set(i, j, v)
				rowSum += math.Abs(v)
			}
		}
		m.Set(i, i, rowSum+1+rng.Float64())
	}
	return m
}

func randomSPD(n int, rng *rand.Rand) *Matrix {
	b := New(n, n)
	for i := range b.A {
		b.A[i] = rng.NormFloat64()
	}
	// A = B*B' + n*I
	m := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += b.At(i, k) * b.At(j, k)
			}
			m.Set(i, j, s)
		}
		m.Add(i, i, float64(n))
	}
	return m
}

func cloneM(m *Matrix) *Matrix {
	c := New(m.R, m.C)
	copy(c.A, m.A)
	return c
}

func TestPartialLUFull(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 12
	a := randomDiagDominant(n, rng)
	f := cloneM(a)
	if err := PartialLU(f, n, 1e-14); err != nil {
		t.Fatal(err)
	}
	// Reconstruct A = L*U and compare.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			kmax := i
			if j < i {
				kmax = j
			}
			for k := 0; k < kmax; k++ {
				s += f.At(i, k) * f.At(k, j)
			}
			if i <= j {
				s += f.At(i, j) // U entry, L(i,i)=1
			} else {
				s += f.At(i, j) * f.At(j, j) // L(i,j)*U(j,j)
			}
			if math.Abs(s-a.At(i, j)) > 1e-9 {
				t.Fatalf("LU reconstruction off at (%d,%d): %g vs %g", i, j, s, a.At(i, j))
			}
		}
	}
}

func TestPartialLUSchurComplement(t *testing.T) {
	// Partial factorization's trailing block must equal the Schur
	// complement A22 - A21*inv(A11)*A12 (checked against full elimination).
	rng := rand.New(rand.NewSource(2))
	n, p := 10, 4
	a := randomDiagDominant(n, rng)
	f := cloneM(a)
	if err := PartialLU(f, p, 1e-14); err != nil {
		t.Fatal(err)
	}
	// Dense reference: run full Gaussian elimination p steps on a copy.
	g := cloneM(a)
	for k := 0; k < p; k++ {
		for i := k + 1; i < n; i++ {
			l := g.At(i, k) / g.At(k, k)
			for j := k + 1; j < n; j++ {
				g.Add(i, j, -l*g.At(k, j))
			}
		}
	}
	for i := p; i < n; i++ {
		for j := p; j < n; j++ {
			if math.Abs(f.At(i, j)-g.At(i, j)) > 1e-9 {
				t.Fatalf("Schur mismatch at (%d,%d): %g vs %g", i, j, f.At(i, j), g.At(i, j))
			}
		}
	}
}

func TestPartialLUSmallPivot(t *testing.T) {
	f := New(2, 2) // zero matrix
	if err := PartialLU(f, 2, 1e-14); err == nil {
		t.Fatal("expected ErrSmallPivot")
	}
}

func TestPartialLUBadArgs(t *testing.T) {
	if err := PartialLU(&Matrix{R: 2, C: 3, A: make([]float64, 6)}, 1, 0); err == nil {
		t.Error("non-square accepted")
	}
	if err := PartialLU(New(3, 3), 5, 0); err == nil {
		t.Error("npiv out of range accepted")
	}
}

func TestPartialCholeskyFull(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 10
	a := randomSPD(n, rng)
	f := cloneM(a)
	if err := PartialCholesky(f, n); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k <= j; k++ {
				s += f.At(i, k) * f.At(j, k)
			}
			if math.Abs(s-a.At(i, j)) > 1e-8*(1+math.Abs(a.At(i, j))) {
				t.Fatalf("LL' off at (%d,%d): %g vs %g", i, j, s, a.At(i, j))
			}
		}
	}
}

func TestPartialCholeskySchur(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, p := 9, 3
	a := randomSPD(n, rng)
	f := cloneM(a)
	if err := PartialCholesky(f, p); err != nil {
		t.Fatal(err)
	}
	// Reference via full symmetric elimination.
	g := cloneM(a)
	for k := 0; k < p; k++ {
		d := g.At(k, k)
		for i := k + 1; i < n; i++ {
			for j := k + 1; j <= i; j++ {
				g.Add(i, j, -g.At(i, k)*g.At(j, k)/d)
			}
		}
	}
	for i := p; i < n; i++ {
		for j := p; j <= i; j++ {
			if math.Abs(f.At(i, j)-g.At(i, j)) > 1e-8 {
				t.Fatalf("Schur mismatch at (%d,%d): %g vs %g", i, j, f.At(i, j), g.At(i, j))
			}
		}
	}
}

func TestPartialCholeskyRejectsIndefinite(t *testing.T) {
	f := New(2, 2)
	f.Set(0, 0, -1)
	if err := PartialCholesky(f, 2); err == nil {
		t.Fatal("negative diagonal accepted")
	}
}

func TestExtendAdd(t *testing.T) {
	f := New(4, 4)
	cb := New(2, 2)
	cb.Set(0, 0, 1)
	cb.Set(0, 1, 2)
	cb.Set(1, 0, 3)
	cb.Set(1, 1, 4)
	ExtendAdd(f, cb, []int{1, 3})
	if f.At(1, 1) != 1 || f.At(1, 3) != 2 || f.At(3, 1) != 3 || f.At(3, 3) != 4 {
		t.Fatalf("scatter wrong: %v", f.A)
	}
	// Accumulation.
	ExtendAdd(f, cb, []int{1, 3})
	if f.At(3, 3) != 8 {
		t.Errorf("accumulation failed: %v", f.At(3, 3))
	}
}

func TestExtendAddLower(t *testing.T) {
	f := New(3, 3)
	cb := New(2, 2)
	cb.Set(0, 0, 5)
	cb.Set(1, 0, 6)
	cb.Set(1, 1, 7)
	ExtendAddLower(f, cb, []int{0, 2})
	if f.At(0, 0) != 5 || f.At(2, 0) != 6 || f.At(2, 2) != 7 {
		t.Fatalf("lower scatter wrong: %+v", f.A)
	}
	if f.At(0, 2) != 0 {
		t.Error("upper triangle touched")
	}
}

func TestMatVec(t *testing.T) {
	m := New(2, 3)
	copy(m.A, []float64{1, 2, 3, 4, 5, 6})
	y := []float64{1, 1}
	MatVec(m, []float64{1, 0, -1}, y, 2)
	if y[0] != 1+2*(-2) || y[1] != 1+2*(-2) {
		t.Fatalf("MatVec wrong: %v", y)
	}
}

func TestPartialLUProperty(t *testing.T) {
	// Property: solving LUx = b via the factored front reproduces b = Ax.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		a := randomDiagDominant(n, rng)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		MatVec(a, x, b, 1)
		lu := cloneM(a)
		if err := PartialLU(lu, n, 1e-14); err != nil {
			return false
		}
		// Forward: y = L^-1 b
		y := append([]float64(nil), b...)
		for i := 0; i < n; i++ {
			for k := 0; k < i; k++ {
				y[i] -= lu.At(i, k) * y[k]
			}
		}
		// Backward: x = U^-1 y
		for i := n - 1; i >= 0; i-- {
			for k := i + 1; k < n; k++ {
				y[i] -= lu.At(i, k) * y[k]
			}
			y[i] /= lu.At(i, i)
		}
		for i := range x {
			if math.Abs(y[i]-x[i]) > 1e-7*(1+math.Abs(x[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
