package dense

import (
	"math"
	"math/rand"
	"testing"
)

// sparsify zeroes a fraction of the off-diagonal entries (symmetrically for
// SPD inputs) so the kernels' zero-skip short-circuits are exercised — an
// assembled front is full of structural zeros, and the blocked kernels must
// replicate the reference kernels' skips bit for bit.
func sparsify(m *Matrix, frac float64, sym bool, rng *rand.Rand) {
	for i := 0; i < m.R; i++ {
		for j := 0; j < i; j++ {
			if rng.Float64() < frac {
				m.Set(i, j, 0)
				if sym {
					m.Set(j, i, 0)
				}
			}
		}
	}
	if sym {
		// Restore diagonal dominance so the matrix stays SPD.
		for i := 0; i < m.R; i++ {
			var s float64
			for j := 0; j < m.R; j++ {
				if j != i {
					s += math.Abs(m.At(i, j))
				}
			}
			m.Set(i, i, s+1)
		}
	}
}

func bitsEqual(t *testing.T, name string, a, b *Matrix) {
	t.Helper()
	for p := range a.A {
		if math.Float64bits(a.A[p]) != math.Float64bits(b.A[p]) {
			t.Fatalf("%s: entry %d differs bitwise: %g (%#x) vs %g (%#x)",
				name, p, a.A[p], math.Float64bits(a.A[p]), b.A[p], math.Float64bits(b.A[p]))
		}
	}
}

// TestBlockedLUMatchesNaiveExactly checks the headline guarantee: the
// blocked kernel performs the same operations in the same per-element
// order as PartialLU, so for the same elimination order the result is
// bitwise identical — at every panel width, including ones that do not
// divide npiv or n.
func TestBlockedLUMatchesNaiveExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 5, 17, 40, 73} {
		for _, npiv := range []int{0, 1, n / 3, n - 1, n} {
			if npiv < 0 {
				continue
			}
			a := randomDiagDominant(n, rng)
			sparsify(a, 0.4, false, rng)
			ref := cloneM(a)
			if err := PartialLU(ref, npiv, 1e-14); err != nil {
				t.Fatal(err)
			}
			for _, block := range []int{1, 3, 8, n, 2 * n} {
				got := cloneM(a)
				if err := BlockedPartialLU(got, npiv, 1e-14, block); err != nil {
					t.Fatalf("n=%d npiv=%d block=%d: %v", n, npiv, block, err)
				}
				bitsEqual(t, "LU", ref, got)
			}
		}
	}
}

// TestBlockedCholeskyMatchesNaiveExactly is the symmetric counterpart:
// panel factorization + two slave phases (scale, trailing update) replay
// PartialCholesky bit for bit.
func TestBlockedCholeskyMatchesNaiveExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, n := range []int{1, 6, 19, 33, 50} {
		for _, npiv := range []int{0, 1, n / 2, n} {
			a := randomSPD(n, rng)
			sparsify(a, 0.5, true, rng)
			ref := cloneM(a)
			if err := PartialCholesky(ref, npiv); err != nil {
				t.Fatal(err)
			}
			for _, block := range []int{1, 4, 7, n, 3 * n} {
				got := cloneM(a)
				if err := BlockedPartialCholesky(got, npiv, block); err != nil {
					t.Fatalf("n=%d npiv=%d block=%d: %v", n, npiv, block, err)
				}
				// Compare the lower triangle and pivot rows (the parts a
				// symmetric partial factorization defines).
				for i := 0; i < n; i++ {
					for j := 0; j <= i; j++ {
						if math.Float64bits(ref.At(i, j)) != math.Float64bits(got.At(i, j)) {
							t.Fatalf("n=%d npiv=%d block=%d: (%d,%d) %g vs %g",
								n, npiv, block, i, j, ref.At(i, j), got.At(i, j))
						}
					}
				}
			}
		}
	}
}

// TestBlockedPartitionInvariance checks that the row grouping does not
// affect the bits: applying a panel row by row, in one big block, or in
// ragged blocks gives identical trailing matrices. This is the property
// the within-front parallel executor relies on for determinism across
// worker counts.
func TestBlockedPartitionInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	n, npiv := 31, 12
	a := randomDiagDominant(n, rng)
	sparsify(a, 0.3, false, rng)

	factor := func(rowBlocks []int) *Matrix { // rowBlocks: boundaries after npiv
		f := cloneM(a)
		if err := PanelLU(f, 0, npiv, 1e-14); err != nil {
			t.Fatal(err)
		}
		prev := npiv
		for _, b := range rowBlocks {
			LUApplyRows(f, 0, npiv, prev, b)
			prev = b
		}
		LUApplyRows(f, 0, npiv, prev, n)
		return f
	}
	ref := factor(nil)
	bitsEqual(t, "one-block", ref, factor([]int{}))
	bitsEqual(t, "ragged", ref, factor([]int{npiv + 1, npiv + 2, 20, 27}))
	perRow := make([]int, 0, n-npiv)
	for r := npiv + 1; r < n; r++ {
		perRow = append(perRow, r)
	}
	bitsEqual(t, "per-row", ref, factor(perRow))

	naive := cloneM(a)
	if err := PartialLU(naive, npiv, 1e-14); err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "vs-naive", naive, ref)
}

// TestBlockedResidual validates the numerics end to end: a full blocked LU
// solves a random system to machine-level residual (the tolerance-style
// check for elimination orders that are *not* replicated, e.g. when a
// caller compares against an externally factored matrix).
func TestBlockedResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	n := 48
	a := randomDiagDominant(n, rng)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	MatVec(a, x, b, 1)
	lu := cloneM(a)
	if err := BlockedPartialLU(lu, n, 1e-14, 8); err != nil {
		t.Fatal(err)
	}
	y := append([]float64(nil), b...)
	for i := 0; i < n; i++ {
		for k := 0; k < i; k++ {
			y[i] -= lu.At(i, k) * y[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		for k := i + 1; k < n; k++ {
			y[i] -= lu.At(i, k) * y[k]
		}
		y[i] /= lu.At(i, i)
	}
	for i := range x {
		if math.Abs(y[i]-x[i]) > 1e-9*(1+math.Abs(x[i])) {
			t.Fatalf("solve off at %d: %g vs %g", i, y[i], x[i])
		}
	}
}

// TestBlockedErrors covers the validation and failure paths.
func TestBlockedErrors(t *testing.T) {
	if err := BlockedPartialLU(&Matrix{R: 2, C: 3, A: make([]float64, 6)}, 1, 0, 4); err == nil {
		t.Error("non-square accepted")
	}
	if err := BlockedPartialLU(New(3, 3), 5, 0, 4); err == nil {
		t.Error("npiv out of range accepted")
	}
	if err := BlockedPartialLU(New(2, 2), 2, 1e-14, 4); err == nil {
		t.Error("zero pivot accepted")
	}
	f := New(2, 2)
	f.Set(0, 0, -1)
	if err := BlockedPartialCholesky(f, 2, 4); err == nil {
		t.Error("negative diagonal accepted")
	}
	if err := BlockedPartialCholesky(New(3, 3), -1, 4); err == nil {
		t.Error("negative npiv accepted")
	}
}

// TestBlockedKernelsZeroAlloc pins the legacy blocked kernels' stack
// discipline: at the default panel width, the package-level row kernels —
// what the 1D executor and the blocked drivers call per row block — run
// without a single heap allocation.
func TestBlockedKernelsZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n, npiv := 192, DefaultBlockRows
	lu := randomDiagDominant(n, rng)
	if err := PanelLU(lu, 0, npiv, 1e-14); err != nil {
		t.Fatal(err)
	}
	ch := randomSPD(n, rng)
	if err := PanelCholesky(ch, 0, npiv); err != nil {
		t.Fatal(err)
	}
	CholeskyScaleRows(ch, 0, npiv, npiv, n)
	allocs := testing.AllocsPerRun(10, func() {
		LUApplyRows(lu, 0, npiv, npiv, n)
		CholeskyScaleRows(ch, 0, npiv, npiv, n)
		CholeskyUpdateRows(ch, 0, npiv, npiv, n)
	})
	if allocs != 0 {
		t.Fatalf("blocked kernels allocate %v per run, want 0", allocs)
	}
}
