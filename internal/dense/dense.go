// Package dense provides the dense kernels of the multifrontal method:
// partial LU and partial Cholesky factorization of frontal matrices, the
// corresponding triangular solves, and the extend-add assembly operation.
//
// Fronts are square row-major matrices. A partial factorization eliminates
// the leading npiv pivots and leaves the Schur complement (the contribution
// block) in the trailing (n-npiv) x (n-npiv) block.
package dense

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	R, C int
	A    []float64
}

// New returns a zeroed r x c matrix.
func New(r, c int) *Matrix {
	return &Matrix{R: r, C: c, A: make([]float64, r*c)}
}

// At returns element (i,j).
func (m *Matrix) At(i, j int) float64 { return m.A[i*m.C+j] }

// Set assigns element (i,j).
func (m *Matrix) Set(i, j int, v float64) { m.A[i*m.C+j] = v }

// Add accumulates v into element (i,j).
func (m *Matrix) Add(i, j int, v float64) { m.A[i*m.C+j] += v }

// Row returns row i (aliased).
func (m *Matrix) Row(i int) []float64 { return m.A[i*m.C : (i+1)*m.C] }

// ErrSmallPivot is returned when a pivot falls below the stability
// threshold. The solver uses static (no) pivoting — the multifrontal
// scheduling experiments need deterministic structure — so callers must
// supply numerically well-behaved systems (the generators in
// internal/sparse produce diagonally dominant or SPD matrices).
var ErrSmallPivot = errors.New("dense: pivot below threshold (matrix requires numerical pivoting)")

func errSmallPivotAt(k int, pk float64) error {
	return fmt.Errorf("%w: pivot %d = %g", ErrSmallPivot, k, pk)
}

func errNonPositiveDiag(k int, d float64) error {
	return fmt.Errorf("%w: non-positive diagonal %g at %d", ErrSmallPivot, d, k)
}

// checkPartial validates the front/npiv pair of a partial factorization.
func checkPartial(f *Matrix, npiv int) error {
	if f.R != f.C {
		return fmt.Errorf("dense: front not square (%dx%d)", f.R, f.C)
	}
	if npiv < 0 || npiv > f.R {
		return fmt.Errorf("dense: npiv %d out of range for order %d", npiv, f.R)
	}
	return nil
}

// PartialLU performs an in-place right-looking partial LU factorization of
// the leading npiv columns of the n x n front f, without pivoting. On
// return the unit-lower trapezoid is in the strict lower part of columns
// 0..npiv-1, U in rows 0..npiv-1, and the Schur complement in the trailing
// block.
func PartialLU(f *Matrix, npiv int, tol float64) error {
	if err := checkPartial(f, npiv); err != nil {
		return err
	}
	n := f.R
	for k := 0; k < npiv; k++ {
		pk := f.At(k, k)
		if math.Abs(pk) <= tol {
			return errSmallPivotAt(k, pk)
		}
		inv := 1 / pk
		rowK := f.Row(k)
		for i := k + 1; i < n; i++ {
			rowI := f.Row(i)
			l := rowI[k] * inv
			if l == 0 {
				continue
			}
			rowI[k] = l
			for j := k + 1; j < n; j++ {
				rowI[j] -= l * rowK[j]
			}
		}
	}
	return nil
}

// PartialCholesky performs an in-place partial Cholesky factorization
// (lower) of the leading npiv columns of the symmetric positive definite
// front f, leaving the Schur complement in the trailing block. Only the
// lower triangle is referenced and updated.
func PartialCholesky(f *Matrix, npiv int) error {
	if err := checkPartial(f, npiv); err != nil {
		return err
	}
	n := f.R
	for k := 0; k < npiv; k++ {
		d := f.At(k, k)
		if d <= 0 {
			return errNonPositiveDiag(k, d)
		}
		d = math.Sqrt(d)
		f.Set(k, k, d)
		inv := 1 / d
		for i := k + 1; i < n; i++ {
			f.Set(i, k, f.At(i, k)*inv)
		}
		for j := k + 1; j < n; j++ {
			ljk := f.At(j, k)
			if ljk == 0 {
				continue
			}
			for i := j; i < n; i++ {
				f.Add(i, j, -f.At(i, k)*ljk)
			}
		}
	}
	return nil
}

// ExtendAdd scatters the child contribution block cb (order len(map_))
// into the parent front f: cb(i,j) is added at f(map_[i], map_[j]).
// Consecutive index runs in map_ are collapsed into contiguous vector
// adds (see extendadd.go); callers that scatter many blocks should
// precompute the runs once and use ExtendAddRuns directly.
func ExtendAdd(f *Matrix, cb *Matrix, map_ []int) {
	var buf [32]IndexRun
	ExtendAddRuns(f, cb, map_, AppendRuns(buf[:0], map_))
}

// ExtendAddLower scatters the lower triangle of cb into the lower triangle
// of f (symmetric fronts). map_ must be increasing so triangles map to
// triangles. Run-merged like ExtendAdd.
func ExtendAddLower(f *Matrix, cb *Matrix, map_ []int) {
	var buf [32]IndexRun
	ExtendAddLowerRuns(f, cb, map_, AppendRuns(buf[:0], map_))
}

// MatVec computes y += alpha * M * x for a dense matrix.
func MatVec(m *Matrix, x, y []float64, alpha float64) {
	if len(x) != m.C || len(y) != m.R {
		panic("dense: MatVec dimension mismatch")
	}
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] += alpha * s
	}
}
