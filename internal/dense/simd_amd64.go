// amd64 binding of the SIMD primitives: CPUID feature detection and the
// dispatch between the AVX2/FMA assembly routines (simd_amd64.s) and
// their portable math.FMA twins (simd_prims.go). The two paths are
// bitwise identical, so the dispatch is a pure performance decision —
// REPRO_SIMD=off (read once at init) forces the portable path without
// changing any result, which is how CI exercises the fallback on amd64.

package dense

import "os"

//go:noescape
func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbvAsm() (eax, edx uint32)

//go:noescape
func fnmaSpan1Asm(d, a *float64, n int, la float64)

//go:noescape
func fnmaSpan2Asm(d, a, b *float64, n int, la, lb float64)

//go:noescape
func fnmaSpan4Asm(d, a, b, c, e *float64, n int, la, lb, lc, ld float64)

//go:noescape
func dot1Asm(p, q *float64, n int) float64

//go:noescape
func dot4Asm(p, q0, q1, q2, q3 *float64, n int) (s0, s1, s2, s3 float64)

//go:noescape
func addSpanAsm(d, s *float64, n int)

//go:noescape
func scatterRuns4Asm(d0, d1, d2, d3, s0, s1, s2, s3 *float64, runs *IndexRun, nruns int)

// detectSIMD reports whether the CPU and OS support the vector path:
// FMA and AVX2 instructions with OS-managed YMM state (CPUID leaves 1
// and 7, XCR0 bits 1-2).
func detectSIMD() bool {
	maxLeaf, _, _, _ := cpuidAsm(0, 0)
	if maxLeaf < 7 {
		return false
	}
	const (
		cpuFMA     = 1 << 12 // leaf 1 ECX
		cpuOSXSAVE = 1 << 27 // leaf 1 ECX
		cpuAVX     = 1 << 28 // leaf 1 ECX
		cpuAVX2    = 1 << 5  // leaf 7 EBX
		xcr0YMM    = 0x6     // XMM+YMM state enabled by the OS
	)
	_, _, ecx1, _ := cpuidAsm(1, 0)
	if ecx1&cpuFMA == 0 || ecx1&cpuOSXSAVE == 0 || ecx1&cpuAVX == 0 {
		return false
	}
	if xlo, _ := xgetbvAsm(); xlo&xcr0YMM != xcr0YMM {
		return false
	}
	_, ebx7, _, _ := cpuidAsm(7, 0)
	return ebx7&cpuAVX2 != 0
}

var (
	// simdHW: the hardware vector path exists on this machine.
	simdHW = detectSIMD()
	// simdEnabled: the vector path is actually dispatched to. Identical
	// results either way; REPRO_SIMD=off pins the portable path.
	simdEnabled = simdHW && os.Getenv("REPRO_SIMD") != "off"
)

func fnmaSpan1(d, a []float64, la float64) {
	if simdEnabled && len(d) > 0 {
		fnmaSpan1Asm(&d[0], &a[0], len(d), la)
		return
	}
	fnmaSpan1Go(d, a, la)
}

func fnmaSpan2(d, a, b []float64, la, lb float64) {
	if simdEnabled && len(d) > 0 {
		fnmaSpan2Asm(&d[0], &a[0], &b[0], len(d), la, lb)
		return
	}
	fnmaSpan2Go(d, a, b, la, lb)
}

func fnmaSpan4(d, a, b, c, e []float64, la, lb, lc, ld float64) {
	if simdEnabled && len(d) > 0 {
		fnmaSpan4Asm(&d[0], &a[0], &b[0], &c[0], &e[0], len(d), la, lb, lc, ld)
		return
	}
	fnmaSpan4Go(d, a, b, c, e, la, lb, lc, ld)
}

func dotOne(p, q []float64) float64 {
	if simdEnabled && len(p) > 0 {
		return dot1Asm(&p[0], &q[0], len(p))
	}
	return dotOneGo(p, q)
}

func dotFour(p, q0, q1, q2, q3 []float64) (s0, s1, s2, s3 float64) {
	if simdEnabled && len(p) > 0 {
		return dot4Asm(&p[0], &q0[0], &q1[0], &q2[0], &q3[0], len(p))
	}
	return dotFourGo(p, q0, q1, q2, q3)
}

// addSpanFast is addSpanGo through the vector unit when available —
// plain element adds either way, so the result is bitwise identical and
// every caller (including the bitwise-pinned extend-add) may use it.
func addSpanFast(d, s []float64) {
	if simdEnabled && len(s) > 0 {
		addSpanAsm(&d[0], &s[0], len(s))
		return
	}
	addSpanGo(d, s)
}

// scatterRuns4 is scatterRuns4Go through the vector unit when available —
// plain element adds either way, bitwise identical. One call covers all
// the runs of a 4-row extend-add group: the run decode moves into the
// assembly loop, so fragmented maps pay no per-run call overhead and even
// length-4 runs fill a YMM register.
func scatterRuns4(d0, d1, d2, d3, s0, s1, s2, s3 []float64, runs []IndexRun) {
	if simdEnabled && len(runs) > 0 && len(s0) > 0 {
		scatterRuns4Asm(&d0[0], &d1[0], &d2[0], &d3[0], &s0[0], &s1[0], &s2[0], &s3[0],
			&runs[0], len(runs))
		return
	}
	scatterRuns4Go(d0, d1, d2, d3, s0, s1, s2, s3, runs)
}
