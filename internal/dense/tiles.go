// Tile-level variants of the partial factorization kernels — the numeric
// layer of the 2D (type-3) within-front decomposition. Where the 1D row
// kernels of blocked.go/kernels.go hand a slave a whole trailing row block
// (all columns), the tile kernels split one panel step of a front into the
// classic 2D pieces:
//
//	PanelLUTile            diagonal-tile factor: the panel pivots
//	                       eliminated within the panel's own rows *and*
//	                       columns only
//	LUPanelTrailing        row-panel solve: the panel rows' trailing
//	                       columns (the U tiles), per column tile
//	LUSolveRows            column-panel solve: a trailing row block's
//	                       multipliers + within-panel updates (the L tile)
//	LUUpdateTile           rank-k update of one trailing rows x columns
//	                       tile from the already-solved L tile and U tiles
//	CholeskyUpdateTile     symmetric trailing update restricted to one
//	                       column tile of the lower triangle
//
// (The symmetric column-panel solve is CholeskyScaleRows unchanged — it is
// already restricted to the panel columns — and the symmetric diagonal
// tile is PanelCholesky, which never touched trailing columns.)
//
// Determinism discipline, continuing blocked.go's: the KernelDefault tile
// kernels perform the same floating-point operations in the same
// per-element order as the reference kernels — each element still receives
// its pivots in ascending order with the reference's exact zero-skips, and
// a tile boundary only changes which loop visits the element — so a 2D
// factorization is bitwise identical to the element-wise one at any tile
// grid. One caveat inherits from splitting the LU solve and update into
// separate tasks: the update skips a pivot by testing the *stored*
// multiplier, which matches the reference's computed-multiplier skip
// unless a nonzero entry's scaling underflowed to exactly zero — possible
// only for deeply subnormal front entries (|v| < ~1e-312), which the
// solver's numerical contract (static pivoting on well-scaled systems,
// see ErrSmallPivot) already excludes. The KernelFast tile kernels reuse the fast family's k-grouping
// (rank-4 fused LU sweeps, dense multipliers, no skips) restricted to the
// tile's columns, so fast-2D is bitwise identical to fast-1D for a fixed
// panel width. In both families every element is written by exactly one
// task per phase: there are no cross-tile reductions to pin.
package dense

import "math"

// PanelLUTile eliminates pivots [k0,k1) of f within rows *and columns*
// [k0,k1) only — the diagonal-tile factor of a 2D panel step. It computes
// the same multipliers and within-tile updates as PanelLU, which
// additionally sweeps the panel rows' trailing columns; with the 2D
// decomposition those columns are applied per column tile by
// LUPanelTrailing instead.
func PanelLUTile(f *Matrix, k0, k1 int, tol float64) error {
	for k := k0; k < k1; k++ {
		pk := f.At(k, k)
		if math.Abs(pk) <= tol {
			return errSmallPivotAt(k, pk)
		}
		inv := 1 / pk
		rowK := f.Row(k)
		for i := k + 1; i < k1; i++ {
			rowI := f.Row(i)
			l := rowI[k] * inv
			if l == 0 {
				continue
			}
			rowI[k] = l
			for j := k + 1; j < k1; j++ {
				rowI[j] -= l * rowK[j]
			}
		}
	}
	return nil
}

// LUPanelTrailing applies the diagonal tile's within-panel multipliers to
// the panel rows' columns [c0,c1) (c0 >= k1) — the row-panel (U-tile)
// solve. Requires PanelLUTile to have finalized the multipliers. Per
// element it replays PanelLU's update order exactly: row i receives pivots
// k0..i-1 ascending, skipping zero multipliers, and a pivot row's trailing
// slice is final before any later row reads it. Disjoint column tiles are
// independent. Both kernel families compute these bits (the master panel
// runs the shared PanelLU in 1D mode for both).
func LUPanelTrailing(f *Matrix, k0, k1, c0, c1 int) {
	if c1 <= c0 || k1 <= k0 {
		return
	}
	n := f.C
	var lb [kernStackPanel]float64
	var kb [kernStackPanel]int32
	ls, ki := lb[:], kb[:]
	if kw := k1 - k0; kw > kernStackPanel {
		ls, ki = make([]float64, kw), make([]int32, kw)
	}
	for i := k0 + 1; i < k1; i++ {
		rowI := f.A[i*n : i*n+n : i*n+n]
		nnz := 0
		for k := k0; k < i; k++ {
			if l := rowI[k]; l != 0 {
				ls[nnz], ki[nnz] = l, int32(k-k0)
				nnz++
			}
		}
		ri := rowI[c0:c1]
		t := 0
		for ; t+1 < nnz; t += 2 {
			ka, kb2 := int(ki[t])+k0, int(ki[t+1])+k0
			rank2Sub(ri, f.A[ka*n+c0:ka*n+c1:ka*n+c1], f.A[kb2*n+c0:kb2*n+c1:kb2*n+c1], ls[t], ls[t+1])
		}
		if t < nnz {
			ka := int(ki[t]) + k0
			rank1Sub(ri, f.A[ka*n+c0:ka*n+c1:ka*n+c1], ls[t])
		}
	}
}

// LUSolveRows computes the multipliers and within-panel updates of rows
// [r0,r1) (r0 >= k1) against the eliminated panel [k0,k1) — the
// column-panel (L-tile) solve, i.e. exactly the panel-column part of
// LUApplyRows without the trailing sweep. After it, columns [k0,k1) of the
// rows hold the final multipliers LUUpdateTile reads. Rows are independent
// given the diagonal tile.
func (kern Kernel) LUSolveRows(f *Matrix, k0, k1, r0, r1 int) {
	if r1 <= r0 || k1 <= k0 {
		return
	}
	n := f.C
	kw := k1 - k0
	var ib [kernStackPanel]float64
	invs := ib[:]
	if kw > kernStackPanel {
		invs = make([]float64, kw)
	}
	for k := k0; k < k1; k++ {
		invs[k-k0] = 1 / f.A[k*n+k]
	}
	kern = kern.Resolve()
	if kern == KernelSIMD {
		for i := r0; i < r1; i++ {
			luSolveRowSIMD(f, f.A[i*n:i*n+n:i*n+n], k0, k1, invs)
		}
		return
	}
	fast := kern == KernelFast
	for i := r0; i < r1; i++ {
		rowI := f.A[i*n : i*n+n : i*n+n]
		for k := k0; k < k1; k++ {
			l := rowI[k] * invs[k-k0]
			if l == 0 && !fast {
				continue // the reference's zero-skip; fast mode is dense
			}
			rowI[k] = l
			rowK := f.A[k*n : k*n+n : k*n+n]
			for j := k + 1; j < k1; j++ {
				rowI[j] -= l * rowK[j]
			}
		}
	}
}

// LUUpdateTile applies the panel's rank-k update to the tile rows [r0,r1)
// x columns [c0,c1) (r0, c0 >= k1), reading the multipliers LUSolveRows
// left in columns [k0,k1) and the panel rows' columns [c0,c1) finalized by
// LUPanelTrailing (or the 1D master's PanelLU). Per element, KernelDefault
// replays the reference order — pivots ascending, skipping zero
// multipliers, one multiply one subtract each — and KernelFast replays the
// fast family's rank-4 fused k-grouping, so each mode computes the same
// bits as its 1D counterpart at any tile grid.
func (kern Kernel) LUUpdateTile(f *Matrix, k0, k1, r0, r1, c0, c1 int) {
	if r1 <= r0 || c1 <= c0 || k1 <= k0 {
		return
	}
	n := f.C
	kw := k1 - k0
	m := c1 - c0
	var rb [kernStackPanel][]float64
	rks := rb[:]
	if kw > kernStackPanel {
		rks = make([][]float64, kw)
	}
	for k := k0; k < k1; k++ {
		rks[k-k0] = f.A[k*n+c0 : k*n+c1 : k*n+c1]
	}
	kern = kern.Resolve()
	if kern == KernelSIMD {
		for i := r0; i < r1; i++ {
			rowI := f.A[i*n : i*n+n : i*n+n]
			simdTrailingUpdate(rowI[c0:c1:c1], rowI, rks, k0, k1)
		}
		return
	}
	if kern == KernelFast {
		for i := r0; i < r1; i++ {
			rowI := f.A[i*n : i*n+n : i*n+n]
			ri := rowI[c0:c1:c1]
			k := k0
			for ; k+3 < k1; k += 4 {
				la, lc := rowI[k], rowI[k+2]
				lb, ld := rowI[k+1], rowI[k+3]
				ra := rks[k-k0]
				rbv := rks[k+1-k0]
				rc := rks[k+2-k0]
				rd := rks[k+3-k0]
				for j := 0; j < m; j++ {
					ri[j] -= la*ra[j] + lb*rbv[j] + lc*rc[j] + ld*rd[j]
				}
			}
			for ; k+1 < k1; k += 2 {
				la, lb := rowI[k], rowI[k+1]
				ra := rks[k-k0]
				rbv := rks[k+1-k0]
				for j := 0; j < m; j++ {
					ri[j] -= la*ra[j] + lb*rbv[j]
				}
			}
			if k < k1 {
				rank1Sub(ri, rks[k-k0], rowI[k])
			}
		}
		return
	}
	var lb [kernStackPanel]float64
	var kb [kernStackPanel]int32
	ls, ki := lb[:], kb[:]
	if kw > kernStackPanel {
		ls, ki = make([]float64, kw), make([]int32, kw)
	}
	for i := r0; i < r1; i++ {
		rowI := f.A[i*n : i*n+n : i*n+n]
		// Skip on the stored multiplier. The reference skips on the
		// *computed* multiplier; the two sets coincide unless a nonzero
		// entry's product with the pivot reciprocal underflowed to exactly
		// zero in the solve — then the reference skips while this applies
		// the unscaled entry. That needs a deeply subnormal front entry
		// (|v| < ~1e-312 given the pivot threshold), far outside the
		// well-scaled systems the no-pivoting solver requires anyway (see
		// ErrSmallPivot); the same caveat applies to LUPanelTrailing
		// against PanelLU.
		nnz := 0
		for k := k0; k < k1; k++ {
			if l := rowI[k]; l != 0 {
				ls[nnz], ki[nnz] = l, int32(k-k0)
				nnz++
			}
		}
		ri := rowI[c0:c1]
		t := 0
		for ; t+1 < nnz; t += 2 {
			rank2Sub(ri, rks[ki[t]], rks[ki[t+1]], ls[t], ls[t+1])
		}
		if t < nnz {
			rank1Sub(ri, rks[ki[t]], ls[t])
		}
	}
}

// CholeskyUpdateTile applies the panel's symmetric trailing update to the
// lower-triangle part of the tile rows [r0,r1) x columns [c0,c1) (r0, c0
// >= k1): A(i,j) for j in [c0, min(c1, i+1)). It reads the scaled panel
// columns of the tile's rows and of the rows its columns index, so
// CholeskyScaleRows must have completed for all rows below r1 first. A
// full-width tile (c0 <= k1's first trailing column, c1 >= r1) delegates
// to the 1D kernel so the 1D path keeps its width-dispatched loop nests.
func (kern Kernel) CholeskyUpdateTile(f *Matrix, k0, k1, r0, r1, c0, c1 int) {
	if c0 < k1 {
		c0 = k1
	}
	if c1 > r1 {
		c1 = r1 // columns j > i never occur in the lower triangle
	}
	if r1 <= r0 || c1 <= c0 || k1 <= k0 {
		return
	}
	kern = kern.Resolve()
	if kern == KernelSIMD {
		choleskyUpdateTileSIMD(f, k0, k1, r0, r1, c0, c1)
		return
	}
	if c0 == k1 && c1 == r1 {
		kern.CholeskyUpdateRows(f, k0, k1, r0, r1)
		return
	}
	if kern == KernelFast {
		choleskyUpdateTileFast(f, k0, k1, r0, r1, c0, c1)
		return
	}
	choleskyUpdateTileRB(f, k0, k1, r0, r1, c0, c1)
}

// choleskyUpdateTileRB is choleskyUpdateRowsRB with the updated columns
// restricted to [c0,c1): per column j it gathers row j's nonzero panel
// entries (the reference skip pattern) once and streams the tile's rows
// through 4x1 register tiles — identical bits to the reference kernel.
func choleskyUpdateTileRB(f *Matrix, k0, k1, r0, r1, c0, c1 int) {
	n := f.C
	kw := k1 - k0
	var lb [kernStackPanel]float64
	var kb [kernStackPanel]int32
	ls, ks := lb[:], kb[:]
	if kw > kernStackPanel {
		ls, ks = make([]float64, kw), make([]int32, kw)
	}
	for j := c0; j < c1; j++ {
		rowJ := f.A[j*n : j*n+n]
		nnz := 0
		for k := k0; k < k1; k++ {
			if v := rowJ[k]; v != 0 {
				ls[nnz], ks[nnz] = v, int32(k)
				nnz++
			}
		}
		if nnz == 0 {
			continue
		}
		lj, kj := ls[:nnz:nnz], ks[:nnz:nnz]
		lo := j
		if lo < r0 {
			lo = r0
		}
		i := lo
		for ; i+3 < r1; i += 4 {
			r0v := f.A[i*n : i*n+n : i*n+n]
			r1v := f.A[(i+1)*n : (i+1)*n+n : (i+1)*n+n]
			r2v := f.A[(i+2)*n : (i+2)*n+n : (i+2)*n+n]
			r3v := f.A[(i+3)*n : (i+3)*n+n : (i+3)*n+n]
			s0, s1, s2, s3 := r0v[j], r1v[j], r2v[j], r3v[j]
			for t, l := range lj {
				k := int(kj[t])
				s0 -= r0v[k] * l
				s1 -= r1v[k] * l
				s2 -= r2v[k] * l
				s3 -= r3v[k] * l
			}
			r0v[j], r1v[j], r2v[j], r3v[j] = s0, s1, s2, s3
		}
		for ; i < r1; i++ {
			rv := f.A[i*n : i*n+n : i*n+n]
			s := rv[j]
			for t, l := range lj {
				s -= rv[int(kj[t])] * l
			}
			rv[j] = s
		}
	}
}

// choleskyUpdateTileFast is the fast symmetric tile update: column pairs,
// row pairs, 2x2 accumulator tiles, no zero skips. Each element's
// accumulator still receives the panel entries in ascending order, so the
// values match choleskyUpdateRowsFast's at any tile grid.
func choleskyUpdateTileFast(f *Matrix, k0, k1, r0, r1, c0, c1 int) {
	n := f.C
	j := c0
	for ; j+1 < c1; j += 2 {
		rja := f.A[j*n+k0 : j*n+k1 : j*n+k1]
		rjb := f.A[(j+1)*n+k0 : (j+1)*n+k1 : (j+1)*n+k1]
		if j >= r0 && j < r1 {
			// Row j itself only receives column j (the diagonal edge).
			rv := f.A[j*n : j*n+n]
			s := rv[j]
			for _, l := range rja {
				s -= l * l
			}
			rv[j] = s
		}
		lo := j + 1
		if lo < r0 {
			lo = r0
		}
		i := lo
		for ; i+1 < r1; i += 2 {
			ria := f.A[i*n : i*n+n : i*n+n]
			rib := f.A[(i+1)*n : (i+1)*n+n : (i+1)*n+n]
			pa := ria[k0:k1:k1]
			pb := rib[k0:k1:k1]
			s00, s01 := ria[j], ria[j+1]
			s10, s11 := rib[j], rib[j+1]
			for t, la := range rja {
				lb := rjb[t]
				va, vb := pa[t], pb[t]
				s00 -= va * la
				s01 -= va * lb
				s10 -= vb * la
				s11 -= vb * lb
			}
			ria[j], ria[j+1] = s00, s01
			rib[j], rib[j+1] = s10, s11
		}
		if i < r1 {
			ria := f.A[i*n : i*n+n : i*n+n]
			pa := ria[k0:k1:k1]
			s00, s01 := ria[j], ria[j+1]
			for t, la := range rja {
				va := pa[t]
				s00 -= va * la
				s01 -= va * rjb[t]
			}
			ria[j], ria[j+1] = s00, s01
		}
	}
	if j < c1 {
		// Odd trailing column: 1x1 accumulators against the single column.
		rja := f.A[j*n+k0 : j*n+k1 : j*n+k1]
		lo := j
		if lo < r0 {
			lo = r0
		}
		for i := lo; i < r1; i++ {
			rv := f.A[i*n : i*n+n : i*n+n]
			pv := rv[k0:k1:k1]
			s := rv[j]
			for t, l := range rja {
				s -= pv[t] * l
			}
			rv[j] = s
		}
	}
}
