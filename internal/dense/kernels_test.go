package dense

import (
	"math"
	"math/rand"
	"testing"
)

// TestKernelDefaultLUBitwise pins the dispatch layer's headline guarantee:
// the register-blocked default kernels perform the reference per-element
// operation order, so Kernel.PartialLU is bitwise identical to the
// element-wise PartialLU at every panel width.
func TestKernelDefaultLUBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 5, 17, 40, 73, 129} {
		for _, npiv := range []int{0, 1, n / 3, n - 1, n} {
			if npiv < 0 {
				continue
			}
			a := randomDiagDominant(n, rng)
			sparsify(a, 0.4, false, rng)
			ref := cloneM(a)
			if err := PartialLU(ref, npiv, 1e-14); err != nil {
				t.Fatal(err)
			}
			for _, block := range []int{1, 3, 8, 64, n, 2 * n} {
				got := cloneM(a)
				if err := KernelDefault.PartialLU(got, npiv, 1e-14, block); err != nil {
					t.Fatalf("n=%d npiv=%d block=%d: %v", n, npiv, block, err)
				}
				bitsEqual(t, "KernelDefault LU", ref, got)
			}
		}
	}
}

// TestKernelDefaultCholeskyBitwise is the symmetric counterpart: the
// register-blocked trailing update (gathered skip pattern, 4x1 row tiles)
// replays PartialCholesky bit for bit.
func TestKernelDefaultCholeskyBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{1, 6, 19, 33, 50, 90} {
		for _, npiv := range []int{0, 1, n / 2, n} {
			a := randomSPD(n, rng)
			sparsify(a, 0.5, true, rng)
			ref := cloneM(a)
			if err := PartialCholesky(ref, npiv); err != nil {
				t.Fatal(err)
			}
			for _, block := range []int{1, 4, 7, 64, n, 3 * n} {
				got := cloneM(a)
				if err := KernelDefault.PartialCholesky(got, npiv, block); err != nil {
					t.Fatalf("n=%d npiv=%d block=%d: %v", n, npiv, block, err)
				}
				for i := 0; i < n; i++ {
					for j := 0; j <= i; j++ {
						if math.Float64bits(ref.At(i, j)) != math.Float64bits(got.At(i, j)) {
							t.Fatalf("n=%d npiv=%d block=%d: (%d,%d) %g vs %g",
								n, npiv, block, i, j, ref.At(i, j), got.At(i, j))
						}
					}
				}
			}
		}
	}
}

// TestKernelDefaultRowKernelsBitwise exercises the row kernels directly
// against the PR-3 blocked ones over ragged row partitions — the unit the
// within-front executor schedules.
func TestKernelDefaultRowKernelsBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n, npiv := 61, 24
	lu := randomDiagDominant(n, rng)
	sparsify(lu, 0.3, false, rng)
	ref := cloneM(lu)
	if err := PanelLU(ref, 0, npiv, 1e-14); err != nil {
		t.Fatal(err)
	}
	got := cloneM(ref)
	LUApplyRows(ref, 0, npiv, npiv, n)
	for _, r := range [][2]int{{npiv, npiv + 1}, {npiv + 1, 40}, {40, 40}, {40, n}} {
		KernelDefault.LUApplyRows(got, 0, npiv, r[0], r[1])
	}
	bitsEqual(t, "LUApplyRows RB", ref, got)

	ch := randomSPD(n, rng)
	sparsify(ch, 0.5, true, rng)
	refC := cloneM(ch)
	if err := PanelCholesky(refC, 0, npiv); err != nil {
		t.Fatal(err)
	}
	gotC := cloneM(refC)
	CholeskyScaleRows(refC, 0, npiv, npiv, n)
	CholeskyUpdateRows(refC, 0, npiv, npiv, n)
	KernelDefault.CholeskyScaleRows(gotC, 0, npiv, npiv, n)
	for _, r := range [][2]int{{npiv, 30}, {30, 31}, {31, n}} {
		KernelDefault.CholeskyUpdateRows(gotC, 0, npiv, r[0], r[1])
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if math.Float64bits(refC.At(i, j)) != math.Float64bits(gotC.At(i, j)) {
				t.Fatalf("cholesky RB (%d,%d): %g vs %g", i, j, refC.At(i, j), gotC.At(i, j))
			}
		}
	}
}

// TestKernelFastResidual validates the reordered-accumulation kernels the
// way they are specified: not bitwise, but numerically — a full fast LU
// solves a random system to machine-level residual, and fast Cholesky
// factors agree with the default ones to tight relative tolerance.
func TestKernelFastResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 96
	a := randomDiagDominant(n, rng)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	MatVec(a, x, b, 1)
	lu := cloneM(a)
	if err := KernelFast.PartialLU(lu, n, 1e-14, 16); err != nil {
		t.Fatal(err)
	}
	y := append([]float64(nil), b...)
	for i := 0; i < n; i++ {
		for k := 0; k < i; k++ {
			y[i] -= lu.At(i, k) * y[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		for k := i + 1; k < n; k++ {
			y[i] -= lu.At(i, k) * y[k]
		}
		y[i] /= lu.At(i, i)
	}
	for i := range x {
		if math.Abs(y[i]-x[i]) > 1e-9*(1+math.Abs(x[i])) {
			t.Fatalf("fast LU solve off at %d: %g vs %g", i, y[i], x[i])
		}
	}

	s := randomSPD(n, rng)
	sparsify(s, 0.4, true, rng)
	def := cloneM(s)
	if err := KernelDefault.PartialCholesky(def, n/2, 16); err != nil {
		t.Fatal(err)
	}
	fast := cloneM(s)
	if err := KernelFast.PartialCholesky(fast, n/2, 16); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			d := math.Abs(def.At(i, j) - fast.At(i, j))
			if d > 1e-8*(1+math.Abs(def.At(i, j))) {
				t.Fatalf("fast cholesky (%d,%d): %g vs %g", i, j, fast.At(i, j), def.At(i, j))
			}
		}
	}
}

// TestKernelFastPartitionInvariance pins the determinism the parallel
// executor relies on in fast mode: the fast row kernels compute identical
// bits however the trailing rows are grouped into blocks.
func TestKernelFastPartitionInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, npiv := 47, 18

	lu := randomDiagDominant(n, rng)
	sparsify(lu, 0.3, false, rng)
	if err := PanelLU(lu, 0, npiv, 1e-14); err != nil {
		t.Fatal(err)
	}
	apply := func(parts [][2]int) *Matrix {
		f := cloneM(lu)
		for _, r := range parts {
			KernelFast.LUApplyRows(f, 0, npiv, r[0], r[1])
		}
		return f
	}
	ref := apply([][2]int{{npiv, n}})
	bitsEqual(t, "fast LU ragged", ref, apply([][2]int{{npiv, npiv + 3}, {npiv + 3, 30}, {30, n}}))

	ch := randomSPD(n, rng)
	sparsify(ch, 0.4, true, rng)
	if err := PanelCholesky(ch, 0, npiv); err != nil {
		t.Fatal(err)
	}
	CholeskyScaleRows(ch, 0, npiv, npiv, n)
	update := func(parts [][2]int) *Matrix {
		f := cloneM(ch)
		for _, r := range parts {
			KernelFast.CholeskyUpdateRows(f, 0, npiv, r[0], r[1])
		}
		return f
	}
	refC := update([][2]int{{npiv, n}})
	gotC := update([][2]int{{npiv, npiv + 1}, {npiv + 1, 33}, {33, n}})
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if math.Float64bits(refC.At(i, j)) != math.Float64bits(gotC.At(i, j)) {
				t.Fatalf("fast cholesky partition (%d,%d): %g vs %g", i, j, refC.At(i, j), gotC.At(i, j))
			}
		}
	}
}

// referenceExtendAdd is the pre-run-merge element-wise scatter, kept as
// the oracle for the run-merged implementation.
func referenceExtendAdd(f *Matrix, cb *Matrix, map_ []int, lower bool) {
	for i := 0; i < cb.R; i++ {
		fRow := f.Row(map_[i])
		cbRow := cb.Row(i)
		jmax := cb.C
		if lower {
			jmax = i + 1
		}
		for j := 0; j < jmax; j++ {
			fRow[map_[j]] += cbRow[j]
		}
	}
}

// TestExtendAddRunsMatchesScatter checks the run-merged extend-add against
// the element-wise oracle over maps with every run shape: singletons, long
// consecutive stretches, and mixes, for both the full and the lower
// scatter.
func TestExtendAddRunsMatchesScatter(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 60; trial++ {
		nf := 8 + rng.Intn(40)
		// Build an increasing map with random run structure.
		var map_ []int
		next := rng.Intn(3)
		for next < nf {
			map_ = append(map_, next)
			if rng.Float64() < 0.6 {
				next++ // extend the run
			} else {
				next += 2 + rng.Intn(3) // break it
			}
		}
		if len(map_) == 0 {
			continue
		}
		cb := New(len(map_), len(map_))
		for i := range cb.A {
			cb.A[i] = rng.NormFloat64()
		}
		for _, lower := range []bool{false, true} {
			want := New(nf, nf)
			got := New(nf, nf)
			for i := range want.A {
				v := rng.NormFloat64()
				want.A[i], got.A[i] = v, v
			}
			referenceExtendAdd(want, cb, map_, lower)
			if lower {
				ExtendAddLower(got, cb, map_)
			} else {
				ExtendAdd(got, cb, map_)
			}
			bitsEqual(t, "extend-add runs", want, got)
		}
	}
}

// TestAppendRuns covers the run detector's edge shapes directly.
func TestAppendRuns(t *testing.T) {
	cases := []struct {
		map_ []int
		want []IndexRun
	}{
		{nil, nil},
		{[]int{4}, []IndexRun{{0, 4, 1}}},
		{[]int{1, 2, 3}, []IndexRun{{0, 1, 3}}},
		{[]int{0, 2, 4}, []IndexRun{{0, 0, 1}, {1, 2, 1}, {2, 4, 1}}},
		{[]int{3, 4, 8, 9, 10, 12}, []IndexRun{{0, 3, 2}, {2, 8, 3}, {5, 12, 1}}},
	}
	for _, c := range cases {
		got := AppendRuns(nil, c.map_)
		if len(got) != len(c.want) {
			t.Fatalf("map %v: runs %v, want %v", c.map_, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("map %v: run %d = %v, want %v", c.map_, i, got[i], c.want[i])
			}
		}
	}
}
