// AVX2/FMA implementations of the SIMD span/dot primitives. Each routine
// computes, lane by lane, exactly the math.FMA recipe of its portable
// twin in simd_prims.go (one rounding per multiply-add, fixed four-lane
// dot accumulation reduced as (acc0+acc2)+(acc1+acc3), scalar FMA tails),
// so the two paths are bitwise interchangeable. Only dispatched when
// CPUID reports FMA+AVX2 with OS-enabled YMM state (see simd_amd64.go).

#include "textflag.h"

// func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func fnmaSpan1Asm(d, a *float64, n int, la float64)
// d[j] = fma(-la, a[j], d[j])
TEXT ·fnmaSpan1Asm(SB), NOSPLIT, $0-32
	MOVQ         d+0(FP), DI
	MOVQ         a+8(FP), SI
	MOVQ         n+16(FP), CX
	VBROADCASTSD la+24(FP), Y12

s1loop16:
	CMPQ         CX, $16
	JLT          s1loop4
	VMOVUPD      (DI), Y0
	VMOVUPD      32(DI), Y1
	VMOVUPD      64(DI), Y2
	VMOVUPD      96(DI), Y3
	VFNMADD231PD (SI), Y12, Y0
	VFNMADD231PD 32(SI), Y12, Y1
	VFNMADD231PD 64(SI), Y12, Y2
	VFNMADD231PD 96(SI), Y12, Y3
	VMOVUPD      Y0, (DI)
	VMOVUPD      Y1, 32(DI)
	VMOVUPD      Y2, 64(DI)
	VMOVUPD      Y3, 96(DI)
	ADDQ         $128, DI
	ADDQ         $128, SI
	SUBQ         $16, CX
	JMP          s1loop16

s1loop4:
	CMPQ         CX, $4
	JLT          s1tail
	VMOVUPD      (DI), Y0
	VFNMADD231PD (SI), Y12, Y0
	VMOVUPD      Y0, (DI)
	ADDQ         $32, DI
	ADDQ         $32, SI
	SUBQ         $4, CX
	JMP          s1loop4

s1tail:
	TESTQ        CX, CX
	JE           s1done
	VMOVSD       (DI), X0
	VFNMADD231SD (SI), X12, X0
	VMOVSD       X0, (DI)
	ADDQ         $8, DI
	ADDQ         $8, SI
	DECQ         CX
	JMP          s1tail

s1done:
	VZEROUPPER
	RET

// func fnmaSpan2Asm(d, a, b *float64, n int, la, lb float64)
// d[j] = fma(-lb, b[j], fma(-la, a[j], d[j]))
TEXT ·fnmaSpan2Asm(SB), NOSPLIT, $0-48
	MOVQ         d+0(FP), DI
	MOVQ         a+8(FP), SI
	MOVQ         b+16(FP), R8
	MOVQ         n+24(FP), CX
	VBROADCASTSD la+32(FP), Y12
	VBROADCASTSD lb+40(FP), Y13

s2loop16:
	CMPQ         CX, $16
	JLT          s2loop4
	VMOVUPD      (DI), Y0
	VMOVUPD      32(DI), Y1
	VMOVUPD      64(DI), Y2
	VMOVUPD      96(DI), Y3
	VFNMADD231PD (SI), Y12, Y0
	VFNMADD231PD 32(SI), Y12, Y1
	VFNMADD231PD 64(SI), Y12, Y2
	VFNMADD231PD 96(SI), Y12, Y3
	VFNMADD231PD (R8), Y13, Y0
	VFNMADD231PD 32(R8), Y13, Y1
	VFNMADD231PD 64(R8), Y13, Y2
	VFNMADD231PD 96(R8), Y13, Y3
	VMOVUPD      Y0, (DI)
	VMOVUPD      Y1, 32(DI)
	VMOVUPD      Y2, 64(DI)
	VMOVUPD      Y3, 96(DI)
	ADDQ         $128, DI
	ADDQ         $128, SI
	ADDQ         $128, R8
	SUBQ         $16, CX
	JMP          s2loop16

s2loop4:
	CMPQ         CX, $4
	JLT          s2tail
	VMOVUPD      (DI), Y0
	VFNMADD231PD (SI), Y12, Y0
	VFNMADD231PD (R8), Y13, Y0
	VMOVUPD      Y0, (DI)
	ADDQ         $32, DI
	ADDQ         $32, SI
	ADDQ         $32, R8
	SUBQ         $4, CX
	JMP          s2loop4

s2tail:
	TESTQ        CX, CX
	JE           s2done
	VMOVSD       (DI), X0
	VFNMADD231SD (SI), X12, X0
	VFNMADD231SD (R8), X13, X0
	VMOVSD       X0, (DI)
	ADDQ         $8, DI
	ADDQ         $8, SI
	ADDQ         $8, R8
	DECQ         CX
	JMP          s2tail

s2done:
	VZEROUPPER
	RET

// func fnmaSpan4Asm(d, a, b, c, e *float64, n int, la, lb, lc, ld float64)
// d[j] = fma(-ld, e[j], fma(-lc, c[j], fma(-lb, b[j], fma(-la, a[j], d[j]))))
TEXT ·fnmaSpan4Asm(SB), NOSPLIT, $0-80
	MOVQ         d+0(FP), DI
	MOVQ         a+8(FP), SI
	MOVQ         b+16(FP), R8
	MOVQ         c+24(FP), R9
	MOVQ         e+32(FP), R10
	MOVQ         n+40(FP), CX
	VBROADCASTSD la+48(FP), Y12
	VBROADCASTSD lb+56(FP), Y13
	VBROADCASTSD lc+64(FP), Y14
	VBROADCASTSD ld+72(FP), Y15

s4loop16:
	CMPQ         CX, $16
	JLT          s4loop4
	VMOVUPD      (DI), Y0
	VMOVUPD      32(DI), Y1
	VMOVUPD      64(DI), Y2
	VMOVUPD      96(DI), Y3
	VFNMADD231PD (SI), Y12, Y0
	VFNMADD231PD 32(SI), Y12, Y1
	VFNMADD231PD 64(SI), Y12, Y2
	VFNMADD231PD 96(SI), Y12, Y3
	VFNMADD231PD (R8), Y13, Y0
	VFNMADD231PD 32(R8), Y13, Y1
	VFNMADD231PD 64(R8), Y13, Y2
	VFNMADD231PD 96(R8), Y13, Y3
	VFNMADD231PD (R9), Y14, Y0
	VFNMADD231PD 32(R9), Y14, Y1
	VFNMADD231PD 64(R9), Y14, Y2
	VFNMADD231PD 96(R9), Y14, Y3
	VFNMADD231PD (R10), Y15, Y0
	VFNMADD231PD 32(R10), Y15, Y1
	VFNMADD231PD 64(R10), Y15, Y2
	VFNMADD231PD 96(R10), Y15, Y3
	VMOVUPD      Y0, (DI)
	VMOVUPD      Y1, 32(DI)
	VMOVUPD      Y2, 64(DI)
	VMOVUPD      Y3, 96(DI)
	ADDQ         $128, DI
	ADDQ         $128, SI
	ADDQ         $128, R8
	ADDQ         $128, R9
	ADDQ         $128, R10
	SUBQ         $16, CX
	JMP          s4loop16

s4loop4:
	CMPQ         CX, $4
	JLT          s4tail
	VMOVUPD      (DI), Y0
	VFNMADD231PD (SI), Y12, Y0
	VFNMADD231PD (R8), Y13, Y0
	VFNMADD231PD (R9), Y14, Y0
	VFNMADD231PD (R10), Y15, Y0
	VMOVUPD      Y0, (DI)
	ADDQ         $32, DI
	ADDQ         $32, SI
	ADDQ         $32, R8
	ADDQ         $32, R9
	ADDQ         $32, R10
	SUBQ         $4, CX
	JMP          s4loop4

s4tail:
	TESTQ        CX, CX
	JE           s4done
	VMOVSD       (DI), X0
	VFNMADD231SD (SI), X12, X0
	VFNMADD231SD (R8), X13, X0
	VFNMADD231SD (R9), X14, X0
	VFNMADD231SD (R10), X15, X0
	VMOVSD       X0, (DI)
	ADDQ         $8, DI
	ADDQ         $8, SI
	ADDQ         $8, R8
	ADDQ         $8, R9
	ADDQ         $8, R10
	DECQ         CX
	JMP          s4tail

s4done:
	VZEROUPPER
	RET

// func dot1Asm(p, q *float64, n int) float64
// Four-lane FMA accumulation, reduced (acc0+acc2)+(acc1+acc3), scalar
// FMA tail — the dotOneGo contract.
TEXT ·dot1Asm(SB), NOSPLIT, $0-32
	MOVQ   p+0(FP), DI
	MOVQ   q+8(FP), SI
	MOVQ   n+16(FP), CX
	VXORPD Y0, Y0, Y0

d1loop4:
	CMPQ        CX, $4
	JLT         d1reduce
	VMOVUPD     (DI), Y4
	VFMADD231PD (SI), Y4, Y0
	ADDQ        $32, DI
	ADDQ        $32, SI
	SUBQ        $4, CX
	JMP         d1loop4

d1reduce:
	VEXTRACTF128 $1, Y0, X4
	VADDPD       X4, X0, X0
	VHADDPD      X0, X0, X0

d1tail:
	TESTQ       CX, CX
	JE          d1done
	VMOVSD      (DI), X4
	VFMADD231SD (SI), X4, X0
	ADDQ        $8, DI
	ADDQ        $8, SI
	DECQ        CX
	JMP         d1tail

d1done:
	VMOVSD X0, ret+24(FP)
	VZEROUPPER
	RET

// func dot4Asm(p, q0, q1, q2, q3 *float64, n int) (s0, s1, s2, s3 float64)
// Four dot products against one shared pass over p; each column follows
// the exact dot1Asm/dotOneGo accumulation contract.
TEXT ·dot4Asm(SB), NOSPLIT, $0-80
	MOVQ   p+0(FP), DI
	MOVQ   q0+8(FP), SI
	MOVQ   q1+16(FP), R8
	MOVQ   q2+24(FP), R9
	MOVQ   q3+32(FP), R10
	MOVQ   n+40(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3

d4loop4:
	CMPQ        CX, $4
	JLT         d4reduce
	VMOVUPD     (DI), Y4
	VFMADD231PD (SI), Y4, Y0
	VFMADD231PD (R8), Y4, Y1
	VFMADD231PD (R9), Y4, Y2
	VFMADD231PD (R10), Y4, Y3
	ADDQ        $32, DI
	ADDQ        $32, SI
	ADDQ        $32, R8
	ADDQ        $32, R9
	ADDQ        $32, R10
	SUBQ        $4, CX
	JMP         d4loop4

d4reduce:
	VEXTRACTF128 $1, Y0, X4
	VADDPD       X4, X0, X0
	VHADDPD      X0, X0, X0
	VEXTRACTF128 $1, Y1, X4
	VADDPD       X4, X1, X1
	VHADDPD      X1, X1, X1
	VEXTRACTF128 $1, Y2, X4
	VADDPD       X4, X2, X2
	VHADDPD      X2, X2, X2
	VEXTRACTF128 $1, Y3, X4
	VADDPD       X4, X3, X3
	VHADDPD      X3, X3, X3

d4tail:
	TESTQ       CX, CX
	JE          d4done
	VMOVSD      (DI), X4
	VFMADD231SD (SI), X4, X0
	VFMADD231SD (R8), X4, X1
	VFMADD231SD (R9), X4, X2
	VFMADD231SD (R10), X4, X3
	ADDQ        $8, DI
	ADDQ        $8, SI
	ADDQ        $8, R8
	ADDQ        $8, R9
	ADDQ        $8, R10
	DECQ        CX
	JMP         d4tail

d4done:
	VMOVSD X0, s0+48(FP)
	VMOVSD X1, s1+56(FP)
	VMOVSD X2, s2+64(FP)
	VMOVSD X3, s3+72(FP)
	VZEROUPPER
	RET

// func addSpanAsm(d, s *float64, n int)
// d[j] += s[j]: plain element adds, bitwise identical to the scalar loop.
TEXT ·addSpanAsm(SB), NOSPLIT, $0-24
	MOVQ d+0(FP), DI
	MOVQ s+8(FP), SI
	MOVQ n+16(FP), CX

aloop16:
	CMPQ    CX, $16
	JLT     aloop4
	VMOVUPD (DI), Y0
	VMOVUPD 32(DI), Y1
	VMOVUPD 64(DI), Y2
	VMOVUPD 96(DI), Y3
	VADDPD  (SI), Y0, Y0
	VADDPD  32(SI), Y1, Y1
	VADDPD  64(SI), Y2, Y2
	VADDPD  96(SI), Y3, Y3
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, 64(DI)
	VMOVUPD Y3, 96(DI)
	ADDQ    $128, DI
	ADDQ    $128, SI
	SUBQ    $16, CX
	JMP     aloop16

aloop4:
	CMPQ    CX, $4
	JLT     atail
	VMOVUPD (DI), Y0
	VADDPD  (SI), Y0, Y0
	VMOVUPD Y0, (DI)
	ADDQ    $32, DI
	ADDQ    $32, SI
	SUBQ    $4, CX
	JMP     aloop4

atail:
	TESTQ  CX, CX
	JE     adone
	VMOVSD (DI), X0
	VADDSD (SI), X0, X0
	VMOVSD X0, (DI)
	ADDQ   $8, DI
	ADDQ   $8, SI
	DECQ   CX
	JMP    atail

adone:
	VZEROUPPER
	RET

// func scatterRuns4Asm(d0, d1, d2, d3, s0, s1, s2, s3 *float64, runs *IndexRun, nruns int)
// For each run {J0, C0, Len} (three int32 fields, 12-byte stride — the
// IndexRun layout), di[C0+t] += si[J0+t] for t in [0,Len) over four row
// pairs. Plain element adds, bitwise identical to the scalar loops; one
// call covers a whole 4-row group of the extend-add scatter, so the run
// decode and the adds of short fragmented runs all stay in registers.
TEXT ·scatterRuns4Asm(SB), NOSPLIT, $0-80
	MOVQ d0+0(FP), DI
	MOVQ d1+8(FP), SI
	MOVQ d2+16(FP), R8
	MOVQ d3+24(FP), R9
	MOVQ s0+32(FP), R10
	MOVQ s1+40(FP), R11
	MOVQ s2+48(FP), R12
	MOVQ s3+56(FP), R13
	MOVQ runs+64(FP), R14
	MOVQ nruns+72(FP), R15

srnext:
	TESTQ   R15, R15
	JE      srdone
	MOVLQSX 0(R14), AX  // J0: source element index
	MOVLQSX 4(R14), BX  // C0: destination element index
	MOVLQSX 8(R14), CX  // Len
	ADDQ    $12, R14
	DECQ    R15

srv4:
	CMPQ    CX, $4
	JLT     srtail
	VMOVUPD (DI)(BX*8), Y0
	VMOVUPD (SI)(BX*8), Y1
	VMOVUPD (R8)(BX*8), Y2
	VMOVUPD (R9)(BX*8), Y3
	VADDPD  (R10)(AX*8), Y0, Y0
	VADDPD  (R11)(AX*8), Y1, Y1
	VADDPD  (R12)(AX*8), Y2, Y2
	VADDPD  (R13)(AX*8), Y3, Y3
	VMOVUPD Y0, (DI)(BX*8)
	VMOVUPD Y1, (SI)(BX*8)
	VMOVUPD Y2, (R8)(BX*8)
	VMOVUPD Y3, (R9)(BX*8)
	ADDQ    $4, AX
	ADDQ    $4, BX
	SUBQ    $4, CX
	JMP     srv4

srtail:
	TESTQ  CX, CX
	JE     srnext
	VMOVSD (DI)(BX*8), X0
	VADDSD (R10)(AX*8), X0, X0
	VMOVSD X0, (DI)(BX*8)
	VMOVSD (SI)(BX*8), X1
	VADDSD (R11)(AX*8), X1, X1
	VMOVSD X1, (SI)(BX*8)
	VMOVSD (R8)(BX*8), X2
	VADDSD (R12)(AX*8), X2, X2
	VMOVSD X2, (R8)(BX*8)
	VMOVSD (R9)(BX*8), X3
	VADDSD (R13)(AX*8), X3, X3
	VMOVSD X3, (R9)(BX*8)
	INCQ   AX
	INCQ   BX
	DECQ   CX
	JMP    srtail

srdone:
	VZEROUPPER
	RET
