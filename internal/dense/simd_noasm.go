//go:build !amd64

// Non-amd64 binding of the SIMD primitives: everything runs the portable
// math.FMA implementations, which compute the same bits as the amd64
// assembly (math.FMA is correctly rounded on every platform), so
// KernelSIMD factors are identical across architectures.

package dense

var (
	simdHW      = false
	simdEnabled = false
)

func fnmaSpan1(d, a []float64, la float64) { fnmaSpan1Go(d, a, la) }

func fnmaSpan2(d, a, b []float64, la, lb float64) { fnmaSpan2Go(d, a, b, la, lb) }

func fnmaSpan4(d, a, b, c, e []float64, la, lb, lc, ld float64) {
	fnmaSpan4Go(d, a, b, c, e, la, lb, lc, ld)
}

func dotOne(p, q []float64) float64 { return dotOneGo(p, q) }

func dotFour(p, q0, q1, q2, q3 []float64) (s0, s1, s2, s3 float64) {
	return dotFourGo(p, q0, q1, q2, q3)
}

func addSpanFast(d, s []float64) { addSpanGo(d, s) }

func scatterRuns4(d0, d1, d2, d3, s0, s1, s2, s3 []float64, runs []IndexRun) {
	scatterRuns4Go(d0, d1, d2, d3, s0, s1, s2, s3, runs)
}
