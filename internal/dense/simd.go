// The SIMD/FMA kernel family (KernelSIMD): rank-k panel updates, tile
// kernels and triangular solves built on the fused span/dot primitives of
// simd_prims.go / simd_amd64.s. The family follows the fast family's loop
// skeletons — dense multipliers (no zero skips), pivots consumed in
// k-groups of 4/2/1 ascending from the panel base — but every multiply-add
// is fused (one rounding instead of two), which is what the AVX2 FMA units
// execute natively.
//
// Determinism contract, continuing the fast family's: every element's
// value is a pure function of the front and the panel sequence. The
// per-element operation order depends only on the panel width (the k-group
// split is fixed by k0/k1), the span primitives are bitwise independent of
// vector grouping (per-element chains), and the dot primitives follow one
// fixed four-lane recipe per column regardless of column grouping — so a
// SIMD factorization is bitwise identical across row partitions, tile
// grids and worker counts, and identical between the assembly and portable
// paths (REPRO_SIMD=off, non-amd64). Accuracy is validated by residual
// tolerance against KernelDefault, exactly like KernelFast.
package dense

import (
	"fmt"
	"math"
	"strings"
)

// Resolve maps KernelAuto to the concrete family this machine should run:
// KernelSIMD when the vector path is available, KernelFast otherwise (the
// portable SIMD path is bitwise faithful but slower than fast's unfused
// kernels on hardware without FMA dispatch). Concrete families map to
// themselves.
func (k Kernel) Resolve() Kernel {
	if k != KernelAuto {
		return k
	}
	if simdEnabled {
		return KernelSIMD
	}
	return KernelFast
}

// SIMDAvailable reports whether the hardware vector path is compiled in,
// detected, and not disabled by REPRO_SIMD=off.
func SIMDAvailable() bool { return simdEnabled }

// SIMDFeatures describes the SIMD dispatch state for metrics and bench
// metadata.
func SIMDFeatures() string {
	switch {
	case simdEnabled:
		return "avx2+fma"
	case simdHW:
		return "avx2+fma(off)"
	default:
		return "portable"
	}
}

// ParseKernel parses a -kernel flag value into a Kernel. Accepted grammar:
// default | fast | simd | auto (case-insensitive; empty means default).
func ParseKernel(s string) (Kernel, error) {
	switch strings.ToLower(s) {
	case "", "default":
		return KernelDefault, nil
	case "fast":
		return KernelFast, nil
	case "simd":
		return KernelSIMD, nil
	case "auto":
		return KernelAuto, nil
	}
	return KernelDefault, fmt.Errorf("unknown kernel family %q (want default, fast, simd or auto)", s)
}

// luSolveRowSIMD computes row i's multipliers and within-panel updates
// against the eliminated panel [k0,k1) — the SIMD form of the L-tile
// solve. Dense (no zero skips): the multiplier is always stored, so the
// tile update's stored-multiplier read sees exactly what the solve
// computed.
func luSolveRowSIMD(f *Matrix, rowI []float64, k0, k1 int, invs []float64) {
	n := f.C
	for k := k0; k < k1; k++ {
		l := rowI[k] * invs[k-k0]
		rowI[k] = l
		rowK := f.A[k*n : k*n+n : k*n+n]
		fnmaSpan1(rowI[k+1:k1], rowK[k+1:k1], l)
	}
}

// simdTrailingUpdate applies the panel's rank-(k1-k0) update to one row's
// column span ri, multipliers in lrow[k0:k1), panel row spans rks aligned
// with ri. Pivots are consumed in k-groups of 4/2/1 ascending from k0 —
// the group split depends only on the panel width, and within a group each
// element receives its four fused updates in ascending pivot order, so the
// bits are independent of how ri is cut out of the trailing columns (1D
// full span or any 2D tile).
func simdTrailingUpdate(ri, lrow []float64, rks [][]float64, k0, k1 int) {
	m := len(ri)
	ri = ri[:m:m]
	k := k0
	for ; k+3 < k1; k += 4 {
		fnmaSpan4(ri,
			rks[k-k0][:m:m], rks[k-k0+1][:m:m], rks[k-k0+2][:m:m], rks[k-k0+3][:m:m],
			lrow[k], lrow[k+1], lrow[k+2], lrow[k+3])
	}
	for ; k+1 < k1; k += 2 {
		fnmaSpan2(ri, rks[k-k0][:m:m], rks[k-k0+1][:m:m], lrow[k], lrow[k+1])
	}
	if k < k1 {
		fnmaSpan1(ri, rks[k-k0][:m:m], lrow[k])
	}
}

// luApplyRowsSIMD is the SIMD LU row kernel: per row the dense multiplier
// solve (luSolveRowSIMD) followed by the fused rank-4 trailing sweep. The
// two phases per row match the 2D split (LUSolveRows then LUUpdateTile)
// operation for operation, so SIMD-1D and SIMD-2D factors are bitwise
// identical.
func luApplyRowsSIMD(f *Matrix, k0, k1, r0, r1 int) {
	n := f.C
	kw := k1 - k0
	var ib [kernStackPanel]float64
	var rb [kernStackPanel][]float64
	invs, rks := ib[:], rb[:]
	if kw > kernStackPanel {
		invs, rks = make([]float64, kw), make([][]float64, kw)
	}
	loadPanel(f, k0, k1, invs, rks)
	for i := r0; i < r1; i++ {
		rowI := f.A[i*n : i*n+n : i*n+n]
		luSolveRowSIMD(f, rowI, k0, k1, invs)
		simdTrailingUpdate(rowI[k1:], rowI, rks, k0, k1)
	}
}

// choleskyUpdateTileSIMD is the SIMD symmetric trailing update restricted
// to columns [c0,c1): each lower-triangle element A(i,j) receives one
// fused dot product of the two rows' scaled panel parts, subtracted in a
// single rounding. Columns stream in fours through dotFour (one pass over
// row i's panel part per group), but the dot recipe per column is fixed
// (see simd_prims.go), so the value of A(i,j) is independent of the column
// grouping, the tile grid and the row partition.
func choleskyUpdateTileSIMD(f *Matrix, k0, k1, r0, r1, c0, c1 int) {
	n := f.C
	for i := r0; i < r1; i++ {
		rowI := f.A[i*n : i*n+n : i*n+n]
		pi := rowI[k0:k1:k1]
		jmax := i + 1
		if c1 < jmax {
			jmax = c1
		}
		j := c0
		for ; j+3 < jmax; j += 4 {
			p0 := f.A[j*n+k0 : j*n+k1 : j*n+k1]
			p1 := f.A[(j+1)*n+k0 : (j+1)*n+k1 : (j+1)*n+k1]
			p2 := f.A[(j+2)*n+k0 : (j+2)*n+k1 : (j+2)*n+k1]
			p3 := f.A[(j+3)*n+k0 : (j+3)*n+k1 : (j+3)*n+k1]
			s0, s1, s2, s3 := dotFour(pi, p0, p1, p2, p3)
			rowI[j] -= s0
			rowI[j+1] -= s1
			rowI[j+2] -= s2
			rowI[j+3] -= s3
		}
		for ; j < jmax; j++ {
			pj := f.A[j*n+k0 : j*n+k1 : j*n+k1]
			rowI[j] -= dotOne(pi, pj)
		}
	}
}

// choleskyUpdateRowsSIMD is the 1D symmetric SIMD update: the tile kernel
// over the full trailing column range.
func choleskyUpdateRowsSIMD(f *Matrix, k0, k1, r0, r1 int) {
	choleskyUpdateTileSIMD(f, k0, k1, r0, r1, k1, r1)
}

// solveForwardLUSIMD is the fused forward LU substitution: pivot columns
// consumed in pairs, each trailing panel row receiving chained FMA
// updates. Dense, deterministic for fixed operands, validated by residual.
func solveForwardLUSIMD(L *Matrix, npiv int, W *Matrix) {
	n, m := W.R, W.C
	k := 0
	for ; k+1 < npiv; k += 2 {
		va := W.A[k*m : k*m+m : k*m+m]
		vb := W.A[(k+1)*m : (k+1)*m+m : (k+1)*m+m]
		fnmaSpan1(vb, va, L.At(k+1, k))
		for i := k + 2; i < n; i++ {
			fnmaSpan2(W.A[i*m:i*m+m:i*m+m], va, vb, L.At(i, k), L.At(i, k+1))
		}
	}
	for ; k < npiv; k++ {
		vk := W.A[k*m : k*m+m : k*m+m]
		for i := k + 1; i < n; i++ {
			fnmaSpan1(W.A[i*m:i*m+m:i*m+m], vk, L.At(i, k))
		}
	}
}

// solveForwardCholeskySIMD folds the stored-diagonal scaling into the
// fused pair head: vb[c] = fma(-lba, va[c], vb[c]) / db keeps one rounding
// for the multiply-add (matching the span primitives) plus the division.
func solveForwardCholeskySIMD(L *Matrix, npiv int, W *Matrix) {
	n, m := W.R, W.C
	k := 0
	for ; k+1 < npiv; k += 2 {
		da, db := L.At(k, k), L.At(k+1, k+1)
		va := W.A[k*m : k*m+m : k*m+m]
		vb := W.A[(k+1)*m : (k+1)*m+m : (k+1)*m+m]
		lba := L.At(k+1, k)
		for c := range va {
			va[c] /= da
			vb[c] = math.FMA(-lba, va[c], vb[c]) / db
		}
		for i := k + 2; i < n; i++ {
			fnmaSpan2(W.A[i*m:i*m+m:i*m+m], va, vb, L.At(i, k), L.At(i, k+1))
		}
	}
	for ; k < npiv; k++ {
		d := L.At(k, k)
		vk := W.A[k*m : k*m+m : k*m+m]
		for c := range vk {
			vk[c] /= d
		}
		for i := k + 1; i < n; i++ {
			fnmaSpan1(W.A[i*m:i*m+m:i*m+m], vk, L.At(i, k))
		}
	}
}

// solveBackwardLUSIMD pairs the solved source rows of each backward
// accumulation into fused chains, then divides by the pivot.
func solveBackwardLUSIMD(U *Matrix, npiv int, W *Matrix) {
	n, m := W.R, W.C
	for k := npiv - 1; k >= 0; k-- {
		wk := W.A[k*m : k*m+m : k*m+m]
		uk := U.Row(k)
		j := k + 1
		for ; j+1 < n; j += 2 {
			fnmaSpan2(wk, W.A[j*m:j*m+m:j*m+m], W.A[(j+1)*m:(j+1)*m+m:(j+1)*m+m], uk[j], uk[j+1])
		}
		if j < n {
			fnmaSpan1(wk, W.A[j*m:j*m+m:j*m+m], uk[j])
		}
		d := uk[k]
		for c := range wk {
			wk[c] /= d
		}
	}
}

// solveBackwardCholeskySIMD is solveBackwardLUSIMD over column k of L.
func solveBackwardCholeskySIMD(L *Matrix, npiv int, W *Matrix) {
	n, m := W.R, W.C
	for k := npiv - 1; k >= 0; k-- {
		wk := W.A[k*m : k*m+m : k*m+m]
		i := k + 1
		for ; i+1 < n; i += 2 {
			fnmaSpan2(wk, W.A[i*m:i*m+m:i*m+m], W.A[(i+1)*m:(i+1)*m+m:(i+1)*m+m], L.At(i, k), L.At(i+1, k))
		}
		if i < n {
			fnmaSpan1(wk, W.A[i*m:i*m+m:i*m+m], L.At(i, k))
		}
		d := L.At(k, k)
		for c := range wk {
			wk[c] /= d
		}
	}
}
