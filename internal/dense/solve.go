package dense

// Blocked triangular-solve kernels of the solve phase: each applies one
// front's trapezoidal factor piece to an f x nrhs right-hand-side panel
// W (row-major, one row per front row, one column per RHS), replacing
// the per-element, single-RHS loops the solve walk used to run inline.
//
// The family discipline matches the factorization kernels:
//
//   - KernelDefault replays the reference per-element operation order of
//     the historical scalar solve for every column — including its skip
//     of zero multipliers in the forward pass (which is *not* a no-op to
//     drop: subtracting a signed-zero product can flip the sign of a
//     zero partial sum) and its strict no-skip backward accumulation —
//     so each column of a multi-RHS solve is bitwise identical to a
//     single-RHS solve, which is in turn bitwise identical to the
//     pre-blocked solver.
//   - KernelFast pairs the update sources (pivot columns forward, solved
//     rows backward) into compound multiply-adds. The accumulation order
//     differs from the reference, so results are validated by residual,
//     but the order is a pure function of the operands: fast solves are
//     deterministic at any worker count.
//
// The forward kernels consume the f x npiv lower trapezoid L (unit
// diagonal for LU, stored diagonal for Cholesky) and update the full
// panel; the backward kernels consume the npiv x f upper trapezoid U
// (LU) or L again (Cholesky, as L^T) and rewrite only the npiv pivot
// rows of the panel — the trailing rows are read-only inputs there.

// SolveForwardLU applies the unit-lower forward substitution of one
// front: W[k+1:] -= L[k+1:, k] * W[k] for each pivot k in order.
func (kern Kernel) SolveForwardLU(L *Matrix, npiv int, W *Matrix) {
	switch kern.Resolve() {
	case KernelFast:
		solveForwardLUFast(L, npiv, W)
		return
	case KernelSIMD:
		solveForwardLUSIMD(L, npiv, W)
		return
	}
	n, m := W.R, W.C
	for k := 0; k < npiv; k++ {
		vk := W.A[k*m : k*m+m]
		if allZero(vk) {
			continue
		}
		for i := k + 1; i < n; i++ {
			l := L.At(i, k)
			wi := W.A[i*m : i*m+m]
			for c, v := range vk {
				if v == 0 {
					continue
				}
				wi[c] -= l * v
			}
		}
	}
}

// SolveForwardCholesky applies the lower forward substitution with the
// stored diagonal: W[k] /= L[k,k], then the trailing update.
func (kern Kernel) SolveForwardCholesky(L *Matrix, npiv int, W *Matrix) {
	switch kern.Resolve() {
	case KernelFast:
		solveForwardCholeskyFast(L, npiv, W)
		return
	case KernelSIMD:
		solveForwardCholeskySIMD(L, npiv, W)
		return
	}
	n, m := W.R, W.C
	for k := 0; k < npiv; k++ {
		d := L.At(k, k)
		vk := W.A[k*m : k*m+m]
		for c := range vk {
			vk[c] /= d
		}
		if allZero(vk) {
			continue
		}
		for i := k + 1; i < n; i++ {
			l := L.At(i, k)
			wi := W.A[i*m : i*m+m]
			for c, v := range vk {
				if v == 0 {
					continue
				}
				wi[c] -= l * v
			}
		}
	}
}

// SolveBackwardLU applies the upper backward substitution of one front:
// for each pivot k in reverse, W[k] -= U[k, k+1:] * W[k+1:], then
// W[k] /= U[k,k]. U is the npiv x f upper trapezoid; rows npiv..f-1 of
// W are inputs only.
func (kern Kernel) SolveBackwardLU(U *Matrix, npiv int, W *Matrix) {
	switch kern.Resolve() {
	case KernelFast:
		solveBackwardLUFast(U, npiv, W)
		return
	case KernelSIMD:
		solveBackwardLUSIMD(U, npiv, W)
		return
	}
	n, m := W.R, W.C
	for k := npiv - 1; k >= 0; k-- {
		wk := W.A[k*m : k*m+m]
		uk := U.Row(k)
		for j := k + 1; j < n; j++ {
			u := uk[j]
			wj := W.A[j*m : j*m+m]
			for c := range wk {
				wk[c] -= u * wj[c]
			}
		}
		d := uk[k]
		for c := range wk {
			wk[c] /= d
		}
	}
}

// SolveBackwardCholesky applies the L^T backward substitution (row k of
// L^T is column k of L), dividing by the stored diagonal.
func (kern Kernel) SolveBackwardCholesky(L *Matrix, npiv int, W *Matrix) {
	switch kern.Resolve() {
	case KernelFast:
		solveBackwardCholeskyFast(L, npiv, W)
		return
	case KernelSIMD:
		solveBackwardCholeskySIMD(L, npiv, W)
		return
	}
	n, m := W.R, W.C
	for k := npiv - 1; k >= 0; k-- {
		wk := W.A[k*m : k*m+m]
		for i := k + 1; i < n; i++ {
			l := L.At(i, k)
			wi := W.A[i*m : i*m+m]
			for c := range wk {
				wk[c] -= l * wi[c]
			}
		}
		d := L.At(k, k)
		for c := range wk {
			wk[c] /= d
		}
	}
}

// allZero reports whether a panel row carries no work for the forward
// update (the blocked form of the reference's per-element zero skip).
func allZero(v []float64) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// solveForwardLUFast is the reordered-accumulation forward LU: pivot
// columns are consumed in pairs, each trailing row receiving one
// compound update — no zero skips, different rounding than the
// reference, deterministic for fixed operands.
func solveForwardLUFast(L *Matrix, npiv int, W *Matrix) {
	n, m := W.R, W.C
	k := 0
	for ; k+1 < npiv; k += 2 {
		va := W.A[k*m : k*m+m]
		vb := W.A[(k+1)*m : (k+1)*m+m]
		lba := L.At(k+1, k)
		for c, v := range va {
			vb[c] -= lba * v
		}
		for i := k + 2; i < n; i++ {
			la, lb := L.At(i, k), L.At(i, k+1)
			wi := W.A[i*m : i*m+m]
			for c := range wi {
				wi[c] -= la*va[c] + lb*vb[c]
			}
		}
	}
	for ; k < npiv; k++ {
		vk := W.A[k*m : k*m+m]
		for i := k + 1; i < n; i++ {
			l := L.At(i, k)
			wi := W.A[i*m : i*m+m]
			for c := range wi {
				wi[c] -= l * vk[c]
			}
		}
	}
}

// solveForwardCholeskyFast is solveForwardLUFast with the diagonal
// scaling folded into the pair head.
func solveForwardCholeskyFast(L *Matrix, npiv int, W *Matrix) {
	n, m := W.R, W.C
	k := 0
	for ; k+1 < npiv; k += 2 {
		da, db := L.At(k, k), L.At(k+1, k+1)
		va := W.A[k*m : k*m+m]
		vb := W.A[(k+1)*m : (k+1)*m+m]
		lba := L.At(k+1, k)
		for c := range va {
			va[c] /= da
			vb[c] = (vb[c] - lba*va[c]) / db
		}
		for i := k + 2; i < n; i++ {
			la, lb := L.At(i, k), L.At(i, k+1)
			wi := W.A[i*m : i*m+m]
			for c := range wi {
				wi[c] -= la*va[c] + lb*vb[c]
			}
		}
	}
	for ; k < npiv; k++ {
		d := L.At(k, k)
		vk := W.A[k*m : k*m+m]
		for c := range vk {
			vk[c] /= d
		}
		for i := k + 1; i < n; i++ {
			l := L.At(i, k)
			wi := W.A[i*m : i*m+m]
			for c := range wi {
				wi[c] -= l * vk[c]
			}
		}
	}
}

// solveBackwardLUFast pairs the solved source rows of each backward
// accumulation into compound multiply-adds.
func solveBackwardLUFast(U *Matrix, npiv int, W *Matrix) {
	n, m := W.R, W.C
	for k := npiv - 1; k >= 0; k-- {
		wk := W.A[k*m : k*m+m]
		uk := U.Row(k)
		j := k + 1
		for ; j+1 < n; j += 2 {
			ua, ub := uk[j], uk[j+1]
			wa := W.A[j*m : j*m+m]
			wb := W.A[(j+1)*m : (j+1)*m+m]
			for c := range wk {
				wk[c] -= ua*wa[c] + ub*wb[c]
			}
		}
		for ; j < n; j++ {
			u := uk[j]
			wj := W.A[j*m : j*m+m]
			for c := range wk {
				wk[c] -= u * wj[c]
			}
		}
		d := uk[k]
		for c := range wk {
			wk[c] /= d
		}
	}
}

// solveBackwardCholeskyFast is solveBackwardLUFast over column k of L.
func solveBackwardCholeskyFast(L *Matrix, npiv int, W *Matrix) {
	n, m := W.R, W.C
	for k := npiv - 1; k >= 0; k-- {
		wk := W.A[k*m : k*m+m]
		i := k + 1
		for ; i+1 < n; i += 2 {
			la, lb := L.At(i, k), L.At(i+1, k)
			wa := W.A[i*m : i*m+m]
			wb := W.A[(i+1)*m : (i+1)*m+m]
			for c := range wk {
				wk[c] -= la*wa[c] + lb*wb[c]
			}
		}
		for ; i < n; i++ {
			l := L.At(i, k)
			wi := W.A[i*m : i*m+m]
			for c := range wk {
				wk[c] -= l * wi[c]
			}
		}
		d := L.At(k, k)
		for c := range wk {
			wk[c] /= d
		}
	}
}
