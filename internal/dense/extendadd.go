// Run-merged extend-add: the scatter maps of the multifrontal assembly are
// sorted and, in practice, full of consecutive stretches (a child's rows
// are contiguous slices of the parent front whenever the orderings keep
// supernodes together). Detecting those runs once per child turns the
// scatter-heavy inner loop of ExtendAdd into plain vector adds over
// contiguous spans — copy-like memory traffic instead of per-element
// indexed gather/scatter. Each destination element still receives exactly
// one addition, so the result is bitwise identical to the element-wise
// scatter no matter how the runs fall.
package dense

// IndexRun is one maximal run of consecutive destination indices in a
// scatter map: source positions [J0,J0+Len) map onto destination indices
// [C0,C0+Len).
type IndexRun struct {
	J0, C0, Len int32
}

// AppendRuns appends the maximal consecutive runs of map_ to dst (reusing
// its capacity) and returns the extended slice. Callers that scatter many
// blocks keep one runs buffer and rebuild it per map.
func AppendRuns(dst []IndexRun, map_ []int) []IndexRun {
	for j := 0; j < len(map_); {
		c0 := map_[j]
		e := j + 1
		for e < len(map_) && map_[e] == map_[e-1]+1 {
			e++
		}
		dst = append(dst, IndexRun{J0: int32(j), C0: int32(c0), Len: int32(e - j)})
		j = e
	}
	return dst
}

// shortRun is the run length below which the scatter inlines plain scalar
// adds instead of calling the span primitive: on fragmented maps the
// per-run call/dispatch overhead, not the adds, dominates, and a run this
// short never fills a vector register anyway. Plain adds either way, so
// the threshold cannot change a single bit.
const shortRun = 8

// addRun adds the clipped run src[j0:j0+l) into dst[c0:c0+l), dispatching
// short runs to inline scalar adds and long ones to the vector-unit span
// add (addSpanFast — bitwise identical plain adds on every path).
func addRun(dst, src []float64, c0, j0, l int) {
	if l <= shortRun {
		d := dst[c0 : c0+l : c0+l]
		s := src[j0 : j0+l : j0+l]
		for t := range d {
			d[t] += s[t]
		}
		return
	}
	addSpanFast(dst[c0:c0+l], src[j0:j0+l])
}

// ExtendAddRuns scatters cb into f like ExtendAdd, using precomputed runs
// (AppendRuns over map_). The runs only describe the column structure; the
// row scatter stays indexed because distinct front rows are strided. Rows
// are processed four at a time so each run decode is amortized over four
// row additions — on fragmented maps (many short runs) this closes most of
// the gap to the contiguous single-run case. Each destination element
// still receives exactly one addition: bitwise identical to the
// element-wise scatter.
func ExtendAddRuns(f *Matrix, cb *Matrix, map_ []int, runs []IndexRun) {
	if cb.R != len(map_) || cb.C != len(map_) {
		panic("dense: ExtendAdd index map length mismatch")
	}
	i := 0
	for ; i+3 < cb.R; i += 4 {
		f0, c0r := f.Row(map_[i]), cb.Row(i)
		f1, c1r := f.Row(map_[i+1]), cb.Row(i+1)
		f2, c2r := f.Row(map_[i+2]), cb.Row(i+2)
		f3, c3r := f.Row(map_[i+3]), cb.Row(i+3)
		scatterRuns4(f0, f1, f2, f3, c0r, c1r, c2r, c3r, runs)
	}
	for ; i < cb.R; i++ {
		fRow := f.Row(map_[i])
		cbRow := cb.Row(i)
		for _, r := range runs {
			addRun(fRow, cbRow, int(r.C0), int(r.J0), int(r.Len))
		}
	}
}

// ExtendAddLowerRuns scatters the lower triangle of cb into the lower
// triangle of f (symmetric fronts, increasing map_), using precomputed
// runs. Row i only receives source columns [0, i]; the run that straddles
// the diagonal is clipped. Runs entirely below the diagonal of a four-row
// group are applied to all four rows per decode; the straddling tail runs
// finish row by row.
func ExtendAddLowerRuns(f *Matrix, cb *Matrix, map_ []int, runs []IndexRun) {
	if cb.R != len(map_) || cb.C != len(map_) {
		panic("dense: ExtendAddLower index map length mismatch")
	}
	i := 0
	for ; i+3 < cb.R; i += 4 {
		f0, c0r := f.Row(map_[i]), cb.Row(i)
		f1, c1r := f.Row(map_[i+1]), cb.Row(i+1)
		f2, c2r := f.Row(map_[i+2]), cb.Row(i+2)
		f3, c3r := f.Row(map_[i+3]), cb.Row(i+3)
		ri := 0
		for ; ri < len(runs); ri++ {
			r := runs[ri]
			if int(r.J0)+int(r.Len) > i+1 {
				break // straddles or exceeds the first row's diagonal
			}
		}
		scatterRuns4(f0, f1, f2, f3, c0r, c1r, c2r, c3r, runs[:ri])
		for t := 0; t < 4; t++ {
			row := i + t
			fRow := f.Row(map_[row])
			cbRow := cb.Row(row)
			for _, r := range runs[ri:] {
				j0 := int(r.J0)
				if j0 > row {
					break
				}
				l := int(r.Len)
				if j0+l > row+1 {
					l = row + 1 - j0
				}
				addRun(fRow, cbRow, int(r.C0), j0, l)
			}
		}
	}
	for ; i < cb.R; i++ {
		fRow := f.Row(map_[i])
		cbRow := cb.Row(i)
		for _, r := range runs {
			j0 := int(r.J0)
			if j0 > i {
				break
			}
			l := int(r.Len)
			if j0+l > i+1 {
				l = i + 1 - j0
			}
			addRun(fRow, cbRow, int(r.C0), j0, l)
		}
	}
}
