// Run-merged extend-add: the scatter maps of the multifrontal assembly are
// sorted and, in practice, full of consecutive stretches (a child's rows
// are contiguous slices of the parent front whenever the orderings keep
// supernodes together). Detecting those runs once per child turns the
// scatter-heavy inner loop of ExtendAdd into plain vector adds over
// contiguous spans — copy-like memory traffic instead of per-element
// indexed gather/scatter. Each destination element still receives exactly
// one addition, so the result is bitwise identical to the element-wise
// scatter no matter how the runs fall.
package dense

// IndexRun is one maximal run of consecutive destination indices in a
// scatter map: source positions [J0,J0+Len) map onto destination indices
// [C0,C0+Len).
type IndexRun struct {
	J0, C0, Len int32
}

// AppendRuns appends the maximal consecutive runs of map_ to dst (reusing
// its capacity) and returns the extended slice. Callers that scatter many
// blocks keep one runs buffer and rebuild it per map.
func AppendRuns(dst []IndexRun, map_ []int) []IndexRun {
	for j := 0; j < len(map_); {
		c0 := map_[j]
		e := j + 1
		for e < len(map_) && map_[e] == map_[e-1]+1 {
			e++
		}
		dst = append(dst, IndexRun{J0: int32(j), C0: int32(c0), Len: int32(e - j)})
		j = e
	}
	return dst
}

// addSpan computes dst[j] += src[j] over the whole span, 4x-unrolled.
func addSpan(dst, src []float64) {
	n := len(src)
	dst = dst[:n:n]
	src = src[:n:n]
	j := 0
	for ; j+3 < n; j += 4 {
		dst[j] += src[j]
		dst[j+1] += src[j+1]
		dst[j+2] += src[j+2]
		dst[j+3] += src[j+3]
	}
	for ; j < n; j++ {
		dst[j] += src[j]
	}
}

// ExtendAddRuns scatters cb into f like ExtendAdd, using precomputed runs
// (AppendRuns over map_). The runs only describe the column structure; the
// row scatter stays indexed because distinct front rows are strided.
func ExtendAddRuns(f *Matrix, cb *Matrix, map_ []int, runs []IndexRun) {
	if cb.R != len(map_) || cb.C != len(map_) {
		panic("dense: ExtendAdd index map length mismatch")
	}
	for i := 0; i < cb.R; i++ {
		fRow := f.Row(map_[i])
		cbRow := cb.Row(i)
		for _, r := range runs {
			addSpan(fRow[r.C0:int(r.C0)+int(r.Len)], cbRow[r.J0:int(r.J0)+int(r.Len)])
		}
	}
}

// ExtendAddLowerRuns scatters the lower triangle of cb into the lower
// triangle of f (symmetric fronts, increasing map_), using precomputed
// runs. Row i only receives source columns [0, i]; the run that straddles
// the diagonal is clipped.
func ExtendAddLowerRuns(f *Matrix, cb *Matrix, map_ []int, runs []IndexRun) {
	if cb.R != len(map_) || cb.C != len(map_) {
		panic("dense: ExtendAddLower index map length mismatch")
	}
	for i := 0; i < cb.R; i++ {
		fRow := f.Row(map_[i])
		cbRow := cb.Row(i)
		for _, r := range runs {
			j0 := int(r.J0)
			if j0 > i {
				break
			}
			l := int(r.Len)
			if j0+l > i+1 {
				l = i + 1 - j0
			}
			addSpan(fRow[r.C0:int(r.C0)+l], cbRow[j0:j0+l])
		}
	}
}
