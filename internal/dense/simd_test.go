package dense

import (
	"math"
	"math/rand"
	"testing"
)

// TestKernelSIMDResidual validates the fused family the way it is
// specified: a full SIMD LU solves a random system to machine-level
// residual, and SIMD Cholesky factors agree with the default ones to
// tight relative tolerance.
func TestKernelSIMDResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	n := 96
	a := randomDiagDominant(n, rng)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	MatVec(a, x, b, 1)
	lu := cloneM(a)
	if err := KernelSIMD.PartialLU(lu, n, 1e-14, 16); err != nil {
		t.Fatal(err)
	}
	y := append([]float64(nil), b...)
	for i := 0; i < n; i++ {
		for k := 0; k < i; k++ {
			y[i] -= lu.At(i, k) * y[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		for k := i + 1; k < n; k++ {
			y[i] -= lu.At(i, k) * y[k]
		}
		y[i] /= lu.At(i, i)
	}
	for i := range x {
		if math.Abs(y[i]-x[i]) > 1e-9*(1+math.Abs(x[i])) {
			t.Fatalf("simd LU solve off at %d: %g vs %g", i, y[i], x[i])
		}
	}

	s := randomSPD(n, rng)
	sparsify(s, 0.4, true, rng)
	def := cloneM(s)
	if err := KernelDefault.PartialCholesky(def, n/2, 16); err != nil {
		t.Fatal(err)
	}
	simd := cloneM(s)
	if err := KernelSIMD.PartialCholesky(simd, n/2, 16); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			d := math.Abs(def.At(i, j) - simd.At(i, j))
			if d > 1e-8*(1+math.Abs(def.At(i, j))) {
				t.Fatalf("simd cholesky (%d,%d): %g vs %g", i, j, simd.At(i, j), def.At(i, j))
			}
		}
	}
}

// TestKernelSIMDPartitionInvariance pins the determinism the parallel
// executor relies on in SIMD mode: the SIMD row kernels compute identical
// bits however the trailing rows are grouped into blocks.
func TestKernelSIMDPartitionInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n, npiv := 47, 18

	lu := randomDiagDominant(n, rng)
	sparsify(lu, 0.3, false, rng)
	if err := PanelLU(lu, 0, npiv, 1e-14); err != nil {
		t.Fatal(err)
	}
	apply := func(parts [][2]int) *Matrix {
		f := cloneM(lu)
		for _, r := range parts {
			KernelSIMD.LUApplyRows(f, 0, npiv, r[0], r[1])
		}
		return f
	}
	ref := apply([][2]int{{npiv, n}})
	bitsEqual(t, "simd LU ragged", ref, apply([][2]int{{npiv, npiv + 3}, {npiv + 3, 30}, {30, n}}))

	ch := randomSPD(n, rng)
	sparsify(ch, 0.4, true, rng)
	if err := PanelCholesky(ch, 0, npiv); err != nil {
		t.Fatal(err)
	}
	CholeskyScaleRows(ch, 0, npiv, npiv, n)
	update := func(parts [][2]int) *Matrix {
		f := cloneM(ch)
		for _, r := range parts {
			KernelSIMD.CholeskyUpdateRows(f, 0, npiv, r[0], r[1])
		}
		return f
	}
	refC := update([][2]int{{npiv, n}})
	gotC := update([][2]int{{npiv, npiv + 1}, {npiv + 1, 33}, {33, n}})
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if math.Float64bits(refC.At(i, j)) != math.Float64bits(gotC.At(i, j)) {
				t.Fatalf("simd cholesky partition (%d,%d): %g vs %g", i, j, refC.At(i, j), gotC.At(i, j))
			}
		}
	}
}

// TestKernelSIMDTileInvariance pins SIMD-2D == SIMD-1D: splitting a panel
// step into the L-tile solve plus update tiles over any grid reproduces
// the 1D row kernel bit for bit, for both LU and the symmetric update.
func TestKernelSIMDTileInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	n, npiv := 61, 20

	lu := randomDiagDominant(n, rng)
	sparsify(lu, 0.3, false, rng)
	if err := PanelLU(lu, 0, npiv, 1e-14); err != nil {
		t.Fatal(err)
	}
	ref := cloneM(lu)
	KernelSIMD.LUApplyRows(ref, 0, npiv, npiv, n)
	got := cloneM(lu)
	for _, r := range [][2]int{{npiv, 33}, {33, n}} {
		KernelSIMD.LUSolveRows(got, 0, npiv, r[0], r[1])
	}
	for _, r := range [][2]int{{npiv, 40}, {40, n}} {
		for _, c := range [][2]int{{npiv, npiv + 5}, {npiv + 5, 44}, {44, n}} {
			KernelSIMD.LUUpdateTile(got, 0, npiv, r[0], r[1], c[0], c[1])
		}
	}
	bitsEqual(t, "simd LU tiles", ref, got)

	ch := randomSPD(n, rng)
	sparsify(ch, 0.4, true, rng)
	if err := PanelCholesky(ch, 0, npiv); err != nil {
		t.Fatal(err)
	}
	CholeskyScaleRows(ch, 0, npiv, npiv, n)
	refC := cloneM(ch)
	KernelSIMD.CholeskyUpdateRows(refC, 0, npiv, npiv, n)
	gotC := cloneM(ch)
	for _, r := range [][2]int{{npiv, 30}, {30, n}} {
		for _, c := range [][2]int{{npiv, 37}, {37, n}} {
			KernelSIMD.CholeskyUpdateTile(gotC, 0, npiv, r[0], r[1], c[0], c[1])
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if math.Float64bits(refC.At(i, j)) != math.Float64bits(gotC.At(i, j)) {
				t.Fatalf("simd cholesky tiles (%d,%d): %g vs %g", i, j, refC.At(i, j), gotC.At(i, j))
			}
		}
	}
}

// TestKernelSIMDPortableBitwise pins the fallback guarantee at the
// factorization level: a full SIMD factorization through the assembly
// path is bitwise identical to the same factorization through the
// portable math.FMA path (what non-amd64 builds and REPRO_SIMD=off run).
func TestKernelSIMDPortableBitwise(t *testing.T) {
	if !simdHW {
		t.Skip("no AVX2/FMA hardware path on this machine")
	}
	rng := rand.New(rand.NewSource(23))
	n := 83
	a := randomDiagDominant(n, rng)
	sparsify(a, 0.3, false, rng)
	s := randomSPD(n, rng)
	sparsify(s, 0.4, true, rng)

	run := func(vector bool) (*Matrix, *Matrix) {
		was := simdEnabled
		simdEnabled = vector
		defer func() { simdEnabled = was }()
		lu := cloneM(a)
		if err := KernelSIMD.PartialLU(lu, n-7, 1e-14, 16); err != nil {
			t.Fatal(err)
		}
		ch := cloneM(s)
		if err := KernelSIMD.PartialCholesky(ch, n/2, 16); err != nil {
			t.Fatal(err)
		}
		return lu, ch
	}
	luVec, chVec := run(true)
	luGo, chGo := run(false)
	bitsEqual(t, "simd LU asm-vs-portable", luVec, luGo)
	bitsEqual(t, "simd cholesky asm-vs-portable", chVec, chGo)
}

// TestKernelSIMDSolveKernels validates the fused triangular solves against
// the default solve kernels to tight tolerance, and pins their
// column-count independence: each RHS column of a multi-RHS SIMD solve is
// bitwise identical to solving that column alone.
func TestKernelSIMDSolveKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	f, npiv, nrhs := 37, 21, 5

	L := New(f, f)
	U := New(f, f)
	for i := 0; i < f; i++ {
		for j := 0; j < f; j++ {
			L.Set(i, j, rng.NormFloat64())
			U.Set(i, j, rng.NormFloat64())
		}
		L.Set(i, i, 4+rng.Float64())
		U.Set(i, i, 4+rng.Float64())
	}
	W0 := New(f, nrhs)
	for i := range W0.A {
		W0.A[i] = rng.NormFloat64()
	}

	type solveFn func(kern Kernel, M *Matrix, W *Matrix)
	kernels := []struct {
		name string
		m    *Matrix
		run  solveFn
	}{
		{"fwdLU", L, func(k Kernel, M, W *Matrix) { k.SolveForwardLU(M, npiv, W) }},
		{"fwdChol", L, func(k Kernel, M, W *Matrix) { k.SolveForwardCholesky(M, npiv, W) }},
		{"bwdLU", U, func(k Kernel, M, W *Matrix) { k.SolveBackwardLU(M, npiv, W) }},
		{"bwdChol", L, func(k Kernel, M, W *Matrix) { k.SolveBackwardCholesky(M, npiv, W) }},
	}
	for _, kc := range kernels {
		def := cloneM(W0)
		kc.run(KernelDefault, kc.m, def)
		simd := cloneM(W0)
		kc.run(KernelSIMD, kc.m, simd)
		for i := range def.A {
			if d := math.Abs(def.A[i] - simd.A[i]); d > 1e-9*(1+math.Abs(def.A[i])) {
				t.Fatalf("%s: element %d: simd %g default %g", kc.name, i, simd.A[i], def.A[i])
			}
		}
		// Column independence: each column solved alone matches the batch.
		for c := 0; c < nrhs; c++ {
			w1 := New(f, 1)
			for i := 0; i < f; i++ {
				w1.A[i] = W0.At(i, c)
			}
			kc.run(KernelSIMD, kc.m, w1)
			for i := 0; i < f; i++ {
				if math.Float64bits(w1.A[i]) != math.Float64bits(simd.At(i, c)) {
					t.Fatalf("%s: col %d row %d differs single-RHS vs batch", kc.name, c, i)
				}
			}
		}
	}
}

// TestKernelSIMDZeroAlloc pins the SIMD kernels' steady-state stack
// discipline: default-width panels run without a single heap allocation.
func TestKernelSIMDZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	n, npiv := 160, 32
	lu := randomDiagDominant(n, rng)
	if err := PanelLU(lu, 0, npiv, 1e-14); err != nil {
		t.Fatal(err)
	}
	ch := randomSPD(n, rng)
	if err := PanelCholesky(ch, 0, npiv); err != nil {
		t.Fatal(err)
	}
	CholeskyScaleRows(ch, 0, npiv, npiv, n)
	allocs := testing.AllocsPerRun(10, func() {
		KernelSIMD.LUApplyRows(lu, 0, npiv, npiv, n)
		KernelSIMD.LUSolveRows(lu, 0, npiv, npiv, n)
		KernelSIMD.LUUpdateTile(lu, 0, npiv, npiv, n, npiv, n)
		KernelSIMD.CholeskyUpdateRows(ch, 0, npiv, npiv, n)
		KernelSIMD.CholeskyUpdateTile(ch, 0, npiv, npiv, n, npiv+4, n-4)
	})
	if allocs != 0 {
		t.Fatalf("SIMD kernels allocate %v per run, want 0", allocs)
	}
}

// TestKernelResolveAndParse covers the auto policy and the -kernel
// grammar.
func TestKernelResolveAndParse(t *testing.T) {
	for _, k := range []Kernel{KernelDefault, KernelFast, KernelSIMD} {
		if got := k.Resolve(); got != k {
			t.Fatalf("%v.Resolve() = %v, want itself", k, got)
		}
	}
	auto := KernelAuto.Resolve()
	if simdEnabled && auto != KernelSIMD {
		t.Fatalf("auto resolved to %v with SIMD available", auto)
	}
	if !simdEnabled && auto != KernelFast {
		t.Fatalf("auto resolved to %v without SIMD", auto)
	}

	good := map[string]Kernel{
		"": KernelDefault, "default": KernelDefault, "DEFAULT": KernelDefault,
		"fast": KernelFast, "Fast": KernelFast,
		"simd": KernelSIMD, "SIMD": KernelSIMD,
		"auto": KernelAuto, "Auto": KernelAuto,
	}
	for s, want := range good {
		got, err := ParseKernel(s)
		if err != nil || got != want {
			t.Fatalf("ParseKernel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	for _, s := range []string{"turbo", "simd2", "none", "fastest"} {
		if _, err := ParseKernel(s); err == nil {
			t.Fatalf("ParseKernel(%q) accepted", s)
		}
	}
	if KernelSIMD.String() != "simd" || KernelAuto.String() != "auto" {
		t.Fatalf("String(): %q %q", KernelSIMD.String(), KernelAuto.String())
	}
}
