// Package metrics provides the table assembly and formatting used by the
// experiment harness to print paper-style result tables, plus the
// percentage computations of Tables 2-6.
package metrics

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New returns an empty table.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row (stringifying each cell).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the aligned table as a string.
func (t *Table) Render() string {
	ncol := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	width := make([]int, ncol)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(r []string) {
		for i := 0; i < ncol; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", width[i], c)
			} else {
				fmt.Fprintf(&b, "  %*s", width[i], c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range width {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// PercentDecrease returns 100*(base-new)/base — the paper's gain metric
// (positive = improvement). Returns 0 for a zero base.
func PercentDecrease(base, new int64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(base-new) / float64(base)
}

// PercentIncrease returns 100*(new-base)/base — the paper's Table 6 loss
// metric (positive = slower).
func PercentIncrease(base, new int64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(new-base) / float64(base)
}

// Millions formats an entry count in millions with two decimals, as in
// the paper's Table 4.
func Millions(v int64) string {
	return fmt.Sprintf("%.2f", float64(v)/1e6)
}
