package metrics

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := New("Title", "A", "BB")
	tbl.AddRow("x", 12)
	tbl.AddRow("longer", 3.25)
	out := tbl.Render()
	if !strings.HasPrefix(out, "Title\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[3], "12") || !strings.Contains(lines[4], "3.2") {
		t.Errorf("cells missing:\n%s", out)
	}
	// Columns aligned: header and rows same width.
	if len(lines[1]) != len(lines[4]) {
		t.Errorf("misaligned: %q vs %q", lines[1], lines[4])
	}
}

func TestPercentDecrease(t *testing.T) {
	if got := PercentDecrease(200, 100); got != 50 {
		t.Errorf("got %v", got)
	}
	if got := PercentDecrease(100, 110); got != -10 {
		t.Errorf("got %v", got)
	}
	if got := PercentDecrease(0, 5); got != 0 {
		t.Errorf("zero base: %v", got)
	}
}

func TestPercentIncrease(t *testing.T) {
	if got := PercentIncrease(100, 150); got != 50 {
		t.Errorf("got %v", got)
	}
	if got := PercentIncrease(0, 5); got != 0 {
		t.Errorf("zero base: %v", got)
	}
}

func TestMillions(t *testing.T) {
	if got := Millions(7_560_000); got != "7.56" {
		t.Errorf("got %q", got)
	}
	if got := Millions(0); got != "0.00" {
		t.Errorf("got %q", got)
	}
}
