package graph

// Bisection splits a graph into two halves plus a vertex separator. It is
// the kernel of the nested-dissection ordering (internal/order.ND).

// Bisection is the result of a graph bisection: PartA and PartB are the two
// halves, Sep is the vertex separator. Every vertex appears in exactly one
// of the three lists.
type Bisection struct {
	PartA, PartB, Sep []int
}

// Bisect computes a vertex bisection of the induced subgraph on verts using
// a level-set split from a pseudo-peripheral vertex, followed by separator
// minimization (moving separator vertices with one-sided neighborhoods into
// their part). verts must be a connected set for best quality but
// disconnected sets are handled (smallest components are distributed).
func Bisect(g *Graph, verts []int) Bisection {
	if len(verts) <= 1 {
		return Bisection{PartA: append([]int(nil), verts...)}
	}
	const inSet = 1
	mask := make([]int, g.N)
	for _, v := range verts {
		mask[v] = inSet
	}
	defer func() {
		for _, v := range verts {
			mask[v] = 0
		}
	}()

	// Work component by component; accumulate the split so that the overall
	// halves stay balanced.
	var out Bisection
	sizeA, sizeB := 0, 0
	seen := make(map[int]bool, len(verts))
	for _, start := range verts {
		if seen[start] {
			continue
		}
		_, comp, _ := g.BFSLevels(start, mask, inSet)
		for _, v := range comp {
			seen[v] = true
		}
		if len(comp) <= 2 {
			// Tiny component: dump into the lighter side.
			if sizeA <= sizeB {
				out.PartA = append(out.PartA, comp...)
				sizeA += len(comp)
			} else {
				out.PartB = append(out.PartB, comp...)
				sizeB += len(comp)
			}
			continue
		}
		a, b, s := bisectComponent(g, comp, mask, inSet)
		if sizeA <= sizeB {
			out.PartA = append(out.PartA, a...)
			out.PartB = append(out.PartB, b...)
			sizeA += len(a)
			sizeB += len(b)
		} else {
			out.PartA = append(out.PartA, b...)
			out.PartB = append(out.PartB, a...)
			sizeA += len(b)
			sizeB += len(a)
		}
		out.Sep = append(out.Sep, s...)
	}
	return out
}

// bisectComponent splits one connected component comp.
func bisectComponent(g *Graph, comp []int, mask []int, inSet int) (partA, partB, sep []int) {
	root := g.PseudoPeripheral(comp[0], mask, inSet)
	level, order, ecc := g.BFSLevels(root, mask, inSet)
	if ecc == 0 {
		return comp, nil, nil
	}
	// Choose the cut level so that halves are balanced: the first level
	// whose cumulative size reaches half the component.
	levelCount := make([]int, ecc+1)
	for _, v := range order {
		levelCount[level[v]]++
	}
	half := len(comp) / 2
	cum := 0
	cut := 0
	for l := 0; l <= ecc; l++ {
		cum += levelCount[l]
		if cum >= half {
			cut = l
			break
		}
	}
	if cut == ecc {
		cut = ecc - 1 // keep part B nonempty
	}
	// Initial split: levels <= cut in A, > cut+? Take separator = vertices
	// at level cut+1 adjacent to level cut... simpler: separator is the
	// subset of level cut+1 vertices adjacent to A; but classic wide-to-
	// narrow: sep = vertices at level cut+1 with a neighbor at level cut.
	const (
		inA = iota + 1
		inB
		inSep
	)
	side := make(map[int]int, len(comp))
	for _, v := range order {
		if level[v] <= cut {
			side[v] = inA
		} else {
			side[v] = inB
		}
	}
	for _, v := range order {
		if level[v] != cut+1 {
			continue
		}
		for _, w := range g.Neighbors(v) {
			if mask[w] == inSet && level[w] == cut {
				side[v] = inSep
				break
			}
		}
	}
	// Smoothing: a separator vertex with no neighbors in one side can move
	// to the other side. Iterate a few times.
	for pass := 0; pass < 4; pass++ {
		moved := false
		for _, v := range order {
			if side[v] != inSep {
				continue
			}
			hasA, hasB := false, false
			for _, w := range g.Neighbors(v) {
				if mask[w] != inSet {
					continue
				}
				switch side[w] {
				case inA:
					hasA = true
				case inB:
					hasB = true
				}
			}
			if hasA && !hasB {
				side[v] = inA
				moved = true
			} else if hasB && !hasA {
				side[v] = inB
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	// Validity repair: an A vertex adjacent to a B vertex is pulled into the
	// separator (can happen after smoothing).
	for _, v := range order {
		if side[v] != inA {
			continue
		}
		for _, w := range g.Neighbors(v) {
			if mask[w] == inSet && side[w] == inB {
				side[v] = inSep
				break
			}
		}
	}
	for _, v := range order {
		switch side[v] {
		case inA:
			partA = append(partA, v)
		case inB:
			partB = append(partB, v)
		default:
			sep = append(sep, v)
		}
	}
	return partA, partB, sep
}

// CheckBisection verifies that no edge joins PartA and PartB directly; used
// in tests.
func CheckBisection(g *Graph, b Bisection) bool {
	side := make(map[int]int)
	for _, v := range b.PartA {
		side[v] = 1
	}
	for _, v := range b.PartB {
		side[v] = 2
	}
	for _, v := range b.PartA {
		for _, w := range g.Neighbors(v) {
			if side[w] == 2 {
				return false
			}
		}
	}
	return true
}
