// Package graph provides undirected adjacency graphs and the traversal and
// partitioning primitives used by the fill-reducing orderings: BFS level
// structures, pseudo-peripheral vertex search, connected components and a
// level-set based bisection with boundary smoothing (the kernel of the
// nested-dissection ordering that stands in for METIS).
package graph

import (
	"repro/internal/sparse"
)

// Graph is an undirected graph in adjacency-list (CSR) form without
// self-loops. Neighbor lists are sorted.
type Graph struct {
	N   int
	Ptr []int
	Adj []int
}

// FromMatrix builds the adjacency graph of the symmetrized pattern of a,
// excluding the diagonal.
func FromMatrix(a *sparse.CSC) *Graph {
	s := a
	if a.Kind != sparse.Symmetric {
		s = sparse.SymmetrizePattern(a)
	}
	// Count degrees over both triangles of the symmetric pattern.
	n := s.N
	deg := make([]int, n)
	for j := 0; j < n; j++ {
		for p := s.ColPtr[j]; p < s.ColPtr[j+1]; p++ {
			i := s.RowIdx[p]
			if i != j {
				deg[i]++
				deg[j]++
			}
		}
	}
	g := &Graph{N: n, Ptr: make([]int, n+1)}
	for v := 0; v < n; v++ {
		g.Ptr[v+1] = g.Ptr[v] + deg[v]
	}
	g.Adj = make([]int, g.Ptr[n])
	next := append([]int(nil), g.Ptr[:n]...)
	for j := 0; j < n; j++ {
		for p := s.ColPtr[j]; p < s.ColPtr[j+1]; p++ {
			i := s.RowIdx[p]
			if i != j {
				g.Adj[next[i]] = j
				next[i]++
				g.Adj[next[j]] = i
				next[j]++
			}
		}
	}
	// Neighbor lists come out sorted because columns are processed in order
	// and row indices within a column are ascending... not guaranteed for
	// the i-side inserts; sort each list to be safe.
	for v := 0; v < n; v++ {
		insertionSort(g.Adj[g.Ptr[v]:g.Ptr[v+1]])
	}
	return g
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		x := a[i]
		j := i - 1
		for j >= 0 && a[j] > x {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = x
	}
}

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return g.Ptr[v+1] - g.Ptr[v] }

// Neighbors returns the adjacency list of v (aliased, do not modify).
func (g *Graph) Neighbors(v int) []int { return g.Adj[g.Ptr[v]:g.Ptr[v+1]] }

// Subgraph extracts the induced subgraph on verts. It returns the subgraph
// and the mapping local→global (which is just verts). Vertices in verts
// must be distinct.
func (g *Graph) Subgraph(verts []int) (*Graph, []int) {
	local := make(map[int]int, len(verts))
	for i, v := range verts {
		local[v] = i
	}
	sg := &Graph{N: len(verts), Ptr: make([]int, len(verts)+1)}
	var adj []int
	for i, v := range verts {
		for _, w := range g.Neighbors(v) {
			if lw, ok := local[w]; ok {
				adj = append(adj, lw)
			}
		}
		sg.Ptr[i+1] = len(adj)
	}
	sg.Adj = adj
	for i := 0; i < sg.N; i++ {
		insertionSort(sg.Adj[sg.Ptr[i]:sg.Ptr[i+1]])
	}
	return sg, verts
}

// BFSLevels performs a breadth-first search from root restricted to
// vertices where mask[v] == maskVal (pass nil mask for the whole graph).
// It returns the level of each reached vertex (-1 if unreached), the list
// of reached vertices in BFS order, and the eccentricity (last level).
func (g *Graph) BFSLevels(root int, mask []int, maskVal int) (level []int, order []int, ecc int) {
	level = make([]int, g.N)
	for i := range level {
		level[i] = -1
	}
	order = make([]int, 0, g.N)
	level[root] = 0
	order = append(order, root)
	for qi := 0; qi < len(order); qi++ {
		v := order[qi]
		for _, w := range g.Neighbors(v) {
			if level[w] >= 0 {
				continue
			}
			if mask != nil && mask[w] != maskVal {
				continue
			}
			level[w] = level[v] + 1
			order = append(order, w)
		}
	}
	if len(order) > 0 {
		ecc = level[order[len(order)-1]]
	}
	return level, order, ecc
}

// PseudoPeripheral returns an approximate peripheral vertex of the
// component containing root (restricted by mask as in BFSLevels), using the
// Gibbs-Poole-Stockmeyer style iteration: repeatedly BFS and move to a
// minimum-degree vertex of the last level until the eccentricity stops
// growing.
func (g *Graph) PseudoPeripheral(root int, mask []int, maskVal int) int {
	v := root
	_, order, ecc := g.BFSLevels(v, mask, maskVal)
	for iter := 0; iter < 10; iter++ {
		// Find a min-degree vertex among the deepest level.
		level, ord, e := g.BFSLevels(v, mask, maskVal)
		best, bestDeg := -1, 1<<62
		for i := len(ord) - 1; i >= 0 && level[ord[i]] == e; i-- {
			if d := g.Degree(ord[i]); d < bestDeg {
				best, bestDeg = ord[i], d
			}
		}
		if best < 0 || e <= ecc && iter > 0 {
			break
		}
		if e <= ecc {
			ecc = e
			v = best
			continue
		}
		ecc = e
		v = best
		_ = order
	}
	return v
}

// Components returns the connected components of the graph as vertex lists.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.N)
	var comps [][]int
	for s := 0; s < g.N; s++ {
		if seen[s] {
			continue
		}
		comp := []int{s}
		seen[s] = true
		for qi := 0; qi < len(comp); qi++ {
			for _, w := range g.Neighbors(comp[qi]) {
				if !seen[w] {
					seen[w] = true
					comp = append(comp, w)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}
