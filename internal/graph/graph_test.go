package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

func pathGraph(n int) *Graph {
	b := sparse.NewBuilder(n, sparse.Symmetric)
	for i := 0; i < n; i++ {
		b.Add(i, i, 1)
		if i+1 < n {
			b.Add(i+1, i, 1)
		}
	}
	return FromMatrix(b.Build())
}

func TestFromMatrixGrid(t *testing.T) {
	g := FromMatrix(sparse.Grid2D(3, 3))
	if g.N != 9 {
		t.Fatalf("N = %d", g.N)
	}
	// Corner has degree 2, center degree 4.
	if g.Degree(0) != 2 {
		t.Errorf("corner degree = %d, want 2", g.Degree(0))
	}
	if g.Degree(4) != 4 {
		t.Errorf("center degree = %d, want 4", g.Degree(4))
	}
	// Adjacency lists sorted and symmetric.
	for v := 0; v < g.N; v++ {
		nb := g.Neighbors(v)
		if !sort.IntsAreSorted(nb) {
			t.Fatalf("neighbors of %d not sorted: %v", v, nb)
		}
		for _, w := range nb {
			found := false
			for _, x := range g.Neighbors(w) {
				if x == v {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d-%d not symmetric", v, w)
			}
		}
	}
}

func TestFromMatrixUnsymmetric(t *testing.T) {
	b := sparse.NewBuilder(3, sparse.Unsymmetric)
	b.Add(0, 1, 1) // upper only: edge 0-1 must appear after symmetrization
	b.Add(2, 2, 1)
	g := FromMatrix(b.Build())
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Errorf("degrees = %d,%d,%d", g.Degree(0), g.Degree(1), g.Degree(2))
	}
}

func TestBFSLevelsPath(t *testing.T) {
	g := pathGraph(5)
	level, order, ecc := g.BFSLevels(0, nil, 0)
	if ecc != 4 {
		t.Errorf("ecc = %d, want 4", ecc)
	}
	for i := 0; i < 5; i++ {
		if level[i] != i {
			t.Errorf("level[%d] = %d", i, level[i])
		}
	}
	if len(order) != 5 {
		t.Errorf("reached %d vertices", len(order))
	}
}

func TestBFSMask(t *testing.T) {
	g := pathGraph(5)
	mask := []int{1, 1, 0, 1, 1} // vertex 2 blocked
	_, order, _ := g.BFSLevels(0, mask, 1)
	if len(order) != 2 {
		t.Errorf("reached %d vertices, want 2 (blocked by mask)", len(order))
	}
}

func TestPseudoPeripheralPath(t *testing.T) {
	g := pathGraph(9)
	v := g.PseudoPeripheral(4, nil, 0)
	if v != 0 && v != 8 {
		t.Errorf("pseudo-peripheral of path from middle = %d, want an end", v)
	}
}

func TestComponents(t *testing.T) {
	b := sparse.NewBuilder(6, sparse.Symmetric)
	b.Add(1, 0, 1)
	b.Add(3, 2, 1)
	b.Add(4, 3, 1)
	b.Add(5, 5, 1)
	g := FromMatrix(b.Build())
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("%d components, want 3", len(comps))
	}
	sizes := []int{len(comps[0]), len(comps[1]), len(comps[2])}
	sort.Ints(sizes)
	if sizes[0] != 1 || sizes[1] != 2 || sizes[2] != 3 {
		t.Errorf("component sizes %v", sizes)
	}
}

func TestSubgraph(t *testing.T) {
	g := FromMatrix(sparse.Grid2D(3, 3))
	sg, m := g.Subgraph([]int{0, 1, 2, 3})
	if sg.N != 4 || len(m) != 4 {
		t.Fatalf("subgraph size %d", sg.N)
	}
	// vertices 0,1,2 form a path (column of the grid); 3 attaches to 0.
	totalEdges := 0
	for v := 0; v < sg.N; v++ {
		totalEdges += sg.Degree(v)
	}
	if totalEdges%2 != 0 {
		t.Error("odd total degree")
	}
}

func TestBisectGrid(t *testing.T) {
	g := FromMatrix(sparse.Grid2D(8, 8))
	verts := make([]int, g.N)
	for i := range verts {
		verts[i] = i
	}
	b := Bisect(g, verts)
	if len(b.PartA)+len(b.PartB)+len(b.Sep) != g.N {
		t.Fatalf("partition loses vertices: %d+%d+%d != %d",
			len(b.PartA), len(b.PartB), len(b.Sep), g.N)
	}
	if !CheckBisection(g, b) {
		t.Fatal("separator does not separate")
	}
	if len(b.Sep) > 16 {
		t.Errorf("separator too large for 8x8 grid: %d", len(b.Sep))
	}
	// Balance within a factor ~3.
	if len(b.PartA)*3 < len(b.PartB) || len(b.PartB)*3 < len(b.PartA) {
		t.Errorf("unbalanced: %d vs %d", len(b.PartA), len(b.PartB))
	}
}

func TestBisectDisconnected(t *testing.T) {
	b := sparse.NewBuilder(6, sparse.Symmetric)
	b.Add(1, 0, 1)
	b.Add(2, 1, 1)
	b.Add(4, 3, 1)
	b.Add(5, 4, 1)
	g := FromMatrix(b.Build())
	verts := []int{0, 1, 2, 3, 4, 5}
	bi := Bisect(g, verts)
	if len(bi.PartA)+len(bi.PartB)+len(bi.Sep) != 6 {
		t.Fatal("lost vertices")
	}
	if !CheckBisection(g, bi) {
		t.Fatal("invalid bisection")
	}
}

func TestBisectPropertyRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(80)
		a := sparse.RandomSPDPattern(n, 3, rng)
		g := FromMatrix(a)
		verts := make([]int, n)
		for i := range verts {
			verts[i] = i
		}
		b := Bisect(g, verts)
		if len(b.PartA)+len(b.PartB)+len(b.Sep) != n {
			return false
		}
		return CheckBisection(g, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBisectTiny(t *testing.T) {
	g := pathGraph(1)
	b := Bisect(g, []int{0})
	if len(b.PartA) != 1 || len(b.PartB) != 0 || len(b.Sep) != 0 {
		t.Errorf("tiny bisection: %+v", b)
	}
	b2 := Bisect(g, nil)
	if len(b2.PartA)+len(b2.PartB)+len(b2.Sep) != 0 {
		t.Error("empty bisection should be empty")
	}
}
