// Package assembly builds and manipulates the multifrontal assembly tree
// (paper Section 2): nodes are fronts with a pivot block and a contribution
// block, edges are the task dependencies of the factorization. It provides
// the exact symbolic front structures, the cost models (factor entries, CB
// entries, elimination flops) used by both the memory accounting and the
// workload-based scheduler, Liu's stack-minimizing child ordering, the
// static node splitting of Section 6, and the Geist-Ng subtree construction
// plus static processor mapping of Section 3.
package assembly

import (
	"fmt"
	"sort"

	"repro/internal/etree"
	"repro/internal/order"
	"repro/internal/sparse"
)

// Node is one front of the assembly tree. Pivot columns are the contiguous
// postordered range [Begin, End); Rows lists the contribution-block row
// indices (global column numbers in the postordered matrix, all >= End).
type Node struct {
	ID       int
	Parent   int   // -1 for roots
	Children []int // in processing order (Liu-sorted after SortChildren)
	Begin    int   // first pivot column
	End      int   // one past last pivot column
	Rows     []int // CB row structure, sorted ascending
}

// NPiv returns the number of pivot (fully summed) variables.
func (nd *Node) NPiv() int { return nd.End - nd.Begin }

// NCB returns the contribution-block order.
func (nd *Node) NCB() int { return len(nd.Rows) }

// NFront returns the front order.
func (nd *Node) NFront() int { return nd.NPiv() + len(nd.Rows) }

// Tree is an assembly tree (in general a forest) over the postordered
// matrix.
type Tree struct {
	Nodes []Node
	Roots []int
	N     int         // matrix dimension
	Kind  sparse.Type // symmetric or unsymmetric cost model
	Perm  []int       // full permutation new->old applied to the matrix
}

// Len returns the number of nodes.
func (t *Tree) Len() int { return len(t.Nodes) }

// Postorder returns node indices in postorder (children before parents,
// following current child order).
func (t *Tree) Postorder() []int {
	out := make([]int, 0, len(t.Nodes))
	type frame struct {
		n, ci int
	}
	var stack []frame
	for _, r := range t.Roots {
		stack = append(stack, frame{r, 0})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			nd := &t.Nodes[f.n]
			if f.ci < len(nd.Children) {
				c := nd.Children[f.ci]
				f.ci++
				stack = append(stack, frame{c, 0})
				continue
			}
			out = append(out, f.n)
			stack = stack[:len(stack)-1]
		}
	}
	return out
}

// Validate checks structural invariants of the tree.
func (t *Tree) Validate() error {
	seenCols := make([]bool, t.N)
	childCheck := make(map[[2]int]bool)
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		if nd.ID != i {
			return fmt.Errorf("assembly: node %d has ID %d", i, nd.ID)
		}
		if nd.Begin < 0 || nd.End > t.N || nd.Begin >= nd.End {
			return fmt.Errorf("assembly: node %d bad pivot range [%d,%d)", i, nd.Begin, nd.End)
		}
		for j := nd.Begin; j < nd.End; j++ {
			if seenCols[j] {
				return fmt.Errorf("assembly: column %d in two nodes", j)
			}
			seenCols[j] = true
		}
		prev := nd.End - 1
		for _, r := range nd.Rows {
			if r <= prev {
				return fmt.Errorf("assembly: node %d CB rows unsorted or overlap pivots", i)
			}
			if r >= t.N {
				return fmt.Errorf("assembly: node %d CB row %d out of range", i, r)
			}
			prev = r
		}
		if nd.Parent >= 0 {
			if nd.Parent >= len(t.Nodes) || nd.Parent == i {
				return fmt.Errorf("assembly: node %d bad parent %d", i, nd.Parent)
			}
			childCheck[[2]int{nd.Parent, i}] = true
		}
		for _, c := range nd.Children {
			if c < 0 || c >= len(t.Nodes) || t.Nodes[c].Parent != i {
				return fmt.Errorf("assembly: node %d bad child %d", i, c)
			}
		}
	}
	for j := 0; j < t.N; j++ {
		if !seenCols[j] {
			return fmt.Errorf("assembly: column %d in no node", j)
		}
	}
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		found := 0
		for _, c := range nd.Children {
			if childCheck[[2]int{i, c}] {
				found++
			}
		}
		if nd.Parent >= 0 {
			ok := false
			for _, c := range t.Nodes[nd.Parent].Children {
				if c == i {
					ok = true
				}
			}
			if !ok {
				return fmt.Errorf("assembly: node %d missing from parent %d child list", i, nd.Parent)
			}
		}
	}
	// Every root reachable, every node reached exactly once via Postorder.
	post := t.Postorder()
	if len(post) != len(t.Nodes) {
		return fmt.Errorf("assembly: postorder visits %d of %d nodes", len(post), len(t.Nodes))
	}
	return nil
}

// Options configures the analysis pipeline.
type Options struct {
	Ordering order.Method
	Amalg    etree.AmalgamationOptions
}

// DefaultOptions returns the standard pipeline configuration.
func DefaultOptions(m order.Method) Options {
	return Options{Ordering: m, Amalg: etree.DefaultAmalgamation()}
}

// Analyze runs the full symbolic analysis: ordering, postordering,
// supernode detection, amalgamation and exact front-structure computation.
// It returns the assembly tree and the permuted matrix (pattern+values).
func Analyze(a *sparse.CSC, opt Options) (*Tree, *sparse.CSC) {
	perm := order.Compute(a, opt.Ordering)
	pa := a.Permute(perm)
	parent := etree.Compute(pa)
	post := etree.Postorder(parent)
	perm = etree.ApplyPostorder(perm, post)
	pa = a.Permute(perm)
	parent = etree.Compute(pa)
	counts := etree.ColCounts(pa, parent)
	super, memb := etree.Supernodes(parent, counts)
	super, memb = etree.Amalgamate(parent, counts, super, memb, opt.Amalg)
	t := BuildTree(pa, parent, super, memb)
	t.Kind = a.Kind
	t.Perm = perm
	return t, pa
}

// BuildTree assembles the tree from a supernode partition, computing exact
// CB row structures bottom-up: the structure of a node is the union of the
// below-range pattern of its pivot columns and the structures of its
// children, minus its own pivots.
func BuildTree(pa *sparse.CSC, parent, super, memb []int) *Tree {
	s := pa
	if pa.Kind != sparse.Symmetric {
		s = sparse.SymmetrizePattern(pa)
	}
	n := s.N
	ns := len(super) - 1
	t := &Tree{Nodes: make([]Node, ns), N: n, Kind: pa.Kind}
	sparent := etree.SupernodeTree(parent, super, memb)
	for i := 0; i < ns; i++ {
		t.Nodes[i] = Node{ID: i, Parent: sparent[i], Begin: super[i], End: super[i+1]}
		if sparent[i] < 0 {
			t.Roots = append(t.Roots, i)
		}
	}
	for i := 0; i < ns; i++ {
		if p := sparent[i]; p >= 0 {
			t.Nodes[p].Children = append(t.Nodes[p].Children, i)
		}
	}
	// Bottom-up structure computation (supernode ids are already in
	// topological order because columns are postordered).
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	for i := 0; i < ns; i++ {
		nd := &t.Nodes[i]
		var rows []int
		add := func(r int) {
			if r >= nd.End && mark[r] != i {
				mark[r] = i
				rows = append(rows, r)
			}
		}
		for j := nd.Begin; j < nd.End; j++ {
			for _, r := range s.Col(j) {
				add(r)
			}
		}
		for _, c := range nd.Children {
			for _, r := range t.Nodes[c].Rows {
				add(r)
			}
		}
		sort.Ints(rows)
		nd.Rows = rows
	}
	return t
}
