package assembly

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/order"
	"repro/internal/sparse"
)

func TestSplitDisabled(t *testing.T) {
	tree := analyzeGrid(t, order.ND)
	nt, n := Split(tree, SplitOptions{MaxMasterEntries: 0})
	if n != 0 || nt != tree {
		t.Error("disabled split should return the same tree")
	}
}

func TestSplitReducesMasterSize(t *testing.T) {
	tree, _ := Analyze(sparse.Grid2D(20, 20), DefaultOptions(order.ND))
	// Find the largest master before split.
	var maxBefore int64
	for i := range tree.Nodes {
		if m := MasterEntries(&tree.Nodes[i], tree.Kind); m > maxBefore {
			maxBefore = m
		}
	}
	threshold := maxBefore / 3
	if threshold < 8 {
		t.Skip("tree too small to exercise splitting")
	}
	nt, count := Split(tree, SplitOptions{MaxMasterEntries: threshold, MinPiv: 2})
	if count == 0 {
		t.Fatal("no nodes split")
	}
	if err := nt.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range nt.Nodes {
		nd := &nt.Nodes[i]
		if nd.NPiv() <= 2 || nd.Parent < 0 {
			continue // MinPiv floor; roots are never split
		}
		if m := MasterEntries(nd, nt.Kind); m > threshold {
			// Allowed only when even MinPiv pivots exceed the threshold.
			minM := MasterEntries(&Node{Begin: nd.Begin, End: nd.Begin + 2, Rows: nd.Rows}, nt.Kind)
			if minM <= threshold {
				t.Errorf("node %d master %d exceeds threshold %d", i, m, threshold)
			}
		}
	}
}

func TestSplitPreservesFactorEntriesAndColumns(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 40 + rng.Intn(120)
		a := sparse.RandomSPDPattern(n, 3, rng)
		tree, _ := Analyze(a, DefaultOptions(order.AMD))
		nt, _ := Split(tree, SplitOptions{MaxMasterEntries: 50, MinPiv: 2})
		if err := nt.Validate(); err != nil {
			return false
		}
		// Chain splitting preserves total factor entries exactly for the
		// symmetric cost model (the chain pieces tile the same triangle).
		return TotalFactorEntries(nt) == TotalFactorEntries(tree)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitChainShape(t *testing.T) {
	// A single node with a large pivot block must become a chain.
	tree := &Tree{
		N:    100,
		Kind: sparse.Unsymmetric,
		Nodes: []Node{
			{
				ID: 0, Parent: 1, Begin: 0, End: 90,
				Rows: []int{90, 91, 92, 93, 94, 95, 96, 97, 98, 99},
			},
			{ID: 1, Parent: -1, Begin: 90, End: 100, Children: []int{0}},
		},
		Roots: []int{1},
	}
	nt, count := Split(tree, SplitOptions{MaxMasterEntries: 1000, MinPiv: 4})
	if count != 1 {
		t.Fatalf("split count = %d", count)
	}
	if err := nt.Validate(); err != nil {
		t.Fatal(err)
	}
	if nt.Len() < 3 {
		t.Fatalf("chain too short: %d links", nt.Len())
	}
	// Chain: exactly one root, each non-top link has the next as parent,
	// pivot ranges tile [0,90).
	if len(nt.Roots) != 1 {
		t.Fatalf("roots = %v", nt.Roots)
	}
	covered := 0
	for i := range nt.Nodes {
		covered += nt.Nodes[i].NPiv()
		if len(nt.Nodes[i].Children) > 1 {
			t.Errorf("chain link %d has %d children", i, len(nt.Nodes[i].Children))
		}
	}
	if covered != 100 {
		t.Errorf("pivots covered = %d, want 100", covered)
	}
	// The top chain link (child of the untouched root) keeps the original
	// CB rows.
	root := &nt.Nodes[nt.Roots[0]]
	if root.NPiv() != 10 || len(root.Children) != 1 {
		t.Fatalf("root should be the untouched 10-pivot node, got npiv=%d", root.NPiv())
	}
	topLink := &nt.Nodes[root.Children[0]]
	if topLink.NCB() != 10 {
		t.Errorf("top link CB = %d, want 10 (original rows)", topLink.NCB())
	}
}

func TestSplitKeepsChildren(t *testing.T) {
	tree, _ := Analyze(sparse.Grid3D(6, 6, 6), DefaultOptions(order.ND))
	nChildrenBefore := 0
	for i := range tree.Nodes {
		if len(tree.Nodes[i].Children) == 0 {
			nChildrenBefore++ // count leaves
		}
	}
	nt, _ := Split(tree, SplitOptions{MaxMasterEntries: 200, MinPiv: 4})
	if err := nt.Validate(); err != nil {
		t.Fatal(err)
	}
	nLeavesAfter := 0
	for i := range nt.Nodes {
		if len(nt.Nodes[i].Children) == 0 {
			nLeavesAfter++
		}
	}
	if nLeavesAfter != nChildrenBefore {
		t.Errorf("leaf count changed by splitting: %d -> %d", nChildrenBefore, nLeavesAfter)
	}
}
