package assembly

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/order"
	"repro/internal/sparse"
)

// randomMatrix builds a small random symmetric-pattern matrix from fuzz
// bytes (connected enough to give interesting trees).
func randomMatrix(nRaw uint8, edges []uint16) *sparse.CSC {
	n := 6 + int(nRaw)%40
	b := sparse.NewBuilder(n, sparse.Symmetric)
	for j := 0; j < n; j++ {
		b.Add(j, j, float64(n))
		if j+1 < n {
			b.Add(j+1, j, -1) // path backbone keeps it connected
		}
	}
	for _, e := range edges {
		i, j := int(e)%n, int(e>>6)%n
		if i > j {
			b.Add(i, j, -1)
		}
	}
	return b.Build()
}

// analyzeRandom runs the full symbolic analysis on a fuzzed matrix.
func analyzeRandom(nRaw uint8, edges []uint16, m order.Method) *Tree {
	t, _ := Analyze(randomMatrix(nRaw, edges), Options{Ordering: m})
	return t
}

// TestPropertyTreeValidates: the assembly tree of any fuzzed matrix under
// any ordering passes structural validation, and its pivots cover every
// column exactly once.
func TestPropertyTreeValidates(t *testing.T) {
	prop := func(nRaw uint8, edges []uint16, mRaw uint8) bool {
		m := order.Methods[int(mRaw)%len(order.Methods)]
		tr := analyzeRandom(nRaw, edges, m)
		if err := tr.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		covered := make([]bool, tr.N)
		for i := range tr.Nodes {
			for c := tr.Nodes[i].Begin; c < tr.Nodes[i].End; c++ {
				if covered[c] {
					return false
				}
				covered[c] = true
			}
		}
		for _, v := range covered {
			if !v {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySplitConservation: splitting at any threshold preserves the
// column coverage, total factor entries, and total elimination flops
// never decrease by more than rounding (chains redo no work; flops can
// only grow slightly through the extra CB traffic being modeled as
// assembly, not elimination).
func TestPropertySplitConservation(t *testing.T) {
	prop := func(nRaw uint8, edges []uint16, thrRaw uint16) bool {
		tr := analyzeRandom(nRaw, edges, order.AMD)
		thr := int64(thrRaw%2000) + 1
		st, _ := Split(tr, SplitOptions{MaxMasterEntries: thr, MinPiv: 2})
		if err := st.Validate(); err != nil {
			t.Logf("split validate: %v", err)
			return false
		}
		if TotalFactorEntries(st) != TotalFactorEntries(tr) {
			t.Logf("factor entries changed: %d -> %d",
				TotalFactorEntries(tr), TotalFactorEntries(st))
			return false
		}
		// Split masters must respect the threshold (unless a single link
		// already has MinPiv pivots and cannot shrink further).
		for i := range st.Nodes {
			nd := &st.Nodes[i]
			if nd.Parent < 0 {
				continue // roots are never split
			}
			if MasterEntries(nd, st.Kind) > thr && nd.NPiv() > 2 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(42))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLiuPeakMatchesSimulation: the analytic sequential peaks of
// SequentialPeaks agree with a direct stack simulation of the postorder.
func TestPropertyLiuPeakMatchesSimulation(t *testing.T) {
	prop := func(nRaw uint8, edges []uint16, mRaw uint8) bool {
		m := order.Methods[int(mRaw)%len(order.Methods)]
		tr := analyzeRandom(nRaw, edges, m)
		SortChildrenLiu(tr)
		peaks := SequentialPeaks(tr)
		// Direct simulation over the whole forest.
		var stack, peak int64
		var walk func(i int)
		walk = func(i int) {
			nd := &tr.Nodes[i]
			for _, c := range nd.Children {
				walk(c)
			}
			// Allocate front (children CBs still stacked).
			mem := stack + FrontEntries(nd, tr.Kind)
			if mem > peak {
				peak = mem
			}
			// Pop children CBs, push own CB.
			for _, c := range nd.Children {
				stack -= CBEntries(&tr.Nodes[c], tr.Kind)
			}
			stack += CBEntries(nd, tr.Kind)
		}
		var globalPeak int64
		for _, r := range tr.Roots {
			stack, peak = 0, 0
			walk(r)
			if peaks[r] != peak {
				t.Logf("root %d: analytic %d, simulated %d", r, peaks[r], peak)
				return false
			}
			if peak > globalPeak {
				globalPeak = peak
			}
		}
		return TreePeak(peaks, tr) == globalPeak
	}
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(43))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMappingInvariants: for fuzzed matrices and processor
// counts, the static mapping validates, subtree peaks respect the
// memory-split threshold where splittable, and every subtree's flops are
// the sum of its nodes'.
func TestPropertyMappingInvariants(t *testing.T) {
	prop := func(nRaw uint8, edges []uint16, pRaw uint8) bool {
		tr := analyzeRandom(nRaw, edges, order.ND)
		SortChildrenLiu(tr)
		p := 1 + int(pRaw)%16
		mp := Map(tr, DefaultMapOptions(p))
		if err := mp.Validate(tr); err != nil {
			t.Logf("map validate: %v", err)
			return false
		}
		// Every node is in at most one subtree, and subtree members form a
		// connected region ending at the subtree root.
		for si, root := range mp.SubRoot {
			if mp.Subtree[root] != si {
				return false
			}
			// Climb from every member to the root without leaving.
			for i := range tr.Nodes {
				if mp.Subtree[i] != si || i == root {
					continue
				}
				v := i
				for v != root {
					v = tr.Nodes[v].Parent
					if v < 0 || mp.Subtree[v] != si {
						return false
					}
				}
			}
		}
		// Flops bookkeeping.
		for si, root := range mp.SubRoot {
			var sum int64
			for i := range tr.Nodes {
				if mp.Subtree[i] == si {
					sum += EliminationFlops(&tr.Nodes[i], tr.Kind)
				}
			}
			if sum != mp.SubFlops[si] {
				return false
			}
			_ = root
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(44))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSubtreePeakSplitBounds: with the memory threshold active, no
// multi-node subtree keeps a sequential peak above the threshold — any
// such candidate must have been replaced by its children (single leaves
// may still exceed it; they cannot be split).
func TestSubtreePeakSplitBounds(t *testing.T) {
	a := sparse.Grid3D(6, 6, 6)
	tr, _ := Analyze(a, Options{Ordering: order.AMD})
	SortChildrenLiu(tr)
	peaks := SequentialPeaks(tr)
	var maxPeak int64
	for _, r := range tr.Roots {
		if peaks[r] > maxPeak {
			maxPeak = peaks[r]
		}
	}
	opt := DefaultMapOptions(8)
	opt.SubtreePeakFrac = 0.05
	mp := Map(tr, opt)
	threshold := int64(0.05 * float64(maxPeak))
	for si, root := range mp.SubRoot {
		if mp.SubPeak[si] > threshold && len(tr.Nodes[root].Children) > 0 {
			t.Errorf("subtree %d (root %d) peak %d > threshold %d but splittable",
				si, root, mp.SubPeak[si], threshold)
		}
	}
}
