package assembly

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/order"
	"repro/internal/sparse"
)

func TestMapBasics(t *testing.T) {
	tree, _ := Analyze(sparse.Grid2D(20, 20), DefaultOptions(order.ND))
	for _, p := range []int{1, 2, 4, 8} {
		m := Map(tree, DefaultMapOptions(p))
		if err := m.Validate(tree); err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if len(m.SubRoot) == 0 {
			t.Fatalf("P=%d: no subtrees", p)
		}
	}
}

func TestMapSingleProc(t *testing.T) {
	tree, _ := Analyze(sparse.Grid2D(10, 10), DefaultOptions(order.AMD))
	m := Map(tree, DefaultMapOptions(1))
	for i := range tree.Nodes {
		if m.Proc[i] != 0 {
			t.Fatalf("P=1 node %d on proc %d", i, m.Proc[i])
		}
		if m.Types[i] == Type2 || m.Types[i] == Type3 {
			t.Fatalf("P=1 node %d has parallel type %v", i, m.Types[i])
		}
	}
}

func TestGeistNgProducesEnoughSubtrees(t *testing.T) {
	tree, _ := Analyze(sparse.Grid3D(8, 8, 8), DefaultOptions(order.ND))
	p := 8
	m := Map(tree, DefaultMapOptions(p))
	if len(m.SubRoot) < p {
		t.Errorf("only %d subtrees for %d processors", len(m.SubRoot), p)
	}
	// Subtree work balance: max proc load within 3x of mean.
	load := make([]int64, p)
	for si, pr := range m.SubProc {
		load[pr] += m.SubFlops[si]
	}
	var total, max int64
	for _, l := range load {
		total += l
		if l > max {
			max = l
		}
	}
	mean := total / int64(p)
	if mean > 0 && max > 4*mean {
		t.Errorf("subtree load imbalance: max %d vs mean %d", max, mean)
	}
}

func TestSubtreesAreClosedUnderDescendants(t *testing.T) {
	tree, _ := Analyze(sparse.Grid2D(24, 24), DefaultOptions(order.ND))
	m := Map(tree, DefaultMapOptions(4))
	for i := range tree.Nodes {
		if m.Subtree[i] < 0 {
			continue
		}
		for _, c := range tree.Nodes[i].Children {
			if m.Subtree[c] != m.Subtree[i] {
				t.Fatalf("child %d of subtree node %d not in same subtree", c, i)
			}
		}
	}
	// Upper nodes: no descendants of a subtree root outside its subtree;
	// conversely every upper node's subtree id is -1.
	for _, u := range m.UpperNodes(tree) {
		if m.Subtree[u] != -1 {
			t.Fatalf("upper node %d has subtree %d", u, m.Subtree[u])
		}
	}
}

func TestType3IsRootOnly(t *testing.T) {
	tree, _ := Analyze(sparse.Grid3D(9, 9, 9), DefaultOptions(order.ND))
	m := Map(tree, MapOptions{P: 8, SubtreeSplitRatio: 2, Type2MinFront: 60, Type3MinFront: 100})
	for i := range tree.Nodes {
		if m.Types[i] == Type3 && tree.Nodes[i].Parent != -1 {
			t.Fatalf("type-3 node %d is not a root", i)
		}
	}
}

func TestMapPropertyAllAssigned(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(200)
		p := 1 + rng.Intn(8)
		a := sparse.RandomSPDPattern(n, 3, rng)
		tree, _ := Analyze(a, DefaultOptions(order.AMD))
		m := Map(tree, DefaultMapOptions(p))
		return m.Validate(tree) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMapAfterSplit(t *testing.T) {
	tree, _ := Analyze(sparse.Grid2D(24, 24), DefaultOptions(order.ND))
	nt, count := Split(tree, SplitOptions{MaxMasterEntries: 400, MinPiv: 4})
	if count == 0 {
		t.Skip("no splits at this size")
	}
	m := Map(nt, DefaultMapOptions(4))
	if err := m.Validate(nt); err != nil {
		t.Fatal(err)
	}
}

func TestFactorMemoryBalance(t *testing.T) {
	// The static mapping should not put all upper factors on one processor.
	tree, _ := Analyze(sparse.Grid3D(8, 8, 8), DefaultOptions(order.ND))
	p := 4
	m := Map(tree, DefaultMapOptions(p))
	mem := make([]int64, p)
	for i := range tree.Nodes {
		if m.Subtree[i] >= 0 {
			continue
		}
		switch m.Types[i] {
		case Type2:
			mem[m.Proc[i]] += MasterEntries(&tree.Nodes[i], tree.Kind)
		case Type1:
			mem[m.Proc[i]] += FactorEntries(&tree.Nodes[i], tree.Kind)
		}
	}
	nonzero := 0
	for _, v := range mem {
		if v > 0 {
			nonzero++
		}
	}
	if nonzero < 2 {
		t.Errorf("upper factors all on %d processor(s): %v", nonzero, mem)
	}
}
