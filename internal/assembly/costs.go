package assembly

import "repro/internal/sparse"

// Cost model (paper Sections 2-3). All sizes are in matrix entries, flops
// in floating-point operations. The unsymmetric front is a full nfront x
// nfront dense matrix; the symmetric front stores the lower triangle.
//
//	factor block:        npiv pivot rows/cols
//	contribution block:  the trailing (nfront-npiv)^2 (or triangle)
//
// The workload metric of MUMPS counts elimination flops only ("an order of
// magnitude larger than the operations for assembly").

// FactorEntries returns the number of factor entries produced by the node.
func FactorEntries(nd *Node, kind sparse.Type) int64 {
	p := int64(nd.NPiv())
	f := int64(nd.NFront())
	if kind == sparse.Symmetric {
		// L columns: sum_{k=0}^{p-1} (f-k) = p*f - p(p-1)/2
		return p*f - p*(p-1)/2
	}
	// L and U: full front minus CB: f^2 - (f-p)^2
	c := f - p
	return f*f - c*c
}

// CBEntries returns the size of the node's contribution block.
func CBEntries(nd *Node, kind sparse.Type) int64 {
	c := int64(nd.NCB())
	if kind == sparse.Symmetric {
		return c * (c + 1) / 2
	}
	return c * c
}

// FrontEntries returns the size of the active frontal matrix.
func FrontEntries(nd *Node, kind sparse.Type) int64 {
	f := int64(nd.NFront())
	if kind == sparse.Symmetric {
		return f * (f + 1) / 2
	}
	return f * f
}

// MasterEntries returns the size of the type-2 master part: the npiv pivot
// rows of the front (unsymmetric 1D row blocking, Figure 3). For symmetric
// fronts the master holds the npiv x nfront trapezoid's lower part.
func MasterEntries(nd *Node, kind sparse.Type) int64 {
	p := int64(nd.NPiv())
	f := int64(nd.NFront())
	if kind == sparse.Symmetric {
		return p*f - p*(p-1)/2
	}
	return p * f
}

// EliminationFlops returns the flop count of the partial factorization of
// the front: for each of the npiv pivots k, a rank-1 update of the trailing
// (f-k-1)^2 block (unsymmetric) plus the pivot column scaling.
func EliminationFlops(nd *Node, kind sparse.Type) int64 {
	p := int64(nd.NPiv())
	f := int64(nd.NFront())
	var flops int64
	// sum_{k=1}^{p} [ (f-k) divisions + 2*(f-k)^2 update ]
	// closed forms: S1 = sum (f-k) = p*f - p(p+1)/2
	// S2 = sum (f-k)^2 = sum_{m=f-p}^{f-1} m^2
	s1 := p*f - p*(p+1)/2
	s2 := sumSquares(f-1) - sumSquares(f-p-1)
	flops = s1 + 2*s2
	if kind == sparse.Symmetric {
		flops = flops/2 + s1/2
	}
	return flops
}

func sumSquares(m int64) int64 {
	if m < 0 {
		return 0
	}
	return m * (m + 1) * (2*m + 1) / 6
}

// AssemblyFlops returns the (small) cost of assembling the children's
// contribution blocks into the front: one add per CB entry.
func AssemblyFlops(t *Tree, nd *Node) int64 {
	var fl int64
	for _, c := range nd.Children {
		fl += CBEntries(&t.Nodes[c], t.Kind)
	}
	return fl
}

// SubtreeFlops returns, for every node, the total elimination flops of its
// subtree (the workload metric used to map subtrees to processors).
func SubtreeFlops(t *Tree) []int64 {
	fl := make([]int64, len(t.Nodes))
	for _, i := range t.Postorder() {
		nd := &t.Nodes[i]
		fl[i] = EliminationFlops(nd, t.Kind)
		for _, c := range nd.Children {
			fl[i] += fl[c]
		}
	}
	return fl
}

// TotalFactorEntries sums FactorEntries over the tree.
func TotalFactorEntries(t *Tree) int64 {
	var s int64
	for i := range t.Nodes {
		s += FactorEntries(&t.Nodes[i], t.Kind)
	}
	return s
}

// TotalFlops sums EliminationFlops over the tree.
func TotalFlops(t *Tree) int64 {
	var s int64
	for i := range t.Nodes {
		s += EliminationFlops(&t.Nodes[i], t.Kind)
	}
	return s
}
