package assembly

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/order"
	"repro/internal/sparse"
)

func analyzeGrid(t *testing.T, m order.Method) *Tree {
	t.Helper()
	tree, _ := Analyze(sparse.Grid2D(12, 12), DefaultOptions(m))
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestAnalyzeAllOrderings(t *testing.T) {
	for _, m := range order.Methods {
		tree := analyzeGrid(t, m)
		if tree.Len() == 0 {
			t.Fatalf("%v: empty tree", m)
		}
		if tree.N != 144 {
			t.Fatalf("%v: N = %d", m, tree.N)
		}
	}
}

func TestAnalyzeUnsymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := sparse.CircuitUnsym(300, 400, 3, rng)
	tree, pa := Analyze(a, DefaultOptions(order.AMD))
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if tree.Kind != sparse.Unsymmetric {
		t.Error("tree lost matrix kind")
	}
	if pa.N != a.N {
		t.Error("permuted matrix wrong size")
	}
	if !order.IsPermutation(tree.Perm, a.N) {
		t.Error("stored perm invalid")
	}
}

func TestFrontStructureNesting(t *testing.T) {
	// Property: a child's CB rows must all appear in the parent's front
	// (pivots ∪ rows) — that is what makes extend-add well defined.
	tree := analyzeGrid(t, order.AMD)
	for i := range tree.Nodes {
		nd := &tree.Nodes[i]
		if nd.Parent < 0 {
			if len(nd.Rows) != 0 {
				t.Fatalf("root %d has nonempty CB", i)
			}
			continue
		}
		par := &tree.Nodes[nd.Parent]
		inParent := map[int]bool{}
		for j := par.Begin; j < par.End; j++ {
			inParent[j] = true
		}
		for _, r := range par.Rows {
			inParent[r] = true
		}
		for _, r := range nd.Rows {
			if !inParent[r] {
				t.Fatalf("child %d CB row %d missing from parent %d front", i, r, nd.Parent)
			}
		}
	}
}

func TestCostModelBasics(t *testing.T) {
	nd := &Node{Begin: 0, End: 2, Rows: []int{2, 3, 4}} // npiv=2, ncb=3, nfront=5
	if nd.NPiv() != 2 || nd.NCB() != 3 || nd.NFront() != 5 {
		t.Fatalf("sizes wrong: %d %d %d", nd.NPiv(), nd.NCB(), nd.NFront())
	}
	if got := FactorEntries(nd, sparse.Unsymmetric); got != 25-9 {
		t.Errorf("unsym factor entries = %d, want 16", got)
	}
	if got := FactorEntries(nd, sparse.Symmetric); got != 5+4 {
		t.Errorf("sym factor entries = %d, want 9", got)
	}
	if got := CBEntries(nd, sparse.Unsymmetric); got != 9 {
		t.Errorf("unsym CB = %d, want 9", got)
	}
	if got := CBEntries(nd, sparse.Symmetric); got != 6 {
		t.Errorf("sym CB = %d, want 6", got)
	}
	if got := FrontEntries(nd, sparse.Unsymmetric); got != 25 {
		t.Errorf("front = %d, want 25", got)
	}
	if got := MasterEntries(nd, sparse.Unsymmetric); got != 10 {
		t.Errorf("master = %d, want 10", got)
	}
	// Flops positive and monotone in npiv.
	nd2 := &Node{Begin: 0, End: 4, Rows: []int{4}}
	if EliminationFlops(nd, sparse.Unsymmetric) <= 0 {
		t.Error("flops not positive")
	}
	if EliminationFlops(nd2, sparse.Unsymmetric) <= EliminationFlops(nd, sparse.Unsymmetric) {
		t.Error("flops not monotone in pivot count for same front order")
	}
	if EliminationFlops(nd, sparse.Symmetric) >= EliminationFlops(nd, sparse.Unsymmetric) {
		t.Error("symmetric flops should be cheaper")
	}
}

func TestTotalFactorEntriesMatchesColCounts(t *testing.T) {
	// Sum of symmetric factor entries over fronts == sum of column counts
	// over all columns (each column counted once with its full height).
	a := sparse.Grid2D(9, 9)
	tree, pa := Analyze(a, Options{Ordering: order.AMD}) // zero amalgamation
	_ = pa
	var fromTree int64
	for i := range tree.Nodes {
		nd := &tree.Nodes[i]
		// Column j of the node (0-based k within node) has height
		// npiv-k + ncb.
		for k := 0; k < nd.NPiv(); k++ {
			fromTree += int64(nd.NPiv() - k + nd.NCB())
		}
	}
	if got := TotalFactorEntries(tree); tree.Kind == sparse.Symmetric && got != fromTree {
		t.Errorf("TotalFactorEntries = %d, column sum = %d", got, fromTree)
	}
}

func TestSequentialPeaksAndLiu(t *testing.T) {
	tree := analyzeGrid(t, order.AMF)
	before := TreePeak(SequentialPeaks(tree), tree)
	after := TreePeak(SortChildrenLiu(tree), tree)
	if after > before {
		t.Errorf("Liu ordering increased peak: %d -> %d", before, after)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Liu sort broke tree: %v", err)
	}
	// Idempotent.
	again := TreePeak(SortChildrenLiu(tree), tree)
	if again != after {
		t.Errorf("Liu ordering not idempotent: %d -> %d", after, again)
	}
}

func TestLiuOrderingPropertyNeverWorse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(100)
		a := sparse.RandomSPDPattern(n, 2, rng)
		tree, _ := Analyze(a, DefaultOptions(order.AMD))
		before := TreePeak(SequentialPeaks(tree), tree)
		after := TreePeak(SortChildrenLiu(tree), tree)
		return after <= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSubtreeFlopsMonotone(t *testing.T) {
	tree := analyzeGrid(t, order.ND)
	fl := SubtreeFlops(tree)
	for i := range tree.Nodes {
		if p := tree.Nodes[i].Parent; p >= 0 && fl[p] <= fl[i] {
			t.Fatalf("subtree flops not monotone: node %d (%d) vs parent %d (%d)",
				i, fl[i], p, fl[p])
		}
	}
	var total int64
	for _, r := range tree.Roots {
		total += fl[r]
	}
	if total != TotalFlops(tree) {
		t.Errorf("root subtree flops %d != total %d", total, TotalFlops(tree))
	}
}

func TestValidateCatchesBadTrees(t *testing.T) {
	tree := analyzeGrid(t, order.AMD)
	bad := *tree
	bad.Nodes = append([]Node(nil), tree.Nodes...)
	bad.Nodes[0].Parent = 0
	if err := bad.Validate(); err == nil {
		t.Error("self-parent accepted")
	}
	bad2 := *tree
	bad2.Nodes = append([]Node(nil), tree.Nodes...)
	bad2.Nodes[0].End = bad2.Nodes[0].Begin
	if err := bad2.Validate(); err == nil {
		t.Error("empty pivot range accepted")
	}
}
