package assembly

import (
	"fmt"
	"sort"
)

// Static scheduling decisions (paper Section 3): leaf subtrees are built
// with the Geist-Ng top-down algorithm and mapped to processors to balance
// their computational work; upper-layer nodes get a node type (1, 2 or 3)
// from their front size, and type-1 nodes / type-2 masters are statically
// assigned to balance the memory of their factors.

// NodeType is the parallelism type of an assembly-tree node.
type NodeType int

const (
	// Type1 nodes are processed entirely by one processor.
	Type1 NodeType = iota + 1
	// Type2 nodes use 1D row-block parallelism: a static master, dynamic
	// slaves.
	Type2
	// Type3 is the root node, processed 2D block-cyclically by everyone.
	Type3
)

func (t NodeType) String() string {
	switch t {
	case Type1:
		return "T1"
	case Type2:
		return "T2"
	case Type3:
		return "T3"
	default:
		return "T?"
	}
}

// Mapping is the static schedule of a tree on P processors.
type Mapping struct {
	P        int
	Types    []NodeType // per node
	Proc     []int      // per node: owner (type 1) or master (type 2/3)
	Subtree  []int      // per node: subtree id, or -1 if in the upper part
	SubRoot  []int      // per subtree: its root node
	SubProc  []int      // per subtree: assigned processor
	SubPeak  []int64    // per subtree: sequential stack peak (entries)
	SubFlops []int64    // per subtree: total elimination flops
}

// MapOptions configures the static mapping.
type MapOptions struct {
	P int // number of processors
	// SubtreeSplitRatio: keep splitting candidate subtrees while the
	// heaviest exceeds totalFlops/(ratio*P). Geist-Ng style. Larger ratios
	// push the subtree layer lower, enlarging the dynamically-scheduled
	// upper part (the paper: on large processor counts ~80% of the flops
	// are in type-2 nodes).
	SubtreeSplitRatio float64
	// SubtreePeakFrac additionally splits subtrees whose sequential stack
	// peak exceeds this fraction of the whole tree's sequential peak —
	// the "static splitting of subtrees with a large memory cost" the
	// paper couples to its subtree broadcasts (Section 5.1): without it,
	// subtree-peak projections dwarf the upper-tree memory and distort
	// the slave-selection metric. <=0 disables memory-based splitting.
	SubtreePeakFrac float64
	// Type2MinFront: fronts at least this large (and below the root) use 1D
	// parallelism when more than one processor is available. <=0 derives a
	// threshold from the tree's largest front.
	Type2MinFront int
	// Type3MinFront: a root front at least this large is processed 2D by
	// all processors. <=0 derives a threshold from the largest front.
	Type3MinFront int
}

// DefaultType2MinFront is the derived type-2 classification threshold Map
// applies when MapOptions.Type2MinFront is unset: fronts of at least an
// eighth of the largest front (floored at 32) use 1D row-block
// parallelism. The real executor reuses it to decide which fronts run
// through the within-front master/slave path.
func DefaultType2MinFront(maxFront int) int {
	t := maxFront / 8
	if t < 32 {
		t = 32
	}
	return t
}

// DefaultMapOptions mirrors MUMPS-like settings: thresholds adapt to the
// tree so that the large upper fronts are type 2 regardless of problem
// scale.
func DefaultMapOptions(p int) MapOptions {
	return MapOptions{
		P:                 p,
		SubtreeSplitRatio: 8,
		SubtreePeakFrac:   2 / float64(p),
		Type2MinFront:     0,
		Type3MinFront:     0,
	}
}

// Map computes the static schedule: Geist-Ng subtrees, subtree→processor
// assignment (LPT on flops), node types and static owners for upper nodes
// (balancing factor memory, as in the paper: "the mapping ... only aims at
// balancing the memory of the corresponding factors").
func Map(t *Tree, opt MapOptions) *Mapping {
	if opt.P < 1 {
		opt.P = 1
	}
	if opt.SubtreeSplitRatio <= 0 {
		opt.SubtreeSplitRatio = 2
	}
	m := &Mapping{
		P:       opt.P,
		Types:   make([]NodeType, len(t.Nodes)),
		Proc:    make([]int, len(t.Nodes)),
		Subtree: make([]int, len(t.Nodes)),
	}
	for i := range m.Subtree {
		m.Subtree[i] = -1
		m.Proc[i] = -1
	}
	maxFront := 0
	for i := range t.Nodes {
		if f := t.Nodes[i].NFront(); f > maxFront {
			maxFront = f
		}
	}
	if opt.Type2MinFront <= 0 {
		opt.Type2MinFront = DefaultType2MinFront(maxFront)
	}
	if opt.Type3MinFront <= 0 {
		opt.Type3MinFront = maxFront / 2
		if opt.Type3MinFront < 128 {
			opt.Type3MinFront = 128
		}
	}
	flops := SubtreeFlops(t)
	peaks := SequentialPeaks(t)

	roots := geistNg(t, flops, peaks, opt)
	// Map subtrees to processors: LPT (descending flops, least-loaded proc).
	type st struct {
		root  int
		flops int64
	}
	subs := make([]st, 0, len(roots))
	for _, r := range roots {
		subs = append(subs, st{r, flops[r]})
	}
	sort.Slice(subs, func(a, b int) bool {
		if subs[a].flops != subs[b].flops {
			return subs[a].flops > subs[b].flops
		}
		return subs[a].root < subs[b].root
	})
	procLoad := make([]int64, opt.P)
	for si, s := range subs {
		best := 0
		for p := 1; p < opt.P; p++ {
			if procLoad[p] < procLoad[best] {
				best = p
			}
		}
		procLoad[best] += s.flops
		m.SubRoot = append(m.SubRoot, s.root)
		m.SubProc = append(m.SubProc, best)
		m.SubPeak = append(m.SubPeak, peaks[s.root])
		m.SubFlops = append(m.SubFlops, s.flops)
		// Tag all nodes of the subtree.
		stack := []int{s.root}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			m.Subtree[v] = si
			m.Types[v] = Type1
			m.Proc[v] = best
			stack = append(stack, t.Nodes[v].Children...)
		}
	}

	// Upper part: assign types and static owners.
	// Identify the global root (largest root front) for type 3.
	globalRoot := -1
	for _, r := range t.Roots {
		if globalRoot < 0 || t.Nodes[r].NFront() > t.Nodes[globalRoot].NFront() {
			globalRoot = r
		}
	}
	factorMem := make([]int64, opt.P)
	// Seed factor balance with subtree factor memory.
	for i := range t.Nodes {
		if m.Subtree[i] >= 0 {
			factorMem[m.Proc[i]] += FactorEntries(&t.Nodes[i], t.Kind)
		}
	}
	for _, i := range t.Postorder() {
		if m.Subtree[i] >= 0 {
			continue // already mapped
		}
		nd := &t.Nodes[i]
		switch {
		case opt.P > 1 && i == globalRoot && nd.NFront() >= opt.Type3MinFront:
			m.Types[i] = Type3
		case opt.P > 1 && nd.NFront() >= opt.Type2MinFront:
			m.Types[i] = Type2
		default:
			m.Types[i] = Type1
		}
		// Static owner balancing factor memory. For type 2, only the master
		// part is statically placed; for type 3 every processor holds a
		// 1/P share (owner is just the coordinator).
		best := 0
		for p := 1; p < opt.P; p++ {
			if factorMem[p] < factorMem[best] {
				best = p
			}
		}
		m.Proc[i] = best
		switch m.Types[i] {
		case Type2:
			factorMem[best] += MasterEntries(nd, t.Kind)
		case Type3:
			share := FactorEntries(nd, t.Kind) / int64(opt.P)
			for p := 0; p < opt.P; p++ {
				factorMem[p] += share
			}
		default:
			factorMem[best] += FactorEntries(nd, t.Kind)
		}
	}
	return m
}

// geistNg builds the leaf-subtree set with the Geist-Ng top-down algorithm:
// starting from the roots, repeatedly replace the heaviest candidate by its
// children until the heaviest is below totalFlops/(ratio*P) (or has no
// children). Candidates whose sequential stack peak exceeds the memory
// threshold are split too (the paper's memory-based subtree splitting).
// Leaf candidates that cannot be split stay as subtrees.
func geistNg(t *Tree, flops, peaks []int64, opt MapOptions) []int {
	if opt.P == 1 {
		return append([]int(nil), t.Roots...)
	}
	var total int64
	for _, r := range t.Roots {
		total += flops[r]
	}
	threshold := total / int64(float64(opt.P)*opt.SubtreeSplitRatio)
	if threshold < 1 {
		threshold = 1
	}
	var peakThreshold int64
	if opt.SubtreePeakFrac > 0 {
		var maxPeak int64
		for _, r := range t.Roots {
			if peaks[r] > maxPeak {
				maxPeak = peaks[r]
			}
		}
		peakThreshold = int64(opt.SubtreePeakFrac * float64(maxPeak))
		if peakThreshold < 1 {
			peakThreshold = 1
		}
	}
	tooBig := func(v int) bool {
		if flops[v] > threshold {
			return true
		}
		return peakThreshold > 0 && peaks[v] > peakThreshold
	}
	pool := append([]int(nil), t.Roots...)
	var done []int
	for {
		// Find heaviest splittable candidate over the threshold.
		hi := -1
		for k, v := range pool {
			if len(t.Nodes[v].Children) == 0 || !tooBig(v) {
				continue
			}
			if hi < 0 || flops[v] > flops[pool[hi]] ||
				(flops[v] == flops[pool[hi]] && v < pool[hi]) {
				hi = k
			}
		}
		if hi < 0 {
			break
		}
		v := pool[hi]
		pool = append(pool[:hi], pool[hi+1:]...)
		pool = append(pool, t.Nodes[v].Children...)
	}
	done = append(done, pool...)
	sort.Ints(done)
	return done
}

// UpperNodes returns the nodes not inside any subtree, in postorder.
func (m *Mapping) UpperNodes(t *Tree) []int {
	var out []int
	for _, i := range t.Postorder() {
		if m.Subtree[i] < 0 {
			out = append(out, i)
		}
	}
	return out
}

// Validate checks mapping invariants.
func (m *Mapping) Validate(t *Tree) error {
	for i := range t.Nodes {
		if m.Proc[i] < 0 || m.Proc[i] >= m.P {
			return errf("node %d unmapped (proc %d)", i, m.Proc[i])
		}
		if m.Types[i] < Type1 || m.Types[i] > Type3 {
			return errf("node %d has no type", i)
		}
		if m.Subtree[i] >= 0 {
			if m.Types[i] != Type1 {
				return errf("subtree node %d has type %v", i, m.Types[i])
			}
			// Parent chain inside a subtree shares the processor.
			p := t.Nodes[i].Parent
			if p >= 0 && m.Subtree[p] == m.Subtree[i] && m.Proc[p] != m.Proc[i] {
				return errf("subtree %d spans processors", m.Subtree[i])
			}
		}
	}
	t3 := 0
	for i := range t.Nodes {
		if m.Types[i] == Type3 {
			t3++
		}
	}
	if t3 > 1 {
		return errf("%d type-3 nodes, want at most 1", t3)
	}
	return nil
}

func errf(format string, args ...any) error {
	return fmt.Errorf("assembly: "+format, args...)
}
