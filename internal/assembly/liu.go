package assembly

import "sort"

// Liu's child-ordering theory for stack memory (reference [15] of the
// paper; the pool of tasks is initialized "to minimize the memory of each
// subtree using a variant of the algorithm by Liu").
//
// Processing children of a node in sequence, the stack holds the CBs of
// already-processed siblings while the current child's subtree runs. The
// peak of node v is
//
//	P(v) = max( max_j ( sum_{k<j} cb_k + P(child_j) ),
//	            sum_k cb_k + front(v) )
//
// and is minimized by processing children in decreasing P(child) - cb(child)
// order (Liu 1986).

// SequentialPeaks returns, for every node, the sequential stack peak (in
// entries) of processing its subtree with the *current* child order. The
// stack holds contribution blocks; the active front is counted while the
// node is being assembled/factorized.
func SequentialPeaks(t *Tree) []int64 {
	peaks := make([]int64, len(t.Nodes))
	for _, i := range t.Postorder() {
		nd := &t.Nodes[i]
		var stacked, peak int64
		for _, c := range nd.Children {
			if p := stacked + peaks[c]; p > peak {
				peak = p
			}
			stacked += CBEntries(&t.Nodes[c], t.Kind)
		}
		// All children CBs stacked plus the node's own front. (The CBs are
		// consumed during assembly; the conservative model keeps them until
		// the front is fully assembled, as MUMPS does for remote CBs.)
		if p := stacked + FrontEntries(nd, t.Kind); p > peak {
			peak = p
		}
		peaks[i] = peak
	}
	return peaks
}

// SortChildrenLiu reorders every node's child list in decreasing
// P(child) - cb(child), which minimizes the sequential stack peak. Ties
// break on node ID for determinism. Returns the resulting peaks.
func SortChildrenLiu(t *Tree) []int64 {
	peaks := make([]int64, len(t.Nodes))
	for _, i := range t.Postorder() {
		nd := &t.Nodes[i]
		ch := nd.Children
		sort.SliceStable(ch, func(a, b int) bool {
			ka := peaks[ch[a]] - CBEntries(&t.Nodes[ch[a]], t.Kind)
			kb := peaks[ch[b]] - CBEntries(&t.Nodes[ch[b]], t.Kind)
			if ka != kb {
				return ka > kb
			}
			return ch[a] < ch[b]
		})
		var stacked, peak int64
		for _, c := range ch {
			if p := stacked + peaks[c]; p > peak {
				peak = p
			}
			stacked += CBEntries(&t.Nodes[c], t.Kind)
		}
		if p := stacked + FrontEntries(nd, t.Kind); p > peak {
			peak = p
		}
		peaks[i] = peak
	}
	return peaks
}

// TreePeak returns the overall sequential stack peak for the whole forest
// (roots processed one after another; a root's CB is empty so nothing
// remains between roots).
func TreePeak(peaks []int64, t *Tree) int64 {
	var m int64
	for _, r := range t.Roots {
		if peaks[r] > m {
			m = peaks[r]
		}
	}
	return m
}
