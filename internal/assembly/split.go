package assembly

import "repro/internal/sparse"

// Static tree modification (paper Section 6): nodes whose type-2 master
// part is too large are split into a chain of smaller nodes, "thus avoiding
// nodes with a large master part". The paper uses a threshold of 2 million
// entries on the master part.

// SplitOptions controls the chain splitting.
type SplitOptions struct {
	// MaxMasterEntries is the maximum allowed size (entries) of a node's
	// master part; larger nodes are split. <=0 disables splitting.
	MaxMasterEntries int64
	// MinPiv prevents splitting into slivers: each chain link keeps at
	// least this many pivots.
	MinPiv int
}

// DefaultSplit mirrors the paper's threshold, rescaled: the paper's 2M
// entries apply to ~0.1-0.7M-order matrices; callers should scale it to
// their problem (see internal/workload).
func DefaultSplit(maxMaster int64) SplitOptions {
	return SplitOptions{MaxMasterEntries: maxMaster, MinPiv: 16}
}

// Split returns a new tree where every node whose master part exceeds
// opt.MaxMasterEntries is replaced by a chain: the bottom link keeps the
// first pivots and the full front; each upper link takes over the remaining
// pivots with a correspondingly smaller front. Child lists, parents and
// roots are rebuilt. Returns the new tree and the number of nodes split.
func Split(t *Tree, opt SplitOptions) (*Tree, int) {
	if opt.MaxMasterEntries <= 0 {
		return t, 0
	}
	if opt.MinPiv < 1 {
		opt.MinPiv = 1
	}
	nt := &Tree{N: t.N, Kind: t.Kind, Perm: t.Perm}
	// Map old node -> new id of its *top* link (what its parent sees as
	// child) and of its *bottom* link (what its children see as parent).
	top := make([]int, len(t.Nodes))
	splitCount := 0

	newID := func(nd Node) int {
		nd.ID = len(nt.Nodes)
		nt.Nodes = append(nt.Nodes, nd)
		return nd.ID
	}

	for _, i := range t.Postorder() {
		old := &t.Nodes[i]
		pieces := [][2]int{{old.Begin, old.End}}
		if old.Parent >= 0 {
			// Roots are never split: the root is the type-3 (2D) node in
			// MUMPS, and splitting a CB-free root would manufacture huge
			// intermediate contribution blocks out of nothing.
			pieces = splitRanges(old, t.Kind, opt)
		}
		// Bottom link: original pivot prefix, full original front.
		var prevID int
		for k, pr := range pieces {
			nd := Node{
				Parent: -1,
				Begin:  pr[0],
				End:    pr[1],
			}
			// Rows of piece k: the pivots of all upper pieces + original Rows.
			upperPivots := old.End - pr[1]
			rows := make([]int, 0, upperPivots+len(old.Rows))
			for c := pr[1]; c < old.End; c++ {
				rows = append(rows, c)
			}
			rows = append(rows, old.Rows...)
			nd.Rows = rows
			id := newID(nd)
			if k == 0 {
				// Bottom link inherits the original children.
				for _, c := range old.Children {
					cid := top[c]
					nt.Nodes[cid].Parent = id
					nt.Nodes[id].Children = append(nt.Nodes[id].Children, cid)
				}
			} else {
				nt.Nodes[prevID].Parent = id
				nt.Nodes[id].Children = append(nt.Nodes[id].Children, prevID)
			}
			prevID = id
		}
		if len(pieces) > 1 {
			splitCount++
		}
		top[i] = prevID
	}
	for i := range nt.Nodes {
		if nt.Nodes[i].Parent < 0 {
			nt.Roots = append(nt.Roots, i)
		}
	}
	return nt, splitCount
}

// splitRanges computes the pivot ranges of the chain pieces for one node,
// bottom first. A single-element result means no split. Each piece's master
// part (its pivots times its own front order) is kept at or below the
// threshold when MinPiv allows.
func splitRanges(nd *Node, kind sparse.Type, opt SplitOptions) [][2]int {
	p := nd.NPiv()
	front := nd.NFront()
	if MasterEntries(nd, kind) <= opt.MaxMasterEntries || p <= opt.MinPiv {
		return [][2]int{{nd.Begin, nd.End}}
	}
	var pieces [][2]int
	begin := nd.Begin
	remaining := p
	for remaining > 0 {
		np := maxPiecePivots(front, opt.MaxMasterEntries, kind)
		if np < opt.MinPiv {
			np = opt.MinPiv
		}
		if np > remaining || remaining-np < opt.MinPiv {
			np = remaining
		}
		pieces = append(pieces, [2]int{begin, begin + np})
		begin += np
		remaining -= np
		front -= np
	}
	return pieces
}

// maxPiecePivots returns the largest pivot count np whose master part on a
// front of the given order stays within maxEntries.
func maxPiecePivots(front int, maxEntries int64, kind sparse.Type) int {
	if front <= 0 {
		return 1
	}
	if kind == sparse.Unsymmetric {
		np := int(maxEntries / int64(front))
		if np < 1 {
			np = 1
		}
		return np
	}
	// Symmetric master: np*front - np(np-1)/2, increasing in np.
	lo, hi := 1, front
	for lo < hi {
		mid := (lo + hi + 1) / 2
		m := int64(mid)*int64(front) - int64(mid)*int64(mid-1)/2
		if m <= maxEntries {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}
