package workload

import (
	"testing"

	"repro/internal/sparse"
)

func TestSuiteShape(t *testing.T) {
	s := Suite()
	if len(s) != 8 {
		t.Fatalf("suite has %d problems, want 8 (Table 1)", len(s))
	}
	wantKind := map[string]sparse.Type{
		"BMWCRA_1": sparse.Symmetric, "GUPTA3": sparse.Symmetric,
		"MSDOOR": sparse.Symmetric, "SHIP_003": sparse.Symmetric,
		"PRE2": sparse.Unsymmetric, "TWOTONE": sparse.Unsymmetric,
		"ULTRASOUND3": sparse.Unsymmetric, "XENON2": sparse.Unsymmetric,
	}
	for _, p := range s {
		k, ok := wantKind[p.Name]
		if !ok {
			t.Errorf("unexpected problem %q", p.Name)
			continue
		}
		if p.Kind != k {
			t.Errorf("%s: kind %v, want %v", p.Name, p.Kind, k)
		}
	}
}

func TestSmallSuiteMatricesValid(t *testing.T) {
	for _, p := range SmallSuite() {
		a := p.Matrix()
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if a.Kind != p.Kind {
			t.Errorf("%s: generated kind %v, declared %v", p.Name, a.Kind, p.Kind)
		}
		if a.N < 100 {
			t.Errorf("%s: suspiciously small (n=%d)", p.Name, a.N)
		}
	}
}

func TestGenerationDeterministic(t *testing.T) {
	s := SmallSuite()
	for _, p := range s {
		a1 := p.Matrix()
		a2 := p.Matrix()
		if a1.N != a2.N || a1.NNZ() != a2.NNZ() {
			t.Errorf("%s: non-deterministic generation", p.Name)
		}
	}
}

func TestPRE2LargerThanTWOTONE(t *testing.T) {
	// The paper's PRE2 (659k) is much larger than TWOTONE (121k); the
	// analogues must preserve the ordering.
	s := Suite()
	pre2, _ := ByName(s, "PRE2")
	two, _ := ByName(s, "TWOTONE")
	if pre2.Matrix().N <= two.Matrix().N {
		t.Error("PRE2 analogue should be larger than TWOTONE analogue")
	}
}

func TestUnsymmetricFilter(t *testing.T) {
	u := Unsymmetric(Suite())
	if len(u) != 4 {
		t.Fatalf("%d unsymmetric problems, want 4", len(u))
	}
	for _, p := range u {
		if p.Kind != sparse.Unsymmetric {
			t.Errorf("%s in unsymmetric list", p.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName(Suite(), "GUPTA3"); err != nil {
		t.Error(err)
	}
	if _, err := ByName(Suite(), "NOPE"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestCircuitAnaloguesAreStructurallyUnsymmetric(t *testing.T) {
	for _, name := range []string{"PRE2", "TWOTONE"} {
		p, _ := ByName(SmallSuite(), name)
		a := p.Matrix()
		if s := sparse.StructuralSymmetry(a); s >= 0.999 {
			t.Errorf("%s: structural symmetry %v, want < 1", name, s)
		}
	}
}
