// Package workload provides the test-problem suite of the paper's Table 1
// as named synthetic analogues. The original matrices (Rutherford-Boeing /
// University of Florida / PARASOL collections) are not redistributable
// here, so each is replaced by a generator from the same structural family,
// scaled to laptop size:
//
//	BMWCRA_1     SYM  automotive crankshaft  -> 3D solid FEM grid
//	GUPTA3       SYM  LP normal equations    -> A·Aᵀ of a random LP matrix
//	                                            with dense rows
//	MSDOOR       SYM  medium-size door       -> layered shell model
//	SHIP_003     SYM  ship structure         -> elongated 3D solid grid
//	PRE2         UNS  harmonic balance       -> circuit backbone + couplings
//	TWOTONE      UNS  harmonic balance       -> circuit backbone + couplings
//	ULTRASOUND3  UNS  3D ultrasound waves    -> unsymmetric 3D grid operator
//	XENON2       UNS  zeolite crystals       -> unsymmetric 3D grid operator
//
// The scheduling phenomena the paper studies depend on the assembly-tree
// topology class each family produces (deep/unbalanced vs wide/balanced,
// big vs small fronts, SYM vs UNS), which the analogues preserve; absolute
// entry counts scale down with the matrix sizes.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/sparse"
)

// Problem is one named test matrix.
type Problem struct {
	Name        string
	Description string
	Kind        sparse.Type
	Gen         func() *sparse.CSC
}

// Matrix generates the matrix (deterministic per problem).
func (p Problem) Matrix() *sparse.CSC { return p.Gen() }

// Suite returns the eight problems of Table 1 at full (reproduction)
// scale.
func Suite() []Problem { return suite(1) }

// SmallSuite returns the same problems scaled down for fast tests and
// benchmarks.
func SmallSuite() []Problem { return suite(2) }

func suite(shrink int) []Problem {
	// Cross-sections and per-copy grids shrink linearly; long axes and
	// copy counts shrink quadratically, so the reduced suite keeps the
	// same topology class (elongated domains, many weakly coupled copies)
	// at a fraction of the order while staying large enough that the
	// paper's memory regime survives: per-processor CB stacks comparable
	// to the largest type-2 masters, which requires many bounded-size
	// fronts rather than one monster separator.
	d := func(n int) int {
		v := n / shrink
		if v < 4 {
			v = 4
		}
		return v
	}
	long := func(n int) int {
		v := n / (shrink * shrink)
		if v < 3 {
			v = 3
		}
		return v
	}
	return []Problem{
		{
			Name:        "BMWCRA_1",
			Description: "Automotive crankshaft model (3D solid FEM analogue)",
			Kind:        sparse.Symmetric,
			Gen:         func() *sparse.CSC { return sparse.Grid3D(long(250), d(9), d(8)) },
		},
		{
			Name:        "GUPTA3",
			Description: "Linear programming matrix A*A' (dense-row analogue)",
			Kind:        sparse.Symmetric,
			Gen: func() *sparse.CSC {
				rng := rand.New(rand.NewSource(1003))
				m := d(3000)
				a := sparse.RandomRect(m, d(6000), 3, 8, rng)
				return sparse.Submatrix(sparse.AAT(a), m)
			},
		},
		{
			Name:        "MSDOOR",
			Description: "Medium-size door (layered shell analogue)",
			Kind:        sparse.Symmetric,
			Gen:         func() *sparse.CSC { return sparse.Shell(long(180), d(36), 2) },
		},
		{
			Name:        "SHIP_003",
			Description: "Ship structure (elongated 3D solid analogue)",
			Kind:        sparse.Symmetric,
			Gen:         func() *sparse.CSC { return sparse.Grid3D(long(170), d(12), d(6)) },
		},
		{
			Name:        "PRE2",
			Description: "AT&T harmonic balance method (circuit analogue, large)",
			Kind:        sparse.Unsymmetric,
			Gen: func() *sparse.CSC {
				rng := rand.New(rand.NewSource(2001))
				return sparse.HarmonicBalance(d(24), d(24), long(40), d(15), 2, 6, rng)
			},
		},
		{
			Name:        "TWOTONE",
			Description: "AT&T harmonic balance method (circuit analogue)",
			Kind:        sparse.Unsymmetric,
			Gen: func() *sparse.CSC {
				rng := rand.New(rand.NewSource(2002))
				return sparse.HarmonicBalance(d(20), d(20), long(24), d(10), 1, 6, rng)
			},
		},
		{
			Name:        "ULTRASOUND3",
			Description: "3D ultrasound wave propagation (unsymmetric 3D grid)",
			Kind:        sparse.Unsymmetric,
			Gen: func() *sparse.CSC {
				rng := rand.New(rand.NewSource(2003))
				return sparse.Grid3DUnsym(long(500), d(10), d(10), rng)
			},
		},
		{
			Name:        "XENON2",
			Description: "Complex zeolite, sodalite crystals (unsymmetric 3D grid)",
			Kind:        sparse.Unsymmetric,
			Gen: func() *sparse.CSC {
				rng := rand.New(rand.NewSource(2004))
				return sparse.Grid3DUnsym(long(400), d(10), d(10), rng)
			},
		},
	}
}

// Unsymmetric returns the four unsymmetric problems (used by Tables 3/5).
func Unsymmetric(suite []Problem) []Problem {
	var out []Problem
	for _, p := range suite {
		if p.Kind == sparse.Unsymmetric {
			out = append(out, p)
		}
	}
	return out
}

// ByName finds a problem in the suite.
func ByName(suite []Problem, name string) (Problem, error) {
	for _, p := range suite {
		if p.Name == name {
			return p, nil
		}
	}
	return Problem{}, fmt.Errorf("workload: unknown problem %q", name)
}
