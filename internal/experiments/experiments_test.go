package experiments

import (
	"strings"
	"testing"

	"repro/internal/order"
	"repro/internal/parsim"
)

// The experiment tests run on the small suite with 8 processors to stay
// fast; the full-scale tables are produced by cmd/experiments and the
// benchmarks.

func smallRunner() *Runner { return NewRunner(8, true) }

func TestTable1(t *testing.T) {
	r := smallRunner()
	tbl, err := r.Table1()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Render()
	for _, name := range []string{"BMWCRA_1", "GUPTA3", "MSDOOR", "SHIP_003",
		"PRE2", "TWOTONE", "ULTRASOUND3", "XENON2"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table 1 missing %s", name)
		}
	}
}

func TestTable2ShapeAndCache(t *testing.T) {
	r := smallRunner()
	tbl, g, err := r.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if g.Cells() != 8*4 {
		t.Fatalf("Table 2 has %d cells, want 32", g.Cells())
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	// Reproducibility through the cache: a second call returns identical
	// values.
	_, g2, err := r.Table2()
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Values {
		for j := range g.Values[i] {
			if g.Values[i][j] != g2.Values[i][j] {
				t.Fatalf("cache changed cell (%d,%d)", i, j)
			}
		}
	}
}

func TestTable3UnsymmetricOnly(t *testing.T) {
	r := smallRunner()
	_, g, err := r.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Problems) != 4 {
		t.Fatalf("Table 3 has %d problems, want 4 unsymmetric", len(g.Problems))
	}
	for _, name := range g.Problems {
		if name == "BMWCRA_1" || name == "GUPTA3" || name == "MSDOOR" || name == "SHIP_003" {
			t.Errorf("symmetric problem %s in Table 3", name)
		}
	}
}

func TestTable4Layout(t *testing.T) {
	r := smallRunner()
	tbl, err := r.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("%d rows, want 2 strategies", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != 5 {
			t.Fatalf("row has %d cells, want 5", len(row))
		}
	}
}

func TestTable5CombinedBeatsTable2OnAverage(t *testing.T) {
	// The paper's central result: combining static splitting with the
	// dynamic strategies gives larger gains than the dynamic strategies
	// alone (Table 5 vs the unsymmetric rows of Table 2).
	r := smallRunner()
	_, g2, err := r.Table2()
	if err != nil {
		t.Fatal(err)
	}
	_, g5, err := r.Table5()
	if err != nil {
		t.Fatal(err)
	}
	// Mean over the unsymmetric rows of Table 2.
	var mean2 float64
	n := 0
	for i, name := range g2.Problems {
		switch name {
		case "PRE2", "TWOTONE", "ULTRASOUND3", "XENON2":
			for _, v := range g2.Values[i] {
				mean2 += v
				n++
			}
		}
	}
	mean2 /= float64(n)
	mean5 := g5.Mean()
	t.Logf("mean gain: dynamic only %.1f%%, combined %.1f%%", mean2, mean5)
	// On the reduced suite the static splitting rarely triggers, so the
	// full-scale ordering (combined clearly ahead, see EXPERIMENTS.md) is
	// only required up to a small tolerance here; what must hold is that
	// the combined strategies keep a positive average gain.
	if mean5 < mean2-3 {
		t.Errorf("combined strategies (%.1f%%) far below dynamic-only (%.1f%%)", mean5, mean2)
	}
	if mean5 <= 0 {
		t.Errorf("combined strategies show no average gain: %.1f%%", mean5)
	}
}

func TestTable6TimeLossBounded(t *testing.T) {
	r := smallRunner()
	_, g, err := r.Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Problems) != 3 {
		t.Fatalf("Table 6 has %d problems, want 3", len(g.Problems))
	}
	for i, row := range g.Values {
		for j, v := range row {
			if v > 300 {
				t.Errorf("%s/%v: time loss %.1f%% unreasonable", g.Problems[i], g.Orderings[j], v)
			}
		}
	}
}

func TestAnalysisCacheKeys(t *testing.T) {
	r := smallRunner()
	p := r.Suite[0]
	a1, err := r.Analysis(p, order.AMD, false)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := r.Analysis(p, order.AMD, false)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("analysis not cached")
	}
	s1, err := r.Analysis(p, order.AMD, true)
	if err != nil {
		t.Fatal(err)
	}
	if s1 == a1 {
		t.Error("split analysis must differ from base")
	}
}

func TestSimulateCache(t *testing.T) {
	r := smallRunner()
	p := r.Suite[3]
	r1, err := r.Simulate(p, order.ND, false, parsim.Workload())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := r.Simulate(p, order.ND, false, parsim.Workload())
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("simulation not cached")
	}
}

func TestGridHelpers(t *testing.T) {
	g := &CellGrid{
		Problems:  []string{"a", "b"},
		Orderings: order.Methods,
		Values:    [][]float64{{1, -2, 3, 0}, {5, 0, 0, 0}},
	}
	if g.Cells() != 8 {
		t.Errorf("cells %d", g.Cells())
	}
	if g.Wins(0) != 3 {
		t.Errorf("wins %d", g.Wins(0))
	}
	if m := g.Mean(); m != 7.0/8 {
		t.Errorf("mean %v", m)
	}
}

func TestExtensionTables(t *testing.T) {
	r := smallRunner()
	e1, err := r.TableE1()
	if err != nil {
		t.Fatal(err)
	}
	if len(e1.Rows) != 8 { // 4 unsymmetric problems x {memory, hybrid}
		t.Fatalf("E1 has %d rows, want 8", len(e1.Rows))
	}
	e2, err := r.TableE2()
	if err != nil {
		t.Fatal(err)
	}
	if len(e2.Rows) != len(r.Suite) {
		t.Fatalf("E2 has %d rows, want %d", len(e2.Rows), len(r.Suite))
	}
	// OOC saving must be nonnegative: the resident stack is a subset of
	// the in-core total.
	for _, row := range e2.Rows {
		if strings.HasPrefix(row[3], "-") {
			t.Errorf("negative OOC saving in %v", row)
		}
	}
}
