// Package experiments regenerates every table of the paper's evaluation
// (Section 6) on the synthetic Table-1 suite: the same matrices x
// orderings grids, the same comparisons (dynamic memory strategies vs the
// workload baseline, with and without static node splitting), and the same
// metrics (percentage decrease of the maximum stack-memory peak over
// processors; factorization-time loss).
//
// Absolute values differ from the paper (scaled-down matrices, simulated
// machine); the reproduction target is the *shape*: where gains appear,
// how splitting changes them, and the bounded time penalty.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/order"
	"repro/internal/parsim"
	"repro/internal/sparse"
	"repro/internal/workload"
)

// SplitThreshold is the suite's static-splitting floor in entries.
// The paper used a fixed 2M entries, which at its matrix scale split the
// largest masters into a small number of chain links (PRE2's 3.6M-entry
// master into two; TWOTONE not at all). Our synthetic suite has a much
// wider dynamic range of master sizes, so a fixed threshold either
// shreds the big circuit masters into hundreds of links or never touches
// the grid problems; splitThresholdFor reproduces the paper's *regime*
// (top masters -> a few links) with max(SplitThreshold, largestMaster/3).
// The paper itself notes "the choice of the threshold for splitting may be
// improved and should be more matrix-dependent".
const SplitThreshold = 200_000

// splitThresholdFor returns the matrix-dependent threshold.
func splitThresholdFor(an *core.Analysis) int64 {
	thr := an.LargestMaster() / 3
	if thr < SplitThreshold {
		thr = SplitThreshold
	}
	return thr
}

// Runner executes the paper's experiments with analysis caching.
type Runner struct {
	Procs  int
	Suite  []workload.Problem
	Params parsim.Params

	mats  map[string]*sparse.CSC
	cache map[string]*core.Analysis // key: name/ordering[/split]
	sims  map[string]*parsim.Result
}

// NewRunner returns a runner over the full or small suite.
func NewRunner(procs int, small bool) *Runner {
	s := workload.Suite()
	if small {
		s = workload.SmallSuite()
	}
	return &Runner{
		Procs:  procs,
		Suite:  s,
		Params: parsim.DefaultParams(),
		mats:   map[string]*sparse.CSC{},
		cache:  map[string]*core.Analysis{},
		sims:   map[string]*parsim.Result{},
	}
}

func (r *Runner) matrix(p workload.Problem) *sparse.CSC {
	m, ok := r.mats[p.Name]
	if !ok {
		m = p.Matrix()
		r.mats[p.Name] = m
	}
	return m
}

// Analysis returns the (cached) analysis of a problem under an ordering,
// optionally with node splitting.
func (r *Runner) Analysis(p workload.Problem, m order.Method, split bool) (*core.Analysis, error) {
	key := fmt.Sprintf("%s/%v/%v", p.Name, m, split)
	if an, ok := r.cache[key]; ok {
		return an, nil
	}
	base, ok := r.cache[fmt.Sprintf("%s/%v/false", p.Name, m)]
	if !ok {
		cfg := core.DefaultConfig(m, r.Procs)
		cfg.Params = r.Params
		var err error
		base, err = core.Analyze(r.matrix(p), cfg)
		if err != nil {
			return nil, fmt.Errorf("%s/%v: %w", p.Name, m, err)
		}
		r.cache[fmt.Sprintf("%s/%v/false", p.Name, m)] = base
	}
	if !split {
		return base, nil
	}
	an, err := base.WithSplit(splitThresholdFor(base), 0)
	if err != nil {
		return nil, fmt.Errorf("%s/%v split: %w", p.Name, m, err)
	}
	r.cache[key] = an
	return an, nil
}

// Simulate returns the (cached) simulation result.
func (r *Runner) Simulate(p workload.Problem, m order.Method, split bool, st parsim.Strategy) (*parsim.Result, error) {
	key := fmt.Sprintf("%s/%v/%v/%+v", p.Name, m, split, st)
	if res, ok := r.sims[key]; ok {
		return res, nil
	}
	an, err := r.Analysis(p, m, split)
	if err != nil {
		return nil, err
	}
	res, err := an.Simulate(st)
	if err != nil {
		return nil, fmt.Errorf("%s/%v: %w", p.Name, m, err)
	}
	r.sims[key] = res
	return res, nil
}

// Table1 reproduces Table 1: the test problems.
func (r *Runner) Table1() (*metrics.Table, error) {
	t := metrics.New("Table 1: Test problems (synthetic analogues)",
		"Matrix", "Order", "NZ", "Type", "Description")
	for _, p := range r.Suite {
		a := r.matrix(p)
		t.AddRow(p.Name, a.N, a.NNZ(), p.Kind.String(), p.Description)
	}
	return t, nil
}

// CellGrid holds a problems x orderings grid of percentages.
type CellGrid struct {
	Problems  []string
	Orderings []order.Method
	Values    [][]float64
}

// tableFromGrid renders a grid the way the paper's tables are laid out.
func tableFromGrid(title string, g *CellGrid) *metrics.Table {
	headers := []string{""}
	for _, m := range g.Orderings {
		headers = append(headers, m.String())
	}
	t := metrics.New(title, headers...)
	for i, name := range g.Problems {
		row := []any{name}
		for j := range g.Orderings {
			row = append(row, fmt.Sprintf("%.1f", g.Values[i][j]))
		}
		t.AddRow(row...)
	}
	return t
}

// grid runs a comparison over problems x orderings.
func (r *Runner) grid(problems []workload.Problem,
	f func(p workload.Problem, m order.Method) (float64, error)) (*CellGrid, error) {
	g := &CellGrid{Orderings: order.Methods}
	for _, p := range problems {
		row := make([]float64, len(order.Methods))
		for j, m := range order.Methods {
			v, err := f(p, m)
			if err != nil {
				return nil, err
			}
			row[j] = v
		}
		g.Problems = append(g.Problems, p.Name)
		g.Values = append(g.Values, row)
	}
	return g, nil
}

// Table2 reproduces Table 2: percentage decrease of the maximum stack peak
// with the dynamic memory strategies (no splitting).
func (r *Runner) Table2() (*metrics.Table, *CellGrid, error) {
	g, err := r.grid(r.Suite, func(p workload.Problem, m order.Method) (float64, error) {
		w, err := r.Simulate(p, m, false, parsim.Workload())
		if err != nil {
			return 0, err
		}
		mem, err := r.Simulate(p, m, false, parsim.MemoryBased())
		if err != nil {
			return 0, err
		}
		return metrics.PercentDecrease(w.MaxActivePeak, mem.MaxActivePeak), nil
	})
	if err != nil {
		return nil, nil, err
	}
	return tableFromGrid("Table 2: % decrease of max stack peak, dynamic memory strategies (no splitting)", g), g, nil
}

// Table3 reproduces Table 3: the same comparison on statically split trees
// (unsymmetric problems).
func (r *Runner) Table3() (*metrics.Table, *CellGrid, error) {
	g, err := r.grid(workload.Unsymmetric(r.Suite), func(p workload.Problem, m order.Method) (float64, error) {
		w, err := r.Simulate(p, m, true, parsim.Workload())
		if err != nil {
			return 0, err
		}
		mem, err := r.Simulate(p, m, true, parsim.MemoryBased())
		if err != nil {
			return 0, err
		}
		return metrics.PercentDecrease(w.MaxActivePeak, mem.MaxActivePeak), nil
	})
	if err != nil {
		return nil, nil, err
	}
	return tableFromGrid("Table 3: % decrease of max stack peak with split trees (unsymmetric)", g), g, nil
}

// Table4 reproduces Table 4: absolute max stack peaks (millions of
// entries) for the two illustrative cases.
func (r *Runner) Table4() (*metrics.Table, error) {
	t := metrics.New("Table 4: max stack peak (millions of entries), two illustrative cases",
		"Strategy", "ULTRA3/METIS nosplit", "ULTRA3/METIS split",
		"XENON2/AMF nosplit", "XENON2/AMF split")
	type cse struct {
		name string
		m    order.Method
	}
	cases := []cse{{"ULTRASOUND3", order.ND}, {"XENON2", order.AMF}}
	rows := map[string][]string{"workload": {"MUMPS dynamic strategy"}, "memory": {"memory-based dynamic strategy"}}
	order_ := []string{"workload", "memory"}
	strat := map[string]parsim.Strategy{"workload": parsim.Workload(), "memory": parsim.MemoryBased()}
	for _, c := range cases {
		p, err := workload.ByName(r.Suite, c.name)
		if err != nil {
			return nil, err
		}
		for _, split := range []bool{false, true} {
			for _, s := range order_ {
				res, err := r.Simulate(p, c.m, split, strat[s])
				if err != nil {
					return nil, err
				}
				rows[s] = append(rows[s], metrics.Millions(res.MaxActivePeak))
			}
		}
	}
	for _, s := range order_ {
		cells := make([]any, len(rows[s]))
		for i, v := range rows[s] {
			cells[i] = v
		}
		t.AddRow(cells...)
	}
	return t, nil
}

// Table5 reproduces Table 5: combined static (splitting) + dynamic memory
// strategies vs the original MUMPS strategy.
func (r *Runner) Table5() (*metrics.Table, *CellGrid, error) {
	g, err := r.grid(workload.Unsymmetric(r.Suite), func(p workload.Problem, m order.Method) (float64, error) {
		w, err := r.Simulate(p, m, false, parsim.Workload())
		if err != nil {
			return 0, err
		}
		mem, err := r.Simulate(p, m, true, parsim.MemoryBased())
		if err != nil {
			return 0, err
		}
		return metrics.PercentDecrease(w.MaxActivePeak, mem.MaxActivePeak), nil
	})
	if err != nil {
		return nil, nil, err
	}
	return tableFromGrid("Table 5: % decrease of max stack peak, static + dynamic combined vs original", g), g, nil
}

// Table6 reproduces Table 6: factorization-time loss (%) of the
// memory-optimized strategy vs the original, for three large problems.
func (r *Runner) Table6() (*metrics.Table, *CellGrid, error) {
	var probs []workload.Problem
	for _, name := range []string{"SHIP_003", "PRE2", "ULTRASOUND3"} {
		p, err := workload.ByName(r.Suite, name)
		if err != nil {
			return nil, nil, err
		}
		probs = append(probs, p)
	}
	g, err := r.grid(probs, func(p workload.Problem, m order.Method) (float64, error) {
		// Same tree for both strategies: Table 6 isolates the cost of the
		// dynamic memory strategies themselves (the paper's PRE2 row has
		// small mixed values, so the static splitting speedup is not
		// included there).
		w, err := r.Simulate(p, m, false, parsim.Workload())
		if err != nil {
			return 0, err
		}
		mem, err := r.Simulate(p, m, false, parsim.MemoryBased())
		if err != nil {
			return 0, err
		}
		return metrics.PercentIncrease(int64(w.Makespan), int64(mem.Makespan)), nil
	})
	if err != nil {
		return nil, nil, err
	}
	return tableFromGrid("Table 6: factorization-time loss (%) of the memory-optimized strategy", g), g, nil
}

// TableE1 is an extension table (not in the paper): the hybrid strategy
// of the paper's conclusion against the workload baseline and the pure
// memory strategy, on the unsymmetric problems. Cells are the percentage
// decrease of the max stack peak vs the workload baseline; the makespan
// ratio shows the time side of the trade-off.
func (r *Runner) TableE1() (*metrics.Table, error) {
	t := metrics.New("Table E1 (extension): hybrid workload+memory strategy, gain % / time loss % vs workload",
		"", "METIS", "PORD", "AMD", "AMF")
	for _, p := range workload.Unsymmetric(r.Suite) {
		for _, s := range []struct {
			label string
			st    parsim.Strategy
		}{
			{"memory", parsim.MemoryBased()},
			{"hybrid", parsim.Hybrid()},
		} {
			row := []any{fmt.Sprintf("%s (%s)", p.Name, s.label)}
			for _, m := range order.Methods {
				w, err := r.Simulate(p, m, false, parsim.Workload())
				if err != nil {
					return nil, err
				}
				x, err := r.Simulate(p, m, false, s.st)
				if err != nil {
					return nil, err
				}
				row = append(row, fmt.Sprintf("%.1f / %.1f",
					metrics.PercentDecrease(w.MaxActivePeak, x.MaxActivePeak),
					metrics.PercentIncrease(int64(w.Makespan), int64(x.Makespan))))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// TableE2 is an extension table (not in the paper's evaluation, but the
// argument of its conclusion): in-core total peak vs the stack peak that
// remains resident when factors go out of core, under the memory
// strategy.
func (r *Runner) TableE2() (*metrics.Table, error) {
	t := metrics.New("Table E2 (extension): out-of-core residency, memory strategy (entries)",
		"", "in-core total", "OOC resident (stack)", "saving %")
	for _, p := range r.Suite {
		var bestTot, bestAct int64
		for _, m := range order.Methods {
			res, err := r.Simulate(p, m, false, parsim.MemoryBased())
			if err != nil {
				return nil, err
			}
			if bestTot == 0 || res.MaxTotalPeak < bestTot {
				bestTot, bestAct = res.MaxTotalPeak, res.MaxActivePeak
			}
		}
		t.AddRow(p.Name, bestTot, bestAct,
			fmt.Sprintf("%.1f", metrics.PercentDecrease(bestTot, bestAct)))
	}
	return t, nil
}

// Mean returns the average of all cells in the grid.
func (g *CellGrid) Mean() float64 {
	var s float64
	n := 0
	for _, row := range g.Values {
		for _, v := range row {
			s += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// Wins counts cells strictly above the threshold.
func (g *CellGrid) Wins(threshold float64) int {
	n := 0
	for _, row := range g.Values {
		for _, v := range row {
			if v > threshold {
				n++
			}
		}
	}
	return n
}

// Cells returns the total number of cells.
func (g *CellGrid) Cells() int {
	n := 0
	for _, row := range g.Values {
		n += len(row)
	}
	return n
}
