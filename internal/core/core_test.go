package core

import (
	"math/rand"
	"testing"

	"repro/internal/assembly"
	"repro/internal/order"
	"repro/internal/parmf"
	"repro/internal/parsim"
	"repro/internal/sparse"
)

func TestAnalyzeFactorizeSimulate(t *testing.T) {
	a := sparse.Grid3D(8, 8, 8)
	an, err := Analyze(a, DefaultConfig(order.ND, 4))
	if err != nil {
		t.Fatal(err)
	}
	st := an.Stats()
	if st.N != a.N || st.Fronts == 0 || st.Flops <= 0 || st.SeqPeak <= 0 {
		t.Fatalf("bad stats %+v", st)
	}
	f, err := an.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	if f.Stats.PeakStack != an.SeqPeak {
		t.Errorf("numeric peak %d != analysis SeqPeak %d", f.Stats.PeakStack, an.SeqPeak)
	}
	for _, s := range []parsim.Strategy{parsim.Workload(), parsim.MemoryBased()} {
		res, err := an.Simulate(s)
		if err != nil {
			t.Fatal(err)
		}
		if res.NodesDone != an.Tree.Len() {
			t.Fatal("incomplete simulation")
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(nil, DefaultConfig(order.AMD, 2)); err == nil {
		t.Error("nil matrix accepted")
	}
	if _, err := Analyze(&sparse.CSC{ColPtr: []int{0}}, DefaultConfig(order.AMD, 2)); err == nil {
		t.Error("empty matrix accepted")
	}
}

func TestAnalyzeDefaultsProcs(t *testing.T) {
	a := sparse.Grid2D(8, 8)
	cfg := DefaultConfig(order.AMD, 0) // invalid proc count
	an, err := Analyze(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if an.Mapping.P != 1 {
		t.Errorf("P = %d, want clamped to 1", an.Mapping.P)
	}
}

func TestWithSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := sparse.Grid3DUnsym(8, 8, 8, rng)
	an, err := Analyze(a, DefaultConfig(order.ND, 8))
	if err != nil {
		t.Fatal(err)
	}
	big := an.LargestMaster()
	if big == 0 {
		t.Skip("no non-root masters")
	}
	sp, err := an.WithSplit(big/2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sp.SplitCount == 0 {
		t.Fatal("nothing split at half the largest master")
	}
	if sp.Tree.Len() <= an.Tree.Len() {
		t.Error("split tree not larger")
	}
	if sp.LargestMaster() >= big {
		t.Errorf("largest master not reduced: %d -> %d", big, sp.LargestMaster())
	}
	// Both analyses remain simulable and consistent.
	r1, err := an.Simulate(parsim.MemoryBased())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sp.Simulate(parsim.MemoryBased())
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalFactors != r2.TotalFactors {
		t.Errorf("splitting changed factor entries: %d vs %d (unsym chains preserve them)",
			r1.TotalFactors, r2.TotalFactors)
	}
}

func TestSplitViaConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	a := sparse.Grid3DUnsym(7, 7, 7, rng)
	cfg := DefaultConfig(order.ND, 4)
	pre, err := Analyze(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SplitThreshold = pre.LargestMaster() / 2
	an, err := Analyze(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if an.SplitCount == 0 {
		t.Error("config-driven split did nothing")
	}
}

func TestStatsCounts(t *testing.T) {
	a := sparse.Grid3D(9, 9, 9)
	an, err := Analyze(a, DefaultConfig(order.ND, 8))
	if err != nil {
		t.Fatal(err)
	}
	st := an.Stats()
	if st.Subtrees != len(an.Mapping.SubRoot) {
		t.Errorf("subtrees %d vs %d", st.Subtrees, len(an.Mapping.SubRoot))
	}
	t2 := 0
	for i := range an.Tree.Nodes {
		if an.Mapping.Types[i] == assembly.Type2 {
			t2++
		}
	}
	if st.Type2Nodes != t2 {
		t.Errorf("type2 count %d vs %d", st.Type2Nodes, t2)
	}
	if st.FactorEntries != assembly.TotalFactorEntries(an.Tree) {
		t.Error("factor entries mismatch")
	}
}

func TestSimulateTraced(t *testing.T) {
	a := sparse.Grid2D(10, 10)
	an, err := Analyze(a, DefaultConfig(order.AMD, 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := an.SimulateTraced(parsim.Workload())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) != 2 {
		t.Errorf("%d traces", len(res.Traces))
	}
}

func TestFactorizeOOC(t *testing.T) {
	a := sparse.Grid3D(8, 8, 8)
	cfg := DefaultConfig(order.ND, 4)
	cfg.OOC.Dir = t.TempDir()
	an, err := Analyze(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := an.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	of, st, err := an.FactorizeOOC()
	if err != nil {
		t.Fatal(err)
	}
	defer of.Close()
	if of.Front() != nil {
		t.Error("OOC factors expose an in-memory container")
	}
	if st.Stats().Blocks != an.Tree.Len() {
		t.Errorf("spilled %d blocks, want %d", st.Stats().Blocks, an.Tree.Len())
	}
	if of.Stats.ResidentPeak >= sf.Stats.ResidentPeak {
		t.Errorf("OOC resident peak %d not below in-core %d",
			of.Stats.ResidentPeak, sf.Stats.ResidentPeak)
	}
	// Same factors → identical solves.
	b := make([]float64, a.N)
	for i := range b {
		b[i] = float64(i%11) - 5
	}
	xs, err := sf.SolveOriginal(b)
	if err != nil {
		t.Fatal(err)
	}
	xo, err := of.SolveOriginal(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if xs[i] != xo[i] {
			t.Fatalf("x[%d]: %g vs %g (should be bitwise identical)", i, xs[i], xo[i])
		}
	}
}

func TestFactorizeParallelOOC(t *testing.T) {
	a := sparse.Grid3D(8, 8, 8)
	cfg := DefaultConfig(order.ND, 4)
	cfg.OOC.Dir = t.TempDir()
	an, err := Analyze(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pf, st, err := an.FactorizeParallelOOC(parmf.DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	if st.Stats().Blocks != an.Tree.Len() {
		t.Errorf("spilled %d blocks, want %d", st.Stats().Blocks, an.Tree.Len())
	}
	sf, err := an.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.N)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	xs, err := sf.SolveOriginal(b)
	if err != nil {
		t.Fatal(err)
	}
	xp, err := pf.SolveOriginal(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if xs[i] != xp[i] {
			t.Fatalf("x[%d]: %g vs %g (should be bitwise identical)", i, xs[i], xp[i])
		}
	}
}

func TestFactorizeParallelMatchesSequential(t *testing.T) {
	a := sparse.Grid3D(8, 8, 8)
	an, err := Analyze(a, DefaultConfig(order.ND, 4))
	if err != nil {
		t.Fatal(err)
	}
	sf, err := an.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	pf, err := an.FactorizeParallel(parmf.DefaultConfig(0)) // 0 → Procs
	if err != nil {
		t.Fatal(err)
	}
	if pf.Stats.Workers != 4 {
		t.Errorf("workers %d, want analysis procs 4", pf.Stats.Workers)
	}
	// Subtree tasks come from the mapping, so fewer tasks than fronts.
	if pf.Stats.Tasks >= pf.Stats.Fronts {
		t.Errorf("tasks %d not batched below fronts %d", pf.Stats.Tasks, pf.Stats.Fronts)
	}
	if pf.Stats.FactorEntries != sf.Stats.FactorEntries {
		t.Errorf("factor entries %d vs %d", pf.Stats.FactorEntries, sf.Stats.FactorEntries)
	}
	for ni := 0; ni < an.Tree.Len(); ni++ {
		sn, pn := sf.Front().Node(ni), pf.Front().Node(ni)
		for p, v := range sn.L.A {
			if v != pn.L.A[p] {
				t.Fatalf("node %d: L entry %d differs: %g vs %g", ni, p, v, pn.L.A[p])
			}
		}
	}
}

// TestFactorizeAndSolve covers the facade's factor-and-solve variants:
// the sequential and tree-parallel paths must agree bit for bit on a
// multi-RHS block (in original ordering) and actually solve the system.
func TestFactorizeAndSolve(t *testing.T) {
	a := sparse.Grid3D(6, 6, 6)
	if err := sparse.FillDominant(a, rand.New(rand.NewSource(7))); err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(a, DefaultConfig(order.ND, 4))
	if err != nil {
		t.Fatal(err)
	}
	const nrhs = 4
	rng := rand.New(rand.NewSource(2))
	b := make([]float64, a.N*nrhs)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	xs, sf, err := an.FactorizeAndSolve(b, nrhs)
	if err != nil {
		t.Fatal(err)
	}
	if sf == nil {
		t.Fatal("nil sequential factors")
	}
	xp, pf, err := an.FactorizeParallelAndSolve(parmf.DefaultConfig(4), b, nrhs)
	if err != nil {
		t.Fatal(err)
	}
	if pf.Stats.Workers != 4 {
		t.Fatalf("parallel run used %d workers", pf.Stats.Workers)
	}
	for i := range xs {
		if xs[i] != xp[i] {
			t.Fatalf("parallel x differs at %d: %v != %v", i, xp[i], xs[i])
		}
	}
	// Residual check column 0: the block is row-major n x nrhs.
	x0 := make([]float64, a.N)
	b0 := make([]float64, a.N)
	for i := 0; i < a.N; i++ {
		x0[i], b0[i] = xs[i*nrhs], b[i*nrhs]
	}
	ax := a.MulVec(x0)
	for i := range ax {
		if d := ax[i] - b0[i]; d > 1e-8 || d < -1e-8 {
			t.Fatalf("residual at %d: %g", i, d)
		}
	}
	// Validation surfaces from the solve layer.
	if _, _, err := an.FactorizeAndSolve(b, 0); err == nil {
		t.Error("zero nrhs accepted")
	}
	if _, _, err := an.FactorizeParallelAndSolve(parmf.DefaultConfig(2), b[:3], nrhs); err == nil {
		t.Error("short block accepted")
	}
}
