// Package core is the public facade of the solver: it wires the analysis
// pipeline (ordering → elimination tree → assembly tree → optional node
// splitting → static mapping), the sequential and shared-memory parallel
// numeric factorizations, and the parallel factorization simulator with
// the paper's scheduling strategies behind a small API.
//
// Typical use:
//
//	an, err := core.Analyze(a, core.DefaultConfig(order.ND, 32))
//	f, err := an.Factorize()          // numeric LU/Cholesky + Solve
//	pf, err := an.FactorizeParallel(parmf.DefaultConfig(8))
//	of, st, err := an.FactorizeOOC()  // factors spilled to disk as produced
//	res, err := an.Simulate(parsim.MemoryBased())
package core

import (
	"context"
	"fmt"

	"repro/internal/assembly"
	"repro/internal/dense"
	"repro/internal/etree"
	"repro/internal/faults"
	"repro/internal/ooc"
	"repro/internal/order"
	"repro/internal/parmf"
	"repro/internal/parsim"
	"repro/internal/seqmf"
	"repro/internal/sparse"
	"repro/internal/trace"
)

// Config drives the analysis phase.
type Config struct {
	// Ordering selects the fill-reducing ordering.
	Ordering order.Method
	// Amalg controls supernode amalgamation.
	Amalg etree.AmalgamationOptions
	// SplitThreshold, when positive, splits nodes whose type-2 master part
	// exceeds this many entries into chains (the paper's static tree
	// modification; it used 2 million entries at its problem scale).
	SplitThreshold int64
	// SplitMinPiv is the minimum pivots per chain link.
	SplitMinPiv int
	// Procs is the simulated processor count.
	Procs int
	// FrontSplit: fronts of at least this order (outside leaf subtrees)
	// factor through the within-front (type-2) master/slave path of the
	// parallel executor. 0 derives the static mapping's type-2
	// classification threshold from the tree; negative disables
	// within-front parallelism. The factors never depend on it.
	FrontSplit int
	// BlockRows is the panel width / row-block height of the blocked
	// dense kernels and of the within-front partitions (1D row blocks and
	// 2D tiles), for both executors. 0 uses dense.DefaultBlockRows;
	// negative selects the element-wise reference kernels
	// (bitwise-identical, slower).
	BlockRows int
	// RootGrid controls the 2D (type-3) tile decomposition of split root
	// fronts in the parallel executor: 0 sizes the worker grid
	// automatically (pr = floor(sqrt(workers)), pc = ceil(workers/pr)),
	// > 0 forces that many grid rows, negative keeps roots on the 1D
	// (type-2) row partition. The factors never depend on it.
	RootGrid int
	// Kernel selects the dense kernel family of every numeric
	// factorization (dense.KernelDefault, KernelFast, KernelSIMD, or
	// KernelAuto, which resolves to SIMD when the vector path is
	// available and fast otherwise). The non-default families are
	// validated by residual instead of bit equality; factors stay
	// deterministic for a fixed BlockRows, at any worker count.
	Kernel dense.Kernel
	// FastKernels is the deprecated boolean form of Kernel=KernelFast; it
	// is honored only when Kernel is left at the default.
	FastKernels bool
	// MapOptions overrides the static mapping (zero value = defaults).
	MapOptions assembly.MapOptions
	// Params is the simulated machine model (zero value = defaults).
	Params parsim.Params
	// OOC configures the out-of-core factor store used by FactorizeOOC
	// and FactorizeParallelOOC (zero value = defaults: spill file in the
	// system temp dir, resident buffer sized by oocOptions).
	OOC ooc.Options
	// Tracer, when non-nil, records task/front/store/solve spans and
	// memory timelines from every numeric factorization run through this
	// analysis (see internal/trace: Chrome trace_event export, memory
	// CSV/sparklines, Prometheus-style snapshots). The executors also arm
	// its progress ledger (fronts/flops done against the analysis-time
	// totals), so a trace.Collector — or an internal/obs server holding
	// one — can serve live mid-run snapshots with progress, ETA and the
	// exact resident gauge. nil = zero overhead.
	Tracer *trace.Tracer
	// Faults, when non-nil, arms deterministic fault injection at the
	// named points of every numeric factorization run through this
	// analysis (see internal/faults): the executors' task points, the
	// out-of-core store's spill-write/spill-read/decode points, and the
	// solve's per-front point. nil = zero overhead; fault handling never
	// changes the numeric result of a run that completes.
	Faults *faults.Injector
}

// DefaultConfig returns a standard configuration.
func DefaultConfig(m order.Method, procs int) Config {
	return Config{
		Ordering:    m,
		Amalg:       etree.DefaultAmalgamation(),
		SplitMinPiv: 16,
		Procs:       procs,
		Params:      parsim.DefaultParams(),
	}
}

// Analysis is the result of the symbolic phase: everything needed to run
// the numeric factorization or the parallel simulation.
type Analysis struct {
	Tree     *assembly.Tree
	Permuted *sparse.CSC
	Mapping  *assembly.Mapping
	Config   Config
	// SplitCount is the number of nodes split into chains.
	SplitCount int
	// SeqPeak is the sequential stack peak (entries) after Liu ordering.
	SeqPeak int64
}

// Analyze runs the full symbolic phase on matrix a.
func Analyze(a *sparse.CSC, cfg Config) (*Analysis, error) {
	if a == nil || a.N == 0 {
		return nil, fmt.Errorf("core: empty matrix")
	}
	if cfg.Procs < 1 {
		cfg.Procs = 1
	}
	if cfg.Params.FlopRate == 0 {
		cfg.Params = parsim.DefaultParams()
	}
	tree, pa := assembly.Analyze(a, assembly.Options{Ordering: cfg.Ordering, Amalg: cfg.Amalg})
	splitCount := 0
	if cfg.SplitThreshold > 0 {
		tree, splitCount = assembly.Split(tree, assembly.SplitOptions{
			MaxMasterEntries: cfg.SplitThreshold,
			MinPiv:           cfg.SplitMinPiv,
		})
	}
	peaks := assembly.SortChildrenLiu(tree)
	mo := cfg.MapOptions
	if mo.P == 0 {
		mo = assembly.DefaultMapOptions(cfg.Procs)
	}
	mp := assembly.Map(tree, mo)
	if err := mp.Validate(tree); err != nil {
		return nil, fmt.Errorf("core: mapping: %w", err)
	}
	return &Analysis{
		Tree:       tree,
		Permuted:   pa,
		Mapping:    mp,
		Config:     cfg,
		SplitCount: splitCount,
		SeqPeak:    assembly.TreePeak(peaks, tree),
	}, nil
}

// WithSplit returns a new Analysis whose tree has large type-2 masters
// split into chains (threshold in entries), reusing the already-computed
// ordering and symbolic structure. minPiv <= 0 uses the config default.
func (an *Analysis) WithSplit(threshold int64, minPiv int) (*Analysis, error) {
	if minPiv <= 0 {
		minPiv = an.Config.SplitMinPiv
		if minPiv <= 0 {
			minPiv = 16
		}
	}
	tree, count := assembly.Split(an.Tree, assembly.SplitOptions{
		MaxMasterEntries: threshold,
		MinPiv:           minPiv,
	})
	peaks := assembly.SortChildrenLiu(tree)
	mo := an.Config.MapOptions
	if mo.P == 0 {
		mo = assembly.DefaultMapOptions(an.Config.Procs)
	}
	mp := assembly.Map(tree, mo)
	if err := mp.Validate(tree); err != nil {
		return nil, fmt.Errorf("core: mapping after split: %w", err)
	}
	cfg := an.Config
	cfg.SplitThreshold = threshold
	return &Analysis{
		Tree:       tree,
		Permuted:   an.Permuted,
		Mapping:    mp,
		Config:     cfg,
		SplitCount: count,
		SeqPeak:    assembly.TreePeak(peaks, tree),
	}, nil
}

// Factorize runs the sequential numeric factorization (real LU/Cholesky)
// through the blocked dense kernels (Config.BlockRows) — the same numeric
// path the parallel executor uses, bitwise identical to the element-wise
// kernels. The matrix must carry values.
func (an *Analysis) Factorize() (*seqmf.Factors, error) {
	return an.FactorizeCtx(context.Background())
}

// FactorizeCtx is Factorize under a context: the postorder walk checks
// ctx between fronts and a cancellation becomes a descriptive error
// naming how far the walk got. A Background context costs nothing.
func (an *Analysis) FactorizeCtx(ctx context.Context) (*seqmf.Factors, error) {
	return seqmf.FactorizeCtx(ctx, an.Permuted, an.Tree, an.seqOptions())
}

// seqOptions resolves the sequential executor's options from the
// analysis configuration.
func (an *Analysis) seqOptions() seqmf.Options {
	opt := seqmf.DefaultOptions()
	opt.BlockRows = an.blockRows()
	opt.Kernel = an.Config.Kernel
	opt.FastKernels = an.Config.FastKernels
	opt.Tracer = an.Config.Tracer
	opt.Faults = an.Config.Faults
	return opt
}

// blockRows resolves Config.BlockRows: explicit, default, or 0 for the
// element-wise kernels.
func (an *Analysis) blockRows() int {
	switch {
	case an.Config.BlockRows > 0:
		return an.Config.BlockRows
	case an.Config.BlockRows < 0:
		return 0
	}
	return dense.DefaultBlockRows
}

// FrontSplitThreshold resolves Config.FrontSplit against the tree: the
// explicit threshold, the static mapping's type-2 classification
// threshold (Config.FrontSplit == 0 — an explicit
// MapOptions.Type2MinFront included, so the executor splits exactly the
// fronts the mapping classifies as type 2), or 0 when within-front
// parallelism is disabled (negative).
func (an *Analysis) FrontSplitThreshold() int {
	switch {
	case an.Config.FrontSplit > 0:
		return an.Config.FrontSplit
	case an.Config.FrontSplit < 0:
		return 0
	}
	// Analyze applies MapOptions only when P is set; mirror that here.
	if mo := an.Config.MapOptions; mo.P != 0 && mo.Type2MinFront > 0 {
		return mo.Type2MinFront
	}
	maxFront := 0
	for i := range an.Tree.Nodes {
		if f := an.Tree.Nodes[i].NFront(); f > maxFront {
			maxFront = f
		}
	}
	return assembly.DefaultType2MinFront(maxFront)
}

// FactorizeParallel runs the shared-memory parallel numeric factorization
// with cfg.Workers goroutines (cfg.Workers < 1 uses the analysis processor
// count). Unless overridden, the static mapping's leaf subtrees become the
// single-worker subtree tasks of the paper's layer L0, and fronts above
// the type-2 threshold factor through the within-front master/slave path
// (Config.FrontSplit / Config.BlockRows).
func (an *Analysis) FactorizeParallel(cfg parmf.Config) (*parmf.Factors, error) {
	return an.FactorizeParallelCtx(context.Background(), cfg)
}

// FactorizeParallelCtx is FactorizeParallel under a context:
// cancellation drains the worker pool deterministically at the next
// task boundary, reporting how many tree tasks were left unfinished. A
// Background context costs nothing.
func (an *Analysis) FactorizeParallelCtx(ctx context.Context, cfg parmf.Config) (*parmf.Factors, error) {
	if cfg.Workers < 1 {
		cfg.Workers = an.Config.Procs
	}
	if cfg.SubtreeRoots == nil && an.Mapping != nil {
		cfg.SubtreeRoots = an.Mapping.SubRoot
	}
	if cfg.FrontSplit == 0 {
		cfg.FrontSplit = an.FrontSplitThreshold()
	}
	if cfg.BlockRows == 0 {
		cfg.BlockRows = an.Config.BlockRows
	}
	if cfg.RootGrid == 0 {
		cfg.RootGrid = an.Config.RootGrid
	}
	if cfg.Kernel == dense.KernelDefault {
		cfg.Kernel = an.Config.Kernel
	}
	if an.Config.FastKernels {
		cfg.FastKernels = true
	}
	if cfg.Tracer == nil {
		cfg.Tracer = an.Config.Tracer
	}
	if cfg.Faults == nil {
		cfg.Faults = an.Config.Faults
	}
	return parmf.FactorizeCtx(ctx, an.Permuted, an.Tree, cfg)
}

// FactorizeAndSolve factors sequentially and solves nrhs right-hand
// sides in one blocked pass: b is n x nrhs row-major in the *original*
// (pre-permutation) ordering, as is the returned x. The factors are
// returned too so the caller can keep solving against them (the
// "factor once, solve many" service shape); they need no Close for the
// in-memory store used here.
func (an *Analysis) FactorizeAndSolve(b []float64, nrhs int) ([]float64, *seqmf.Factors, error) {
	return an.FactorizeAndSolveCtx(context.Background(), b, nrhs)
}

// FactorizeAndSolveCtx is FactorizeAndSolve under a context. The
// factorization walk checks ctx between fronts; the sequential solve
// runs to completion once started (it is short next to the
// factorization), with one ctx check between the two phases.
func (an *Analysis) FactorizeAndSolveCtx(ctx context.Context, b []float64, nrhs int) ([]float64, *seqmf.Factors, error) {
	f, err := an.FactorizeCtx(ctx)
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("core: solve cancelled: %w", context.Cause(ctx))
	}
	x, err := f.SolveOriginalMulti(b, nrhs)
	if err != nil {
		return nil, nil, err
	}
	return x, f, nil
}

// FactorizeParallelAndSolve is FactorizeAndSolve through the
// shared-memory parallel executor: the factorization runs with
// cfg.Workers goroutines and the solve runs tree-parallel with the same
// worker count, bitwise identical to the sequential solve.
func (an *Analysis) FactorizeParallelAndSolve(cfg parmf.Config, b []float64, nrhs int) ([]float64, *parmf.Factors, error) {
	return an.FactorizeParallelAndSolveCtx(context.Background(), cfg, b, nrhs)
}

// FactorizeParallelAndSolveCtx is FactorizeParallelAndSolve under a
// context: both the factorization pool and the tree-parallel solve
// pools drain at the next front boundary on cancellation.
func (an *Analysis) FactorizeParallelAndSolveCtx(ctx context.Context, cfg parmf.Config, b []float64, nrhs int) ([]float64, *parmf.Factors, error) {
	f, err := an.FactorizeParallelCtx(ctx, cfg)
	if err != nil {
		return nil, nil, err
	}
	x, err := f.Solver(cfg.Workers).SolveOriginalMultiCtx(ctx, b, nrhs)
	if err != nil {
		return nil, nil, err
	}
	return x, f, nil
}

// oocOptions resolves Config.OOC, defaulting the resident-buffer budget
// relative to the problem: 1/16 of the total factor entries (clamped to
// [1024, 1<<16]), so the spill buffer is always small next to what an
// in-core execution would keep resident — without this, a fixed budget
// larger than a small problem's factors would never throttle the
// producer and the writer could lag a whole factorization behind.
func (an *Analysis) oocOptions() ooc.Options {
	opt := an.Config.OOC
	if opt.BufferEntries == 0 {
		b := assembly.TotalFactorEntries(an.Tree) / 16
		if b < 1024 {
			b = 1024
		}
		if b > 1<<16 {
			b = 1 << 16
		}
		opt.BufferEntries = b
	}
	if opt.Tracer == nil {
		opt.Tracer = an.Config.Tracer
	}
	if opt.Faults == nil {
		opt.Faults = an.Config.Faults
	}
	return opt
}

// FactorizeOOC runs the sequential numeric factorization out-of-core:
// every factor block is spilled to disk (through an ooc.FileStore built
// from Config.OOC) the moment it is produced, so only the CB stack and
// the active front stay resident. The returned factors solve by
// streaming blocks back from disk; Close them (or the store) to delete
// the spill file. The factors are bitwise identical to Factorize's.
func (an *Analysis) FactorizeOOC() (*seqmf.Factors, *ooc.FileStore, error) {
	return an.FactorizeOOCCtx(context.Background())
}

// FactorizeOOCCtx is FactorizeOOC under a context: on cancellation the
// walk stops at the next front and the store's spill writer stops
// promptly; the store is closed (spill file deleted) on every error
// path. A Background context costs nothing.
func (an *Analysis) FactorizeOOCCtx(ctx context.Context) (*seqmf.Factors, *ooc.FileStore, error) {
	st, err := ooc.NewFileStore(an.oocOptions())
	if err != nil {
		return nil, nil, err
	}
	opt := an.seqOptions()
	opt.Store = st
	f, err := seqmf.FactorizeCtx(ctx, an.Permuted, an.Tree, opt)
	if err != nil {
		st.Close()
		return nil, nil, err
	}
	return f, st, nil
}

// FactorizeParallelOOC is FactorizeParallel with the factor blocks
// spilled to disk as produced (see FactorizeOOC). cfg.Store is
// overridden with the new file store.
func (an *Analysis) FactorizeParallelOOC(cfg parmf.Config) (*parmf.Factors, *ooc.FileStore, error) {
	return an.FactorizeParallelOOCCtx(context.Background(), cfg)
}

// FactorizeParallelOOCCtx is FactorizeParallelOOC under a context (see
// FactorizeOOCCtx for the cancellation and cleanup semantics).
func (an *Analysis) FactorizeParallelOOCCtx(ctx context.Context, cfg parmf.Config) (*parmf.Factors, *ooc.FileStore, error) {
	st, err := ooc.NewFileStore(an.oocOptions())
	if err != nil {
		return nil, nil, err
	}
	cfg.Store = st
	f, err := an.FactorizeParallelCtx(ctx, cfg)
	if err != nil {
		st.Close()
		return nil, nil, err
	}
	return f, st, nil
}

// Simulate runs the parallel factorization simulator under the given
// scheduling strategy.
func (an *Analysis) Simulate(st parsim.Strategy) (*parsim.Result, error) {
	return parsim.Run(parsim.Config{
		Tree:     an.Tree,
		Map:      an.Mapping,
		Strategy: st,
		Params:   an.Config.Params,
	})
}

// SimulateTraced is Simulate with per-processor memory traces enabled.
func (an *Analysis) SimulateTraced(st parsim.Strategy) (*parsim.Result, error) {
	return parsim.Run(parsim.Config{
		Tree:     an.Tree,
		Map:      an.Mapping,
		Strategy: st,
		Params:   an.Config.Params,
		Trace:    true,
	})
}

// Stats summarizes the symbolic analysis.
type Stats struct {
	N             int
	NNZ           int
	Fronts        int
	MaxFront      int
	FactorEntries int64
	Flops         int64
	SeqPeak       int64
	Subtrees      int
	Type2Nodes    int
	SplitCount    int
}

// Stats returns summary statistics of the analysis.
func (an *Analysis) Stats() Stats {
	s := Stats{
		N:             an.Tree.N,
		NNZ:           an.Permuted.NNZ(),
		Fronts:        an.Tree.Len(),
		FactorEntries: assembly.TotalFactorEntries(an.Tree),
		Flops:         assembly.TotalFlops(an.Tree),
		SeqPeak:       an.SeqPeak,
		Subtrees:      len(an.Mapping.SubRoot),
		SplitCount:    an.SplitCount,
	}
	for i := range an.Tree.Nodes {
		if f := an.Tree.Nodes[i].NFront(); f > s.MaxFront {
			s.MaxFront = f
		}
		if an.Mapping.Types[i] == assembly.Type2 {
			s.Type2Nodes++
		}
	}
	return s
}

// LargestMaster returns the largest master part among non-root nodes
// (entries) — the quantity the paper's split threshold constrains (roots
// are the type-3 node and are never split).
func (an *Analysis) LargestMaster() int64 {
	var m int64
	for i := range an.Tree.Nodes {
		if an.Tree.Nodes[i].Parent < 0 {
			continue
		}
		if me := assembly.MasterEntries(&an.Tree.Nodes[i], an.Tree.Kind); me > m {
			m = me
		}
	}
	return m
}
