package core_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/memory"
	"repro/internal/ooc"
	"repro/internal/order"
	"repro/internal/parmf"
	"repro/internal/sparse"
	"repro/internal/workload"
)

// chaosResult is one armed run's outcome: the solution when it
// completed, the first error otherwise, and the executor stats either
// way (partial on failure).
type chaosResult struct {
	x     []float64
	stats memory.ExecStats
	err   error
}

// runChaos executes one parallel out-of-core factorize+solve with the
// given injector armed on everything (executor task points, the store's
// spill I/O points, the solve point) and the spill buffer squeezed so
// blocks really travel through the fault paths.
func runChaos(t *testing.T, a *sparse.CSC, in *faults.Injector, ctx context.Context) chaosResult {
	t.Helper()
	cfg := core.DefaultConfig(order.ND, 4)
	cfg.OOC = ooc.Options{
		Dir:           t.TempDir(),
		BufferEntries: 1 << 11,
		RetryMax:      2,
		RetryBase:     50 * time.Microsecond,
	}
	cfg.Faults = in
	an, err := core.Analyze(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pf, st, err := an.FactorizeParallelOOCCtx(ctx, parmf.DefaultConfig(4))
	if err != nil {
		return chaosResult{err: err}
	}
	defer st.Close()
	b := make([]float64, a.N)
	rng := rand.New(rand.NewSource(3))
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, err := pf.Solver(0).SolveOriginalMultiCtx(ctx, b, 1)
	if err != nil {
		return chaosResult{stats: pf.Stats.ExecStats, err: err}
	}
	return chaosResult{x: x, stats: pf.Stats.ExecStats}
}

// assertBitwise asserts a completed chaos run reproduced the clean run's
// solution bit for bit — fault handling must be numerically invisible.
func assertBitwise(t *testing.T, ref, got []float64) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("solution length %d, want %d", len(got), len(ref))
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("solution diverged at %d: %g vs %g (fault handling must not change numerics)", i, got[i], ref[i])
		}
	}
}

// assertDescriptive asserts a failed chaos run surfaced a real error: a
// wrapped faults.ErrInjected (or context cause) with enough text to
// debug from, never a bare or empty failure.
func assertDescriptive(t *testing.T, err error, want string) {
	t.Helper()
	if err == nil {
		t.Fatal("run succeeded, expected a descriptive error")
	}
	if msg := err.Error(); len(msg) < 10 || !strings.Contains(msg, want) {
		t.Fatalf("error %q is not descriptive (want substring %q)", msg, want)
	}
}

// TestChaosSuite sweeps deterministic fault schedules over every
// workload problem through the parallel out-of-core path and asserts the
// robustness contract: every run either completes with a bitwise
// identical solution or fails with a descriptive error — and never
// hangs, panics the process, or leaks the result silently.
func TestChaosSuite(t *testing.T) {
	for _, p := range workload.SmallSuite() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			a := p.Matrix()
			if !a.HasValues() {
				if err := sparse.FillDominant(a, rand.New(rand.NewSource(7))); err != nil {
					t.Fatal(err)
				}
			}
			clean := runChaos(t, a, nil, context.Background())
			if clean.err != nil {
				t.Fatalf("clean run failed: %v", clean.err)
			}
			if clean.stats.Retries != 0 || clean.stats.DegradedBlocks != 0 || clean.stats.CancelledTasks != 0 {
				t.Fatalf("clean run has nonzero fault counters: %+v", clean.stats)
			}

			t.Run("transient-write-retried", func(t *testing.T) {
				r := runChaos(t, a, faults.New(
					faults.Rule{Point: faults.SpillWrite, Kind: faults.KindError, Nth: 2, Count: 3},
				), context.Background())
				if r.err != nil {
					t.Fatalf("transient write faults must be absorbed: %v", r.err)
				}
				assertBitwise(t, clean.x, r.x)
				if r.stats.Retries == 0 {
					t.Error("retries not reported in ExecStats")
				}
			})

			t.Run("short-write-repaired", func(t *testing.T) {
				r := runChaos(t, a, faults.New(
					faults.Rule{Point: faults.SpillWrite, Kind: faults.KindShortWrite, Nth: 1, Count: 2},
				), context.Background())
				if r.err != nil {
					t.Fatalf("short writes must be repaired: %v", r.err)
				}
				assertBitwise(t, clean.x, r.x)
			})

			t.Run("persistent-write-degrades", func(t *testing.T) {
				r := runChaos(t, a, faults.New(
					faults.Rule{Point: faults.SpillWrite, Kind: faults.KindError, Count: -1},
				), context.Background())
				if r.err != nil {
					t.Fatalf("persistent write failure must degrade, not fail: %v", r.err)
				}
				assertBitwise(t, clean.x, r.x)
				if r.stats.DegradedBlocks == 0 {
					t.Error("degraded blocks not reported in ExecStats")
				}
			})

			t.Run("write-delay-harmless", func(t *testing.T) {
				r := runChaos(t, a, faults.New(
					faults.Rule{Point: faults.SpillWrite, Kind: faults.KindDelay, Nth: 3, Count: 4, Delay: time.Millisecond},
				), context.Background())
				if r.err != nil {
					t.Fatalf("delays must not fail the run: %v", r.err)
				}
				assertBitwise(t, clean.x, r.x)
			})

			t.Run("task-error-descriptive", func(t *testing.T) {
				r := runChaos(t, a, faults.New(
					faults.Rule{Point: faults.Task, Kind: faults.KindError, Nth: 5},
				), context.Background())
				assertDescriptive(t, r.err, "node")
				if !errors.Is(r.err, faults.ErrInjected) {
					t.Errorf("error %v does not wrap faults.ErrInjected", r.err)
				}
			})

			t.Run("task-panic-contained", func(t *testing.T) {
				r := runChaos(t, a, faults.New(
					faults.Rule{Point: faults.Task, Kind: faults.KindPanic, Nth: 3},
				), context.Background())
				assertDescriptive(t, r.err, "panic")
			})

			t.Run("read-error-fails-solve", func(t *testing.T) {
				r := runChaos(t, a, faults.New(
					faults.Rule{Point: faults.SpillRead, Kind: faults.KindError, Count: -1},
				), context.Background())
				assertDescriptive(t, r.err, "read")
			})

			t.Run("decode-error-not-retried", func(t *testing.T) {
				r := runChaos(t, a, faults.New(
					faults.Rule{Point: faults.Decode, Kind: faults.KindError, Nth: 2},
				), context.Background())
				assertDescriptive(t, r.err, "decode")
				if r.stats.Retries != 0 {
					t.Errorf("decode errors must not be retried (corruption, not transience); got %d retries", r.stats.Retries)
				}
			})

			t.Run("solve-error-descriptive", func(t *testing.T) {
				r := runChaos(t, a, faults.New(
					faults.Rule{Point: faults.Solve, Kind: faults.KindError, Nth: 4},
				), context.Background())
				assertDescriptive(t, r.err, "solve")
			})

			t.Run("cancel-drains", func(t *testing.T) {
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				go func() {
					time.Sleep(2 * time.Millisecond)
					cancel()
				}()
				r := runChaos(t, a, faults.New(
					faults.Rule{Point: faults.Task, Kind: faults.KindDelay, Count: -1, Delay: time.Millisecond},
				), ctx)
				if r.err == nil {
					t.Skip("run won the race against cancellation")
				}
				if !errors.Is(r.err, context.Canceled) {
					t.Fatalf("cancelled run error %v does not wrap context.Canceled", r.err)
				}
			})
		})
	}
}

// TestChaosRandomSchedules fires seeded random multi-point schedules at
// every problem: whatever combination of faults lands, the property is
// the same — a bitwise identical completion or a descriptive error.
func TestChaosRandomSchedules(t *testing.T) {
	points := faults.Points()
	kinds := []faults.Kind{faults.KindError, faults.KindDelay, faults.KindShortWrite, faults.KindPanic}
	for pi, p := range workload.SmallSuite() {
		p, pi := p, pi
		t.Run(p.Name, func(t *testing.T) {
			a := p.Matrix()
			if !a.HasValues() {
				if err := sparse.FillDominant(a, rand.New(rand.NewSource(7))); err != nil {
					t.Fatal(err)
				}
			}
			clean := runChaos(t, a, nil, context.Background())
			if clean.err != nil {
				t.Fatalf("clean run failed: %v", clean.err)
			}
			rng := rand.New(rand.NewSource(int64(1000 + pi)))
			for round := 0; round < 3; round++ {
				rules := make([]faults.Rule, 1+rng.Intn(3))
				for i := range rules {
					rules[i] = faults.Rule{
						Point: points[rng.Intn(len(points))],
						Kind:  kinds[rng.Intn(len(kinds))],
						Nth:   int64(1 + rng.Intn(8)),
						Count: int64(rng.Intn(4)), // 0 means once
						Delay: time.Duration(rng.Intn(500)) * time.Microsecond,
					}
				}
				r := runChaos(t, a, faults.New(rules...), context.Background())
				if r.err == nil {
					assertBitwise(t, clean.x, r.x)
					continue
				}
				if msg := r.err.Error(); len(msg) < 10 {
					t.Fatalf("round %d (rules %+v): error %q is not descriptive", round, rules, msg)
				}
			}
		})
	}
}

// TestUnarmedRunUnchanged extends the TestUntracedRunUnchanged pattern
// to the fault layer: a nil injector plus a Background context must
// leave the executor stats bitwise identical to a build that never heard
// of fault tolerance — the robustness plane costs nothing when unarmed.
func TestUnarmedRunUnchanged(t *testing.T) {
	a := sparse.Grid3D(8, 8, 8)
	an, err := core.Analyze(a, core.DefaultConfig(order.AMF, 2))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := an.FactorizeParallel(parmf.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	ctxRun, err := an.FactorizeParallelCtx(context.Background(), parmf.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	ps, cs := plain.Stats, ctxRun.Stats
	ps.RootFrontNs, cs.RootFrontNs = 0, 0 // wall-clock, varies run to run
	if !reflect.DeepEqual(ps, cs) {
		t.Errorf("Background-context run changed stats:\n%+v\nvs\n%+v", plain.Stats, ctxRun.Stats)
	}
	// The factors themselves must match bit for bit too.
	for ni := 0; ni < an.Tree.Len(); ni++ {
		na, nb := plain.Front().Node(ni), ctxRun.Front().Node(ni)
		for q, v := range na.L.A {
			if v != nb.L.A[q] {
				t.Fatalf("node %d: L entry %d differs bitwise", ni, q)
			}
		}
	}

	// OOC path: nil injector stats == armed-but-never-firing injector
	// stats (the schedule targets hit numbers a tiny run never reaches).
	ref := runChaos(t, a, nil, context.Background())
	if ref.err != nil {
		t.Fatal(ref.err)
	}
	idle := runChaos(t, a, faults.New(
		faults.Rule{Point: faults.SpillWrite, Kind: faults.KindError, Nth: 1 << 40},
	), context.Background())
	if idle.err != nil {
		t.Fatal(idle.err)
	}
	assertBitwise(t, ref.x, idle.x)
	if ref.stats != idle.stats {
		t.Errorf("idle injector changed stats:\n%+v\nvs\n%+v", ref.stats, idle.stats)
	}
}
