package order

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/sparse"
)

func allMethods() []Method { return []Method{AMD, AMF, ND, PORD, RCM, Natural} }

func TestAllMethodsProducePermutations(t *testing.T) {
	mats := map[string]*sparse.CSC{
		"grid2d": sparse.Grid2D(9, 9),
		"grid3d": sparse.Grid3D(5, 5, 5),
		"band":   sparse.Band(100, 4),
	}
	rng := rand.New(rand.NewSource(11))
	mats["circuit"] = sparse.CircuitUnsym(150, 200, 2, rng)
	for name, a := range mats {
		for _, m := range allMethods() {
			perm := Compute(a, m)
			if !IsPermutation(perm, a.N) {
				t.Errorf("%s/%v: not a permutation (len %d of %d)", name, m, len(perm), a.N)
			}
		}
	}
}

func TestInverse(t *testing.T) {
	perm := []int{2, 0, 3, 1}
	inv := Inverse(perm)
	for k, o := range perm {
		if inv[o] != k {
			t.Fatalf("inv[%d] = %d, want %d", o, inv[o], k)
		}
	}
}

func TestIsPermutationRejects(t *testing.T) {
	if IsPermutation([]int{0, 0, 1}, 3) {
		t.Error("accepted duplicate")
	}
	if IsPermutation([]int{0, 1}, 3) {
		t.Error("accepted short slice")
	}
	if IsPermutation([]int{0, 1, 3}, 3) {
		t.Error("accepted out-of-range")
	}
}

// fillCount counts the fill produced by eliminating in the given order,
// via naive symbolic elimination (quadratic; small graphs only).
func fillCount(g *graph.Graph, perm []int) int {
	n := g.N
	adj := make([]map[int]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = map[int]bool{}
		for _, w := range g.Neighbors(v) {
			adj[v][w] = true
		}
	}
	pos := make([]int, n)
	for k, v := range perm {
		pos[v] = k
	}
	fill := 0
	for _, p := range perm {
		var nb []int
		for w := range adj[p] {
			if pos[w] > pos[p] {
				nb = append(nb, w)
			}
		}
		for i := 0; i < len(nb); i++ {
			for j := i + 1; j < len(nb); j++ {
				u, v := nb[i], nb[j]
				if !adj[u][v] {
					adj[u][v] = true
					adj[v][u] = true
					fill++
				}
			}
		}
	}
	return fill
}

func TestAMDReducesFillVsNatural(t *testing.T) {
	a := sparse.Grid2D(10, 10)
	g := graph.FromMatrix(a)
	natural := Compute(a, Natural)
	amd := Compute(a, AMD)
	fn := fillCount(g, natural)
	fa := fillCount(g, amd)
	if fa >= fn {
		t.Errorf("AMD fill %d >= natural fill %d", fa, fn)
	}
}

func TestNDReducesFillVsNatural(t *testing.T) {
	a := sparse.Grid2D(12, 12)
	g := graph.FromMatrix(a)
	fn := fillCount(g, Compute(a, Natural))
	fnd := fillCount(g, Compute(a, ND))
	if fnd >= fn {
		t.Errorf("ND fill %d >= natural fill %d", fnd, fn)
	}
}

func TestAMDOnCliqueIsTrivial(t *testing.T) {
	// On a clique any order has zero fill; AMD must terminate and emit all.
	n := 20
	b := sparse.NewBuilder(n, sparse.Symmetric)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			b.Add(i, j, 1)
		}
	}
	perm := Compute(b.Build(), AMD)
	if !IsPermutation(perm, n) {
		t.Fatal("not a permutation")
	}
}

func TestAMDPathGraph(t *testing.T) {
	// On a path, minimum degree eliminates endpoints first (degree 1), never
	// creating fill.
	n := 30
	b := sparse.NewBuilder(n, sparse.Symmetric)
	for i := 0; i+1 < n; i++ {
		b.Add(i+1, i, 1)
	}
	for i := 0; i < n; i++ {
		b.Add(i, i, 1)
	}
	a := b.Build()
	g := graph.FromMatrix(a)
	perm := Compute(a, AMD)
	if f := fillCount(g, perm); f != 0 {
		t.Errorf("AMD on path produced fill %d, want 0", f)
	}
}

func TestMinimumDegreePropertyPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(60)
		a := sparse.RandomSPDPattern(n, 1+rng.Intn(4), rng)
		g := graph.FromMatrix(a)
		for _, sc := range []ScoreFunc{ScoreAMD, ScoreAMF} {
			if !IsPermutation(MinimumDegree(g, sc), n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNDPropertyPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(100)
		a := sparse.RandomSPDPattern(n, 2, rng)
		g := graph.FromMatrix(a)
		return IsPermutation(NestedDissection(g, DefaultNDOptions()), n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRCMReducesBandwidth(t *testing.T) {
	// A randomly permuted band matrix should regain small bandwidth.
	rng := rand.New(rand.NewSource(42))
	a := sparse.Band(80, 2)
	shuffled := a.Permute(rng.Perm(a.N))
	perm := Compute(shuffled, RCM)
	re := shuffled.Permute(perm)
	bw := 0
	for j := 0; j < re.N; j++ {
		for _, i := range re.Col(j) {
			if d := i - j; d > bw {
				bw = d
			}
		}
	}
	if bw > 10 {
		t.Errorf("RCM bandwidth %d, want small", bw)
	}
}

func TestMethodStrings(t *testing.T) {
	want := map[Method]string{AMD: "AMD", AMF: "AMF", ND: "METIS", PORD: "PORD", RCM: "RCM"}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%v.String() = %q, want %q", int(m), m.String(), s)
		}
	}
}

func TestDisconnectedGraphOrdering(t *testing.T) {
	b := sparse.NewBuilder(10, sparse.Symmetric)
	for i := 0; i < 4; i++ {
		b.Add(i, i, 1)
		if i > 0 {
			b.Add(i, i-1, 1)
		}
	}
	for i := 5; i < 10; i++ {
		b.Add(i, i, 1)
		if i > 5 {
			b.Add(i, i-1, 1)
		}
	}
	b.Add(4, 4, 1) // isolated vertex
	a := b.Build()
	for _, m := range allMethods() {
		if !IsPermutation(Compute(a, m), 10) {
			t.Errorf("%v fails on disconnected graph", m)
		}
	}
}

// TestAMFFillComparableToAMD is the regression test for the AMF
// tie-breaking fix: with id-order tie-breaking AMF degenerated toward the
// natural order on circuit-like matrices (20x the fill of AMD); with
// degree tie-breaking its fill must stay within a small factor of AMD's.
func TestAMFFillComparableToAMD(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	a := sparse.HarmonicBalance(8, 8, 4, 6, 1, 4, rng)
	g := graph.FromMatrix(a)
	fAMD := fillCount(g, Compute(a, AMD))
	fAMF := fillCount(g, Compute(a, AMF))
	if fAMF > 2*fAMD {
		t.Errorf("AMF fill %d > 2x AMD fill %d — tie-breaking regressed", fAMF, fAMD)
	}
	// And AMF must still beat the natural order decisively.
	fNat := fillCount(g, Compute(a, Natural))
	if fAMF*2 > fNat {
		t.Errorf("AMF fill %d not far below natural %d", fAMF, fNat)
	}
}

// TestParse covers the Method parser used by the CLIs.
func TestParse(t *testing.T) {
	for _, m := range []Method{AMD, AMF, ND, PORD, RCM, Natural} {
		got, err := Parse(m.String())
		if err != nil || got != m {
			t.Errorf("Parse(%q) = %v, %v", m.String(), got, err)
		}
	}
	if got, err := Parse("ND"); err != nil || got != ND {
		t.Errorf("Parse(ND) = %v, %v", got, err)
	}
	if _, err := Parse("BOGUS"); err == nil {
		t.Error("Parse accepted garbage")
	}
}
