// Package order implements the fill-reducing orderings used in the paper's
// evaluation: AMD (approximate minimum degree), AMF (approximate minimum
// fill), ND (nested dissection, standing in for METIS) and PORD (a hybrid
// bottom-up/top-down ordering, standing in for Schulze's PORD), plus RCM.
//
// The paper runs every experiment under all four orderings because the
// assembly-tree topology — deep and unbalanced for AMD/AMF, wide and
// balanced for METIS, intermediate for PORD — determines the stack-memory
// behaviour the scheduling strategies act on.
package order

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sparse"
)

// Method selects an ordering algorithm.
type Method int

const (
	// AMD is the approximate minimum (external) degree ordering.
	AMD Method = iota
	// AMF is the approximate minimum fill ordering.
	AMF
	// ND is nested dissection (METIS stand-in).
	ND
	// PORD is a hybrid top-down/bottom-up ordering (PORD stand-in).
	PORD
	// RCM is reverse Cuthill-McKee (profile reduction; not in the paper's
	// table but useful as a contrast ordering).
	RCM
	// Natural keeps the input order.
	Natural
)

// Methods lists the four orderings of the paper's tables, in the column
// order used by Tables 2-6 (METIS, PORD, AMD, AMF).
var Methods = []Method{ND, PORD, AMD, AMF}

func (m Method) String() string {
	switch m {
	case AMD:
		return "AMD"
	case AMF:
		return "AMF"
	case ND:
		return "METIS"
	case PORD:
		return "PORD"
	case RCM:
		return "RCM"
	case Natural:
		return "NATURAL"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Parse returns the Method named by s (the String() names, e.g. "METIS",
// "PORD", "AMD", "AMF", "RCM", "NATURAL"; "ND" is accepted for METIS).
func Parse(s string) (Method, error) {
	for _, m := range []Method{AMD, AMF, ND, PORD, RCM, Natural} {
		if s == m.String() {
			return m, nil
		}
	}
	if s == "ND" {
		return ND, nil
	}
	return 0, fmt.Errorf("order: unknown method %q", s)
}

// Compute returns a fill-reducing permutation of the symmetrized pattern of
// a. The returned slice maps new position -> original index (perm[k] is the
// k-th pivot).
func Compute(a *sparse.CSC, m Method) []int {
	g := graph.FromMatrix(a)
	switch m {
	case AMD:
		return MinimumDegree(g, ScoreAMD)
	case AMF:
		return MinimumDegree(g, ScoreAMF)
	case ND:
		return NestedDissection(g, DefaultNDOptions())
	case PORD:
		return HybridPORD(g)
	case RCM:
		return ReverseCuthillMcKee(g)
	case Natural:
		p := make([]int, a.N)
		for i := range p {
			p[i] = i
		}
		return p
	default:
		panic(fmt.Sprintf("order: unknown method %v", m))
	}
}

// IsPermutation reports whether perm is a permutation of 0..n-1.
func IsPermutation(perm []int, n int) bool {
	if len(perm) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range perm {
		if v < 0 || v >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Inverse returns the inverse permutation: inv[old] = new.
func Inverse(perm []int) []int {
	inv := make([]int, len(perm))
	for k, o := range perm {
		inv[o] = k
	}
	return inv
}
