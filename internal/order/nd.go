package order

import (
	"repro/internal/graph"
)

// NDOptions configures nested dissection.
type NDOptions struct {
	// LeafSize is the subgraph size below which recursion stops and the
	// leaf is ordered with the leaf ordering.
	LeafSize int
	// LeafScore orders leaves (AMD by default).
	LeafScore ScoreFunc
	// MaxDepth bounds the recursion (safety against pathological splits).
	MaxDepth int
}

// DefaultNDOptions returns the METIS-like defaults: small leaves ordered by
// minimum degree.
func DefaultNDOptions() NDOptions {
	return NDOptions{LeafSize: 64, LeafScore: ScoreAMD, MaxDepth: 40}
}

// NestedDissection computes a nested-dissection ordering of g: the graph is
// recursively bisected, separator vertices are numbered last. This is the
// METIS stand-in: it produces the wide, balanced assembly trees with large
// top separator fronts characteristic of ND orderings.
func NestedDissection(g *graph.Graph, opt NDOptions) []int {
	if opt.LeafSize < 2 {
		opt.LeafSize = 2
	}
	if opt.LeafScore == nil {
		opt.LeafScore = ScoreAMD
	}
	if opt.MaxDepth <= 0 {
		opt.MaxDepth = 40
	}
	verts := make([]int, g.N)
	for i := range verts {
		verts[i] = i
	}
	perm := make([]int, 0, g.N)
	ndRecurse(g, verts, opt, opt.MaxDepth, &perm)
	return perm
}

func ndRecurse(g *graph.Graph, verts []int, opt NDOptions, depth int, perm *[]int) {
	if len(verts) == 0 {
		return
	}
	if len(verts) <= opt.LeafSize || depth == 0 {
		*perm = append(*perm, orderLeaf(g, verts, opt.LeafScore)...)
		return
	}
	b := graph.Bisect(g, verts)
	if len(b.PartA) == 0 || len(b.PartB) == 0 {
		// Bisection failed to split (e.g. clique): fall back to leaf order.
		*perm = append(*perm, orderLeaf(g, verts, opt.LeafScore)...)
		return
	}
	ndRecurse(g, b.PartA, opt, depth-1, perm)
	ndRecurse(g, b.PartB, opt, depth-1, perm)
	// Separator vertices are eliminated last; order them among themselves
	// by minimum degree on their induced subgraph.
	if len(b.Sep) > 0 {
		*perm = append(*perm, orderLeaf(g, b.Sep, opt.LeafScore)...)
	}
}

// orderLeaf orders the induced subgraph on verts with minimum degree and
// maps back to global indices.
func orderLeaf(g *graph.Graph, verts []int, score ScoreFunc) []int {
	if len(verts) <= 2 {
		return append([]int(nil), verts...)
	}
	sg, back := g.Subgraph(verts)
	lp := MinimumDegree(sg, score)
	out := make([]int, len(lp))
	for i, v := range lp {
		out[i] = back[v]
	}
	return out
}

// HybridPORD is the PORD stand-in: a tightly-coupled bottom-up/top-down
// ordering. The top of the graph is split by dissection (fewer levels and a
// larger leaf threshold than ND), and leaves are ordered with a fill-based
// bottom-up method (AMF score), mirroring PORD's minimum-fill flavored
// bottom-up phase. The resulting assembly trees sit between the ND and
// MD extremes, as PORD's do in the paper.
func HybridPORD(g *graph.Graph) []int {
	leaf := g.N / 8
	if leaf < 128 {
		leaf = 128
	}
	return NestedDissection(g, NDOptions{
		LeafSize:  leaf,
		LeafScore: ScoreAMF,
		MaxDepth:  6,
	})
}

// ReverseCuthillMcKee computes the RCM profile-reducing ordering.
func ReverseCuthillMcKee(g *graph.Graph) []int {
	n := g.N
	visited := make([]bool, n)
	perm := make([]int, 0, n)
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		root := g.PseudoPeripheral(start, nil, 0)
		if visited[root] {
			root = start
		}
		// BFS ordering neighbors by increasing degree.
		queue := []int{root}
		visited[root] = true
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			perm = append(perm, v)
			nb := append([]int(nil), g.Neighbors(v)...)
			// Sort by degree then index for determinism.
			for i := 1; i < len(nb); i++ {
				x := nb[i]
				j := i - 1
				for j >= 0 && (g.Degree(nb[j]) > g.Degree(x) ||
					(g.Degree(nb[j]) == g.Degree(x) && nb[j] > x)) {
					nb[j+1] = nb[j]
					j--
				}
				nb[j+1] = x
			}
			for _, w := range nb {
				if !visited[w] {
					visited[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	// Reverse.
	for i, j := 0, len(perm)-1; i < j; i, j = i+1, j-1 {
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}
