package order

import (
	"container/heap"

	"repro/internal/graph"
)

// Quotient-graph minimum-degree engine shared by AMD and AMF.
//
// The engine maintains the standard quotient graph: uneliminated variables
// carry a list of adjacent variables and a list of adjacent *elements*
// (cliques created by past eliminations). Eliminating pivot p forms the
// element L_p = (A_p ∪ ⋃_{e∈E_p} L_e) \ {eliminated}; elements reachable
// from p are absorbed. Indistinguishable variables (identical quotient
// adjacency) are merged into supervariables, which is what makes minimum
// degree practical on matrices with large cliques.

// ScoreFunc computes the selection score of a variable from its external
// degree d (sum of supervariable weights of its quotient neighborhood) and
// the sizes of its adjacent elements' boundaries. Lower scores are
// eliminated first.
type ScoreFunc func(d int, nv int, elemBoundaries []int) int64

// ScoreAMD is the approximate-minimum-degree score: the external degree.
func ScoreAMD(d, nv int, elemBoundaries []int) int64 {
	return int64(d)
}

// ScoreAMF is the approximate-minimum-fill score (Rothberg/Eisenstat
// style): d(d-1)/2 minus the clique area already covered by adjacent
// elements, clamped at zero — eliminating inside an existing clique is
// free. The approximate fill is combined lexicographically with the
// external degree: huge swaths of variables reach fill 0 mid-elimination
// (their neighborhood is covered by existing cliques), and breaking
// those ties by degree instead of by vertex id is what keeps AMF's fill
// near AMD's rather than degenerating toward the natural order.
func ScoreAMF(d, nv int, elemBoundaries []int) int64 {
	fill := int64(d) * int64(d-1) / 2
	for _, b := range elemBoundaries {
		eb := int64(b)
		fill -= eb * (eb - 1) / 2
	}
	if fill < 0 {
		fill = 0
	}
	return fill*(1<<20) + int64(d)
}

type mdNode struct {
	score int64
	v     int
	stamp int64
}

type mdHeap []mdNode

func (h mdHeap) Len() int { return len(h) }
func (h mdHeap) Less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score < h[j].score
	}
	return h[i].v < h[j].v // deterministic tie-breaking
}
func (h mdHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mdHeap) Push(x any)   { *h = append(*h, x.(mdNode)) }
func (h *mdHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

type mdState struct {
	n       int
	adjVar  [][]int // variable -> adjacent variables (may contain stale ids)
	adjElem [][]int // variable -> adjacent elements
	elems   [][]int // element id -> boundary variables (stale-tolerant)
	alive   []bool  // variable not yet eliminated/absorbed
	elemOK  []bool  // element not yet absorbed
	nv      []int   // supervariable weight
	parent  []int   // absorption forest: absorbed var -> representative
	mark    []int64
	stamp   []int64 // heap lazy-deletion stamps
	curMark int64
	score   ScoreFunc
	h       mdHeap
}

// MinimumDegree runs the quotient-graph minimum-degree algorithm on g with
// the given scoring function and returns the elimination order
// (new -> old). Supervariables expand to consecutive positions.
func MinimumDegree(g *graph.Graph, score ScoreFunc) []int {
	n := g.N
	s := &mdState{
		n:       n,
		adjVar:  make([][]int, n),
		adjElem: make([][]int, n),
		alive:   make([]bool, n),
		nv:      make([]int, n),
		parent:  make([]int, n),
		mark:    make([]int64, n),
		stamp:   make([]int64, n),
		score:   score,
	}
	for v := 0; v < n; v++ {
		s.adjVar[v] = append([]int(nil), g.Neighbors(v)...)
		s.alive[v] = true
		s.nv[v] = 1
		s.parent[v] = -1
	}
	heap.Init(&s.h)
	for v := 0; v < n; v++ {
		s.pushScore(v)
	}

	perm := make([]int, 0, n)
	members := make([][]int, n) // supervariable members (absorbed vars), rep first
	for v := 0; v < n; v++ {
		members[v] = []int{v}
	}

	for len(perm) < n {
		p := s.popMin()
		if p < 0 {
			// All heap entries stale; collect any remaining alive variables
			// (isolated after absorption bookkeeping).
			for v := 0; v < n; v++ {
				if s.alive[v] {
					perm = append(perm, members[v]...)
					s.alive[v] = false
				}
			}
			break
		}
		// Eliminate supervariable p: emit its members.
		perm = append(perm, members[p]...)
		s.alive[p] = false

		// Build L_p.
		lp := s.buildElement(p)
		if len(lp) == 0 {
			continue
		}
		eid := len(s.elems)
		s.elems = append(s.elems, lp)
		s.elemOK = append(s.elemOK, true)

		// Clean each i in L_p: drop edges covered by the new element, drop
		// absorbed elements, attach e.
		s.curMark++
		m := s.curMark
		for _, i := range lp {
			s.mark[i] = m
		}
		for _, i := range lp {
			av := s.adjVar[i][:0]
			for _, w := range s.adjVar[i] {
				w = s.find(w)
				if w == i || !s.alive[w] || s.mark[w] == m {
					continue // covered by element e or gone
				}
				av = append(av, w)
			}
			s.adjVar[i] = dedupInts(av)
			ae := s.adjElem[i][:0]
			for _, e := range s.adjElem[i] {
				if s.elemOK[e] {
					ae = append(ae, e)
				}
			}
			s.adjElem[i] = append(ae, eid)
		}

		// Supervariable detection among L_p: hash quotient adjacency.
		s.mergeIndistinguishable(lp, members)

		// Rescore surviving members of L_p.
		for _, i := range lp {
			if s.alive[i] {
				s.pushScore(i)
			}
		}
	}
	return perm
}

func dedupInts(a []int) []int {
	if len(a) < 2 {
		return a
	}
	insertionSortInts(a)
	out := a[:1]
	for _, v := range a[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

func insertionSortInts(a []int) {
	for i := 1; i < len(a); i++ {
		x := a[i]
		j := i - 1
		for j >= 0 && a[j] > x {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = x
	}
}

func (s *mdState) find(v int) int {
	for s.parent[v] >= 0 {
		if s.parent[s.parent[v]] >= 0 {
			s.parent[v] = s.parent[s.parent[v]] // path halving
		}
		v = s.parent[v]
	}
	return v
}

// buildElement computes L_p = union of p's variable neighbors and the
// boundaries of p's elements, excluding eliminated variables and p itself.
// Elements of p are absorbed.
func (s *mdState) buildElement(p int) []int {
	s.curMark++
	m := s.curMark
	s.mark[p] = m
	var lp []int
	add := func(w int) {
		w = s.find(w)
		if s.alive[w] && s.mark[w] != m {
			s.mark[w] = m
			lp = append(lp, w)
		}
	}
	for _, w := range s.adjVar[p] {
		add(w)
	}
	for _, e := range s.adjElem[p] {
		if !s.elemOK[e] {
			continue
		}
		for _, w := range s.elems[e] {
			add(w)
		}
		s.elemOK[e] = false // absorbed into the new element
	}
	insertionSortInts(lp)
	return lp
}

// externalDegree computes the weighted external degree of i and collects
// the boundary sizes (excluding i) of its adjacent elements for AMF.
func (s *mdState) externalDegree(i int) (d int, elemBounds []int) {
	s.curMark++
	m := s.curMark
	s.mark[i] = m
	for _, w := range s.adjVar[i] {
		w = s.find(w)
		if s.alive[w] && s.mark[w] != m {
			s.mark[w] = m
			d += s.nv[w]
		}
	}
	for _, e := range s.adjElem[i] {
		if !s.elemOK[e] {
			continue
		}
		b := 0
		for _, w := range s.elems[e] {
			w = s.find(w)
			if !s.alive[w] || w == i {
				continue
			}
			b += s.nv[w]
			if s.mark[w] != m {
				s.mark[w] = m
				d += s.nv[w]
			}
		}
		elemBounds = append(elemBounds, b)
	}
	return d, elemBounds
}

func (s *mdState) pushScore(v int) {
	d, eb := s.externalDegree(v)
	s.stamp[v]++
	heap.Push(&s.h, mdNode{score: s.score(d, s.nv[v], eb), v: v, stamp: s.stamp[v]})
}

func (s *mdState) popMin() int {
	for s.h.Len() > 0 {
		nd := heap.Pop(&s.h).(mdNode)
		if s.alive[nd.v] && s.stamp[nd.v] == nd.stamp {
			return nd.v
		}
	}
	return -1
}

// mergeIndistinguishable merges variables of lp with identical quotient
// adjacency into supervariables.
func (s *mdState) mergeIndistinguishable(lp []int, members [][]int) {
	type bucket struct{ vars []int }
	buckets := make(map[uint64]*bucket)
	for _, i := range lp {
		if !s.alive[i] {
			continue
		}
		h := uint64(17)
		for _, w := range s.adjVar[i] {
			h = h*31 + uint64(s.find(w))*2654435761
		}
		for _, e := range s.adjElem[i] {
			if s.elemOK[e] {
				h = h*37 + uint64(e)*40503
			}
		}
		b := buckets[h]
		if b == nil {
			b = &bucket{}
			buckets[h] = b
		}
		b.vars = append(b.vars, i)
	}
	for _, b := range buckets {
		if len(b.vars) < 2 {
			continue
		}
		for x := 0; x < len(b.vars); x++ {
			i := b.vars[x]
			if !s.alive[i] {
				continue
			}
			for y := x + 1; y < len(b.vars); y++ {
				j := b.vars[y]
				if !s.alive[j] || !s.sameAdjacency(i, j) {
					continue
				}
				// Absorb j into i.
				s.alive[j] = false
				s.parent[j] = i
				s.nv[i] += s.nv[j]
				members[i] = append(members[i], members[j]...)
				members[j] = nil
				s.adjVar[j] = nil
				s.adjElem[j] = nil
			}
		}
	}
}

func (s *mdState) sameAdjacency(i, j int) bool {
	// Compare live element lists.
	ei := liveElems(s, i)
	ej := liveElems(s, j)
	if len(ei) != len(ej) {
		return false
	}
	for k := range ei {
		if ei[k] != ej[k] {
			return false
		}
	}
	// Compare variable lists modulo i/j themselves.
	vi := liveVars(s, i, j)
	vj := liveVars(s, j, i)
	if len(vi) != len(vj) {
		return false
	}
	for k := range vi {
		if vi[k] != vj[k] {
			return false
		}
	}
	return true
}

func liveElems(s *mdState, i int) []int {
	var out []int
	for _, e := range s.adjElem[i] {
		if s.elemOK[e] {
			out = append(out, e)
		}
	}
	insertionSortInts(out)
	return out
}

func liveVars(s *mdState, i, excl int) []int {
	var out []int
	for _, w := range s.adjVar[i] {
		w = s.find(w)
		if s.alive[w] && w != i && w != excl {
			out = append(out, w)
		}
	}
	return dedupInts(out)
}
