package trace

import "sync/atomic"

// progress is the lock-free completed-work ledger a live scrape reads:
// the executors bump the done counters as fronts finish, the analysis
// layer sets the denominators before the run starts, and the meter
// observer mirrors the resident gauge. Everything is atomics — an
// instrumented executor pays two atomic adds per front and an untraced
// (nil-tracer) run pays a nil check, nothing else.
type progress struct {
	totFronts atomic.Int64 // analysis-time front count (denominator)
	totFlops  atomic.Int64 // analysis-time elimination flops (denominator)
	fronts    atomic.Int64 // fronts completed so far
	flops     atomic.Int64 // elimination flops completed so far
	startNs   atomic.Int64 // clock value when SetTotals armed the run
	resCur    atomic.Int64 // last observed resident gauge value
	resPeak   atomic.Int64 // max observed resident gauge value
}

// SetTotals arms the progress ledger with the analysis-time denominators
// (front count and assembly.TotalFlops) and resets the done counters and
// the resident mirror — the executors call it at the start of every
// factorization, so a tracer reused across runs (oocfactor's in-core vs
// out-of-core comparison) restarts its progress cleanly each time.
func (t *Tracer) SetTotals(fronts, flops int64) {
	if t == nil {
		return
	}
	t.prog.totFronts.Store(fronts)
	t.prog.totFlops.Store(flops)
	t.prog.fronts.Store(0)
	t.prog.flops.Store(0)
	t.prog.resCur.Store(0)
	t.prog.resPeak.Store(0)
	t.prog.startNs.Store(t.clock())
}

// FrontDone records one completed front and its elimination flops.
// Safe from any worker goroutine; a nil tracer ignores the call.
func (t *Tracer) FrontDone(flops int64) {
	if t == nil {
		return
	}
	t.prog.fronts.Add(1)
	t.prog.flops.Add(flops)
}

// observeResident mirrors the resident gauge into the progress atomics
// (called from the meter observer, under the meter's lock, so the peak
// mirror sees every value the meter's own peak saw).
func (t *Tracer) observeResident(cur int64) {
	t.prog.resCur.Store(cur)
	for {
		p := t.prog.resPeak.Load()
		if cur <= p || t.prog.resPeak.CompareAndSwap(p, cur) {
			return
		}
	}
}

// ProgressSnapshot is one consistent-enough reading of the progress
// ledger: done/total fronts and flops, the flop-weighted completion
// ratio, elapsed wall time since the run was armed, a linear ETA, and
// the live resident gauge with the peak observed so far. It is what the
// observability server's /progress endpoint returns per run.
type ProgressSnapshot struct {
	FrontsDone  int64 `json:"fronts_done"`
	FrontsTotal int64 `json:"fronts_total"`
	FlopsDone   int64 `json:"flops_done"`
	FlopsTotal  int64 `json:"flops_total"`
	// Ratio is the completed fraction in [0, 1]: flop-weighted when the
	// flop denominator is known, front-weighted otherwise.
	Ratio          float64 `json:"ratio"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// ETASeconds linearly extrapolates the remaining wall time from the
	// completed ratio; 0 when done or not yet estimable.
	ETASeconds float64 `json:"eta_seconds"`
	// ResidentEntries / ResidentPeakEntries mirror the shared resident
	// meter (model entries): the current gauge and the exact maximum
	// observed so far — the live view of ExecStats.ResidentPeak.
	ResidentEntries     int64 `json:"resident_entries"`
	ResidentPeakEntries int64 `json:"resident_peak_entries"`
}

// Active reports whether the ledger has been armed or bumped — a zero
// ProgressSnapshot from an idle tracer is not worth rendering.
func (p ProgressSnapshot) Active() bool {
	return p.FrontsTotal > 0 || p.FrontsDone > 0
}

// Progress reads the ledger. Safe concurrently with the executors; a nil
// tracer returns the zero snapshot.
func (t *Tracer) Progress() ProgressSnapshot {
	if t == nil {
		return ProgressSnapshot{}
	}
	p := ProgressSnapshot{
		FrontsDone:          t.prog.fronts.Load(),
		FrontsTotal:         t.prog.totFronts.Load(),
		FlopsDone:           t.prog.flops.Load(),
		FlopsTotal:          t.prog.totFlops.Load(),
		ResidentEntries:     t.prog.resCur.Load(),
		ResidentPeakEntries: t.prog.resPeak.Load(),
	}
	if el := t.clock() - t.prog.startNs.Load(); el > 0 {
		p.ElapsedSeconds = float64(el) / 1e9
	}
	switch {
	case p.FlopsTotal > 0:
		p.Ratio = float64(p.FlopsDone) / float64(p.FlopsTotal)
	case p.FrontsTotal > 0:
		p.Ratio = float64(p.FrontsDone) / float64(p.FrontsTotal)
	}
	if p.Ratio > 1 {
		p.Ratio = 1
	}
	if p.Ratio > 0 && p.Ratio < 1 {
		p.ETASeconds = p.ElapsedSeconds * (1 - p.Ratio) / p.Ratio
	}
	return p
}
