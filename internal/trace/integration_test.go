package trace_test

import (
	"bytes"
	"flag"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/order"
	"repro/internal/parmf"
	"repro/internal/sparse"
	"repro/internal/trace"
)

var traceFile = flag.String("trace-file", "", "validate this Chrome trace file (CI smoke hook) ")

// TestTracedParallelRun is the end-to-end property test of the tentpole
// guarantee: a traced real parmf run (factorization + out-of-core spill +
// tree-parallel solve) produces a trace whose reconstructed memory
// timelines equal the executor's own accounting exactly — the global
// resident series' maximum IS ExecStats.ResidentPeak, and each worker
// series' maximum IS that worker's active peak — and whose Chrome
// rendering is structurally valid.
func TestTracedParallelRun(t *testing.T) {
	a := sparse.Grid3D(10, 10, 10)
	cfg := core.DefaultConfig(order.AMF, 4)
	tr := trace.New(4)
	cfg.Tracer = tr
	an, err := core.Analyze(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pf, st, err := an.FactorizeParallelOOC(parmf.DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	b := make([]float64, a.N)
	for i := range b {
		b[i] = 1 + float64(i%7)
	}
	if _, err := pf.SolveOriginal(b); err != nil {
		t.Fatal(err)
	}

	// Memory timelines are exact, not sampled.
	var resident int64 = -1
	workerPeaks := map[int]int64{}
	for _, s := range tr.MemorySeries() {
		if s.Worker < 0 {
			resident = s.Peak()
		} else {
			workerPeaks[s.Worker] = s.Peak()
		}
	}
	if resident != pf.Stats.ResidentPeak {
		t.Errorf("resident timeline max %d != ExecStats.ResidentPeak %d", resident, pf.Stats.ResidentPeak)
	}
	for w, p := range pf.Stats.WorkerPeaks {
		if workerPeaks[w] != p {
			t.Errorf("worker %d timeline max %d != WorkerPeaks %d", w, workerPeaks[w], p)
		}
	}

	// The Chrome rendering passes its own structural validator: valid
	// JSON, monotonic per-track timestamps, balanced B/E pairs.
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Errorf("traced run renders an invalid Chrome trace: %v", err)
	}

	// The aggregated snapshot sees every layer of the run.
	snap := tr.Snapshot(pf.Stats.ExecStats)
	phases := map[string]trace.PhaseStat{}
	for _, p := range snap.Phases {
		phases[p.Phase] = p
	}
	for _, want := range []string{
		trace.SpanAssemble, trace.SpanFactor, trace.EvPut, trace.EvClaim,
		trace.SpanSpill, trace.EvOOCPut, trace.SpanSolveFwd, trace.SpanSolveBwd,
	} {
		if phases[want].Count == 0 {
			t.Errorf("snapshot has no %q events", want)
		}
	}
	if got := int(phases[trace.EvPut].Count); got != an.Tree.Len() {
		t.Errorf("put events %d, want one per front (%d)", got, an.Tree.Len())
	}
	if phases[trace.SpanSpill].Bytes == 0 {
		t.Error("spill spans carry no bytes")
	}
	if snap.WallSeconds <= 0 || snap.Workers != 4 {
		t.Errorf("snapshot wall %.3fs workers %d", snap.WallSeconds, snap.Workers)
	}
}

// TestTracedSequentialRun pins the seqmf instrumentation: worker track 0
// carries the front phases and the resident series is exact.
func TestTracedSequentialRun(t *testing.T) {
	a := sparse.Grid3D(8, 8, 8)
	cfg := core.DefaultConfig(order.AMF, 1)
	tr := trace.New(1)
	cfg.Tracer = tr
	an, err := core.Analyze(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := an.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	var resident int64 = -1
	for _, s := range tr.MemorySeries() {
		if s.Worker < 0 {
			resident = s.Peak()
		}
	}
	if resident != f.Stats.ResidentPeak {
		t.Errorf("resident timeline max %d != ResidentPeak %d", resident, f.Stats.ResidentPeak)
	}
	snap := tr.Snapshot(f.Stats)
	var factorCount int64
	for _, p := range snap.Phases {
		if p.Phase == trace.SpanFactor {
			factorCount = p.Count
		}
	}
	if factorCount != int64(an.Tree.Len()) {
		t.Errorf("factor spans %d, want one per front (%d)", factorCount, an.Tree.Len())
	}
}

// TestUntracedRunUnchanged cross-checks that attaching a tracer changes
// no numbers: stats (and thus factors) are identical with and without.
func TestUntracedRunUnchanged(t *testing.T) {
	a := sparse.Grid3D(8, 8, 8)
	an, err := core.Analyze(a, core.DefaultConfig(order.AMF, 2))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := an.FactorizeParallel(parmf.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := parmf.DefaultConfig(2)
	cfg.Tracer = trace.New(2)
	traced, err := an.FactorizeParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats.FactorEntries != traced.Stats.FactorEntries ||
		plain.Stats.Fronts != traced.Stats.Fronts ||
		plain.Stats.ResidentPeak != traced.Stats.ResidentPeak {
		t.Errorf("tracing changed the run: %+v vs %+v", plain.Stats.ExecStats, traced.Stats.ExecStats)
	}
}

// TestValidateTraceFile validates an externally produced Chrome trace
// when -trace-file is given — the CI smoke step factors a small matrix
// through cmd/parfactor -trace and feeds the file here. Skipped without
// the flag.
func TestValidateTraceFile(t *testing.T) {
	if *traceFile == "" {
		t.Skip("no -trace-file given")
	}
	data, err := os.ReadFile(*traceFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateChromeTrace(data); err != nil {
		t.Fatalf("%s: %v", *traceFile, err)
	}
}
