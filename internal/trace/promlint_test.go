package trace

import (
	"bytes"
	"flag"
	"os"
	"strings"
	"testing"

	"repro/internal/memory"
)

// TestWritePrometheusConformance pins WritePrometheus to the text
// exposition format: every emitted metric family carries # HELP and
// # TYPE, names and labels are legal, no series repeats — for a
// completed run, a mid-run scrape with open spans, and a progress-armed
// run (the three bodies a live /metrics endpoint serves).
func TestWritePrometheusConformance(t *testing.T) {
	check := func(name string, s Snapshot) {
		t.Helper()
		var buf bytes.Buffer
		if err := s.WritePrometheus(&buf); err != nil {
			t.Fatalf("%s: WritePrometheus: %v", name, err)
		}
		if err := LintPrometheus(buf.Bytes()); err != nil {
			t.Errorf("%s: %v\n%s", name, err, buf.String())
		}
	}

	tr := scenario()
	check("completed", tr.Snapshot(execStatsForTest()))

	// Mid-run: open spans, progress armed, odd label values.
	live := New(1)
	live.clock = fakeClock()
	live.SetTotals(10, 1000)
	live.FrontDone(100)
	live.Begin(0, SpanTask, 1)
	live.Begin(0, "weird \"phase\"\n", 2)
	c := NewCollector(live)
	check("live", c.Scrape())

	check("empty", Snapshot{Stats: memory.ExecStats{Kernel: `tiled "fast"`}})

	check("faulted", Snapshot{
		Stats:  memory.ExecStats{Retries: 3, DegradedBlocks: 1, CancelledTasks: 2},
		Faults: []FaultStat{{Point: "spill-write", Count: 3}, {Point: "task", Count: 1}},
	})
}

// TestWritePrometheusFaultSeries pins the fault-tolerance series: the
// retry/degrade/cancel counters are always exported (zero on clean runs)
// and the per-point injection counter appears exactly for armed runs.
func TestWritePrometheusFaultSeries(t *testing.T) {
	var clean bytes.Buffer
	if err := (Snapshot{}).WritePrometheus(&clean); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{"mf_retries_total", "mf_degraded_blocks", "mf_cancelled_tasks_total"} {
		if v, ok := PromValue(clean.Bytes(), series); !ok || v != 0 {
			t.Errorf("clean run: %s = %v, %v; want 0, true", series, v, ok)
		}
	}
	if strings.Contains(clean.String(), "mf_faults_injected_total") {
		t.Error("clean run exports mf_faults_injected_total")
	}

	var chaos bytes.Buffer
	s := Snapshot{
		Stats:  memory.ExecStats{Retries: 5, DegradedBlocks: 2, CancelledTasks: 7},
		Faults: []FaultStat{{Point: "spill-write", Count: 4}},
	}
	if err := s.WritePrometheus(&chaos); err != nil {
		t.Fatal(err)
	}
	for series, want := range map[string]float64{
		"mf_retries_total":                              5,
		"mf_degraded_blocks":                            2,
		"mf_cancelled_tasks_total":                      7,
		`mf_faults_injected_total{point="spill-write"}`: 4,
	} {
		if v, ok := PromValue(chaos.Bytes(), series); !ok || v != want {
			t.Errorf("chaos run: %s = %v, %v; want %g, true", series, v, ok, want)
		}
	}
}

func TestLintPrometheusRejects(t *testing.T) {
	cases := []struct{ name, body, wantErr string }{
		{"missing help",
			"# TYPE mf_x counter\nmf_x 1\n", "without preceding # HELP"},
		{"missing type",
			"# HELP mf_x h\nmf_x 1\n", "without preceding # TYPE"},
		{"bad metric name",
			"# HELP 9bad h\n# TYPE 9bad gauge\n9bad 1\n", "malformed HELP"},
		{"bad sample name",
			"# HELP mf_x h\n# TYPE mf_x gauge\nmf-x 1\n", "bad metric name"},
		{"duplicate series",
			"# HELP mf_x h\n# TYPE mf_x gauge\nmf_x 1\nmf_x 2\n", "duplicate series"},
		{"duplicate labelled series",
			"# HELP mf_x h\n# TYPE mf_x gauge\nmf_x{a=\"1\"} 1\nmf_x{a=\"1\"} 2\n", "duplicate series"},
		{"bad escape",
			"# HELP mf_x h\n# TYPE mf_x gauge\nmf_x{a=\"\\t\"} 1\n", "illegal escape"},
		{"unterminated label",
			"# HELP mf_x h\n# TYPE mf_x gauge\nmf_x{a=\"v 1\n", "unterminated"},
		{"bad label name",
			"# HELP mf_x h\n# TYPE mf_x gauge\nmf_x{0a=\"v\"} 1\n", "bad label name"},
		{"bad value",
			"# HELP mf_x h\n# TYPE mf_x gauge\nmf_x one\n", "bad value"},
		{"bad type",
			"# HELP mf_x h\n# TYPE mf_x enum\nmf_x 1\n", "unknown metric type"},
		{"no samples", "# HELP mf_x h\n", "no samples"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := LintPrometheus([]byte(tc.body))
			if err == nil {
				t.Fatalf("lint accepted %q", tc.body)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestLintPrometheusAccepts(t *testing.T) {
	body := "# HELP mf_x sample help\n# TYPE mf_x counter\n" +
		"mf_x{phase=\"put \\\"q\\\"\",worker=\"0\"} 4.5e2 1712000000\n" +
		"mf_x{phase=\"b\"} 2\n" +
		"# HELP mf_y other\n# TYPE mf_y gauge\nmf_y -0.25\n"
	if err := LintPrometheus([]byte(body)); err != nil {
		t.Fatalf("lint rejected valid body: %v", err)
	}
	if v, ok := PromValue([]byte(body), "mf_y"); !ok || v != -0.25 {
		t.Fatalf("PromValue(mf_y) = %v, %v", v, ok)
	}
	if v, ok := PromValue([]byte(body), `mf_x{phase="b"}`); !ok || v != 2 {
		t.Fatalf("PromValue(labelled) = %v, %v", v, ok)
	}
	if _, ok := PromValue([]byte(body), "mf_xy"); ok {
		t.Fatal("PromValue matched a non-existent series")
	}
}

var (
	promFile  = flag.String("prom-file", "", "Prometheus scrape file for TestLintPromFile")
	promFile2 = flag.String("prom-file2", "", "optional later scrape: mf_flops_done_total must be nondecreasing")
)

// TestLintPromFile validates scrape files captured outside the test
// binary (the CI live-metrics smoke step curls a running server and
// hands the bodies here). Skips unless -prom-file is set.
func TestLintPromFile(t *testing.T) {
	if *promFile == "" {
		t.Skip("no -prom-file given")
	}
	data, err := os.ReadFile(*promFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := LintPrometheus(data); err != nil {
		t.Fatalf("%s: %v", *promFile, err)
	}
	t.Logf("%s: %d bytes, lint clean", *promFile, len(data))
	if *promFile2 == "" {
		return
	}
	data2, err := os.ReadFile(*promFile2)
	if err != nil {
		t.Fatal(err)
	}
	if err := LintPrometheus(data2); err != nil {
		t.Fatalf("%s: %v", *promFile2, err)
	}
	v1, ok1 := PromValue(data, "mf_flops_done_total")
	v2, ok2 := PromValue(data2, "mf_flops_done_total")
	if !ok1 || !ok2 {
		t.Fatalf("mf_flops_done_total missing (first=%v second=%v)", ok1, ok2)
	}
	if v2 < v1 {
		t.Fatalf("mf_flops_done_total went backwards: %g then %g", v1, v2)
	}
	t.Logf("mf_flops_done_total: %g -> %g", v1, v2)
}
