package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/memory"
)

func execStatsForTest() memory.ExecStats {
	return memory.ExecStats{ResidentPeak: 5, Fronts: 1, Kernel: "test"}
}

var update = flag.Bool("update", false, "rewrite the golden Chrome trace")

// fakeClock gives every recorded event a deterministic timestamp
// (1 µs apart), so the Chrome rendering is byte-stable for the golden
// comparison.
func fakeClock() func() int64 {
	var t int64
	return func() int64 {
		t += 1000
		return t
	}
}

// scenario records a small deterministic run touching every event kind
// and track type.
func scenario() *Tracer {
	tr := New(2)
	tr.clock = fakeClock()
	tr.MeterObserver()(5)
	tr.Begin(0, SpanTask, 3)
	tr.Begin(0, SpanAssemble, 3)
	tr.End(0, SpanAssemble, 3)
	tr.Begin(0, SpanFactor, 3)
	tr.TrackerObserver()(0, 10, 20)
	tr.End(0, SpanFactor, 3)
	tr.Instant(0, EvPut, 3, 64)
	tr.End(0, SpanTask, 3)
	tr.Begin(1, SpanTile, 3)
	tr.End(1, SpanTile, 3)
	tr.TrackerObserver()(1, 0, 7)
	tr.StoreBegin(SpanSpill, 3)
	tr.StoreEnd(SpanSpill, 3, 128)
	tr.StoreInstant(EvOOCPut, 4, 32)
	tr.MeterObserver()(2)
	return tr
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := scenario().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Chrome trace differs from golden (run with -update to regenerate)\ngot:\n%s", buf.String())
	}
}

func TestChromeTraceValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := scenario().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("scenario trace invalid: %v", err)
	}
	// And it is plain JSON an ordinary decoder accepts.
	var anyEvents []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &anyEvents); err != nil {
		t.Fatalf("not a JSON array: %v", err)
	}
	if len(anyEvents) == 0 {
		t.Fatal("empty trace")
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	mk := func(events ...string) []byte {
		return []byte("[" + strings.Join(events, ",") + "]")
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"not json", []byte("{"), "invalid JSON"},
		{"no name", mk(`{"ph":"i","pid":1,"tid":0,"ts":1}`), "no name"},
		{"bad phase", mk(`{"name":"x","ph":"Q","pid":1,"tid":0,"ts":1}`), "unknown phase"},
		{"no ts", mk(`{"name":"x","ph":"i","pid":1,"tid":0}`), "no ts"},
		{"time travel", mk(
			`{"name":"a","ph":"i","pid":1,"tid":0,"ts":5}`,
			`{"name":"b","ph":"i","pid":1,"tid":0,"ts":3}`), "back in time"},
		{"unmatched end", mk(`{"name":"x","ph":"E","pid":1,"tid":0,"ts":1}`), "no open span"},
		{"crossed spans", mk(
			`{"name":"a","ph":"B","pid":1,"tid":0,"ts":1}`,
			`{"name":"b","ph":"B","pid":1,"tid":0,"ts":2}`,
			`{"name":"a","ph":"E","pid":1,"tid":0,"ts":3}`), "does not match"},
		{"unclosed span", mk(`{"name":"a","ph":"B","pid":1,"tid":0,"ts":1}`), "unclosed"},
	}
	for _, tc := range cases {
		err := ValidateChromeTrace(tc.data)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// Distinct tids keep independent clocks and stacks.
	ok := mk(
		`{"name":"a","ph":"B","pid":1,"tid":0,"ts":5}`,
		`{"name":"b","ph":"i","pid":1,"tid":1,"ts":1}`,
		`{"name":"a","ph":"E","pid":1,"tid":0,"ts":6}`)
	if err := ValidateChromeTrace(ok); err != nil {
		t.Errorf("per-track independence broken: %v", err)
	}
}

func TestSnapshotAggregation(t *testing.T) {
	s := scenario().Snapshot(execStatsForTest())
	if s.Workers != 2 {
		t.Fatalf("workers %d", s.Workers)
	}
	byName := map[string]PhaseStat{}
	for _, p := range s.Phases {
		byName[p.Phase] = p
	}
	if p := byName[SpanTask]; p.Count != 1 || p.Seconds <= 0 {
		t.Errorf("task phase %+v", p)
	}
	if p := byName[SpanSpill]; p.Count != 1 || p.Bytes != 128 {
		t.Errorf("spill phase %+v", p)
	}
	if p := byName[EvPut]; p.Count != 1 || p.Bytes != 64 {
		t.Errorf("put phase %+v", p)
	}
	if s.PerWorker[0].PeakActive != 20 || s.PerWorker[0].PeakStack != 10 {
		t.Errorf("worker 0 peaks %+v", s.PerWorker[0])
	}
	if s.PerWorker[1].PeakActive != 7 {
		t.Errorf("worker 1 peaks %+v", s.PerWorker[1])
	}

	var prom bytes.Buffer
	if err := s.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE mf_resident_peak_entries gauge",
		"mf_resident_peak_entries 5",
		`mf_phase_bytes_total{phase="spill-write"} 128`,
		`mf_worker_peak_active_entries{worker="0"} 20`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("Prometheus output missing %q", want)
		}
	}
	var js bytes.Buffer
	if err := s.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(js.Bytes(), &round); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if round.Stats.ResidentPeak != 5 || round.Workers != 2 {
		t.Errorf("round-tripped snapshot %+v", round)
	}
}

func TestMemorySeriesAndCSV(t *testing.T) {
	tr := scenario()
	series := tr.MemorySeries()
	if len(series) != 3 { // resident + 2 workers
		t.Fatalf("series count %d", len(series))
	}
	if series[0].Name != "resident" || series[0].Peak() != 5 {
		t.Errorf("resident series %+v", series[0])
	}
	var csv bytes.Buffer
	if err := tr.WriteMemoryCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "series,t_ns,stack_entries,active_entries\n") {
		t.Errorf("CSV header missing: %q", csv.String())
	}
	if !strings.Contains(csv.String(), "worker 0,") {
		t.Errorf("CSV missing worker rows:\n%s", csv.String())
	}
	if got := Sparkline(series[0].Active, 8, tr.EndNs(), 5); len(got) != 8 {
		t.Errorf("sparkline %q", got)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Begin(0, SpanTask, 1)
	tr.End(0, SpanTask, 1)
	tr.Instant(0, EvPut, 1, 8)
	tr.StoreBegin(SpanSpill, 1)
	tr.StoreEnd(SpanSpill, 1, 8)
	tr.StoreInstant(EvOOCPut, 1, 8)
	tr.EnsureWorkers(4)
	if tr.MeterObserver() != nil || tr.TrackerObserver() != nil {
		t.Error("nil tracer observers must be nil")
	}
	if tr.Tracks() != nil || tr.Workers() != 0 || tr.Events() != 0 || tr.EndNs() != 0 {
		t.Error("nil tracer must report empty state")
	}
	if s := tr.Snapshot(execStatsForTest()); s.Events != 0 {
		t.Errorf("nil tracer snapshot %+v", s)
	}
}

// TestNilTracerZeroAllocs pins the disabled path: the per-event calls an
// executor makes with a nil tracer allocate nothing.
func TestNilTracerZeroAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Begin(0, SpanTask, 1)
		tr.Begin(0, SpanFactor, 1)
		tr.End(0, SpanFactor, 1)
		tr.Instant(0, EvPut, 1, 64)
		tr.End(0, SpanTask, 1)
		tr.StoreInstant(EvOOCPut, 1, 64)
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocates %.1f per task", allocs)
	}
}
