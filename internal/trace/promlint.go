package trace

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// LintPrometheus checks data against the Prometheus text exposition
// format (version 0.0.4), promlint-style: every sample belongs to a
// metric family that declared # HELP and # TYPE first, metric names
// match [a-zA-Z_:][a-zA-Z0-9_:]*, label names match
// [a-zA-Z_][a-zA-Z0-9_]*, label values use only the legal escapes
// (\\, \", \n), values parse as floats, and no series (name + label
// set) appears twice. The conformance test pins WritePrometheus to it,
// and the CI smoke step runs live /metrics scrapes through it.
func LintPrometheus(data []byte) error {
	var (
		metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
		labelName  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	)
	helpSeen := map[string]bool{}
	typeSeen := map[string]bool{}
	series := map[string]int{}
	lines := strings.Split(string(data), "\n")
	sawSample := false
	for no, line := range lines {
		ln := no + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 2 {
				continue // free-form comment
			}
			switch fields[1] {
			case "HELP":
				if len(fields) < 3 || !metricName.MatchString(fields[2]) {
					return fmt.Errorf("prom line %d: malformed HELP: %q", ln, line)
				}
				if helpSeen[fields[2]] {
					return fmt.Errorf("prom line %d: duplicate HELP for %s", ln, fields[2])
				}
				helpSeen[fields[2]] = true
			case "TYPE":
				if len(fields) < 4 {
					return fmt.Errorf("prom line %d: malformed TYPE: %q", ln, line)
				}
				name, typ := fields[2], fields[3]
				if !metricName.MatchString(name) {
					return fmt.Errorf("prom line %d: bad metric name %q in TYPE", ln, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("prom line %d: unknown metric type %q", ln, typ)
				}
				if typeSeen[name] {
					return fmt.Errorf("prom line %d: duplicate TYPE for %s", ln, name)
				}
				if sample, ok := series[name]; ok {
					_ = sample
					return fmt.Errorf("prom line %d: TYPE for %s after its samples", ln, name)
				}
				typeSeen[name] = true
			}
			continue
		}
		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return fmt.Errorf("prom line %d: %w", ln, err)
		}
		if !metricName.MatchString(name) {
			return fmt.Errorf("prom line %d: bad metric name %q", ln, name)
		}
		if !helpSeen[name] {
			return fmt.Errorf("prom line %d: sample %s without preceding # HELP", ln, name)
		}
		if !typeSeen[name] {
			return fmt.Errorf("prom line %d: sample %s without preceding # TYPE", ln, name)
		}
		for _, l := range labels {
			if !labelName.MatchString(l.name) {
				return fmt.Errorf("prom line %d: bad label name %q", ln, l.name)
			}
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("prom line %d: bad value %q: %v", ln, value, err)
		}
		key := seriesKey(name, labels)
		if prev, ok := series[key]; ok {
			return fmt.Errorf("prom line %d: duplicate series %s (first at line %d)", ln, key, prev)
		}
		series[key] = ln
		sawSample = true
	}
	if !sawSample {
		return fmt.Errorf("prom: no samples")
	}
	return nil
}

type promLabel struct{ name, value string }

func seriesKey(name string, labels []promLabel) string {
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels { // WritePrometheus emits labels in fixed order
		b.WriteByte('{')
		b.WriteString(l.name)
		b.WriteByte('=')
		b.WriteString(l.value)
		b.WriteByte('}')
	}
	return b.String()
}

// parsePromSample splits `name{l1="v1",...} value [ts]`, validating the
// label-value escapes as it scans.
func parsePromSample(line string) (name string, labels []promLabel, value string, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	sp := strings.IndexByte(rest, ' ')
	if brace >= 0 && (sp < 0 || brace < sp) {
		name = rest[:brace]
		rest = rest[brace+1:]
		for {
			rest = strings.TrimLeft(rest, " ")
			if rest == "" {
				return "", nil, "", fmt.Errorf("unterminated label set")
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return "", nil, "", fmt.Errorf("label without '=' in %q", rest)
			}
			l := promLabel{name: rest[:eq]}
			rest = rest[eq+1:]
			if rest == "" || rest[0] != '"' {
				return "", nil, "", fmt.Errorf("label value for %s not quoted", l.name)
			}
			rest = rest[1:]
			var sb strings.Builder
			closed := false
			for i := 0; i < len(rest); i++ {
				c := rest[i]
				if c == '\\' {
					if i+1 >= len(rest) {
						return "", nil, "", fmt.Errorf("dangling escape in label %s", l.name)
					}
					switch rest[i+1] {
					case '\\', '"', 'n':
					default:
						return "", nil, "", fmt.Errorf("illegal escape \\%c in label %s", rest[i+1], l.name)
					}
					sb.WriteByte(c)
					sb.WriteByte(rest[i+1])
					i++
					continue
				}
				if c == '"' {
					l.value = sb.String()
					rest = rest[i+1:]
					closed = true
					break
				}
				if c == '\n' {
					return "", nil, "", fmt.Errorf("raw newline in label %s", l.name)
				}
				sb.WriteByte(c)
			}
			if !closed {
				return "", nil, "", fmt.Errorf("unterminated label value for %s", l.name)
			}
			labels = append(labels, l)
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
			}
		}
	} else {
		if sp < 0 {
			return "", nil, "", fmt.Errorf("sample without value: %q", line)
		}
		name = rest[:sp]
		rest = rest[sp:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, "", fmt.Errorf("want 'value [timestamp]' after name, got %q", rest)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, "", fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, fields[0], nil
}

// PromValue extracts the first sample value of the named series from a
// text-format scrape (name may include a label selector, matched as a
// literal prefix). The CI smoke test uses it to compare counters across
// two scrapes of a live run.
func PromValue(data []byte, name string) (float64, bool) {
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if rest == "" || (rest[0] != ' ' && rest[0] != '{') {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			continue
		}
		return v, true
	}
	return 0, false
}
