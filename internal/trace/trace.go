// Package trace is the execution tracing and metrics layer for the real
// executors. A Tracer is a low-overhead, concurrency-safe event recorder
// the numeric executors (internal/seqmf, internal/parmf), the out-of-core
// store (internal/ooc) and the tree-parallel solve phase stamp with their
// task lifecycle: spans for tree tasks and leaf-subtree batches, front
// phases (assembly, extend-add, partial factorization), within-front
// row-block and 2D tile tasks, solve-phase node visits, and the OOC
// store's spill writes and solve-pass reads.
//
// Memory timelines ride along for free: the tracer hooks the executors'
// memory.Meter and memory.SafeTracker observers, so every mutation of the
// resident gauge and of every worker's stack/active accounting lands in
// the event stream as a counter sample. Because observers run under the
// instruments' own locks, the recorded sequence is exactly the gauge
// history — the maximum of the "resident" track equals
// memory.ExecStats.ResidentPeak bit for bit, and each worker track's
// maximum equals that worker's active peak. These are the paper's
// Figure 4/6/8 per-processor memory-evolution curves, measured on real
// runs instead of the simulator.
//
// Three sinks consume a recorded run:
//
//   - WriteChromeTrace emits Chrome trace_event JSON — load it in
//     chrome://tracing or https://ui.perfetto.dev; one track per worker,
//     plus tracks for the OOC store and the global counters.
//   - MemorySeries / WriteMemoryCSV / Sparkline render the sampled
//     per-worker memory timelines (the ASCII view examples/tracing shows
//     next to the simulator's prediction).
//   - Snapshot aggregates per-phase time/count/byte counters with
//     memory.ExecStats into a scrape-ready snapshot (Prometheus text
//     format or JSON) — the format a long-running solve server exports.
//
// A nil *Tracer is valid, ignores every call, and allocates nothing —
// the executors pay a nil check per task event and nothing else, so an
// untraced run is unchanged (pinned by TestNilTracerZeroAllocs and the
// Tracing benchmark in BENCH_kernels.json).
package trace

import (
	"sync"
	"time"
)

// Span and instant names the executors record. Sinks aggregate by these;
// they are ordinary strings, so new call sites may introduce new names
// without touching this package.
const (
	// Tree-level task lifecycle (internal/parmf, internal/seqmf).
	SpanTask    = "task"    // one upper (individual-node) tree task
	SpanSubtree = "subtree" // one leaf-subtree batch task
	EvClaim     = "claim"   // instant: worker claimed a task from the pool

	// Front-level phases, nested inside a task span.
	SpanAssemble  = "assemble"   // scatter of original entries
	SpanExtendAdd = "extend-add" // children CB assembly
	SpanFactor    = "factor"     // partial factorization (incl. split path)
	EvPut         = "put"        // instant: factor block handed to the store

	// Within-front (type-2 row-block / type-3 tile) tasks.
	SpanMaster = "master" // master panel elimination of a split front
	SpanTile   = "tile"   // one claimed row-block or tile task

	// Solve-phase node spans (parmf.TreeSolver).
	SpanSolveFwd = "solve-fwd"
	SpanSolveBwd = "solve-bwd"

	// OOC store events (internal/ooc), on the store track.
	SpanSpill      = "spill-write"   // background writer spilling one block
	EvOOCPut       = "ooc-put"       // instant: block queued for spilling
	EvPrefetchRead = "prefetch-read" // instant: solve-pass read-ahead load
	EvDirectRead   = "direct-read"   // instant: solve fetch that outran the reader
	EvOOCDegrade   = "ooc-degrade"   // instant: block retained in-core after persistent write failure

	// Counter names.
	CounterResident = "resident" // global resident gauge (model entries)
	CounterMem      = "mem"      // per-worker stack/active (model entries)
)

// Kind discriminates recorded events.
type Kind uint8

const (
	// KindBegin opens a span on a track; KindEnd closes the innermost
	// open span of the same name. Per track they nest like a call stack.
	KindBegin Kind = iota
	KindEnd
	// KindInstant is a point event (V1 = bytes where meaningful).
	KindInstant
	// KindCounter is a memory sample: V1/V2 = (stack, active) on worker
	// tracks, (resident, 0) on the global track.
	KindCounter
)

// Event is one recorded event. T is nanoseconds since the tracer start,
// taken under the owning track's lock so every track's events are in
// nondecreasing time order.
type Event struct {
	Kind Kind
	Name string
	Node int32 // assembly-tree node / front id, -1 when not applicable
	T    int64 // ns since tracer start
	V1   int64 // bytes (instants) or first counter value
	V2   int64 // second counter value
}

// Well-known track indices (see Tracer.Track).
const (
	TrackGlobal = 0 // global counter track ("resident")
	TrackStore  = 1 // OOC store events (spill writer spans, read instants)
	trackWorker = 2 // worker w records on track trackWorker+w
)

// track is one event sequence with its own lock: a worker's goroutine,
// the store, or the global counters. Taking the timestamp under the
// track lock makes each track monotonic even when several goroutines
// append to it (the global counter track, the store's read instants).
type track struct {
	mu     sync.Mutex
	name   string
	events []Event
}

// Tracer records events from one run (a factorization and any solves
// against its factors). Create with New; attach via the executors'
// Tracer options. All methods are safe for concurrent use and valid on a
// nil receiver (no-ops).
type Tracer struct {
	clock func() int64 // ns since start; monotonic (replaceable in tests)

	// prog is the lock-free progress ledger (see progress.go): completed
	// fronts/flops against analysis-time totals, plus a mirror of the
	// resident gauge, all readable mid-run without touching the tracks.
	prog progress

	mu     sync.RWMutex
	tracks []*track
}

// New returns a tracer with tracks for the given worker count (grown on
// demand by EnsureWorkers if a later solve runs wider).
func New(workers int) *Tracer {
	t0 := time.Now()
	t := &Tracer{clock: func() int64 { return time.Since(t0).Nanoseconds() }}
	t.tracks = []*track{{name: "global"}, {name: "store"}}
	t.EnsureWorkers(workers)
	return t
}

// EnsureWorkers grows the track table so workers 0..n-1 have tracks.
// Executors call it once per run; events never allocate tracks.
func (t *Tracer) EnsureWorkers(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	for len(t.tracks) < trackWorker+n {
		t.tracks = append(t.tracks, &track{name: workerName(len(t.tracks) - trackWorker)})
	}
	t.mu.Unlock()
}

// workerName avoids fmt to keep EnsureWorkers dependency-light.
func workerName(w int) string {
	if w < 0 {
		w = 0
	}
	digits := [20]byte{}
	i := len(digits)
	for {
		i--
		digits[i] = byte('0' + w%10)
		w /= 10
		if w == 0 {
			break
		}
	}
	return "worker " + string(digits[i:])
}

// tr returns the track at index i, or nil when the tracer is nil or the
// index is out of range (the event is dropped rather than misfiled).
func (t *Tracer) tr(i int) *track {
	if t == nil || i < 0 {
		return nil
	}
	t.mu.RLock()
	var k *track
	if i < len(t.tracks) {
		k = t.tracks[i]
	}
	t.mu.RUnlock()
	return k
}

// record appends e to track i, stamping the time under the track lock.
func (t *Tracer) record(i int, e Event) {
	k := t.tr(i)
	if k == nil {
		return
	}
	k.mu.Lock()
	e.T = t.clock()
	k.events = append(k.events, e)
	k.mu.Unlock()
}

// Begin opens span name for node on worker w's track.
func (t *Tracer) Begin(w int, name string, node int) {
	if t == nil {
		return
	}
	t.record(trackWorker+w, Event{Kind: KindBegin, Name: name, Node: int32(node)})
}

// End closes the innermost open span of that name on worker w's track.
func (t *Tracer) End(w int, name string, node int) {
	if t == nil {
		return
	}
	t.record(trackWorker+w, Event{Kind: KindEnd, Name: name, Node: int32(node)})
}

// Instant records a point event on worker w's track. bytes may be 0.
func (t *Tracer) Instant(w int, name string, node int, bytes int64) {
	if t == nil {
		return
	}
	t.record(trackWorker+w, Event{Kind: KindInstant, Name: name, Node: int32(node), V1: bytes})
}

// StoreBegin opens a span on the store track. Only the OOC store's
// single writer goroutine opens store spans, so they always balance.
func (t *Tracer) StoreBegin(name string, node int) {
	if t == nil {
		return
	}
	t.record(TrackStore, Event{Kind: KindBegin, Name: name, Node: int32(node)})
}

// StoreEnd closes the store span opened by the matching StoreBegin.
func (t *Tracer) StoreEnd(name string, node int, bytes int64) {
	if t == nil {
		return
	}
	t.record(TrackStore, Event{Kind: KindEnd, Name: name, Node: int32(node), V1: bytes})
}

// StoreInstant records a point event on the store track (safe from any
// goroutine — solve workers' direct reads land here).
func (t *Tracer) StoreInstant(name string, node int, bytes int64) {
	if t == nil {
		return
	}
	t.record(TrackStore, Event{Kind: KindInstant, Name: name, Node: int32(node), V1: bytes})
}

// MeterObserver returns the callback to install with memory.Meter.Observe:
// every resident-gauge mutation becomes a counter sample on the global
// track. Returns nil for a nil tracer (which uninstalls the observer).
func (t *Tracer) MeterObserver() func(cur int64) {
	if t == nil {
		return nil
	}
	return func(cur int64) {
		t.observeResident(cur)
		t.record(TrackGlobal, Event{Kind: KindCounter, Name: CounterResident, Node: -1, V1: cur})
	}
}

// TrackerObserver returns the callback to install with
// memory.SafeTracker.Observe: every worker stack/front mutation becomes
// a (stack, active) counter sample on that worker's track. Returns nil
// for a nil tracer.
func (t *Tracer) TrackerObserver() func(worker int, stack, active int64) {
	if t == nil {
		return nil
	}
	return func(worker int, stack, active int64) {
		t.record(trackWorker+worker, Event{Kind: KindCounter, Name: CounterMem, Node: -1, V1: stack, V2: active})
	}
}

// Track is one track's recorded events, for the sinks and for tests.
type Track struct {
	// Index is the track's id: TrackGlobal, TrackStore, or
	// TrackGlobal+2+w for worker w (see WorkerIndex).
	Index  int
	Name   string
	Events []Event
}

// WorkerIndex returns the worker id a track index addresses, or -1 for
// the global and store tracks.
func WorkerIndex(trackIndex int) int {
	if trackIndex < trackWorker {
		return -1
	}
	return trackIndex - trackWorker
}

// Tracks snapshots every track's events (copies, safe to keep). Tracks
// with no events are included so worker identities stay dense.
func (t *Tracer) Tracks() []Track {
	if t == nil {
		return nil
	}
	t.mu.RLock()
	tracks := append([]*track(nil), t.tracks...)
	t.mu.RUnlock()
	out := make([]Track, len(tracks))
	for i, k := range tracks {
		k.mu.Lock()
		out[i] = Track{Index: i, Name: k.name, Events: append([]Event(nil), k.events...)}
		k.mu.Unlock()
	}
	return out
}

// trackCount returns the current track-table length (the live
// aggregation's cursor table is sized against it).
func (t *Tracer) trackCount() int {
	if t == nil {
		return 0
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.tracks)
}

// copyFrom appends track i's events past index from to buf and returns
// the extended slice — the O(new events) read the live Collector scrapes
// with, taken under the track lock so it is safe against appending
// workers.
func (t *Tracer) copyFrom(i, from int, buf []Event) []Event {
	k := t.tr(i)
	if k == nil {
		return buf
	}
	k.mu.Lock()
	if from < len(k.events) {
		buf = append(buf, k.events[from:]...)
	}
	k.mu.Unlock()
	return buf
}

// Workers returns the number of worker tracks.
func (t *Tracer) Workers() int {
	if t == nil {
		return 0
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.tracks) - trackWorker
}

// Events returns the total recorded event count.
func (t *Tracer) Events() int {
	if t == nil {
		return 0
	}
	n := 0
	t.mu.RLock()
	tracks := append([]*track(nil), t.tracks...)
	t.mu.RUnlock()
	for _, k := range tracks {
		k.mu.Lock()
		n += len(k.events)
		k.mu.Unlock()
	}
	return n
}
