package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/memory"
)

// PhaseStat aggregates every span or instant of one name across tracks.
type PhaseStat struct {
	Phase string `json:"phase"`
	// Count is completed spans (B/E pairs) plus instants.
	Count int64 `json:"count"`
	// Seconds is the summed span duration (0 for pure instants).
	Seconds float64 `json:"seconds"`
	// Bytes sums the byte payloads (OOC events).
	Bytes int64 `json:"bytes,omitempty"`
	// Open is the number of spans of this phase begun but not yet ended
	// at snapshot time — nonzero only on a live mid-run scrape. An open
	// span never contributes to Count or Seconds until its End arrives.
	Open int64 `json:"open,omitempty"`
}

// WorkerStat is one worker track's summary.
type WorkerStat struct {
	Worker int `json:"worker"`
	// PeakStack / PeakActive are the maxima of the worker's sampled
	// memory timeline (model entries) — equal to the executor's
	// per-worker peaks because every mutation is sampled.
	PeakStack  int64 `json:"peak_stack_entries"`
	PeakActive int64 `json:"peak_active_entries"`
	// Spans is the worker's completed span count (its task activity).
	Spans int64 `json:"spans"`
}

// FaultStat is one armed fault-injection point's counter: how many
// injections actually fired there (internal/faults supplies the data;
// whoever holds the injector attaches it to the snapshot). Runs without
// an injector carry none.
type FaultStat struct {
	Point string `json:"point"`
	Count int64  `json:"count"`
}

// Snapshot is the aggregated counters view of one run: the
// executor-independent memory.ExecStats plus the per-phase time/byte
// counters and per-worker peaks derived from the trace. It is what a
// long-running solve service would export on a scrape endpoint; render
// it with WritePrometheus (text exposition format) or WriteJSON.
type Snapshot struct {
	Stats   memory.ExecStats `json:"stats"`
	Workers int              `json:"workers"`
	// WallSeconds spans the first recorded event to the last one — or to
	// "now" when the snapshot came from a live Collector.Scrape.
	WallSeconds float64      `json:"wall_seconds"`
	Events      int64        `json:"events"`
	Phases      []PhaseStat  `json:"phases"`
	PerWorker   []WorkerStat `json:"per_worker"`
	// Progress carries the completed-work ledger (fronts/flops done vs
	// the analysis-time totals, ETA, live resident gauge) when the run's
	// executor armed it; nil otherwise.
	Progress *ProgressSnapshot `json:"progress,omitempty"`
	// Faults lists the fired fault-injection points when the run was
	// armed with an injector (chaos testing); empty otherwise.
	Faults []FaultStat `json:"faults,omitempty"`
}

// Snapshot aggregates the recorded events with the run's ExecStats. It
// is valid mid-run — spans still open contribute PhaseStat.Open instead
// of corrupting Count/Seconds — but each call re-folds the whole event
// history; a scrape endpoint should keep a Collector instead, which does
// the same aggregation incrementally.
func (t *Tracer) Snapshot(stats memory.ExecStats) Snapshot {
	if t == nil {
		return Snapshot{Stats: stats}
	}
	return NewCollector(t).Final(stats)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges with # HELP/# TYPE
// headers, per-phase series labelled {phase="..."} and per-worker series
// labelled {worker="..."}. A solve server serves exactly this body on
// its /metrics endpoint.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	p := func(format string, args ...any) { fmt.Fprintf(bw, format, args...) }
	head := func(name, help, typ string) {
		p("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	head("mf_factor_entries_total", "Factor storage produced (model entries).", "counter")
	p("mf_factor_entries_total %d\n", s.Stats.FactorEntries)
	head("mf_fronts_total", "Fronts processed.", "counter")
	p("mf_fronts_total %d\n", s.Stats.Fronts)
	head("mf_assembly_ops_total", "Extend-add operations.", "counter")
	p("mf_assembly_ops_total %d\n", s.Stats.AssemblyOps)
	head("mf_max_front_order", "Largest front order.", "gauge")
	p("mf_max_front_order %d\n", s.Stats.MaxFront)
	head("mf_peak_stack_entries", "Max over workers of the stack+front peak (model entries).", "gauge")
	p("mf_peak_stack_entries %d\n", s.Stats.PeakStack)
	head("mf_resident_peak_entries", "Whole-process resident peak: fronts + CBs + store-owned factor blocks (model entries).", "gauge")
	p("mf_resident_peak_entries %d\n", s.Stats.ResidentPeak)
	head("mf_final_stack_entries", "Stack entries left at the end of the factorization.", "gauge")
	p("mf_final_stack_entries %d\n", s.Stats.FinalStack)
	if s.Stats.Kernel != "" {
		head("mf_kernel_info", "Kernel family the run used (value is always 1).", "gauge")
		p("mf_kernel_info{kernel=%q} 1\n", s.Stats.Kernel)
	}
	if pr := s.Progress; pr != nil {
		head("mf_fronts_done_total", "Fronts completed so far in the current factorization.", "counter")
		p("mf_fronts_done_total %d\n", pr.FrontsDone)
		head("mf_fronts_planned", "Analysis-time front count (progress denominator).", "gauge")
		p("mf_fronts_planned %d\n", pr.FrontsTotal)
		head("mf_flops_done_total", "Elimination flops completed so far.", "counter")
		p("mf_flops_done_total %d\n", pr.FlopsDone)
		head("mf_flops_planned", "Analysis-time elimination flops (progress denominator).", "gauge")
		p("mf_flops_planned %d\n", pr.FlopsTotal)
		head("mf_progress_ratio", "Completed fraction of the factorization (flop-weighted, 0-1).", "gauge")
		p("mf_progress_ratio %g\n", pr.Ratio)
		head("mf_elapsed_seconds", "Wall time since the factorization was armed.", "gauge")
		p("mf_elapsed_seconds %g\n", pr.ElapsedSeconds)
		head("mf_eta_seconds", "Linear estimate of remaining wall time (0 = done or unknown).", "gauge")
		p("mf_eta_seconds %g\n", pr.ETASeconds)
		head("mf_resident_entries", "Current resident gauge (model entries).", "gauge")
		p("mf_resident_entries %d\n", pr.ResidentEntries)
	}
	head("mf_retries_total", "Spill I/O operations retried after transient failures.", "counter")
	p("mf_retries_total %d\n", s.Stats.Retries)
	head("mf_degraded_blocks", "Factor blocks retained in-core after persistent spill-write failure.", "gauge")
	p("mf_degraded_blocks %d\n", s.Stats.DegradedBlocks)
	head("mf_cancelled_tasks_total", "Tree tasks left unfinished when cancellation or first error drained the run.", "counter")
	p("mf_cancelled_tasks_total %d\n", s.Stats.CancelledTasks)
	if len(s.Faults) > 0 {
		head("mf_faults_injected_total", "Faults fired per injection point (chaos runs only).", "counter")
		for _, fs := range s.Faults {
			p("mf_faults_injected_total{point=%q} %d\n", fs.Point, fs.Count)
		}
	}
	head("mf_workers", "Worker tracks recorded.", "gauge")
	p("mf_workers %d\n", s.Workers)
	head("mf_trace_events_total", "Events the tracer recorded.", "counter")
	p("mf_trace_events_total %d\n", s.Events)
	head("mf_wall_seconds", "First-to-last event wall time.", "gauge")
	p("mf_wall_seconds %g\n", s.WallSeconds)

	if len(s.Phases) > 0 {
		head("mf_phase_seconds_total", "Summed span duration per phase.", "counter")
		for _, ph := range s.Phases {
			p("mf_phase_seconds_total{phase=%q} %g\n", ph.Phase, ph.Seconds)
		}
		head("mf_phase_count_total", "Completed spans / instants per phase.", "counter")
		for _, ph := range s.Phases {
			p("mf_phase_count_total{phase=%q} %d\n", ph.Phase, ph.Count)
		}
		head("mf_phase_bytes_total", "Byte payload per phase (OOC spill/read events).", "counter")
		for _, ph := range s.Phases {
			if ph.Bytes != 0 {
				p("mf_phase_bytes_total{phase=%q} %d\n", ph.Phase, ph.Bytes)
			}
		}
		var anyOpen bool
		for _, ph := range s.Phases {
			anyOpen = anyOpen || ph.Open != 0
		}
		if anyOpen {
			head("mf_phase_open", "Spans currently open per phase (mid-run scrape).", "gauge")
			for _, ph := range s.Phases {
				if ph.Open != 0 {
					p("mf_phase_open{phase=%q} %d\n", ph.Phase, ph.Open)
				}
			}
		}
	}
	if len(s.PerWorker) > 0 {
		head("mf_worker_peak_active_entries", "Per-worker active-memory peak (model entries).", "gauge")
		for _, ws := range s.PerWorker {
			p("mf_worker_peak_active_entries{worker=\"%d\"} %d\n", ws.Worker, ws.PeakActive)
		}
		head("mf_worker_peak_stack_entries", "Per-worker CB-stack-only peak (model entries).", "gauge")
		for _, ws := range s.PerWorker {
			p("mf_worker_peak_stack_entries{worker=\"%d\"} %d\n", ws.Worker, ws.PeakStack)
		}
		head("mf_worker_spans_total", "Completed spans per worker.", "counter")
		for _, ws := range s.PerWorker {
			p("mf_worker_spans_total{worker=\"%d\"} %d\n", ws.Worker, ws.Spans)
		}
	}
	return bw.Flush()
}

// WriteJSON writes the snapshot as indented JSON — the same data the
// Prometheus rendering exposes, for programmatic consumers.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
