package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/memory"
)

// PhaseStat aggregates every span or instant of one name across tracks.
type PhaseStat struct {
	Phase string `json:"phase"`
	// Count is completed spans (B/E pairs) plus instants.
	Count int64 `json:"count"`
	// Seconds is the summed span duration (0 for pure instants).
	Seconds float64 `json:"seconds"`
	// Bytes sums the byte payloads (OOC events).
	Bytes int64 `json:"bytes,omitempty"`
}

// WorkerStat is one worker track's summary.
type WorkerStat struct {
	Worker int `json:"worker"`
	// PeakStack / PeakActive are the maxima of the worker's sampled
	// memory timeline (model entries) — equal to the executor's
	// per-worker peaks because every mutation is sampled.
	PeakStack  int64 `json:"peak_stack_entries"`
	PeakActive int64 `json:"peak_active_entries"`
	// Spans is the worker's completed span count (its task activity).
	Spans int64 `json:"spans"`
}

// Snapshot is the aggregated counters view of one run: the
// executor-independent memory.ExecStats plus the per-phase time/byte
// counters and per-worker peaks derived from the trace. It is what a
// long-running solve service would export on a scrape endpoint; render
// it with WritePrometheus (text exposition format) or WriteJSON.
type Snapshot struct {
	Stats   memory.ExecStats `json:"stats"`
	Workers int              `json:"workers"`
	// WallSeconds spans the first to the last recorded event.
	WallSeconds float64      `json:"wall_seconds"`
	Events      int64        `json:"events"`
	Phases      []PhaseStat  `json:"phases"`
	PerWorker   []WorkerStat `json:"per_worker"`
}

// Snapshot aggregates the recorded events with the run's ExecStats.
func (t *Tracer) Snapshot(stats memory.ExecStats) Snapshot {
	s := Snapshot{Stats: stats}
	if t == nil {
		return s
	}
	phases := map[string]*PhaseStat{}
	var t0, t1 int64 = -1, 0
	type open struct {
		name string
		t    int64
	}
	for _, tk := range t.Tracks() {
		w := WorkerIndex(tk.Index)
		var ws WorkerStat
		ws.Worker = w
		var stack []open
		for _, e := range tk.Events {
			s.Events++
			if t0 < 0 || e.T < t0 {
				t0 = e.T
			}
			if e.T > t1 {
				t1 = e.T
			}
			get := func() *PhaseStat {
				p := phases[e.Name]
				if p == nil {
					p = &PhaseStat{Phase: e.Name}
					phases[e.Name] = p
				}
				return p
			}
			switch e.Kind {
			case KindBegin:
				stack = append(stack, open{e.Name, e.T})
			case KindEnd:
				// Tolerate an unbalanced stream (aborted run): an E without
				// its B is counted but contributes no duration.
				p := get()
				p.Count++
				p.Bytes += e.V1
				for i := len(stack) - 1; i >= 0; i-- {
					if stack[i].name == e.Name {
						p.Seconds += float64(e.T-stack[i].t) / 1e9
						stack = append(stack[:i], stack[i+1:]...)
						break
					}
				}
				if w >= 0 {
					ws.Spans++
				}
			case KindInstant:
				p := get()
				p.Count++
				p.Bytes += e.V1
			case KindCounter:
				if w >= 0 {
					if e.V1 > ws.PeakStack {
						ws.PeakStack = e.V1
					}
					if e.V2 > ws.PeakActive {
						ws.PeakActive = e.V2
					}
				}
			}
		}
		if w >= 0 {
			s.PerWorker = append(s.PerWorker, ws)
			s.Workers++
		}
	}
	if t0 >= 0 && t1 > t0 {
		s.WallSeconds = float64(t1-t0) / 1e9
	}
	for _, p := range phases {
		s.Phases = append(s.Phases, *p)
	}
	sort.Slice(s.Phases, func(i, j int) bool { return s.Phases[i].Phase < s.Phases[j].Phase })
	sort.Slice(s.PerWorker, func(i, j int) bool { return s.PerWorker[i].Worker < s.PerWorker[j].Worker })
	return s
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges with # HELP/# TYPE
// headers, per-phase series labelled {phase="..."} and per-worker series
// labelled {worker="..."}. A solve server serves exactly this body on
// its /metrics endpoint.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	p := func(format string, args ...any) { fmt.Fprintf(bw, format, args...) }
	head := func(name, help, typ string) {
		p("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	head("mf_factor_entries_total", "Factor storage produced (model entries).", "counter")
	p("mf_factor_entries_total %d\n", s.Stats.FactorEntries)
	head("mf_fronts_total", "Fronts processed.", "counter")
	p("mf_fronts_total %d\n", s.Stats.Fronts)
	head("mf_assembly_ops_total", "Extend-add operations.", "counter")
	p("mf_assembly_ops_total %d\n", s.Stats.AssemblyOps)
	head("mf_max_front_order", "Largest front order.", "gauge")
	p("mf_max_front_order %d\n", s.Stats.MaxFront)
	head("mf_peak_stack_entries", "Max over workers of the stack+front peak (model entries).", "gauge")
	p("mf_peak_stack_entries %d\n", s.Stats.PeakStack)
	head("mf_resident_peak_entries", "Whole-process resident peak: fronts + CBs + store-owned factor blocks (model entries).", "gauge")
	p("mf_resident_peak_entries %d\n", s.Stats.ResidentPeak)
	head("mf_final_stack_entries", "Stack entries left at the end of the factorization.", "gauge")
	p("mf_final_stack_entries %d\n", s.Stats.FinalStack)
	if s.Stats.Kernel != "" {
		head("mf_kernel_info", "Kernel family the run used (value is always 1).", "gauge")
		p("mf_kernel_info{kernel=%q} 1\n", s.Stats.Kernel)
	}
	head("mf_workers", "Worker tracks recorded.", "gauge")
	p("mf_workers %d\n", s.Workers)
	head("mf_trace_events_total", "Events the tracer recorded.", "counter")
	p("mf_trace_events_total %d\n", s.Events)
	head("mf_wall_seconds", "First-to-last event wall time.", "gauge")
	p("mf_wall_seconds %g\n", s.WallSeconds)

	if len(s.Phases) > 0 {
		head("mf_phase_seconds_total", "Summed span duration per phase.", "counter")
		for _, ph := range s.Phases {
			p("mf_phase_seconds_total{phase=%q} %g\n", ph.Phase, ph.Seconds)
		}
		head("mf_phase_count_total", "Completed spans / instants per phase.", "counter")
		for _, ph := range s.Phases {
			p("mf_phase_count_total{phase=%q} %d\n", ph.Phase, ph.Count)
		}
		head("mf_phase_bytes_total", "Byte payload per phase (OOC spill/read events).", "counter")
		for _, ph := range s.Phases {
			if ph.Bytes != 0 {
				p("mf_phase_bytes_total{phase=%q} %d\n", ph.Phase, ph.Bytes)
			}
		}
	}
	if len(s.PerWorker) > 0 {
		head("mf_worker_peak_active_entries", "Per-worker active-memory peak (model entries).", "gauge")
		for _, ws := range s.PerWorker {
			p("mf_worker_peak_active_entries{worker=\"%d\"} %d\n", ws.Worker, ws.PeakActive)
		}
		head("mf_worker_peak_stack_entries", "Per-worker CB-stack-only peak (model entries).", "gauge")
		for _, ws := range s.PerWorker {
			p("mf_worker_peak_stack_entries{worker=\"%d\"} %d\n", ws.Worker, ws.PeakStack)
		}
		head("mf_worker_spans_total", "Completed spans per worker.", "counter")
		for _, ws := range s.PerWorker {
			p("mf_worker_spans_total{worker=\"%d\"} %d\n", ws.Worker, ws.Spans)
		}
	}
	return bw.Flush()
}

// WriteJSON writes the snapshot as indented JSON — the same data the
// Prometheus rendering exposes, for programmatic consumers.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
