package trace

import (
	"sort"
	"sync"

	"repro/internal/memory"
)

// Collector maintains the running per-phase / per-worker aggregates of a
// tracer incrementally, so a Snapshot no longer requires a finished run:
// each scrape folds only the events recorded since the previous one
// (per-track cursors, O(new events) per call), tolerates spans still
// open mid-run (an open span contributes to PhaseStat.Open, never to
// Seconds or Count, until its End arrives — possibly in a later scrape),
// and is safe against worker goroutines appending concurrently (events
// are copied out under the track locks, folding happens under the
// collector's own lock, so concurrent scrapers serialize).
//
// One Collector serves one Tracer for the tracer's whole life; the
// observability server keeps one per registered run and answers every
// /metrics scrape from it.
type Collector struct {
	t *Tracer

	mu      sync.Mutex
	cursors []int        // per track: next event index to fold
	open    [][]openSpan // per track: spans begun but not yet ended
	phases  map[string]*PhaseStat
	workers []WorkerStat
	events  int64
	t0, t1  int64 // first/last folded timestamp (t0 < 0: nothing yet)
	buf     []Event
}

type openSpan struct {
	name string
	t    int64
}

// NewCollector returns a collector over t (nil t is valid: every scrape
// returns an empty snapshot).
func NewCollector(t *Tracer) *Collector {
	return &Collector{t: t, phases: map[string]*PhaseStat{}, t0: -1}
}

// foldLocked drains the tracks' new events into the running aggregates.
func (c *Collector) foldLocked() {
	n := c.t.trackCount()
	for len(c.cursors) < n {
		c.cursors = append(c.cursors, 0)
		c.open = append(c.open, nil)
	}
	for len(c.workers) < n-trackWorker {
		c.workers = append(c.workers, WorkerStat{Worker: len(c.workers)})
	}
	for i := 0; i < n; i++ {
		c.buf = c.t.copyFrom(i, c.cursors[i], c.buf[:0])
		c.cursors[i] += len(c.buf)
		w := WorkerIndex(i)
		for _, e := range c.buf {
			c.foldEvent(i, w, e)
		}
	}
}

func (c *Collector) foldEvent(track, w int, e Event) {
	c.events++
	if c.t0 < 0 || e.T < c.t0 {
		c.t0 = e.T
	}
	if e.T > c.t1 {
		c.t1 = e.T
	}
	get := func() *PhaseStat {
		p := c.phases[e.Name]
		if p == nil {
			p = &PhaseStat{Phase: e.Name}
			c.phases[e.Name] = p
		}
		return p
	}
	switch e.Kind {
	case KindBegin:
		c.open[track] = append(c.open[track], openSpan{e.Name, e.T})
	case KindEnd:
		// Tolerate an unbalanced stream (aborted run, foreign writer): an
		// E without its B is counted but contributes no duration.
		p := get()
		p.Count++
		p.Bytes += e.V1
		stack := c.open[track]
		for i := len(stack) - 1; i >= 0; i-- {
			if stack[i].name == e.Name {
				p.Seconds += float64(e.T-stack[i].t) / 1e9
				c.open[track] = append(stack[:i], stack[i+1:]...)
				break
			}
		}
		if w >= 0 {
			c.workers[w].Spans++
		}
	case KindInstant:
		p := get()
		p.Count++
		p.Bytes += e.V1
	case KindCounter:
		if w >= 0 {
			if e.V1 > c.workers[w].PeakStack {
				c.workers[w].PeakStack = e.V1
			}
			if e.V2 > c.workers[w].PeakActive {
				c.workers[w].PeakActive = e.V2
			}
		}
	}
}

// snapshotLocked assembles a Snapshot from the folded state. endNs < 0
// clips the wall time at the last recorded event (post-mortem); a
// nonnegative endNs extends it to that clock reading (live scrape).
func (c *Collector) snapshotLocked(stats memory.ExecStats, pr ProgressSnapshot, endNs int64) Snapshot {
	s := Snapshot{Stats: stats, Events: c.events, Workers: len(c.workers)}
	s.Phases = make([]PhaseStat, 0, len(c.phases))
	for _, p := range c.phases {
		s.Phases = append(s.Phases, *p)
	}
	// Spans open right now surface as PhaseStat.Open — visible in a live
	// scrape, zero again once their End events are folded. A phase whose
	// only span is still open gets an entry of its own.
	idx := map[string]int{}
	for i := range s.Phases {
		idx[s.Phases[i].Phase] = i
	}
	for _, stack := range c.open {
		for _, o := range stack {
			i, ok := idx[o.name]
			if !ok {
				i = len(s.Phases)
				s.Phases = append(s.Phases, PhaseStat{Phase: o.name})
				idx[o.name] = i
			}
			s.Phases[i].Open++
		}
	}
	sort.Slice(s.Phases, func(i, j int) bool { return s.Phases[i].Phase < s.Phases[j].Phase })
	s.PerWorker = append([]WorkerStat(nil), c.workers...)
	if c.t0 >= 0 {
		end := c.t1
		if endNs > end {
			end = endNs
		}
		if end > c.t0 {
			s.WallSeconds = float64(end-c.t0) / 1e9
		}
	}
	if pr.Active() {
		s.Progress = &pr
	}
	return s
}

// Scrape folds the new events and returns the live snapshot: wall time
// extends to "now" (the tracer clock), and the ExecStats slots that are
// only known at completion are synthesized from the trace so far —
// ResidentPeak is the exact maximum the resident meter has reached yet
// (the observers sample every mutation), Fronts counts completed fronts,
// FactorEntries is derived from the factor-put byte payloads, and
// PeakStack is the max per-worker active peak so far.
func (c *Collector) Scrape() Snapshot {
	if c.t == nil {
		return Snapshot{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.foldLocked()
	endNs := c.t.clock()
	pr := c.t.Progress()
	stats := memory.ExecStats{
		ResidentPeak: pr.ResidentPeakEntries,
		Fronts:       int(pr.FrontsDone),
	}
	if p := c.phases[EvPut]; p != nil {
		stats.FactorEntries = p.Bytes / 8
	}
	for _, ws := range c.workers {
		if ws.PeakActive > stats.PeakStack {
			stats.PeakStack = ws.PeakActive
		}
	}
	return c.snapshotLocked(stats, pr, endNs)
}

// Final folds any remaining events and returns the completed-run
// snapshot with the executor's authoritative stats: wall time stops at
// the last recorded event, exactly like Tracer.Snapshot.
func (c *Collector) Final(stats memory.ExecStats) Snapshot {
	if c.t == nil {
		return Snapshot{Stats: stats}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.foldLocked()
	return c.snapshotLocked(stats, c.t.Progress(), -1)
}
