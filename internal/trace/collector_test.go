package trace

import (
	"sync"
	"testing"

	"repro/internal/memory"
)

// TestSnapshotHalfOpenTrack pins the satellite-2 fix: a live scrape over
// a track whose outer span is still open must not corrupt Seconds/Count
// for any phase, must surface the open span, and must extend the wall
// clock to "now" rather than stopping at the last recorded event.
func TestSnapshotHalfOpenTrack(t *testing.T) {
	tr := New(1)
	tr.clock = fakeClock() // +1000 ns per reading

	tr.Begin(0, SpanTask, 7)   // t=1000, never ended
	tr.Begin(0, SpanFactor, 7) // t=2000
	tr.End(0, SpanFactor, 7)   // t=3000

	c := NewCollector(tr)
	s := c.Scrape() // folds 3 events, then reads clock: end=4000

	var task, factor *PhaseStat
	for i := range s.Phases {
		switch s.Phases[i].Phase {
		case SpanTask:
			task = &s.Phases[i]
		case SpanFactor:
			factor = &s.Phases[i]
		}
	}
	if factor == nil || factor.Count != 1 || factor.Seconds != 1000e-9 || factor.Open != 0 {
		t.Fatalf("factor phase = %+v, want Count 1, Seconds 1e-6, Open 0", factor)
	}
	if task == nil || task.Count != 0 || task.Seconds != 0 || task.Open != 1 {
		t.Fatalf("task phase = %+v, want Count 0, Seconds 0, Open 1 (still running)", task)
	}
	if want := 3000e-9; s.WallSeconds != want {
		t.Fatalf("live WallSeconds = %g, want %g (first event to scrape time)", s.WallSeconds, want)
	}

	// Closing the span in a later scrape window credits the full duration
	// from the original Begin, and Open drops back to zero. (The scrape
	// above consumed two clock ticks — endNs and the progress read — so
	// the End lands at t=6000.)
	tr.End(0, SpanTask, 7) // t=6000
	s = c.Scrape()
	for _, ph := range s.Phases {
		if ph.Phase == SpanTask {
			if ph.Count != 1 || ph.Seconds != 5000e-9 || ph.Open != 0 {
				t.Fatalf("task after close = %+v, want Count 1, Seconds 5e-6, Open 0", ph)
			}
		}
	}

	// Post-mortem Snapshot clips the wall at the last event, as before.
	fin := tr.Snapshot(memory.ExecStats{})
	if want := 5000e-9; fin.WallSeconds != want {
		t.Fatalf("final WallSeconds = %g, want %g", fin.WallSeconds, want)
	}
	if fin.Events != 4 {
		t.Fatalf("final Events = %d, want 4", fin.Events)
	}
}

// TestCollectorIncrementalMatchesFull: folding a run across many scrape
// windows must land on exactly the aggregates a single post-mortem
// Snapshot computes.
func TestCollectorIncrementalMatchesFull(t *testing.T) {
	tr := scenario()
	c := NewCollector(tr)
	c.Scrape() // partial fold mid-history is exercised by re-scraping below

	stats := execStatsForTest()
	got := c.Final(stats)
	want := tr.Snapshot(stats)

	if got.Events != want.Events || got.Workers != want.Workers || got.WallSeconds != want.WallSeconds {
		t.Fatalf("header mismatch: got {ev %d w %d wall %g}, want {ev %d w %d wall %g}",
			got.Events, got.Workers, got.WallSeconds, want.Events, want.Workers, want.WallSeconds)
	}
	if len(got.Phases) != len(want.Phases) {
		t.Fatalf("phase count %d != %d", len(got.Phases), len(want.Phases))
	}
	for i := range got.Phases {
		if got.Phases[i] != want.Phases[i] {
			t.Fatalf("phase %d: got %+v, want %+v", i, got.Phases[i], want.Phases[i])
		}
	}
	for i := range got.PerWorker {
		if got.PerWorker[i] != want.PerWorker[i] {
			t.Fatalf("worker %d: got %+v, want %+v", i, got.PerWorker[i], want.PerWorker[i])
		}
	}
}

// TestCollectorConcurrentScrape hammers Scrape while workers append —
// meaningful under -race; also checks flops-done monotonicity across
// scrapes, the property the CI smoke step asserts over HTTP.
func TestCollectorConcurrentScrape(t *testing.T) {
	tr := New(4)
	tr.SetTotals(400, 400_000)
	c := NewCollector(tr)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Begin(w, SpanTask, i)
				tr.Begin(w, SpanFactor, i)
				tr.End(w, SpanFactor, i)
				tr.Instant(w, EvPut, i, 64)
				tr.End(w, SpanTask, i)
				tr.FrontDone(1000)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	var lastFlops int64 = -1
	for {
		s := c.Scrape()
		if s.Progress == nil {
			t.Error("progress missing from live scrape")
			break
		}
		if s.Progress.FlopsDone < lastFlops {
			t.Errorf("flops done went backwards: %d -> %d", lastFlops, s.Progress.FlopsDone)
		}
		lastFlops = s.Progress.FlopsDone
		select {
		case <-done:
			s = c.Scrape()
			if got := s.Progress.FlopsDone; got != 400_000 {
				t.Fatalf("final flops done = %d, want 400000", got)
			}
			if got := s.Phases; len(got) == 0 {
				t.Fatal("no phases folded")
			}
			for _, ph := range s.Phases {
				if ph.Open != 0 {
					t.Fatalf("phase %s still open after all workers finished: %+v", ph.Phase, ph)
				}
				if ph.Count != 400 {
					t.Fatalf("phase %s count = %d, want 400", ph.Phase, ph.Count)
				}
			}
			return
		default:
		}
	}
}

// TestScrapeSynthesizedStats pins the live-ExecStats synthesis: resident
// peak mirrors the meter observer exactly, factor entries derive from
// put payloads, fronts from the progress ledger.
func TestScrapeSynthesizedStats(t *testing.T) {
	tr := New(1)
	tr.clock = fakeClock()
	tr.SetTotals(3, 300)

	obs := tr.MeterObserver()
	obs(100)
	obs(250)
	obs(40)

	tr.Instant(0, EvPut, 1, 64) // 8 entries
	tr.FrontDone(100)

	s := NewCollector(tr).Scrape()
	if s.Stats.ResidentPeak != 250 {
		t.Fatalf("live ResidentPeak = %d, want 250", s.Stats.ResidentPeak)
	}
	if s.Stats.FactorEntries != 8 {
		t.Fatalf("live FactorEntries = %d, want 8", s.Stats.FactorEntries)
	}
	if s.Stats.Fronts != 1 {
		t.Fatalf("live Fronts = %d, want 1", s.Stats.Fronts)
	}
	if s.Progress == nil || s.Progress.ResidentEntries != 40 || s.Progress.ResidentPeakEntries != 250 {
		t.Fatalf("progress resident mirror = %+v, want cur 40 peak 250", s.Progress)
	}
}

// TestProgressLedger covers arming, ratio weighting, ETA, and re-arming
// (a tracer reused for a second factorization starts clean).
func TestProgressLedger(t *testing.T) {
	tr := New(1)
	tr.clock = fakeClock()

	if p := tr.Progress(); p.Active() {
		t.Fatalf("idle tracer reports active progress: %+v", p)
	}
	tr.SetTotals(4, 1000)
	tr.FrontDone(250) // 25% by flops even though 1/4 fronts = 25% too
	tr.FrontDone(250)
	p := tr.Progress()
	if p.Ratio != 0.5 {
		t.Fatalf("ratio = %g, want 0.5", p.Ratio)
	}
	if p.ElapsedSeconds <= 0 {
		t.Fatalf("elapsed = %g, want > 0", p.ElapsedSeconds)
	}
	if want := p.ElapsedSeconds; p.ETASeconds != want {
		t.Fatalf("eta = %g, want %g (linear at 50%%)", p.ETASeconds, want)
	}

	// Flop denominator unknown: falls back to front-weighted.
	tr.SetTotals(10, 0)
	tr.FrontDone(0)
	if p := tr.Progress(); p.Ratio != 0.1 {
		t.Fatalf("front-weighted ratio = %g, want 0.1", p.Ratio)
	}

	// Nil tracer: all no-ops.
	var nilTr *Tracer
	nilTr.SetTotals(1, 1)
	nilTr.FrontDone(1)
	if p := nilTr.Progress(); p != (ProgressSnapshot{}) {
		t.Fatalf("nil tracer progress = %+v", p)
	}
}
