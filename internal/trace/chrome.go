package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteChromeTrace writes the recorded run as Chrome trace_event JSON
// (the "JSON array format"): load the file in chrome://tracing or
// https://ui.perfetto.dev. Each tracer track becomes one thread (tid) of
// one process — worker spans nest on their worker's thread, the OOC
// store has its own thread, and the memory samples become counter
// events: one "resident" counter for the global gauge and a
// "mem worker N" counter with stack/active series per worker, so the
// per-processor memory timelines of the paper's figures render as
// counter tracks above the span rows.
//
// Timestamps are microseconds (Chrome's unit) with the tracer's
// nanosecond resolution preserved as fractions.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	first := true
	emit := func(e chromeEvent) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}
	for _, tk := range t.Tracks() {
		// Name the thread; sort_index keeps global/store/workers in order.
		if err := emit(chromeEvent{Name: "thread_name", Ph: "M", Pid: 1, Tid: tk.Index,
			Args: map[string]any{"name": tk.Name}}); err != nil {
			return err
		}
		if err := emit(chromeEvent{Name: "thread_sort_index", Ph: "M", Pid: 1, Tid: tk.Index,
			Args: map[string]any{"sort_index": tk.Index}}); err != nil {
			return err
		}
		worker := WorkerIndex(tk.Index)
		for _, e := range tk.Events {
			ts := float64(e.T) / 1e3
			var ce chromeEvent
			switch e.Kind {
			case KindBegin:
				ce = chromeEvent{Name: e.Name, Cat: "span", Ph: "B", Ts: &ts, Pid: 1, Tid: tk.Index}
				if e.Node >= 0 {
					ce.Args = map[string]any{"node": e.Node}
				}
			case KindEnd:
				ce = chromeEvent{Name: e.Name, Cat: "span", Ph: "E", Ts: &ts, Pid: 1, Tid: tk.Index}
				if e.V1 != 0 {
					ce.Args = map[string]any{"bytes": e.V1}
				}
			case KindInstant:
				ce = chromeEvent{Name: e.Name, Cat: "event", Ph: "i", S: "t", Ts: &ts, Pid: 1, Tid: tk.Index}
				args := map[string]any{}
				if e.Node >= 0 {
					args["node"] = e.Node
				}
				if e.V1 != 0 {
					args["bytes"] = e.V1
				}
				if len(args) > 0 {
					ce.Args = args
				}
			case KindCounter:
				// Counter names are process-scoped in the trace viewer;
				// qualify per-worker samples with the worker id.
				name := e.Name
				var args map[string]any
				if worker >= 0 {
					name = CounterMem + " worker " + strconv.Itoa(worker)
					args = map[string]any{"stack": e.V1, "active": e.V2}
				} else {
					args = map[string]any{"entries": e.V1}
				}
				ce = chromeEvent{Name: name, Cat: "memory", Ph: "C", Ts: &ts, Pid: 1, Tid: tk.Index, Args: args}
			default:
				continue
			}
			if err := emit(ce); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// chromeEvent is one trace_event record. Ts is a pointer so metadata
// events (ph "M") omit it entirely.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	S    string         `json:"s,omitempty"`
	Ts   *float64       `json:"ts,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ValidateChromeTrace checks that data is a structurally sound Chrome
// trace: valid JSON array; every event has a name and a known phase;
// per (pid, tid) track, timestamps are nondecreasing and B/E span events
// balance like a call stack (an E always closes the innermost open B of
// the same name, and nothing stays open at the end). The CI smoke step
// and the golden tests run real CLI output through it.
func ValidateChromeTrace(data []byte) error {
	var events []chromeEvent
	if err := json.Unmarshal(data, &events); err != nil {
		return fmt.Errorf("trace: invalid JSON: %w", err)
	}
	type key struct{ pid, tid int }
	lastTs := map[key]float64{}
	stacks := map[key][]string{}
	for i, e := range events {
		if e.Name == "" {
			return fmt.Errorf("trace: event %d has no name", i)
		}
		switch e.Ph {
		case "M":
			continue // metadata carries no timestamp
		case "B", "E", "i", "C", "X":
		default:
			return fmt.Errorf("trace: event %d (%q) has unknown phase %q", i, e.Name, e.Ph)
		}
		if e.Ts == nil {
			return fmt.Errorf("trace: event %d (%q, ph %s) has no ts", i, e.Name, e.Ph)
		}
		k := key{e.Pid, e.Tid}
		if last, ok := lastTs[k]; ok && *e.Ts < last {
			return fmt.Errorf("trace: event %d (%q) on pid %d tid %d goes back in time (%.3f < %.3f)",
				i, e.Name, e.Pid, e.Tid, *e.Ts, last)
		}
		lastTs[k] = *e.Ts
		switch e.Ph {
		case "B":
			stacks[k] = append(stacks[k], e.Name)
		case "E":
			st := stacks[k]
			if len(st) == 0 {
				return fmt.Errorf("trace: event %d: E %q on pid %d tid %d with no open span", i, e.Name, e.Pid, e.Tid)
			}
			if top := st[len(st)-1]; top != e.Name {
				return fmt.Errorf("trace: event %d: E %q does not match open span %q on pid %d tid %d",
					i, e.Name, top, e.Pid, e.Tid)
			}
			stacks[k] = st[:len(st)-1]
		}
	}
	for k, st := range stacks {
		if len(st) > 0 {
			return fmt.Errorf("trace: pid %d tid %d ends with %d unclosed span(s), innermost %q",
				k.pid, k.tid, len(st), st[len(st)-1])
		}
	}
	return nil
}
