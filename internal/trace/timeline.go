package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Point is one sample of a memory series: value v (model entries) from
// time T (ns since tracer start) until the next point.
type Point struct {
	T int64
	V int64
}

// Series is one reconstructed memory timeline.
type Series struct {
	// Name is "resident" for the global gauge, "worker N" otherwise.
	Name string
	// Worker is the worker id, or -1 for the global resident series.
	Worker int
	// Stack holds the CB-stack-only samples (empty for the global series).
	Stack []Point
	// Active holds the stack+fronts samples (resident gauge for global).
	Active []Point
}

// Peak returns the series' maximum active value.
func (s Series) Peak() int64 {
	var m int64
	for _, p := range s.Active {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// MemorySeries reconstructs the memory timelines from the recorded
// counter samples: the global resident series first, then one series
// per worker in id order. Because the samples come from the meter and
// tracker observers (one per mutation, emitted under the instruments'
// locks), the global series' maximum equals ExecStats.ResidentPeak and
// each worker series' maximum equals that worker's active peak, exactly.
func (t *Tracer) MemorySeries() []Series {
	if t == nil {
		return nil
	}
	var out []Series
	for _, tk := range t.Tracks() {
		w := WorkerIndex(tk.Index)
		s := Series{Worker: w}
		if tk.Index == TrackGlobal {
			s.Name = "resident"
		} else if w >= 0 {
			s.Name = tk.Name
		} else {
			continue // store track carries no counters
		}
		for _, e := range tk.Events {
			if e.Kind != KindCounter {
				continue
			}
			if w >= 0 {
				s.Stack = append(s.Stack, Point{T: e.T, V: e.V1})
				s.Active = append(s.Active, Point{T: e.T, V: e.V2})
			} else {
				s.Active = append(s.Active, Point{T: e.T, V: e.V1})
			}
		}
		out = append(out, s)
	}
	return out
}

// EndNs returns the timestamp of the last recorded event (ns), the
// natural right edge for rendering timelines.
func (t *Tracer) EndNs() int64 {
	var end int64
	if t == nil {
		return 0
	}
	for _, tk := range t.Tracks() {
		if n := len(tk.Events); n > 0 {
			if last := tk.Events[n-1].T; last > end {
				end = last
			}
		}
	}
	return end
}

// WriteMemoryCSV writes every memory series as CSV with columns
// series,t_ns,stack_entries,active_entries — the raw data behind the
// sparklines, one row per recorded sample (the global resident series
// leaves stack_entries empty). It replaces the simulator-only trace
// export: the same plot scripts consume either.
func (t *Tracer) WriteMemoryCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "series,t_ns,stack_entries,active_entries"); err != nil {
		return err
	}
	for _, s := range t.MemorySeries() {
		for i, p := range s.Active {
			stack := ""
			if i < len(s.Stack) {
				stack = fmt.Sprintf("%d", s.Stack[i].V)
			}
			if _, err := fmt.Fprintf(bw, "%s,%d,%s,%d\n", s.Name, p.T, stack, p.V); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Sparkline renders points as a cols-wide ASCII strip: each column shows
// the maximum value inside its time bucket on the ' .:-=+*#%@' ramp,
// scaled to max (values at or above max render '@'). end is the
// timeline's right edge in ns; samples hold their value until the next
// one, exactly like the simulator's trace renderer, so predicted and
// measured strips are visually comparable.
func Sparkline(points []Point, cols int, end, max int64) string {
	ramp := []byte(" .:-=+*#%@")
	if cols <= 0 {
		return ""
	}
	if len(points) == 0 {
		return strings.Repeat(" ", cols)
	}
	if end <= 0 {
		end = 1
	}
	if max <= 0 {
		max = 1
	}
	buckets := make([]int64, cols)
	var cur int64
	bi := 0
	for _, p := range points {
		idx := int(p.T * int64(cols) / end)
		if idx >= cols {
			idx = cols - 1
		}
		for bi < idx {
			bi++
			buckets[bi] = cur
		}
		if p.V > buckets[idx] {
			buckets[idx] = p.V
		}
		cur = p.V
	}
	for bi+1 < cols {
		bi++
		buckets[bi] = cur
	}
	out := make([]byte, cols)
	for i, v := range buckets {
		k := int(v * int64(len(ramp)-1) / max)
		if k >= len(ramp) {
			k = len(ramp) - 1
		}
		out[i] = ramp[k]
	}
	return string(out)
}
