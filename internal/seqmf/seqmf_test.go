package seqmf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/assembly"
	"repro/internal/order"
	"repro/internal/sparse"
)

func residual(a *sparse.CSC, x, b []float64) float64 {
	ax := a.MulVec(x)
	var rn, bn float64
	for i := range b {
		d := ax[i] - b[i]
		rn += d * d
		bn += b[i] * b[i]
	}
	if bn == 0 {
		return math.Sqrt(rn)
	}
	return math.Sqrt(rn / bn)
}

func solveAndCheck(t *testing.T, a *sparse.CSC, m order.Method, tol float64) *Factors {
	t.Helper()
	tree, pa := assembly.Analyze(a, assembly.DefaultOptions(m))
	assembly.SortChildrenLiu(tree)
	f, err := Factorize(pa, tree, DefaultOptions())
	if err != nil {
		t.Fatalf("%v: %v", m, err)
	}
	rng := rand.New(rand.NewSource(99))
	b := make([]float64, a.N)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, err := f.SolveOriginal(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := residual(a, x, b); r > tol {
		t.Fatalf("%v: residual %g > %g", m, r, tol)
	}
	return f
}

func TestSolveSPDGridAllOrderings(t *testing.T) {
	a := sparse.Grid2D(12, 12)
	for _, m := range order.Methods {
		solveAndCheck(t, a, m, 1e-8)
	}
}

func TestSolveSPD3D(t *testing.T) {
	solveAndCheck(t, sparse.Grid3D(6, 6, 6), order.ND, 1e-8)
}

func TestSolveUnsymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := sparse.Grid3DUnsym(5, 5, 5, rng)
	for _, m := range order.Methods {
		solveAndCheck(t, a, m, 1e-8)
	}
}

func TestSolveCircuit(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := sparse.CircuitUnsym(200, 150, 2, rng)
	solveAndCheck(t, a, order.AMD, 1e-7)
}

func TestSolveShell(t *testing.T) {
	solveAndCheck(t, sparse.Shell(6, 6, 3), order.PORD, 1e-8)
}

func TestMeasuredPeakMatchesModel(t *testing.T) {
	// The factorization's measured stack peak must equal the sequential
	// peak predicted by the assembly cost model with the same child order.
	for _, m := range []order.Method{order.AMD, order.ND} {
		a := sparse.Grid2D(10, 10)
		tree, pa := assembly.Analyze(a, assembly.DefaultOptions(m))
		peaks := assembly.SortChildrenLiu(tree)
		want := assembly.TreePeak(peaks, tree)
		f, err := Factorize(pa, tree, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if f.Stats.PeakStack != want {
			t.Errorf("%v: measured peak %d != model %d", m, f.Stats.PeakStack, want)
		}
		if f.Stats.FinalStack != 0 {
			t.Errorf("%v: %d entries left on stack", m, f.Stats.FinalStack)
		}
	}
}

func TestFactorEntriesMatchModel(t *testing.T) {
	a := sparse.Grid2D(9, 9)
	tree, pa := assembly.Analyze(a, assembly.DefaultOptions(order.AMD))
	f, err := Factorize(pa, tree, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if f.Stats.FactorEntries != assembly.TotalFactorEntries(tree) {
		t.Errorf("factor entries %d != model %d", f.Stats.FactorEntries, assembly.TotalFactorEntries(tree))
	}
	if f.Stats.Fronts != tree.Len() {
		t.Errorf("fronts %d != nodes %d", f.Stats.Fronts, tree.Len())
	}
}

func TestLiuOrderingReducesMeasuredPeak(t *testing.T) {
	// On a tree where Liu reordering helps, the *measured* peak must drop
	// accordingly (model and measurement move together).
	a := sparse.Grid3D(5, 5, 5)
	tree, pa := assembly.Analyze(a, assembly.DefaultOptions(order.AMF))
	f1, err := Factorize(pa, tree, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	assembly.SortChildrenLiu(tree)
	f2, err := Factorize(pa, tree, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if f2.Stats.PeakStack > f1.Stats.PeakStack {
		t.Errorf("Liu ordering increased measured peak: %d -> %d",
			f1.Stats.PeakStack, f2.Stats.PeakStack)
	}
}

func TestSolvePermutedVsOriginal(t *testing.T) {
	a := sparse.Grid2D(8, 8)
	tree, pa := assembly.Analyze(a, assembly.DefaultOptions(order.AMD))
	f, err := Factorize(pa, tree, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.N)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	x, err := f.SolveOriginal(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := residual(a, x, b); r > 1e-9 {
		t.Errorf("residual %g", r)
	}
}

func TestFactorizeErrors(t *testing.T) {
	a := sparse.Grid2D(4, 4)
	tree, pa := assembly.Analyze(a, assembly.DefaultOptions(order.AMD))
	pat := pa.Clone()
	pat.Val = nil
	if _, err := Factorize(pat, tree, DefaultOptions()); err == nil {
		t.Error("pattern-only matrix accepted")
	}
	small, _ := assembly.Analyze(sparse.Grid2D(2, 2), assembly.DefaultOptions(order.AMD))
	if _, err := Factorize(pa, small, DefaultOptions()); err == nil {
		t.Error("mismatched tree accepted")
	}
	if _, err := (&Factors{N: 4}).Solve(make([]float64, 3)); err == nil {
		t.Error("short rhs accepted")
	}
}

func TestSolveOnSplitTree(t *testing.T) {
	// Numeric factorization must remain correct on a split tree (chain
	// links tile the same pivots).
	a := sparse.Grid2D(14, 14)
	tree, pa := assembly.Analyze(a, assembly.DefaultOptions(order.ND))
	nt, count := assembly.Split(tree, assembly.SplitOptions{MaxMasterEntries: 300, MinPiv: 3})
	if count == 0 {
		t.Skip("nothing split at this size")
	}
	f, err := Factorize(pa, nt, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.N)
	for i := range b {
		b[i] = 1
	}
	x, err := f.SolveOriginal(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := residual(a, x, b); r > 1e-8 {
		t.Errorf("split-tree residual %g", r)
	}
}

func TestSolvePropertyRandomSPD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(80)
		a := sparse.RandomSPDPattern(n, 3, rng)
		tree, pa := assembly.Analyze(a, assembly.DefaultOptions(order.AMD))
		fac, err := Factorize(pa, tree, DefaultOptions())
		if err != nil {
			return false
		}
		x0 := make([]float64, n)
		for i := range x0 {
			x0[i] = rng.NormFloat64()
		}
		b := a.MulVec(x0)
		x, err := fac.SolveOriginal(b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-x0[i]) > 1e-6*(1+math.Abs(x0[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
