// Package seqmf is the sequential numeric multifrontal solver: it factors a
// permuted sparse matrix by walking the assembly tree in postorder,
// assembling each front (original entries + children contribution blocks
// via extend-add), running a partial dense factorization, and stacking the
// contribution block for the parent — exactly the storage scheme of
// Section 2 of the paper (factors area / CB stack / active front).
//
// Symmetric positive definite matrices use partial Cholesky; unsymmetric
// matrices use partial LU on the symmetrized structure. Pivoting is static
// (see dense.ErrSmallPivot).
package seqmf

import (
	"fmt"

	"repro/internal/assembly"
	"repro/internal/dense"
	"repro/internal/sparse"
)

// Stats records the memory and work of a factorization, in the same units
// as the assembly cost model (logical entries: triangles for symmetric).
type Stats struct {
	FactorEntries int64 // total factor storage
	PeakStack     int64 // peak of CB stack + active front
	FinalStack    int64 // stack entries left at the end (root CBs; 0 normally)
	Fronts        int   // number of fronts processed
	MaxFront      int   // largest front order
	AssemblyOps   int64 // extend-add operations
}

// Factors holds the numeric factorization.
type Factors struct {
	Tree  *assembly.Tree
	Kind  sparse.Type
	N     int
	Stats Stats

	nodes []nodeFactor
	post  []int
}

type nodeFactor struct {
	rows []int // global front indices: pivot columns then CB rows
	npiv int
	l    *dense.Matrix // f x npiv lower trapezoid (diag: Cholesky=L(k,k), LU=1 implicit)
	u    *dense.Matrix // npiv x f upper trapezoid (LU only, holds U diag)
}

// Options configures the numeric factorization.
type Options struct {
	PivotTol float64 // minimum pivot magnitude for LU
}

// DefaultOptions returns the standard settings.
func DefaultOptions() Options { return Options{PivotTol: 1e-12} }

// Factorize factors the permuted matrix pa whose assembly tree is tree.
// pa must carry numerical values.
func Factorize(pa *sparse.CSC, tree *assembly.Tree, opt Options) (*Factors, error) {
	if !pa.HasValues() {
		return nil, fmt.Errorf("seqmf: matrix has no values")
	}
	if pa.N != tree.N {
		return nil, fmt.Errorf("seqmf: matrix order %d vs tree %d", pa.N, tree.N)
	}
	f := &Factors{
		Tree:  tree,
		Kind:  pa.Kind,
		N:     pa.N,
		nodes: make([]nodeFactor, tree.Len()),
		post:  tree.Postorder(),
	}
	var pat *sparse.CSC // transpose for the unsymmetric upper parts
	if pa.Kind == sparse.Unsymmetric {
		pat = sparse.Transpose(pa)
	}
	// colOwner: column -> node.
	colOwner := make([]int, pa.N)
	for i := range tree.Nodes {
		nd := &tree.Nodes[i]
		for j := nd.Begin; j < nd.End; j++ {
			colOwner[j] = i
		}
	}
	loc := make([]int, pa.N) // global -> local front index, stamped
	stamp := make([]int, pa.N)
	for i := range stamp {
		stamp[i] = -1
	}

	cbs := make([]*dense.Matrix, tree.Len()) // live contribution blocks
	var stack int64                          // live CB entries (model units)
	bump := func(cur int64) {
		if cur > f.Stats.PeakStack {
			f.Stats.PeakStack = cur
		}
	}

	for _, ni := range f.post {
		nd := &tree.Nodes[ni]
		npiv := nd.NPiv()
		nf := nd.NFront()
		rows := make([]int, 0, nf)
		for j := nd.Begin; j < nd.End; j++ {
			rows = append(rows, j)
		}
		rows = append(rows, nd.Rows...)
		for k, g := range rows {
			loc[g] = k
			stamp[g] = ni
		}

		front := dense.New(nf, nf)
		frontEntries := assembly.FrontEntries(nd, tree.Kind)
		bump(stack + frontEntries)

		// Scatter original entries owned by this node.
		for j := nd.Begin; j < nd.End; j++ {
			lj := loc[j]
			cols := pa.Col(j)
			vals := pa.ColVal(j)
			for p, i := range cols {
				if pa.Kind == sparse.Symmetric {
					if i < j {
						continue
					}
					front.Add(loc[i], lj, vals[p])
					continue
				}
				// Unsymmetric: entry (i,j) belongs here iff min(i,j) is ours,
				// i.e. i >= Begin (j is ours already).
				if i >= nd.Begin {
					if stamp[i] != ni {
						return nil, fmt.Errorf("seqmf: structure misses row %d in front %d", i, ni)
					}
					front.Add(loc[i], lj, vals[p])
				}
			}
			if pat != nil {
				// Row j entries (j, c) with c beyond this node's pivots.
				cols := pat.Col(j)
				vals := pat.ColVal(j)
				for p, c := range cols {
					if c < nd.End {
						continue // handled by a column scatter
					}
					if stamp[c] != ni {
						return nil, fmt.Errorf("seqmf: structure misses col %d in front %d", c, ni)
					}
					front.Add(lj, loc[c], vals[p])
				}
			}
		}

		// Extend-add children.
		for _, c := range nd.Children {
			cb := cbs[c]
			if cb == nil {
				return nil, fmt.Errorf("seqmf: child %d CB missing at node %d", c, ni)
			}
			child := &tree.Nodes[c]
			idx := make([]int, len(child.Rows))
			for k, g := range child.Rows {
				if stamp[g] != ni {
					return nil, fmt.Errorf("seqmf: child %d row %d not in parent %d front", c, g, ni)
				}
				idx[k] = loc[g]
			}
			if tree.Kind == sparse.Symmetric {
				dense.ExtendAddLower(front, cb, idx)
			} else {
				dense.ExtendAdd(front, cb, idx)
			}
			f.Stats.AssemblyOps += assembly.CBEntries(child, tree.Kind)
		}
		// Free children CBs now that the front is assembled.
		for _, c := range nd.Children {
			stack -= assembly.CBEntries(&tree.Nodes[c], tree.Kind)
			cbs[c] = nil
		}
		bump(stack + frontEntries)

		// Partial factorization.
		var err error
		if pa.Kind == sparse.Symmetric {
			err = dense.PartialCholesky(front, npiv)
		} else {
			err = dense.PartialLU(front, npiv, opt.PivotTol)
		}
		if err != nil {
			return nil, fmt.Errorf("seqmf: node %d (front %d, npiv %d): %w", ni, nf, npiv, err)
		}

		// Extract factor pieces.
		nfac := nodeFactor{rows: rows, npiv: npiv}
		nfac.l = dense.New(nf, npiv)
		for i := 0; i < nf; i++ {
			for k := 0; k < npiv && k <= i; k++ {
				nfac.l.Set(i, k, front.At(i, k))
			}
		}
		if pa.Kind == sparse.Unsymmetric {
			nfac.u = dense.New(npiv, nf)
			for k := 0; k < npiv; k++ {
				for j := k; j < nf; j++ {
					nfac.u.Set(k, j, front.At(k, j))
				}
			}
		}
		f.nodes[ni] = nfac
		f.Stats.FactorEntries += assembly.FactorEntries(nd, tree.Kind)
		f.Stats.Fronts++
		if nf > f.Stats.MaxFront {
			f.Stats.MaxFront = nf
		}

		// Stack the contribution block.
		ncb := nd.NCB()
		if ncb > 0 {
			cb := dense.New(ncb, ncb)
			for i := 0; i < ncb; i++ {
				for j := 0; j < ncb; j++ {
					if tree.Kind == sparse.Symmetric && j > i {
						continue
					}
					cb.Set(i, j, front.At(npiv+i, npiv+j))
				}
			}
			cbs[ni] = cb
			stack += assembly.CBEntries(nd, tree.Kind)
			bump(stack)
		}
	}
	f.Stats.FinalStack = stack
	return f, nil
}

// Solve solves A x = b for the permuted system (b and the result are in the
// permuted index space; see SolveOriginal for the original ordering).
// b is not modified.
func (f *Factors) Solve(b []float64) ([]float64, error) {
	if len(b) != f.N {
		return nil, fmt.Errorf("seqmf: rhs length %d, want %d", len(b), f.N)
	}
	x := append([]float64(nil), b...)
	// Forward: y = L^{-1} b, walking fronts in postorder.
	for _, ni := range f.post {
		nf := &f.nodes[ni]
		xl := gather(x, nf.rows)
		for k := 0; k < nf.npiv; k++ {
			if f.Kind == sparse.Symmetric {
				xl[k] /= nf.l.At(k, k)
			}
			v := xl[k]
			if v == 0 {
				continue
			}
			for i := k + 1; i < len(nf.rows); i++ {
				xl[i] -= nf.l.At(i, k) * v
			}
		}
		scatter(x, nf.rows, xl)
	}
	// Backward: x = U^{-1} y (or L^{-T} y), reverse postorder.
	for p := len(f.post) - 1; p >= 0; p-- {
		nf := &f.nodes[f.post[p]]
		xl := gather(x, nf.rows)
		for k := nf.npiv - 1; k >= 0; k-- {
			s := xl[k]
			if f.Kind == sparse.Symmetric {
				// Row k of L^T = column k of L.
				for i := k + 1; i < len(nf.rows); i++ {
					s -= nf.l.At(i, k) * xl[i]
				}
				xl[k] = s / nf.l.At(k, k)
			} else {
				for j := k + 1; j < len(nf.rows); j++ {
					s -= nf.u.At(k, j) * xl[j]
				}
				xl[k] = s / nf.u.At(k, k)
			}
		}
		scatter(x, nf.rows, xl)
	}
	return x, nil
}

// SolveOriginal solves for a right-hand side given in the *original*
// (pre-permutation) ordering, returning x in the original ordering.
func (f *Factors) SolveOriginal(b []float64) ([]float64, error) {
	perm := f.Tree.Perm
	if perm == nil {
		return f.Solve(b)
	}
	pb := make([]float64, len(b))
	for newI, oldI := range perm {
		pb[newI] = b[oldI]
	}
	px, err := f.Solve(pb)
	if err != nil {
		return nil, err
	}
	x := make([]float64, len(b))
	for newI, oldI := range perm {
		x[oldI] = px[newI]
	}
	return x, nil
}

func gather(x []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for k, g := range idx {
		out[k] = x[g]
	}
	return out
}

func scatter(x []float64, idx []int, v []float64) {
	for k, g := range idx {
		x[g] = v[k]
	}
}
