// Package seqmf is the sequential numeric multifrontal solver: it factors a
// permuted sparse matrix by walking the assembly tree in postorder,
// assembling each front (original entries + children contribution blocks
// via extend-add), running a partial dense factorization, and stacking the
// contribution block for the parent — exactly the storage scheme of
// Section 2 of the paper (factors area / CB stack / active front).
//
// The per-front kernels (assembly, partial factorization, extraction and
// the triangular solves) live in internal/front and are shared with the
// shared-memory parallel executor internal/parmf; this package contributes
// the postorder walk and the single-stack memory accounting.
//
// Factor blocks are owned by a front.Store, not by this package: the
// default in-memory store keeps them all resident (classic in-core
// execution), while an ooc.FileStore spills each block to disk as soon as
// it is produced, so only the stack stays in memory — the paper's
// out-of-core execution model. Stats.ResidentPeak measures the difference.
//
// Symmetric positive definite matrices use partial Cholesky; unsymmetric
// matrices use partial LU on the symmetrized structure. Pivoting is static
// (see dense.ErrSmallPivot).
package seqmf

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/assembly"
	"repro/internal/dense"
	"repro/internal/faults"
	"repro/internal/front"
	"repro/internal/memory"
	"repro/internal/sparse"
	"repro/internal/trace"
)

// Stats records the memory and work of a factorization in the
// executor-independent format shared with internal/parmf, in the units
// of the assembly cost model (logical entries: triangles for symmetric).
type Stats = memory.ExecStats

// Factors holds the numeric factorization.
type Factors struct {
	Tree  *assembly.Tree
	Kind  sparse.Type
	N     int
	Stats Stats

	store front.Store
	fs    *front.Factors // non-nil when store is the in-memory one
	kern  dense.Kernel   // kernel family the factorization ran with

	solveOnce sync.Once
	solver    *front.Solver
}

// Front exposes the in-memory per-node factor container (used by the
// parallel executor's cross-validation tests); nil when the
// factorization ran into an external store.
func (f *Factors) Front() *front.Factors { return f.fs }

// Store returns the factor store the blocks live in.
func (f *Factors) Store() front.Store { return f.store }

// Close releases the factor store (for a file-backed store: the spill
// file). The factors are unusable afterwards.
func (f *Factors) Close() error {
	if f.store == nil {
		return nil
	}
	return f.store.Close()
}

// Options configures the numeric factorization.
type Options struct {
	// PivotTol is the minimum pivot magnitude for LU.
	PivotTol float64
	// BlockRows, when positive, routes the partial factorizations through
	// the blocked (panel + row-block) dense kernels with this panel width
	// — the same numeric path the parallel executor's within-front tasks
	// use, and bitwise identical to the element-wise kernels (0).
	BlockRows int
	// Kernel selects the dense kernel family (dense.KernelDefault,
	// KernelFast, KernelSIMD, or KernelAuto, which resolves to SIMD when
	// the vector path is available and fast otherwise). The non-default
	// families trade the bitwise guarantee for speed, validated by
	// residual, and stay deterministic for a fixed BlockRows.
	Kernel dense.Kernel
	// FastKernels is the deprecated boolean form of Kernel=KernelFast; it
	// is honored only when Kernel is left at the default.
	FastKernels bool
	// Store receives each front's factor block the moment it is
	// extracted; nil keeps factors in memory (front.Factors).
	Store front.Store
	// Meter, when non-nil, replaces the internal resident-memory meter —
	// pass one to share accounting with an enclosing measurement.
	Meter *memory.Meter
	// Tracer, when non-nil, records front-phase spans (on worker track 0)
	// and resident-gauge counter samples from this run (see
	// internal/trace). nil disables tracing at zero cost.
	Tracer *trace.Tracer
	// Faults, when non-nil, arms deterministic fault injection at the
	// walk's task point (see internal/faults). nil is a zero-cost no-op.
	Faults *faults.Injector
}

// DefaultOptions returns the standard settings.
func DefaultOptions() Options { return Options{PivotTol: 1e-12} }

// Factorize factors the permuted matrix pa whose assembly tree is tree.
// pa must carry numerical values.
func Factorize(pa *sparse.CSC, tree *assembly.Tree, opt Options) (*Factors, error) {
	return FactorizeCtx(context.Background(), pa, tree, opt)
}

// FactorizeCtx is Factorize under a context: the walk checks ctx between
// fronts and returns a descriptive cancellation error naming how far it
// got; a bound fault-tolerant store (ooc.FileStore) stops its background
// goroutines promptly too. A Background context costs nothing.
func FactorizeCtx(ctx context.Context, pa *sparse.CSC, tree *assembly.Tree, opt Options) (*Factors, error) {
	sh, err := front.NewShared(pa, tree)
	if err != nil {
		return nil, err // already carries the front: context
	}
	f := &Factors{
		Tree: tree,
		Kind: pa.Kind,
		N:    pa.N,
	}
	kern := opt.Kernel
	if kern == dense.KernelDefault && opt.FastKernels {
		kern = dense.KernelFast
	}
	kern = kern.Resolve() // auto picks simd or fast here, so stats name the family that ran
	f.kern = kern
	f.Stats.Kernel = kern.String()
	var meter *memory.Meter
	f.store, f.fs, meter = front.ResolveStore(opt.Store, tree, pa.Kind, opt.Meter)
	front.BindStoreContext(ctx, f.store)
	tr := opt.Tracer
	if tr != nil {
		// The whole walk runs on one goroutine: all spans land on worker
		// track 0. The meter observer makes the trace's "resident" counter
		// the exact gauge history (its max == Stats.ResidentPeak). The
		// progress ledger gets the analysis-time denominators so a live
		// scrape can report completion and an ETA.
		tr.EnsureWorkers(1)
		meter.Observe(tr.MeterObserver())
		tr.SetTotals(int64(tree.Len()), assembly.TotalFlops(tree))
	}
	asm := front.NewAssembler(sh)
	arena := front.NewArena() // fronts and CBs recycle through here

	cbs := make([]*dense.Matrix, tree.Len()) // live contribution blocks
	var stack int64                          // live CB entries (model units)
	bump := func(cur int64) {
		if cur > f.Stats.PeakStack {
			f.Stats.PeakStack = cur
		}
	}

	// processNode runs one front's numeric work with panic containment: a
	// kernel or assembly panic becomes a wrapped error naming the node
	// instead of killing the process.
	processNode := func(ni int) (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("seqmf: panic at node %d (phase factorize): %v", ni, p)
			}
		}()
		if err := opt.Faults.Check(faults.Task, ni); err != nil {
			return fmt.Errorf("seqmf: node %d: %w", ni, err)
		}
		nd := &tree.Nodes[ni]
		npiv := nd.NPiv()
		nf := nd.NFront()
		rows := asm.Begin(ni)

		fr := arena.Matrix(nf, nf)
		frontEntries := assembly.FrontEntries(nd, tree.Kind)
		meter.Add(frontEntries)
		bump(stack + frontEntries)

		tr.Begin(0, trace.SpanAssemble, ni)
		err = asm.Scatter(ni, fr)
		tr.End(0, trace.SpanAssemble, ni)
		if err != nil {
			return err
		}

		// Extend-add children, then free their CBs.
		if len(nd.Children) > 0 {
			tr.Begin(0, trace.SpanExtendAdd, ni)
			for _, c := range nd.Children {
				ops, err := asm.ExtendAdd(ni, fr, c, cbs[c])
				if err != nil {
					tr.End(0, trace.SpanExtendAdd, ni)
					return err
				}
				f.Stats.AssemblyOps += ops
			}
			tr.End(0, trace.SpanExtendAdd, ni)
		}
		for _, c := range nd.Children {
			ce := assembly.CBEntries(&tree.Nodes[c], tree.Kind)
			stack -= ce
			meter.Add(-ce)
			arena.Free(cbs[c])
			cbs[c] = nil
		}
		bump(stack + frontEntries)

		// Partial factorization.
		tr.Begin(0, trace.SpanFactor, ni)
		err = front.EliminateKernel(fr, npiv, pa.Kind, opt.PivotTol, opt.BlockRows, kern)
		tr.End(0, trace.SpanFactor, ni)
		if err != nil {
			return fmt.Errorf("seqmf: node %d (front %d, npiv %d): %w", ni, nf, npiv, err)
		}

		// The factor block becomes store-owned: resident until the store
		// lets go of it (never for in-memory, once spilled for OOC).
		fe := assembly.FactorEntries(nd, tree.Kind)
		if err := f.store.Put(ni, front.ExtractFactor(fr, rows, npiv, pa.Kind), fe); err != nil {
			return fmt.Errorf("seqmf: node %d: %w", ni, err)
		}
		tr.Instant(0, trace.EvPut, ni, fe*8)
		f.Stats.FactorEntries += fe
		f.Stats.Fronts++
		if nf > f.Stats.MaxFront {
			f.Stats.MaxFront = nf
		}
		meter.Add(-frontEntries)

		// Stack the contribution block; the dead front recycles.
		if cb := front.ExtractCB(arena, fr, npiv, nd.NCB(), tree.Kind); cb != nil {
			cbs[ni] = cb
			ce := assembly.CBEntries(nd, tree.Kind)
			stack += ce
			meter.Add(ce)
			bump(stack)
		}
		arena.Free(fr)
		tr.FrontDone(assembly.EliminationFlops(nd, tree.Kind))
		return nil
	}

	for k, ni := range tree.Postorder() {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("seqmf: cancelled at node %d (%d of %d fronts done): %w",
				ni, k, tree.Len(), context.Cause(ctx))
		}
		if err := processNode(ni); err != nil {
			return nil, err
		}
	}
	f.Stats.FinalStack = stack
	if err := f.store.Flush(); err != nil {
		return nil, fmt.Errorf("seqmf: flush factor store: %w", err)
	}
	f.Stats.Retries, f.Stats.DegradedBlocks = front.StoreFaultCounters(f.store)
	f.Stats.ResidentPeak = meter.Peak()
	return f, nil
}

// solve returns the lazily built reusable solver (cached walk orders and
// scratch panel) running the factorization's kernel family.
func (f *Factors) solve() *front.Solver {
	f.solveOnce.Do(func() { f.solver = front.NewSolver(f.store, f.Tree, f.Kind, f.kern) })
	return f.solver
}

// Solve solves A x = b for the permuted system (b and the result are in the
// permuted index space; see SolveOriginal for the original ordering).
// b is not modified.
func (f *Factors) Solve(b []float64) ([]float64, error) {
	if len(b) != f.N {
		return nil, fmt.Errorf("seqmf: rhs length %d, want %d", len(b), f.N)
	}
	return f.solve().SolveMulti(b, 1)
}

// SolveMulti solves nrhs systems at once: b is n x nrhs row-major and
// the result has the same shape. The factors stream through the store in
// one forward and one backward pass total, however many right-hand sides
// ride along; each column carries the exact bits of a single-RHS Solve.
func (f *Factors) SolveMulti(b []float64, nrhs int) ([]float64, error) {
	return f.solve().SolveMulti(b, nrhs)
}

// SolveOriginal solves for a right-hand side given in the *original*
// (pre-permutation) ordering, returning x in the original ordering.
func (f *Factors) SolveOriginal(b []float64) ([]float64, error) {
	if len(b) != f.N {
		return nil, fmt.Errorf("seqmf: rhs length %d, want %d", len(b), f.N)
	}
	return f.solve().SolveOriginalMulti(b, 1)
}

// SolveOriginalMulti is SolveMulti for right-hand sides given in the
// original (pre-permutation) ordering.
func (f *Factors) SolveOriginalMulti(b []float64, nrhs int) ([]float64, error) {
	return f.solve().SolveOriginalMulti(b, nrhs)
}
