// Package seqmf is the sequential numeric multifrontal solver: it factors a
// permuted sparse matrix by walking the assembly tree in postorder,
// assembling each front (original entries + children contribution blocks
// via extend-add), running a partial dense factorization, and stacking the
// contribution block for the parent — exactly the storage scheme of
// Section 2 of the paper (factors area / CB stack / active front).
//
// The per-front kernels (assembly, partial factorization, extraction and
// the triangular solves) live in internal/front and are shared with the
// shared-memory parallel executor internal/parmf; this package contributes
// the postorder walk and the single-stack memory accounting.
//
// Symmetric positive definite matrices use partial Cholesky; unsymmetric
// matrices use partial LU on the symmetrized structure. Pivoting is static
// (see dense.ErrSmallPivot).
package seqmf

import (
	"fmt"

	"repro/internal/assembly"
	"repro/internal/dense"
	"repro/internal/front"
	"repro/internal/sparse"
)

// Stats records the memory and work of a factorization, in the same units
// as the assembly cost model (logical entries: triangles for symmetric).
type Stats struct {
	FactorEntries int64 // total factor storage
	PeakStack     int64 // peak of CB stack + active front
	FinalStack    int64 // stack entries left at the end (root CBs; 0 normally)
	Fronts        int   // number of fronts processed
	MaxFront      int   // largest front order
	AssemblyOps   int64 // extend-add operations
}

// Factors holds the numeric factorization.
type Factors struct {
	Tree  *assembly.Tree
	Kind  sparse.Type
	N     int
	Stats Stats

	fs *front.Factors
}

// Front exposes the underlying per-node factor container (used by the
// parallel executor's cross-validation tests).
func (f *Factors) Front() *front.Factors { return f.fs }

// Options configures the numeric factorization.
type Options struct {
	PivotTol float64 // minimum pivot magnitude for LU
}

// DefaultOptions returns the standard settings.
func DefaultOptions() Options { return Options{PivotTol: 1e-12} }

// Factorize factors the permuted matrix pa whose assembly tree is tree.
// pa must carry numerical values.
func Factorize(pa *sparse.CSC, tree *assembly.Tree, opt Options) (*Factors, error) {
	sh, err := front.NewShared(pa, tree)
	if err != nil {
		return nil, err // already carries the front: context
	}
	f := &Factors{
		Tree: tree,
		Kind: pa.Kind,
		N:    pa.N,
		fs:   front.NewFactors(tree, pa.Kind),
	}
	asm := front.NewAssembler(sh)

	cbs := make([]*dense.Matrix, tree.Len()) // live contribution blocks
	var stack int64                          // live CB entries (model units)
	bump := func(cur int64) {
		if cur > f.Stats.PeakStack {
			f.Stats.PeakStack = cur
		}
	}

	for _, ni := range tree.Postorder() {
		nd := &tree.Nodes[ni]
		npiv := nd.NPiv()
		nf := nd.NFront()
		rows := asm.Begin(ni)

		fr := dense.New(nf, nf)
		frontEntries := assembly.FrontEntries(nd, tree.Kind)
		bump(stack + frontEntries)

		if err := asm.Scatter(ni, fr); err != nil {
			return nil, err
		}

		// Extend-add children, then free their CBs.
		for _, c := range nd.Children {
			ops, err := asm.ExtendAdd(ni, fr, c, cbs[c])
			if err != nil {
				return nil, err
			}
			f.Stats.AssemblyOps += ops
		}
		for _, c := range nd.Children {
			stack -= assembly.CBEntries(&tree.Nodes[c], tree.Kind)
			cbs[c] = nil
		}
		bump(stack + frontEntries)

		// Partial factorization.
		if err := front.Eliminate(fr, npiv, pa.Kind, opt.PivotTol); err != nil {
			return nil, fmt.Errorf("seqmf: node %d (front %d, npiv %d): %w", ni, nf, npiv, err)
		}

		f.fs.SetNode(ni, front.ExtractFactor(fr, rows, npiv, pa.Kind))
		f.Stats.FactorEntries += assembly.FactorEntries(nd, tree.Kind)
		f.Stats.Fronts++
		if nf > f.Stats.MaxFront {
			f.Stats.MaxFront = nf
		}

		// Stack the contribution block.
		if cb := front.ExtractCB(fr, npiv, nd.NCB(), tree.Kind); cb != nil {
			cbs[ni] = cb
			stack += assembly.CBEntries(nd, tree.Kind)
			bump(stack)
		}
	}
	f.Stats.FinalStack = stack
	return f, nil
}

// Solve solves A x = b for the permuted system (b and the result are in the
// permuted index space; see SolveOriginal for the original ordering).
// b is not modified.
func (f *Factors) Solve(b []float64) ([]float64, error) {
	if len(b) != f.N {
		return nil, fmt.Errorf("seqmf: rhs length %d, want %d", len(b), f.N)
	}
	return f.fs.Solve(b)
}

// SolveOriginal solves for a right-hand side given in the *original*
// (pre-permutation) ordering, returning x in the original ordering.
func (f *Factors) SolveOriginal(b []float64) ([]float64, error) {
	if len(b) != f.N {
		return nil, fmt.Errorf("seqmf: rhs length %d, want %d", len(b), f.N)
	}
	return f.fs.SolveOriginal(b)
}
