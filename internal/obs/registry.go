// Package obs is the live observability plane: an embeddable HTTP
// server exposing Prometheus metrics, progress/ETA, Chrome traces,
// memory timelines and pprof for factorizations while they run, plus a
// registry that lets one server watch several concurrent runs.
//
// The CLIs wire it behind the -listen flag (internal/cliflags); a
// library embedder creates a Server, Registers a Run per factorization,
// hands the run's tracer to the executor, and Completes the run with
// the final ExecStats:
//
//	srv, _ := obs.NewServer("127.0.0.1:9090", nil)
//	defer srv.Close()
//	run, _ := srv.Registry().Register("GUPTA3", tracer)
//	stats, _ := core.FactorizeParallelOOC(...)
//	run.Complete(stats)
//
// Everything is stdlib-only (net/http, net/http/pprof).
package obs

import (
	"errors"
	"strconv"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/memory"
	"repro/internal/ooc"
	"repro/internal/trace"
)

// Status is a run's lifecycle state in the registry.
type Status string

const (
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// Run is one registered factorization: its tracer, its incremental
// collector (every /metrics scrape folds only new events), and — once
// Complete or Fail is called — its authoritative outcome.
type Run struct {
	id      string
	name    string
	started time.Time
	tracer  *trace.Tracer
	col     *trace.Collector

	mu       sync.Mutex
	status   Status
	stats    memory.ExecStats
	errMsg   string
	spill    func() ooc.Stats
	faults   *faults.Injector
	finished time.Time
}

// ID returns the registry-assigned identifier ("run-1", "run-2", ...).
func (r *Run) ID() string { return r.id }

// Name returns the label given at registration (matrix name, usually).
func (r *Run) Name() string { return r.name }

// Tracer returns the run's tracer (nil for an untraced registration).
func (r *Run) Tracer() *trace.Tracer { return r.tracer }

// Status returns the run's current lifecycle state.
func (r *Run) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}

// SetSpill attaches a live OOC store stats source (ooc.FileStore.Stats
// is mutex-guarded and mid-run safe); /progress reports it per run.
func (r *Run) SetSpill(fn func() ooc.Stats) {
	r.mu.Lock()
	r.spill = fn
	r.mu.Unlock()
}

// SetFaults attaches the run's fault injector (chaos runs): every
// Snapshot — live scrapes and the post-mortem one — carries the fired
// counters per injection point, so /metrics exports
// mf_faults_injected_total. nil detaches.
func (r *Run) SetFaults(in *faults.Injector) {
	r.mu.Lock()
	r.faults = in
	r.mu.Unlock()
}

// Complete marks the run done and stores the executor's authoritative
// ExecStats: from here on Snapshot returns the post-mortem aggregation
// with these stats (so the final /metrics scrape's mf_resident_peak is
// ExecStats.ResidentPeak itself, not the live mirror).
func (r *Run) Complete(stats memory.ExecStats) {
	r.mu.Lock()
	r.status = StatusDone
	r.stats = stats
	r.finished = time.Now()
	r.mu.Unlock()
}

// Fail marks the run failed, keeping it visible in the registry with
// the error until retired.
func (r *Run) Fail(err error) {
	r.mu.Lock()
	r.status = StatusFailed
	if err != nil {
		r.errMsg = err.Error()
	}
	r.finished = time.Now()
	r.mu.Unlock()
}

// Snapshot returns the run's current aggregated view: a live scrape
// (synthesized partial stats, wall time extended to now) while running,
// the final post-mortem snapshot once completed.
func (r *Run) Snapshot() trace.Snapshot {
	r.mu.Lock()
	st, stats, in := r.status, r.stats, r.faults
	r.mu.Unlock()
	var s trace.Snapshot
	if st == StatusRunning {
		s = r.col.Scrape()
	} else {
		s = r.col.Final(stats)
	}
	if in != nil {
		for _, fs := range in.Stats() {
			if fs.Fired > 0 {
				s.Faults = append(s.Faults, trace.FaultStat{Point: string(fs.Point), Count: fs.Fired})
			}
		}
	}
	return s
}

// Progress reads the run's progress ledger (zero value if untraced).
func (r *Run) Progress() trace.ProgressSnapshot { return r.tracer.Progress() }

// Elapsed is the wall time from registration to completion (or to now
// while still running).
func (r *Run) Elapsed() time.Duration {
	r.mu.Lock()
	fin := r.finished
	r.mu.Unlock()
	if fin.IsZero() {
		fin = time.Now()
	}
	return fin.Sub(r.started)
}

// spillStats returns the live OOC store counters and whether a source
// is attached.
func (r *Run) spillStats() (ooc.Stats, bool) {
	r.mu.Lock()
	fn := r.spill
	r.mu.Unlock()
	if fn == nil {
		return ooc.Stats{}, false
	}
	return fn(), true
}

// Registry tracks the factorizations a server is watching. Multiple
// concurrent runs each get a distinct ID; retired runs disappear from
// every endpoint. All methods are safe for concurrent use.
type Registry struct {
	mu    sync.Mutex
	seq   int
	total int64
	runs  map[string]*Run
	order []string // registration order; Latest is the last entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{runs: map[string]*Run{}}
}

// Register adds a run for the given tracer under a fresh ID. The tracer
// may be nil (the run still shows up in /runs and /progress, with no
// trace-derived metrics).
func (g *Registry) Register(name string, tr *trace.Tracer) (*Run, error) {
	if g == nil {
		return nil, errors.New("obs: nil registry")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.seq++
	g.total++
	r := &Run{
		id:      "run-" + strconv.Itoa(g.seq),
		name:    name,
		started: time.Now(),
		tracer:  tr,
		col:     trace.NewCollector(tr),
		status:  StatusRunning,
	}
	g.runs[r.id] = r
	g.order = append(g.order, r.id)
	return r, nil
}

// Get returns the run with that ID, or nil.
func (g *Registry) Get(id string) *Run {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.runs[id]
}

// Latest returns the most recently registered run still in the
// registry, or nil when empty — the default run /metrics serves.
func (g *Registry) Latest() *Run {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := len(g.order) - 1; i >= 0; i-- {
		if r := g.runs[g.order[i]]; r != nil {
			return r
		}
	}
	return nil
}

// List returns the registered runs in registration order.
func (g *Registry) List() []*Run {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*Run, 0, len(g.runs))
	for _, id := range g.order {
		if r := g.runs[id]; r != nil {
			out = append(out, r)
		}
	}
	return out
}

// Retire removes a run from the registry (its ID stops resolving).
// Reports whether the ID was present.
func (g *Registry) Retire(id string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.runs[id]; !ok {
		return false
	}
	delete(g.runs, id)
	for i, v := range g.order {
		if v == id {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
	return true
}

// Counts returns the active (registered right now) and lifetime-total
// run counts — the registry gauges /metrics always exports.
func (g *Registry) Counts() (active int, total int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.runs), g.total
}
