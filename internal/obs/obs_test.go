package obs_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/obs"
	"repro/internal/ooc"
	"repro/internal/order"
	"repro/internal/parmf"
	"repro/internal/sparse"
	"repro/internal/trace"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, body
}

// TestConcurrentRuns is the registry's concurrency test: two traced
// parallel out-of-core factorizations registered on one server at the
// same time, scraped over HTTP while both are in flight. Every scrape
// must be exposition-format clean, each run's flops-done must never go
// backwards, the final scrape must report the executor's authoritative
// ResidentPeak bit for bit, and retiring the runs must empty /runs.
// Run it under -race to exercise the collector against the workers.
func TestConcurrentRuns(t *testing.T) {
	srv, err := obs.NewServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	reg := srv.Registry()

	type job struct {
		name string
		a    *sparse.CSC
		run  *obs.Run
		an   *core.Analysis
		st   *ooc.FileStore
		res  memory.ExecStats
	}
	jobs := []*job{
		{name: "grid3d-9", a: sparse.Grid3D(9, 9, 9)},
		{name: "grid3d-8", a: sparse.Grid3D(8, 8, 8)},
	}
	for _, j := range jobs {
		cfg := core.DefaultConfig(order.ND, 4)
		cfg.Tracer = trace.New(4)
		an, err := core.Analyze(j.a, cfg)
		if err != nil {
			t.Fatal(err)
		}
		j.an = an
		j.run, err = reg.Register(j.name, cfg.Tracer)
		if err != nil {
			t.Fatal(err)
		}
	}
	if a, total := reg.Counts(); a != 2 || total != 2 {
		t.Fatalf("counts = (%d, %d), want (2, 2)", a, total)
	}

	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j *job) {
			defer wg.Done()
			f, st, err := j.an.FactorizeParallelOOC(parmf.Config{Workers: 4})
			if err != nil {
				j.run.Fail(err)
				t.Errorf("%s: %v", j.name, err)
				return
			}
			j.st = st
			j.run.SetSpill(st.Stats)
			j.res = f.Stats.ExecStats
			j.run.Complete(f.Stats.ExecStats)
		}(j)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	// Scrape both runs over HTTP until they finish.
	last := map[string]float64{}
	scrape := func() {
		for _, j := range jobs {
			code, body := get(t, srv.URL()+"/metrics?run="+j.run.ID())
			if code != http.StatusOK {
				t.Fatalf("/metrics?run=%s: HTTP %d", j.run.ID(), code)
			}
			if err := trace.LintPrometheus(body); err != nil {
				t.Fatalf("%s scrape: %v\n%s", j.run.ID(), err, body)
			}
			v, ok := trace.PromValue(body, "mf_flops_done_total")
			if st := j.run.Status(); st == obs.StatusRunning && !ok {
				t.Fatalf("%s: running scrape lacks mf_flops_done_total", j.run.ID())
			}
			if ok {
				if v < last[j.run.ID()] {
					t.Fatalf("%s: flops done went backwards: %g -> %g", j.run.ID(), last[j.run.ID()], v)
				}
				last[j.run.ID()] = v
			}
		}
	}
loop:
	for {
		scrape()
		select {
		case <-done:
			break loop
		case <-time.After(2 * time.Millisecond):
		}
	}
	for _, j := range jobs {
		defer j.st.Close()
	}

	// Final scrape: authoritative stats, bit for bit.
	for _, j := range jobs {
		_, body := get(t, srv.URL()+"/metrics?run="+j.run.ID())
		if err := trace.LintPrometheus(body); err != nil {
			t.Fatalf("final %s scrape: %v", j.run.ID(), err)
		}
		v, ok := trace.PromValue(body, "mf_resident_peak_entries")
		if !ok || int64(v) != j.res.ResidentPeak {
			t.Fatalf("%s: final mf_resident_peak_entries = %g (ok=%v), want %d",
				j.run.ID(), v, ok, j.res.ResidentPeak)
		}
		if s := j.run.Snapshot(); s.Stats.ResidentPeak != j.res.ResidentPeak {
			t.Fatalf("%s: snapshot ResidentPeak %d != executor %d", j.run.ID(), s.Stats.ResidentPeak, j.res.ResidentPeak)
		}
	}

	// /progress carries both runs, with spill stats attached.
	_, body := get(t, srv.URL()+"/progress")
	var prog struct {
		Runs []struct {
			ID       string                  `json:"id"`
			Status   string                  `json:"status"`
			Progress *trace.ProgressSnapshot `json:"progress"`
			Spill    *ooc.Stats              `json:"spill"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(body, &prog); err != nil {
		t.Fatalf("/progress: %v\n%s", err, body)
	}
	if len(prog.Runs) != 2 {
		t.Fatalf("/progress runs = %d, want 2", len(prog.Runs))
	}
	for _, r := range prog.Runs {
		if r.Status != "done" {
			t.Fatalf("%s status = %s, want done", r.ID, r.Status)
		}
		if r.Progress == nil || r.Progress.Ratio != 1 {
			t.Fatalf("%s progress = %+v, want ratio 1", r.ID, r.Progress)
		}
		if r.Spill == nil || r.Spill.Blocks == 0 {
			t.Fatalf("%s spill = %+v, want nonzero blocks", r.ID, r.Spill)
		}
	}

	// Retire both; the registry empties but keeps the lifetime total.
	for _, j := range jobs {
		if !reg.Retire(j.run.ID()) {
			t.Fatalf("retire %s failed", j.run.ID())
		}
	}
	if a, total := reg.Counts(); a != 0 || total != 2 {
		t.Fatalf("after retire: counts = (%d, %d), want (0, 2)", a, total)
	}
	if code, _ := get(t, srv.URL()+"/runs"); code != http.StatusOK {
		t.Fatalf("/runs after retire: HTTP %d", code)
	}
	if code, _ := get(t, srv.URL()+"/metrics?run="+jobs[0].run.ID()); code != http.StatusNotFound {
		t.Fatalf("retired run still scrapes: HTTP %d", code)
	}
}

// TestEndpoints covers the static endpoints and selectors against one
// completed sequential OOC run.
func TestEndpoints(t *testing.T) {
	srv, err := obs.NewServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cfg := core.DefaultConfig(order.AMD, 1)
	cfg.Tracer = trace.New(1)
	an, err := core.Analyze(sparse.Grid2D(12, 12), cfg)
	if err != nil {
		t.Fatal(err)
	}
	run, _ := srv.Registry().Register("grid2d", cfg.Tracer)
	f, st, err := an.FactorizeOOC()
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	run.SetSpill(st.Stats)
	run.Complete(f.Stats)

	if code, body := get(t, srv.URL()+"/healthz"); code != 200 || string(body) != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := get(t, srv.URL()+"/"); code != 200 || !strings.Contains(string(body), "run-1") {
		t.Fatalf("index = %d %q", code, body)
	}
	if code, _ := get(t, srv.URL()+"/no-such"); code != http.StatusNotFound {
		t.Fatalf("unknown path: HTTP %d", code)
	}

	// Default-run selection (latest) and explicit selection agree on the
	// run's series (elapsed-time gauges tick between scrapes, so compare
	// a stable one).
	_, def := get(t, srv.URL()+"/metrics")
	_, sel := get(t, srv.URL()+"/metrics?run="+run.ID())
	d, okD := trace.PromValue(def, "mf_resident_peak_entries")
	s, okS := trace.PromValue(sel, "mf_resident_peak_entries")
	if !okD || !okS || d != s {
		t.Fatalf("default /metrics (%g, %v) differs from ?run=<latest> (%g, %v)", d, okD, s, okS)
	}
	if err := trace.LintPrometheus(def); err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	if v, ok := trace.PromValue(def, "mf_runs_active"); !ok || v != 1 {
		t.Fatalf("mf_runs_active = %g, %v", v, ok)
	}

	// The trace dump of a completed run passes the strict validator.
	code, tr := get(t, srv.URL()+"/trace.json")
	if code != 200 {
		t.Fatalf("/trace.json: HTTP %d", code)
	}
	if err := trace.ValidateChromeTrace(tr); err != nil {
		t.Fatalf("/trace.json invalid: %v", err)
	}
	code, csv := get(t, srv.URL()+"/timeline.csv")
	if code != 200 || !strings.HasPrefix(string(csv), "series,t_ns,stack_entries,active_entries") {
		t.Fatalf("/timeline.csv = %d %q...", code, csv[:min(len(csv), 60)])
	}
	if code, _ := get(t, srv.URL()+"/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/: HTTP %d", code)
	}

	// Untraced runs register fine but have no trace artifacts.
	plain, _ := srv.Registry().Register("untraced", nil)
	if code, _ := get(t, srv.URL()+"/trace.json?run="+plain.ID()); code != http.StatusNotFound {
		t.Fatalf("untraced /trace.json: HTTP %d", code)
	}
	if _, body := get(t, srv.URL()+"/metrics?run="+plain.ID()); trace.LintPrometheus(body) != nil {
		t.Fatalf("untraced scrape not lint-clean:\n%s", body)
	}

	// Empty-registry /metrics still serves the registry gauges.
	empty, err := obs.NewServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer empty.Close()
	if code, body := get(t, empty.URL()+"/metrics"); code != 200 || trace.LintPrometheus(body) != nil {
		t.Fatalf("empty /metrics = %d %q", code, body)
	}
	if code, _ := get(t, empty.URL()+"/trace.json"); code != http.StatusNotFound {
		t.Fatalf("empty /trace.json: HTTP %d", code)
	}
}

// TestRunLifecycle covers Fail and the failed-run rendering.
func TestRunLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	run, err := reg.Register("doomed", trace.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if run.Status() != obs.StatusRunning {
		t.Fatalf("status = %s", run.Status())
	}
	run.Fail(fmt.Errorf("synthetic pivot breakdown"))
	if run.Status() != obs.StatusFailed {
		t.Fatalf("status after Fail = %s", run.Status())
	}
	if reg.Latest() != run {
		t.Fatal("Latest lost the failed run")
	}
	if run.Elapsed() < 0 {
		t.Fatal("negative elapsed")
	}
}
