package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"repro/internal/ooc"
	"repro/internal/trace"
)

// Server is the in-flight observability HTTP plane. It binds its own
// listener and mux (never http.DefaultServeMux, so embedding cannot
// collide with a host application) and serves:
//
//	/             plain-text endpoint index
//	/healthz      liveness probe ("ok")
//	/metrics      Prometheus text format: registry gauges + one run's
//	              snapshot (?run=ID selects; default latest registered)
//	/progress     JSON progress/ETA for every registered run
//	/runs         JSON registry index
//	/trace.json   Chrome trace_event dump of a run's tracer (?run=ID)
//	/timeline.csv per-worker memory timeline CSV of a run (?run=ID)
//	/debug/pprof/ the standard runtime profiles
//
// Close shuts it down gracefully.
type Server struct {
	reg      *Registry
	ln       net.Listener
	srv      *http.Server
	serveErr chan error
}

// NewServer binds addr (host:port; port 0 picks a free one) and starts
// serving. A nil reg gets a fresh empty registry.
func NewServer(addr string, reg *Registry) (*Server, error) {
	if reg == nil {
		reg = NewRegistry()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{reg: reg, ln: ln, serveErr: make(chan error, 1)}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/runs", s.handleRuns)
	mux.HandleFunc("/trace.json", s.handleTrace)
	mux.HandleFunc("/timeline.csv", s.handleTimeline)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go func() { s.serveErr <- s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (resolves the actual port for ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns "http://<addr>".
func (s *Server) URL() string { return "http://" + s.Addr() }

// Registry returns the server's run registry.
func (s *Server) Registry() *Registry { return s.reg }

// Close stops accepting connections, drains in-flight requests for up
// to three seconds, then returns. Safe to call once.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if serveErr := <-s.serveErr; serveErr != nil && serveErr != http.ErrServerClosed && err == nil {
		err = serveErr
	}
	return err
}

// pickRun resolves the ?run=ID selector, defaulting to the latest
// registered run. Writes the 404 itself when the ID is unknown or the
// registry is empty, returning nil.
func (s *Server) pickRun(w http.ResponseWriter, req *http.Request) *Run {
	if id := req.URL.Query().Get("run"); id != "" {
		if r := s.reg.Get(id); r != nil {
			return r
		}
		http.Error(w, "unknown run "+id, http.StatusNotFound)
		return nil
	}
	if r := s.reg.Latest(); r != nil {
		return r
	}
	http.Error(w, "no runs registered", http.StatusNotFound)
	return nil
}

func (s *Server) handleIndex(w http.ResponseWriter, req *http.Request) {
	if req.URL.Path != "/" {
		http.NotFound(w, req)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var b strings.Builder
	b.WriteString("multifrontal observability plane\n\n")
	b.WriteString("  /metrics       Prometheus scrape (?run=ID; default latest)\n")
	b.WriteString("  /progress      JSON progress/ETA for all runs\n")
	b.WriteString("  /runs          JSON run registry\n")
	b.WriteString("  /trace.json    Chrome trace_event dump (?run=ID)\n")
	b.WriteString("  /timeline.csv  per-worker memory timeline (?run=ID)\n")
	b.WriteString("  /debug/pprof/  runtime profiles\n")
	b.WriteString("  /healthz       liveness\n\nruns:\n")
	for _, r := range s.reg.List() {
		fmt.Fprintf(&b, "  %-8s %-12s %-8s %s\n", r.ID(), r.Name(), r.Status(), r.Elapsed().Round(time.Millisecond))
	}
	fmt.Fprint(w, b.String())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics serves the Prometheus text exposition body: two
// registry-level gauges, then the selected run's snapshot. One run per
// scrape keeps every series unique without run labels on the ~20
// mf_* families; a dashboard watching N concurrent runs scrapes
// /metrics?run=ID once per run.
func (s *Server) handleMetrics(w http.ResponseWriter, req *http.Request) {
	active, total := s.reg.Counts()
	var body strings.Builder
	fmt.Fprintf(&body, "# HELP mf_runs_active Factorizations currently registered.\n# TYPE mf_runs_active gauge\nmf_runs_active %d\n", active)
	fmt.Fprintf(&body, "# HELP mf_runs_registered_total Runs registered over the server's lifetime.\n# TYPE mf_runs_registered_total counter\nmf_runs_registered_total %d\n", total)
	// No runs is still a valid scrape (the registry gauges alone); an
	// explicit unknown ?run=ID is a 404.
	if id := req.URL.Query().Get("run"); id != "" {
		r := s.reg.Get(id)
		if r == nil {
			http.Error(w, "unknown run "+id, http.StatusNotFound)
			return
		}
		r.Snapshot().WritePrometheus(&body)
	} else if r := s.reg.Latest(); r != nil {
		r.Snapshot().WritePrometheus(&body)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, body.String())
}

// runProgress is one run's row in the /progress response.
type runProgress struct {
	ID             string                  `json:"id"`
	Name           string                  `json:"name"`
	Status         Status                  `json:"status"`
	StartedAt      time.Time               `json:"started_at"`
	ElapsedSeconds float64                 `json:"elapsed_seconds"`
	Error          string                  `json:"error,omitempty"`
	Progress       *trace.ProgressSnapshot `json:"progress,omitempty"`
	Spill          *ooc.Stats              `json:"spill,omitempty"`
}

func (s *Server) handleProgress(w http.ResponseWriter, _ *http.Request) {
	runs := s.reg.List()
	out := struct {
		Runs []runProgress `json:"runs"`
	}{Runs: make([]runProgress, 0, len(runs))}
	for _, r := range runs {
		rp := runProgress{
			ID:             r.ID(),
			Name:           r.Name(),
			Status:         r.Status(),
			StartedAt:      r.started,
			ElapsedSeconds: r.Elapsed().Seconds(),
		}
		r.mu.Lock()
		rp.Error = r.errMsg
		r.mu.Unlock()
		if pr := r.Progress(); pr.Active() {
			rp.Progress = &pr
		}
		if sp, ok := r.spillStats(); ok {
			rp.Spill = &sp
		}
		out.Runs = append(out.Runs, rp)
	}
	writeJSON(w, out)
}

// runInfo is one run's row in the /runs response.
type runInfo struct {
	ID             string    `json:"id"`
	Name           string    `json:"name"`
	Status         Status    `json:"status"`
	StartedAt      time.Time `json:"started_at"`
	ElapsedSeconds float64   `json:"elapsed_seconds"`
	Traced         bool      `json:"traced"`
}

func (s *Server) handleRuns(w http.ResponseWriter, _ *http.Request) {
	runs := s.reg.List()
	active, total := s.reg.Counts()
	out := struct {
		Active int       `json:"active"`
		Total  int64     `json:"total"`
		Runs   []runInfo `json:"runs"`
	}{Active: active, Total: total, Runs: make([]runInfo, 0, len(runs))}
	for _, r := range runs {
		out.Runs = append(out.Runs, runInfo{
			ID:             r.ID(),
			Name:           r.Name(),
			Status:         r.Status(),
			StartedAt:      r.started,
			ElapsedSeconds: r.Elapsed().Seconds(),
			Traced:         r.Tracer() != nil,
		})
	}
	writeJSON(w, out)
}

func (s *Server) handleTrace(w http.ResponseWriter, req *http.Request) {
	r := s.pickRun(w, req)
	if r == nil {
		return
	}
	if r.Tracer() == nil {
		http.Error(w, r.ID()+" is untraced", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="`+r.ID()+`.trace.json"`)
	r.Tracer().WriteChromeTrace(w)
}

func (s *Server) handleTimeline(w http.ResponseWriter, req *http.Request) {
	r := s.pickRun(w, req)
	if r == nil {
		return
	}
	if r.Tracer() == nil {
		http.Error(w, r.ID()+" is untraced", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	r.Tracer().WriteMemoryCSV(w)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
