package ooc

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"repro/internal/dense"
	"repro/internal/front"
	"repro/internal/memory"
)

// randomBlock builds a NodeFactor with random payload. withU toggles the
// LU upper trapezoid.
func randomBlock(rng *rand.Rand, nf, npiv int, withU bool) front.NodeFactor {
	b := front.NodeFactor{Rows: make([]int, nf), NPiv: npiv, L: dense.New(nf, npiv)}
	for i := range b.Rows {
		b.Rows[i] = i*3 + rng.Intn(3)
	}
	for i := range b.L.A {
		b.L.A[i] = rng.NormFloat64()
	}
	if withU {
		b.U = dense.New(npiv, nf)
		for i := range b.U.A {
			b.U.A[i] = rng.NormFloat64()
		}
	}
	return b
}

func sameBlock(a, b *front.NodeFactor) error {
	if a.NPiv != b.NPiv || len(a.Rows) != len(b.Rows) {
		return fmt.Errorf("shape: npiv %d vs %d, rows %d vs %d", a.NPiv, b.NPiv, len(a.Rows), len(b.Rows))
	}
	for i, r := range a.Rows {
		if b.Rows[i] != r {
			return fmt.Errorf("row %d: %d vs %d", i, r, b.Rows[i])
		}
	}
	for i, v := range a.L.A {
		if b.L.A[i] != v {
			return fmt.Errorf("L[%d]: %v vs %v (not bitwise identical)", i, v, b.L.A[i])
		}
	}
	if (a.U == nil) != (b.U == nil) {
		return fmt.Errorf("U presence mismatch")
	}
	if a.U != nil {
		for i, v := range a.U.A {
			if b.U.A[i] != v {
				return fmt.Errorf("U[%d]: %v vs %v", i, v, b.U.A[i])
			}
		}
	}
	return nil
}

// TestRoundtripBitwise spills a mix of Cholesky- and LU-shaped blocks and
// reads them back: every float must round-trip bit-for-bit.
func TestRoundtripBitwise(t *testing.T) {
	s, err := NewFileStore(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(42))
	orig := make([]front.NodeFactor, 20)
	for ni := range orig {
		orig[ni] = randomBlock(rng, 2+rng.Intn(10), 1+rng.Intn(2), ni%2 == 0)
		if err := s.Put(ni, orig[ni], int64(len(orig[ni].L.A))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for ni := range orig {
		got, err := s.Fetch(ni)
		if err != nil {
			t.Fatal(err)
		}
		if err := sameBlock(&orig[ni], got); err != nil {
			t.Errorf("node %d: %v", ni, err)
		}
		s.Release(ni)
	}
}

// TestBudgetBoundsBuffer uses a budget smaller than the stream and checks
// that Put blocked at least once, the buffer peak respected the bound
// (one block of slack: an oversized block is admitted when the buffer is
// empty), and everything still landed on disk.
func TestBudgetBoundsBuffer(t *testing.T) {
	const budget = 64
	s, err := NewFileStore(Options{Dir: t.TempDir(), BufferEntries: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(7))
	n := 50
	for ni := 0; ni < n; ni++ {
		b := randomBlock(rng, 8, 4, false) // 32 entries each
		if err := s.Put(ni, b, int64(len(b.L.A))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Blocks != n {
		t.Errorf("blocks %d, want %d", st.Blocks, n)
	}
	if st.BufferPeak > budget {
		t.Errorf("buffer peak %d exceeded budget %d", st.BufferPeak, budget)
	}
	if st.PutWaits == 0 {
		t.Error("no Put ever blocked under a tight budget")
	}
}

// TestOversizedBlockAdmitted: a single block larger than the whole budget
// must still go through (admitted when the buffer is empty).
func TestOversizedBlockAdmitted(t *testing.T) {
	s, err := NewFileStore(Options{Dir: t.TempDir(), BufferEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(9))
	b := randomBlock(rng, 20, 10, true) // 400 entries >> 4
	if err := s.Put(0, b, int64(len(b.L.A))); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fetch(0); err != nil {
		t.Fatal(err)
	}
	s.Release(0)
}

// TestMeterBalances checks the shared meter: charged while blocks are
// buffered or fetched, zero once everything is spilled and released.
func TestMeterBalances(t *testing.T) {
	s, err := NewFileStore(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var m memory.Meter
	s.SetMeter(&m)
	rng := rand.New(rand.NewSource(3))
	for ni := 0; ni < 10; ni++ {
		b := randomBlock(rng, 6, 3, false)
		if err := s.Put(ni, b, int64(len(b.L.A))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if cur := m.Cur(); cur != 0 {
		t.Errorf("meter %d after flush, want 0 (all spilled)", cur)
	}
	if m.Peak() == 0 {
		t.Error("meter never charged during buffering")
	}
	nf, err := s.Fetch(4)
	if err != nil {
		t.Fatal(err)
	}
	if cur := m.Cur(); cur != int64(len(nf.L.A)) {
		t.Errorf("meter %d while holding a %d-entry block", cur, len(nf.L.A))
	}
	s.Release(4)
	if cur := m.Cur(); cur != 0 {
		t.Errorf("meter %d after release, want 0", cur)
	}
}

// TestPrefetchStream walks blocks in the announced order (forward then
// reverse, like the solves) and checks contents and meter balance.
func TestPrefetchStream(t *testing.T) {
	s, err := NewFileStore(Options{Dir: t.TempDir(), BufferEntries: 256, Prefetch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var m memory.Meter
	s.SetMeter(&m)
	rng := rand.New(rand.NewSource(11))
	n := 30
	orig := make([]front.NodeFactor, n)
	order := make([]int, n)
	for ni := 0; ni < n; ni++ {
		orig[ni] = randomBlock(rng, 4+rng.Intn(4), 2, ni%3 == 0)
		order[ni] = ni
		if err := s.Put(ni, orig[ni], int64(len(orig[ni].L.A))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		s.Prefetch(order)
		for _, ni := range order {
			got, err := s.Fetch(ni)
			if err != nil {
				t.Fatal(err)
			}
			if err := sameBlock(&orig[ni], got); err != nil {
				t.Errorf("pass %d node %d: %v", pass, ni, err)
			}
			s.Release(ni)
		}
		// Reverse for the second pass, as the backward solve does.
		for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
	}
	if cur := m.Cur(); cur != 0 {
		t.Errorf("meter %d after both passes, want 0", cur)
	}
}

// TestFetchUnknownNode must fail cleanly, not hang or return junk.
func TestFetchUnknownNode(t *testing.T) {
	s, err := NewFileStore(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Fetch(5); err == nil {
		t.Error("Fetch of never-Put node succeeded")
	}
}

// TestClosedStore: operations after Close return ErrClosed and the spill
// file is gone; double Close is fine.
func TestClosedStore(t *testing.T) {
	s, err := NewFileStore(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	path := s.Path()
	rng := rand.New(rand.NewSource(1))
	b := randomBlock(rng, 4, 2, false)
	if err := s.Put(0, b, int64(len(b.L.A))); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("spill file still exists after Close: %v", err)
	}
	if err := s.Put(1, b, 8); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after Close: %v, want ErrClosed", err)
	}
	if err := s.Flush(); !errors.Is(err, ErrClosed) {
		t.Errorf("Flush after Close: %v, want ErrClosed", err)
	}
	if _, err := s.Fetch(0); !errors.Is(err, ErrClosed) {
		t.Errorf("Fetch after Close: %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestConcurrentPut hammers Put from several goroutines (the parallel
// executor's workers) under a tight budget; run with -race.
func TestConcurrentPut(t *testing.T) {
	s, err := NewFileStore(Options{Dir: t.TempDir(), BufferEntries: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var m memory.Meter
	s.SetMeter(&m)
	const workers, per = 8, 25
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				b := randomBlock(rng, 4+rng.Intn(6), 2, w%2 == 0)
				if err := s.Put(w*per+i, b, int64(len(b.L.A))); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Blocks; got != workers*per {
		t.Errorf("blocks %d, want %d", got, workers*per)
	}
	if cur := m.Cur(); cur != 0 {
		t.Errorf("meter %d after flush, want 0", cur)
	}
}
