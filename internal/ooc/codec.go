package ooc

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/dense"
	"repro/internal/front"
)

// The spill-file record format is a flat little-endian encoding of one
// front.NodeFactor. Float values round-trip through their IEEE-754 bit
// patterns, so a block read back is bitwise identical to the block
// written — the out-of-core factorization stays exactly reproducible.
//
//	uint64  npiv
//	uint64  nrows            (front order, len(Rows))
//	uint64  hasU             (0 or 1)
//	uint64  rows[nrows]      (global front indices)
//	uint64  L[nrows*npiv]    (row-major float64 bits)
//	uint64  U[npiv*nrows]    (only when hasU == 1)

// appendBlock encodes nf onto buf and returns the extended slice.
func appendBlock(buf []byte, nf *front.NodeFactor) []byte {
	u64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		buf = append(buf, b[:]...)
	}
	u64(uint64(nf.NPiv))
	u64(uint64(len(nf.Rows)))
	if nf.U != nil {
		u64(1)
	} else {
		u64(0)
	}
	for _, r := range nf.Rows {
		u64(uint64(r))
	}
	for _, v := range nf.L.A {
		u64(math.Float64bits(v))
	}
	if nf.U != nil {
		for _, v := range nf.U.A {
			u64(math.Float64bits(v))
		}
	}
	return buf
}

// decodeBlock parses one record. The buffer must hold exactly one block.
func decodeBlock(buf []byte) (*front.NodeFactor, error) {
	pos := 0
	u64 := func() (uint64, error) {
		if pos+8 > len(buf) {
			return 0, fmt.Errorf("ooc: truncated record (%d of %d bytes)", pos, len(buf))
		}
		v := binary.LittleEndian.Uint64(buf[pos:])
		pos += 8
		return v, nil
	}
	npiv, err := u64()
	if err != nil {
		return nil, err
	}
	nrows, err := u64()
	if err != nil {
		return nil, err
	}
	hasU, err := u64()
	if err != nil {
		return nil, err
	}
	if want := int64(8 * (3 + nrows + nrows*npiv + hasU*npiv*nrows)); want != int64(len(buf)) {
		return nil, fmt.Errorf("ooc: record length %d, want %d (npiv %d, rows %d)",
			len(buf), want, npiv, nrows)
	}
	nf := &front.NodeFactor{
		Rows: make([]int, nrows),
		NPiv: int(npiv),
		L:    dense.New(int(nrows), int(npiv)),
	}
	for i := range nf.Rows {
		v, err := u64()
		if err != nil {
			return nil, err
		}
		nf.Rows[i] = int(v)
	}
	for i := range nf.L.A {
		v, err := u64()
		if err != nil {
			return nil, err
		}
		nf.L.A[i] = math.Float64frombits(v)
	}
	if hasU == 1 {
		nf.U = dense.New(int(npiv), int(nrows))
		for i := range nf.U.A {
			v, err := u64()
			if err != nil {
				return nil, err
			}
			nf.U.A[i] = math.Float64frombits(v)
		}
	}
	return nf, nil
}
