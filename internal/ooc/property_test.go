package ooc_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/assembly"
	"repro/internal/ooc"
	"repro/internal/order"
	"repro/internal/parmf"
	"repro/internal/seqmf"
	"repro/internal/sparse"
	"repro/internal/workload"
)

// problemMatrix generates a suite problem and gives pattern-only analogues
// (GUPTA3's AAᵀ) deterministic diagonally dominant values.
func problemMatrix(t *testing.T, p workload.Problem) *sparse.CSC {
	t.Helper()
	a := p.Matrix()
	if !a.HasValues() {
		if err := sparse.FillDominant(a, rand.New(rand.NewSource(7))); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

// TestOOCPropertySuite is the out-of-core acceptance property on every
// workload problem at 1, 2 and 8 workers:
//
//  1. the measured OOC resident peak never exceeds the in-core one (the
//     whole point of spilling factors), and
//  2. the OOC solve matches the in-core solve to 1e-12 — in fact the
//     factors round-trip disk bit-for-bit, so the comparison is strict.
func TestOOCPropertySuite(t *testing.T) {
	suite := workload.Suite()
	if testing.Short() {
		suite = workload.SmallSuite() // same 8 problems, test scale
	}
	for _, p := range suite {
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			a := problemMatrix(t, p)
			tree, pa := assembly.Analyze(a, assembly.DefaultOptions(order.ND))
			assembly.SortChildrenLiu(tree)

			rng := rand.New(rand.NewSource(99))
			b := make([]float64, a.N)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			// Budget well below the factors area so spilling must matter.
			budget := assembly.TotalFactorEntries(tree) / 16
			if budget < 256 {
				budget = 256
			}

			for _, workers := range []int{1, 2, 8} {
				inc, err := parmf.Factorize(pa, tree, parmf.DefaultConfig(workers))
				if err != nil {
					t.Fatalf("%d workers in-core: %v", workers, err)
				}
				st, err := ooc.NewFileStore(ooc.Options{Dir: t.TempDir(), BufferEntries: budget})
				if err != nil {
					t.Fatal(err)
				}
				cfg := parmf.DefaultConfig(workers)
				cfg.Store = st
				of, err := parmf.Factorize(pa, tree, cfg)
				if err != nil {
					t.Fatalf("%d workers OOC: %v", workers, err)
				}

				if of.Stats.ResidentPeak > inc.Stats.ResidentPeak {
					t.Errorf("%d workers: OOC resident peak %d > in-core %d",
						workers, of.Stats.ResidentPeak, inc.Stats.ResidentPeak)
				}
				if of.Stats.FactorEntries != inc.Stats.FactorEntries {
					t.Errorf("%d workers: factor entries %d vs %d",
						workers, of.Stats.FactorEntries, inc.Stats.FactorEntries)
				}
				if got, want := st.Stats().Blocks, tree.Len(); got != want {
					t.Errorf("%d workers: spilled %d blocks, want %d", workers, got, want)
				}

				xi, err := inc.SolveOriginal(b)
				if err != nil {
					t.Fatalf("%d workers in-core solve: %v", workers, err)
				}
				xo, err := of.SolveOriginal(b)
				if err != nil {
					t.Fatalf("%d workers OOC solve: %v", workers, err)
				}
				for i := range xi {
					if d := math.Abs(xi[i] - xo[i]); d > 1e-12*(1+math.Abs(xi[i])) {
						t.Fatalf("%d workers: x[%d] = %g in-core vs %g OOC",
							workers, i, xi[i], xo[i])
					}
				}
				if err := of.Close(); err != nil {
					t.Errorf("%d workers: close: %v", workers, err)
				}
			}

			// Sequential executor through the file store: every factor
			// block on disk must be bitwise identical to the in-core one.
			sInc, err := seqmf.Factorize(pa, tree, seqmf.DefaultOptions())
			if err != nil {
				t.Fatalf("seqmf in-core: %v", err)
			}
			st, err := ooc.NewFileStore(ooc.Options{Dir: t.TempDir(), BufferEntries: budget})
			if err != nil {
				t.Fatal(err)
			}
			opt := seqmf.DefaultOptions()
			opt.Store = st
			sOOC, err := seqmf.Factorize(pa, tree, opt)
			if err != nil {
				t.Fatalf("seqmf OOC: %v", err)
			}
			defer sOOC.Close()
			if sOOC.Stats.ResidentPeak > sInc.Stats.ResidentPeak {
				t.Errorf("seq OOC resident peak %d > in-core %d",
					sOOC.Stats.ResidentPeak, sInc.Stats.ResidentPeak)
			}
			for ni := range tree.Nodes {
				want := sInc.Front().Node(ni)
				got, err := st.Fetch(ni)
				if err != nil {
					t.Fatalf("fetch node %d: %v", ni, err)
				}
				if got.NPiv != want.NPiv || len(got.Rows) != len(want.Rows) {
					t.Fatalf("node %d: shape mismatch", ni)
				}
				for p, v := range want.L.A {
					if got.L.A[p] != v {
						t.Fatalf("node %d: L[%d] %g vs %g (not bitwise identical)",
							ni, p, got.L.A[p], v)
					}
				}
				if want.U != nil {
					for p, v := range want.U.A {
						if got.U.A[p] != v {
							t.Fatalf("node %d: U[%d] %g vs %g", ni, p, got.U.A[p], v)
						}
					}
				}
				st.Release(ni)
			}
		})
	}
}
