package ooc

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/front"
	"repro/internal/memory"
)

// testOptions is the base fault-test configuration: tiny backoff so
// retry sweeps stay fast.
func testOptions(t *testing.T, in *faults.Injector) Options {
	return Options{Dir: t.TempDir(), RetryBase: 50 * time.Microsecond, Faults: in}
}

// putAll spills n random blocks and returns the originals.
func putAll(t *testing.T, s *FileStore, n int, seed int64) []front.NodeFactor {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	orig := make([]front.NodeFactor, n)
	for ni := range orig {
		orig[ni] = randomBlock(rng, 2+rng.Intn(8), 1+rng.Intn(2), ni%2 == 0)
		if err := s.Put(ni, orig[ni], int64(len(orig[ni].L.A))); err != nil {
			t.Fatalf("Put(%d): %v", ni, err)
		}
	}
	return orig
}

// fetchAll reads every block back and checks bitwise identity.
func fetchAll(t *testing.T, s *FileStore, orig []front.NodeFactor) {
	t.Helper()
	for ni := range orig {
		got, err := s.Fetch(ni)
		if err != nil {
			t.Fatalf("Fetch(%d): %v", ni, err)
		}
		if err := sameBlock(&orig[ni], got); err != nil {
			t.Fatalf("node %d: %v", ni, err)
		}
		s.Release(ni)
	}
}

// TestTransientWriteRetried: a burst of injected write errors is
// absorbed by the retry loop — every block still lands on disk, bitwise
// identical, with no degradation.
func TestTransientWriteRetried(t *testing.T) {
	in := faults.New(faults.Rule{Point: faults.SpillWrite, Kind: faults.KindError, Nth: 2, Count: 2})
	s, err := NewFileStore(testOptions(t, in))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	orig := putAll(t, s, 10, 21)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Retries == 0 {
		t.Error("no retries counted for injected transient errors")
	}
	if st.DegradedBlocks != 0 {
		t.Errorf("%d blocks degraded, want 0 (errors were transient)", st.DegradedBlocks)
	}
	if st.Blocks != 10 {
		t.Errorf("blocks spilled %d, want 10", st.Blocks)
	}
	fetchAll(t, s, orig)
}

// TestShortWriteRepaired: an injected short write is detected and the
// block rewritten at the same offset; contents round-trip bitwise.
func TestShortWriteRepaired(t *testing.T) {
	in := faults.New(faults.Rule{Point: faults.SpillWrite, Kind: faults.KindShortWrite, Nth: 1, Count: 3})
	s, err := NewFileStore(testOptions(t, in))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	orig := putAll(t, s, 8, 22)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Retries == 0 {
		t.Error("short writes were not retried")
	}
	fetchAll(t, s, orig)
}

// TestPersistentWriteDegrades: every spill write fails, so every block
// is retained in-core (degraded mode). The run still completes, Fetch
// serves the blocks bitwise identical from memory, and the meter stays
// charged for them until Close.
func TestPersistentWriteDegrades(t *testing.T) {
	in := faults.New(faults.Rule{Point: faults.SpillWrite, Kind: faults.KindError, Nth: 1, Count: -1})
	opt := testOptions(t, in)
	opt.RetryMax = 1
	s, err := NewFileStore(opt)
	if err != nil {
		t.Fatal(err)
	}
	var m memory.Meter
	s.SetMeter(&m)
	orig := putAll(t, s, 6, 23)
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush after degradation: %v (degraded runs must complete)", err)
	}
	st := s.Stats()
	if st.DegradedBlocks != 6 {
		t.Fatalf("DegradedBlocks = %d, want 6", st.DegradedBlocks)
	}
	if st.Blocks != 0 {
		t.Errorf("Blocks = %d, want 0 (nothing reached disk)", st.Blocks)
	}
	var want int64
	for i := range orig {
		want += int64(len(orig[i].L.A))
	}
	if st.DegradedEntries != want {
		t.Errorf("DegradedEntries = %d, want %d", st.DegradedEntries, want)
	}
	if cur := m.Cur(); cur != want {
		t.Errorf("meter %d with %d degraded entries resident", cur, want)
	}
	fetchAll(t, s, orig) // Release is a no-op for degraded blocks
	fetchAll(t, s, orig) // a second pass (backward solve) re-serves them
	if cur := m.Cur(); cur != want {
		t.Errorf("meter %d after fetches, want %d (degraded blocks stay charged)", cur, want)
	}
	retries, degraded := s.FaultCounters()
	if retries != st.Retries || degraded != 6 {
		t.Errorf("FaultCounters = (%d, %d), want (%d, 6)", retries, degraded, st.Retries)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if cur := m.Cur(); cur != 0 {
		t.Errorf("meter %d after Close, want 0", cur)
	}
}

// TestPersistentWriteNoDegradePoisonsPut is the regression test for
// writer-error propagation: with degradation disabled, the first
// persistent write failure must surface on the next Put — not only at
// Flush/Close.
func TestPersistentWriteNoDegradePoisonsPut(t *testing.T) {
	in := faults.New(faults.Rule{Point: faults.SpillWrite, Kind: faults.KindError, Nth: 1, Count: -1})
	opt := testOptions(t, in)
	opt.NoDegrade = true
	opt.RetryMax = 1
	s, err := NewFileStore(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(24))
	b := randomBlock(rng, 4, 2, false)
	if err := s.Put(0, b, int64(len(b.L.A))); err != nil {
		t.Fatalf("first Put: %v (buffer had room)", err)
	}
	// Flush waits for the writer to hit the failure and poison the store.
	ferr := s.Flush()
	if !errors.Is(ferr, faults.ErrInjected) {
		t.Fatalf("Flush: %v, want injected write error", ferr)
	}
	// The satellite contract: a subsequent Put fails immediately with the
	// same descriptive error instead of queueing into a dead store.
	perr := s.Put(1, b, int64(len(b.L.A)))
	if !errors.Is(perr, faults.ErrInjected) {
		t.Fatalf("Put after writer failure: %v, want the writer's error", perr)
	}
	if !strings.Contains(perr.Error(), "spill write") || !strings.Contains(perr.Error(), "node 0") {
		t.Errorf("Put error %q does not name the failed write", perr)
	}
}

// TestTransientReadRetried: injected read errors under the retry budget
// are invisible to Fetch.
func TestTransientReadRetried(t *testing.T) {
	in := faults.New(faults.Rule{Point: faults.SpillRead, Kind: faults.KindError, Nth: 1, Count: 2})
	s, err := NewFileStore(testOptions(t, in))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	orig := putAll(t, s, 4, 25)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	fetchAll(t, s, orig)
	if st := s.Stats(); st.Retries == 0 {
		t.Error("read errors were not retried")
	}
}

// TestPersistentReadFails: a read that keeps failing surfaces as a
// descriptive error naming the node.
func TestPersistentReadFails(t *testing.T) {
	in := faults.New(faults.Rule{Point: faults.SpillRead, Kind: faults.KindError, Nth: 1, Count: -1})
	opt := testOptions(t, in)
	opt.RetryMax = 2
	s, err := NewFileStore(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	putAll(t, s, 1, 26)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	_, ferr := s.Fetch(0)
	if !errors.Is(ferr, faults.ErrInjected) {
		t.Fatalf("Fetch: %v, want injected read error", ferr)
	}
	if !strings.Contains(ferr.Error(), "spill read") || !strings.Contains(ferr.Error(), "node 0") {
		t.Errorf("error %q does not name the read and node", ferr)
	}
}

// TestDecodeErrorNotRetried: decode faults indicate corruption and must
// fail without burning the retry budget.
func TestDecodeErrorNotRetried(t *testing.T) {
	in := faults.New(faults.Rule{Point: faults.Decode, Kind: faults.KindError, Nth: 1, Count: -1})
	s, err := NewFileStore(testOptions(t, in))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	putAll(t, s, 1, 27)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	_, ferr := s.Fetch(0)
	if ferr == nil || !strings.Contains(ferr.Error(), "decode") {
		t.Fatalf("Fetch: %v, want decode error", ferr)
	}
	if st := s.Stats(); st.Retries != 0 {
		t.Errorf("%d retries for a decode error, want 0", st.Retries)
	}
}

// TestWriterPanicContained: an injected spill-write panic must not kill
// the writer goroutine — with degradation on, the block is retained
// in-core and the run completes.
func TestWriterPanicContained(t *testing.T) {
	in := faults.New(faults.Rule{Point: faults.SpillWrite, Kind: faults.KindPanic, Nth: 1, Count: 1})
	s, err := NewFileStore(testOptions(t, in))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	orig := putAll(t, s, 3, 28)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.DegradedBlocks != 1 {
		t.Errorf("DegradedBlocks = %d, want 1 (the panicked write)", st.DegradedBlocks)
	}
	fetchAll(t, s, orig)
}

// TestSetContextCancelsPut: cancelling the bound context unblocks a Put
// waiting on the buffer budget and poisons the store descriptively; the
// store still closes cleanly.
func TestSetContextCancelsPut(t *testing.T) {
	// A persistent delay keeps the writer busy so the buffer stays full.
	in := faults.New(faults.Rule{Point: faults.SpillWrite, Kind: faults.KindDelay, Nth: 1, Count: -1, Delay: 2 * time.Millisecond})
	opt := testOptions(t, in)
	opt.BufferEntries = 16
	s, err := NewFileStore(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	s.SetContext(ctx)
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	rng := rand.New(rand.NewSource(29))
	var perr error
	for ni := 0; ni < 1000 && perr == nil; ni++ {
		b := randomBlock(rng, 8, 4, false) // 32 entries > budget/2, so Puts queue up
		perr = s.Put(ni, b, int64(len(b.L.A)))
	}
	if !errors.Is(perr, context.Canceled) {
		t.Fatalf("Put under cancellation: %v, want context.Canceled", perr)
	}
	if !strings.Contains(perr.Error(), "cancelled") {
		t.Errorf("error %q is not descriptive", perr)
	}
	if ferr := s.Flush(); !errors.Is(ferr, context.Canceled) {
		t.Errorf("Flush after cancellation: %v", ferr)
	}
}
